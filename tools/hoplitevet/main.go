// Command hoplitevet is the repo's static-analysis suite: five analyzers
// that mechanically enforce hoplite's concurrency invariants (see
// docs/INVARIANTS.md at the repo root).
//
// It runs in two modes:
//
//	hoplitevet [packages]              standalone: load packages from
//	                                   source and print all findings
//	go vet -vettool=$(which hoplitevet) ./...
//	                                   as a vettool, speaking the go
//	                                   command's unitchecker protocol
//
// Exit status is 1 when findings are reported, 2 on operational errors.
package main

import (
	"fmt"
	"os"
	"strings"

	"hoplite/tools/hoplitevet/analysis"
	"hoplite/tools/hoplitevet/checkers"
)

var analyzers = []*analysis.Analyzer{
	checkers.RefPair,
	checkers.LockHold,
	checkers.PoolEscape,
	checkers.SleepLoop,
	checkers.WireMethod,
}

func main() {
	args := os.Args[1:]
	// The go command probes build tools with -V=full (version for cache
	// keys) and -flags (supported flags) before handing them a .cfg.
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			if err := analysis.PrintVersion(); err != nil {
				fatal(err)
			}
			return
		case "-flags", "--flags":
			analysis.PrintFlags()
			return
		case "help", "-h", "-help", "--help":
			usage()
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		findings, err := analysis.RunUnit(args[0], analyzers)
		if err != nil {
			fatal(err)
		}
		report(findings)
		return
	}
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := analysis.Run(".", patterns, analyzers)
	if err != nil {
		fatal(err)
	}
	report(findings)
}

func report(findings []analysis.Finding) {
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", f.Posn, f.Message, f.Analyzer)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "hoplitevet: %v\n", err)
	os.Exit(2)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: hoplitevet [packages]   (or: go vet -vettool=hoplitevet ./...)")
	fmt.Fprintln(os.Stderr, "\nanalyzers:")
	for _, a := range analyzers {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
	}
}
