package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// This file implements the command-line protocol required by
// `go vet -vettool=...`: the build system probes the tool with -V=full
// (version string for build caching) and -flags (supported flags as
// JSON), then invokes it once per compilation unit with the path to a
// JSON .cfg file describing the unit. Type information for imports comes
// from the compiler's export data (cfg.PackageFile), not from source, so
// a vettool run shares the build cache with the ordinary build.

// unitConfig mirrors the JSON config written by the go command (see
// x/tools/go/analysis/unitchecker.Config; field names are the contract).
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// PrintVersion implements -V=full: the exact format the go command
// expects from a build tool (name, "version", and a content hash it can
// fold into its cache key).
func PrintVersion() error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(exe)
	if err != nil {
		return err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return err
	}
	fmt.Printf("%s version devel buildID=%02x\n", exe, string(h.Sum(nil)))
	return nil
}

// PrintFlags implements -flags: a JSON description of tool flags the go
// command may forward. hoplitevet keeps none, so the set is empty.
func PrintFlags() {
	fmt.Println("[]")
}

// RunUnit analyzes the single compilation unit described by the .cfg
// file at cfgPath and returns its findings. Test files are type-checked
// (the package would not compile without them) but not analyzed: the
// concurrency invariants target production code, and test goroutine
// hygiene is enforced dynamically by internal/leakcheck instead.
func RunUnit(cfgPath string, analyzers []*Analyzer) ([]Finding, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	cfg := new(unitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode JSON config file %s: %v", cfgPath, err)
	}
	if len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("package has no files: %s", cfg.ImportPath)
	}

	// The go command expects the facts output file to exist for caching
	// even though hoplitevet's analyzers exchange no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, err
		}
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath]
			if !ok {
				return nil, fmt.Errorf("can't resolve import %q", importPath)
			}
			return compilerImporter.Import(path)
		}),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, err
	}
	if cfg.VetxOnly {
		return nil, nil
	}

	var nonTest []*ast.File
	for _, f := range files {
		if !strings.HasSuffix(fset.Position(f.FileStart).Filename, "_test.go") {
			nonTest = append(nonTest, f)
		}
	}
	pkgDir := filepath.Dir(fset.Position(files[0].FileStart).Filename)
	pkg := &Package{
		PkgPath:   cfg.ImportPath,
		Dir:       pkgDir,
		ModuleDir: findModuleDir(pkgDir),
		Fset:      fset,
		Syntax:    nonTest,
		Types:     tpkg,
		TypesInfo: info,
	}
	return runAnalyzers(pkg, analyzers)
}

// findModuleDir walks up from dir to the enclosing go.mod, returning ""
// when there is none (e.g. a stdlib unit).
func findModuleDir(dir string) string {
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			return ""
		}
		d = parent
	}
}
