// Package analysis is a minimal, dependency-free stand-in for
// golang.org/x/tools/go/analysis, carrying exactly what hoplitevet's
// checkers need: an Analyzer with a Run function over a type-checked
// package, positional diagnostics, and two drivers (a standalone
// go-list-based loader in load.go and the `go vet -vettool` unitchecker
// protocol in unit.go). The container this repo builds in has no module
// proxy access, so vendoring x/tools is not an option; the subset here is
// API-compatible enough that migrating to the real framework later is a
// mechanical import swap.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass presents one type-checked package to an analyzer.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File // parsed with comments
	Pkg       *types.Package
	TypesInfo *types.Info

	// Dir is the package's directory on disk (for checks that consult
	// sibling files, e.g. wiremethod's fuzz-seed coverage).
	Dir string
	// ModuleDir is the root directory of the module under analysis, or ""
	// when unknown (unitchecker mode analyzes one compilation unit and has
	// no module view).
	ModuleDir string

	report func(Diagnostic)
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Position resolves pos against the pass's file set.
func (p *Pass) Position(pos token.Pos) token.Position { return p.Fset.Position(pos) }

// A Finding pairs a diagnostic with the analyzer that produced it and its
// resolved position, ready for printing.
type Finding struct {
	Analyzer string
	Posn     token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Posn, f.Analyzer, f.Message)
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Posn.Filename != b.Posn.Filename {
			return a.Posn.Filename < b.Posn.Filename
		}
		if a.Posn.Line != b.Posn.Line {
			return a.Posn.Line < b.Posn.Line
		}
		if a.Posn.Column != b.Posn.Column {
			return a.Posn.Column < b.Posn.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// RunPackage applies every analyzer to one loaded package and returns
// the findings sorted by position.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	return runAnalyzers(pkg, analyzers)
}

// runAnalyzers applies every analyzer to one loaded package and returns
// the findings.
func runAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	var out []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Dir:       pkg.Dir,
			ModuleDir: pkg.ModuleDir,
		}
		pass.report = func(d Diagnostic) {
			out = append(out, Finding{Analyzer: a.Name, Posn: pass.Position(d.Pos), Message: d.Message})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.PkgPath, a.Name, err)
		}
	}
	sortFindings(out)
	return out, nil
}
