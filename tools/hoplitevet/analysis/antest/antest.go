// Package antest is a minimal analysistest: it runs one analyzer over a
// fixture package stored GOPATH-style under testdata/src/<importpath> and
// checks its diagnostics against `// want "regexp"` comments in the
// fixture source. Fixture imports resolve inside the testdata tree first
// (so fixtures can stub hoplite/internal/... packages under their real
// import paths), then fall back to the standard library.
package antest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"hoplite/tools/hoplitevet/analysis"
)

// expectation is one `// want` clause: a set of regexps that must each
// match a distinct diagnostic reported on that line.
type expectation struct {
	patterns []*regexp.Regexp
	matched  []bool
}

// Run loads testdata/src/<pkgPath> (relative to the caller's testdata
// directory), applies the analyzer, and reports any mismatch between its
// diagnostics and the fixture's want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	src := filepath.Join(testdata, "src")
	loader := &analysis.Loader{
		Dir: testdata,
		Extra: func(path string) (string, bool) {
			dir := filepath.Join(src, filepath.FromSlash(path))
			if st, err := os.Stat(dir); err == nil && st.IsDir() {
				return dir, true
			}
			return "", false
		},
	}
	pkg, err := loader.LoadDir(filepath.Join(src, filepath.FromSlash(pkgPath)), pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgPath, err)
	}
	findings, err := analysis.RunPackage(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgPath, err)
	}

	wants, err := collectWants(pkg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		key := posKey(f.Posn)
		w := wants[key]
		if w == nil {
			t.Errorf("%s: unexpected diagnostic: %s", key, f.Message)
			continue
		}
		ok := false
		for i, re := range w.patterns {
			if !w.matched[i] && re.MatchString(f.Message) {
				w.matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: diagnostic %q matched no want pattern", key, f.Message)
		}
	}
	for key, w := range wants {
		for i, m := range w.matched {
			if !m {
				t.Errorf("%s: no diagnostic matching %q", key, w.patterns[i].String())
			}
		}
	}
}

func posKey(p token.Position) string {
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// collectWants parses every `// want "re" ["re" ...]` comment in the
// fixture, keyed by file:line of the comment.
func collectWants(pkg *analysis.Package) (map[string]*expectation, error) {
	wants := make(map[string]*expectation)
	for _, file := range pkg.Syntax {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				posn := pkg.Fset.Position(c.Pos())
				exp := &expectation{}
				for rest = strings.TrimSpace(rest); rest != ""; rest = strings.TrimSpace(rest) {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						return nil, fmt.Errorf("%s: malformed want comment %q", posKey(posn), c.Text)
					}
					pat, err := strconv.Unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s: %v", posKey(posn), err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want regexp: %v", posKey(posn), err)
					}
					exp.patterns = append(exp.patterns, re)
					exp.matched = append(exp.matched, false)
					rest = rest[len(q):]
				}
				if len(exp.patterns) == 0 {
					return nil, fmt.Errorf("%s: empty want comment", posKey(posn))
				}
				wants[posKey(posn)] = exp
			}
		}
	}
	return wants, nil
}
