package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one fully loaded (parsed and type-checked, with bodies and
// comments) package ready for analysis.
type Package struct {
	PkgPath   string
	Dir       string
	ModuleDir string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listMeta is the subset of `go list -json` output the loader consumes.
type listMeta struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	Module     *struct {
		Path string
		Dir  string
	}
	Error *struct {
		Err string
	}
}

// Loader type-checks packages from source. Dependencies are checked with
// function bodies ignored (signatures are all analyzers need), so loading
// the whole repo plus its stdlib closure stays fast and works without
// compiled export data, a module proxy, or x/tools.
type Loader struct {
	// Dir is the working directory for `go list` (the module being
	// analyzed, or any directory for stdlib-only resolution).
	Dir string
	// Extra, if set, resolves an import path to a directory of Go files
	// outside the `go list` view. The fixture runner uses it to map
	// import paths onto a GOPATH-style testdata/src tree.
	Extra func(path string) (dir string, ok bool)

	Fset *token.FileSet

	meta map[string]*listMeta
	deps map[string]*types.Package
}

func (l *Loader) init() {
	if l.Fset == nil {
		l.Fset = token.NewFileSet()
	}
	if l.meta == nil {
		l.meta = make(map[string]*listMeta)
	}
	if l.deps == nil {
		l.deps = make(map[string]*types.Package)
	}
}

// goList runs `go list -deps -json` on args and merges the results into
// the loader's metadata map. CGO is disabled so every package's GoFiles
// list is complete for pure-Go type-checking.
func (l *Loader) goList(args ...string) error {
	cmd := exec.Command("go", append([]string{"list", "-e", "-deps", "-json"}, args...)...)
	cmd.Dir = l.Dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	out, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			stderr.Write(ee.Stderr)
		}
		return fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		m := new(listMeta)
		if err := dec.Decode(m); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("go list: decoding output: %v", err)
		}
		if prev, ok := l.meta[m.ImportPath]; !ok || prev.DepOnly && !m.DepOnly {
			l.meta[m.ImportPath] = m
		}
	}
	return nil
}

// Load lists patterns in the loader's Dir and returns the matched
// (non-dependency) packages fully loaded for analysis.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	l.init()
	if err := l.goList(patterns...); err != nil {
		return nil, err
	}
	var targets []*listMeta
	for _, m := range l.meta {
		if !m.DepOnly && !m.Standard {
			targets = append(targets, m)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })
	var out []*Package
	for _, m := range targets {
		if m.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", m.ImportPath, m.Error.Err)
		}
		if len(m.GoFiles) == 0 {
			continue
		}
		pkg, err := l.loadFull(m)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir loads a single package rooted at dir under the given import
// path, resolving its imports through Extra and then `go list`. It is the
// entry point used by the fixture runner.
func (l *Loader) LoadDir(dir, pkgPath string) (*Package, error) {
	l.init()
	files, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	m := &listMeta{ImportPath: pkgPath, Dir: dir, GoFiles: files}
	// A fixture package is its own module for checks that scan module-wide
	// (wiremethod's reference counting).
	m.Module = &struct {
		Path string
		Dir  string
	}{Path: pkgPath, Dir: dir}
	return l.loadFull(m)
}

func goFilesIn(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, name)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(files)
	return files, nil
}

// loadFull parses m's files with comments and type-checks them with full
// function bodies and populated type info.
func (l *Loader) loadFull(m *listMeta) (*Package, error) {
	var files []*ast.File
	for _, name := range m.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(m.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var errs []error
	conf := types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) { return l.importDep(m, path) }),
		Error:    func(err error) { errs = append(errs, err) },
	}
	tpkg, _ := conf.Check(m.ImportPath, l.Fset, files, info)
	if len(errs) > 0 {
		var b strings.Builder
		for i, err := range errs {
			if i == 8 {
				fmt.Fprintf(&b, "\n\t... and %d more", len(errs)-i)
				break
			}
			fmt.Fprintf(&b, "\n\t%v", err)
		}
		return nil, fmt.Errorf("type-checking %s:%s", m.ImportPath, b.String())
	}
	moduleDir := ""
	if m.Module != nil {
		moduleDir = m.Module.Dir
	}
	return &Package{
		PkgPath:   m.ImportPath,
		Dir:       m.Dir,
		ModuleDir: moduleDir,
		Fset:      l.Fset,
		Syntax:    files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// importDep returns the (bodies-ignored) type-checked package for an
// import appearing in the package described by from.
func (l *Loader) importDep(from *listMeta, path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if from != nil && from.ImportMap != nil {
		if mapped, ok := from.ImportMap[path]; ok {
			path = mapped
		}
	}
	if pkg, ok := l.deps[path]; ok {
		return pkg, nil
	}
	m, err := l.resolveMeta(path)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range m.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(m.Dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{
		IgnoreFuncBodies: true,
		// Dependency sources may use constructs go/types cannot fully
		// check without the build system (runtime intrinsics and the
		// like); signatures still come out right, so soft errors in deps
		// are tolerated.
		Error:    func(error) {},
		Importer: importerFunc(func(p string) (*types.Package, error) { return l.importDep(m, p) }),
	}
	pkg, err := conf.Check(path, l.Fset, files, nil)
	if pkg == nil {
		return nil, fmt.Errorf("importing %s: %v", path, err)
	}
	pkg.MarkComplete()
	l.deps[path] = pkg
	return pkg, nil
}

// resolveMeta finds file metadata for an import path: the Extra hook
// first (fixture trees), then anything already listed, then a lazy
// `go list` for stdlib or module paths not yet seen.
func (l *Loader) resolveMeta(path string) (*listMeta, error) {
	if l.Extra != nil {
		if dir, ok := l.Extra(path); ok {
			files, err := goFilesIn(dir)
			if err != nil {
				return nil, fmt.Errorf("importing %s: %v", path, err)
			}
			return &listMeta{ImportPath: path, Dir: dir, GoFiles: files}, nil
		}
	}
	if m, ok := l.meta[path]; ok && m.Error == nil {
		return m, nil
	}
	if err := l.goList(path); err != nil {
		return nil, fmt.Errorf("importing %s: %v", path, err)
	}
	m, ok := l.meta[path]
	if !ok || m.Error != nil {
		return nil, fmt.Errorf("importing %s: not found", path)
	}
	return m, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// Run loads patterns from dir and applies every analyzer, returning all
// findings sorted by position.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Finding, error) {
	l := &Loader{Dir: dir}
	pkgs, err := l.Load(patterns...)
	if err != nil {
		return nil, err
	}
	var out []Finding
	for _, pkg := range pkgs {
		fs, err := runAnalyzers(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		out = append(out, fs...)
	}
	sortFindings(out)
	return out, nil
}
