package checkers

import (
	"go/ast"
	"go/types"

	"hoplite/tools/hoplitevet/analysis"
)

// PoolEscape enforces the internal/pool contract: a buffer obtained from
// pool.Get must reach pool.Put on every path (or be handed to an owner
// that will return it), and must not be touched after it has been Put —
// a recycled buffer may already belong to another goroutine.
//
// A buffer whose ownership moves through an alias the walker cannot see
// (e.g. an append that may or may not reallocate) is annotated
// `//hoplite:pool-transfer <reason>`.
var PoolEscape = &analysis.Analyzer{
	Name: "poolescape",
	Doc:  "check that pool.Get buffers are returned with pool.Put and not used afterwards",
	Run:  runPoolEscape,
}

var poolAcquirer = &acquirer{
	what: "pooled buffer",
	tag:  tagPoolTransfer,
	match: func(pass *analysis.Pass, call *ast.CallExpr) (int, bool) {
		return 0, isPoolFunc(pass, call, "Get")
	},
	isRelease: func(pass *analysis.Pass, call *ast.CallExpr, tracked func(ast.Expr) bool) bool {
		if !isPoolFunc(pass, call, "Put") || len(call.Args) != 1 {
			return false
		}
		return tracked(call.Args[0])
	},
	// Unlike ref handles, passing a pooled buffer to a callee does not
	// transfer the obligation to return it: callees operate on the bytes
	// and the caller still owns the Put.
	argEscapes: false,
}

func runPoolEscape(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if isTestFile(pass, file.FileStart) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkAcquisitions(pass, fd.Body, poolAcquirer)
			checkUseAfterPut(pass, fd.Body)
		}
	}
	return nil
}

// isPoolFunc reports whether call invokes the package-level function
// internal/pool.<name>.
func isPoolFunc(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	var fn *types.Func
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = pass.TypesInfo.Uses[f].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = pass.TypesInfo.Uses[f.Sel].(*types.Func)
	}
	if fn == nil || fn.Name() != name {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	return pkgSuffixMatch(fn.Pkg(), "internal/pool")
}

// checkUseAfterPut scans each statement list: once pool.Put(v) has run,
// any later use of v in the same list (before a reassignment) touches a
// buffer that may already be owned by another goroutine.
func checkUseAfterPut(pass *analysis.Pass, body *ast.BlockStmt) {
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, stmt := range block.List {
			es, ok := stmt.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := ast.Unparen(es.X).(*ast.CallExpr)
			if !ok || !isPoolFunc(pass, call, "Put") || len(call.Args) != 1 {
				continue
			}
			arg := ast.Unparen(call.Args[0])
			if s, ok := arg.(*ast.SliceExpr); ok {
				arg = ast.Unparen(s.X)
			}
			id, ok := arg.(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil {
				continue
			}
			scanUsesAfter(pass, block.List[i+1:], obj)
		}
		return true
	})
}

func scanUsesAfter(pass *analysis.Pass, stmts []ast.Stmt, obj types.Object) {
	for _, stmt := range stmts {
		// A reassignment gives the name a fresh buffer; stop tracking.
		if as, ok := stmt.(*ast.AssignStmt); ok {
			reassigned := false
			for _, l := range as.Lhs {
				if id, ok := ast.Unparen(l).(*ast.Ident); ok {
					if pass.TypesInfo.Uses[id] == obj || pass.TypesInfo.Defs[id] != nil && pass.TypesInfo.Defs[id].Name() == obj.Name() {
						reassigned = true
					}
				}
			}
			// The RHS still runs before the reassignment lands.
			for _, r := range as.Rhs {
				reportUses(pass, r, obj)
			}
			if reassigned {
				return
			}
			continue
		}
		stopped := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			if stopped {
				return false
			}
			if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				if !suppressed(pass, id.Pos(), tagPoolTransfer) {
					pass.Reportf(id.Pos(), "use of %s after pool.Put: the buffer may already be reused by another goroutine", obj.Name())
				}
				stopped = true
			}
			return true
		})
		if stopped {
			return // one report per Put is enough
		}
	}
}

func reportUses(pass *analysis.Pass, e ast.Expr, obj types.Object) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			if !suppressed(pass, id.Pos(), tagPoolTransfer) {
				pass.Reportf(id.Pos(), "use of %s after pool.Put: the buffer may already be reused by another goroutine", obj.Name())
			}
			return false
		}
		return true
	})
}
