package checkers

import (
	"go/ast"
	"go/types"

	"hoplite/tools/hoplitevet/analysis"
)

// SleepLoop enforces two liveness conventions:
//
//   - no time.Sleep inside a for/range loop in non-test code: poll loops
//     burn CPU, add tail latency, and hide missing notification paths
//     (the store and directory expose watchers precisely so callers never
//     need to poll). A sleep that models time rather than polling — netem
//     link delays, benchmark think time — is annotated
//     `//hoplite:sleep-ok <reason>`.
//
//   - a function that takes a context.Context takes it as the first
//     parameter, so call sites read uniformly and cancellation plumbing is
//     impossible to miss. Deliberate exceptions are annotated
//     `//hoplite:ctx-order <reason>`.
var SleepLoop = &analysis.Analyzer{
	Name: "sleeploop",
	Doc:  "check for time.Sleep poll loops and misplaced context.Context parameters",
	Run:  runSleepLoop,
}

func runSleepLoop(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if isTestFile(pass, file.FileStart) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkCtxFirst(pass, fd)
			if fd.Body != nil {
				checkSleepLoops(pass, fd.Body, false)
			}
		}
	}
	return nil
}

// checkSleepLoops reports time.Sleep calls lexically inside a loop.
// Function literals reset the loop context: a closure defined in a loop
// runs on its own schedule, and loops inside closures count on their own.
func checkSleepLoops(pass *analysis.Pass, n ast.Node, inLoop bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.ForStmt:
			if m.Init != nil {
				checkSleepLoops(pass, m.Init, inLoop)
			}
			if m.Cond != nil {
				checkSleepLoops(pass, m.Cond, inLoop)
			}
			if m.Post != nil {
				checkSleepLoops(pass, m.Post, inLoop)
			}
			checkSleepLoops(pass, m.Body, true)
			return false
		case *ast.RangeStmt:
			checkSleepLoops(pass, m.X, inLoop)
			checkSleepLoops(pass, m.Body, true)
			return false
		case *ast.FuncLit:
			checkSleepLoops(pass, m.Body, false)
			return false
		case *ast.CallExpr:
			if inLoop && isTimeSleep(pass, m) && !suppressed(pass, m.Pos(), tagSleepOK) {
				pass.Reportf(m.Pos(), "time.Sleep in a loop is a poll loop; block on a watcher/channel/ctx instead or annotate //hoplite:%s", tagSleepOK)
			}
		}
		return true
	})
}

func isTimeSleep(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Name() == "Sleep" && fn.Pkg() != nil && fn.Pkg().Path() == "time"
}

// checkCtxFirst reports functions whose context.Context parameter is not
// the first parameter.
func checkCtxFirst(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Type.Params == nil {
		return
	}
	flatIdx := 0
	for _, field := range fd.Type.Params.List {
		width := len(field.Names)
		if width == 0 {
			width = 1
		}
		if isContextType(pass, field.Type) && flatIdx > 0 {
			if !suppressed(pass, fd.Pos(), tagCtxOrder) && !suppressed(pass, field.Pos(), tagCtxOrder) {
				pass.Reportf(field.Pos(), "context.Context must be the first parameter of %s so cancellation is uniform at call sites (or annotate //hoplite:%s)", fd.Name.Name, tagCtxOrder)
			}
			return
		}
		flatIdx += width
	}
}

func isContextType(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
