package checkers

import (
	"go/ast"
	"go/types"
	"strings"

	"hoplite/tools/hoplitevet/analysis"
)

// RefPair enforces the repo's reference-counting contract: every pinned
// handle acquired from the store or the object layer must be released (or
// have its ownership transferred) on every control-flow path.
//
// Two acquisition families are tracked:
//
//   - (*store.Store).Acquire, which returns a pinned *buffer.Buffer that
//     must reach Unref;
//   - any call whose first result is a *core.ObjectRef (GetRef, Await on
//     a ref future, ...), which must reach Release.
//
// Passing the handle to another function, returning it, storing it in a
// struct/map/channel, or capturing it in a closure counts as a transfer.
// A deliberate hand-off that the walker cannot see is annotated
// `//hoplite:ref-transfer <reason>`.
var RefPair = &analysis.Analyzer{
	Name: "refpair",
	Doc:  "check that store pins and object refs are released on every path",
	Run:  runRefPair,
}

var refAcquirers = []*acquirer{
	{
		what: "store pin",
		tag:  tagRefTransfer,
		match: func(pass *analysis.Pass, call *ast.CallExpr) (int, bool) {
			return 0, isMethodCall(pass, call, "Acquire", "internal/store")
		},
		isRelease:  releaseNamed("Unref", "Release"),
		argEscapes: true,
	},
	{
		what: "object ref",
		tag:  tagRefTransfer,
		match: func(pass *analysis.Pass, call *ast.CallExpr) (int, bool) {
			return 0, firstResultIsCoreRef(pass, call)
		},
		isRelease:  releaseNamed("Release", "Unref"),
		argEscapes: true,
	},
}

func runRefPair(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if isTestFile(pass, file.FileStart) {
			continue
		}
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				for _, acq := range refAcquirers {
					checkAcquisitions(pass, fd.Body, acq)
				}
			}
		}
	}
	return nil
}

// isMethodCall reports whether call invokes a method with the given name
// declared in a package whose import path ends with pkgSuffix.
func isMethodCall(pass *analysis.Pass, call *ast.CallExpr, name, pkgSuffix string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return pkgSuffixMatch(fn.Pkg(), pkgSuffix)
}

// firstResultIsCoreRef reports whether call's first result has type
// *core.ObjectRef. The rule is type-based rather than name-based so new
// accessors (futures, async variants) are covered automatically.
func firstResultIsCoreRef(pass *analysis.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok || !tv.IsValue() {
		return false
	}
	t := tv.Type
	if tuple, ok := t.(*types.Tuple); ok {
		if tuple.Len() == 0 {
			return false
		}
		t = tuple.At(0).Type()
	}
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "ObjectRef" && pkgSuffixMatch(named.Obj().Pkg(), "internal/core")
}

// releaseNamed builds an isRelease predicate matching x.<name>() calls on
// the tracked value.
func releaseNamed(names ...string) func(*analysis.Pass, *ast.CallExpr, func(ast.Expr) bool) bool {
	return func(pass *analysis.Pass, call *ast.CallExpr, tracked func(ast.Expr) bool) bool {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return false
		}
		for _, n := range names {
			if sel.Sel.Name == n {
				return tracked(sel.X)
			}
		}
		return false
	}
}

func pkgSuffixMatch(pkg *types.Package, suffix string) bool {
	if pkg == nil {
		return false
	}
	p := pkg.Path()
	return p == suffix || strings.HasSuffix(p, "/"+suffix)
}
