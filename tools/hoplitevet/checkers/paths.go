package checkers

import (
	"go/ast"
	"go/token"
	"go/types"

	"hoplite/tools/hoplitevet/analysis"
)

// This file implements the release-path walker shared by refpair and
// poolescape: given a call that acquires a resource (a pinned ObjectRef,
// a store reader ref, a pooled buffer), it walks the acquiring function's
// structured control flow and reports any function exit reachable from
// the acquisition without a release or an ownership transfer.
//
// The walker is deliberately lenient where precision would need
// whole-program analysis: passing the resource to another function (when
// the acquirer's rules say so), storing it in a struct/map/channel,
// returning it, or capturing it in a closure all count as transfers, and
// a path guarded by the acquisition's own failure result (`if !ok` /
// `if err != nil`) carries no obligation. Functions using goto or labeled
// branches are skipped entirely. The point is catching the recurring real
// bug — an early `return err` between acquire and release — with zero
// false alarms, not proving leak freedom.

// An acquirer describes one resource-acquiring API and its release rules.
type acquirer struct {
	what string // human-readable resource name for diagnostics
	tag  string // suppression tag
	// match reports whether call acquires this resource and which result
	// index carries it.
	match func(pass *analysis.Pass, call *ast.CallExpr) (resultIdx int, ok bool)
	// isRelease reports whether call releases a tracked value (tracked
	// tests whether an expression is the tracked variable or an alias).
	isRelease func(pass *analysis.Pass, call *ast.CallExpr, tracked func(ast.Expr) bool) bool
	// argEscapes: passing the tracked value as a call argument transfers
	// ownership (true for ref handles, false for pooled buffers).
	argEscapes bool
}

// state is the walker's per-path condition.
type state struct {
	active bool // the acquisition has executed on this path
	rel    bool // the obligation is settled (released or transferred)
}

// branchOut is the outcome of walking one alternative branch.
type branchOut struct {
	st   state
	term bool
}

type pathWalker struct {
	pass     *analysis.Pass
	acq      *acquirer
	acquire  *ast.AssignStmt // the acquiring assignment
	vars     map[types.Object]bool
	guard    types.Object // bool/error companion result, if any
	guardErr bool         // guard is an error (err != nil means failure)
	suppress int          // >0 while inside a failure-guarded branch
	bailed   bool
	// deferCovers: a deferred closure releases the tracked *variable*
	// (re-read at function exit), so even re-acquisitions into the same
	// variable are released.
	deferCovers bool
	leak        token.Pos // first leaking exit
}

func (w *pathWalker) tracked(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	obj := w.pass.TypesInfo.Uses[id]
	return obj != nil && w.vars[obj]
}

// trackedOrSlice additionally accepts a slice of the tracked variable
// (v[a:b] aliases v's backing array).
func (w *pathWalker) trackedOrSlice(e ast.Expr) bool {
	e = ast.Unparen(e)
	if s, ok := e.(*ast.SliceExpr); ok {
		return w.tracked(s.X)
	}
	return w.tracked(e)
}

func (w *pathWalker) reportLeak(pos token.Pos) {
	if w.suppress == 0 && w.leak == token.NoPos {
		w.leak = pos
	}
}

// walkList walks a statement list, threading path state; term reports
// that every path through the list left the function (or broke out of
// the enclosing construct).
func (w *pathWalker) walkList(list []ast.Stmt, st state) (state, bool) {
	for _, s := range list {
		var term bool
		st, term = w.walkStmt(s, st)
		if term || w.bailed {
			return st, term
		}
	}
	return st, false
}

func (w *pathWalker) walkStmt(s ast.Stmt, st state) (state, bool) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		if s == w.acquire {
			st.active, st.rel = true, w.deferCovers
			return st, false
		}
		w.scanAssign(s, &st)
		return st, false

	case *ast.ExprStmt:
		w.scanNode(s.X, &st)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && w.isTerminal(call) {
			return st, true
		}
		return st, false

	case *ast.DeferStmt:
		// `defer func() { pool.Put(chunk) }()` re-reads chunk at return,
		// covering re-acquisitions into the same variable — unlike
		// `defer pool.Put(chunk)`, whose argument is pinned at defer time.
		if fl, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok && w.containsRelease(fl.Body) {
			w.deferCovers = true
			if st.active {
				st.rel = true
			}
			return st, false
		}
		// A deferred release covers every exit reached after this point.
		if !w.releasesIn(s.Call, &st) {
			w.scanNode(s.Call, &st)
		}
		return st, false

	case *ast.GoStmt:
		w.scanNode(s.Call, &st)
		return st, false

	case *ast.SendStmt:
		if st.active && !st.rel && w.trackedOrSlice(s.Value) {
			st.rel = true // ownership crossed a channel
		}
		w.scanNode(s.Chan, &st)
		w.scanNode(s.Value, &st)
		return st, false

	case *ast.DeclStmt:
		w.scanNode(s, &st)
		return st, false

	case *ast.IncDecStmt, *ast.EmptyStmt:
		return st, false

	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if st.active && !st.rel && w.trackedOrSlice(r) {
				st.rel = true // transferred to the caller
			}
			w.scanNode(r, &st)
		}
		if st.active && !st.rel {
			w.reportLeak(s.Pos())
		}
		return st, true

	case *ast.BlockStmt:
		return w.walkList(s.List, st)

	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)

	case *ast.BranchStmt:
		if s.Label != nil || s.Tok == token.GOTO {
			w.bailed = true
		}
		// break/continue leave the list without leaving the function;
		// the enclosing loop's optimistic merge absorbs them.
		return st, true

	case *ast.IfStmt:
		return w.walkIf(s, st)

	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = w.walkStmt(s.Init, st)
		}
		w.scanNode(s.Cond, &st)
		return w.walkLoopBody(s.Body, st)

	case *ast.RangeStmt:
		w.scanNode(s.X, &st)
		return w.walkLoopBody(s.Body, st)

	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = w.walkStmt(s.Init, st)
		}
		w.scanNode(s.Tag, &st)
		return w.walkClauses(s.Body, st, true)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st, _ = w.walkStmt(s.Init, st)
		}
		w.scanNode(s.Assign, &st)
		return w.walkClauses(s.Body, st, true)

	case *ast.SelectStmt:
		return w.walkClauses(s.Body, st, false)

	default:
		w.scanNode(s, &st)
		return st, false
	}
}

// walkLoopBody handles for/range bodies. An acquisition before the loop
// merges optimistically (a release on the body's fall-through path is
// assumed to run); an acquisition inside the body must settle by the end
// of the iteration, since the next iteration re-acquires.
func (w *pathWalker) walkLoopBody(body *ast.BlockStmt, st state) (state, bool) {
	bodySt, _ := w.walkList(body.List, st)
	if !st.active && bodySt.active {
		if !bodySt.rel {
			w.reportLeak(body.End())
		}
		return st, false // obligation scoped to the iteration
	}
	st.rel = st.rel || bodySt.rel
	return st, false
}

// walkClauses merges the case/comm clauses of a switch or select. For a
// switch without a default clause the implicit no-case-matched path is
// added as a live branch.
func (w *pathWalker) walkClauses(body *ast.BlockStmt, st state, isSwitch bool) (state, bool) {
	var outs []branchOut
	hasDefault := false
	for _, cl := range body.List {
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				w.scanNode(e, &st)
			}
			cst, cterm := w.walkList(cl.Body, st)
			outs = append(outs, branchOut{cst, cterm})
		case *ast.CommClause:
			cst := st
			if cl.Comm != nil {
				cst, _ = w.walkStmt(cl.Comm, cst)
			}
			cst, cterm := w.walkList(cl.Body, cst)
			outs = append(outs, branchOut{cst, cterm})
		}
	}
	if isSwitch && !hasDefault {
		outs = append(outs, branchOut{st, false})
	}
	if len(outs) == 0 {
		return st, false
	}
	return mergeBranches(st, outs)
}

// mergeBranches joins the exits of alternative branches: the merged
// obligation is unsettled if any live (non-terminated, post-acquisition)
// branch leaves it unsettled.
func mergeBranches(in state, outs []branchOut) (state, bool) {
	live, anyActive := 0, false
	relAll := true
	for _, o := range outs {
		if o.term {
			continue
		}
		live++
		if o.st.active {
			anyActive = true
			if !o.st.rel {
				relAll = false
			}
		}
	}
	if live == 0 {
		return in, true
	}
	merged := state{active: anyActive || in.active, rel: in.rel}
	if anyActive {
		merged.rel = relAll
	}
	return merged, false
}

// walkIf handles if statements, including the acquisition-in-init idiom
// `if v, ok := acquire(); ok { ... }` and failure-guard exemptions.
func (w *pathWalker) walkIf(s *ast.IfStmt, st state) (state, bool) {
	acquiredHere := false
	if s.Init != nil {
		if s.Init == ast.Stmt(w.acquire) {
			st.active, st.rel = true, w.deferCovers
			acquiredHere = true
		} else {
			st, _ = w.walkStmt(s.Init, st)
		}
	}
	w.scanNode(s.Cond, &st)

	// failure: which branch runs when the acquisition failed (and thus
	// carries no obligation). 0 = neither, 1 = then, 2 = else.
	failure := 0
	if st.active && !st.rel && w.guard != nil {
		failure = w.guardBranch(s.Cond)
	}

	walkBranch := func(stmt ast.Stmt, exempt bool) branchOut {
		bst := st
		if exempt {
			w.suppress++
		}
		var term bool
		if stmt != nil {
			bst, term = w.walkStmt(stmt, bst)
		}
		if exempt {
			w.suppress--
			bst.rel = true // no obligation on the failure path
		}
		return branchOut{bst, term}
	}

	outs := []branchOut{walkBranch(s.Body, failure == 1)}
	if s.Else != nil {
		outs = append(outs, walkBranch(s.Else, failure == 2))
	} else {
		est := st
		if failure == 2 {
			est.rel = true
		}
		outs = append(outs, branchOut{est, false})
	}

	merged, term := mergeBranches(st, outs)
	if acquiredHere {
		// The variable's scope ends with the if statement: the
		// obligation must have settled inside it.
		if !term && merged.active && !merged.rel {
			w.reportLeak(s.End())
		}
		merged.active, merged.rel = false, false
	}
	return merged, term
}

// guardBranch classifies an if condition over the acquisition's
// companion result: returns 1 if the then-branch is the failure path,
// 2 if the else-branch is, 0 if the condition is something else.
func (w *pathWalker) guardBranch(cond ast.Expr) int {
	cond = ast.Unparen(cond)
	isGuard := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && w.pass.TypesInfo.Uses[id] == w.guard
	}
	if w.guardErr {
		if be, ok := cond.(*ast.BinaryExpr); ok && isGuard(be.X) && isNilIdent(be.Y) {
			switch be.Op {
			case token.NEQ:
				return 1 // if err != nil { failure }
			case token.EQL:
				return 2 // if err == nil { success } else { failure }
			}
		}
		return 0
	}
	if ue, ok := cond.(*ast.UnaryExpr); ok && ue.Op == token.NOT && isGuard(ue.X) {
		return 1 // if !ok { failure }
	}
	if isGuard(cond) {
		return 2 // if ok { success } else { failure }
	}
	return 0
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// scanAssign processes a (non-acquiring) assignment: alias propagation
// and escape detection on the left-hand sides, then a generic scan.
func (w *pathWalker) scanAssign(s *ast.AssignStmt, st *state) {
	if st.active && !st.rel && len(s.Lhs) == len(s.Rhs) {
		for i := range s.Lhs {
			if !w.trackedOrSlice(s.Rhs[i]) {
				continue
			}
			if id, ok := ast.Unparen(s.Lhs[i]).(*ast.Ident); ok {
				if id.Name == "_" {
					continue
				}
				if obj := w.pass.TypesInfo.Defs[id]; obj != nil {
					w.vars[obj] = true
				} else if obj := w.pass.TypesInfo.Uses[id]; obj != nil {
					if obj.Parent() != nil && obj.Parent().Parent() == types.Universe {
						// A package-level variable outlives the function:
						// the value is parked with a longer-lived owner.
						st.rel = true
					} else {
						w.vars[obj] = true
					}
				}
			} else {
				// Stored through a selector/index/deref: retained beyond
				// the function — ownership transferred.
				st.rel = true
			}
		}
	}
	for _, r := range s.Rhs {
		w.scanNode(r, st)
	}
	for _, l := range s.Lhs {
		w.scanNode(l, st)
	}
}

// containsRelease reports whether the node contains a release call of a
// tracked value, independent of the current path state.
func (w *pathWalker) containsRelease(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if c, ok := m.(*ast.CallExpr); ok && w.acq.isRelease(w.pass, c, w.trackedOrSlice) {
			found = true
			return false
		}
		return true
	})
	return found
}

// releasesIn reports (and records) whether the call expression releases
// the tracked value, looking through an immediately-deferred closure.
func (w *pathWalker) releasesIn(call *ast.CallExpr, st *state) bool {
	if !st.active || st.rel {
		return false
	}
	found := false
	ast.Inspect(call, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && w.acq.isRelease(w.pass, c, w.trackedOrSlice) {
			found = true
			return false
		}
		return true
	})
	if found {
		st.rel = true
	}
	return found
}

// scanNode looks for release, transfer, and escape events anywhere in an
// expression or declaration.
func (w *pathWalker) scanNode(n ast.Node, st *state) {
	if n == nil || !st.active || st.rel {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if st.rel {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if w.acq.isRelease(w.pass, n, w.trackedOrSlice) {
				st.rel = true
				return false
			}
			if w.acq.argEscapes {
				for _, a := range n.Args {
					if w.trackedOrSlice(a) {
						st.rel = true // ownership handed to the callee
						return false
					}
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if w.trackedOrSlice(el) {
					st.rel = true // retained in a composite value
					return false
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND && w.tracked(n.X) {
				st.rel = true
				return false
			}
		case *ast.FuncLit:
			// A closure referencing the value owns (or at least shares)
			// it; releasing inside callbacks is a transfer.
			captured := false
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := w.pass.TypesInfo.Uses[id]; obj != nil && w.vars[obj] {
						captured = true
						return false
					}
				}
				return true
			})
			if captured {
				st.rel = true
			}
			return false // closure-internal flow is not this path's
		}
		return true
	})
}

// isTerminal reports calls that never return: panic, os.Exit, log.Fatal*,
// runtime.Goexit, and testing Fatal/FailNow/Skip helpers.
func (w *pathWalker) isTerminal(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name == "panic" {
			_, isBuiltin := w.pass.TypesInfo.Uses[fun].(*types.Builtin)
			return isBuiltin
		}
	case *ast.SelectorExpr:
		fn, ok := w.pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		if !ok {
			return false
		}
		switch fn.FullName() {
		case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
			return true
		}
		switch fn.Name() {
		case "Fatal", "Fatalf", "FailNow", "Skip", "Skipf", "SkipNow":
			if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
				if named := namedOf(recv.Type()); named != nil && named.Obj().Pkg() != nil &&
					named.Obj().Pkg().Path() == "testing" {
					return true
				}
			}
		}
	}
	return false
}

func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// checkAcquisitions finds every acquisition by acq in the function body
// and checks that its resource cannot leak. Nested function literals are
// analyzed as independent bodies.
func checkAcquisitions(pass *analysis.Pass, body *ast.BlockStmt, acq *acquirer) {
	if body == nil {
		return
	}
	type site struct {
		call *ast.CallExpr
		path []ast.Node // ancestors within body, innermost last
	}
	var sites []site
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if fl, ok := n.(*ast.FuncLit); ok && len(stack) > 0 {
			checkAcquisitions(pass, fl.Body, acq)
			return false // separate root; f(nil) is not called after false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if _, ok := acq.match(pass, call); ok {
				sites = append(sites, site{call, append([]ast.Node(nil), stack...)})
			}
		}
		stack = append(stack, n)
		return true
	})
	for _, s := range sites {
		checkOneAcquisition(pass, body, acq, s.call, s.path)
	}
}

func checkOneAcquisition(pass *analysis.Pass, body *ast.BlockStmt, acq *acquirer, call *ast.CallExpr, path []ast.Node) {
	if suppressed(pass, call.Pos(), acq.tag) {
		return
	}
	// Find the enclosing assignment, if any.
	var assign *ast.AssignStmt
	for i := len(path) - 1; i >= 0; i-- {
		if a, ok := path[i].(*ast.AssignStmt); ok {
			assign = a
			break
		}
		if _, ok := path[i].(ast.Stmt); ok {
			break
		}
	}
	if assign == nil {
		// Result discarded in an expression statement: unconditional leak.
		// Other shapes (argument of another call, direct return) transfer
		// the value and are fine.
		if es, ok := innermostStmt(path).(*ast.ExprStmt); ok && ast.Unparen(es.X) == call {
			pass.Reportf(call.Pos(), "result of %s is discarded; the %s is never released", calleeName(call), acq.what)
		}
		return
	}
	// The call must be the sole RHS; anything fancier (nested in another
	// expression, multi-value juggling) is skipped, not guessed at.
	if len(assign.Rhs) != 1 || ast.Unparen(assign.Rhs[0]) != ast.Expr(call) {
		return
	}
	idx, _ := acq.match(pass, call)
	if idx >= len(assign.Lhs) {
		return
	}
	resVar := lhsObject(pass, assign.Lhs[idx])
	if resVar == nil {
		return // blank or assigned through a selector: not trackable
	}
	var guardVar types.Object
	guardErr := false
	for i, l := range assign.Lhs {
		if i == idx {
			continue
		}
		if obj := lhsObject(pass, l); obj != nil {
			switch {
			case isBool(obj.Type()):
				guardVar = obj
			case isErrorType(obj.Type()):
				guardVar, guardErr = obj, true
			}
		}
	}
	w := &pathWalker{
		pass:     pass,
		acq:      acq,
		acquire:  assign,
		vars:     map[types.Object]bool{resVar: true},
		guard:    guardVar,
		guardErr: guardErr,
	}
	st, term := w.walkList(body.List, state{})
	if w.bailed {
		return
	}
	if !term && st.active && !st.rel {
		w.reportLeak(body.End())
	}
	if w.leak != token.NoPos {
		pass.Reportf(call.Pos(), "%s acquired here is not released on every path (leaks at line %d); release it, transfer it, or annotate //hoplite:%s",
			acq.what, pass.Position(w.leak).Line, acq.tag)
	}
}

func innermostStmt(path []ast.Node) ast.Stmt {
	for i := len(path) - 1; i >= 0; i-- {
		if s, ok := path[i].(ast.Stmt); ok {
			return s
		}
	}
	return nil
}

func lhsObject(pass *analysis.Pass, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

func isBool(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}

func isErrorType(t types.Type) bool {
	named := namedOf(t)
	return named != nil && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return "the call"
}
