// Package refpairtest exercises the refpair analyzer.
package refpairtest

import (
	"context"

	"hoplite/internal/buffer"
	"hoplite/internal/core"
	"hoplite/internal/store"
)

var sink *buffer.Buffer

// leakEarlyReturn forgets the pin on the bad path.
func leakEarlyReturn(s *store.Store, oid [8]byte, bad bool) int {
	buf, ok := s.Acquire(oid) // want `store pin acquired here is not released on every path`
	if !ok {
		return 0
	}
	if bad {
		return -1
	}
	n := buf.Len()
	buf.Unref()
	return n
}

// okGuarded releases on every live path.
func okGuarded(s *store.Store, oid [8]byte) int {
	buf, ok := s.Acquire(oid)
	if !ok {
		return 0
	}
	n := buf.Len()
	buf.Unref()
	return n
}

// okIfInit uses the if-init idiom; the failure branch carries no obligation.
func okIfInit(s *store.Store, oid [8]byte) {
	if buf, ok := s.Acquire(oid); ok {
		buf.Unref()
	}
}

// leakIfInit releases only on one inner branch.
func leakIfInit(s *store.Store, oid [8]byte, cond bool) {
	if buf, ok := s.Acquire(oid); ok { // want `store pin acquired here is not released on every path`
		if cond {
			buf.Unref()
		}
	}
}

// okDefer releases via defer.
func okDefer(s *store.Store, oid [8]byte) int {
	buf, ok := s.Acquire(oid)
	if !ok {
		return 0
	}
	defer buf.Unref()
	return buf.Len()
}

// okBothBranches mirrors core.getOnce: the release shape differs by branch.
func okBothBranches(s *store.Store, oid [8]byte, keep *buffer.Buffer) {
	if pinned, ok := s.Acquire(oid); ok {
		if pinned == keep {
			defer pinned.Unref()
		} else {
			pinned.Unref()
		}
	}
}

// okTransferReturn hands the pin to the caller.
func okTransferReturn(s *store.Store, oid [8]byte) *buffer.Buffer {
	buf, ok := s.Acquire(oid)
	if !ok {
		return nil
	}
	return buf
}

// okTransferGlobal parks the pin with a longer-lived owner.
func okTransferGlobal(s *store.Store, oid [8]byte) {
	buf, ok := s.Acquire(oid)
	if !ok {
		return
	}
	sink = buf
}

// okTransferArg passes ownership to a callee.
func okTransferArg(s *store.Store, oid [8]byte) {
	buf, ok := s.Acquire(oid)
	if !ok {
		return
	}
	adopt(buf)
}

func adopt(b *buffer.Buffer) {}

// okTransferChan hands the pin across a channel.
func okTransferChan(s *store.Store, oid [8]byte, ch chan *buffer.Buffer) {
	buf, ok := s.Acquire(oid)
	if !ok {
		return
	}
	ch <- buf
}

// okClosure releases inside a callback.
func okClosure(s *store.Store, oid [8]byte, after func(func())) {
	buf, ok := s.Acquire(oid)
	if !ok {
		return
	}
	after(func() { buf.Unref() })
}

// leakDiscard drops the result on the floor.
func leakDiscard(s *store.Store, oid [8]byte) {
	s.Acquire(oid) // want `result of Acquire is discarded`
}

// okAnnotated documents a hand-off the walker cannot see.
func okAnnotated(s *store.Store, oid [8]byte) {
	buf, ok := s.Acquire(oid) //hoplite:ref-transfer fixture: ownership registered elsewhere
	if !ok {
		return
	}
	_ = buf
}

// leakInLoop leaks the current iteration's pin on the early return.
func leakInLoop(s *store.Store, oids [][8]byte, stop bool) {
	for _, oid := range oids {
		buf, ok := s.Acquire(oid) // want `store pin acquired here is not released on every path`
		if !ok {
			continue
		}
		if stop {
			return
		}
		buf.Unref()
	}
}

// leakSwitch misses the release on one arm and the implicit no-match path.
func leakSwitch(s *store.Store, oid [8]byte, k int) {
	buf, ok := s.Acquire(oid) // want `store pin acquired here is not released on every path`
	if !ok {
		return
	}
	switch k {
	case 1:
		buf.Unref()
	case 2:
	}
}

// leakRefErr forgets Release on the success path.
func leakRefErr(ctx context.Context, n *core.Node, oid [8]byte) error {
	ref, err := n.GetRef(ctx, oid) // want `object ref acquired here is not released on every path`
	if err != nil {
		return err
	}
	_ = ref
	return nil
}

// okRefErr releases after use; the err != nil branch carries no obligation.
func okRefErr(ctx context.Context, n *core.Node, oid [8]byte) ([]byte, error) {
	ref, err := n.GetRef(ctx, oid)
	if err != nil {
		return nil, err
	}
	b := ref.Bytes()
	ref.Release()
	return b, nil
}
