// Package lockholdtest exercises the lockhold analyzer.
package lockholdtest

import (
	"os"
	"sync"
	"time"

	"hoplite/internal/wire"
)

type guarded struct {
	mu sync.Mutex
	rw sync.RWMutex
	m  map[string]int
}

// badFileIO writes a file while holding the mutex.
func (g *guarded) badFileIO() {
	g.mu.Lock()
	os.WriteFile("x", nil, 0o644) // want `file I/O \(os.WriteFile\) while g.mu is held`
	g.mu.Unlock()
}

// okUnlockFirst releases before the write.
func (g *guarded) okUnlockFirst() {
	g.mu.Lock()
	g.m["k"] = 1
	g.mu.Unlock()
	os.WriteFile("x", nil, 0o644)
}

// badSend parks on a channel send under the read lock.
func (g *guarded) badSend(ch chan int) {
	g.rw.RLock()
	ch <- 1 // want `channel send while g.rw is held`
	g.rw.RUnlock()
}

// okNonBlockingSend cannot park: the select has a default clause.
func (g *guarded) okNonBlockingSend(ch chan int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	select {
	case ch <- 1:
	default:
	}
}

// badWireUnderDefer holds the lock across the wire write via defer.
func (g *guarded) badWireUnderDefer(m wire.Message) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return wire.WriteMessage(m) // want `wire I/O \(wire.WriteMessage\) while g.mu is held`
}

// badSleep sleeps under the lock.
func (g *guarded) badSleep() {
	g.mu.Lock()
	time.Sleep(time.Millisecond) // want `time.Sleep while g.mu is held`
	g.mu.Unlock()
}

// okBranchUnlock releases in every branch before the write.
func (g *guarded) okBranchUnlock(fast bool) {
	g.mu.Lock()
	if fast {
		g.mu.Unlock()
	} else {
		g.mu.Unlock()
	}
	os.WriteFile("x", nil, 0o644)
}

// okGoroutine: the spawned goroutine does not hold the caller's lock.
func (g *guarded) okGoroutine() {
	g.mu.Lock()
	defer g.mu.Unlock()
	go func() {
		os.WriteFile("x", nil, 0o644)
	}()
}

// okAnnotated is the write-serialization mutex pattern.
//
//hoplite:locked-io fixture: the mutex exists to serialize writes
func (g *guarded) okAnnotated(m wire.Message) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return wire.WriteMessage(m)
}
