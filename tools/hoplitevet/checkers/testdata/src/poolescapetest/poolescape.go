// Package poolescapetest exercises the poolescape analyzer.
package poolescapetest

import "hoplite/internal/pool"

var errOops error

func use(b []byte) {}

func forward(b []byte) {}

// leakEarlyReturn forgets the Put on the failure path.
func leakEarlyReturn(n int, fail bool) error {
	buf := pool.Get(n) // want `pooled buffer acquired here is not released on every path`
	if fail {
		return errOops
	}
	pool.Put(buf)
	return nil
}

// okAllPaths returns the buffer on both paths.
func okAllPaths(n int, fail bool) error {
	buf := pool.Get(n)
	if fail {
		pool.Put(buf)
		return errOops
	}
	pool.Put(buf)
	return nil
}

// okDeferClosure re-reads buf at return, so it covers the re-acquisition
// (the transport chunk-regrow idiom).
func okDeferClosure(n int, grow bool) {
	buf := pool.Get(n)
	defer func() { pool.Put(buf) }()
	if grow {
		pool.Put(buf)
		buf = pool.Get(2 * n)
	}
	use(buf)
}

// leakReacquire pins the defer argument at defer time, so the re-acquired
// buffer is never returned to the pool.
func leakReacquire(n int, grow bool) {
	buf := pool.Get(n)
	defer pool.Put(buf)
	if grow {
		buf = pool.Get(2 * n) // want `pooled buffer acquired here is not released on every path`
	}
	use(buf)
}

// leakUseAfterPut touches a buffer that may already be owned by another
// goroutine.
func leakUseAfterPut(n int) int {
	buf := pool.Get(n)
	pool.Put(buf)
	return len(buf) // want `use of buf after pool.Put`
}

// okSlicePut returns the buffer through a reslice.
func okSlicePut(n int) {
	buf := pool.Get(n)
	use(buf[:0])
	pool.Put(buf[:n])
}

// okAnnotatedAlias mirrors wire.writeMessage: the buffer escapes through
// an append alias the walker cannot track.
func okAnnotatedAlias(n int) {
	//hoplite:pool-transfer fixture: out aliases buf and the callee returns it
	buf := pool.Get(n)
	out := append(buf[:0], 1, 2, 3)
	forward(out)
}
