// Package sleeplooptest exercises the sleeploop analyzer.
package sleeplooptest

import (
	"context"
	"time"
)

// badPoll polls for completion.
func badPoll(done func() bool) {
	for !done() {
		time.Sleep(10 * time.Millisecond) // want `time.Sleep in a loop is a poll loop`
	}
}

// badRangePoll sleeps per item.
func badRangePoll(items []int) {
	for range items {
		time.Sleep(time.Millisecond) // want `time.Sleep in a loop is a poll loop`
	}
}

// okSingle is a one-shot delay, not a loop.
func okSingle() {
	time.Sleep(time.Millisecond)
}

// okClosure runs on its own schedule, not in the loop.
func okClosure(items []int, spawn func(func())) {
	for range items {
		spawn(func() {
			time.Sleep(time.Millisecond)
		})
	}
}

// okAnnotated models time rather than polling.
func okAnnotated() {
	for i := 0; i < 3; i++ {
		time.Sleep(time.Millisecond) //hoplite:sleep-ok fixture: models link delay
	}
}

// badCtxOrder hides the context in the middle of the signature.
func badCtxOrder(id int, ctx context.Context) error { // want `context.Context must be the first parameter`
	_ = id
	return ctx.Err()
}

// okCtxOrder takes ctx first.
func okCtxOrder(ctx context.Context, id int) error {
	_ = id
	return ctx.Err()
}

// okCtxAnnotated matches an externally fixed signature.
//
//hoplite:ctx-order fixture: signature fixed by an external interface
func okCtxAnnotated(id int, ctx context.Context) error {
	_ = id
	return ctx.Err()
}
