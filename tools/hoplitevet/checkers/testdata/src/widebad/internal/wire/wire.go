// Package wire exercises wiremethod's frame-width checks.
package wire

// Method is too wide for the one-byte frame slot.
type Method uint16 // want `wire.Method must remain uint8`

// RPC methods.
const (
	MethodNone Method = iota
	MethodHuge Method = 300 // want `does not fit in one byte`
)

func dispatch(m Method) bool { return m == MethodNone || m == MethodHuge }
