// Package store is a fixture stand-in for the real object store.
package store

import "hoplite/internal/buffer"

// Store owns pinned buffers.
type Store struct{}

// Acquire pins the object's buffer; the caller must Unref it.
func (s *Store) Acquire(oid [8]byte) (*buffer.Buffer, bool) { return nil, false }
