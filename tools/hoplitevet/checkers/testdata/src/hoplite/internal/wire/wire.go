// Package wire is a fixture stand-in for the real wire package: method
// constants exercising wiremethod, plus a blocking write for lockhold.
package wire

// Method identifies an RPC method.
type Method uint8

// RPC methods.
const (
	MethodNone Method = iota
	MethodPing
	MethodLookup // want `not seeded in sampleMessages`
	MethodDead   // want `never referenced outside its declaration`
	//hoplite:wire-local fixture: pushed outside dispatch, excluded from the corpus
	MethodLocal
)

// MethodDup collides with MethodLocal's value.
const MethodDup Method = 4 // want `duplicates the value 4 of MethodLocal`

// Message is the frame.
type Message struct{ Method Method }

// WriteMessage writes a frame (blocking I/O for the lockhold fixture).
func WriteMessage(m Message) error { return nil }

func isNone(m Method) bool { return m == MethodNone }

func dispatch(m Method) {
	switch m {
	case MethodPing, MethodLookup, MethodDup:
	}
}
