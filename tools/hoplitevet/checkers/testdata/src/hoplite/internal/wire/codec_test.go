package wire

// sampleMessages deliberately omits MethodLookup; wiremethod must notice.
func sampleMessages() []Message {
	return []Message{
		{Method: MethodPing},
		{Method: MethodDead},
		{Method: MethodDup},
	}
}
