// Package core is a fixture stand-in for the real object layer.
package core

import "context"

// ObjectRef is a pinned, zero-copy view of an object.
type ObjectRef struct{}

// Release drops the pin.
func (r *ObjectRef) Release() {}

// Bytes returns the pinned view.
func (r *ObjectRef) Bytes() []byte { return nil }

// Node is one participant.
type Node struct{}

// GetRef pins the object; the caller must Release the ref.
func (n *Node) GetRef(ctx context.Context, oid [8]byte) (*ObjectRef, error) { return nil, nil }
