// Package buffer is a fixture stand-in for the real ref-counted buffer.
package buffer

// Buffer is a pinned, ref-counted byte buffer.
type Buffer struct{ n int }

// Unref drops the caller's pin.
func (b *Buffer) Unref() {}

// Complete reports whether the buffer is sealed.
func (b *Buffer) Complete() bool { return true }

// Len returns the buffer length.
func (b *Buffer) Len() int { return b.n }
