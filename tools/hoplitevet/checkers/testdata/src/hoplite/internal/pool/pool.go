// Package pool is a fixture stand-in for the real size-classed buffer pool.
package pool

// Get returns a buffer of at least n bytes; the caller must Put it back.
func Get(n int) []byte { return make([]byte, n) }

// Put returns a buffer to the pool.
func Put(b []byte) {}
