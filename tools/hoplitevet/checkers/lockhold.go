package checkers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hoplite/tools/hoplitevet/analysis"
)

// LockHold enforces the "no I/O under a mutex" invariant: while a
// sync.Mutex or sync.RWMutex acquired in the same function is held, the
// function must not perform wire/transport calls, spill or file I/O,
// time.Sleep, or blocking channel sends. Mutexes in this codebase guard
// in-memory maps and counters; holding one across I/O serializes the
// data plane behind the slowest peer (the convoy behind PR 3's
// chunk-lease redesign).
//
// The tracking is optimistic where control flow forks: a lock released
// in any branch is treated as released afterwards, so only I/O that is
// unambiguously under the lock is reported. Deliberate exceptions are
// annotated `//hoplite:locked-io <reason>`.
var LockHold = &analysis.Analyzer{
	Name: "lockhold",
	Doc:  "check that no blocking I/O or channel send happens while a locally acquired mutex is held",
	Run:  runLockHold,
}

type lockEvent struct {
	pos token.Pos // where the lock was taken
}

func runLockHold(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if isTestFile(pass, file.FileStart) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			walkHeldList(pass, fd.Body.List, map[string]lockEvent{})
			// Function literals run on their own goroutine or call path;
			// each is checked as an independent lock scope.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					// Returning true still visits literals nested inside
					// this one; walkHeldList itself never descends into
					// them, so each body is walked exactly once.
					walkHeldList(pass, fl.Body.List, map[string]lockEvent{})
				}
				return true
			})
		}
	}
	return nil
}

func walkHeldList(pass *analysis.Pass, stmts []ast.Stmt, held map[string]lockEvent) {
	for _, s := range stmts {
		walkHeldStmt(pass, s, held)
	}
}

func copyHeld(held map[string]lockEvent) map[string]lockEvent {
	c := make(map[string]lockEvent, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

// mergeUnlocks removes from held any lock that some branch released.
func mergeUnlocks(held map[string]lockEvent, branches ...map[string]lockEvent) {
	for key := range held {
		for _, b := range branches {
			if _, still := b[key]; !still {
				delete(held, key)
				break
			}
		}
	}
}

func walkHeldStmt(pass *analysis.Pass, s ast.Stmt, held map[string]lockEvent) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			switch key, op := lockOp(pass, call); op {
			case opLock:
				held[key] = lockEvent{pos: call.Pos()}
				return
			case opUnlock:
				delete(held, key)
				return
			}
		}
		checkBlockingExpr(pass, s.X, held)

	case *ast.DeferStmt:
		// `defer mu.Unlock()` (directly or via a closure) means the lock
		// is held for the remainder of the function — which is exactly
		// the region already being tracked, so nothing changes here.
		return

	case *ast.GoStmt:
		// The spawned goroutine does not hold this function's locks.
		return

	case *ast.SendStmt:
		reportHeld(pass, s.Arrow, "channel send", held)
		checkBlockingExpr(pass, s.Value, held)

	case *ast.AssignStmt, *ast.DeclStmt, *ast.ReturnStmt, *ast.IncDecStmt:
		checkBlockingExpr(pass, s, held)

	case *ast.BlockStmt:
		walkHeldList(pass, s.List, held)

	case *ast.LabeledStmt:
		walkHeldStmt(pass, s.Stmt, held)

	case *ast.IfStmt:
		if s.Init != nil {
			walkHeldStmt(pass, s.Init, held)
		}
		checkBlockingExpr(pass, s.Cond, held)
		then := copyHeld(held)
		walkHeldList(pass, s.Body.List, then)
		els := copyHeld(held)
		if s.Else != nil {
			walkHeldStmt(pass, s.Else, els)
		}
		mergeUnlocks(held, then, els)

	case *ast.ForStmt:
		if s.Init != nil {
			walkHeldStmt(pass, s.Init, held)
		}
		checkBlockingExpr(pass, s.Cond, held)
		body := copyHeld(held)
		walkHeldList(pass, s.Body.List, body)
		mergeUnlocks(held, body)

	case *ast.RangeStmt:
		checkBlockingExpr(pass, s.X, held)
		body := copyHeld(held)
		walkHeldList(pass, s.Body.List, body)
		mergeUnlocks(held, body)

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var clauses []ast.Stmt
		if sw, ok := s.(*ast.SwitchStmt); ok {
			if sw.Init != nil {
				walkHeldStmt(pass, sw.Init, held)
			}
			checkBlockingExpr(pass, sw.Tag, held)
			clauses = sw.Body.List
		} else {
			ts := s.(*ast.TypeSwitchStmt)
			if ts.Init != nil {
				walkHeldStmt(pass, ts.Init, held)
			}
			clauses = ts.Body.List
		}
		var outs []map[string]lockEvent
		for _, cl := range clauses {
			cc := cl.(*ast.CaseClause)
			branch := copyHeld(held)
			walkHeldList(pass, cc.Body, branch)
			outs = append(outs, branch)
		}
		mergeUnlocks(held, outs...)

	case *ast.SelectStmt:
		hasDefault := false
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		var outs []map[string]lockEvent
		for _, cl := range s.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			branch := copyHeld(held)
			if send, ok := cc.Comm.(*ast.SendStmt); ok && !hasDefault {
				// With a default clause the send is non-blocking; without
				// one the select parks while the lock is held.
				reportHeld(pass, send.Arrow, "channel send", branch)
			}
			walkHeldList(pass, cc.Body, branch)
			outs = append(outs, branch)
		}
		mergeUnlocks(held, outs...)
	}
}

// checkBlockingExpr reports blocking calls in an expression or statement
// evaluated while locks are held. Function literals are skipped: their
// bodies run later, on a path checked separately.
func checkBlockingExpr(pass *analysis.Pass, n ast.Node, held map[string]lockEvent) {
	if n == nil || len(held) == 0 {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if desc, ok := blockingCall(pass, m); ok {
				reportHeld(pass, m.Pos(), desc, held)
			}
		}
		return true
	})
}

func reportHeld(pass *analysis.Pass, pos token.Pos, what string, held map[string]lockEvent) {
	if len(held) == 0 || suppressed(pass, pos, tagLockedIO) {
		return
	}
	// Report against one held lock (the map iteration picks it); one
	// diagnostic per site is enough to flag the convoy.
	for key, ev := range held {
		pass.Reportf(pos, "%s while %s is held (locked at line %d); release the lock first or annotate //hoplite:%s",
			what, key, pass.Position(ev.pos).Line, tagLockedIO)
		return
	}
}

type lockOpKind int

const (
	opNone lockOpKind = iota
	opLock
	opUnlock
)

// lockOp classifies a call as taking or releasing a sync mutex, keyed by
// the receiver expression's source text.
func lockOp(pass *analysis.Pass, call *ast.CallExpr) (string, lockOpKind) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", opNone
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", opNone
	}
	key := types.ExprString(sel.X)
	switch fn.Name() {
	case "Lock", "RLock":
		return key, opLock
	case "Unlock", "RUnlock":
		return key, opUnlock
	}
	return "", opNone
}

var osBlockingFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "ReadDir": true,
	"Remove": true, "RemoveAll": true, "Rename": true, "Truncate": true,
	"Mkdir": true, "MkdirAll": true, "MkdirTemp": true,
}

var osBlockingMethods = map[string]bool{
	"Read": true, "Write": true, "ReadAt": true, "WriteAt": true,
	"ReadFrom": true, "Seek": true, "Sync": true, "Close": true, "Truncate": true,
}

// blockingCall classifies calls that can block on I/O or time.
func blockingCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	var fn *types.Func
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = pass.TypesInfo.Uses[f].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = pass.TypesInfo.Uses[f.Sel].(*types.Func)
	}
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	path, name := fn.Pkg().Path(), fn.Name()
	sig, _ := fn.Type().(*types.Signature)
	isMethod := sig != nil && sig.Recv() != nil
	switch {
	case path == "time" && name == "Sleep":
		return "time.Sleep", true
	case path == "os" && !isMethod && osBlockingFuncs[name]:
		return "file I/O (os." + name + ")", true
	case path == "os" && isMethod && osBlockingMethods[name]:
		return "file I/O (os." + name + ")", true
	case path == "net":
		return "network I/O (net." + name + ")", true
	case path == "bufio" && name == "Flush":
		return "buffered I/O flush", true
	case pkgSuffixMatch(fn.Pkg(), "internal/wire") && hasAnyPrefix(name, "Read", "Write"):
		return "wire I/O (wire." + name + ")", true
	case pkgSuffixMatch(fn.Pkg(), "internal/transport") && hasAnyPrefix(name, "Pull", "Serve", "Dial", "Send", "Recv", "Read", "Write"):
		return "transport I/O (transport." + name + ")", true
	case pkgSuffixMatch(fn.Pkg(), "internal/spill") && hasAnyPrefix(name, "Read", "Write", "Open", "Remove", "Reserve", "Close"):
		return "spill I/O (spill." + name + ")", true
	}
	return "", false
}

func hasAnyPrefix(s string, prefixes ...string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(s, p) {
			return true
		}
	}
	return false
}
