package checkers

import (
	"go/ast"
	"go/constant"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"hoplite/tools/hoplitevet/analysis"
)

// WireMethod keeps the wire protocol's method table consistent. The
// codec uses a fixed frame layout (no per-method encode/decode switches),
// so the invariants that can rot are:
//
//   - wire.Method stays uint8 — the method occupies exactly one byte in
//     the frame header, and every constant fits it uniquely;
//   - every method constant is referenced somewhere in the module besides
//     its declaration — an unreferenced method is dead protocol surface
//     that decodes successfully but is silently dropped by dispatch;
//   - every method constant is seeded in sampleMessages, the corpus that
//     both TestMessageRoundTrip and FuzzMessageRoundTrip iterate, so
//     round-trip coverage cannot silently exclude a method.
//
// A method deliberately handled outside normal dispatch (or excluded from
// the corpus) is annotated `//hoplite:wire-local <reason>`.
var WireMethod = &analysis.Analyzer{
	Name: "wiremethod",
	Doc:  "check wire.Method constants for width, uniqueness, dispatch references, and fuzz-seed coverage",
	Run:  runWireMethod,
}

func runWireMethod(pass *analysis.Pass) error {
	if !pkgSuffixMatch(pass.Pkg, "internal/wire") {
		return nil
	}
	tn, ok := pass.Pkg.Scope().Lookup("Method").(*types.TypeName)
	if !ok {
		return nil
	}
	if basic, ok := tn.Type().Underlying().(*types.Basic); !ok || basic.Kind() != types.Uint8 {
		pass.Reportf(tn.Pos(), "wire.Method must remain uint8: the method is one byte in the frame header, and widening it changes the wire layout")
	}

	var consts []methodConst
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || c.Type() != tn.Type() {
			continue
		}
		v, exact := constant.Uint64Val(c.Val())
		if !exact || v > 255 {
			pass.Reportf(c.Pos(), "wire.Method constant %s = %s does not fit in one byte", name, c.Val())
			continue
		}
		consts = append(consts, methodConst{name: name, val: v, pos: c.Pos()})
	}
	sort.Slice(consts, func(i, j int) bool { return consts[i].pos < consts[j].pos })

	byVal := make(map[uint64]string)
	for _, c := range consts {
		if prev, dup := byVal[c.val]; dup {
			pass.Reportf(c.pos, "wire.Method constant %s duplicates the value %d of %s; every method must be distinguishable on the wire", c.name, c.val, prev)
			continue
		}
		byVal[c.val] = c.name
	}

	refs := moduleReferenceCounts(pass.ModuleDir, consts)
	seeds := sampleMessageIdents(pass.Dir)
	for _, c := range consts {
		if refs != nil && refs[c.name] < 2 && !suppressed(pass, c.pos, tagWireLocal) {
			pass.Reportf(c.pos, "wire.Method constant %s is never referenced outside its declaration; remove the dead method or wire it into dispatch (or annotate //hoplite:%s)", c.name, tagWireLocal)
		}
		// The zero value is the "no method" sentinel; the corpus seeds it
		// implicitly via the zero Message.
		if seeds != nil && c.val != 0 && !seeds[c.name] && !suppressed(pass, c.pos, tagWireLocal) {
			pass.Reportf(c.pos, "wire.Method constant %s is not seeded in sampleMessages, so the round-trip and fuzz tests never exercise it (or annotate //hoplite:%s)", c.name, tagWireLocal)
		}
	}
	return nil
}

// methodConst is one wire.Method constant declaration.
type methodConst struct {
	name string
	val  uint64
	pos  token.Pos
}

// moduleReferenceCounts counts whole-word occurrences of each constant
// name across the module's Go files (the declaration itself counts once).
// Returns nil when the module root is unknown.
func moduleReferenceCounts(moduleDir string, consts []methodConst) map[string]int {
	if moduleDir == "" || len(consts) == 0 {
		return nil
	}
	res := make(map[string]*regexp.Regexp, len(consts))
	counts := make(map[string]int, len(consts))
	for _, c := range consts {
		res[c.name] = regexp.MustCompile(`\b` + regexp.QuoteMeta(c.name) + `\b`)
	}
	filepath.WalkDir(moduleDir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata", "tools", "vendor":
				return filepath.SkipDir
			}
			return nil
		}
		// Test files don't count as references: a method reachable only
		// from tests is still dead protocol surface.
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil
		}
		for name, re := range res {
			counts[name] += len(re.FindAllIndex(data, -1))
		}
		return nil
	})
	return counts
}

// sampleMessageIdents parses the package's test files for a function
// named sampleMessages and returns the set of identifiers its body
// mentions. Returns nil when there is no such function (the corpus
// invariant only applies where a corpus exists).
func sampleMessageIdents(dir string) map[string]bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	fset := token.NewFileSet()
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.SkipObjectResolution)
		if err != nil {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "sampleMessages" || fd.Recv != nil || fd.Body == nil {
				continue
			}
			idents := make(map[string]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					idents[id.Name] = true
				}
				return true
			})
			return idents
		}
	}
	return nil
}
