// Package checkers implements the five hoplitevet analyzers that
// mechanically enforce the repo's concurrency invariants: refpair,
// lockhold, poolescape, sleeploop, and wiremethod. Deliberate exceptions
// are suppressed with `//hoplite:<tag> <reason>` comments; the catalogue
// of tags lives in docs/INVARIANTS.md.
package checkers

import (
	"go/ast"
	"go/token"
	"strings"

	"hoplite/tools/hoplitevet/analysis"
)

// Suppression tags. Each analyzer honors exactly one tag so an exception
// is scoped to the invariant it waives, never to the whole line.
const (
	tagRefTransfer  = "ref-transfer"  // refpair: ownership handed to a callee/struct
	tagLockedIO     = "locked-io"     // lockhold: I/O under lock is deliberate
	tagPoolTransfer = "pool-transfer" // poolescape: buffer returned via an alias/owner
	tagSleepOK      = "sleep-ok"      // sleeploop: the sleep models time, not polling
	tagCtxOrder     = "ctx-order"     // sleeploop: ctx deliberately not the first parameter
	tagWireLocal    = "wire-local"    // wiremethod: method handled outside a dispatch switch
)

// suppressed reports whether a `//hoplite:tag` comment covers pos: on the
// same line, on the line directly above, or in the doc comment of the
// enclosing function declaration.
func suppressed(pass *analysis.Pass, pos token.Pos, tag string) bool {
	posn := pass.Position(pos)
	want := "hoplite:" + tag
	for _, file := range pass.Files {
		fpos := pass.Position(file.FileStart)
		if fpos.Filename != posn.Filename {
			continue
		}
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue
				}
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, want) {
					continue
				}
				if rest := text[len(want):]; rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // a longer tag, e.g. sleep-okish
				}
				cline := pass.Position(c.Pos()).Line
				if cline == posn.Line || cline == posn.Line-1 {
					return true
				}
			}
		}
		// Enclosing function doc.
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil || pos < fd.Pos() || pos > fd.End() {
				continue
			}
			for _, c := range fd.Doc.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if text == want || strings.HasPrefix(text, want+" ") {
					return true
				}
			}
		}
	}
	return false
}

// isTestFile reports whether the file containing pos is a _test.go file.
func isTestFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Position(pos).Filename, "_test.go")
}
