package checkers

import (
	"testing"

	"hoplite/tools/hoplitevet/analysis/antest"
)

func TestRefPair(t *testing.T) {
	antest.Run(t, "testdata", RefPair, "refpairtest")
}

func TestPoolEscape(t *testing.T) {
	antest.Run(t, "testdata", PoolEscape, "poolescapetest")
}

func TestLockHold(t *testing.T) {
	antest.Run(t, "testdata", LockHold, "lockholdtest")
}

func TestSleepLoop(t *testing.T) {
	antest.Run(t, "testdata", SleepLoop, "sleeplooptest")
}

func TestWireMethod(t *testing.T) {
	antest.Run(t, "testdata", WireMethod, "hoplite/internal/wire")
}

func TestWireMethodWidth(t *testing.T) {
	antest.Run(t, "testdata", WireMethod, "widebad/internal/wire")
}
