module hoplite/tools

go 1.22
