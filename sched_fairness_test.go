package hoplite

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"hoplite/internal/netem"
)

// fairnessPhase measures small-Get latency on one cluster configuration
// while concurrent bulk streams saturate the holder's capped egress link.
// It returns the sorted latency samples.
func fairnessPhase(t *testing.T, schedClasses int) []time.Duration {
	t.Helper()
	const (
		bulkSize   = 4 << 20
		smallSize  = 1 << 10
		smallGets  = 120
		bulkFlows  = 12
		egressRate = 32 << 20
	)
	ctx := testCtx(t)
	c := startCluster(t, 3, Options{
		Emulate:         &netem.LinkConfig{Latency: 200 * time.Microsecond, BytesPerSec: egressRate},
		InlineThreshold: -1,       // small objects must ride the data plane to contend
		ChunkSize:       64 << 10, // short scheduler turns: one bulk chunk drains in ~2ms
		SchedClasses:    schedClasses,
	})

	// Node 0 holds everything; bulk pullers and the small-Get client are
	// distinct nodes so every Get is a remote data-plane pull against
	// node 0's egress.
	bulkOIDs := make([]ObjectID, bulkFlows)
	for i := range bulkOIDs {
		bulkOIDs[i] = ObjectIDFromString(fmt.Sprintf("fair-bulk-%d", i))
		if err := c.Node(0).Put(ctx, bulkOIDs[i], payload(bulkSize, byte(i))); err != nil {
			t.Fatalf("Put bulk: %v", err)
		}
	}
	smallOIDs := make([]ObjectID, smallGets)
	for i := range smallOIDs {
		smallOIDs[i] = ObjectIDFromString(fmt.Sprintf("fair-small-%d", i))
		if err := c.Node(0).Put(ctx, smallOIDs[i], payload(smallSize, byte(i))); err != nil {
			t.Fatalf("Put small: %v", err)
		}
	}

	// Bulk streams: loop cold pulls of the big objects from node 1,
	// dropping the fetched copy each round so the next pull hits the
	// network again.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < bulkFlows; i++ {
		wg.Add(1)
		go func(oid ObjectID) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.Node(1).Get(ctx, oid); err != nil {
					return // cluster shutting down
				}
				c.Node(1).Store().Delete(oid)
				if err := c.Node(1).Directory().RemoveLocation(ctx, oid); err != nil {
					return
				}
			}
		}(bulkOIDs[i])
	}
	defer func() {
		close(stop)
		wg.Wait()
	}()

	// Let the bulk streams ramp up before sampling.
	time.Sleep(300 * time.Millisecond)

	samples := make([]time.Duration, 0, smallGets)
	for _, oid := range smallOIDs {
		start := time.Now()
		if _, err := c.Node(2).Get(ctx, oid); err != nil {
			t.Fatalf("small Get: %v", err)
		}
		samples = append(samples, time.Since(start))
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return samples
}

func pct(sorted []time.Duration, p float64) time.Duration {
	i := int(float64(len(sorted)-1) * p)
	return sorted[i]
}

// With a single scheduler class, small data-plane Gets queue behind bulk
// chunk trains on the holder's saturated egress link; with the default two
// classes the weighted-deficit scheduler drains latency-class pulls ahead
// of bulk. The strict ≥5x p99 assertion only runs when
// HOPLITE_FAIRNESS_STRICT is set (the CI scheduling-fairness job sets it);
// otherwise the test just reports both distributions, keeping tier-1
// robust on noisy shared machines.
func TestSchedulerIsolatesSmallGetsFromBulk(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test; skipped with -short")
	}
	unfair := fairnessPhase(t, 1)
	fair := fairnessPhase(t, 2)
	up99, fp99 := pct(unfair, 0.99), pct(fair, 0.99)
	t.Logf("classes=1: p50=%v p95=%v p99=%v max=%v", pct(unfair, 0.50), pct(unfair, 0.95), up99, unfair[len(unfair)-1])
	t.Logf("classes=2: p50=%v p95=%v p99=%v max=%v", pct(fair, 0.50), pct(fair, 0.95), fp99, fair[len(fair)-1])
	if fp99 >= up99 {
		t.Errorf("scheduler did not improve small-Get p99: classes=1 %v vs classes=2 %v", up99, fp99)
	}
	if os.Getenv("HOPLITE_FAIRNESS_STRICT") == "" {
		t.Log("HOPLITE_FAIRNESS_STRICT unset; skipping the 5x assertion")
		return
	}
	if fp99*5 > up99 {
		t.Errorf("small-Get p99 improved only %.1fx (classes=1 %v vs classes=2 %v), want >=5x",
			float64(up99)/float64(fp99), up99, fp99)
	}
}
