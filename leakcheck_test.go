package hoplite

import (
	"testing"

	"hoplite/internal/leakcheck"
)

// TestMain routes the package (including the external hoplite_test files,
// which share this test binary) through the goroutine-leak harness; see
// docs/INVARIANTS.md.
func TestMain(m *testing.M) { leakcheck.Main(m) }
