package hoplite

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"hoplite/internal/netem"
	"hoplite/internal/types"
)

// waitProgress polls the directory until node's location for oid reaches
// the given progress flavor (location publishes are asynchronous).
func waitProgress(t *testing.T, ctx context.Context, c *Cluster, oid ObjectID, node types.NodeID, want types.Progress) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		rec, err := c.Node(0).Directory().Lookup(ctx, oid, false)
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range rec.Locs {
			if l.Node == node && l.Progress == want {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("node %v never reached %v; locations %v", node, want, rec.Locs)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestOutOfCoreSpill runs the workload class the spill tier exists for:
// aggregate object bytes 4x the per-node memory budget. Producing demotes
// cold pinned objects to disk instead of blocking; consuming cycles
// remote replicas through the consumer's own spill tier; everything stays
// readable, and the producer's memory stays under its limit.
func TestOutOfCoreSpill(t *testing.T) {
	ctx := testCtx(t)
	const (
		memLimit = 1 << 20
		objSize  = 256 << 10
		objects  = 16 // 4 MB aggregate = 4x the limit
	)
	c := startCluster(t, 2, Options{MemoryLimit: memLimit, SpillDir: t.TempDir()})
	oids := make([]ObjectID, objects)
	for i := range oids {
		oids[i] = ObjectIDFromString(fmt.Sprintf("ooc-%d", i))
		if err := c.Node(0).Put(ctx, oids[i], payload(objSize, byte(i))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if used := c.Node(0).Store().Used(); used > memLimit {
		t.Fatalf("producer memory %d exceeds limit %d", used, memLimit)
	}
	if c.Node(0).Store().Demotions() == 0 || c.Node(0).Spill().Len() == 0 {
		t.Fatalf("no demotions (%d) / spilled objects (%d) for a 4x working set",
			c.Node(0).Store().Demotions(), c.Node(0).Spill().Len())
	}
	// Consume everything from the other node: its 1 MB store cycles the
	// 4 MB of replicas through its own spill tier.
	for i, oid := range oids {
		got, err := c.Node(1).Get(ctx, oid)
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if !bytes.Equal(got, payload(objSize, byte(i))) {
			t.Fatalf("object %d corrupted through the spill cycle", i)
		}
	}
	// Local restore path: the producer re-reads an object it demoted.
	got, err := c.Node(0).Get(ctx, oids[0])
	if err != nil {
		t.Fatalf("restore get: %v", err)
	}
	if !bytes.Equal(got, payload(objSize, 0)) {
		t.Fatal("restored object corrupted")
	}
}

// TestBackpressureWithoutSpill: same out-of-core pressure with spill
// disabled must turn into admission backpressure — the Put blocks under
// its ctx instead of failing or overshooting — and a blocked Put rides
// through when room appears.
func TestBackpressureWithoutSpill(t *testing.T) {
	ctx := testCtx(t)
	const memLimit = 1 << 20
	c := startCluster(t, 1, Options{MemoryLimit: memLimit})
	n := c.Node(0)
	a, b := ObjectIDFromString("bp-a"), ObjectIDFromString("bp-b")
	if err := n.Put(ctx, a, payload(512<<10, 1)); err != nil {
		t.Fatal(err)
	}
	if err := n.Put(ctx, b, payload(512<<10, 2)); err != nil {
		t.Fatal(err)
	}
	// The store is full of pinned objects and there is no spill tier:
	// the next Put must block, not error.
	short, cancel := context.WithTimeout(ctx, 250*time.Millisecond)
	defer cancel()
	err := n.Put(short, ObjectIDFromString("bp-c"), payload(512<<10, 3))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("over-limit Put = %v, want ctx deadline (blocked)", err)
	}
	if used := n.Store().Used(); used > memLimit {
		t.Fatalf("memory %d overshot the limit", used)
	}
	// Freeing room unblocks a waiting producer.
	done := make(chan error, 1)
	go func() {
		done <- n.Put(ctx, ObjectIDFromString("bp-d"), payload(512<<10, 4))
	}()
	time.Sleep(50 * time.Millisecond)
	if err := n.Delete(ctx, a); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Put after room appeared: %v", err)
	}
}

// TestStripedGetWithSpilledSender: the striping planner leases a
// disk-backed sender alongside in-memory ones, and the spilled copy
// serves its ranges straight off the spill file.
func TestStripedGetWithSpilledSender(t *testing.T) {
	ctx := testCtx(t)
	const objSize = 1 << 20
	c := startCluster(t, 4, Options{
		MemoryLimit:     1536 << 10,
		SpillDir:        t.TempDir(),
		StripeThreshold: 256 << 10,
		MaxSources:      3,
	})
	oid := ObjectIDFromString("striped-spill")
	want := payload(objSize, 7)
	if err := c.Node(0).Put(ctx, oid, want); err != nil {
		t.Fatal(err)
	}
	// Warm complete copies on nodes 1 and 2. A Get returns as soon as the
	// bytes are local; wait until each copy's completion has actually been
	// published (the publish is asynchronous) before applying pressure,
	// or the late PutComplete would overwrite the Spilled downgrade.
	for _, i := range []int{1, 2} {
		if _, err := c.Node(i).Get(ctx, oid); err != nil {
			t.Fatal(err)
		}
		waitProgress(t, ctx, c, oid, c.Node(i).ID(), types.ProgressComplete)
	}
	// Pressure node 2 into demoting its copy (the only unpinned object).
	if err := c.Node(2).Put(ctx, ObjectIDFromString("filler"), payload(768<<10, 9)); err != nil {
		t.Fatal(err)
	}
	waitProgress(t, ctx, c, oid, c.Node(2).ID(), types.ProgressSpilled)
	before := c.Node(2).DataStats()
	got, err := c.Node(3).Get(ctx, oid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("striped get with disk-backed sender corrupted the object")
	}
	after := c.Node(2).DataStats()
	if after.RangedPulls == before.RangedPulls {
		t.Fatalf("spilled sender served no ranged pulls (stats %+v)", after)
	}
}

// TestRestartRediscoversSpill: a restarted worker rescans its spill
// directory and re-offers the objects it demoted in its previous life —
// even after the directory purged every location it used to hold.
func TestRestartRediscoversSpill(t *testing.T) {
	ctx := testCtx(t)
	dir := t.TempDir()
	c := startCluster(t, 3, Options{
		Emulate:     &netem.LinkConfig{Latency: 200 * time.Microsecond, BytesPerSec: 1e9},
		ShardNodes:  1,
		MemoryLimit: 1 << 20,
		SpillDir:    dir,
	})
	oidA := ObjectIDFromString("restart-a")
	wantA := payload(600<<10, 5)
	if err := c.Node(2).Put(ctx, oidA, wantA); err != nil {
		t.Fatal(err)
	}
	// A second Put crosses the high watermark and demotes A to disk.
	if err := c.Node(2).Put(ctx, ObjectIDFromString("restart-b"), payload(600<<10, 6)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Node(2).Spill().Contains(oidA); !ok {
		t.Fatal("object A was not demoted to the spill tier")
	}
	oldID := c.Node(2).ID()
	if err := c.KillNode(2); err != nil {
		t.Fatal(err)
	}
	// The framework notices the death and purges every location the dead
	// node held — A now has no locations at all.
	if err := c.Node(0).Directory().PurgeNode(ctx, oldID); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartNode(2); err != nil {
		t.Fatal(err)
	}
	// The restarted node (same name, same spill subdirectory) re-offers
	// A from disk; the waiting Get unblocks when the registration lands.
	getCtx, cancel := context.WithTimeout(ctx, 20*time.Second)
	defer cancel()
	got, err := c.Node(0).Get(getCtx, oidA)
	if err != nil {
		t.Fatalf("get after restart: %v", err)
	}
	if !bytes.Equal(got, wantA) {
		t.Fatal("rediscovered object corrupted")
	}
}

// TestRestoreUnderEvictionPressure cycles a working set 4x the memory
// budget through Get/GetRef: every restore demotes colder objects, and
// every payload must come back intact whichever tier it was in.
func TestRestoreUnderEvictionPressure(t *testing.T) {
	ctx := testCtx(t)
	const (
		memLimit = 1 << 20
		objSize  = 256 << 10
		objects  = 16
	)
	c := startCluster(t, 1, Options{MemoryLimit: memLimit, SpillDir: t.TempDir()})
	n := c.Node(0)
	oids := make([]ObjectID, objects)
	for i := range oids {
		oids[i] = ObjectIDFromString(fmt.Sprintf("cycle-%d", i))
		if err := n.Put(ctx, oids[i], payload(objSize, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Two passes in opposite orders so every pass hits mostly-spilled
	// objects; odd indexes use the pinned zero-copy handle path.
	for pass := 0; pass < 2; pass++ {
		for j := 0; j < objects; j++ {
			i := j
			if pass == 1 {
				i = objects - 1 - j
			}
			want := payload(objSize, byte(i))
			if i%2 == 1 {
				ref, err := n.GetRef(ctx, oids[i])
				if err != nil {
					t.Fatalf("pass %d getref %d: %v", pass, i, err)
				}
				if !bytes.Equal(ref.Bytes(), want) {
					t.Fatalf("pass %d object %d corrupted (ref)", pass, i)
				}
				ref.Release()
			} else {
				got, err := n.Get(ctx, oids[i])
				if err != nil {
					t.Fatalf("pass %d get %d: %v", pass, i, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("pass %d object %d corrupted", pass, i)
				}
			}
		}
	}
	if n.Store().Demotions() == 0 {
		t.Fatal("no demotions under a 4x working set")
	}
}
