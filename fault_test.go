package hoplite

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"hoplite/internal/netem"
	"hoplite/internal/types"
)

// oidOnShard crafts an ObjectID that maps to the given directory shard, so
// fault tests can keep coordination metadata away from killed nodes (the
// paper delegates directory fault tolerance to the framework, §6).
func oidOnShard(t *testing.T, label string, shards, want int) ObjectID {
	t.Helper()
	for i := 0; i < 1_000_000; i++ {
		oid := ObjectIDFromString(fmt.Sprintf("%s-%d", label, i))
		if oid.Shard(shards) == want {
			return oid
		}
	}
	t.Fatal("could not craft ObjectID on shard")
	return ObjectID{}
}

func slowEmu() *netem.LinkConfig {
	return &netem.LinkConfig{
		Latency:     200 * time.Microsecond,
		BytesPerSec: 32 << 20, // 32 MB/s so multi-MB transfers take visible time
	}
}

// TestBroadcastSenderFailure kills an intermediate broadcast sender
// mid-transfer and checks the receiver fails over to the original source
// and still receives exact bytes (§3.5.1, Figure 4c').
func TestBroadcastSenderFailure(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 4, Options{Emulate: slowEmu()})
	data := payload(8<<20, 7)
	oid := oidOnShard(t, "bfail", c.Size(), 0)
	if err := c.Node(0).Put(ctx, oid, data); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Node 1 fetches the full object first.
	if _, err := c.Node(1).Get(ctx, oid); err != nil {
		t.Fatalf("node1 Get: %v", err)
	}
	// Node 3 leases node 0 (the only complete copy is preferred, but to
	// make the test deterministic we start it first and let it hold the
	// lease while node 2 arrives).
	done3 := make(chan error, 1)
	go func() {
		_, err := c.Node(3).Get(ctx, oid)
		done3 <- err
	}()
	time.Sleep(100 * time.Millisecond)
	// Node 2 must now fetch from node 1 or node 0 — whichever it gets,
	// kill node 1 mid-flight; if node 2 was on node 1 it must fail over.
	done2 := make(chan error, 1)
	var got2 []byte
	go func() {
		var err error
		got2, err = c.Node(2).Get(ctx, oid)
		done2 <- err
	}()
	time.Sleep(60 * time.Millisecond)
	if err := c.KillNode(1); err != nil {
		t.Fatal(err)
	}
	if err := <-done2; err != nil {
		t.Fatalf("node2 Get after sender failure: %v", err)
	}
	if !bytes.Equal(got2, data) {
		t.Fatal("node2 payload mismatch after failover")
	}
	if err := <-done3; err != nil {
		t.Fatalf("node3 Get: %v", err)
	}
}

// TestStripedGetSenderFailure kills one of a striped Get's senders
// mid-transfer. The dead worker returns its unwritten chunks to the
// ledger, so the surviving senders re-fetch exactly the missing ranges —
// the Get must complete with exact bytes and without restarting from the
// lowest contiguous offset.
func TestStripedGetSenderFailure(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 4, Options{Emulate: slowEmu(), StripeThreshold: 1 << 20, MaxSources: 3})
	data := payload(16<<20, 13)
	oid := oidOnShard(t, "stripefail", c.Size(), 0)
	if err := c.Node(0).Put(ctx, oid, data); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Warm complete copies on nodes 1 and 2 so the striped Get leases
	// three senders.
	for i := 1; i <= 2; i++ {
		if err := c.Node(i).WaitLocal(ctx, oid); err != nil {
			t.Fatalf("warm node%d: %v", i, err)
		}
	}
	waitComplete(t, ctx, c, 0, oid, 3)
	before := []int64{c.Node(0).DataStats().RangedPulls, 0, c.Node(2).DataStats().RangedPulls}
	done := make(chan error, 1)
	var got []byte
	go func() {
		var err error
		got, err = c.Node(3).Get(ctx, oid)
		done <- err
	}()
	// 16 MB at 32 MB/s receiver ingress takes ~500 ms; kill a sender once
	// the stripes are in flight.
	time.Sleep(120 * time.Millisecond)
	if err := c.KillNode(1); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("striped Get after sender failure: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("striped Get payload mismatch after sender failure")
	}
	// The surviving senders carried the stripes (including any ranges the
	// dead sender returned to the ledger).
	if c.Node(0).DataStats().RangedPulls <= before[0] || c.Node(2).DataStats().RangedPulls <= before[2] {
		t.Fatal("surviving senders served no ranged pulls")
	}
}

// TestReduceParticipantFailure kills a reduce participant mid-stream; the
// coordinator must drop it, replace the slot with the spare source, and
// produce the fold of exactly the used sources (§3.5.2, Figure 5b).
func TestReduceParticipantFailure(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 8, Options{Emulate: slowEmu()})
	const elems = 1 << 20 // 4 MB per object
	vals := make([]float32, c.Size())
	sources := make([]ObjectID, 0, 7)
	for i := 1; i < c.Size(); i++ {
		xs := make([]float32, elems)
		vals[i] = float32(i * 10)
		for j := range xs {
			xs[j] = vals[i]
		}
		oid := oidOnShard(t, fmt.Sprintf("rfail-src-%d", i), c.Size(), 0)
		if err := c.Node(i).Put(ctx, oid, types.EncodeF32(xs)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
		sources = append(sources, oid)
	}
	target := oidOnShard(t, "rfail-out", c.Size(), 0)

	reduceDone := make(chan error, 1)
	var used []ObjectID
	go func() {
		var err error
		used, err = c.Node(0).Reduce(ctx, target, sources, 6, SumF32)
		reduceDone <- err
	}()
	time.Sleep(80 * time.Millisecond)
	if err := c.KillNode(3); err != nil {
		t.Fatal(err)
	}
	if err := <-reduceDone; err != nil {
		t.Fatalf("Reduce with failure: %v", err)
	}
	if len(used) != 6 {
		t.Fatalf("used %d sources, want 6", len(used))
	}
	// The killed node's source must not be in the used set.
	killed := ObjectID{}
	for i, src := range sources {
		if i+1 == 3 { // sources[i] was put by node i+1
			killed = src
		}
	}
	var want float64
	for _, src := range used {
		if src == killed {
			t.Fatal("killed participant's source in used set")
		}
		for i := 1; i < c.Size(); i++ {
			if src == sources[i-1] {
				want += float64(vals[i])
			}
		}
	}
	raw, err := c.Node(0).Get(ctx, target)
	if err != nil {
		t.Fatalf("Get result: %v", err)
	}
	got := types.DecodeF32(raw)
	for j := 0; j < elems; j += elems / 7 {
		if float64(got[j]) != want {
			t.Fatalf("elem %d: got %v want %v (used=%d)", j, got[j], want, len(used))
		}
	}
}

// TestReduceRejoin kills a participant when there is no spare source
// (m == n); the reduce must block until the "task" re-executes (the source
// is re-Put elsewhere) and then complete — the paper's rejoin behaviour.
func TestReduceRejoin(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 5, Options{Emulate: slowEmu()})
	const elems = 1 << 20
	sources := make([]ObjectID, 0, 4)
	var want float64
	var data3 []byte
	for i := 1; i < c.Size(); i++ {
		xs := make([]float32, elems)
		for j := range xs {
			xs[j] = float32(i)
		}
		want += float64(i)
		oid := oidOnShard(t, fmt.Sprintf("rejoin-src-%d", i), c.Size(), 0)
		enc := types.EncodeF32(xs)
		if i == 3 {
			data3 = enc
		}
		if err := c.Node(i).Put(ctx, oid, enc); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
		sources = append(sources, oid)
	}
	target := oidOnShard(t, "rejoin-out", c.Size(), 0)
	reduceDone := make(chan error, 1)
	go func() {
		_, err := c.Node(0).Reduce(ctx, target, sources, len(sources), SumF32)
		reduceDone <- err
	}()
	time.Sleep(80 * time.Millisecond)
	if err := c.KillNode(3); err != nil {
		t.Fatal(err)
	}
	// The reduce cannot finish: 4 of 4 sources are required.
	select {
	case err := <-reduceDone:
		t.Fatalf("Reduce finished despite missing source: %v", err)
	case <-time.After(1 * time.Second):
	}
	// "Task re-execution": the lost source reappears on node 0.
	if err := c.Node(0).Put(ctx, sources[2], data3); err != nil {
		t.Fatalf("re-Put: %v", err)
	}
	if err := <-reduceDone; err != nil {
		t.Fatalf("Reduce after rejoin: %v", err)
	}
	raw, err := c.Node(0).Get(ctx, target)
	if err != nil {
		t.Fatalf("Get result: %v", err)
	}
	got := types.DecodeF32(raw)
	if float64(got[0]) != want || float64(got[elems-1]) != want {
		t.Fatalf("got %v want %v", got[0], want)
	}
}

// TestBroadcastReceiverRejoin kills a receiver mid-fetch; after "restart"
// the same fetch (a fresh Get from a live node) succeeds and other
// receivers are unaffected.
func TestBroadcastReceiverRejoin(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 4, Options{Emulate: slowEmu()})
	data := payload(8<<20, 11)
	oid := oidOnShard(t, "brejoin", c.Size(), 0)
	if err := c.Node(0).Put(ctx, oid, data); err != nil {
		t.Fatalf("Put: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.Node(2).Get(ctx, oid)
		done <- err
	}()
	time.Sleep(60 * time.Millisecond)
	if err := c.KillNode(2); err != nil {
		t.Fatal(err)
	}
	<-done // the killed node's Get fails or hangs; either way others work
	got, err := c.Node(1).Get(ctx, oid)
	if err != nil {
		t.Fatalf("node1 Get after receiver death: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("payload mismatch")
	}
	ctxShort, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	got3, err := c.Node(3).Get(ctxShort, oid)
	if err != nil {
		t.Fatalf("node3 Get: %v", err)
	}
	if !bytes.Equal(got3, data) {
		t.Fatal("node3 payload mismatch")
	}
}
