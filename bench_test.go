package hoplite_test

// One benchmark per paper table/figure (§5, Appendices A, B), each
// regenerating the corresponding experiment at the quick scale, plus
// microbenchmarks for the hot primitives. Run the full-fidelity versions
// with cmd/hoplite-bench. See EXPERIMENTS.md for paper-vs-measured notes.

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hoplite"
	"hoplite/internal/bench"
	"hoplite/internal/netem"
	"hoplite/internal/types"
	"hoplite/internal/wire"
)

func benchFigure(b *testing.B, fn func(sc bench.Scale) ([]*bench.Table, error)) {
	b.Helper()
	sc := bench.QuickScale()
	for i := 0; i < b.N; i++ {
		tables, err := fn(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && testing.Verbose() {
			for _, t := range tables {
				t.Fprint(os.Stdout)
			}
		}
	}
}

func BenchmarkDirectoryMicro(b *testing.B) {
	benchFigure(b, bench.DirectoryMicro)
}

func BenchmarkFig6PointToPoint(b *testing.B) {
	benchFigure(b, bench.Figure6)
}

func BenchmarkFig7Collectives(b *testing.B) {
	benchFigure(b, func(sc bench.Scale) ([]*bench.Table, error) {
		return bench.Figure7(sc, []int{4, 8})
	})
}

func BenchmarkFig8Asynchrony(b *testing.B) {
	benchFigure(b, func(sc bench.Scale) ([]*bench.Table, error) {
		return bench.Figure8(sc, 8, []time.Duration{0, 100 * time.Millisecond, 300 * time.Millisecond})
	})
}

func BenchmarkFig9AsyncSGD(b *testing.B) {
	benchFigure(b, func(sc bench.Scale) ([]*bench.Table, error) {
		return bench.Figure9(sc, []int{8}, 4)
	})
}

func BenchmarkFig10RL(b *testing.B) {
	benchFigure(b, func(sc bench.Scale) ([]*bench.Table, error) {
		return bench.Figure10(sc, []int{8}, 4)
	})
}

func BenchmarkFig11Serving(b *testing.B) {
	benchFigure(b, func(sc bench.Scale) ([]*bench.Table, error) {
		return bench.Figure11(sc, []int{8}, 8)
	})
}

func BenchmarkFig12FaultTolerance(b *testing.B) {
	benchFigure(b, func(sc bench.Scale) ([]*bench.Table, error) {
		return bench.Figure12(sc, 18)
	})
}

func BenchmarkFig13SyncTraining(b *testing.B) {
	benchFigure(b, func(sc bench.Scale) ([]*bench.Table, error) {
		return bench.Figure13(sc, []int{8}, 2)
	})
}

func BenchmarkFig14SmallObjects(b *testing.B) {
	benchFigure(b, func(sc bench.Scale) ([]*bench.Table, error) {
		return bench.Figure14(sc, []int{4, 8})
	})
}

func BenchmarkFig15ReduceDegree(b *testing.B) {
	benchFigure(b, func(sc bench.Scale) ([]*bench.Table, error) {
		return bench.Figure15(sc, []int64{4 << 10, 4 << 20}, []int{8})
	})
}

func BenchmarkCtrlPlaneMicro(b *testing.B) {
	benchFigure(b, bench.ControlPlaneMicro)
}

// --- control-plane codec microbenchmarks ---

// ctrlPlaneMessage is a representative directory RPC frame: the shape of
// a MethodLookup response (size + location list) or a MethodAcquire
// exchange, the two hottest control-plane messages.
func ctrlPlaneMessage() wire.Message {
	return wire.Message{
		Method: wire.MethodLookup,
		ID:     12345,
		Flags:  wire.FlagResponse,
		OID:    hoplite.ObjectIDFromString("bench-object"),
		Node:   "10.0.0.1:7777",
		Sender: "10.0.0.2:7777",
		Size:   64 << 20,
		Gen:    3,
		Locs: []types.Location{
			{Node: "10.0.0.2:7777", Progress: types.ProgressComplete},
			{Node: "10.0.0.3:7777", Progress: types.ProgressPartial},
		},
	}
}

// BenchmarkWireRoundTrip measures one encode+decode of a control-plane
// message through the fixed-layout binary codec. Compare with
// BenchmarkWireRoundTripGob: the acceptance bar for the codec is ≥3x
// fewer allocs/op.
func BenchmarkWireRoundTrip(b *testing.B) {
	m := ctrlPlaneMessage()
	var buf []byte
	var out wire.Message
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = wire.AppendMessage(buf[:0], &m)
		if err != nil {
			b.Fatal(err)
		}
		if err := wire.UnmarshalMessage(buf[4:], &out); err != nil {
			b.Fatal(err)
		}
	}
	if out.Size != m.Size || len(out.Locs) != len(m.Locs) {
		b.Fatal("round trip mismatch")
	}
}

// BenchmarkWireRoundTripGob is the retained reference: the same message
// through encoding/gob with a persistent encoder/decoder pair, exactly as
// the pre-codec control plane ran its connections.
func BenchmarkWireRoundTripGob(b *testing.B) {
	m := ctrlPlaneMessage()
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	dec := gob.NewDecoder(&buf)
	var out wire.Message
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := enc.Encode(&m); err != nil {
			b.Fatal(err)
		}
		if err := dec.Decode(&out); err != nil {
			b.Fatal(err)
		}
	}
	if out.Size != m.Size || len(out.Locs) != len(m.Locs) {
		b.Fatal("round trip mismatch")
	}
}

// benchWireCall measures live RPC round trips (request + matched
// response) over loopback TCP through the wire client/server.
func benchWireCall(b *testing.B, req wire.Message, h wire.Handler) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := wire.NewServer(ln, h)
	go srv.Serve()
	defer srv.Close()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	c := wire.NewClient(conn, nil)
	defer c.Close()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := c.Call(ctx, req)
		if err != nil {
			b.Fatal(err)
		}
		if e := resp.ErrorOf(); e != nil {
			b.Fatal(e)
		}
	}
}

func BenchmarkWireCallLookup(b *testing.B) {
	resp := ctrlPlaneMessage()
	benchWireCall(b,
		wire.Message{Method: wire.MethodLookup, OID: resp.OID},
		func(ctx context.Context, m wire.Message, p *wire.Peer) wire.Message { return resp })
}

func BenchmarkWireCallAcquire(b *testing.B) {
	benchWireCall(b,
		wire.Message{Method: wire.MethodAcquire, OID: hoplite.ObjectIDFromString("bench-object"), Node: "10.0.0.1:7777", Wait: true},
		func(ctx context.Context, m wire.Message, p *wire.Peer) wire.Message {
			return wire.Message{Sender: "10.0.0.2:7777", Size: 64 << 20, Gen: 1}
		})
}

// --- primitive microbenchmarks (plain loopback TCP, no emulation) ---

func BenchmarkPutGet1MB(b *testing.B) {
	c, err := hoplite.StartLocalCluster(2, hoplite.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	data := make([]byte, 1<<20)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oid := hoplite.RandomObjectID()
		if err := c.Node(0).Put(ctx, oid, data); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Node(1).GetImmutable(ctx, oid); err != nil {
			b.Fatal(err)
		}
		c.Node(0).Delete(ctx, oid)
	}
}

// benchOIDOnShard crafts an ObjectID that maps to the given directory
// shard, so the failover benchmark targets the killed primary's shard.
func benchOIDOnShard(b *testing.B, label string, shards, want int) hoplite.ObjectID {
	b.Helper()
	for i := 0; i < 1_000_000; i++ {
		oid := hoplite.ObjectIDFromString(fmt.Sprintf("%s-%d", label, i))
		if oid.Shard(shards) == want {
			return oid
		}
	}
	b.Fatal("could not craft ObjectID on shard")
	return hoplite.ObjectID{}
}

// BenchmarkDirectoryFailover measures metadata-plane recovery: the wall
// time from killing a directory shard's primary replica to the first
// successful mutation on that shard through the promoted backup — the
// lease expiry + succession probe + promotion window the client's
// failover retry loop rides out.
func BenchmarkDirectoryFailover(b *testing.B) {
	var total time.Duration
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c, err := hoplite.StartLocalCluster(3, hoplite.Options{
			Emulate: &netem.LinkConfig{Latency: 200 * time.Microsecond, BytesPerSec: 1.25e9},
		})
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		warm := benchOIDOnShard(b, fmt.Sprintf("failover-warm-%d", i), c.Size(), 0)
		if err := c.Node(1).Put(ctx, warm, []byte("warm the shard-0 path")); err != nil {
			b.Fatal(err)
		}
		if err := c.KillNode(0); err != nil { // shard 0's primary
			b.Fatal(err)
		}
		b.StartTimer()
		start := time.Now()
		pctx, cancel := context.WithTimeout(ctx, 30*time.Second)
		oid := benchOIDOnShard(b, fmt.Sprintf("failover-probe-%d", i), c.Size(), 0)
		if err := c.Node(1).Put(pctx, oid, []byte("first write after primary kill")); err != nil {
			b.Fatalf("mutation never recovered: %v", err)
		}
		cancel()
		total += time.Since(start)
		b.StopTimer()
		c.Close()
	}
	if b.N > 0 {
		b.ReportMetric(float64(total.Microseconds())/1000/float64(b.N), "ms/recovery")
	}
}

func BenchmarkBroadcast8Nodes4MB(b *testing.B) {
	c, err := hoplite.StartLocalCluster(8, hoplite.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	data := make([]byte, 4<<20)
	b.SetBytes(4 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oid := hoplite.RandomObjectID()
		if err := c.Node(0).Put(ctx, oid, data); err != nil {
			b.Fatal(err)
		}
		errc := make(chan error, 7)
		for w := 1; w < 8; w++ {
			go func(w int) {
				_, err := c.Node(w).GetImmutable(ctx, oid)
				errc <- err
			}(w)
		}
		for w := 1; w < 8; w++ {
			if err := <-errc; err != nil {
				b.Fatal(err)
			}
		}
		c.Node(0).Delete(ctx, oid)
	}
}

func BenchmarkReduce8Nodes4MB(b *testing.B) {
	c, err := hoplite.StartLocalCluster(8, hoplite.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	data := make([]byte, 4<<20)
	b.SetBytes(4 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oids := make([]hoplite.ObjectID, 8)
		for w := 0; w < 8; w++ {
			oids[w] = hoplite.RandomObjectID()
			if err := c.Node(w).Put(ctx, oids[w], data); err != nil {
				b.Fatal(err)
			}
		}
		target := hoplite.RandomObjectID()
		if _, err := c.Node(0).Reduce(ctx, target, oids, 8, hoplite.SumF32); err != nil {
			b.Fatal(err)
		}
		if err := c.Node(0).WaitLocal(ctx, target); err != nil {
			b.Fatal(err)
		}
		c.Node(0).Delete(ctx, target)
		for _, oid := range oids {
			c.Node(0).Delete(ctx, oid)
		}
	}
}

// BenchmarkStripedGet compares a single-source pipelined Get against a
// striped multi-source Get of the same object under netem per-node
// bandwidth caps. Senders are capped at 32 MB/s egress while the receiver
// has a fat ingress link, so the single-source fetch is sender-bound and
// the striped fetch aggregates the copies' bandwidth: sources=4 should
// beat sources=1 by roughly the source count. The sweep over source
// counts shows the aggregation scaling (and where it saturates).
func BenchmarkStripedGet(b *testing.B) {
	const size = 32 << 20
	for _, srcs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("sources=%d", srcs), func(b *testing.B) {
			c, err := hoplite.StartLocalCluster(6, hoplite.Options{
				Emulate: &netem.LinkConfig{
					Latency:     200 * time.Microsecond,
					BytesPerSec: 32 << 20,
				},
				StripeThreshold: 1 << 20,
				MaxSources:      srcs,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			// Receiver ingress is not the bottleneck: the measured fetch
			// is limited by sender egress, the regime striping targets.
			if err := c.SetNodeLink(5, netem.LinkConfig{BytesPerSec: 512 << 20}); err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			data := make([]byte, size)
			oid := hoplite.RandomObjectID()
			if err := c.Node(0).Put(ctx, oid, data); err != nil {
				b.Fatal(err)
			}
			// Warm four complete copies (nodes 0..3) to stripe across,
			// then wait for their complete locations to land in the
			// directory (WaitLocal returns before the sender's completion
			// RPC is processed).
			for i := 1; i <= 3; i++ {
				if err := c.Node(i).WaitLocal(ctx, oid); err != nil {
					b.Fatal(err)
				}
			}
			deadline := time.Now().Add(20 * time.Second)
			for {
				rec, err := c.Node(5).Directory().Lookup(ctx, oid, false)
				complete := 0
				if err == nil {
					for _, l := range rec.Locs {
						if l.Progress == types.ProgressComplete {
							complete++
						}
					}
				}
				if complete >= 4 {
					break
				}
				if time.Now().After(deadline) {
					b.Fatalf("only %d complete copies registered", complete)
				}
				time.Sleep(10 * time.Millisecond)
			}
			b.SetBytes(size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Node(5).GetImmutable(ctx, oid); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				// Drop the receiver's copy so the next iteration fetches
				// over the network again.
				c.Node(5).Store().Delete(oid)
				if err := c.Node(5).Directory().RemoveLocation(ctx, oid); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
	}
}

// BenchmarkGetRef measures the zero-copy handle path on a warmed local
// complete copy. The acceptance bar — asserted by the bench-smoke CI job —
// is 0 B/op and 0 allocs/op: no payload bytes are copied and the handle
// itself is pooled. Contrast with BenchmarkGetRefCopy, where the legacy
// Get of the same object copies the full payload every op.
func BenchmarkGetRef(b *testing.B) {
	c, oid, size := benchWarmLocalCopy(b)
	ctx := context.Background()
	b.SetBytes(size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref, err := c.Node(1).GetRef(ctx, oid)
		if err != nil {
			b.Fatal(err)
		}
		if ref.Bytes()[0] != 42 {
			b.Fatal("bad payload")
		}
		ref.Release()
	}
}

// BenchmarkGetRefCopy is the legacy contrast for BenchmarkGetRef: the
// same warmed local object through Get, which materializes a private
// copy — one full object of allocation and memcpy per op.
func BenchmarkGetRefCopy(b *testing.B) {
	c, oid, size := benchWarmLocalCopy(b)
	ctx := context.Background()
	b.SetBytes(size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := c.Node(1).Get(ctx, oid)
		if err != nil {
			b.Fatal(err)
		}
		if out[0] != 42 {
			b.Fatal("bad payload")
		}
	}
}

// benchWarmLocalCopy puts one object and warms a complete copy of it
// into node 1's store, so the measured loop exercises only the local
// read path.
func benchWarmLocalCopy(b *testing.B) (*hoplite.Cluster, hoplite.ObjectID, int64) {
	b.Helper()
	c, err := hoplite.StartLocalCluster(2, hoplite.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	ctx := context.Background()
	const size = 16 << 20
	data := make([]byte, size)
	data[0] = 42
	oid := hoplite.RandomObjectID()
	if err := c.Node(0).Put(ctx, oid, data); err != nil {
		b.Fatal(err)
	}
	if err := c.Node(1).WaitLocal(ctx, oid); err != nil {
		b.Fatal(err)
	}
	// Populate the handle pool so the measured loop is steady state.
	ref, err := c.Node(1).GetRef(ctx, oid)
	if err != nil {
		b.Fatal(err)
	}
	ref.Release()
	return c, oid, size
}

func BenchmarkSmallObjectInline(b *testing.B) {
	c, err := hoplite.StartLocalCluster(2, hoplite.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	data := make([]byte, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oid := hoplite.RandomObjectID()
		if err := c.Node(0).Put(ctx, oid, data); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Node(1).Get(ctx, oid); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpillRestore measures the spill tier's restore path: two
// objects share a memory budget that fits only one, so every Get of the
// cold one streams its payload back off the spill file (demoting the
// other). The reported MB/s is disk-restore throughput including the
// demotion it triggers.
// BenchmarkSmallObjectQPS measures the small-object fast path end to end
// on the paper's emulated testbed link (200µs, 10 Gbps): concurrent
// workers drive Put+Get pairs of 1 KiB objects between two nodes.
//
//	baseline — the pre-fast-path configuration: inline payloads off (every
//	  Get is a directory acquire plus a data-plane pull), write batching
//	  off (one syscall per control frame), location cache off.
//	fastpath — the default configuration: sub-threshold objects ride
//	  inline in directory replies (a cold Get is one RPC), control frames
//	  coalesce, and locations are cached.
//
// CI's bench-smoke job asserts a floor on the fastpath ops/sec and the
// fastpath/baseline ratio (see .github/workflows/ci.yml).
func BenchmarkSmallObjectQPS(b *testing.B) {
	const (
		workers = 256
		round   = 250 * time.Millisecond
	)
	link := &netem.LinkConfig{Latency: 200 * time.Microsecond, BytesPerSec: 1.25e9}
	run := func(b *testing.B, opts hoplite.Options) {
		opts.Emulate = link
		// Single-replica directory: replication forwarding (PR 5) is
		// orthogonal to the control-plane path being compared, and both
		// variants share the setting.
		opts.ReplicationFactor = 1
		c, err := hoplite.StartLocalCluster(2, opts)
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		ctx := context.Background()
		data := make([]byte, 1024)
		var totalOps int64
		var totalTime time.Duration
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var ops atomic.Int64
			var wg sync.WaitGroup
			start := time.Now()
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for j := 0; time.Since(start) < round; j++ {
						oid := hoplite.ObjectIDFromString(fmt.Sprintf("qps-%d-%d-%d", i, w, j))
						if err := c.Node(0).Put(ctx, oid, data); err != nil {
							b.Error(err)
							return
						}
						if _, err := c.Node(1).Get(ctx, oid); err != nil {
							b.Error(err)
							return
						}
						ops.Add(2)
					}
				}(w)
			}
			wg.Wait()
			totalOps += ops.Load()
			totalTime += time.Since(start)
		}
		b.StopTimer()
		if totalTime > 0 {
			b.ReportMetric(float64(totalOps)/totalTime.Seconds(), "ops/sec")
		}
	}
	b.Run("baseline", func(b *testing.B) {
		run(b, hoplite.Options{InlineThreshold: -1, MaxBatchDelay: -1, LocationCacheSize: -1})
	})
	b.Run("fastpath", func(b *testing.B) {
		// Inline payloads + location cache at their defaults, plus a
		// batching window matched to the link latency so concurrent
		// control frames coalesce into shared segments.
		run(b, hoplite.Options{MaxBatchDelay: 200 * time.Microsecond})
	})
}

func BenchmarkSpillRestore(b *testing.B) {
	const (
		memLimit = 8 << 20
		objSize  = 6 << 20
	)
	c, err := hoplite.StartLocalCluster(1, hoplite.Options{
		MemoryLimit: memLimit,
		SpillDir:    b.TempDir(),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	n := c.Node(0)
	oids := [2]hoplite.ObjectID{
		hoplite.ObjectIDFromString("spill-a"),
		hoplite.ObjectIDFromString("spill-b"),
	}
	for _, oid := range oids {
		if err := n.Put(ctx, oid, make([]byte, objSize)); err != nil {
			b.Fatal(err)
		}
	}
	if n.Spill().Len() == 0 {
		b.Fatal("second Put did not demote the first object")
	}
	b.SetBytes(objSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Alternate: the requested object is always the spilled one.
		ref, err := n.GetRef(ctx, oids[i%2])
		if err != nil {
			b.Fatal(err)
		}
		ref.Release()
	}
	b.StopTimer()
	if n.Store().Demotions() < int64(b.N) {
		b.Fatalf("only %d demotions over %d restores; restores were served from memory", n.Store().Demotions(), b.N)
	}
}

// BenchmarkOutOfCore runs the full out-of-core workload (working set 4x
// the memory budget, produce + two-pass read-back) at a small scale.
func BenchmarkOutOfCore(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		res, err := bench.OutOfCore(ctx, b.TempDir(), 4<<20, 512<<10, 4)
		if err != nil {
			b.Fatal(err)
		}
		if res.Demotions == 0 {
			b.Fatal("workload never spilled")
		}
		b.ReportMetric(res.ReadBps/1e6, "read-MB/s")
		b.ReportMetric(res.PutBps/1e6, "put-MB/s")
	}
}
