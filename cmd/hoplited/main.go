// Command hoplited runs one standalone Hoplite object-store node over
// plain TCP — the production deployment mode. Every node of a cluster
// runs hoplited; the first -shards entries name the nodes hosting
// directory shards (which must be started with -host-shard).
//
//	# head node (hosts the only directory shard)
//	hoplited -listen 10.0.0.1:7077 -host-shard
//
//	# worker nodes
//	hoplited -listen 10.0.0.2:7077 -shards 10.0.0.1:7077
//	hoplited -listen 10.0.0.3:7077 -shards 10.0.0.1:7077
//
//	# replicated directory: 3 shard hosts, each shard on 2 of them in
//	# succession order; every daemon gets identical -shards/-replication
//	hoplited -listen 10.0.0.1:7077 -shards 10.0.0.1:7077,10.0.0.2:7077,10.0.0.3:7077 -replication 2
//	hoplited -listen 10.0.0.2:7077 -shards 10.0.0.1:7077,10.0.0.2:7077,10.0.0.3:7077 -replication 2
//	hoplited -listen 10.0.0.3:7077 -shards 10.0.0.1:7077,10.0.0.2:7077,10.0.0.3:7077 -replication 2
//	hoplited -listen 10.0.0.4:7077 -shards 10.0.0.1:7077,10.0.0.2:7077,10.0.0.3:7077 -replication 2  # worker
//
//	# elastic membership: three founding shard hosts boot with identical
//	# -bootstrap lists; later nodes join (and leave) a running cluster
//	hoplited -listen 10.0.0.1:7077 -bootstrap 10.0.0.1:7077,10.0.0.2:7077,10.0.0.3:7077 -replication 2
//	hoplited -listen 10.0.0.2:7077 -bootstrap 10.0.0.1:7077,10.0.0.2:7077,10.0.0.3:7077 -replication 2
//	hoplited -listen 10.0.0.3:7077 -bootstrap 10.0.0.1:7077,10.0.0.2:7077,10.0.0.3:7077 -replication 2
//	hoplited -listen 10.0.0.4:7077 -join 10.0.0.1:7077          # scale-out
//	hoplite-cli -shards 10.0.0.1:7077 drain 10.0.0.4:7077       # scale-in
//
//	# bounded memory with a disk spill tier (out-of-core working sets)
//	hoplited -listen 10.0.0.2:7077 -shards 10.0.0.1:7077 \
//	    -memory-limit 8589934592 -spill-dir /data/hoplite-spill
//
// With -memory-limit, Put/Create apply admission backpressure instead of
// growing past the budget; with -spill-dir, cold objects are demoted to
// disk and served (or restored) from there. The spill directory is
// rescanned on restart, so a restarted daemon re-offers the objects it
// spilled. Use hoplite-cli against any node's address; see
// docs/OPERATIONS.md for the full tuning guide.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"hoplite"
	"hoplite/internal/netem"
	"hoplite/internal/types"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "address to listen on (control + data plane)")
	shards := flag.String("shards", "", "comma-separated directory shard addresses (defaults to this node when -host-shard)")
	hostShard := flag.Bool("host-shard", false, "host a directory shard on this node")
	replication := flag.Int("replication", 1, "directory shard replication factor R: shard i is replicated on shards[i..i+R-1 mod n]; every daemon must be started with identical -shards and -replication values")
	capacity := flag.Int64("capacity", 0, "legacy store capacity in bytes (0 = unlimited); prefer -memory-limit")
	memLimit := flag.Int64("memory-limit", 0, "in-memory store budget in bytes with admission backpressure (0 = unlimited)")
	spillDir := flag.String("spill-dir", "", "directory for the disk spill tier (empty = spill disabled); rescanned on restart")
	spillHigh := flag.Float64("spill-high", 0, "demotion high watermark as a fraction of -memory-limit (default 0.90)")
	spillLow := flag.Float64("spill-low", 0, "demotion low watermark as a fraction of -memory-limit (default 0.70)")
	small := flag.Int64("small-object", 0, "legacy name for -inline-threshold")
	inline := flag.Int64("inline-threshold", 0, "small-object inline threshold in bytes (default 64 KiB, negative disables)")
	batchDelay := flag.Duration("batch-delay", 0, "control-plane write-coalescing window (0 = opportunistic, negative disables batching)")
	batchBytes := flag.Int("batch-bytes", 0, "flush a batching window early at this many queued bytes (0 = default 256 KiB)")
	locCache := flag.Int("loc-cache", 0, "location cache entries per node (0 = default 4096, negative disables)")
	bootstrap := flag.String("bootstrap", "", "comma-separated founding member addresses: enables epoch-versioned membership with every listed node an active shard host; all founding daemons must be given the identical list")
	join := flag.String("join", "", "comma-separated seed addresses of a running membership-enabled cluster to join at startup (elastic scale-out)")
	storageOnly := flag.Bool("storage-only", false, "with -join: join as a pure storage member, never hosting directory shard replicas")
	objectRepl := flag.Int("object-replication", 1, "with -bootstrap: object replication target the repair scanner restores after drains and declared node losses")
	repairEvery := flag.Duration("repair-interval", 0, "re-replication scanner period (0 = default 250ms, negative disables); membership clusters only")
	planner := flag.String("planner", "", "transfer planner: link (default) plans striped Gets and reduce trees from measured link state; static reproduces the equal-links behavior")
	schedClasses := flag.Int("sched-classes", 0, "egress scheduler classes: 2 (default) isolates latency-sensitive small pulls from bulk transfers, 1 disables scheduling")
	bulkCutoff := flag.Int64("bulk-cutoff", 0, "pull span in bytes at or above which a pull is classed as bulk by the egress scheduler (0 = default 1 MiB)")
	linkHalfLife := flag.Duration("link-half-life", 0, "decay half-life for measured link estimates on quiet links (0 = default 10s)")
	locality := flag.String("locality", "", "locality domain label for this node (e.g. a rack or DC name); unmeasured links borrow their domain's mean estimate")
	flag.Parse()

	if *spillDir != "" && *memLimit <= 0 && *capacity <= 0 {
		log.Fatal("hoplited: -spill-dir requires -memory-limit (or -capacity): with an unbounded store nothing is ever demoted")
	}

	var shardList []string
	if *shards != "" {
		for _, s := range strings.Split(*shards, ",") {
			shardList = append(shardList, strings.TrimSpace(s))
		}
	}
	// With -replication > 1 the flat shard list is expanded into replica
	// groups (hoplite.ReplicaGroups — the same derivation on every
	// member). Every daemon — shard hosts and plain workers — must be
	// given identical -shards/-replication values so they derive the same
	// topology; a daemon hosts a replica iff its listen address appears
	// in a group.
	// In membership mode (-bootstrap/-join) the replication factor rides
	// the cluster map instead of a static topology.
	var topology [][]string
	if *replication > 1 && *bootstrap == "" && *join == "" {
		if len(shardList) == 0 {
			log.Fatal("hoplited: -replication requires -shards")
		}
		topology = hoplite.ReplicaGroups(shardList, *replication)
	}
	// Membership mode: -bootstrap builds the founding epoch-1 cluster map
	// (identical on every founding daemon); -join asks a running cluster's
	// membership shard to admit this node. Both make the static topology
	// flags irrelevant.
	var initialMap *types.ClusterMap
	var joinAddrs []string
	switch {
	case *bootstrap != "" && *join != "":
		log.Fatal("hoplited: -bootstrap and -join are mutually exclusive")
	case *bootstrap != "":
		var members []string
		for _, s := range strings.Split(*bootstrap, ",") {
			members = append(members, strings.TrimSpace(s))
		}
		r := *replication
		if r < 1 {
			r = 1
		}
		cm := types.ClusterMap{
			Epoch:     1,
			NumShards: len(members),
			DirRF:     r,
			ObjectRF:  *objectRepl,
		}
		for _, m := range members {
			cm.Members = append(cm.Members, types.Member{
				Addr:      types.NodeID(m),
				State:     types.MemberActive,
				ShardHost: true,
			})
		}
		initialMap = &cm
	case *join != "":
		for _, s := range strings.Split(*join, ",") {
			joinAddrs = append(joinAddrs, strings.TrimSpace(s))
		}
	}

	fab := &netem.TCP{ListenAddr: *listen}
	ln, err := fab.Listen("")
	if err != nil {
		log.Fatalf("listen %s: %v", *listen, err)
	}
	if initialMap != nil && *locality != "" {
		// The founding map is derived from the -bootstrap address list,
		// which carries no locality labels; stamp this daemon's own entry.
		// (-join members propagate their label through the membership
		// shard instead.)
		self := ln.Addr().String()
		for i := range initialMap.Members {
			if a := string(initialMap.Members[i].Addr); a == self || a == *listen {
				initialMap.Members[i].Locality = *locality
			}
		}
	}
	node, err := hoplite.NewNode(hoplite.Config{
		Fabric:            fab,
		Listener:          ln,
		HostShard:         *hostShard,
		DirectoryShards:   shardList,
		DirectoryTopology: topology,
		InitialMap:        initialMap,
		JoinAddrs:         joinAddrs,
		JoinStorageOnly:   *storageOnly,
		RepairInterval:    *repairEvery,
		StoreCapacity:     *capacity,
		MemoryLimit:       *memLimit,
		SpillDir:          *spillDir,
		SpillHighWater:    *spillHigh,
		SpillLowWater:     *spillLow,
		SmallObject:       *small,
		InlineThreshold:   *inline,
		MaxBatchDelay:     *batchDelay,
		MaxBatchBytes:     *batchBytes,
		LocationCacheSize: *locCache,
		Planner:           *planner,
		SchedClasses:      *schedClasses,
		BulkCutoff:        *bulkCutoff,
		LinkHalfLife:      *linkHalfLife,
		Locality:          *locality,
	})
	if err != nil {
		log.Fatalf("start node: %v", err)
	}
	if cm := node.ClusterMap(); cm.Epoch > 0 {
		fmt.Printf("hoplited: node %s up (membership epoch %d, %d members)\n", node.Addr(), cm.Epoch, len(cm.Members))
	} else {
		fmt.Printf("hoplited: node %s up (shard host: %v)\n", node.Addr(), *hostShard)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("hoplited: shutting down")
	node.Close()
	var _ net.Listener = ln
}
