// Command hoplite-cli performs object operations against a running
// hoplited cluster: put a file, get an object, delete it, or inspect its
// directory record.
//
//	hoplite-cli -node 10.0.0.2:7077 -shards 10.0.0.1:7077 put my-key ./weights.bin
//	hoplite-cli -node 10.0.0.3:7077 -shards 10.0.0.1:7077 get my-key ./out.bin
//	hoplite-cli -node 10.0.0.3:7077 -shards 10.0.0.1:7077 stat my-key
//	hoplite-cli -node 10.0.0.3:7077 -shards 10.0.0.1:7077 delete my-key
//
// The CLI starts an ephemeral client node that joins the cluster for the
// duration of the command.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"hoplite"
	"hoplite/internal/netem"
)

func main() {
	shards := flag.String("shards", "", "comma-separated directory shard addresses (required)")
	replication := flag.Int("replication", 1, "the cluster's directory replication factor (must match the hoplited daemons)")
	timeout := flag.Duration("timeout", 30*time.Second, "operation timeout")
	flag.Parse()
	args := flag.Args()
	if *shards == "" || len(args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: hoplite-cli -shards HOST:PORT[,...] [-replication R] {put KEY FILE | get KEY FILE | stat KEY | delete KEY}")
		os.Exit(2)
	}
	var shardList []string
	for _, s := range strings.Split(*shards, ",") {
		shardList = append(shardList, strings.TrimSpace(s))
	}
	// Mirror hoplited's topology derivation (the shared helper guarantees
	// it) so the CLI's directory client fails over across shard replicas
	// instead of pinning to the initial primaries.
	var topology [][]string
	if *replication > 1 {
		topology = hoplite.ReplicaGroups(shardList, *replication)
	}

	node, err := hoplite.NewNode(hoplite.Config{
		Fabric:            &netem.TCP{},
		DirectoryShards:   shardList,
		DirectoryTopology: topology,
	})
	if err != nil {
		log.Fatalf("join cluster: %v", err)
	}
	defer node.Close()
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	cmd, key := args[0], args[1]
	oid := hoplite.ObjectIDFromString(key)
	switch cmd {
	case "put":
		if len(args) < 3 {
			log.Fatal("put needs a file argument")
		}
		data, err := os.ReadFile(args[2])
		if err != nil {
			log.Fatal(err)
		}
		if err := node.Put(ctx, oid, data); err != nil {
			log.Fatalf("put: %v", err)
		}
		fmt.Printf("put %s (%d bytes) as %v\n", key, len(data), oid)
	case "get":
		if len(args) < 3 {
			log.Fatal("get needs a file argument")
		}
		data, err := node.Get(ctx, oid)
		if err != nil {
			log.Fatalf("get: %v", err)
		}
		if err := os.WriteFile(args[2], data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("got %s (%d bytes) -> %s\n", key, len(data), args[2])
	case "stat":
		rec, err := node.Directory().Lookup(ctx, oid, false)
		if err != nil {
			log.Fatalf("stat: %v", err)
		}
		fmt.Printf("object %v: size=%d inline=%v\n", oid, rec.Size, rec.Inline != nil)
		for _, l := range rec.Locs {
			fmt.Printf("  %s (%s)\n", l.Node, l.Progress)
		}
	case "delete":
		if err := node.Delete(ctx, oid); err != nil {
			log.Fatalf("delete: %v", err)
		}
		fmt.Printf("deleted %s\n", key)
	default:
		log.Fatalf("unknown command %q", cmd)
	}
}
