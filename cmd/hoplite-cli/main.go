// Command hoplite-cli performs object operations against a running
// hoplited cluster: put a file, get an object, delete it, or inspect its
// directory record.
//
//	hoplite-cli -node 10.0.0.2:7077 -shards 10.0.0.1:7077 put my-key ./weights.bin
//	hoplite-cli -node 10.0.0.3:7077 -shards 10.0.0.1:7077 get my-key ./out.bin
//	hoplite-cli -node 10.0.0.3:7077 -shards 10.0.0.1:7077 stat my-key
//	hoplite-cli -node 10.0.0.3:7077 -shards 10.0.0.1:7077 delete my-key
//
// Against a membership-enabled cluster (hoplited -bootstrap/-join) the
// CLI also drives membership: status prints the cluster map and per-node
// shard roles, drain retires a node gracefully (waits for its shard
// handoffs and sole-copy evacuation), and join re-registers a node:
//
//	hoplite-cli -shards 10.0.0.1:7077 status
//	hoplite-cli -shards 10.0.0.1:7077 -timeout 5m drain 10.0.0.4:7077
//	hoplite-cli -shards 10.0.0.1:7077 join 10.0.0.4:7077
//
// The load subcommand drives a small-object put/get workload against the
// cluster and reports throughput and latency percentiles — the quickest
// way to see the small-object fast path (inline payloads, write batching,
// location caching) on real hardware:
//
//	hoplite-cli -shards 10.0.0.1:7077 load -keys 256 -value-size 1024 -concurrency 32 -duration 10s
//
// load -mixed runs a saturating bulk pull stream alongside a cold
// small-Get loop against one sender and reports both tails — the
// egress-scheduling fairness demo (compare -sched-classes 1 vs the
// default 2):
//
//	hoplite-cli -shards 10.0.0.1:7077 load -mixed -bulk-size 67108864 -duration 10s
//
// status also prints each member's link-state table: the per-peer RTT and
// bandwidth estimates (seeded from the configured priors) that the
// transfer planner ranks senders and shapes reduce trees with.
//
// The CLI starts an ephemeral client node that joins the cluster for the
// duration of the command.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hoplite"
	"hoplite/internal/netem"
)

func main() {
	shards := flag.String("shards", "", "comma-separated directory shard addresses (required)")
	replication := flag.Int("replication", 1, "the cluster's directory replication factor (must match the hoplited daemons)")
	timeout := flag.Duration("timeout", 30*time.Second, "operation timeout")
	flag.Parse()
	args := flag.Args()
	noKey := map[string]bool{"load": true, "status": true}
	if *shards == "" || len(args) < 1 || (!noKey[args[0]] && len(args) < 2) {
		fmt.Fprintln(os.Stderr, "usage: hoplite-cli -shards HOST:PORT[,...] [-replication R] {put KEY FILE | get KEY FILE | stat KEY | delete KEY | status | join ADDR [storage-only] | drain ADDR | load [-keys N] [-value-size B] [-concurrency C] [-duration D] [-mixed [-bulk-size B] [-sched-classes N]]}")
		os.Exit(2)
	}
	var shardList []string
	for _, s := range strings.Split(*shards, ",") {
		shardList = append(shardList, strings.TrimSpace(s))
	}
	// Mirror hoplited's topology derivation (the shared helper guarantees
	// it) so the CLI's directory client fails over across shard replicas
	// instead of pinning to the initial primaries.
	var topology [][]string
	if *replication > 1 {
		topology = hoplite.ReplicaGroups(shardList, *replication)
	}

	// Against a membership-enabled cluster the true topology is the
	// cluster map, not the -shards flag (which may name a single seed):
	// fetch it first so the ephemeral node derives the real shard count
	// and replica groups. Static clusters fail the probe and use the
	// flag-derived topology as before.
	fab := &netem.TCP{}
	var initialMap *hoplite.ClusterMap
	{
		mctx, mcancel := context.WithTimeout(context.Background(), 3*time.Second)
		if cm, err := hoplite.FetchClusterMap(mctx, fab, shardList); err == nil {
			initialMap = &cm
		}
		mcancel()
	}

	// Every ephemeral client node this command starts goes through one
	// factory so they share the fabric, shard topology, and fetched map;
	// mod lets a caller adjust the config (load -mixed disables inlining
	// on its putter so small objects traverse the data plane).
	newNode := func(mod func(*hoplite.Config)) (*hoplite.Node, error) {
		cfg := hoplite.Config{
			Fabric:            fab,
			DirectoryShards:   shardList,
			DirectoryTopology: topology,
			InitialMap:        initialMap,
		}
		if mod != nil {
			mod(&cfg)
		}
		return hoplite.NewNode(cfg)
	}

	if args[0] == "load" {
		if err := runLoad(newNode, args[1:]); err != nil {
			log.Fatalf("load: %v", err)
		}
		return
	}

	node, err := newNode(nil)
	if err != nil {
		log.Fatalf("join cluster: %v", err)
	}
	defer node.Close()
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	switch args[0] {
	case "status":
		if err := runStatus(ctx, node); err != nil {
			log.Fatalf("status: %v", err)
		}
		return
	case "join":
		// Register args[1] in the cluster map on its behalf (the daemon's
		// own -join flag does this at startup; the subcommand covers
		// re-registering a node that was declared dead by mistake).
		shardHost := !(len(args) > 2 && args[2] == "storage-only")
		cm, err := node.Directory().JoinNode(ctx, hoplite.NodeID(args[1]), shardHost)
		if err != nil {
			log.Fatalf("join: %v", err)
		}
		fmt.Printf("joined %s (epoch %d, %d members)\n", args[1], cm.Epoch, len(cm.Members))
		return
	case "drain":
		if err := runDrain(ctx, node, hoplite.NodeID(args[1])); err != nil {
			log.Fatalf("drain: %v", err)
		}
		return
	}

	cmd, key := args[0], args[1]
	oid := hoplite.ObjectIDFromString(key)
	switch cmd {
	case "put":
		if len(args) < 3 {
			log.Fatal("put needs a file argument")
		}
		data, err := os.ReadFile(args[2])
		if err != nil {
			log.Fatal(err)
		}
		if err := node.Put(ctx, oid, data); err != nil {
			log.Fatalf("put: %v", err)
		}
		fmt.Printf("put %s (%d bytes) as %v\n", key, len(data), oid)
	case "get":
		if len(args) < 3 {
			log.Fatal("get needs a file argument")
		}
		data, err := node.Get(ctx, oid)
		if err != nil {
			log.Fatalf("get: %v", err)
		}
		if err := os.WriteFile(args[2], data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("got %s (%d bytes) -> %s\n", key, len(data), args[2])
	case "stat":
		rec, err := node.Directory().Lookup(ctx, oid, false)
		if err != nil {
			log.Fatalf("stat: %v", err)
		}
		fmt.Printf("object %v: size=%d inline=%v\n", oid, rec.Size, rec.Inline != nil)
		for _, l := range rec.Locs {
			fmt.Printf("  %s (%s)\n", l.Node, l.Progress)
		}
	case "delete":
		if err := node.Delete(ctx, oid); err != nil {
			log.Fatalf("delete: %v", err)
		}
		fmt.Printf("deleted %s\n", key)
	default:
		log.Fatalf("unknown command %q", cmd)
	}
}

// runStatus prints the cluster map (epoch, members, states), every node's
// directory shard roles, and the under-replicated object count.
func runStatus(ctx context.Context, node *hoplite.Node) error {
	dir := node.Directory()
	if _, err := dir.FetchMap(ctx); err != nil {
		return fmt.Errorf("fetch map (is the cluster membership-enabled?): %w", err)
	}
	st, err := dir.Status(ctx, "")
	if err != nil {
		return err
	}
	cm := st.Map
	if cm.Epoch == 0 {
		cm = dir.Map()
	}
	fmt.Printf("cluster map: epoch %d, %d shards, dir-rf %d, object-rf %d\n",
		cm.Epoch, cm.NumShards, cm.DirRF, cm.ObjectRF)
	// Per-node roles: which shards each member leads, per the primaries
	// that answered the status sweep.
	leads := make(map[hoplite.NodeID][]int)
	under, total := 0, 0
	for _, sh := range st.Shards {
		leads[sh.Primary] = append(leads[sh.Primary], sh.Shard)
		under += sh.Under
		total += sh.Objects
	}
	groups := cm.DeriveGroups()
	for _, m := range cm.Members {
		backs := 0
		for _, g := range groups {
			for _, a := range g {
				if a == string(m.Addr) {
					backs++
				}
			}
		}
		role := "storage"
		if m.ShardHost {
			role = fmt.Sprintf("shard host (leads %d, replicates %d)", len(leads[m.Addr]), backs)
		}
		fmt.Printf("  %s  %s  %s\n", m.Addr, m.State, role)
	}
	fmt.Printf("objects: %d tracked, %d under-replicated\n", total, under)
	// Each member's link-state table: its per-peer RTT/bandwidth estimates,
	// seeded from the configured priors and converging as data-plane pulls
	// and control round-trips feed the estimators.
	for _, m := range cm.Members {
		rows, err := node.PeerLinkState(ctx, m.Addr)
		if err != nil {
			fmt.Printf("link state @ %s: unavailable (%v)\n", m.Addr, err)
			continue
		}
		fmt.Printf("link state @ %s:\n", m.Addr)
		fmt.Printf("  %-28s %-10s %12s %12s %10s %8s\n", "peer", "locality", "rtt", "bandwidth", "age", "samples")
		for _, r := range rows {
			age := "prior"
			if r.Measured {
				age = r.Age.Truncate(time.Millisecond).String()
			}
			fmt.Printf("  %-28s %-10s %12s %12s %10s %8d\n",
				r.Peer, r.Locality, r.RTT.Truncate(time.Microsecond), fmtBW(r.Bandwidth), age, r.Samples)
		}
	}
	return nil
}

// fmtBW renders a bytes/second estimate at a human scale.
func fmtBW(bps float64) string {
	switch {
	case bps <= 0:
		return "-"
	case bps >= 1<<30:
		return fmt.Sprintf("%.1fGiB/s", bps/(1<<30))
	case bps >= 1<<20:
		return fmt.Sprintf("%.1fMiB/s", bps/(1<<20))
	case bps >= 1<<10:
		return fmt.Sprintf("%.1fKiB/s", bps/(1<<10))
	}
	return fmt.Sprintf("%.0fB/s", bps)
}

// runDrain starts a graceful drain of addr and waits until the node has
// left the cluster map, reporting evacuation progress.
func runDrain(ctx context.Context, node *hoplite.Node, addr hoplite.NodeID) error {
	dir := node.Directory()
	cm, err := dir.DrainNode(ctx, addr)
	if err != nil {
		return err
	}
	fmt.Printf("draining %s (epoch %d)\n", addr, cm.Epoch)
	ticker := time.NewTicker(500 * time.Millisecond)
	defer ticker.Stop()
	for {
		cm, err = dir.FetchMap(ctx)
		if err != nil {
			return err
		}
		if _, ok := cm.MemberState(addr); !ok {
			fmt.Printf("drained %s (epoch %d)\n", addr, cm.Epoch)
			return nil
		}
		sole, err := dir.SoleCopies(ctx, addr)
		if err == nil {
			fmt.Printf("  waiting: %d sole copies left\n", sole)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
	}
}

// runLoad drives a closed-loop small-object workload: -keys objects of
// -value-size bytes are put once, then -concurrency workers issue random
// Gets against them for -duration, and the loop reports aggregate ops/sec
// plus client-side latency percentiles. With -mixed it instead runs a
// saturating bulk pull stream alongside a cold small-Get loop and reports
// both tails — the egress-scheduling fairness demo.
func runLoad(newNode nodeFactory, argv []string) error {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	keys := fs.Int("keys", 64, "number of distinct objects in the working set (with -mixed: the cold-Get pool; the run ends early when exhausted)")
	valueSize := fs.Int("value-size", 1024, "object size in bytes")
	concurrency := fs.Int("concurrency", 16, "concurrent closed-loop workers")
	duration := fs.Duration("duration", 10*time.Second, "measurement duration")
	mixed := fs.Bool("mixed", false, "mixed workload: a bulk pull stream saturating one sender plus a closed loop of cold small Gets, both tails reported")
	bulkSize := fs.Int64("bulk-size", 64<<20, "bulk object size in bytes (with -mixed)")
	schedClasses := fs.Int("sched-classes", 0, "egress scheduler classes on the sender (with -mixed): 0/2 = default fair scheduling, 1 = scheduling off, for comparison")
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if *keys < 1 || *valueSize < 0 || *concurrency < 1 {
		return fmt.Errorf("invalid load parameters")
	}
	if *mixed {
		// A repeat Get would be a warm local hit on the getter, so the
		// mixed pool is got-once; default it large enough to cover the run.
		explicit := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		if !explicit["keys"] {
			*keys = 4096
		}
		return runMixedLoad(newNode, *keys, *valueSize, *concurrency, *duration, *bulkSize, *schedClasses)
	}

	node, err := newNode(nil)
	if err != nil {
		return fmt.Errorf("join cluster: %w", err)
	}
	defer node.Close()

	ctx, cancel := context.WithTimeout(context.Background(), *duration+30*time.Second)
	defer cancel()

	payload := make([]byte, *valueSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	oids := make([]hoplite.ObjectID, *keys)
	for i := range oids {
		oids[i] = hoplite.ObjectIDFromString(fmt.Sprintf("load-%d-%d", time.Now().UnixNano(), i))
		if err := node.Put(ctx, oids[i], payload); err != nil {
			return fmt.Errorf("put %d: %w", i, err)
		}
	}
	fmt.Printf("loaded %d objects x %d bytes; running %d workers for %v\n", *keys, *valueSize, *concurrency, *duration)

	stop := make(chan struct{})
	var (
		mu        sync.Mutex
		latencies []time.Duration
		errCount  int64
	)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			local := make([]time.Duration, 0, 4096)
			for {
				select {
				case <-stop:
					mu.Lock()
					latencies = append(latencies, local...)
					mu.Unlock()
					return
				default:
				}
				oid := oids[rng.Intn(len(oids))]
				t0 := time.Now()
				_, err := node.Get(ctx, oid)
				if err != nil {
					atomic.AddInt64(&errCount, 1)
					continue
				}
				local = append(local, time.Since(t0))
			}
		}(int64(w) + 1)
	}
	time.Sleep(*duration)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	n := len(latencies)
	if n == 0 {
		return fmt.Errorf("no operations completed (%d errors)", errCount)
	}
	pct := func(p float64) time.Duration { return latencies[min(n-1, int(float64(n)*p))] }
	fmt.Printf("ops: %d  errors: %d  throughput: %.0f ops/sec\n", n, errCount, float64(n)/elapsed.Seconds())
	fmt.Printf("latency: p50=%v p95=%v p99=%v max=%v\n", pct(0.50), pct(0.95), pct(0.99), latencies[n-1])

	// Clean up the working set so repeated runs do not accumulate objects.
	for _, oid := range oids {
		_ = node.Delete(ctx, oid)
	}
	return nil
}

// nodeFactory starts one ephemeral client node, optionally adjusting its
// config first.
type nodeFactory func(mod func(*hoplite.Config)) (*hoplite.Node, error)

// runMixedLoad exercises egress scheduling fairness end to end. One
// "putter" node holds every object (inlining disabled, so even 1 KiB
// objects are served over the data plane); a bulk stream repeatedly pulls
// a large object from it through fresh getter nodes while -concurrency
// workers issue cold Gets of small objects from another getter. Both
// streams contend for the putter's uplink, which is exactly what the
// sender's weighted-fair egress scheduler arbitrates: with -sched-classes
// 1 the bulk stream starves the small Gets' tail; with the default 2
// classes the small p99 stays near its unloaded value.
func runMixedLoad(newNode nodeFactory, keys, valueSize, concurrency int, duration time.Duration, bulkSize int64, schedClasses int) error {
	putter, err := newNode(func(c *hoplite.Config) {
		c.InlineThreshold = -1
		c.SchedClasses = schedClasses
	})
	if err != nil {
		return fmt.Errorf("start putter: %w", err)
	}
	defer putter.Close()

	ctx, cancel := context.WithTimeout(context.Background(), duration+2*time.Minute)
	defer cancel()

	run := time.Now().UnixNano()
	bulkOID := hoplite.ObjectIDFromString(fmt.Sprintf("load-bulk-%d", run))
	bulk := make([]byte, bulkSize)
	if err := putter.Put(ctx, bulkOID, bulk); err != nil {
		return fmt.Errorf("put bulk object: %w", err)
	}
	payload := make([]byte, valueSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	oids := make([]hoplite.ObjectID, keys)
	for i := range oids {
		oids[i] = hoplite.ObjectIDFromString(fmt.Sprintf("load-%d-%d", run, i))
		if err := putter.Put(ctx, oids[i], payload); err != nil {
			return fmt.Errorf("put %d: %w", i, err)
		}
	}
	fmt.Printf("mixed load: 1 x %d MiB bulk object + %d x %d B small objects; %d small workers for %v (sender sched-classes=%d)\n",
		bulkSize>>20, keys, valueSize, concurrency, duration, schedClasses)

	smallGetter, err := newNode(nil)
	if err != nil {
		return fmt.Errorf("start getter: %w", err)
	}
	defer smallGetter.Close()

	var (
		stop      = make(chan struct{})
		wg        sync.WaitGroup
		mu        sync.Mutex
		latencies []time.Duration
		errCount  int64
		next      int64
		bulkBytes int64
		bulkIters int64
	)
	stopped := func() bool {
		select {
		case <-stop:
			return true
		default:
			return false
		}
	}
	// Bulk stream: one long-lived getter that drops its fetched copy (and
	// its directory location) after every pull, so each round is a real
	// network pull — a pull into a node already holding the object would
	// be a local no-op. A fresh node per pull would also work but races
	// its own teardown: closing a node right after GetRef returns can cut
	// down the in-flight sender-lease release, wedging the next acquire.
	bulkGetter, err := newNode(nil)
	if err != nil {
		return fmt.Errorf("start bulk getter: %w", err)
	}
	defer bulkGetter.Close()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stopped() {
			ref, err := bulkGetter.GetRef(ctx, bulkOID)
			if err != nil {
				if !stopped() {
					atomic.AddInt64(&errCount, 1)
				}
				return
			}
			ref.Release()
			atomic.AddInt64(&bulkBytes, bulkSize)
			atomic.AddInt64(&bulkIters, 1)
			bulkGetter.Store().Delete(bulkOID)
			if err := bulkGetter.Directory().RemoveLocation(ctx, bulkOID); err != nil && !stopped() {
				atomic.AddInt64(&errCount, 1)
				return
			}
		}
	}()
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]time.Duration, 0, 4096)
			defer func() {
				mu.Lock()
				latencies = append(latencies, local...)
				mu.Unlock()
			}()
			for !stopped() {
				i := atomic.AddInt64(&next, 1) - 1
				if i >= int64(len(oids)) {
					return // pool exhausted: stop rather than re-Get warm keys
				}
				t0 := time.Now()
				if _, err := smallGetter.Get(ctx, oids[i]); err != nil {
					atomic.AddInt64(&errCount, 1)
					continue
				}
				local = append(local, time.Since(t0))
			}
		}()
	}
	timer := time.NewTimer(duration)
	<-timer.C
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	n := len(latencies)
	fmt.Printf("bulk: %d pulls, %.1f MiB/s sustained\n",
		atomic.LoadInt64(&bulkIters), float64(atomic.LoadInt64(&bulkBytes))/(1<<20)/elapsed.Seconds())
	if n == 0 {
		return fmt.Errorf("no small Gets completed (%d errors)", errCount)
	}
	if int64(n) >= int64(len(oids)) {
		fmt.Printf("small-Get pool exhausted after %v; raise -keys for longer runs\n", elapsed.Truncate(time.Millisecond))
	}
	pct := func(p float64) time.Duration { return latencies[min(n-1, int(float64(n)*p))] }
	fmt.Printf("small gets: %d ops  errors: %d  %.0f ops/sec\n", n, errCount, float64(n)/elapsed.Seconds())
	fmt.Printf("small latency: p50=%v p95=%v p99=%v max=%v\n", pct(0.50), pct(0.95), pct(0.99), latencies[n-1])

	_ = putter.Delete(ctx, bulkOID)
	for _, oid := range oids {
		_ = putter.Delete(ctx, oid)
	}
	return nil
}
