// Command hoplite-bench regenerates the tables and figures of the Hoplite
// paper's evaluation (§5, Appendices A and B) on the emulated testbed.
//
// Usage:
//
//	hoplite-bench -fig all
//	hoplite-bench -fig 7 -nodes 4,8,12,16
//	hoplite-bench -fig 15 -quick
//
// See EXPERIMENTS.md for the scale model and expected shapes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"hoplite/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: dir, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, or all")
	nodesFlag := flag.String("nodes", "", "comma-separated node counts (figure-specific defaults otherwise)")
	quick := flag.Bool("quick", false, "use the quick scale (smaller sizes, 1 repeat)")
	divisor := flag.Int64("divisor", 0, "override the object-size divisor")
	repeats := flag.Int("repeats", 0, "override the number of repeats per measurement")
	flag.Parse()

	sc := bench.DefaultScale()
	if *quick {
		sc = bench.QuickScale()
	}
	if *divisor > 0 {
		sc.SizeDivisor = *divisor
	}
	if *repeats > 0 {
		sc.Repeats = *repeats
	}

	nodes := parseNodes(*nodesFlag)
	run := func(name string) bool { return *fig == "all" || *fig == name }

	type job struct {
		name string
		fn   func() ([]*bench.Table, error)
	}
	jobs := []job{
		{"dir", func() ([]*bench.Table, error) { return bench.DirectoryMicro(sc) }},
		{"6", func() ([]*bench.Table, error) { return bench.Figure6(sc) }},
		{"7", func() ([]*bench.Table, error) { return bench.Figure7(sc, def(nodes, []int{4, 8, 12, 16})) }},
		{"8", func() ([]*bench.Table, error) {
			return bench.Figure8(sc, defOne(nodes, 16), []time.Duration{0, 100 * time.Millisecond, 200 * time.Millisecond, 300 * time.Millisecond})
		}},
		{"9", func() ([]*bench.Table, error) { return bench.Figure9(sc, def(nodes, []int{8, 16}), 8) }},
		{"10", func() ([]*bench.Table, error) { return bench.Figure10(sc, def(nodes, []int{8, 16}), 8) }},
		{"11", func() ([]*bench.Table, error) { return bench.Figure11(sc, def(nodes, []int{8, 16}), 20) }},
		{"12", func() ([]*bench.Table, error) { return bench.Figure12(sc, 45) }},
		{"13", func() ([]*bench.Table, error) { return bench.Figure13(sc, def(nodes, []int{8, 16}), 4) }},
		{"14", func() ([]*bench.Table, error) { return bench.Figure14(sc, def(nodes, []int{4, 8, 12, 16})) }},
		{"15", func() ([]*bench.Table, error) {
			return bench.Figure15(sc, []int64{4 << 10, 256 << 10, 4 << 20, 32 << 20}, def(nodes, []int{8, 16, 32}))
		}},
	}

	ran := false
	for _, j := range jobs {
		if !run(j.name) {
			continue
		}
		ran = true
		fmt.Printf("=== figure %s (divisor 1/%d, %.0f MB/s, L=%v, %d repeats) ===\n",
			j.name, sc.SizeDivisor, sc.Bandwidth/(1<<20), sc.Latency, sc.Repeats)
		tables, err := j.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure %s: %v\n", j.name, err)
			os.Exit(1)
		}
		for _, t := range tables {
			t.Fprint(os.Stdout)
		}
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
}

func parseNodes(s string) []int {
	if s == "" {
		return nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "bad -nodes value %q\n", part)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

func def(nodes, fallback []int) []int {
	if len(nodes) > 0 {
		return nodes
	}
	return fallback
}

func defOne(nodes []int, fallback int) int {
	if len(nodes) > 0 {
		return nodes[0]
	}
	return fallback
}
