package hoplite

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"hoplite/internal/types"
)

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func startCluster(t *testing.T, n int, opts Options) *Cluster {
	t.Helper()
	c, err := StartLocalCluster(n, opts)
	if err != nil {
		t.Fatalf("StartLocalCluster(%d): %v", n, err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func payload(size int, seed byte) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = byte(i)*7 + seed
	}
	return b
}

func TestPutGetLarge(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 2, Options{})
	data := payload(1<<20, 3)
	oid := ObjectIDFromString("large-1")
	if err := c.Node(0).Put(ctx, oid, data); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := c.Node(1).Get(ctx, oid)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("payload mismatch: got %d bytes", len(got))
	}
}

func TestPutGetSmallInline(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 2, Options{})
	data := payload(1024, 9) // below 64 KB: directory fast path
	oid := ObjectIDFromString("small-1")
	if err := c.Node(0).Put(ctx, oid, data); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := c.Node(1).Get(ctx, oid)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("payload mismatch")
	}
}

func TestGetBeforePut(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 2, Options{})
	oid := ObjectIDFromString("future-1")
	data := payload(256<<10, 5)
	done := make(chan error, 1)
	go func() {
		got, err := c.Node(1).Get(ctx, oid)
		if err == nil && !bytes.Equal(got, data) {
			err = errors.New("payload mismatch")
		}
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // receiver blocks first
	if err := c.Node(0).Put(ctx, oid, data); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Get-before-Put: %v", err)
	}
}

func TestBroadcastAllNodes(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 8, Options{})
	data := payload(2<<20, 1)
	oid := ObjectIDFromString("bcast-1")
	if err := c.Node(0).Put(ctx, oid, data); err != nil {
		t.Fatalf("Put: %v", err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, c.Size())
	for i := 1; i < c.Size(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := c.Node(i).Get(ctx, oid)
			if err != nil {
				errs <- fmt.Errorf("node %d: %w", i, err)
				return
			}
			if !bytes.Equal(got, data) {
				errs <- fmt.Errorf("node %d: payload mismatch", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestReduceSum(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 4, Options{})
	const elems = 64 << 10 // 256 KB of f32
	sources := make([]ObjectID, c.Size())
	want := make([]float32, elems)
	for i := range sources {
		xs := make([]float32, elems)
		for j := range xs {
			xs[j] = float32(i + j%13)
			want[j] += xs[j]
		}
		sources[i] = ObjectIDFromString(fmt.Sprintf("red-src-%d", i))
		if err := c.Node(i).Put(ctx, sources[i], types.EncodeF32(xs)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	target := ObjectIDFromString("red-out")
	used, err := c.Node(0).Reduce(ctx, target, sources, len(sources), SumF32)
	if err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	if len(used) != len(sources) {
		t.Fatalf("used %d sources, want %d", len(used), len(sources))
	}
	raw, err := c.Node(0).Get(ctx, target)
	if err != nil {
		t.Fatalf("Get result: %v", err)
	}
	got := types.DecodeF32(raw)
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("elem %d: got %v want %v", j, got[j], want[j])
		}
	}
}

func TestAllReduce(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 4, Options{})
	const elems = 32 << 10
	sources := make([]ObjectID, c.Size())
	var want float64
	for i := range sources {
		xs := make([]float32, elems)
		for j := range xs {
			xs[j] = float32(i)
		}
		want += float64(i)
		sources[i] = ObjectIDFromString(fmt.Sprintf("ar-src-%d", i))
		if err := c.Node(i).Put(ctx, sources[i], types.EncodeF32(xs)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	target := ObjectIDFromString("ar-out")
	if _, err := c.AllReduce(ctx, 0, target, sources, len(sources), SumF32); err != nil {
		t.Fatalf("AllReduce: %v", err)
	}
	for i := 0; i < c.Size(); i++ {
		raw, err := c.Node(i).GetImmutable(ctx, target)
		if err != nil {
			t.Fatalf("node %d GetImmutable: %v", i, err)
		}
		got := types.DecodeF32(raw)
		if float64(got[0]) != want || float64(got[elems-1]) != want {
			t.Fatalf("node %d: got %v want %v", i, got[0], want)
		}
	}
}

func TestDelete(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 3, Options{})
	oid := ObjectIDFromString("del-1")
	data := payload(1<<20, 2)
	if err := c.Node(0).Put(ctx, oid, data); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, err := c.Node(2).Get(ctx, oid); err != nil {
		t.Fatalf("Get: %v", err)
	}
	if err := c.Node(1).Delete(ctx, oid); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	sctx, cancel := context.WithTimeout(ctx, 3*time.Second)
	defer cancel()
	if _, err := c.Node(1).Get(sctx, oid); err == nil {
		t.Fatal("Get after Delete succeeded")
	}
}
