package hoplite

import (
	"bytes"
	"testing"
	"time"
)

// A striped Get must skew its claim spans toward the sender the receiver
// has measured as fastest: seeding node 3's link tracker with a 4x
// bandwidth edge for node 0 makes node 0 claim longer chunk runs per trip,
// so it serves more bytes of the object than either slow sender even
// though the underlying fabric is symmetric.
func TestStripedGetSkewsSpansTowardFastSender(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 4, Options{StripeThreshold: 1 << 20, MaxSources: 4})

	// Seed the receiver's tracker: node 0 at ~200 MB/s, nodes 1-2 at
	// ~50 MB/s. Repeated samples pin the EWMA regardless of gain.
	links := c.Node(3).Links()
	for i := 0; i < 10; i++ {
		links.ObserveTransfer(c.Node(0).ID(), 200<<20, time.Second)
		links.ObserveTransfer(c.Node(1).ID(), 50<<20, time.Second)
		links.ObserveTransfer(c.Node(2).ID(), 50<<20, time.Second)
	}

	data := payload(32<<20, 9)
	oid := ObjectIDFromString("skewed-striped-get")
	if err := c.Node(0).Put(ctx, oid, data); err != nil {
		t.Fatalf("Put: %v", err)
	}
	for i := 1; i <= 2; i++ {
		if _, err := c.Node(i).Get(ctx, oid); err != nil {
			t.Fatalf("warm Get node%d: %v", i, err)
		}
	}
	waitComplete(t, ctx, c, 3, oid, 3)

	receiver := c.Node(3).ID()
	before := make([]int64, 3)
	for i := 0; i < 3; i++ {
		before[i] = c.Node(i).PeerDataStats()[receiver].Bytes
	}
	got, err := c.Node(3).Get(ctx, oid)
	if err != nil {
		t.Fatalf("striped Get: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("striped Get payload mismatch")
	}
	served := make([]int64, 3)
	for i := 0; i < 3; i++ {
		served[i] = c.Node(i).PeerDataStats()[receiver].Bytes - before[i]
	}
	t.Logf("bytes served to receiver: fast=%d slow=%d/%d", served[0], served[1], served[2])
	for i := 0; i < 3; i++ {
		if served[i] <= 0 {
			t.Fatalf("sender %d served no bytes; all senders should participate", i)
		}
	}
	if served[0] <= served[1] || served[0] <= served[2] {
		t.Fatalf("fast sender served %d bytes, not more than slow senders (%d, %d)",
			served[0], served[1], served[2])
	}
}
