// Package hoplite is an efficient and fault-tolerant collective
// communication layer for task-based distributed systems, reproducing the
// system described in "Hoplite: Efficient and Fault-Tolerant Collective
// Communication for Task-Based Distributed Systems" (SIGCOMM 2021).
//
// Hoplite is a distributed object store with collective-communication
// smarts: tasks Put immutable objects and Get them by ObjectID; broadcast
// emerges from receivers relaying to each other through a dynamic,
// directory-coordinated tree; Reduce folds a dynamic set of objects
// through a pipelined d-ary tree whose shape adapts to object size,
// latency and participant count — and both collectives keep making
// progress when participants fail.
//
// Quick start:
//
//	cluster, _ := hoplite.StartLocalCluster(4, hoplite.Options{})
//	defer cluster.Close()
//
//	a := cluster.Node(0)
//	oid := hoplite.ObjectIDFromString("weights-0")
//	_ = a.Put(ctx, oid, payload)
//	data, _ := cluster.Node(3).Get(ctx, oid)
package hoplite

import (
	"context"
	"fmt"
	"net"
	"path/filepath"
	"time"

	"hoplite/internal/core"
	"hoplite/internal/netem"
	"hoplite/internal/types"
)

// Re-exported identifiers so applications only import this package.
type (
	// ObjectID names an immutable object; it doubles as a future.
	ObjectID = types.ObjectID
	// NodeID identifies a node (its listen address).
	NodeID = types.NodeID
	// ReduceOp is an element-wise commutative, associative operation.
	ReduceOp = types.ReduceOp
	// DType is the element type of a reducible object.
	DType = types.DType
	// OpKind is the operation kind of a ReduceOp.
	OpKind = types.OpKind
	// Node is a Hoplite object-store node; see the methods on core.Node:
	// Put, Create, Get, GetRef, GetAsync, GetAll, Reduce, ReduceAsync,
	// Delete.
	Node = core.Node
	// Config configures a standalone Node.
	Config = core.Config
	// ObjectRef is a ref-counted, pinned, zero-copy read-only view of an
	// object, returned by Node.GetRef / Node.GetRefAsync. Release it.
	ObjectRef = core.ObjectRef
	// ObjectWriter is the streaming producer handle returned by
	// Node.Create: io.Writer + Seal/Abort; readers pipeline off the
	// partial object while it is being written.
	ObjectWriter = core.ObjectWriter
	// RefFuture resolves to a pinned *ObjectRef (Node.GetRefAsync).
	RefFuture = core.Future[*core.ObjectRef]
	// BytesFuture resolves to a private payload copy (Node.GetAsync).
	BytesFuture = core.Future[[]byte]
	// ReduceFuture resolves to the sources used (Node.ReduceAsync).
	ReduceFuture = core.Future[[]types.ObjectID]
	// ClusterMap is the epoch-versioned membership map of an elastic
	// cluster (hoplited -bootstrap/-join); see FetchClusterMap.
	ClusterMap = types.ClusterMap
)

// Re-exported enums and constructors.
const (
	F32 = types.F32
	F64 = types.F64
	I32 = types.I32
	I64 = types.I64

	Sum = types.Sum
	Min = types.Min
	Max = types.Max
)

// Errors re-exported for errors.Is checks.
var (
	ErrNotFound = types.ErrNotFound
	ErrDeleted  = types.ErrDeleted
	ErrClosed   = types.ErrClosed
)

// ObjectIDFromString derives a deterministic ObjectID from a unique string.
func ObjectIDFromString(s string) ObjectID { return types.ObjectIDFromString(s) }

// RandomObjectID returns a random ObjectID.
func RandomObjectID() ObjectID { return types.RandomObjectID() }

// SumF32 is the reduce op used throughout the paper's evaluation: addition
// over arrays of 32-bit floats.
var SumF32 = ReduceOp{Kind: types.Sum, DType: types.F32}

// NewNode starts a standalone node (production mode). See core.Config.
func NewNode(cfg Config) (*Node, error) { return core.NewNode(cfg) }

// FetchClusterMap asks each seed address in turn for the cluster map of
// a running membership-enabled cluster (hoplited -bootstrap/-join).
// Ephemeral clients use it before NewNode to derive the true shard
// topology from one seed instead of restating the founding list; pass
// the result as Config.InitialMap. Fails if the cluster runs a static
// topology.
func FetchClusterMap(ctx context.Context, fab netem.Fabric, seeds []string) (ClusterMap, error) {
	return core.FetchClusterMap(ctx, fab, seeds)
}

// ReplicaGroups derives the directory replica topology from an ordered
// shard list: group i is shards[i .. i+r-1 mod n] in succession order,
// with r clamped to [1, len(shards)]. Every member of a cluster —
// daemons, workers, CLI clients — must derive its topology from the
// identical list and factor, so this one helper is the only place the
// wrap-around rule lives.
func ReplicaGroups(shards []string, r int) [][]string {
	if len(shards) == 0 {
		return nil
	}
	if r < 1 {
		r = 1
	}
	if r > len(shards) {
		r = len(shards)
	}
	groups := make([][]string, len(shards))
	for i := range groups {
		group := make([]string, 0, r)
		for j := 0; j < r; j++ {
			group = append(group, shards[(i+j)%len(shards)])
		}
		groups[i] = group
	}
	return groups
}

// Options configures a local cluster.
type Options struct {
	// Emulate, if non-nil, shapes every node's links (one-way latency and
	// full-duplex per-node bandwidth) to stand in for the paper's
	// testbed. Nil runs plain loopback TCP.
	Emulate *netem.LinkConfig
	// InlineThreshold overrides the inline fast-path threshold (bytes):
	// objects below it ride inline in directory replies, making a cold
	// Get of one exactly one RPC. 0 = default (64 KB), negative disables.
	InlineThreshold int64
	// SmallObject is the legacy name for InlineThreshold; consulted only
	// when InlineThreshold is zero.
	SmallObject int64
	// MaxBatchDelay is the control-plane write-coalescing window: zero
	// batches opportunistically (no added latency), positive trades
	// latency for larger batches, negative disables batching.
	MaxBatchDelay time.Duration
	// MaxBatchBytes cuts a batching window short once this many encoded
	// bytes are queued (0 = default).
	MaxBatchBytes int
	// LocationCacheSize bounds each node's cache of directory lookup
	// results, which lets repeat Gets of remote objects skip the
	// directory entirely. 0 = default (4096 entries), negative disables.
	LocationCacheSize int
	// StoreCapacity bounds each node's store; 0 = unlimited. Legacy
	// semantics: unpinned LRU eviction at the bound, pinned allocations
	// overshoot. Prefer MemoryLimit.
	StoreCapacity int64
	// MemoryLimit bounds each node's in-memory store and enables
	// admission backpressure: Put/Create block (ctx-governed) instead of
	// overshooting when the limit is hit and nothing cold can be demoted
	// or evicted. Combine with SpillDir for out-of-core workloads whose
	// aggregate object bytes exceed cluster RAM. Takes precedence over
	// StoreCapacity.
	MemoryLimit int64
	// SpillDir enables the disk spill tier: each node demotes cold sealed
	// objects to chunk-aligned files under SpillDir/<node-name> instead
	// of dropping them, serves them to peers straight off disk, and
	// restores them transparently on a local Get. Empty disables spill.
	SpillDir string
	// SpillHighWater/SpillLowWater bound the demotion hysteresis as
	// fractions of MemoryLimit (defaults 0.90/0.70).
	SpillHighWater, SpillLowWater float64
	// StripeThreshold is the minimum object size for which a Get stripes
	// ranged pulls across multiple complete copies (0 = default, negative
	// disables striping).
	StripeThreshold int64
	// MaxSources caps the number of senders a striped Get pulls from
	// concurrently (0 = default, 1 disables striping).
	MaxSources int
	// ChunkSize is the data-plane wire chunk in bytes (0 = default
	// 256 KiB). Smaller chunks tighten the egress scheduler's per-turn
	// granularity — a latency-class pull waits behind at most one bulk
	// chunk — at the cost of more frame and scheduling overhead.
	ChunkSize int
	// ReduceDegree forces the reduce tree degree (0 = automatic).
	ReduceDegree int
	// ShardNodes limits directory shards to the first k nodes (0 = every
	// node hosts one). Keeping shards on "head" nodes bounds how much
	// directory state rides on any one worker — the paper leaves
	// directory fault tolerance to the framework (§6); this reproduction
	// provides it via replication, see ReplicationFactor.
	ShardNodes int
	// ReplicationFactor is how many nodes replicate each directory shard
	// (default 3, capped at the number of shard-hosting nodes). Shard i's
	// replica group is nodes i, i+1, ... (mod ShardNodes) in succession
	// order: the primary forwards every mutation to the backups
	// synchronously, and when it dies the next live replica promotes
	// itself, so killing any single node never wedges directory metadata.
	// 1 disables replication.
	ReplicationFactor int
	// ObjectReplication is the object replication target the background
	// repair scanner restores after a node is drained or declared
	// permanently lost (default 1: no proactive copies, only sole-copy
	// evacuation off draining nodes). It never triggers on mere
	// disconnection — failure detection stays with the framework (§5.5).
	ObjectReplication int
	// RepairInterval is the repair scanner period (0 = directory default
	// of 250ms, negative disables).
	RepairInterval time.Duration
	// Latency/Bandwidth are cold-start priors for the per-peer link-state
	// estimators (and through them degree selection and striping): each
	// node seeds every peer's RTT/bandwidth estimate from them and decays
	// measurements back toward them when a link goes quiet. When Emulate
	// is set they default to its values.
	Latency   time.Duration
	Bandwidth float64
	// LinkHalfLife is the decay half-life for measured link estimates on
	// quiet links (0 = default 10s).
	LinkHalfLife time.Duration
	// Planner selects the transfer planner: "link" (default) ranks
	// striped-Get senders, sizes their claim spans, and shapes the reduce
	// tree from measured link state; "static" reproduces the legacy
	// equal-links behavior exactly.
	Planner string
	// SchedClasses configures each node's egress scheduler: 2 (default)
	// separates latency-sensitive small pulls from bulk transfers under
	// byte-deficit weighted-fair sharing; 1 disables scheduling.
	SchedClasses int
	// SchedQuantum is the scheduler's fairness quantum in bytes (0 =
	// derived from the transfer chunk size).
	SchedQuantum int64
	// BulkCutoff is the pull span in bytes at or above which a pull is
	// classed as bulk by the egress scheduler (0 = default 1 MiB).
	BulkCutoff int64
	// Localities optionally labels nodes with locality domains (rack or
	// datacenter): node i gets Localities[i], missing entries mean no
	// label. Peers without measurements inherit their domain's mean link
	// estimate instead of the global prior.
	Localities []string
	// PipelineBlock overrides the pipelining block size.
	PipelineBlock int
}

// localityFor returns the configured locality label for node i ("" when
// unlabeled or out of range — late AddNode joiners are unlabeled).
func (o Options) localityFor(i int) string {
	if i < 0 || i >= len(o.Localities) {
		return ""
	}
	return o.Localities[i]
}

// coreConfig translates the cluster options into one node's core.Config.
// Every node construction — initial boot and restart — goes through this
// single helper so a new knob cannot be silently dropped from one path.
func (o Options) coreConfig(fab netem.Fabric, name string, ln net.Listener, topology [][]string, initialMap *types.ClusterMap, locality string) core.Config {
	spillDir := ""
	if o.SpillDir != "" {
		// One subdirectory per node: in-process cluster nodes must not
		// share an on-disk namespace, and a restarted node (same name)
		// finds exactly the objects it spilled.
		spillDir = filepath.Join(o.SpillDir, name)
	}
	return core.Config{
		Fabric:            fab,
		Name:              name,
		Listener:          ln,
		DirectoryTopology: topology,
		InitialMap:        initialMap,
		RepairInterval:    o.RepairInterval,
		InlineThreshold:   o.InlineThreshold,
		SmallObject:       o.SmallObject,
		MaxBatchDelay:     o.MaxBatchDelay,
		MaxBatchBytes:     o.MaxBatchBytes,
		LocationCacheSize: o.LocationCacheSize,
		PipelineBlock:     o.PipelineBlock,
		StoreCapacity:     o.StoreCapacity,
		MemoryLimit:       o.MemoryLimit,
		SpillDir:          spillDir,
		SpillHighWater:    o.SpillHighWater,
		SpillLowWater:     o.SpillLowWater,
		StripeThreshold:   o.StripeThreshold,
		MaxSources:        o.MaxSources,
		ChunkSize:         o.ChunkSize,
		Latency:           o.Latency,
		Bandwidth:         o.Bandwidth,
		LinkHalfLife:      o.LinkHalfLife,
		Planner:           o.Planner,
		SchedClasses:      o.SchedClasses,
		SchedQuantum:      o.SchedQuantum,
		BulkCutoff:        o.BulkCutoff,
		Locality:          locality,
		ReduceDegree:      o.ReduceDegree,
	}
}

// Cluster is a set of in-process Hoplite nodes sharing a fabric and a
// sharded, replicated directory.
type Cluster struct {
	fab      netem.Fabric
	em       *netem.Emulated
	opts     Options
	addrs    []string         // every node's (stable) listen address
	topology [][]string       // directory shard replica groups at boot
	bootMap  types.ClusterMap // epoch-1 membership map the cluster booted with
	nodes    []*core.Node
}

// StartLocalCluster boots n nodes on the loopback fabric. Each node hosts
// one directory shard.
func StartLocalCluster(n int, opts Options) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("hoplite: cluster size %d", n)
	}
	var fab netem.Fabric
	var em *netem.Emulated
	if opts.Emulate != nil {
		em = netem.NewEmulated(*opts.Emulate)
		fab = em
		if opts.Latency == 0 {
			opts.Latency = opts.Emulate.Latency
		}
		if opts.Bandwidth == 0 {
			opts.Bandwidth = opts.Emulate.BytesPerSec
		}
	} else {
		fab = &netem.TCP{}
	}
	c := &Cluster{fab: fab, em: em, opts: opts}

	// Two-phase start: every node must be configured with the full shard
	// address list, but addresses are assigned at listen time — so
	// reserve all listeners first, then start the nodes.
	lns := make([]net.Listener, 0, n)
	addrs := make([]string, 0, n)
	shardNodes := opts.ShardNodes
	if shardNodes <= 0 || shardNodes > n {
		shardNodes = n
	}
	for i := 0; i < n; i++ {
		ln, err := fab.Listen(fmt.Sprintf("node-%d", i))
		if err != nil {
			for _, l := range lns {
				l.Close()
			}
			c.Close()
			return nil, err
		}
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	c.addrs = addrs
	// Shard i's replica group is the R shard-hosting nodes starting at i,
	// wrapping: group[0] is the initial primary and the rest the
	// succession order.
	r := opts.ReplicationFactor
	if r == 0 {
		r = 3
	}
	c.topology = ReplicaGroups(addrs[:shardNodes], r)
	// Every cluster boots with an epoch-1 cluster map whose derived shard
	// groups equal the static topology above, so membership starts enabled
	// (AddNode/DrainNode work) without changing the boot layout.
	objRF := opts.ObjectReplication
	if objRF < 1 {
		objRF = 1
	}
	c.bootMap = types.ClusterMap{
		Epoch:     1,
		NumShards: shardNodes,
		DirRF:     r,
		ObjectRF:  objRF,
	}
	for i, addr := range addrs {
		c.bootMap.Members = append(c.bootMap.Members, types.Member{
			Addr:      types.NodeID(addr),
			State:     types.MemberActive,
			ShardHost: i < shardNodes,
			Locality:  opts.localityFor(i),
		})
	}
	for i := 0; i < n; i++ {
		node, err := core.NewNode(opts.coreConfig(fab, fmt.Sprintf("node-%d", i), lns[i], c.topology, &c.bootMap, opts.localityFor(i)))
		if err != nil {
			c.Close()
			return nil, err
		}
		c.nodes = append(c.nodes, node)
	}
	return c, nil
}

// currentMap returns the freshest cluster map any live node holds,
// falling back to the boot map.
func (c *Cluster) currentMap() types.ClusterMap {
	best := c.bootMap
	for _, n := range c.nodes {
		if n == nil {
			continue
		}
		if cm := n.ClusterMap(); cm.Epoch > best.Epoch {
			best = cm
		}
	}
	return best
}

// liveAddrs returns the control addresses of every node still occupying
// its slot (killed-but-not-removed nodes included; callers that dial the
// list tolerate dead entries).
func (c *Cluster) liveAddrs() []string {
	var out []string
	for _, n := range c.nodes {
		if n != nil {
			out = append(out, n.Addr())
		}
	}
	return out
}

// AddNode scales the cluster out by one node: it joins through the
// membership shard, receives the cluster map, and starts serving (and,
// unless storageOnly, becomes eligible to host directory shard
// replicas — the map rebalance assigns it some as soon as it lands).
// Returns the new node's index.
func (c *Cluster) AddNode(storageOnly bool) (int, error) {
	i := len(c.nodes)
	name := fmt.Sprintf("node-%d", i)
	ln, err := c.fab.Listen(name)
	if err != nil {
		return -1, fmt.Errorf("hoplite: add node %d: %w", i, err)
	}
	cfg := c.opts.coreConfig(c.fab, name, ln, nil, nil, c.opts.localityFor(i))
	cfg.JoinAddrs = c.liveAddrs()
	cfg.JoinStorageOnly = storageOnly
	node, err := core.NewNode(cfg)
	if err != nil {
		ln.Close()
		return -1, fmt.Errorf("hoplite: add node %d: %w", i, err)
	}
	c.nodes = append(c.nodes, node)
	c.addrs = append(c.addrs, ln.Addr().String())
	return i, nil
}

// DrainNode scales the cluster in by one node gracefully: node i stops
// taking placements, hands off its directory shard replicas, waits for
// its sole object copies to be evacuated, leaves the cluster map, and is
// closed. Its slot is left empty (nil), like after a failed restart.
func (c *Cluster) DrainNode(ctx context.Context, i int) error {
	node := c.nodes[i]
	if node == nil {
		return fmt.Errorf("hoplite: node %d is not running", i)
	}
	if err := node.Drain(ctx); err != nil {
		return err
	}
	c.nodes[i] = nil
	return node.Close()
}

// DeclareDead removes a permanently lost node from the cluster map (the
// operator's judgment, not the system's — mere disconnection never
// triggers this, per the paper's framework-owned failure model §5.5).
// The directory purges its locations and the repair scanner re-creates
// the lost copies on surviving nodes, restoring ObjectReplication.
func (c *Cluster) DeclareDead(ctx context.Context, i int) error {
	dead := types.NodeID(c.addrs[i])
	err := fmt.Errorf("hoplite: no live node to declare node %d dead", i)
	for _, n := range c.nodes {
		if n == nil || n.ID() == dead {
			continue
		}
		// A slot can hold a node whose fabric link was killed without the
		// cluster knowing; try the next candidate instead of giving up.
		if _, err = n.Directory().DeclareDead(ctx, dead); err == nil {
			return nil
		}
	}
	return err
}

// Node returns the i-th node (nil if the slot is empty after a failed
// RestartNode).
func (c *Cluster) Node(i int) *core.Node { return c.nodes[i] }

// Nodes returns all nodes.
func (c *Cluster) Nodes() []*core.Node { return c.nodes }

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.nodes) }

// Emulated returns the emulated fabric (nil when running plain TCP); use
// it for fault injection: cluster.Emulated().Kill("node-3").
func (c *Cluster) Emulated() *netem.Emulated { return c.em }

// SetNodeLink re-shapes node i's bandwidth at runtime (emulated fabric
// only); see netem.Emulated.SetNodeLink.
func (c *Cluster) SetNodeLink(i int, cfg netem.LinkConfig) error {
	if c.em == nil {
		return fmt.Errorf("hoplite: SetNodeLink requires an emulated fabric")
	}
	c.em.SetNodeLink(fmt.Sprintf("node-%d", i), cfg)
	return nil
}

// SetPairLink shapes the directional link from node i to node j at
// runtime (emulated fabric only): a pair-wise rate cap and/or one-way
// latency override on top of both nodes' own links. Shape the reverse
// direction with the arguments swapped; see netem.Emulated.SetPairLink.
func (c *Cluster) SetPairLink(i, j int, cfg netem.LinkConfig) error {
	if c.em == nil {
		return fmt.Errorf("hoplite: SetPairLink requires an emulated fabric")
	}
	c.em.SetPairLink(fmt.Sprintf("node-%d", i), fmt.Sprintf("node-%d", j), cfg)
	return nil
}

// KillNode abruptly disconnects node i (emulated fabric only): all of its
// sockets break, which is how peers detect the failure.
func (c *Cluster) KillNode(i int) error {
	if c.em == nil {
		return fmt.Errorf("hoplite: KillNode requires an emulated fabric")
	}
	c.em.Kill(fmt.Sprintf("node-%d", i))
	return nil
}

// RestartNode replaces a previously killed node with a fresh one under
// the same fabric name and listen address (a restarted process rejoining,
// §5.5). Former directory shard hosts are restartable too: the replica
// topology is a static address list, so the rejoining node comes back as
// an out-of-sync backup of its shards and is re-synced by each current
// primary's snapshot push. On failure the node's slot is left empty (nil)
// and the error returned; the restart can simply be retried — Close and
// the other cluster methods tolerate the empty slot.
func (c *Cluster) RestartNode(i int) error {
	if c.em == nil {
		return fmt.Errorf("hoplite: RestartNode requires an emulated fabric")
	}
	if old := c.nodes[i]; old != nil {
		old.Close()
		c.nodes[i] = nil
	}
	name := fmt.Sprintf("node-%d", i)
	c.em.Revive(name)
	ln, err := c.em.ListenOn(name, c.addrs[i])
	if err != nil {
		return fmt.Errorf("hoplite: restart node %d: %w", i, err)
	}
	// Re-join through a live seed whenever one exists: join is idempotent
	// for a node still in the map, hands back the current epoch's map, and
	// — crucially — the joining node purges the stale directory locations
	// its previous life registered, so the repair scanner sees the true
	// replication level. With no live seed (whole-cluster restart), fall
	// back to booting from the freshest map any slot holds.
	cm := c.currentMap()
	cfg := c.opts.coreConfig(c.fab, name, ln, c.topology, &cm, c.opts.localityFor(i))
	if seeds := c.liveAddrs(); len(seeds) > 0 {
		shardHost := true
		if mi := cm.MemberIndex(types.NodeID(c.addrs[i])); mi >= 0 {
			shardHost = cm.Members[mi].ShardHost
		}
		cfg.InitialMap = nil
		cfg.JoinAddrs = seeds
		cfg.JoinStorageOnly = !shardHost
	}
	node, err := core.NewNode(cfg)
	if err != nil {
		ln.Close()
		return fmt.Errorf("hoplite: restart node %d: %w", i, err)
	}
	c.nodes[i] = node
	return nil
}

// AllReduce folds num of the source objects into target with op and
// distributes the result to every node: the paper's allreduce is a reduce
// concatenated with a broadcast (§3.4.3). It returns the sources used.
// The broadcast leg is future-driven: each node's fetch resolves off its
// buffer completion watcher instead of a goroutine parked per node.
func (c *Cluster) AllReduce(ctx context.Context, coordinator int, target ObjectID, sources []ObjectID, num int, op ReduceOp) ([]ObjectID, error) {
	used, err := c.nodes[coordinator].Reduce(ctx, target, sources, num, op)
	if err != nil {
		return nil, err
	}
	futs := make([]*RefFuture, len(c.nodes))
	for i, n := range c.nodes {
		futs[i] = n.GetRefAsync(ctx, target)
	}
	for _, f := range futs {
		ref, e := f.Await(ctx)
		if e != nil {
			if err == nil {
				err = e
			}
			continue
		}
		ref.Release()
	}
	return used, err
}

// Close shuts down every node and the fabric. Slots left empty by a
// failed RestartNode are skipped.
func (c *Cluster) Close() error {
	for _, n := range c.nodes {
		if n != nil {
			n.Close()
		}
	}
	return c.fab.Close()
}
