package hoplite

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"hoplite/internal/types"
)

// putF32 stores a constant-valued float32 array of elems elements.
func putF32(t *testing.T, ctx context.Context, n *Node, oid ObjectID, val float32, elems int) {
	t.Helper()
	xs := make([]float32, elems)
	for i := range xs {
		xs[i] = val
	}
	if err := n.Put(ctx, oid, types.EncodeF32(xs)); err != nil {
		t.Fatalf("put %v: %v", oid, err)
	}
}

func checkConst(t *testing.T, raw []byte, want float32) {
	t.Helper()
	xs := types.DecodeF32(raw)
	for i, x := range xs {
		if x != want {
			t.Fatalf("elem %d: %v want %v", i, x, want)
		}
	}
}

// TestReduceSubset reduces num < m sources: exactly the earliest num
// participate and the spares stay untouched.
func TestReduceSubset(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 6, Options{})
	const elems = 64 << 10
	sources := make([]ObjectID, 6)
	for i := range sources {
		sources[i] = ObjectIDFromString(fmt.Sprintf("sub-%d", i))
		putF32(t, ctx, c.Node(i), sources[i], 1, elems)
	}
	target := ObjectIDFromString("sub-out")
	used, err := c.Node(0).Reduce(ctx, target, sources, 4, SumF32)
	if err != nil {
		t.Fatal(err)
	}
	if len(used) != 4 {
		t.Fatalf("used %d", len(used))
	}
	raw, err := c.Node(0).Get(ctx, target)
	if err != nil {
		t.Fatal(err)
	}
	checkConst(t, raw, 4)
}

// TestReduceChained feeds one reduce's output into another — the
// composed-reduce pattern of §3.4.2, which pipelines through the
// directory because the first output is an ordinary (streamable) object.
func TestReduceChained(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 4, Options{})
	const elems = 64 << 10
	a := ObjectIDFromString("ch-a")
	b := ObjectIDFromString("ch-b")
	d := ObjectIDFromString("ch-d")
	putF32(t, ctx, c.Node(1), a, 2, elems)
	putF32(t, ctx, c.Node(2), b, 3, elems)
	putF32(t, ctx, c.Node(3), d, 10, elems)

	sum1 := ObjectIDFromString("ch-sum1")
	done1 := make(chan error, 1)
	go func() {
		_, err := c.Node(0).Reduce(ctx, sum1, []ObjectID{a, b}, 2, SumF32)
		done1 <- err
	}()
	// The second reduce consumes sum1 as a source future immediately.
	sum2 := ObjectIDFromString("ch-sum2")
	if _, err := c.Node(0).Reduce(ctx, sum2, []ObjectID{sum1, d}, 2, SumF32); err != nil {
		t.Fatal(err)
	}
	if err := <-done1; err != nil {
		t.Fatal(err)
	}
	raw, err := c.Node(0).Get(ctx, sum2)
	if err != nil {
		t.Fatal(err)
	}
	checkConst(t, raw, 15)
}

// TestReduceArrivalOrderProperty verifies the core reduce invariant: any
// arrival order and any forced tree degree produce the exact fold.
func TestReduceArrivalOrderProperty(t *testing.T) {
	const elems = 4 << 10
	rng := rand.New(rand.NewSource(7))
	for _, degree := range []int{0, 1, 2, 5} {
		for trial := 0; trial < 3; trial++ {
			t.Run(fmt.Sprintf("d=%d/trial=%d", degree, trial), func(t *testing.T) {
				ctx := testCtx(t)
				c := startCluster(t, 5, Options{ReduceDegree: degree})
				sources := make([]ObjectID, 5)
				perm := rng.Perm(5)
				var want float32
				var wg sync.WaitGroup
				for i := range sources {
					sources[i] = ObjectIDFromString(fmt.Sprintf("prop-%d-%d-%d", degree, trial, i))
					want += float32(i + 1)
				}
				for order, idx := range perm {
					wg.Add(1)
					go func(order, idx int) {
						defer wg.Done()
						time.Sleep(time.Duration(order) * 15 * time.Millisecond)
						putF32(t, ctx, c.Node(idx), sources[idx], float32(idx+1), elems)
					}(order, idx)
				}
				target := ObjectIDFromString(fmt.Sprintf("prop-out-%d-%d", degree, trial))
				if _, err := c.Node(0).Reduce(ctx, target, sources, 5, SumF32); err != nil {
					t.Fatal(err)
				}
				wg.Wait()
				raw, err := c.Node(0).Get(ctx, target)
				if err != nil {
					t.Fatal(err)
				}
				checkConst(t, raw, want)
			})
		}
	}
}

// TestReduceMinMax exercises non-sum kernels end to end.
func TestReduceMinMax(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 3, Options{})
	const elems = 32 << 10
	sources := make([]ObjectID, 3)
	vals := []float32{5, -2, 9}
	for i := range sources {
		sources[i] = ObjectIDFromString(fmt.Sprintf("mm-%d", i))
		putF32(t, ctx, c.Node(i), sources[i], vals[i], elems)
	}
	minOut := ObjectIDFromString("mm-min")
	if _, err := c.Node(0).Reduce(ctx, minOut, sources, 3, ReduceOp{Kind: Min, DType: F32}); err != nil {
		t.Fatal(err)
	}
	raw, err := c.Node(0).Get(ctx, minOut)
	if err != nil {
		t.Fatal(err)
	}
	checkConst(t, raw, -2)

	maxOut := ObjectIDFromString("mm-max")
	if _, err := c.Node(1).Reduce(ctx, maxOut, sources, 3, ReduceOp{Kind: Max, DType: F32}); err != nil {
		t.Fatal(err)
	}
	raw, err = c.Node(1).Get(ctx, maxOut)
	if err != nil {
		t.Fatal(err)
	}
	checkConst(t, raw, 9)
}

// TestReduceValidation covers argument errors.
func TestReduceValidation(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 2, Options{})
	src := ObjectIDFromString("v-src")
	if _, err := c.Node(0).Reduce(ctx, ObjectID{}, []ObjectID{src}, 1, SumF32); err == nil {
		t.Fatal("zero target accepted")
	}
	if _, err := c.Node(0).Reduce(ctx, ObjectIDFromString("v-t"), []ObjectID{src}, 2, SumF32); err == nil {
		t.Fatal("num > len(sources) accepted")
	}
	if _, err := c.Node(0).Reduce(ctx, ObjectIDFromString("v-t"), []ObjectID{src, src}, 1, SumF32); err == nil {
		t.Fatal("duplicate sources accepted")
	}
	if _, err := c.Node(0).Reduce(ctx, ObjectIDFromString("v-t"), []ObjectID{src}, 1, ReduceOp{Kind: OpKind(9)}); err == nil {
		t.Fatal("bad op accepted")
	}
}

// TestReduceSingleSource degenerates to a copy.
func TestReduceSingleSource(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 2, Options{})
	src := ObjectIDFromString("one-src")
	putF32(t, ctx, c.Node(1), src, 7, 32<<10)
	target := ObjectIDFromString("one-out")
	if _, err := c.Node(0).Reduce(ctx, target, []ObjectID{src}, 1, SumF32); err != nil {
		t.Fatal(err)
	}
	raw, err := c.Node(0).Get(ctx, target)
	if err != nil {
		t.Fatal(err)
	}
	checkConst(t, raw, 7)
}

// TestReduceSmallObjects exercises the inline gather-fold path (§3.2).
func TestReduceSmallObjects(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 4, Options{})
	sources := make([]ObjectID, 4)
	for i := range sources {
		sources[i] = ObjectIDFromString(fmt.Sprintf("smr-%d", i))
		putF32(t, ctx, c.Node(i), sources[i], float32(i), 256) // 1 KB, inline
	}
	target := ObjectIDFromString("smr-out")
	used, err := c.Node(0).Reduce(ctx, target, sources, 4, SumF32)
	if err != nil {
		t.Fatal(err)
	}
	if len(used) != 4 {
		t.Fatalf("used %d", len(used))
	}
	raw, err := c.Node(1).Get(ctx, target)
	if err != nil {
		t.Fatal(err)
	}
	checkConst(t, raw, 0+1+2+3)
}

// TestEvictionUnderCapacity bounds a store and checks unpinned remote
// copies are evicted while the pinned origin survives and stays
// fetchable.
func TestEvictionUnderCapacity(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 2, Options{StoreCapacity: 3 << 20})
	data := payload(1<<20, 3)
	var oids []ObjectID
	for i := 0; i < 6; i++ {
		oid := ObjectIDFromString(fmt.Sprintf("evict-%d", i))
		oids = append(oids, oid)
		if err := c.Node(0).Put(ctx, oid, data); err != nil && i < 3 {
			t.Fatalf("put %d: %v", i, err)
		}
		// Node 1 caches a remote copy each time; its 3 MB store must
		// evict older unpinned copies.
		if _, err := c.Node(1).Get(ctx, oid); err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
	}
	if used := c.Node(1).Store().Used(); used > 3<<20 {
		t.Fatalf("node 1 store %d bytes exceeds capacity", used)
	}
	// Every object is still fetchable from the pinned origin.
	for _, oid := range oids[:3] {
		got, err := c.Node(1).Get(ctx, oid)
		if err != nil {
			t.Fatalf("refetch: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("refetch mismatch")
		}
	}
}

// TestManyObjectsManyNodes stresses mixed Put/Get traffic.
func TestManyObjectsManyNodes(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 5, Options{})
	const objs = 40
	var wg sync.WaitGroup
	errs := make(chan error, objs)
	for i := 0; i < objs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			oid := ObjectIDFromString(fmt.Sprintf("stress-%d", i))
			data := payload(10000+i*137, byte(i))
			if err := c.Node(i%5).Put(ctx, oid, data); err != nil {
				errs <- err
				return
			}
			got, err := c.Node((i+2)%5).Get(ctx, oid)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, data) {
				errs <- fmt.Errorf("obj %d mismatch", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestGetImmutableSharesBuffer verifies the zero-copy read path returns
// the same backing array for repeated immutable gets.
func TestGetImmutableSharesBuffer(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 2, Options{})
	oid := ObjectIDFromString("imm")
	data := payload(1<<20, 4)
	if err := c.Node(0).Put(ctx, oid, data); err != nil {
		t.Fatal(err)
	}
	a, err := c.Node(1).GetImmutable(ctx, oid)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Node(1).GetImmutable(ctx, oid)
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Fatal("immutable gets copied the buffer")
	}
}

// TestBroadcastStaggeredArrivals checks late receivers still converge
// (the Figure 8 scenario at test scale).
func TestBroadcastStaggeredArrivals(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 6, Options{})
	oid := ObjectIDFromString("stag")
	data := payload(2<<20, 9)
	if err := c.Node(0).Put(ctx, oid, data); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 6)
	for i := 1; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			time.Sleep(time.Duration(i) * 20 * time.Millisecond)
			got, err := c.Node(i).Get(ctx, oid)
			if err == nil && !bytes.Equal(got, data) {
				err = fmt.Errorf("node %d mismatch", i)
			}
			errs <- err
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestPutIdempotentReput covers a restarted task re-producing its output
// on the same node.
func TestPutIdempotentReput(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 2, Options{})
	oid := ObjectIDFromString("reput")
	data := payload(1<<20, 1)
	if err := c.Node(0).Put(ctx, oid, data); err != nil {
		t.Fatal(err)
	}
	if err := c.Node(0).Put(ctx, oid, data); err != nil {
		t.Fatalf("re-put failed: %v", err)
	}
	got, err := c.Node(1).Get(ctx, oid)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("get after re-put: %v", err)
	}
}

// TestDeleteSmallObject covers the inline-path delete.
func TestDeleteSmallObject(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 2, Options{})
	oid := ObjectIDFromString("small-del")
	if err := c.Node(0).Put(ctx, oid, []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	if err := c.Node(1).Delete(ctx, oid); err != nil {
		t.Fatal(err)
	}
	sctx, cancel := context.WithTimeout(ctx, 3*time.Second)
	defer cancel()
	if _, err := c.Node(1).Get(sctx, oid); err == nil {
		t.Fatal("deleted small object still readable")
	}
}
