package hoplite

import (
	"bytes"
	"context"
	"testing"
	"time"

	"hoplite/internal/types"
)

// waitComplete polls the directory until the object has at least want
// complete locations (the striped-pull coordinator reports PutComplete
// asynchronously after sealing).
func waitComplete(t *testing.T, ctx context.Context, c *Cluster, from int, oid ObjectID, want int) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		rec, err := c.Node(from).Directory().Lookup(ctx, oid, false)
		if err == nil {
			complete := 0
			for _, l := range rec.Locs {
				if l.Progress == types.ProgressComplete {
					complete++
				}
			}
			if complete >= want {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("object never reached %d complete copies", want)
		}
		select {
		case <-time.After(10 * time.Millisecond):
		case <-ctx.Done():
			t.Fatal(ctx.Err())
		}
	}
}

// stripedSenders runs one striped Get against k complete remote copies
// and returns how many distinct senders served ranged pulls for it.
func stripedSenders(t *testing.T, maxSources int) int {
	return stripedSendersSized(t, maxSources, 16<<20)
}

func stripedSendersSized(t *testing.T, maxSources, size int) int {
	t.Helper()
	ctx := testCtx(t)
	c := startCluster(t, 4, Options{StripeThreshold: 1 << 20, MaxSources: maxSources})
	data := payload(size, 5)
	oid := ObjectIDFromString("striped-get")
	if err := c.Node(0).Put(ctx, oid, data); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Warm two more complete copies so k = 3 complete remote copies exist.
	for i := 1; i <= 2; i++ {
		if _, err := c.Node(i).Get(ctx, oid); err != nil {
			t.Fatalf("warm Get node%d: %v", i, err)
		}
	}
	waitComplete(t, ctx, c, 3, oid, 3)
	before := make([]int64, 3)
	for i := 0; i < 3; i++ {
		before[i] = c.Node(i).DataStats().RangedPulls
	}
	got, err := c.Node(3).Get(ctx, oid)
	if err != nil {
		t.Fatalf("striped Get: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("striped Get payload mismatch")
	}
	senders := 0
	for i := 0; i < 3; i++ {
		if c.Node(i).DataStats().RangedPulls > before[i] {
			senders++
		}
	}
	return senders
}

// A Get of an object with k complete remote copies must issue ranged
// pulls to min(k, MaxSources) senders concurrently.
func TestStripedGetUsesAllCompleteCopies(t *testing.T) {
	if got := stripedSenders(t, 4); got != 3 { // k=3 < MaxSources=4
		t.Fatalf("striped Get drew ranged pulls from %d senders, want min(k=3, MaxSources=4) = 3", got)
	}
}

func TestStripedGetRespectsMaxSources(t *testing.T) {
	if got := stripedSenders(t, 2); got != 2 { // MaxSources=2 < k=3
		t.Fatalf("striped Get drew ranged pulls from %d senders, want min(k=3, MaxSources=2) = 2", got)
	}
}

// An object smaller than two default ledger chunks must still spread
// across every leased sender: the striped pull shrinks the claim grid to
// the object and sender count instead of handing the whole (single
// default chunk) ledger to the first worker.
func TestStripedGetSmallObjectUsesAllSenders(t *testing.T) {
	if got := stripedSendersSized(t, 4, 4<<20); got != 3 { // one default chunk, k=3
		t.Fatalf("small striped Get drew ranged pulls from %d senders, want 3", got)
	}
}

// Below the stripe threshold a Get must keep the classic single-sender
// pipelined pull: exactly one sender serves, with no ranged pulls.
func TestSmallGetDoesNotStripe(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 4, Options{StripeThreshold: 64 << 20, MaxSources: 4})
	data := payload(8<<20, 6)
	oid := ObjectIDFromString("unstriped-get")
	if err := c.Node(0).Put(ctx, oid, data); err != nil {
		t.Fatalf("Put: %v", err)
	}
	for i := 1; i <= 2; i++ {
		if _, err := c.Node(i).Get(ctx, oid); err != nil {
			t.Fatalf("warm Get node%d: %v", i, err)
		}
	}
	waitComplete(t, ctx, c, 3, oid, 3)
	got, err := c.Node(3).Get(ctx, oid)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("payload mismatch")
	}
	var ranged int64
	for i := 0; i < 3; i++ {
		ranged += c.Node(i).DataStats().RangedPulls
	}
	if ranged != 0 {
		t.Fatalf("%d ranged pulls issued below the stripe threshold", ranged)
	}
}
