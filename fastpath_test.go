package hoplite

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"hoplite/internal/types"
)

// settleDirCalls waits until the node's directory RPC counter stops
// moving (trailing lease releases and watch subscriptions run off the Get
// critical path) and returns the settled value.
func settleDirCalls(t *testing.T, c *Cluster, i int) int64 {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	last := c.Node(i).Directory().Stats().Calls
	for {
		time.Sleep(50 * time.Millisecond)
		cur := c.Node(i).Directory().Stats().Calls
		if cur == last {
			return cur
		}
		if time.Now().After(deadline) {
			t.Fatalf("directory call counter never settled (%d -> %d)", last, cur)
		}
		last = cur
	}
}

// TestWarmGetZeroDirectoryRPCs is the fast path's headline acceptance
// check: once a node has pulled a remote object and cached its location,
// a repeat Get after local eviction goes straight to the cached sender —
// zero directory RPCs.
func TestWarmGetZeroDirectoryRPCs(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 2, Options{})
	data := payload(128<<10, 5) // above the inline threshold
	oid := ObjectIDFromString("warm-cached")
	if err := c.Node(0).Put(ctx, oid, data); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, err := c.Node(1).Get(ctx, oid); err != nil {
		t.Fatalf("cold Get: %v", err)
	}
	// Let the trailing ReleaseSender and the cache's watch subscription
	// land, then drop the local copy so the next Get must pull again.
	settleDirCalls(t, c, 1)
	if cs := c.Node(1).CacheStats(); cs.Size != 1 {
		t.Fatalf("expected 1 cached location entry, got %+v", cs)
	}
	c.Node(1).Store().Delete(oid)

	before := settleDirCalls(t, c, 1)
	got, err := c.Node(1).Get(ctx, oid)
	if err != nil {
		t.Fatalf("warm Get: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("warm Get payload mismatch: %d bytes", len(got))
	}
	if after := c.Node(1).Directory().Stats().Calls; after != before {
		t.Fatalf("warm Get issued %d directory RPCs, want 0", after-before)
	}
	if cs := c.Node(1).CacheStats(); cs.Hits < 1 {
		t.Fatalf("warm Get did not hit the location cache: %+v", cs)
	}
}

// TestColdInlineGetOneRPC asserts the other acceptance bound: a cold Get
// of a sub-threshold object is exactly one directory RPC — the payload
// rides the acquire reply.
func TestColdInlineGetOneRPC(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 2, Options{})
	data := payload(1024, 7)
	oid := ObjectIDFromString("cold-inline")
	if err := c.Node(0).Put(ctx, oid, data); err != nil {
		t.Fatalf("Put: %v", err)
	}
	before := settleDirCalls(t, c, 1)
	got, err := c.Node(1).Get(ctx, oid)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("payload mismatch: %d bytes", len(got))
	}
	if after := c.Node(1).Directory().Stats().Calls; after != before+1 {
		t.Fatalf("cold inline Get issued %d directory RPCs, want exactly 1", after-before)
	}
}

// TestCachedSenderDeadFailsOver covers the cached path's failover: with
// two remembered holders, the death of one must not cost a directory
// round trip — the pull moves to the next cached sender.
func TestCachedSenderDeadFailsOver(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 3, Options{})
	data := payload(256<<10, 11)
	oid := ObjectIDFromString("cached-failover")
	if err := c.Node(0).Put(ctx, oid, data); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Spread complete copies onto nodes 0 and 1, then warm node 2's cache.
	if _, err := c.Node(1).Get(ctx, oid); err != nil {
		t.Fatalf("replicate Get: %v", err)
	}
	if _, err := c.Node(2).Get(ctx, oid); err != nil {
		t.Fatalf("cold Get: %v", err)
	}
	settleDirCalls(t, c, 2)
	c.Node(2).Store().Delete(oid)

	// Kill one cached holder. Whichever sender the cached pull tries
	// first, it must end with the data and without consulting the
	// directory: a dead cached sender fails over inside the cache.
	c.Node(0).Close()
	before := settleDirCalls(t, c, 2)
	got, err := c.Node(2).Get(ctx, oid)
	if err != nil {
		t.Fatalf("warm Get after sender death: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("payload mismatch: %d bytes", len(got))
	}
	if after := c.Node(2).Directory().Stats().Calls; after != before {
		t.Fatalf("cached failover issued %d directory RPCs, want 0", after-before)
	}
}

// TestCachedHolderDeletesMidGet races a warm cached Get against the
// holder deleting the object cluster-wide. The Get must either return the
// full payload or a deletion error — never hang, never corrupt — and the
// cache entry must not survive the deletion. Run under -race.
func TestCachedHolderDeletesMidGet(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 3, Options{})
	for i := 0; i < 8; i++ {
		data := payload(128<<10, byte(i))
		oid := ObjectIDFromString(fmt.Sprintf("del-race-%d", i))
		if err := c.Node(0).Put(ctx, oid, data); err != nil {
			t.Fatalf("Put: %v", err)
		}
		if _, err := c.Node(2).Get(ctx, oid); err != nil {
			t.Fatalf("cold Get: %v", err)
		}
		settleDirCalls(t, c, 2)
		c.Node(2).Store().Delete(oid)

		errCh := make(chan error, 1)
		gotCh := make(chan []byte, 1)
		go func() {
			got, err := c.Node(2).Get(ctx, oid)
			gotCh <- got
			errCh <- err
		}()
		if err := c.Node(0).Delete(ctx, oid); err != nil {
			t.Fatalf("Delete: %v", err)
		}
		got, err := <-gotCh, <-errCh
		if err == nil {
			if !bytes.Equal(got, data) {
				t.Fatalf("iter %d: racing Get returned corrupt payload (%d bytes)", i, len(got))
			}
		} else if !errors.Is(err, types.ErrDeleted) && !errors.Is(err, types.ErrNotFound) && !errors.Is(err, types.ErrAborted) {
			t.Fatalf("iter %d: racing Get failed with unexpected error: %v", i, err)
		}
		// The deletion must stick: no node may keep serving the object.
		waitGone(t, c, oid)
	}
}

// TestInlineGetDeleteNoResurrection races inline Gets against a
// concurrent cluster-wide Delete: whatever interleaving occurs, the
// in-flight inline payload must never re-materialize a store copy after
// the eviction fan-out has visited the node. Run under -race.
func TestInlineGetDeleteNoResurrection(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 2, Options{})
	for i := 0; i < 10; i++ {
		data := payload(2048, byte(i))
		oid := ObjectIDFromString(fmt.Sprintf("inline-race-%d", i))
		if err := c.Node(0).Put(ctx, oid, data); err != nil {
			t.Fatalf("Put: %v", err)
		}
		errCh := make(chan error, 1)
		gotCh := make(chan []byte, 1)
		go func() {
			got, err := c.Node(1).Get(ctx, oid)
			gotCh <- got
			errCh <- err
		}()
		if err := c.Node(0).Delete(ctx, oid); err != nil {
			t.Fatalf("Delete: %v", err)
		}
		got, err := <-gotCh, <-errCh
		if err == nil && !bytes.Equal(got, data) {
			t.Fatalf("iter %d: racing inline Get returned corrupt payload", i)
		}
		waitGone(t, c, oid)
	}
}

// waitGone polls until no node's store holds oid: a deleted object that
// lingers (or reappears) in any store is a resurrection bug.
func waitGone(t *testing.T, c *Cluster, oid ObjectID) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		holders := 0
		for _, n := range c.Nodes() {
			if n != nil && n.Store().Contains(oid) {
				holders++
			}
		}
		if holders == 0 {
			// Re-check shortly after: the resurrection race inserts the
			// copy late, after the stores first look clean.
			time.Sleep(50 * time.Millisecond)
			clean := true
			for _, n := range c.Nodes() {
				if n != nil && n.Store().Contains(oid) {
					clean = false
				}
			}
			if clean {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("object %v still held by %d stores after delete", oid, holders)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
