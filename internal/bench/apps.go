package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"hoplite"
)

// The application benchmarks replace GPU work with calibrated virtual
// compute (sleeps): the paper's speedups come from communication
// structure — the parameter server's NIC is the bottleneck under Ray,
// and Hoplite's reduce/broadcast trees remove it — so modelling compute
// as a fixed per-round delay preserves the comparison (§5.2–5.6).

// psConfig drives the shared parameter-server engine.
type psConfig struct {
	n          int   // nodes: node 0 is the trainer/PS
	modelSize  int64 // scaled bytes broadcast to workers
	updateSize int64 // scaled bytes returned by workers (grad or rollout)
	batch      int   // updates folded per round (paper: half the workers)
	rounds     int
	computeT   time.Duration // worker simulation/backprop time
	updateT    time.Duration // PS apply time
	reduce     bool          // true: fold updates (gradients); false: gather (rollouts)
	hoplite    bool          // false: Ray-style individual transfers
}

// runPS runs the asynchronous parameter-server loop and returns updates
// applied per second (the paper's samples/s modulo a constant batch
// factor).
func runPS(sc Scale, cfg psConfig) (float64, error) {
	link := sc.Link()
	c, err := hoplite.StartLocalCluster(cfg.n, hoplite.Options{Emulate: &link, SmallObject: sc.SmallObject(), PipelineBlock: sc.PipelineBlock()})
	if err != nil {
		return 0, err
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	workers := cfg.n - 1
	if cfg.batch > workers {
		cfg.batch = workers
	}
	model := benchData(cfg.modelSize)
	update := benchData(cfg.updateSize)

	// assignments carries (worker, model oid) pairs; updates carries the
	// worker's produced object.
	type job struct {
		worker int
		model  hoplite.ObjectID
	}
	type result struct {
		worker int
		oid    hoplite.ObjectID
		err    error
	}
	jobs := make([]chan job, cfg.n)
	results := make(chan result, workers*2)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 1; w < cfg.n; w++ {
		jobs[w] = make(chan job, 4)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			node := c.Node(w)
			for {
				select {
				case <-done:
					return
				case j := <-jobs[w]:
					ref, err := node.GetRef(ctx, j.model)
					if err != nil {
						results <- result{w, hoplite.ObjectID{}, err}
						continue
					}
					time.Sleep(cfg.computeT) //hoplite:sleep-ok models the worker's compute pass, not polling
					ref.Release()
					oid := hoplite.RandomObjectID()
					if err := node.Put(ctx, oid, update); err != nil {
						results <- result{w, oid, err}
						continue
					}
					results <- result{w, oid, nil}
				}
			}
		}(w)
	}
	defer func() { close(done); wg.Wait() }()

	ps := c.Node(0)
	dispatch := func(w int, modelOID hoplite.ObjectID) error {
		if cfg.hoplite {
			jobs[w] <- job{w, modelOID}
			return nil
		}
		// Ray-style: the PS ships a private copy to each worker, so its
		// egress serializes across workers.
		priv := hoplite.RandomObjectID()
		if err := ps.Put(ctx, priv, model); err != nil {
			return err
		}
		jobs[w] <- job{w, priv}
		return nil
	}

	m0 := hoplite.RandomObjectID()
	if err := ps.Put(ctx, m0, model); err != nil {
		return 0, err
	}
	for w := 1; w < cfg.n; w++ {
		if err := dispatch(w, m0); err != nil {
			return 0, err
		}
	}

	applied := 0
	t0 := time.Now()
	for r := 0; r < cfg.rounds; r++ {
		// Collect one batch of finished workers (the first half to
		// finish, per the paper's async PS and RL setups).
		batchWorkers := make([]int, 0, cfg.batch)
		batchOIDs := make([]hoplite.ObjectID, 0, cfg.batch)
		for len(batchOIDs) < cfg.batch {
			select {
			case res := <-results:
				if res.err != nil {
					return 0, res.err
				}
				batchWorkers = append(batchWorkers, res.worker)
				batchOIDs = append(batchOIDs, res.oid)
			case <-ctx.Done():
				return 0, ctx.Err()
			}
		}
		if cfg.reduce {
			if cfg.hoplite {
				target := hoplite.RandomObjectID()
				if _, err := ps.Reduce(ctx, target, batchOIDs, len(batchOIDs), sumF32); err != nil {
					return 0, err
				}
				if err := ps.WaitLocal(ctx, target); err != nil {
					return 0, err
				}
				ps.Delete(ctx, target)
			} else {
				// Ray-style: the PS pulls and applies each update
				// individually (Figure 1a), so its ingress serializes.
				for _, oid := range batchOIDs {
					if _, err := ps.Get(ctx, oid); err != nil {
						return 0, err
					}
				}
			}
		} else {
			// Samples optimization (IMPALA): gather the rollouts through
			// zero-copy ref futures — all fetches in flight at once, no
			// goroutine parked per transfer.
			futs := make([]*hoplite.RefFuture, len(batchOIDs))
			for i, oid := range batchOIDs {
				futs[i] = ps.GetRefAsync(ctx, oid)
			}
			var firstErr error
			for _, fut := range futs {
				ref, err := fut.Await(ctx)
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					continue
				}
				ref.Release()
			}
			if firstErr != nil {
				return 0, firstErr
			}
		}
		for _, oid := range batchOIDs {
			ps.Delete(ctx, oid)
		}
		applied += len(batchOIDs)
		time.Sleep(cfg.updateT) //hoplite:sleep-ok models the server's update-apply time, not polling
		mr := hoplite.RandomObjectID()
		if err := ps.Put(ctx, mr, model); err != nil {
			return 0, err
		}
		for _, w := range batchWorkers {
			if err := dispatch(w, mr); err != nil {
				return 0, err
			}
		}
	}
	return float64(applied) / time.Since(t0).Seconds(), nil
}

// Figure9 regenerates the asynchronous SGD throughput comparison for
// AlexNet (233 MB), VGG-16 (528 MB) and ResNet-50 (97 MB).
func Figure9(sc Scale, nodeCounts []int, rounds int) ([]*Table, error) {
	models := []struct {
		name string
		size int64
	}{
		{"AlexNet", 233 << 20},
		{"VGG-16", 528 << 20},
		{"ResNet-50", 97 << 20},
	}
	var tables []*Table
	for _, n := range nodeCounts {
		t := &Table{
			Title:   fmt.Sprintf("Figure 9: async SGD throughput (updates/s), %d nodes", n),
			Columns: []string{"model", "Hoplite", "Ray", "speedup"},
		}
		for _, m := range models {
			cfg := psConfig{
				n: n, modelSize: sc.Size(m.size), updateSize: sc.Size(m.size),
				batch: (n - 1) / 2, rounds: rounds,
				computeT: 20 * time.Millisecond, updateT: 2 * time.Millisecond,
				reduce: true,
			}
			cfg.hoplite = true
			hop, err := runPS(sc, cfg)
			if err != nil {
				return nil, err
			}
			cfg.hoplite = false
			ray, err := runPS(sc, cfg)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				m.name, fmt.Sprintf("%.1f", hop), fmt.Sprintf("%.1f", ray), fmt.Sprintf("%.2fx", hop/ray),
			})
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Figure10 regenerates the RL training throughput comparison: IMPALA
// (samples optimization: broadcast + gather) and A3C (gradients
// optimization: reduce + broadcast), both with a 64 MB model.
func Figure10(sc Scale, nodeCounts []int, rounds int) ([]*Table, error) {
	var tables []*Table
	for _, algo := range []string{"IMPALA", "A3C"} {
		t := &Table{
			Title:   fmt.Sprintf("Figure 10: %s training throughput (updates/s)", algo),
			Columns: []string{"nodes", "Hoplite", "Ray", "speedup"},
		}
		for _, n := range nodeCounts {
			cfg := psConfig{
				n: n, modelSize: sc.Size(64 << 20),
				batch: (n - 1) / 2, rounds: rounds,
				computeT: 25 * time.Millisecond, updateT: 2 * time.Millisecond,
			}
			if algo == "IMPALA" {
				cfg.updateSize = sc.Size(16 << 20) // rollout batches
				cfg.reduce = false
			} else {
				cfg.updateSize = sc.Size(64 << 20) // gradients
				cfg.reduce = true
			}
			cfg.hoplite = true
			hop, err := runPS(sc, cfg)
			if err != nil {
				return nil, err
			}
			cfg.hoplite = false
			ray, err := runPS(sc, cfg)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(n), fmt.Sprintf("%.1f", hop), fmt.Sprintf("%.1f", ray), fmt.Sprintf("%.2fx", hop/ray),
			})
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// serving runs the ensemble-serving loop: per query the driver broadcasts
// an image batch to every model node, which "infers" and returns a small
// vote; the driver tallies the majority (§5.4). It returns queries/s and
// the per-query latencies.
func serving(sc Scale, c *hoplite.Cluster, queries int, inferT time.Duration, hopliteMode bool, onQuery func(q int)) (float64, []time.Duration, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	n := c.Size()
	batch := benchData(sc.Size(12 << 20)) // 64 × 256×256 images
	driver := c.Node(0)

	lat := make([]time.Duration, 0, queries)
	t0 := time.Now()
	for q := 0; q < queries; q++ {
		if onQuery != nil {
			onQuery(q)
		}
		qt := time.Now()
		var oids []hoplite.ObjectID
		shared := hoplite.RandomObjectID()
		if hopliteMode {
			if err := driver.Put(ctx, shared, batch); err != nil {
				return 0, nil, err
			}
		}
		votes := make(chan error, n-1)
		var qwg sync.WaitGroup
		for w := 1; w < n; w++ {
			qoid := shared
			if !hopliteMode {
				qoid = hoplite.RandomObjectID()
				oids = append(oids, qoid)
				if err := driver.Put(ctx, qoid, batch); err != nil {
					return 0, nil, err
				}
			}
			qwg.Add(1)
			go func(w int, qoid hoplite.ObjectID) {
				defer qwg.Done()
				node := c.Node(w)
				wctx, wcancel := context.WithTimeout(ctx, 10*time.Second)
				defer wcancel()
				qref, err := node.GetRef(wctx, qoid)
				if err != nil {
					votes <- err
					return
				}
				time.Sleep(inferT)
				qref.Release()
				vote := hoplite.ObjectIDFromString(fmt.Sprintf("vote-%d-%d-%v", q, w, hopliteMode))
				votes <- node.Put(wctx, vote, []byte{byte(w % 8)}) // tiny: inline fast path
			}(w, qoid)
		}
		qwg.Wait()
		ok := 0
		for i := 0; i < n-1; i++ {
			if err := <-votes; err == nil {
				ok++
			}
		}
		if ok == 0 {
			return 0, nil, fmt.Errorf("bench: query %d: all models failed", q)
		}
		if hopliteMode {
			driver.Delete(ctx, shared)
		}
		for _, o := range oids {
			driver.Delete(ctx, o)
		}
		lat = append(lat, time.Since(qt))
	}
	return float64(queries) / time.Since(t0).Seconds(), lat, nil
}

// Figure11 regenerates the ensemble model serving throughput comparison.
func Figure11(sc Scale, nodeCounts []int, queries int) ([]*Table, error) {
	t := &Table{
		Title:   "Figure 11: ensemble serving throughput (queries/s)",
		Columns: []string{"nodes", "Hoplite", "Ray", "speedup"},
	}
	for _, n := range nodeCounts {
		link := sc.Link()
		run := func(hopliteMode bool) (float64, error) {
			c, err := hoplite.StartLocalCluster(n, hoplite.Options{Emulate: &link, SmallObject: sc.SmallObject(), PipelineBlock: sc.PipelineBlock()})
			if err != nil {
				return 0, err
			}
			defer c.Close()
			qps, _, err := serving(sc, c, queries, 10*time.Millisecond, hopliteMode, nil)
			return qps, err
		}
		hop, err := run(true)
		if err != nil {
			return nil, err
		}
		ray, err := run(false)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprintf("%.2f", hop), fmt.Sprintf("%.2f", ray), fmt.Sprintf("%.2fx", hop/ray),
		})
	}
	return []*Table{t}, nil
}

// Figure12 regenerates the fault-tolerance timeline: per-query serving
// latency with a model node killed partway through and restarted
// ("rejoined") later. Directory shards stay on the driver node so the
// worker's death does not take coordination state with it (§6).
func Figure12(sc Scale, queries int) ([]*Table, error) {
	link := sc.Link()
	const n = 8
	failAt, rejoinAt := queries/3, 2*queries/3
	victim := n - 1
	run := func(hopliteMode bool) ([]time.Duration, error) {
		c, err := hoplite.StartLocalCluster(n, hoplite.Options{
			Emulate: &link, SmallObject: sc.SmallObject(), PipelineBlock: sc.PipelineBlock(), ShardNodes: 1,
		})
		if err != nil {
			return nil, err
		}
		defer c.Close()
		_, lat, err := serving(sc, c, queries, 10*time.Millisecond, hopliteMode, func(q int) {
			switch q {
			case failAt:
				c.KillNode(victim)
			case rejoinAt:
				if err := c.RestartNode(victim); err == nil {
					// the restarted node serves again from the next query
				}
			}
		})
		return lat, err
	}
	hop, err := run(true)
	if err != nil {
		return nil, err
	}
	ray, err := run(false)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Figure 12: serving latency per query across failure (q=%d) and rejoin (q=%d)", failAt, rejoinAt),
		Columns: []string{"query", "Hoplite", "Ray", "event"},
	}
	for q := 0; q < queries; q++ {
		event := ""
		if q == failAt {
			event = "worker failed"
		}
		if q == rejoinAt {
			event = "worker rejoined"
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(q), fmtDur(hop[q], nil), fmtDur(ray[q], nil), event})
	}
	return []*Table{t}, nil
}

// Figure13 regenerates the synchronous data-parallel training comparison:
// per round, every node computes then allreduces gradients of the model
// size; throughput is updates/s × nodes.
func Figure13(sc Scale, nodeCounts []int, rounds int) ([]*Table, error) {
	models := []struct {
		name string
		size int64
	}{
		{"AlexNet", 233 << 20},
		{"VGG-16", 528 << 20},
		{"ResNet-50", 97 << 20},
	}
	computeT := 20 * time.Millisecond
	var tables []*Table
	for _, n := range nodeCounts {
		t := &Table{
			Title:   fmt.Sprintf("Figure 13: synchronous data-parallel training throughput (rounds/s × nodes), %d nodes", n),
			Columns: []string{"model", "Hoplite", "OpenMPI", "Gloo", "Ray"},
		}
		he, err := NewHopliteEnv(sc, n, 0)
		if err != nil {
			return nil, err
		}
		me, err := NewMeshEnv(sc, n)
		if err != nil {
			he.Close()
			return nil, err
		}
		for _, m := range models {
			size := sc.Size(m.size)
			row := []string{m.name}
			for _, ar := range []func() (time.Duration, error){
				func() (time.Duration, error) { return he.AllReduce(size, nil) },
				func() (time.Duration, error) { return MPIAllReduce(me, size, nil) },
				func() (time.Duration, error) { return GlooRingChunked(me, size, nil) },
				func() (time.Duration, error) { return NaiveCollective("allreduce", rayNaive)(me, size, nil) },
			} {
				total := time.Duration(0)
				var err error
				for r := 0; r < rounds; r++ {
					var d time.Duration
					d, err = ar()
					if err != nil {
						break
					}
					total += d + computeT
				}
				if err != nil {
					row = append(row, "ERR("+err.Error()+")")
					continue
				}
				perRound := total / time.Duration(rounds)
				row = append(row, fmt.Sprintf("%.1f", float64(n)/perRound.Seconds()))
			}
			t.Rows = append(t.Rows, row)
		}
		he.Close()
		me.Close()
		tables = append(tables, t)
	}
	return tables, nil
}
