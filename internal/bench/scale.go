// Package bench regenerates every table and figure of the paper's
// evaluation (§5, Appendices A and B) on the emulated testbed. The
// paper's cluster — 16 m5.4xlarge nodes with 10 Gbps networking — is
// replaced by in-process nodes on a shaped loopback fabric, and object
// sizes are scaled down by a constant divisor so the whole suite runs on
// one machine in minutes. Absolute numbers therefore differ from the
// paper; the shapes (which system wins, by what factor, where crossovers
// sit) are what the harness is built to reproduce. EXPERIMENTS.md records
// paper-vs-measured for every experiment.
package bench

import (
	"time"

	"hoplite/internal/netem"
)

// Scale maps the paper's testbed onto the emulated one.
type Scale struct {
	// Bandwidth is the emulated full-duplex per-node bandwidth in
	// bytes/s, standing in for the paper's 10 Gbps (1.25 GB/s).
	Bandwidth float64
	// Latency is the emulated one-way link latency.
	Latency time.Duration
	// SizeDivisor scales the paper's object sizes down: a "1 GB" point
	// runs with 1 GB / SizeDivisor bytes. The small-object threshold is
	// divided by the same factor so the fast-path crossover scales too.
	SizeDivisor int64
	// Repeats is how many times each measurement runs (the paper uses
	// 10); the mean is reported.
	Repeats int
}

// DefaultScale is used by the benchmarks and the CLI unless overridden:
// 1/32 sizes at 64 MB/s per node, so a paper-"1 GB" broadcast moves 32 MB
// and takes ~0.5 s, with the S/(B·L) ratio within 2x of the testbed's.
func DefaultScale() Scale {
	return Scale{
		Bandwidth:   64 << 20,
		Latency:     200 * time.Microsecond,
		SizeDivisor: 32,
		Repeats:     3,
	}
}

// QuickScale is a faster, coarser scale for smoke benches and tests.
func QuickScale() Scale {
	return Scale{
		Bandwidth:   128 << 20,
		Latency:     100 * time.Microsecond,
		SizeDivisor: 256,
		Repeats:     1,
	}
}

// Size converts a paper object size to the scaled size, never below 256
// bytes.
func (sc Scale) Size(paper int64) int64 {
	s := paper / sc.SizeDivisor
	if s < 256 {
		s = 256
	}
	// Element-align for f32 reduce kernels.
	return s - s%4
}

// SmallObject returns the scaled small-object threshold (paper: 64 KB).
func (sc Scale) SmallObject() int64 {
	t := (64 << 10) / sc.SizeDivisor
	if t < 512 {
		// Keep minimum-sized scaled objects below the threshold so the
		// paper's "1 KB and 32 KB are inline" property survives scaling.
		t = 512
	}
	return t
}

// PipelineBlock returns the scaled pipelining block: the paper's 4 MB
// divided by the size divisor, floored at 64 KiB.
func (sc Scale) PipelineBlock() int {
	b := int((4 << 20) / sc.SizeDivisor)
	if b < 64<<10 {
		b = 64 << 10
	}
	return b
}

// Link returns the netem link configuration for this scale.
func (sc Scale) Link() netem.LinkConfig {
	return netem.LinkConfig{Latency: sc.Latency, BytesPerSec: sc.Bandwidth}
}

// Optimal returns the theoretical transfer time for size bytes over one
// link: size/B (the paper's "Optimal" line divides total bytes moved by
// the bandwidth).
func (sc Scale) Optimal(size int64) time.Duration {
	return time.Duration(float64(size) / sc.Bandwidth * float64(time.Second))
}
