package bench

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"hoplite"
)

// OutOfCoreResult reports one out-of-core workload run: a working set
// several times the per-node memory budget produced and then re-read
// through the spill tier.
type OutOfCoreResult struct {
	Objects        int
	ObjectBytes    int64
	AggregateBytes int64
	MemoryLimit    int64
	Demotions      int64
	SpilledObjects int
	PutSeconds     float64
	ReadSeconds    float64
	// PutBps / ReadBps are aggregate workload throughputs in bytes/s;
	// the read phase is dominated by spill restores.
	PutBps  float64
	ReadBps float64
}

// OutOfCore produces factor×memLimit bytes of objects on one node of a
// two-node cluster, then reads every object back twice — once remotely
// (many served straight off the producer's spill files) and once locally
// on the producer (the restore path). With spillDir == "" the workload is
// expected to block on admission backpressure instead; callers probe that
// case with a bounded ctx.
func OutOfCore(ctx context.Context, spillDir string, memLimit, objSize int64, factor int) (OutOfCoreResult, error) {
	res := OutOfCoreResult{
		ObjectBytes: objSize,
		MemoryLimit: memLimit,
		Objects:     int((memLimit*int64(factor) + objSize - 1) / objSize),
	}
	res.AggregateBytes = int64(res.Objects) * objSize
	c, err := hoplite.StartLocalCluster(2, hoplite.Options{
		MemoryLimit: memLimit,
		SpillDir:    spillDir,
	})
	if err != nil {
		return res, err
	}
	defer c.Close()

	pattern := func(i int) []byte {
		p := make([]byte, objSize)
		for j := range p {
			p[j] = byte(i + j*7)
		}
		return p
	}
	oids := make([]hoplite.ObjectID, res.Objects)
	start := time.Now()
	for i := range oids {
		oids[i] = hoplite.ObjectIDFromString(fmt.Sprintf("ooc-%d", i))
		if err := c.Node(0).Put(ctx, oids[i], pattern(i)); err != nil {
			return res, fmt.Errorf("put %d: %w", i, err)
		}
	}
	res.PutSeconds = time.Since(start).Seconds()

	start = time.Now()
	for pass, node := range []int{1, 0} {
		for i, oid := range oids {
			got, err := c.Node(node).Get(ctx, oid)
			if err != nil {
				return res, fmt.Errorf("pass %d get %d: %w", pass, i, err)
			}
			if !bytes.Equal(got, pattern(i)) {
				return res, fmt.Errorf("pass %d object %d corrupted", pass, i)
			}
		}
	}
	res.ReadSeconds = time.Since(start).Seconds()

	res.Demotions = c.Node(0).Store().Demotions() + c.Node(1).Store().Demotions()
	if sp := c.Node(0).Spill(); sp != nil {
		res.SpilledObjects = sp.Len()
	}
	if res.PutSeconds > 0 {
		res.PutBps = float64(res.AggregateBytes) / res.PutSeconds
	}
	if res.ReadSeconds > 0 {
		res.ReadBps = float64(2*res.AggregateBytes) / res.ReadSeconds
	}
	return res, nil
}
