package bench

import (
	"context"
	"testing"
	"time"
)

// TestMeasurementSmoke runs one tiny measurement through each benchmark
// primitive end-to-end — cluster boot, P2P, Broadcast, Reduce and the
// control-plane micro — so the benchmark plumbing cannot silently rot
// between full bench runs.
func TestMeasurementSmoke(t *testing.T) {
	sc := QuickScale()
	size := sc.Size(4 << 20) // above the small-object threshold: real transfers

	he, err := NewHopliteEnv(sc, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer he.Close()

	if d, err := he.P2P(size); err != nil {
		t.Fatalf("P2P: %v", err)
	} else if d <= 0 {
		t.Fatalf("P2P: non-positive duration %v", d)
	}
	if d, err := he.Broadcast(size, nil); err != nil {
		t.Fatalf("Broadcast: %v", err)
	} else if d <= 0 {
		t.Fatalf("Broadcast: non-positive duration %v", d)
	}
	if d, err := he.Reduce(size, nil); err != nil {
		t.Fatalf("Reduce: %v", err)
	} else if d <= 0 {
		t.Fatalf("Reduce: non-positive duration %v", d)
	}
	if d, err := he.Gather(size); err != nil {
		t.Fatalf("Gather: %v", err)
	} else if d <= 0 {
		t.Fatalf("Gather: non-positive duration %v", d)
	}
}

func TestControlPlaneMicroSmoke(t *testing.T) {
	tables, err := ControlPlaneMicro(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) != 2 {
		t.Fatalf("unexpected table shape: %+v", tables)
	}
}

func TestMeshSmoke(t *testing.T) {
	sc := QuickScale()
	me, err := NewMeshEnv(sc, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer me.Close()
	if _, err := me.MPIP2P(sc.Size(1 << 20)); err != nil {
		t.Fatalf("MPIP2P: %v", err)
	}
}

func TestStaggered(t *testing.T) {
	got := Staggered(3, 10*time.Millisecond)
	want := []time.Duration{0, 10 * time.Millisecond, 20 * time.Millisecond}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Staggered[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestOutOfCoreSmoke runs a tiny out-of-core workload (working set 4x the
// memory budget) through the spill tier end-to-end.
func TestOutOfCoreSmoke(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := OutOfCore(ctx, t.TempDir(), 1<<20, 128<<10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Demotions == 0 || res.SpilledObjects == 0 {
		t.Fatalf("out-of-core run never spilled: %+v", res)
	}
	if res.PutBps <= 0 || res.ReadBps <= 0 {
		t.Fatalf("missing throughput: %+v", res)
	}
}
