package bench

import (
	"context"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"

	"hoplite"
	"hoplite/internal/baseline"
)

// Table is one regenerated figure/table: a title, a header row, and data
// rows (all pre-formatted strings).
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n## %s\n\n", t.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Columns, "\t"))
	sep := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		sep[i] = strings.Repeat("-", len(c))
	}
	fmt.Fprintln(tw, strings.Join(sep, "\t"))
	for _, r := range t.Rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	tw.Flush()
}

func fmtDur(d time.Duration, err error) string {
	if err != nil {
		return "ERR(" + err.Error() + ")"
	}
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

func fmtSize(paper int64) string {
	switch {
	case paper >= 1<<30:
		return fmt.Sprintf("%dGB", paper>>30)
	case paper >= 1<<20:
		return fmt.Sprintf("%dMB", paper>>20)
	default:
		return fmt.Sprintf("%dKB", paper>>10)
	}
}

// repeat runs fn sc.Repeats times and returns the mean.
func (sc Scale) repeat(fn func() (time.Duration, error)) (time.Duration, error) {
	reps := sc.Repeats
	if reps <= 0 {
		reps = 1
	}
	var total time.Duration
	for i := 0; i < reps; i++ {
		d, err := fn()
		if err != nil {
			return 0, err
		}
		total += d
	}
	return total / time.Duration(reps), nil
}

// Figure6 regenerates the point-to-point RTT comparison (Optimal,
// Hoplite, OpenMPI, Ray, Dask) for the paper's 1KB / 1MB / 1GB points.
func Figure6(sc Scale) ([]*Table, error) {
	sizes := []int64{1 << 10, 1 << 20, 1 << 30}
	t := &Table{
		Title:   fmt.Sprintf("Figure 6: point-to-point RTT (sizes scaled 1/%d)", sc.SizeDivisor),
		Columns: []string{"size(paper)", "Optimal", "Hoplite", "OpenMPI", "Ray", "Dask"},
	}
	he, err := NewHopliteEnv(sc, 2, 0)
	if err != nil {
		return nil, err
	}
	defer he.Close()
	me, err := NewMeshEnv(sc, 2)
	if err != nil {
		return nil, err
	}
	defer me.Close()
	for _, paper := range sizes {
		size := sc.Size(paper)
		row := []string{fmtSize(paper)}
		row = append(row, fmtDur(2*sc.Optimal(size), nil))
		d, err := sc.repeat(func() (time.Duration, error) { return he.P2P(size) })
		row = append(row, fmtDur(d, err))
		d, err = sc.repeat(func() (time.Duration, error) { return me.MPIP2P(size) })
		row = append(row, fmtDur(d, err))
		d, err = sc.repeat(func() (time.Duration, error) { return me.NaiveP2P(size, rayNaive(sc.Bandwidth)) })
		row = append(row, fmtDur(d, err))
		d, err = sc.repeat(func() (time.Duration, error) { return me.NaiveP2P(size, daskNaive(sc.Bandwidth)) })
		row = append(row, fmtDur(d, err))
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}, nil
}

// rayNaive and daskNaive bind the baseline overhead models to the scale's
// link bandwidth.
func rayNaive(bw float64) baseline.NaiveConfig  { return baseline.RayLike(bw) }
func daskNaive(bw float64) baseline.NaiveConfig { return baseline.DaskLike(bw) }

// DirectoryMicro regenerates the §5.1.1 directory micro-benchmark: the
// paper reports 167 µs per location write and 177 µs per location read.
func DirectoryMicro(sc Scale) ([]*Table, error) {
	he, err := NewHopliteEnv(sc, 4, 0)
	if err != nil {
		return nil, err
	}
	defer he.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	dir := he.C.Node(1).Directory()
	const iters = 200
	oids := make([]hoplite.ObjectID, iters)
	for i := range oids {
		oids[i] = hoplite.RandomObjectID()
	}
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		if err := dir.PutStarted(ctx, oids[i], 1024); err != nil {
			return nil, err
		}
	}
	write := time.Since(t0) / iters
	t0 = time.Now()
	for i := 0; i < iters; i++ {
		if _, err := dir.Lookup(ctx, oids[i], false); err != nil {
			return nil, err
		}
	}
	read := time.Since(t0) / iters
	t := &Table{
		Title:   "§5.1.1: object directory service latency (paper: write 167µs, read 177µs)",
		Columns: []string{"op", "latency"},
		Rows: [][]string{
			{"write location", fmtDur(write, nil)},
			{"read location", fmtDur(read, nil)},
		},
	}
	return []*Table{t}, nil
}

// figure7Systems enumerates the per-primitive system columns of Figure 7
// (and Figure 14, which is the same grid at small sizes).
func figure7Systems(prim string) []string {
	switch prim {
	case "broadcast":
		return []string{"Hoplite", "OpenMPI", "Ray", "Dask", "Gloo"}
	case "gather", "reduce":
		return []string{"Hoplite", "OpenMPI", "Ray", "Dask"}
	case "allreduce":
		return []string{"Hoplite", "OpenMPI", "Ray", "Dask", "Gloo(ring-chunked)", "Gloo(halving-doubling)"}
	}
	return nil
}

// FigureGrid regenerates the Figure 7 / Figure 14 grid for the given
// paper sizes and node counts.
func FigureGrid(sc Scale, title string, sizes []int64, nodes []int) ([]*Table, error) {
	prims := []string{"broadcast", "gather", "reduce", "allreduce"}
	var tables []*Table
	for _, paper := range sizes {
		size := sc.Size(paper)
		envs := map[int]*HopliteEnv{}
		meshes := map[int]*MeshEnv{}
		for _, n := range nodes {
			he, err := NewHopliteEnv(sc, n, 0)
			if err != nil {
				return nil, err
			}
			me, err := NewMeshEnv(sc, n)
			if err != nil {
				he.Close()
				return nil, err
			}
			envs[n], meshes[n] = he, me
		}
		for _, prim := range prims {
			t := &Table{
				Title:   fmt.Sprintf("%s: %s %s (scaled to %d bytes)", title, prim, fmtSize(paper), size),
				Columns: append([]string{"nodes"}, figure7Systems(prim)...),
			}
			for _, n := range nodes {
				he, me := envs[n], meshes[n]
				row := []string{fmt.Sprint(n)}
				for _, cell := range gridCells(prim, sc, he, me, size) {
					d, err := sc.repeat(cell)
					row = append(row, fmtDur(d, err))
				}
				t.Rows = append(t.Rows, row)
			}
			tables = append(tables, t)
		}
		for _, n := range nodes {
			envs[n].Close()
			meshes[n].Close()
		}
	}
	return tables, nil
}

func gridCells(prim string, sc Scale, he *HopliteEnv, me *MeshEnv, size int64) []func() (time.Duration, error) {
	ray := NaiveCollective(prim, rayNaive)
	dask := NaiveCollective(prim, daskNaive)
	switch prim {
	case "broadcast":
		return []func() (time.Duration, error){
			func() (time.Duration, error) { return he.Broadcast(size, nil) },
			func() (time.Duration, error) { return MPIBroadcast(me, size, nil) },
			func() (time.Duration, error) { return ray(me, size, nil) },
			func() (time.Duration, error) { return dask(me, size, nil) },
			func() (time.Duration, error) { return GlooBroadcast(me, size, nil) },
		}
	case "gather":
		return []func() (time.Duration, error){
			func() (time.Duration, error) { return he.Gather(size) },
			func() (time.Duration, error) { return MPIGather(me, size, nil) },
			func() (time.Duration, error) { return ray(me, size, nil) },
			func() (time.Duration, error) { return dask(me, size, nil) },
		}
	case "reduce":
		return []func() (time.Duration, error){
			func() (time.Duration, error) { return he.Reduce(size, nil) },
			func() (time.Duration, error) { return MPIReduce(me, size, nil) },
			func() (time.Duration, error) { return ray(me, size, nil) },
			func() (time.Duration, error) { return dask(me, size, nil) },
		}
	case "allreduce":
		return []func() (time.Duration, error){
			func() (time.Duration, error) { return he.AllReduce(size, nil) },
			func() (time.Duration, error) { return MPIAllReduce(me, size, nil) },
			func() (time.Duration, error) { return ray(me, size, nil) },
			func() (time.Duration, error) { return dask(me, size, nil) },
			func() (time.Duration, error) { return GlooRingChunked(me, size, nil) },
			func() (time.Duration, error) { return GlooHalvingDoubling(me, size, nil) },
		}
	}
	return nil
}

// Figure7 regenerates the medium/large-object collective grid.
func Figure7(sc Scale, nodes []int) ([]*Table, error) {
	return FigureGrid(sc, "Figure 7", []int64{1 << 20, 32 << 20, 1 << 30}, nodes)
}

// Figure14 regenerates Appendix A: the same grid at 1 KB and 32 KB, where
// Hoplite's small-object fast path applies.
func Figure14(sc Scale, nodes []int) ([]*Table, error) {
	return FigureGrid(sc, "Figure 14 (Appendix A)", []int64{1 << 10, 32 << 10}, nodes)
}

// Figure8 regenerates the asynchrony experiment: 16-node collectives on a
// paper-1GB object with participants arriving at fixed intervals.
func Figure8(sc Scale, n int, intervals []time.Duration) ([]*Table, error) {
	size := sc.Size(1 << 30)
	he, err := NewHopliteEnv(sc, n, 0)
	if err != nil {
		return nil, err
	}
	defer he.Close()
	me, err := NewMeshEnv(sc, n)
	if err != nil {
		return nil, err
	}
	defer me.Close()

	// Arrival intervals must scale with the *transfer time*, not the raw
	// size divisor, so the interval-to-transfer ratio matches the paper's
	// (0.1–0.3 s against a ~0.86 s 1 GB transfer at 10 Gbps).
	paperTransfer := float64(1<<30) / 1.25e9
	ratio := sc.Optimal(size).Seconds() / paperTransfer
	mk := func(title string, cols []string, cells func(iv time.Duration) []func() (time.Duration, error)) (*Table, error) {
		t := &Table{
			Title:   fmt.Sprintf("Figure 8: %s, paper-1GB, %d nodes (time scale ×%.4f)", title, n, ratio),
			Columns: append([]string{"interval(paper)"}, cols...),
		}
		for _, iv := range intervals {
			scaled := time.Duration(float64(iv) * ratio)
			row := []string{fmt.Sprintf("%.1fs", iv.Seconds())}
			for _, cell := range cells(scaled) {
				d, err := sc.repeat(cell)
				row = append(row, fmtDur(d, err))
			}
			t.Rows = append(t.Rows, row)
		}
		return t, nil
	}

	bt, err := mk("broadcast", []string{"Hoplite", "OpenMPI"}, func(iv time.Duration) []func() (time.Duration, error) {
		arr := Staggered(n, iv)
		return []func() (time.Duration, error){
			func() (time.Duration, error) { return he.Broadcast(size, arr) },
			func() (time.Duration, error) { return MPIBroadcast(me, size, arr) },
		}
	})
	if err != nil {
		return nil, err
	}
	rt, err := mk("reduce", []string{"Hoplite", "OpenMPI"}, func(iv time.Duration) []func() (time.Duration, error) {
		arr := Staggered(n, iv)
		return []func() (time.Duration, error){
			func() (time.Duration, error) { return he.Reduce(size, arr) },
			func() (time.Duration, error) { return MPIReduce(me, size, arr) },
		}
	})
	if err != nil {
		return nil, err
	}
	at, err := mk("allreduce", []string{"Hoplite", "OpenMPI", "Gloo(ring-chunked)"}, func(iv time.Duration) []func() (time.Duration, error) {
		arr := Staggered(n, iv)
		return []func() (time.Duration, error){
			func() (time.Duration, error) { return he.AllReduce(size, arr) },
			func() (time.Duration, error) { return MPIAllReduce(me, size, arr) },
			func() (time.Duration, error) { return GlooRingChunked(me, size, arr) },
		}
	})
	if err != nil {
		return nil, err
	}
	return []*Table{bt, rt, at}, nil
}

// Figure15 regenerates Appendix B: reduce latency for forced tree degrees
// d ∈ {1, 2, n} across object sizes and node counts.
func Figure15(sc Scale, sizes []int64, nodes []int) ([]*Table, error) {
	var tables []*Table
	for _, paper := range sizes {
		size := sc.Size(paper)
		t := &Table{
			Title:   fmt.Sprintf("Figure 15 (Appendix B): reduce latency vs tree degree, %s (scaled to %d bytes)", fmtSize(paper), size),
			Columns: []string{"nodes", "d=1", "d=2", "d=n"},
		}
		for _, n := range nodes {
			row := []string{fmt.Sprint(n)}
			for _, d := range []int{1, 2, n} {
				he, err := NewHopliteEnv(sc, n, d)
				if err != nil {
					return nil, err
				}
				dur, err := sc.repeat(func() (time.Duration, error) { return he.Reduce(size, nil) })
				he.Close()
				row = append(row, fmtDur(dur, err))
			}
			t.Rows = append(t.Rows, row)
		}
		tables = append(tables, t)
	}
	return tables, nil
}
