package bench

import (
	"context"
	"time"

	"hoplite"
)

// ControlPlaneMicro measures the per-RPC latency of the control-plane hot
// path on a live emulated cluster: MethodLookup (non-mutating location
// read) and MethodAcquire/MethodRelease (the sender-lease pair every
// remote Get executes before it touches the data plane). These are the
// RPCs the binary wire codec is built for; run with -benchmem via the
// top-level BenchmarkCtrlPlaneMicro to see the per-op allocation cost.
func ControlPlaneMicro(sc Scale) ([]*Table, error) {
	he, err := NewHopliteEnv(sc, 4, 0)
	if err != nil {
		return nil, err
	}
	defer he.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	const iters = 200
	// Register iters objects from node 1 so Lookup and Acquire hit
	// populated directory records with a complete location.
	dir1, dir2 := he.C.Node(1).Directory(), he.C.Node(2).Directory()
	oids := make([]hoplite.ObjectID, iters)
	for i := range oids {
		oids[i] = hoplite.RandomObjectID()
		if err := dir1.PutStarted(ctx, oids[i], 1<<20); err != nil {
			return nil, err
		}
		if err := dir1.PutComplete(ctx, oids[i]); err != nil {
			return nil, err
		}
	}

	t0 := time.Now()
	for _, oid := range oids {
		if _, err := dir2.Lookup(ctx, oid, false); err != nil {
			return nil, err
		}
	}
	lookup := time.Since(t0) / iters

	t0 = time.Now()
	for _, oid := range oids {
		lease, err := dir2.AcquireSender(ctx, oid, false)
		if err != nil {
			return nil, err
		}
		if err := dir2.ReleaseSender(ctx, oid, lease.Sender, false); err != nil {
			return nil, err
		}
	}
	acquire := time.Since(t0) / iters

	t := &Table{
		Title:   "control plane: directory RPC round-trip latency (binary wire codec)",
		Columns: []string{"rpc", "latency"},
		Rows: [][]string{
			{"Lookup", fmtDur(lookup, nil)},
			{"Acquire+Release", fmtDur(acquire, nil)},
		},
	}
	return []*Table{t}, nil
}
