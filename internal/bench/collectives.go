package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"hoplite"
	"hoplite/internal/baseline"
	"hoplite/internal/netem"
	"hoplite/internal/types"
)

var sumF32 = types.ReduceOp{Kind: types.Sum, DType: types.F32}

// HopliteEnv is a reusable emulated Hoplite cluster for measurements.
type HopliteEnv struct {
	sc Scale
	C  *hoplite.Cluster
}

// NewHopliteEnv boots an n-node emulated cluster at the given scale.
// degree forces the reduce tree degree (0 = automatic; used by Fig 15).
func NewHopliteEnv(sc Scale, n, degree int) (*HopliteEnv, error) {
	link := sc.Link()
	c, err := hoplite.StartLocalCluster(n, hoplite.Options{
		Emulate:      &link,
		SmallObject:  sc.SmallObject(),
		ReduceDegree: degree,
		// Scale the pipelining block with the object sizes: the paper's
		// 4 MB block assumes ≥32 MB objects; scaled-down objects need a
		// proportionally finer block or chain pipelining degenerates to
		// store-and-forward.
		PipelineBlock: sc.PipelineBlock(),
	})
	if err != nil {
		return nil, err
	}
	return &HopliteEnv{sc: sc, C: c}, nil
}

// Close shuts the cluster down.
func (e *HopliteEnv) Close() { e.C.Close() }

func benchData(size int64) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = byte(i * 31)
	}
	return b
}

func ctxTO() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), 5*time.Minute)
}

// P2P measures round-trip time: node 0 sends an object to node 1, which
// replies with an equally sized object (Figure 6).
func (e *HopliteEnv) P2P(size int64) (time.Duration, error) {
	ctx, cancel := ctxTO()
	defer cancel()
	data := benchData(size)
	x, y := hoplite.RandomObjectID(), hoplite.RandomObjectID()
	t0 := time.Now()
	if err := e.C.Node(0).Put(ctx, x, data); err != nil {
		return 0, err
	}
	got, err := e.C.Node(1).GetImmutable(ctx, x)
	if err != nil {
		return 0, err
	}
	if err := e.C.Node(1).Put(ctx, y, got); err != nil {
		return 0, err
	}
	if _, err := e.C.Node(0).GetImmutable(ctx, y); err != nil {
		return 0, err
	}
	d := time.Since(t0)
	e.C.Node(0).Delete(ctx, x)
	e.C.Node(0).Delete(ctx, y)
	return d, nil
}

// Broadcast measures one Put on node 0 followed by a Get on every other
// node; arrive staggers the receivers (Figure 7 top row, Figure 8a).
func (e *HopliteEnv) Broadcast(size int64, arrive []time.Duration) (time.Duration, error) {
	ctx, cancel := ctxTO()
	defer cancel()
	data := benchData(size)
	oid := hoplite.RandomObjectID()
	if err := e.C.Node(0).Put(ctx, oid, data); err != nil {
		return 0, err
	}
	n := e.C.Size()
	var wg sync.WaitGroup
	errc := make(chan error, n)
	t0 := time.Now()
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if arrive != nil && arrive[i] > 0 {
				time.Sleep(arrive[i])
			}
			_, err := e.C.Node(i).GetImmutable(ctx, oid)
			errc <- err
		}(i)
	}
	wg.Wait()
	d := time.Since(t0)
	close(errc)
	for err := range errc {
		if err != nil {
			return 0, err
		}
	}
	e.C.Node(0).Delete(ctx, oid)
	return d, nil
}

// Gather measures node 0 fetching one object from every node (Figure 7).
func (e *HopliteEnv) Gather(size int64) (time.Duration, error) {
	ctx, cancel := ctxTO()
	defer cancel()
	data := benchData(size)
	n := e.C.Size()
	oids := make([]hoplite.ObjectID, n)
	for i := 0; i < n; i++ {
		oids[i] = hoplite.RandomObjectID()
		if err := e.C.Node(i).Put(ctx, oids[i], data); err != nil {
			return 0, err
		}
	}
	var wg sync.WaitGroup
	errc := make(chan error, n)
	t0 := time.Now()
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := e.C.Node(0).GetImmutable(ctx, oids[i])
			errc <- err
		}(i)
	}
	wg.Wait()
	d := time.Since(t0)
	close(errc)
	for err := range errc {
		if err != nil {
			return 0, err
		}
	}
	for i := 0; i < n; i++ {
		e.C.Node(0).Delete(ctx, oids[i])
	}
	return d, nil
}

// Reduce measures a Reduce over one object per node, coordinated and
// fetched by node 0. arrive staggers the Puts (Figure 8b): latency runs
// from the Reduce call, issued at time zero.
func (e *HopliteEnv) Reduce(size int64, arrive []time.Duration) (time.Duration, error) {
	d, _, err := e.reduce(size, arrive, false)
	return d, err
}

// AllReduce measures Reduce followed by every node fetching the result
// (§3.4.3); latency runs to the last node holding the result.
func (e *HopliteEnv) AllReduce(size int64, arrive []time.Duration) (time.Duration, error) {
	d, _, err := e.reduce(size, arrive, true)
	return d, err
}

func (e *HopliteEnv) reduce(size int64, arrive []time.Duration, bcast bool) (time.Duration, hoplite.ObjectID, error) {
	ctx, cancel := ctxTO()
	defer cancel()
	data := benchData(size)
	n := e.C.Size()
	oids := make([]hoplite.ObjectID, n)
	for i := range oids {
		oids[i] = hoplite.RandomObjectID()
	}
	var wg sync.WaitGroup
	errc := make(chan error, 2*n)
	t0 := time.Now()
	for i := 0; i < n; i++ {
		if arrive == nil || arrive[i] <= 0 {
			if err := e.C.Node(i).Put(ctx, oids[i], data); err != nil {
				return 0, hoplite.ObjectID{}, err
			}
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			time.Sleep(arrive[i])
			errc <- e.C.Node(i).Put(ctx, oids[i], data)
		}(i)
	}
	target := hoplite.RandomObjectID()
	if _, err := e.C.Node(0).Reduce(ctx, target, oids, n, sumF32); err != nil {
		return 0, target, err
	}
	if bcast {
		var bwg sync.WaitGroup
		for i := 0; i < n; i++ {
			bwg.Add(1)
			go func(i int) {
				defer bwg.Done()
				errc <- e.C.Node(i).WaitLocal(ctx, target)
			}(i)
		}
		bwg.Wait()
	} else {
		if err := e.C.Node(0).WaitLocal(ctx, target); err != nil {
			return 0, target, err
		}
	}
	d := time.Since(t0)
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			return 0, target, err
		}
	}
	e.C.Node(0).Delete(ctx, target)
	for i := 0; i < n; i++ {
		e.C.Node(0).Delete(ctx, oids[i])
	}
	return d, target, nil
}

// MeshEnv is a reusable emulated rank mesh for the MPI/Gloo/Ray/Dask
// baselines.
type MeshEnv struct {
	sc  Scale
	fab *netem.Emulated
	M   *baseline.Mesh
}

// NewMeshEnv builds an n-rank emulated mesh at the given scale.
func NewMeshEnv(sc Scale, n int) (*MeshEnv, error) {
	fab := netem.NewEmulated(sc.Link())
	m, err := baseline.NewMesh(fab, n, "rank")
	if err != nil {
		fab.Close()
		return nil, err
	}
	return &MeshEnv{sc: sc, fab: fab, M: m}, nil
}

// Close tears the mesh down.
func (e *MeshEnv) Close() {
	e.M.Close()
	e.fab.Close()
}

// Run executes fn on every rank concurrently (staggered by arrive) and
// returns the time until the last rank finishes.
func (e *MeshEnv) Run(arrive []time.Duration, fn func(r *baseline.Rank) error) (time.Duration, error) {
	n := e.M.Size()
	var wg sync.WaitGroup
	errc := make(chan error, n)
	t0 := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if arrive != nil && arrive[i] > 0 {
				time.Sleep(arrive[i])
			}
			errc <- fn(e.M.Rank(i))
		}(i)
	}
	wg.Wait()
	d := time.Since(t0)
	close(errc)
	for err := range errc {
		if err != nil {
			return 0, err
		}
	}
	return d, nil
}

// MPIP2P measures a ping-pong round trip between ranks 0 and 1.
func (e *MeshEnv) MPIP2P(size int64) (time.Duration, error) {
	data := benchData(size)
	echo := make([]byte, size)
	return e.Run(nil, func(r *baseline.Rank) error {
		switch r.ID() {
		case 0:
			if err := r.Send(1, data); err != nil {
				return err
			}
			return r.Recv(1, echo)
		case 1:
			buf := make([]byte, size)
			if err := r.Recv(0, buf); err != nil {
				return err
			}
			return r.Send(0, buf)
		default:
			return nil
		}
	})
}

// NaiveP2P measures the Ray/Dask-style ping-pong with copy overheads.
func (e *MeshEnv) NaiveP2P(size int64, cfg baseline.NaiveConfig) (time.Duration, error) {
	data := benchData(size)
	return e.Run(nil, func(r *baseline.Rank) error {
		x := baseline.NewNaive(r, cfg)
		buf := make([]byte, size)
		switch r.ID() {
		case 0:
			if err := x.P2P(1, 1, data, true); err != nil {
				return err
			}
			return x.P2P(1, 1, buf, false)
		case 1:
			if err := x.P2P(0, 0, buf, false); err != nil {
				return err
			}
			return x.P2P(0, 0, buf, true)
		default:
			return nil
		}
	})
}

// Collective names a mesh collective for the figure runners.
type Collective func(e *MeshEnv, size int64, arrive []time.Duration) (time.Duration, error)

// MPIBroadcast runs the OpenMPI-style broadcast on every rank.
func MPIBroadcast(e *MeshEnv, size int64, arrive []time.Duration) (time.Duration, error) {
	data := benchData(size)
	return e.Run(arrive, func(r *baseline.Rank) error {
		buf := make([]byte, size)
		if r.ID() == 0 {
			copy(buf, data)
		}
		return r.Bcast(0, buf)
	})
}

// MPIGather runs the direct gather to rank 0.
func MPIGather(e *MeshEnv, size int64, arrive []time.Duration) (time.Duration, error) {
	data := benchData(size)
	n := e.M.Size()
	return e.Run(arrive, func(r *baseline.Rank) error {
		var parts [][]byte
		if r.ID() == 0 {
			parts = make([][]byte, n)
			for i := range parts {
				parts[i] = make([]byte, size)
			}
		}
		return r.Gather(0, data, parts)
	})
}

// MPIReduce runs the OpenMPI-style reduce to rank 0.
func MPIReduce(e *MeshEnv, size int64, arrive []time.Duration) (time.Duration, error) {
	return e.Run(arrive, func(r *baseline.Rank) error {
		return r.Reduce(0, sumF32, benchData(size))
	})
}

// MPIAllReduce runs recursive halving-doubling allreduce.
func MPIAllReduce(e *MeshEnv, size int64, arrive []time.Duration) (time.Duration, error) {
	return e.Run(arrive, func(r *baseline.Rank) error {
		return r.AllReduceHD(sumF32, benchData(size))
	})
}

// GlooBroadcast runs Gloo's unoptimized broadcast.
func GlooBroadcast(e *MeshEnv, size int64, arrive []time.Duration) (time.Duration, error) {
	data := benchData(size)
	return e.Run(arrive, func(r *baseline.Rank) error {
		buf := make([]byte, size)
		if r.ID() == 0 {
			copy(buf, data)
		}
		return r.GlooBcast(0, buf)
	})
}

// GlooRingChunked runs Gloo's ring-chunked allreduce.
func GlooRingChunked(e *MeshEnv, size int64, arrive []time.Duration) (time.Duration, error) {
	return e.Run(arrive, func(r *baseline.Rank) error {
		return r.AllReduceRing(sumF32, benchData(size), true)
	})
}

// GlooHalvingDoubling runs Gloo's halving-doubling allreduce.
func GlooHalvingDoubling(e *MeshEnv, size int64, arrive []time.Duration) (time.Duration, error) {
	return e.Run(arrive, func(r *baseline.Rank) error {
		return r.AllReduceHD(sumF32, benchData(size))
	})
}

// NaiveCollective adapts the Ray/Dask-style store operations.
func NaiveCollective(op string, cfg func(float64) baseline.NaiveConfig) Collective {
	return func(e *MeshEnv, size int64, arrive []time.Duration) (time.Duration, error) {
		c := cfg(e.sc.Bandwidth)
		n := e.M.Size()
		return e.Run(arrive, func(r *baseline.Rank) error {
			x := baseline.NewNaive(r, c)
			data := benchData(size)
			switch op {
			case "bcast":
				return x.Bcast(0, data)
			case "gather":
				var parts [][]byte
				if r.ID() == 0 {
					parts = make([][]byte, n)
					for i := range parts {
						parts[i] = make([]byte, size)
					}
				}
				return x.Gather(0, data, parts)
			case "reduce":
				return x.Reduce(0, sumF32, data)
			case "allreduce":
				return x.AllReduce(0, sumF32, data)
			default:
				return fmt.Errorf("bench: unknown op %q", op)
			}
		})
	}
}

// Staggered builds the Figure 8 arrival vector: participant i arrives at
// i × interval.
func Staggered(n int, interval time.Duration) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = time.Duration(i) * interval
	}
	return out
}
