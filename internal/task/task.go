// Package task is a miniature task-based distributed framework in the
// mold of Ray (§2.1): dynamic tasks returning object futures, a scheduler
// with per-node worker pools, and lineage-based fault tolerance — when a
// node dies, lost tasks re-execute and lost objects are reconstructed on
// demand, while surviving tasks keep running. It exists so the paper's
// application workloads (asynchronous SGD, RL loops, model serving) and
// failure/rejoin experiments run against Hoplite the way they run against
// Ray.
package task

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"hoplite/internal/core"
	"hoplite/internal/types"
)

// Func is a task body. It reads arguments and writes returns through the
// Invocation, which wraps the Hoplite node the task was scheduled on.
type Func func(inv *Invocation) error

// Spec records a task invocation for lineage-based reconstruction.
type Spec struct {
	Name    string
	Args    []types.ObjectID
	Outputs []types.ObjectID
	// Node pins execution to a node index; -1 lets the scheduler choose.
	Node int
}

type task struct {
	spec    *Spec
	retries int
}

// AnyNode schedules the task on any live node.
const AnyNode = -1

// Cluster couples a set of Hoplite nodes with task workers.
type Cluster struct {
	nodes   []*core.Node
	workers int

	mu      sync.Mutex
	funcs   map[string]Func
	queue   []*task   // tasks schedulable anywhere
	pinned  [][]*task // per-node queues
	lineage map[types.ObjectID]*Spec
	running map[*task]int
	alive   []bool
	closed  bool
	kill    []context.CancelFunc // per-node task context cancel

	// wake is a broadcast: closed and replaced (under mu) on every
	// enqueue, waking every idle worker to re-check its queues. A lossy
	// single-token channel is not enough here — a worker on node i can
	// consume the token for a task pinned to node j and leave j's workers
	// parked — and a poll fallback would add up to its period in
	// scheduling latency.
	wake chan struct{}
	wg   sync.WaitGroup

	// GetTimeout is how long a Get waits before suspecting the object was
	// lost and re-executing its producing task.
	GetTimeout time.Duration
}

// NewCluster starts workersPerNode workers on each node.
func NewCluster(nodes []*core.Node, workersPerNode int) *Cluster {
	if workersPerNode <= 0 {
		workersPerNode = 2
	}
	c := &Cluster{
		nodes:      nodes,
		workers:    workersPerNode,
		funcs:      make(map[string]Func),
		pinned:     make([][]*task, len(nodes)),
		lineage:    make(map[types.ObjectID]*Spec),
		running:    make(map[*task]int),
		alive:      make([]bool, len(nodes)),
		kill:       make([]context.CancelFunc, len(nodes)),
		wake:       make(chan struct{}),
		GetTimeout: 2 * time.Second,
	}
	for i := range nodes {
		c.alive[i] = true
		ctx, cancel := context.WithCancel(context.Background())
		c.kill[i] = cancel
		for w := 0; w < workersPerNode; w++ {
			c.wg.Add(1)
			go c.worker(ctx, i)
		}
	}
	return c
}

// Register binds a function name to a task body. Names are the unit of
// lineage: re-execution invokes the same name with the same arguments.
func (c *Cluster) Register(name string, fn Func) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.funcs[name] = fn
}

// Node returns the i-th underlying Hoplite node.
func (c *Cluster) Node(i int) *core.Node { return c.nodes[i] }

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.nodes) }

func (c *Cluster) signal() {
	c.mu.Lock()
	close(c.wake)
	c.wake = make(chan struct{})
	c.mu.Unlock()
}

// Submit schedules a task and returns futures for its outputs. node pins
// placement (AnyNode for any). The futures can be passed to other tasks or
// fetched with Get before the task has even started (§2.1).
func (c *Cluster) Submit(name string, args []types.ObjectID, numReturns int, node int) []types.ObjectID {
	outs := make([]types.ObjectID, numReturns)
	for i := range outs {
		outs[i] = types.RandomObjectID()
	}
	spec := &Spec{Name: name, Args: args, Outputs: outs, Node: node}
	c.enqueue(&task{spec: spec})
	return outs
}

func (c *Cluster) enqueue(t *task) {
	c.mu.Lock()
	for _, out := range t.spec.Outputs {
		c.lineage[out] = t.spec
	}
	if t.spec.Node >= 0 && t.spec.Node < len(c.nodes) {
		c.pinned[t.spec.Node] = append(c.pinned[t.spec.Node], t)
	} else {
		c.queue = append(c.queue, t)
	}
	c.mu.Unlock()
	c.signal()
}

// dequeue pops a runnable task for node i (nil if none) and reports
// whether more work remains, so the popping worker can pass the wakeup
// token along instead of letting it die. ctx is the worker's lifetime: a
// worker whose node was killed must not grab tasks submitted after a
// revive spawned replacement workers.
func (c *Cluster) dequeue(ctx context.Context, i int) (*task, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || !c.alive[i] || ctx.Err() != nil {
		return nil, false
	}
	var t *task
	switch {
	case len(c.pinned[i]) > 0:
		t = c.pinned[i][0]
		c.pinned[i] = c.pinned[i][1:]
	case len(c.queue) > 0:
		t = c.queue[0]
		c.queue = c.queue[1:]
	default:
		return nil, false
	}
	c.running[t] = i
	return t, len(c.queue) > 0 || len(c.pinned[i]) > 0
}

func (c *Cluster) worker(ctx context.Context, i int) {
	defer c.wg.Done()
	for {
		if ctx.Err() != nil {
			return
		}
		// Snapshot the broadcast channel before checking the queues: any
		// enqueue after this point closes exactly the channel held here,
		// so a wakeup cannot slip between an empty dequeue and the wait.
		c.mu.Lock()
		closed := c.closed || !c.alive[i]
		ch := c.wake
		c.mu.Unlock()
		if closed {
			return
		}
		t, more := c.dequeue(ctx, i)
		if t == nil {
			select {
			case <-ch:
			case <-ctx.Done():
				return
			}
			continue
		}
		if more {
			c.signal() // more work remains: wake the siblings
		}
		c.run(ctx, i, t)
	}
}

func (c *Cluster) run(ctx context.Context, i int, t *task) {
	defer func() {
		c.mu.Lock()
		delete(c.running, t)
		c.mu.Unlock()
	}()
	c.mu.Lock()
	fn := c.funcs[t.spec.Name]
	c.mu.Unlock()
	if fn == nil {
		return
	}
	inv := &Invocation{Ctx: ctx, cluster: c, spec: t.spec, node: c.nodes[i], NodeIndex: i}
	err := fn(inv)
	if err != nil && ctx.Err() == nil && t.retries < 3 {
		t.retries++
		c.enqueue(t)
	}
	if ctx.Err() != nil {
		// The node died mid-task: re-execute elsewhere (the task system's
		// reconstruction, §2.1). Pinned tasks move to any-node.
		t.spec.Node = AnyNode
		c.enqueue(t)
	}
}

// Get fetches an object via the driver (node 0 by default), re-executing
// the producing task if the object appears to be lost (lineage
// reconstruction, §2.1). It recurses through lost arguments.
func (c *Cluster) Get(ctx context.Context, oid types.ObjectID) ([]byte, error) {
	return c.GetVia(ctx, 0, oid)
}

// GetVia fetches an object through a specific node's store.
func (c *Cluster) GetVia(ctx context.Context, node int, oid types.ObjectID) ([]byte, error) {
	return getReconstruct(ctx, c, oid, func(gctx context.Context) ([]byte, error) {
		return c.nodes[node].Get(gctx, oid)
	})
}

// GetRefVia fetches an object through a specific node's store as a
// pinned, zero-copy ObjectRef, reconstructing the producing task if the
// object appears lost. The caller must Release the ref.
func (c *Cluster) GetRefVia(ctx context.Context, node int, oid types.ObjectID) (*core.ObjectRef, error) {
	return getReconstruct(ctx, c, oid, func(gctx context.Context) (*core.ObjectRef, error) {
		return c.nodes[node].GetRef(gctx, oid)
	})
}

// getReconstruct is the lineage-reconstruction fetch loop shared by the
// copying and zero-copy Get paths: a fetch that times out or observes a
// deletion re-submits the producing task and tries again.
func getReconstruct[T any](ctx context.Context, c *Cluster, oid types.ObjectID, fetch func(context.Context) (T, error)) (T, error) {
	var zero T
	for {
		gctx, cancel := context.WithTimeout(ctx, c.GetTimeout)
		v, err := fetch(gctx)
		cancel()
		if err == nil {
			return v, nil
		}
		if ctx.Err() != nil {
			return zero, ctx.Err()
		}
		if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, types.ErrDeleted) && !errors.Is(err, types.ErrAborted) {
			return zero, err
		}
		if !c.reconstruct(oid) {
			return zero, fmt.Errorf("task: object %v lost with no lineage: %w", oid, types.ErrNotFound)
		}
	}
}

// reconstruct re-submits the task whose output is oid, unless it is
// already queued or running. It reports whether lineage exists.
func (c *Cluster) reconstruct(oid types.ObjectID) bool {
	c.mu.Lock()
	spec, ok := c.lineage[oid]
	if !ok {
		c.mu.Unlock()
		return false
	}
	pending := false
	for t := range c.running {
		if t.spec == spec {
			pending = true
		}
	}
	check := func(q []*task) {
		for _, t := range q {
			if t.spec == spec {
				pending = true
			}
		}
	}
	check(c.queue)
	for _, q := range c.pinned {
		check(q)
	}
	c.mu.Unlock()
	if !pending {
		spec.Node = AnyNode // the original node may be gone
		c.enqueue(&task{spec: spec})
	}
	return true
}

// Wait blocks until num of the given futures are available (like
// ray.wait), returning the ready and not-ready sets.
func (c *Cluster) Wait(ctx context.Context, oids []types.ObjectID, num int) (ready, rest []types.ObjectID, err error) {
	if num > len(oids) {
		num = len(oids)
	}
	dir := c.nodes[0].Directory()
	pending := append([]types.ObjectID(nil), oids...)
	for len(ready) < num {
		progressed := false
		next := pending[:0]
		for _, oid := range pending {
			rec, lerr := dir.Lookup(ctx, oid, false)
			available := lerr == nil && (rec.Inline != nil || hasComplete(rec.Locs))
			if available {
				ready = append(ready, oid)
				progressed = true
			} else {
				next = append(next, oid)
			}
		}
		pending = next
		if len(ready) >= num {
			break
		}
		if !progressed {
			select {
			case <-time.After(2 * time.Millisecond):
			case <-ctx.Done():
				return ready, pending, ctx.Err()
			}
		}
	}
	return ready, pending, nil
}

func hasComplete(locs []types.Location) bool {
	for _, l := range locs {
		if l.Progress.HasAll() {
			return true
		}
	}
	return false
}

// KillNode simulates a node failure for the task layer: its workers stop,
// running tasks are re-executed elsewhere. Call alongside the fabric-level
// kill so in-flight transfers break too.
func (c *Cluster) KillNode(i int) {
	c.mu.Lock()
	if !c.alive[i] {
		c.mu.Unlock()
		return
	}
	c.alive[i] = false
	cancel := c.kill[i]
	// Re-home this node's pinned tasks.
	orphans := c.pinned[i]
	c.pinned[i] = nil
	c.mu.Unlock()
	cancel()
	for _, t := range orphans {
		t.spec.Node = AnyNode
		c.enqueue(t)
	}
	c.signal()
}

// ReplaceNode swaps the Hoplite node backing index i (after a restart via
// the cluster facade) before reviving its workers.
func (c *Cluster) ReplaceNode(i int, n *core.Node) {
	c.mu.Lock()
	c.nodes[i] = n
	c.mu.Unlock()
}

// ReviveNode restarts workers on a previously killed node (the "task
// rejoins after reconstruction" scenario, §5.5).
func (c *Cluster) ReviveNode(i int) {
	c.mu.Lock()
	if c.alive[i] || c.closed {
		c.mu.Unlock()
		return
	}
	c.alive[i] = true
	ctx, cancel := context.WithCancel(context.Background())
	c.kill[i] = cancel
	workers := c.workers
	c.mu.Unlock()
	for w := 0; w < workers; w++ {
		c.wg.Add(1)
		go c.worker(ctx, i)
	}
	c.signal()
}

// Close stops all workers. It does not close the underlying nodes.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	cancels := append([]context.CancelFunc(nil), c.kill...)
	c.mu.Unlock()
	for _, cancel := range cancels {
		if cancel != nil {
			cancel()
		}
	}
	c.signal()
	c.wg.Wait()
}

// Invocation is the execution context handed to a task body.
type Invocation struct {
	// Ctx is canceled when the hosting node is killed.
	Ctx context.Context
	// NodeIndex is the index of the node the task runs on.
	NodeIndex int

	cluster *Cluster
	spec    *Spec
	node    *core.Node
}

// Node returns the Hoplite node the task runs on, for direct Put/Get/
// Reduce calls.
func (inv *Invocation) Node() *core.Node { return inv.node }

// NumArgs returns the number of argument futures.
func (inv *Invocation) NumArgs() int { return len(inv.spec.Args) }

// ArgID returns the i-th argument future.
func (inv *Invocation) ArgID(i int) types.ObjectID { return inv.spec.Args[i] }

// Arg fetches a private copy of the i-th argument, reconstructing it if
// it was lost. Tasks that only read an argument should prefer ArgRef.
func (inv *Invocation) Arg(i int) ([]byte, error) {
	return inv.cluster.GetVia(inv.Ctx, inv.NodeIndex, inv.spec.Args[i])
}

// ArgRef fetches the i-th argument as a pinned, zero-copy read-only view,
// reconstructing it if it was lost. The task body must Release the ref
// before returning; the bytes must not be modified.
func (inv *Invocation) ArgRef(i int) (*core.ObjectRef, error) {
	return inv.cluster.GetRefVia(inv.Ctx, inv.NodeIndex, inv.spec.Args[i])
}

// OutputID returns the i-th return future.
func (inv *Invocation) OutputID(i int) types.ObjectID { return inv.spec.Outputs[i] }

// SetReturn stores the i-th return value.
func (inv *Invocation) SetReturn(i int, data []byte) error {
	err := inv.node.Put(inv.Ctx, inv.spec.Outputs[i], data)
	if errors.Is(err, types.ErrExists) {
		return nil // idempotent re-execution
	}
	return err
}
