package task

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"hoplite"
	"hoplite/internal/types"
)

func startTaskCluster(t *testing.T, n int) (*hoplite.Cluster, *Cluster) {
	t.Helper()
	hc, err := hoplite.StartLocalCluster(n, hoplite.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tc := NewCluster(hc.Nodes(), 2)
	t.Cleanup(func() { tc.Close(); hc.Close() })
	return hc, tc
}

func ctxT(t *testing.T) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestSubmitAndGet(t *testing.T) {
	_, tc := startTaskCluster(t, 3)
	tc.Register("hello", func(inv *Invocation) error {
		return inv.SetReturn(0, []byte("world"))
	})
	out := tc.Submit("hello", nil, 1, AnyNode)
	got, err := tc.Get(ctxT(t), out[0])
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "world" {
		t.Fatalf("got %q", got)
	}
}

func TestArgumentPassing(t *testing.T) {
	_, tc := startTaskCluster(t, 3)
	tc.Register("produce", func(inv *Invocation) error {
		return inv.SetReturn(0, []byte{21})
	})
	tc.Register("double", func(inv *Invocation) error {
		a, err := inv.Arg(0)
		if err != nil {
			return err
		}
		return inv.SetReturn(0, []byte{a[0] * 2})
	})
	// Pass the future before the producer runs (§2.1).
	x := tc.Submit("produce", nil, 1, AnyNode)
	y := tc.Submit("double", x, 1, AnyNode)
	got, err := tc.Get(ctxT(t), y[0])
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 42 {
		t.Fatalf("got %d", got[0])
	}
}

func TestPinnedPlacement(t *testing.T) {
	_, tc := startTaskCluster(t, 4)
	tc.Register("where", func(inv *Invocation) error {
		return inv.SetReturn(0, []byte{byte(inv.NodeIndex)})
	})
	for node := 0; node < 4; node++ {
		out := tc.Submit("where", nil, 1, node)
		got, err := tc.Get(ctxT(t), out[0])
		if err != nil {
			t.Fatal(err)
		}
		if int(got[0]) != node {
			t.Fatalf("ran on %d, pinned to %d", got[0], node)
		}
	}
}

func TestWait(t *testing.T) {
	_, tc := startTaskCluster(t, 3)
	tc.Register("slowfast", func(inv *Invocation) error {
		a, err := inv.Arg(0)
		if err != nil {
			return err
		}
		d := time.Duration(binary.BigEndian.Uint32(a)) * time.Millisecond
		time.Sleep(d)
		return inv.SetReturn(0, a)
	})
	ctx := ctxT(t)
	mk := func(ms uint32) types.ObjectID {
		arg := make([]byte, 4)
		binary.BigEndian.PutUint32(arg, ms)
		in := types.RandomObjectID()
		if err := tc.Node(0).Put(ctx, in, arg); err != nil {
			t.Fatal(err)
		}
		return tc.Submit("slowfast", []types.ObjectID{in}, 1, AnyNode)[0]
	}
	fast := mk(1)
	slow := mk(400)
	ready, rest, err := tc.Wait(ctx, []types.ObjectID{slow, fast}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ready) != 1 || ready[0] != fast || len(rest) != 1 {
		t.Fatalf("ready=%v rest=%v", ready, rest)
	}
}

func TestTaskRetryOnError(t *testing.T) {
	_, tc := startTaskCluster(t, 2)
	var attempts atomic.Int32
	tc.Register("flaky", func(inv *Invocation) error {
		if attempts.Add(1) < 3 {
			return fmt.Errorf("transient")
		}
		return inv.SetReturn(0, []byte("ok"))
	})
	out := tc.Submit("flaky", nil, 1, AnyNode)
	got, err := tc.Get(ctxT(t), out[0])
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "ok" || attempts.Load() != 3 {
		t.Fatalf("got %q after %d attempts", got, attempts.Load())
	}
}

func TestLineageReconstructionAfterDelete(t *testing.T) {
	_, tc := startTaskCluster(t, 3)
	tc.GetTimeout = 300 * time.Millisecond
	var runs atomic.Int32
	tc.Register("produce", func(inv *Invocation) error {
		runs.Add(1)
		return inv.SetReturn(0, []byte("data"))
	})
	ctx := ctxT(t)
	out := tc.Submit("produce", nil, 1, AnyNode)
	if _, err := tc.Get(ctx, out[0]); err != nil {
		t.Fatal(err)
	}
	// Lose the object: the next Get must re-execute the task.
	if err := tc.Node(0).Delete(ctx, out[0]); err != nil {
		t.Fatal(err)
	}
	got, err := tc.Get(ctx, out[0])
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "data" || runs.Load() < 2 {
		t.Fatalf("got %q after %d runs", got, runs.Load())
	}
}

func TestGetWithoutLineageFails(t *testing.T) {
	_, tc := startTaskCluster(t, 2)
	tc.GetTimeout = 200 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := tc.Get(ctx, types.RandomObjectID())
	if err == nil {
		t.Fatal("Get of unknown object succeeded")
	}
}

func TestKillNodeReexecutesElsewhere(t *testing.T) {
	hc, err := hoplite.StartLocalCluster(4, hoplite.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()
	tc := NewCluster(hc.Nodes(), 1)
	defer tc.Close()
	started := make(chan int, 8)
	release := make(chan struct{})
	tc.Register("slow", func(inv *Invocation) error {
		started <- inv.NodeIndex
		select {
		case <-release:
		case <-inv.Ctx.Done():
			return inv.Ctx.Err()
		}
		return inv.SetReturn(0, []byte{byte(inv.NodeIndex)})
	})
	out := tc.Submit("slow", nil, 1, 2)
	first := <-started
	if first != 2 {
		t.Fatalf("started on %d", first)
	}
	tc.KillNode(2) // worker dies mid-task; re-executed elsewhere
	second := <-started
	if second == 2 {
		t.Fatal("re-executed on the dead node")
	}
	close(release)
	got, err := tc.Get(ctxT(t), out[0])
	if err != nil {
		t.Fatal(err)
	}
	if int(got[0]) == 2 {
		t.Fatal("result produced by dead node")
	}
}

func TestReviveNodeRunsTasksAgain(t *testing.T) {
	_, tc := startTaskCluster(t, 3)
	tc.Register("where", func(inv *Invocation) error {
		return inv.SetReturn(0, []byte{byte(inv.NodeIndex)})
	})
	tc.KillNode(1)
	tc.ReviveNode(1)
	out := tc.Submit("where", nil, 1, 1)
	got, err := tc.Get(ctxT(t), out[0])
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Fatalf("ran on %d", got[0])
	}
}

func TestManyParallelTasks(t *testing.T) {
	_, tc := startTaskCluster(t, 4)
	tc.Register("id", func(inv *Invocation) error {
		a, err := inv.Arg(0)
		if err != nil {
			return err
		}
		return inv.SetReturn(0, a)
	})
	ctx := ctxT(t)
	const n = 40
	outs := make([]types.ObjectID, n)
	for i := 0; i < n; i++ {
		in := types.RandomObjectID()
		if err := tc.Node(i%4).Put(ctx, in, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		outs[i] = tc.Submit("id", []types.ObjectID{in}, 1, AnyNode)[0]
	}
	for i, out := range outs {
		got, err := tc.Get(ctx, out)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i) {
			t.Fatalf("task %d returned %d", i, got[0])
		}
	}
}

func TestArgRefZeroCopy(t *testing.T) {
	_, tc := startTaskCluster(t, 3)
	payload := make([]byte, 128<<10) // above SmallObject: a real store ref
	for i := range payload {
		payload[i] = byte(i)
	}
	tc.Register("produce-big", func(inv *Invocation) error {
		return inv.SetReturn(0, payload)
	})
	tc.Register("sum", func(inv *Invocation) error {
		ref, err := inv.ArgRef(0)
		if err != nil {
			return err
		}
		defer ref.Release()
		data := ref.Bytes()
		if int64(len(data)) != ref.Size() || len(data) != len(payload) {
			return fmt.Errorf("ref size %d, want %d", len(data), len(payload))
		}
		var sum byte
		for _, b := range data {
			sum += b
		}
		return inv.SetReturn(0, []byte{sum})
	})
	x := tc.Submit("produce-big", nil, 1, 0)
	y := tc.Submit("sum", x, 1, 2)
	got, err := tc.Get(ctxT(t), y[0])
	if err != nil {
		t.Fatal(err)
	}
	var want byte
	for _, b := range payload {
		want += b
	}
	if got[0] != want {
		t.Fatalf("sum %d, want %d", got[0], want)
	}
}

func TestArgRefInlineSmallObject(t *testing.T) {
	_, tc := startTaskCluster(t, 2)
	tc.Register("produce", func(inv *Invocation) error {
		return inv.SetReturn(0, []byte{7})
	})
	tc.Register("relay", func(inv *Invocation) error {
		ref, err := inv.ArgRef(0)
		if err != nil {
			return err
		}
		out := []byte{ref.Bytes()[0] + 1}
		ref.Release()
		return inv.SetReturn(0, out)
	})
	x := tc.Submit("produce", nil, 1, AnyNode)
	y := tc.Submit("relay", x, 1, AnyNode)
	got, err := tc.Get(ctxT(t), y[0])
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 8 {
		t.Fatalf("got %d", got[0])
	}
}
