// Package buffer implements the progress-tracked object buffer that
// underpins Hoplite's fine-grained pipelining (§3.3 of the paper).
//
// A Buffer holds the payload of one immutable object as a chunk ledger: a
// fixed grid of chunks, each tracking how many contiguous bytes it holds.
// Several writers may fill disjoint ranges concurrently — the claim ledger
// (ClaimNext/ReleaseClaim) hands out exclusive runs of missing chunks, which
// is how a striped Get pulls one object from several complete copies at
// once. A contiguous watermark is derived from the grid, so readers keep the
// single-writer streaming semantics: any number of readers stream
// concurrently, blocking until the prefix they need is available. This lets
// an object that is still being produced — by a local Put copy, a network
// transfer, or a streaming reduce — simultaneously feed downstream
// transfers, which is how a partial copy acts as a broadcast intermediary
// or a reduce input.
package buffer

import (
	"context"
	"fmt"
	"io"
	"sync"

	"hoplite/internal/types"
)

// DefaultLedgerChunk is the default chunk-grid granularity. It matches the
// paper's 4 MB pipelining block (§5.1.1): claims, and therefore striped
// sub-range pulls, are handed out in units of this size.
const DefaultLedgerChunk = 4 << 20

// Buffer is a fixed-size object payload tracked chunk by chunk. The zero
// value is not usable; call New or NewChunked.
type Buffer struct {
	mu      sync.Mutex
	updated chan struct{} // closed and replaced on every state change
	data    []byte
	chunk   int64
	// fill[i] is the number of contiguous bytes written from chunk i's
	// start. A chunk is present when fill[i] == chunkLen(i). Every writer
	// streams sequentially from a position it owns, so per-chunk contiguous
	// fill describes both the classic single Append writer (whose range is
	// the whole object) and striped range writers (whose ranges start at
	// missing-byte boundaries).
	fill []int64
	// claimed[i] marks chunk i as handed to an exclusive writer via
	// ClaimNext. Full chunks stay claimed (harmless); failed writers return
	// their unwritten chunks with ReleaseClaim so the missing ranges — and
	// only those — can be re-fetched from another source.
	claimed []bool
	// wmChunk/watermark are derived: wmChunk is the first non-full chunk
	// and watermark the contiguous byte prefix present from offset 0.
	wmChunk   int
	watermark int64
	present   int64 // total bytes written, contiguous or not
	sealed    bool
	err       error
	// refs counts live reader pins (ObjectRef handles). The store skips
	// buffers with live refs during LRU eviction, so a pinned read-only
	// view is never invalidated under its reader.
	refs int
	// watchers are completion callbacks registered with OnDone, fired
	// exactly once when the buffer seals (nil) or fails (the error). They
	// let futures resolve without parking a goroutine per waiter.
	watchers []func(error)
	// releaseHook, set by the owning store, runs (outside the buffer
	// lock) every time the last reader pin drops: that is the moment a
	// buffer becomes evictable without the store's byte accounting
	// changing, so admission waiters need an explicit wakeup.
	releaseHook func()
}

// New returns an empty buffer for an object of the given size, using the
// default ledger chunk.
func New(size int64) *Buffer { return NewChunked(size, DefaultLedgerChunk) }

// NewChunked returns an empty buffer with an explicit chunk-grid
// granularity (tests and tuning; chunk <= 0 selects the default).
func NewChunked(size, chunk int64) *Buffer {
	if size < 0 {
		panic("buffer: negative size")
	}
	if chunk <= 0 {
		chunk = DefaultLedgerChunk
	}
	n := int((size + chunk - 1) / chunk)
	return &Buffer{
		updated: make(chan struct{}),
		data:    make([]byte, size),
		chunk:   chunk,
		fill:    make([]int64, n),
		claimed: make([]bool, n),
	}
}

// FromBytes returns a sealed buffer wrapping b without copying.
func FromBytes(b []byte) *Buffer {
	size := int64(len(b))
	chunk := int64(DefaultLedgerChunk)
	n := int((size + chunk - 1) / chunk)
	buf := &Buffer{
		updated:   make(chan struct{}),
		data:      b,
		chunk:     chunk,
		fill:      make([]int64, n),
		claimed:   make([]bool, n),
		wmChunk:   n,
		watermark: size,
		present:   size,
		sealed:    true,
	}
	for i := range buf.fill {
		buf.fill[i] = buf.chunkLen(i)
	}
	return buf
}

// chunkLen returns the byte length of chunk i (the last chunk may be
// short).
func (b *Buffer) chunkLen(i int) int64 {
	cl := int64(len(b.data)) - int64(i)*b.chunk
	if cl > b.chunk {
		cl = b.chunk
	}
	return cl
}

// Size returns the total object size.
func (b *Buffer) Size() int64 { return int64(len(b.data)) }

// ChunkSize returns the ledger chunk granularity.
func (b *Buffer) ChunkSize() int64 { return b.chunk }

// Watermark returns the number of contiguous bytes present from offset 0.
func (b *Buffer) Watermark() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.watermark
}

// Present returns the total number of bytes written so far, contiguous or
// not. Present == Size means every chunk is full even if the buffer has
// not been sealed yet.
func (b *Buffer) Present() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.present
}

// Complete reports whether the buffer has been sealed with all bytes
// present.
func (b *Buffer) Complete() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sealed && b.err == nil
}

// Failed returns the abort error, or nil.
func (b *Buffer) Failed() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

func (b *Buffer) signalLocked() {
	close(b.updated)
	b.updated = make(chan struct{})
}

// advanceLocked re-derives the contiguous watermark from the chunk grid.
// The cursor only moves forward, so the amortized cost over a buffer's
// lifetime is O(chunks).
func (b *Buffer) advanceLocked() {
	n := len(b.fill)
	for b.wmChunk < n && b.fill[b.wmChunk] == b.chunkLen(b.wmChunk) {
		b.wmChunk++
	}
	wm := int64(b.wmChunk) * b.chunk
	if b.wmChunk < n {
		wm += b.fill[b.wmChunk]
	} else if wm > int64(len(b.data)) {
		wm = int64(len(b.data))
	}
	b.watermark = wm
}

// writeLocked copies p at off and updates the ledger. Callers have
// validated bounds; each touched chunk's contiguous fill must be extended
// exactly (writer discipline, enforced by panic as a bug check).
func (b *Buffer) writeLocked(p []byte, off int64) {
	pos, rem := off, p
	for len(rem) > 0 {
		ci := int(pos / b.chunk)
		cs := int64(ci) * b.chunk
		if pos-cs != b.fill[ci] {
			panic("buffer: write does not extend chunk fill")
		}
		n := cs + b.chunkLen(ci) - pos
		if n > int64(len(rem)) {
			n = int64(len(rem))
		}
		copy(b.data[pos:], rem[:n])
		b.fill[ci] += n
		pos += n
		rem = rem[n:]
	}
	b.present += int64(len(p))
	b.advanceLocked()
	b.signalLocked()
}

// Append writes p at the current watermark. It returns types.ErrAborted if
// the buffer failed, and panics if the write would exceed the object size
// or the buffer is already sealed (writer bugs, not runtime conditions).
func (b *Buffer) Append(p []byte) error {
	if len(p) == 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.err != nil {
		return b.err
	}
	if b.sealed {
		panic("buffer: append to sealed buffer")
	}
	if b.watermark+int64(len(p)) > int64(len(b.data)) {
		panic("buffer: append past end of object")
	}
	b.writeLocked(p, b.watermark)
	return nil
}

// WriteAt writes p at off, for writers filling a claimed range. Writers
// stream sequentially within their range, so off must sit exactly at the
// fill position of its chunk and any further chunks covered by p must be
// empty; violations panic (writer bugs). Concurrent WriteAt calls on
// disjoint claimed ranges are safe. It returns the buffer's error if it
// has failed.
func (b *Buffer) WriteAt(p []byte, off int64) error {
	if len(p) == 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.err != nil {
		return b.err
	}
	if b.sealed {
		panic("buffer: write to sealed buffer")
	}
	if off < 0 || off+int64(len(p)) > int64(len(b.data)) {
		panic("buffer: write past end of object")
	}
	b.writeLocked(p, off)
	return nil
}

// ClaimNext claims the next run of missing, unclaimed bytes for an
// exclusive writer, spanning whole chunks up to roughly max bytes. The
// returned offset starts at the first missing byte (resuming mid-chunk
// when a previous writer left a partial fill). ok is false when there is
// nothing left to claim: every byte is present or claimed by another
// writer, or the buffer is sealed or failed.
func (b *Buffer) ClaimNext(max int64) (off, length int64, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.err != nil || b.sealed {
		return 0, 0, false
	}
	if max <= 0 {
		max = b.chunk
	}
	n := len(b.fill)
	start := -1
	for i := b.wmChunk; i < n; i++ {
		if !b.claimed[i] && b.fill[i] < b.chunkLen(i) {
			start = i
			break
		}
	}
	if start < 0 {
		return 0, 0, false
	}
	off = int64(start)*b.chunk + b.fill[start]
	var span int64
	end := start
	for end < n && !b.claimed[end] && span < max {
		if end > start && b.fill[end] != 0 {
			// A later partially-filled or full chunk starts its own run:
			// a sequential writer could not extend its fill from here.
			break
		}
		b.claimed[end] = true
		span += b.chunkLen(end)
		end++
	}
	length = int64(end) * b.chunk
	if length > int64(len(b.data)) {
		length = int64(len(b.data))
	}
	length -= off
	return off, length, true
}

// ReleaseClaim returns the unwritten chunks of a claimed range
// [off, off+length) to the ledger after a failed transfer, so other
// writers can re-claim exactly the missing bytes. Chunks of the range that
// were fully written stay present.
func (b *Buffer) ReleaseClaim(off, length int64) {
	if length <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	first := int(off / b.chunk)
	last := int((off + length - 1) / b.chunk)
	if last >= len(b.fill) {
		last = len(b.fill) - 1
	}
	for i := first; i <= last; i++ {
		if b.fill[i] < b.chunkLen(i) {
			b.claimed[i] = false
		}
	}
	b.signalLocked()
}

// Seal marks the buffer complete. All bytes must have been written.
func (b *Buffer) Seal() {
	b.mu.Lock()
	if b.err != nil {
		b.mu.Unlock()
		return
	}
	if b.watermark != int64(len(b.data)) {
		// Unlock before panicking: a caller that recovers (tests of
		// writer misuse do) must not be left holding a dead buffer whose
		// every later method call deadlocks.
		b.mu.Unlock()
		panic("buffer: seal before all bytes written")
	}
	b.sealed = true
	b.signalLocked()
	ws := b.watchers
	b.watchers = nil
	b.mu.Unlock()
	for _, fn := range ws {
		fn(nil)
	}
}

// Fail aborts the buffer, waking all waiters with err. It is a no-op on a
// sealed or already-failed buffer. Fail with a nil error uses
// types.ErrAborted.
func (b *Buffer) Fail(err error) {
	if err == nil {
		err = types.ErrAborted
	}
	b.mu.Lock()
	if b.sealed || b.err != nil {
		b.mu.Unlock()
		return
	}
	b.err = err
	b.signalLocked()
	ws := b.watchers
	b.watchers = nil
	b.mu.Unlock()
	for _, fn := range ws {
		fn(err)
	}
}

// Ref takes one reader pin on the buffer. While Refs is non-zero the
// store will not evict the buffer, so a zero-copy view handed to a reader
// stays backed by live, unrecycled memory. Every Ref must be balanced by
// exactly one Unref.
func (b *Buffer) Ref() {
	b.mu.Lock()
	b.refs++
	b.mu.Unlock()
}

// Unref drops one reader pin. Dropping the last pin fires the store's
// release hook (outside the buffer lock), waking admission waiters for
// whom this buffer just became evictable.
func (b *Buffer) Unref() {
	b.mu.Lock()
	if b.refs <= 0 {
		b.mu.Unlock()
		panic("buffer: unref without ref")
	}
	b.refs--
	var hook func()
	if b.refs == 0 {
		hook = b.releaseHook
	}
	b.mu.Unlock()
	if hook != nil {
		hook()
	}
}

// OnRelease installs the hook run each time the last reader pin drops.
// Unlike OnDone watchers it is persistent; the store sets it once at
// insert.
func (b *Buffer) OnRelease(fn func()) {
	b.mu.Lock()
	b.releaseHook = fn
	b.mu.Unlock()
}

// Refs returns the number of live reader pins.
func (b *Buffer) Refs() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.refs
}

// OnDone registers fn to run exactly once when the buffer seals (nil) or
// fails (the error). If the buffer is already done, fn runs synchronously
// before OnDone returns; otherwise it runs in whichever goroutine seals or
// fails the buffer, so fn must be cheap and must not block. This is the
// event-driven alternative to parking a goroutine in WaitComplete.
func (b *Buffer) OnDone(fn func(error)) {
	b.mu.Lock()
	switch {
	case b.err != nil:
		err := b.err
		b.mu.Unlock()
		fn(err)
	case b.sealed:
		b.mu.Unlock()
		fn(nil)
	default:
		b.watchers = append(b.watchers, fn)
		b.mu.Unlock()
	}
}

// Reset rewinds a failed buffer so a new writer can retry from offset,
// keeping the first offset bytes that were already received. It is used
// when a transfer restarts under a new object generation after a failure.
// All claims are dropped, as is any non-contiguous striped progress beyond
// offset. Reset panics if offset exceeds the current watermark.
func (b *Buffer) Reset(offset int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if offset > b.watermark || offset < 0 {
		panic("buffer: reset past watermark")
	}
	for i := range b.fill {
		cs := int64(i) * b.chunk
		switch {
		case cs+b.chunkLen(i) <= offset:
			b.fill[i] = b.chunkLen(i)
		case cs < offset:
			b.fill[i] = offset - cs
		default:
			b.fill[i] = 0
		}
		b.claimed[i] = false
	}
	b.wmChunk = 0
	b.advanceLocked()
	b.present = offset
	b.sealed = false
	b.err = nil
	b.signalLocked()
}

// WaitAt blocks until at least off+1 contiguous bytes are available, the
// buffer is sealed, the buffer fails, or ctx is done. It returns the
// current watermark and whether the buffer is complete.
func (b *Buffer) WaitAt(ctx context.Context, off int64) (watermark int64, complete bool, err error) {
	for {
		b.mu.Lock()
		if b.err != nil {
			err := b.err
			b.mu.Unlock()
			return 0, false, err
		}
		if b.watermark > off || b.sealed {
			w, s := b.watermark, b.sealed
			b.mu.Unlock()
			return w, s, nil
		}
		ch := b.updated
		b.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return 0, false, ctx.Err()
		}
	}
}

// WaitComplete blocks until the buffer is sealed, fails, or ctx is done.
func (b *Buffer) WaitComplete(ctx context.Context) error {
	for {
		b.mu.Lock()
		if b.err != nil {
			err := b.err
			b.mu.Unlock()
			return err
		}
		if b.sealed {
			b.mu.Unlock()
			return nil
		}
		ch := b.updated
		b.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// ReadAt copies available bytes at off into p, blocking until at least one
// byte is available there. It returns io.EOF when off is at or past the end
// of a sealed buffer.
func (b *Buffer) ReadAt(ctx context.Context, p []byte, off int64) (int, error) {
	if off >= b.Size() {
		if err := b.WaitComplete(ctx); err != nil {
			return 0, err
		}
		return 0, io.EOF
	}
	w, complete, err := b.WaitAt(ctx, off)
	if err != nil {
		return 0, err
	}
	if w <= off {
		if complete {
			return 0, io.EOF
		}
		return 0, nil
	}
	n := copy(p, b.data[off:w])
	return n, nil
}

// DumpTo writes the buffer's entire payload to w in one call. It is the
// demotion path to the spill tier: the buffer must be complete (sealed
// with every byte present) — dumping an incomplete or failed buffer
// returns an error instead of persisting a short object. Buffers are
// immutable once sealed, so no lock is held across the write.
func (b *Buffer) DumpTo(w io.Writer) error {
	if !b.Complete() {
		if err := b.Failed(); err != nil {
			return err
		}
		return fmt.Errorf("buffer: dump of incomplete buffer (%d of %d bytes)", b.Watermark(), b.Size())
	}
	_, err := w.Write(b.data)
	return err
}

// Bytes returns the underlying payload. Callers must treat the result as
// read-only; bytes beyond the watermark are not yet meaningful. This is the
// zero-copy path behind "immutable Get" (§3.3).
func (b *Buffer) Bytes() []byte { return b.data }

// CopyTo streams the buffer's contents into w in chunks of at most
// chunkSize as they become available, returning when the full object has
// been written, the buffer fails, or ctx is done.
func (b *Buffer) CopyTo(ctx context.Context, w io.Writer, chunkSize int) error {
	if chunkSize <= 0 {
		chunkSize = 256 << 10
	}
	var off int64
	for off < b.Size() {
		wm, _, err := b.WaitAt(ctx, off)
		if err != nil {
			return err
		}
		for off < wm {
			end := off + int64(chunkSize)
			if end > wm {
				end = wm
			}
			if _, err := w.Write(b.data[off:end]); err != nil {
				return err
			}
			off = end
		}
	}
	return nil
}

// Reader returns an io.Reader that streams the buffer from the given
// offset, blocking for bytes that have not been produced yet.
func (b *Buffer) Reader(ctx context.Context, off int64) io.Reader {
	return &reader{ctx: ctx, b: b, off: off}
}

type reader struct {
	ctx context.Context
	b   *Buffer
	off int64
}

func (r *reader) Read(p []byte) (int, error) {
	for {
		n, err := r.b.ReadAt(r.ctx, p, r.off)
		if err != nil {
			return n, err
		}
		if n > 0 {
			r.off += int64(n)
			return n, nil
		}
	}
}
