// Package buffer implements the progress-tracked object buffer that
// underpins Hoplite's fine-grained pipelining (§3.3 of the paper).
//
// A Buffer holds the payload of one immutable object. Exactly one writer
// appends bytes sequentially, advancing a watermark; any number of readers
// stream concurrently, blocking until the bytes they need are available.
// This lets an object that is still being produced — by a local Put copy, a
// network transfer, or a streaming reduce — simultaneously feed downstream
// transfers, which is how a partial copy acts as a broadcast intermediary
// or a reduce input.
package buffer

import (
	"context"
	"io"
	"sync"

	"hoplite/internal/types"
)

// Buffer is a fixed-size object payload with a monotonically advancing
// watermark. The zero value is not usable; call New.
type Buffer struct {
	mu        sync.Mutex
	updated   chan struct{} // closed and replaced on every state change
	data      []byte
	watermark int64
	sealed    bool
	err       error
}

// New returns an empty buffer for an object of the given size.
func New(size int64) *Buffer {
	if size < 0 {
		panic("buffer: negative size")
	}
	return &Buffer{
		updated: make(chan struct{}),
		data:    make([]byte, size),
	}
}

// FromBytes returns a sealed buffer wrapping b without copying.
func FromBytes(b []byte) *Buffer {
	buf := &Buffer{
		updated:   make(chan struct{}),
		data:      b,
		watermark: int64(len(b)),
		sealed:    true,
	}
	return buf
}

// Size returns the total object size.
func (b *Buffer) Size() int64 { return int64(len(b.data)) }

// Watermark returns the number of contiguous bytes written so far.
func (b *Buffer) Watermark() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.watermark
}

// Complete reports whether the buffer has been sealed with all bytes
// present.
func (b *Buffer) Complete() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sealed && b.err == nil
}

// Failed returns the abort error, or nil.
func (b *Buffer) Failed() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

func (b *Buffer) signalLocked() {
	close(b.updated)
	b.updated = make(chan struct{})
}

// Append writes p at the current watermark. It returns types.ErrAborted if
// the buffer failed, and panics if the write would exceed the object size
// or the buffer is already sealed (writer bugs, not runtime conditions).
func (b *Buffer) Append(p []byte) error {
	if len(p) == 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.err != nil {
		return b.err
	}
	if b.sealed {
		panic("buffer: append to sealed buffer")
	}
	if b.watermark+int64(len(p)) > int64(len(b.data)) {
		panic("buffer: append past end of object")
	}
	copy(b.data[b.watermark:], p)
	b.watermark += int64(len(p))
	b.signalLocked()
	return nil
}

// Seal marks the buffer complete. All bytes must have been appended.
func (b *Buffer) Seal() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.err != nil {
		return
	}
	if b.watermark != int64(len(b.data)) {
		panic("buffer: seal before all bytes written")
	}
	b.sealed = true
	b.signalLocked()
}

// Fail aborts the buffer, waking all waiters with err. It is a no-op on a
// sealed or already-failed buffer. Fail with a nil error uses
// types.ErrAborted.
func (b *Buffer) Fail(err error) {
	if err == nil {
		err = types.ErrAborted
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.sealed || b.err != nil {
		return
	}
	b.err = err
	b.signalLocked()
}

// Reset rewinds a failed buffer so a new writer can retry from offset,
// keeping the first offset bytes that were already received. It is used
// when a transfer resumes from a different sender after a failure. Reset
// panics if offset exceeds the current watermark.
func (b *Buffer) Reset(offset int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if offset > b.watermark || offset < 0 {
		panic("buffer: reset past watermark")
	}
	b.watermark = offset
	b.sealed = false
	b.err = nil
	b.signalLocked()
}

// WaitAt blocks until at least off+1 bytes are available, the buffer is
// sealed, the buffer fails, or ctx is done. It returns the current
// watermark and whether the buffer is complete.
func (b *Buffer) WaitAt(ctx context.Context, off int64) (watermark int64, complete bool, err error) {
	for {
		b.mu.Lock()
		if b.err != nil {
			err := b.err
			b.mu.Unlock()
			return 0, false, err
		}
		if b.watermark > off || b.sealed {
			w, s := b.watermark, b.sealed
			b.mu.Unlock()
			return w, s, nil
		}
		ch := b.updated
		b.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return 0, false, ctx.Err()
		}
	}
}

// WaitComplete blocks until the buffer is sealed, fails, or ctx is done.
func (b *Buffer) WaitComplete(ctx context.Context) error {
	for {
		b.mu.Lock()
		if b.err != nil {
			err := b.err
			b.mu.Unlock()
			return err
		}
		if b.sealed {
			b.mu.Unlock()
			return nil
		}
		ch := b.updated
		b.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// ReadAt copies available bytes at off into p, blocking until at least one
// byte is available there. It returns io.EOF when off is at or past the end
// of a sealed buffer.
func (b *Buffer) ReadAt(ctx context.Context, p []byte, off int64) (int, error) {
	if off >= b.Size() {
		if err := b.WaitComplete(ctx); err != nil {
			return 0, err
		}
		return 0, io.EOF
	}
	w, complete, err := b.WaitAt(ctx, off)
	if err != nil {
		return 0, err
	}
	if w <= off {
		if complete {
			return 0, io.EOF
		}
		return 0, nil
	}
	n := copy(p, b.data[off:w])
	return n, nil
}

// Bytes returns the underlying payload. Callers must treat the result as
// read-only; bytes beyond the watermark are not yet meaningful. This is the
// zero-copy path behind "immutable Get" (§3.3).
func (b *Buffer) Bytes() []byte { return b.data }

// CopyTo streams the buffer's contents into w in chunks of at most
// chunkSize as they become available, returning when the full object has
// been written, the buffer fails, or ctx is done.
func (b *Buffer) CopyTo(ctx context.Context, w io.Writer, chunkSize int) error {
	if chunkSize <= 0 {
		chunkSize = 256 << 10
	}
	var off int64
	for off < b.Size() {
		wm, _, err := b.WaitAt(ctx, off)
		if err != nil {
			return err
		}
		for off < wm {
			end := off + int64(chunkSize)
			if end > wm {
				end = wm
			}
			if _, err := w.Write(b.data[off:end]); err != nil {
				return err
			}
			off = end
		}
	}
	return nil
}

// Reader returns an io.Reader that streams the buffer from the given
// offset, blocking for bytes that have not been produced yet.
func (b *Buffer) Reader(ctx context.Context, off int64) io.Reader {
	return &reader{ctx: ctx, b: b, off: off}
}

type reader struct {
	ctx context.Context
	b   *Buffer
	off int64
}

func (r *reader) Read(p []byte) (int, error) {
	for {
		n, err := r.b.ReadAt(r.ctx, p, r.off)
		if err != nil {
			return n, err
		}
		if n > 0 {
			r.off += int64(n)
			return n, nil
		}
	}
}
