package buffer

import (
	"bytes"
	"context"
	"errors"
	"io"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"hoplite/internal/types"
)

func ctxT(t *testing.T) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestAppendSealBytes(t *testing.T) {
	b := New(10)
	if err := b.Append([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if b.Watermark() != 5 {
		t.Fatalf("watermark %d", b.Watermark())
	}
	if b.Complete() {
		t.Fatal("complete before seal")
	}
	if err := b.Append([]byte("world")); err != nil {
		t.Fatal(err)
	}
	b.Seal()
	if !b.Complete() {
		t.Fatal("not complete after seal")
	}
	if string(b.Bytes()) != "helloworld" {
		t.Fatalf("bytes %q", b.Bytes())
	}
}

func TestFromBytes(t *testing.T) {
	b := FromBytes([]byte("abc"))
	if !b.Complete() || b.Size() != 3 || b.Watermark() != 3 {
		t.Fatal("FromBytes not sealed")
	}
}

func TestAppendPastEndPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	b := New(2)
	b.Append([]byte("abc"))
}

func TestSealShortPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	b := New(4)
	b.Append([]byte("ab"))
	b.Seal()
}

func TestFailWakesWaiters(t *testing.T) {
	b := New(100)
	done := make(chan error, 1)
	go func() {
		_, _, err := b.WaitAt(ctxT(t), 50)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	b.Fail(types.ErrAborted)
	if err := <-done; !errors.Is(err, types.ErrAborted) {
		t.Fatalf("got %v", err)
	}
	if b.Failed() == nil {
		t.Fatal("Failed() nil")
	}
}

func TestFailNilUsesErrAborted(t *testing.T) {
	b := New(1)
	b.Fail(nil)
	if !errors.Is(b.Failed(), types.ErrAborted) {
		t.Fatal("nil fail not mapped")
	}
}

func TestFailAfterSealIgnored(t *testing.T) {
	b := New(2)
	b.Append([]byte("ab"))
	b.Seal()
	b.Fail(types.ErrAborted)
	if b.Failed() != nil {
		t.Fatal("sealed buffer failed")
	}
}

func TestWaitAtReturnsImmediatelyWhenAvailable(t *testing.T) {
	b := New(4)
	b.Append([]byte("ab"))
	wm, complete, err := b.WaitAt(ctxT(t), 0)
	if err != nil || wm != 2 || complete {
		t.Fatalf("wm=%d complete=%v err=%v", wm, complete, err)
	}
}

func TestWaitAtContextCancel(t *testing.T) {
	b := New(4)
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(10 * time.Millisecond); cancel() }()
	_, _, err := b.WaitAt(ctx, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v", err)
	}
}

func TestWaitComplete(t *testing.T) {
	b := New(3)
	done := make(chan error, 1)
	go func() { done <- b.WaitComplete(ctxT(t)) }()
	b.Append([]byte("ab"))
	select {
	case <-done:
		t.Fatal("complete before seal")
	case <-time.After(20 * time.Millisecond):
	}
	b.Append([]byte("c"))
	b.Seal()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestReset(t *testing.T) {
	b := New(6)
	b.Append([]byte("abcd"))
	b.Fail(types.ErrAborted)
	b.Reset(2)
	if b.Watermark() != 2 || b.Failed() != nil {
		t.Fatal("reset did not rewind")
	}
	if err := b.Append([]byte("XYZD")); err != nil {
		t.Fatal(err)
	}
	b.Seal()
	if string(b.Bytes()) != "abXYZD" {
		t.Fatalf("bytes %q", b.Bytes())
	}
}

func TestResetPastWatermarkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	b := New(4)
	b.Append([]byte("a"))
	b.Reset(3)
}

func TestReadAtStreaming(t *testing.T) {
	b := New(8)
	ctx := ctxT(t)
	go func() {
		for _, c := range []string{"ab", "cd", "ef", "gh"} {
			time.Sleep(2 * time.Millisecond)
			b.Append([]byte(c))
		}
		b.Seal()
	}()
	var got []byte
	var off int64
	buf := make([]byte, 3)
	for {
		n, err := b.ReadAt(ctx, buf, off)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, buf[:n]...)
		off += int64(n)
	}
	if string(got) != "abcdefgh" {
		t.Fatalf("got %q", got)
	}
}

func TestReader(t *testing.T) {
	b := New(5)
	go func() {
		b.Append([]byte("hel"))
		time.Sleep(5 * time.Millisecond)
		b.Append([]byte("lo"))
		b.Seal()
	}()
	out, err := io.ReadAll(b.Reader(ctxT(t), 0))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "hello" {
		t.Fatalf("got %q", out)
	}
}

func TestReaderFromOffset(t *testing.T) {
	b := FromBytes([]byte("abcdef"))
	out, err := io.ReadAll(b.Reader(ctxT(t), 4))
	if err != nil || string(out) != "ef" {
		t.Fatalf("got %q err %v", out, err)
	}
}

func TestCopyTo(t *testing.T) {
	data := make([]byte, 100000)
	for i := range data {
		data[i] = byte(i)
	}
	b := New(int64(len(data)))
	go func() {
		for off := 0; off < len(data); off += 7777 {
			end := off + 7777
			if end > len(data) {
				end = len(data)
			}
			b.Append(data[off:end])
		}
		b.Seal()
	}()
	var out bytes.Buffer
	if err := b.CopyTo(ctxT(t), &out, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatal("CopyTo mismatch")
	}
}

func TestZeroSizeBuffer(t *testing.T) {
	b := New(0)
	b.Seal()
	if !b.Complete() {
		t.Fatal("empty buffer not complete")
	}
	n, err := b.ReadAt(ctxT(t), make([]byte, 1), 0)
	if n != 0 || err != io.EOF {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

// Property: any partition of a payload into appends delivers exactly the
// payload to a concurrent streaming reader.
func TestConcurrentReaderProperty(t *testing.T) {
	fn := func(data []byte, cuts []uint8) bool {
		b := New(int64(len(data)))
		ctx := context.Background()
		done := make(chan []byte, 1)
		go func() {
			out, err := io.ReadAll(b.Reader(ctx, 0))
			if err != nil {
				out = nil
			}
			done <- out
		}()
		off := 0
		for _, c := range cuts {
			if off >= len(data) {
				break
			}
			end := off + int(c)%17 + 1
			if end > len(data) {
				end = len(data)
			}
			b.Append(data[off:end])
			off = end
		}
		if off < len(data) {
			b.Append(data[off:])
		}
		b.Seal()
		return bytes.Equal(<-done, data)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestManyConcurrentReaders(t *testing.T) {
	data := make([]byte, 64<<10)
	for i := range data {
		data[i] = byte(i * 13)
	}
	b := New(int64(len(data)))
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for r := 0; r < 16; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := io.ReadAll(b.Reader(context.Background(), 0))
			if err == nil && !bytes.Equal(out, data) {
				err = errors.New("mismatch")
			}
			errs <- err
		}()
	}
	for off := 0; off < len(data); off += 1000 {
		end := off + 1000
		if end > len(data) {
			end = len(data)
		}
		b.Append(data[off:end])
	}
	b.Seal()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func BenchmarkAppend64KB(b *testing.B) {
	chunk := make([]byte, 64<<10)
	b.SetBytes(int64(len(chunk)))
	for i := 0; i < b.N; i++ {
		buf := New(int64(len(chunk)))
		buf.Append(chunk)
		buf.Seal()
	}
}
