package buffer

import (
	"bytes"
	"context"
	"errors"
	"io"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"hoplite/internal/types"
)

func ctxT(t *testing.T) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestAppendSealBytes(t *testing.T) {
	b := New(10)
	if err := b.Append([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if b.Watermark() != 5 {
		t.Fatalf("watermark %d", b.Watermark())
	}
	if b.Complete() {
		t.Fatal("complete before seal")
	}
	if err := b.Append([]byte("world")); err != nil {
		t.Fatal(err)
	}
	b.Seal()
	if !b.Complete() {
		t.Fatal("not complete after seal")
	}
	if string(b.Bytes()) != "helloworld" {
		t.Fatalf("bytes %q", b.Bytes())
	}
}

func TestFromBytes(t *testing.T) {
	b := FromBytes([]byte("abc"))
	if !b.Complete() || b.Size() != 3 || b.Watermark() != 3 {
		t.Fatal("FromBytes not sealed")
	}
}

func TestAppendPastEndPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	b := New(2)
	b.Append([]byte("abc"))
}

func TestSealShortPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	b := New(4)
	b.Append([]byte("ab"))
	b.Seal()
}

func TestFailWakesWaiters(t *testing.T) {
	b := New(100)
	done := make(chan error, 1)
	go func() {
		_, _, err := b.WaitAt(ctxT(t), 50)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	b.Fail(types.ErrAborted)
	if err := <-done; !errors.Is(err, types.ErrAborted) {
		t.Fatalf("got %v", err)
	}
	if b.Failed() == nil {
		t.Fatal("Failed() nil")
	}
}

func TestFailNilUsesErrAborted(t *testing.T) {
	b := New(1)
	b.Fail(nil)
	if !errors.Is(b.Failed(), types.ErrAborted) {
		t.Fatal("nil fail not mapped")
	}
}

func TestFailAfterSealIgnored(t *testing.T) {
	b := New(2)
	b.Append([]byte("ab"))
	b.Seal()
	b.Fail(types.ErrAborted)
	if b.Failed() != nil {
		t.Fatal("sealed buffer failed")
	}
}

func TestWaitAtReturnsImmediatelyWhenAvailable(t *testing.T) {
	b := New(4)
	b.Append([]byte("ab"))
	wm, complete, err := b.WaitAt(ctxT(t), 0)
	if err != nil || wm != 2 || complete {
		t.Fatalf("wm=%d complete=%v err=%v", wm, complete, err)
	}
}

func TestWaitAtContextCancel(t *testing.T) {
	b := New(4)
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(10 * time.Millisecond); cancel() }()
	_, _, err := b.WaitAt(ctx, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v", err)
	}
}

func TestWaitComplete(t *testing.T) {
	b := New(3)
	done := make(chan error, 1)
	go func() { done <- b.WaitComplete(ctxT(t)) }()
	b.Append([]byte("ab"))
	select {
	case <-done:
		t.Fatal("complete before seal")
	case <-time.After(20 * time.Millisecond):
	}
	b.Append([]byte("c"))
	b.Seal()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestReset(t *testing.T) {
	b := New(6)
	b.Append([]byte("abcd"))
	b.Fail(types.ErrAborted)
	b.Reset(2)
	if b.Watermark() != 2 || b.Failed() != nil {
		t.Fatal("reset did not rewind")
	}
	if err := b.Append([]byte("XYZD")); err != nil {
		t.Fatal(err)
	}
	b.Seal()
	if string(b.Bytes()) != "abXYZD" {
		t.Fatalf("bytes %q", b.Bytes())
	}
}

func TestResetPastWatermarkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	b := New(4)
	b.Append([]byte("a"))
	b.Reset(3)
}

func TestReadAtStreaming(t *testing.T) {
	b := New(8)
	ctx := ctxT(t)
	go func() {
		for _, c := range []string{"ab", "cd", "ef", "gh"} {
			time.Sleep(2 * time.Millisecond)
			b.Append([]byte(c))
		}
		b.Seal()
	}()
	var got []byte
	var off int64
	buf := make([]byte, 3)
	for {
		n, err := b.ReadAt(ctx, buf, off)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, buf[:n]...)
		off += int64(n)
	}
	if string(got) != "abcdefgh" {
		t.Fatalf("got %q", got)
	}
}

func TestReader(t *testing.T) {
	b := New(5)
	go func() {
		b.Append([]byte("hel"))
		time.Sleep(5 * time.Millisecond)
		b.Append([]byte("lo"))
		b.Seal()
	}()
	out, err := io.ReadAll(b.Reader(ctxT(t), 0))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "hello" {
		t.Fatalf("got %q", out)
	}
}

func TestReaderFromOffset(t *testing.T) {
	b := FromBytes([]byte("abcdef"))
	out, err := io.ReadAll(b.Reader(ctxT(t), 4))
	if err != nil || string(out) != "ef" {
		t.Fatalf("got %q err %v", out, err)
	}
}

func TestCopyTo(t *testing.T) {
	data := make([]byte, 100000)
	for i := range data {
		data[i] = byte(i)
	}
	b := New(int64(len(data)))
	go func() {
		for off := 0; off < len(data); off += 7777 {
			end := off + 7777
			if end > len(data) {
				end = len(data)
			}
			b.Append(data[off:end])
		}
		b.Seal()
	}()
	var out bytes.Buffer
	if err := b.CopyTo(ctxT(t), &out, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatal("CopyTo mismatch")
	}
}

func TestZeroSizeBuffer(t *testing.T) {
	b := New(0)
	b.Seal()
	if !b.Complete() {
		t.Fatal("empty buffer not complete")
	}
	n, err := b.ReadAt(ctxT(t), make([]byte, 1), 0)
	if n != 0 || err != io.EOF {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

// Property: any partition of a payload into appends delivers exactly the
// payload to a concurrent streaming reader.
func TestConcurrentReaderProperty(t *testing.T) {
	fn := func(data []byte, cuts []uint8) bool {
		b := New(int64(len(data)))
		ctx := context.Background()
		done := make(chan []byte, 1)
		go func() {
			out, err := io.ReadAll(b.Reader(ctx, 0))
			if err != nil {
				out = nil
			}
			done <- out
		}()
		off := 0
		for _, c := range cuts {
			if off >= len(data) {
				break
			}
			end := off + int(c)%17 + 1
			if end > len(data) {
				end = len(data)
			}
			b.Append(data[off:end])
			off = end
		}
		if off < len(data) {
			b.Append(data[off:])
		}
		b.Seal()
		return bytes.Equal(<-done, data)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestManyConcurrentReaders(t *testing.T) {
	data := make([]byte, 64<<10)
	for i := range data {
		data[i] = byte(i * 13)
	}
	b := New(int64(len(data)))
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for r := 0; r < 16; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := io.ReadAll(b.Reader(context.Background(), 0))
			if err == nil && !bytes.Equal(out, data) {
				err = errors.New("mismatch")
			}
			errs <- err
		}()
	}
	for off := 0; off < len(data); off += 1000 {
		end := off + 1000
		if end > len(data) {
			end = len(data)
		}
		b.Append(data[off:end])
	}
	b.Seal()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// --- chunk-ledger tests ---

func TestWriteAtDerivedWatermark(t *testing.T) {
	b := NewChunked(10, 4) // chunks: [0,4) [4,8) [8,10)
	if err := b.WriteAt([]byte("wxyz"), 4); err != nil {
		t.Fatal(err)
	}
	if b.Watermark() != 0 {
		t.Fatalf("watermark %d, want 0 (hole at chunk 0)", b.Watermark())
	}
	if b.Present() != 4 {
		t.Fatalf("present %d, want 4", b.Present())
	}
	if err := b.WriteAt([]byte("abcd"), 0); err != nil {
		t.Fatal(err)
	}
	if b.Watermark() != 8 {
		t.Fatalf("watermark %d, want 8", b.Watermark())
	}
	if err := b.WriteAt([]byte("01"), 8); err != nil {
		t.Fatal(err)
	}
	b.Seal()
	if !b.Complete() || string(b.Bytes()) != "abcdwxyz01" {
		t.Fatalf("bytes %q complete=%v", b.Bytes(), b.Complete())
	}
}

func TestWriteAtSpansChunks(t *testing.T) {
	b := NewChunked(12, 4)
	if err := b.WriteAt([]byte("abcdefghijkl"), 0); err != nil {
		t.Fatal(err)
	}
	if b.Watermark() != 12 || b.Present() != 12 {
		t.Fatalf("watermark %d present %d", b.Watermark(), b.Present())
	}
}

func TestWriteAtNonContiguousPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	b := NewChunked(8, 4)
	b.WriteAt([]byte("x"), 2) // chunk 0 fill is 0, write at 2 skips bytes
}

func TestClaimNextWalksMissingRuns(t *testing.T) {
	b := NewChunked(10, 4)
	off, n, ok := b.ClaimNext(100)
	if !ok || off != 0 || n != 10 {
		t.Fatalf("claim (%d,%d,%v), want (0,10,true)", off, n, ok)
	}
	if _, _, ok := b.ClaimNext(100); ok {
		t.Fatal("second claim succeeded while everything is claimed")
	}
	// Fail mid-way: the writer wrote 5 bytes then releases the rest.
	if err := b.WriteAt([]byte("abcde"), 0); err != nil {
		t.Fatal(err)
	}
	b.ReleaseClaim(0, 10)
	// Chunk 0 is full (stays present); chunk 1 is partially filled: the
	// next claim resumes at the first missing byte, mid-chunk.
	off, n, ok = b.ClaimNext(4)
	if !ok || off != 5 || n != 3 {
		t.Fatalf("resumed claim (%d,%d,%v), want (5,3,true)", off, n, ok)
	}
	off, n, ok = b.ClaimNext(4)
	if !ok || off != 8 || n != 2 {
		t.Fatalf("tail claim (%d,%d,%v), want (8,2,true)", off, n, ok)
	}
}

func TestClaimNextRespectsMax(t *testing.T) {
	b := NewChunked(16, 4)
	off, n, ok := b.ClaimNext(4)
	if !ok || off != 0 || n != 4 {
		t.Fatalf("claim (%d,%d,%v), want (0,4,true)", off, n, ok)
	}
	off, n, ok = b.ClaimNext(5) // rounds up to whole chunks
	if !ok || off != 4 || n != 8 {
		t.Fatalf("claim (%d,%d,%v), want (4,8,true)", off, n, ok)
	}
}

func TestClaimNextStopsAtPartialChunk(t *testing.T) {
	b := NewChunked(12, 4)
	// Simulate a failed writer that left chunk 1 half-full.
	o, n, _ := b.ClaimNext(100)
	if err := b.WriteAt([]byte("abcdef"), 0); err != nil {
		t.Fatal(err)
	}
	b.ReleaseClaim(o, n)
	// A fresh claim resumes mid-chunk and may run through following empty
	// chunks (a sequential writer stays contiguous across the boundary).
	off, n, ok := b.ClaimNext(100)
	if !ok || off != 6 || n != 6 {
		t.Fatalf("claim (%d,%d,%v), want (6,6,true)", off, n, ok)
	}
	// But a run can never START inside a chunk someone else half-filled:
	// release chunk 2 only and half-fill it, then re-claim.
	if err := b.WriteAt([]byte("66"), 6); err != nil {
		t.Fatal(err)
	}
	b.ReleaseClaim(8, 4)
	if err := b.WriteAt([]byte("89"), 8); err != nil {
		t.Fatal(err)
	}
	off, n, ok = b.ClaimNext(100)
	if !ok || off != 10 || n != 2 {
		t.Fatalf("claim (%d,%d,%v), want (10,2,true)", off, n, ok)
	}
}

func TestConcurrentStripedWriters(t *testing.T) {
	const size = 1 << 20
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i * 31)
	}
	b := NewChunked(size, 64<<10)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				off, n, ok := b.ClaimNext(128 << 10)
				if !ok {
					return
				}
				// Stream the claimed range in small writes, like a
				// ranged network pull.
				for pos := off; pos < off+n; {
					end := pos + 7777
					if end > off+n {
						end = off + n
					}
					if err := b.WriteAt(data[pos:end], pos); err != nil {
						t.Error(err)
						return
					}
					pos = end
				}
			}
		}()
	}
	// A reader streams the contiguous prefix concurrently.
	readerDone := make(chan []byte, 1)
	go func() {
		out, err := io.ReadAll(b.Reader(context.Background(), 0))
		if err != nil {
			t.Error(err)
		}
		readerDone <- out
	}()
	wg.Wait()
	if b.Present() != size {
		t.Fatalf("present %d, want %d", b.Present(), size)
	}
	b.Seal()
	if got := <-readerDone; !bytes.Equal(got, data) {
		t.Fatal("concurrent reader mismatch")
	}
	if !bytes.Equal(b.Bytes(), data) {
		t.Fatal("striped write mismatch")
	}
}

func TestReleaseClaimKeepsPresentChunks(t *testing.T) {
	b := NewChunked(12, 4)
	o, n, _ := b.ClaimNext(100)
	if err := b.WriteAt([]byte("abcdefgh"), 0); err != nil { // chunks 0,1 full
		t.Fatal(err)
	}
	b.ReleaseClaim(o, n)
	off, n, ok := b.ClaimNext(100)
	if !ok || off != 8 || n != 4 {
		t.Fatalf("claim (%d,%d,%v), want (8,4,true)", off, n, ok)
	}
}

func TestResetClearsClaimsAndStripes(t *testing.T) {
	b := NewChunked(12, 4)
	b.ClaimNext(4)
	if err := b.WriteAt([]byte("wxyz"), 8); err != nil { // striped tail
		t.Fatal(err)
	}
	if err := b.Append([]byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	b.Fail(types.ErrAborted)
	b.Reset(5)
	if b.Watermark() != 5 || b.Present() != 5 || b.Failed() != nil {
		t.Fatalf("watermark %d present %d err %v", b.Watermark(), b.Present(), b.Failed())
	}
	// Claims are gone and the striped tail was dropped: the next claim
	// starts right at the watermark.
	off, n, ok := b.ClaimNext(100)
	if !ok || off != 5 || n != 7 {
		t.Fatalf("claim (%d,%d,%v), want (5,7,true)", off, n, ok)
	}
}

func TestClaimNextOnFailedOrSealed(t *testing.T) {
	b := NewChunked(4, 4)
	b.Fail(types.ErrAborted)
	if _, _, ok := b.ClaimNext(4); ok {
		t.Fatal("claim on failed buffer")
	}
	s := FromBytes([]byte("ab"))
	if _, _, ok := s.ClaimNext(4); ok {
		t.Fatal("claim on sealed buffer")
	}
}

func BenchmarkAppend64KB(b *testing.B) {
	chunk := make([]byte, 64<<10)
	b.SetBytes(int64(len(chunk)))
	for i := 0; i < b.N; i++ {
		buf := New(int64(len(chunk)))
		buf.Append(chunk)
		buf.Seal()
	}
}

func TestRefCounting(t *testing.T) {
	b := FromBytes([]byte("abc"))
	if b.Refs() != 0 {
		t.Fatalf("fresh buffer refs = %d", b.Refs())
	}
	b.Ref()
	b.Ref()
	if b.Refs() != 2 {
		t.Fatalf("refs = %d, want 2", b.Refs())
	}
	b.Unref()
	b.Unref()
	if b.Refs() != 0 {
		t.Fatalf("refs = %d, want 0", b.Refs())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unbalanced Unref did not panic")
		}
	}()
	b.Unref()
}

func TestOnDoneSeal(t *testing.T) {
	b := New(2)
	var got []error
	b.OnDone(func(err error) { got = append(got, err) })
	if len(got) != 0 {
		t.Fatal("watcher fired before completion")
	}
	b.Append([]byte("hi"))
	b.Seal()
	if len(got) != 1 || got[0] != nil {
		t.Fatalf("watcher calls after seal: %v", got)
	}
	// Registration after completion fires synchronously.
	b.OnDone(func(err error) { got = append(got, err) })
	if len(got) != 2 || got[1] != nil {
		t.Fatalf("late watcher calls: %v", got)
	}
}

func TestOnDoneFail(t *testing.T) {
	b := New(2)
	var got []error
	b.OnDone(func(err error) { got = append(got, err) })
	b.Fail(types.ErrDeleted)
	if len(got) != 1 || !errors.Is(got[0], types.ErrDeleted) {
		t.Fatalf("watcher calls after fail: %v", got)
	}
	b.OnDone(func(err error) { got = append(got, err) })
	if len(got) != 2 || !errors.Is(got[1], types.ErrDeleted) {
		t.Fatalf("late watcher calls: %v", got)
	}
	// Fail fires each watcher exactly once.
	b.Fail(types.ErrAborted)
	if len(got) != 2 {
		t.Fatalf("watcher re-fired: %v", got)
	}
}

func TestOnDoneSurvivesReset(t *testing.T) {
	b := NewChunked(4, 4)
	b.Append([]byte("ab"))
	var got []error
	b.OnDone(func(err error) { got = append(got, err) })
	b.Reset(0) // new generation restart: watchers must carry over
	if len(got) != 0 {
		t.Fatalf("watcher fired on reset: %v", got)
	}
	b.Append([]byte("wxyz"))
	b.Seal()
	if len(got) != 1 || got[0] != nil {
		t.Fatalf("watcher calls after post-reset seal: %v", got)
	}
}

// TestSealShortPanicReleasesLock: the short-seal panic must not leave
// the buffer mutex held — a recovering caller's next method call would
// otherwise deadlock.
func TestSealShortPanicReleasesLock(t *testing.T) {
	b := New(4)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("short seal did not panic")
			}
		}()
		b.Seal()
	}()
	if b.Watermark() != 0 { // deadlocks here if Seal leaked the lock
		t.Fatalf("watermark %d", b.Watermark())
	}
}
