// Package core implements Hoplite itself: the per-node object store
// service that plugs the directory, store, and transport together and runs
// the paper's receiver-driven broadcast (§3.4.1), dynamic tree reduce
// (§3.4.2), fine-grained pipelining (§3.3), and fault-tolerant schedule
// adaptation (§3.5).
package core

import (
	"net"
	"time"

	"hoplite/internal/netem"
	"hoplite/internal/types"
	"hoplite/internal/wire"
)

// Default tuning constants, matching the paper where it states values.
const (
	// DefaultInlineThreshold is the small-object fast-path threshold:
	// objects below it live inline in the directory (§3.2, 64 KB), so a
	// cold Get of one is a single directory RPC with the payload riding
	// the Acquire reply.
	DefaultInlineThreshold = 64 << 10
	// DefaultSmallObject is the legacy name of DefaultInlineThreshold.
	DefaultSmallObject = DefaultInlineThreshold
	// DefaultLocationCacheSize bounds the per-node cache of directory
	// lookup results (see loccache.go).
	DefaultLocationCacheSize = 4096
	// DefaultPipelineBlock is the block granularity of in-node copies and
	// streaming reduce (§5.1.1 reports a 4 MB pipelining block).
	DefaultPipelineBlock = 4 << 20
	// DefaultChunkSize is the data-plane wire chunk.
	DefaultChunkSize = 256 << 10
	// DefaultStripeThreshold is the minimum object size for which a Get
	// stripes ranged pulls across multiple complete copies. Below it a
	// single pipelined pull saturates the path; above it the aggregate
	// egress bandwidth of several senders is worth the extra connections.
	DefaultStripeThreshold = 32 << 20
	// DefaultMaxSources caps how many senders one striped Get drains
	// concurrently.
	DefaultMaxSources = 4
)

// Config configures a Node.
type Config struct {
	// Fabric supplies listeners and dialers; use netem.TCP for production
	// and netem.Emulated for testbed emulation. Required.
	Fabric netem.Fabric
	// Name is the fabric node name used for shaping and fault injection.
	// Defaults to the listen address.
	Name string
	// Listener, if set, is used instead of opening a new one via the
	// fabric. Cluster bootstrap pre-creates listeners so every node can
	// be configured with the full directory shard address list.
	Listener net.Listener
	// DirectoryShards lists the control addresses of every directory
	// shard. Nodes started by a Cluster host one shard each. Required
	// unless the node hosts the only shard or DirectoryTopology is set.
	// Legacy single-replica form of DirectoryTopology.
	DirectoryShards []string
	// DirectoryTopology lists every directory shard's replica group in
	// succession order: Topology[i][0] is shard i's initial primary and
	// the next live replica by index takes over on failure. A node hosts
	// a replica of every group containing its own address. Takes
	// precedence over DirectoryShards.
	DirectoryTopology [][]string
	// HostShard makes this node host a directory shard on its control
	// plane.
	HostShard bool
	// DirHeartbeatInterval and DirLeaseTimeout tune the directory
	// replication failure detector: the primary of each hosted shard
	// heartbeats its backups every interval, and a backup that has not
	// heard from a live predecessor within the lease promotes itself.
	// Zero selects the directory package defaults (50ms / 300ms).
	DirHeartbeatInterval time.Duration
	DirLeaseTimeout      time.Duration

	// InitialMap, when set, enables epoch-versioned cluster membership
	// with this boot map: directory shard replica groups are derived from
	// it (DirectoryTopology/DirectoryShards are ignored), requests are
	// stamped with its epoch, and later joins/drains re-shape the cluster
	// live. All founding nodes must boot with the identical map.
	InitialMap *types.ClusterMap
	// JoinAddrs lists control addresses of an existing membership-enabled
	// cluster. When non-empty the node joins at startup: it announces
	// itself to the membership shard, receives the cluster map, and boots
	// from it. Takes precedence over every other topology knob.
	JoinAddrs []string
	// JoinStorageOnly joins the node as a pure storage member: it hosts
	// object bytes but is never assigned a directory shard replica.
	JoinStorageOnly bool
	// RepairInterval is the period of the directory re-replication
	// scanner that restores the map's ObjectRF after permanent node loss
	// and evacuates sole copies off draining nodes. Zero selects the
	// directory default (250ms); negative disables the scanner. Only
	// meaningful with membership enabled.
	RepairInterval time.Duration

	// InlineThreshold is the inline fast-path threshold in bytes: objects
	// below it are stored inline in the directory and delivered in
	// Acquire/Lookup replies, so a cold Get of one is exactly one RPC.
	// Defaults to DefaultInlineThreshold. Negative disables the fast path.
	InlineThreshold int64
	// SmallObject is the legacy name for InlineThreshold; it is consulted
	// only when InlineThreshold is zero.
	SmallObject int64

	// MaxBatchDelay is the control-plane write-coalescing window (see
	// wire.BatchConfig.MaxDelay): zero batches opportunistically with no
	// added latency, positive values trade latency for larger batches,
	// and a negative value disables batching (one write+flush per call).
	MaxBatchDelay time.Duration
	// MaxBatchBytes cuts a batching window short once this many encoded
	// bytes are queued. Zero means wire.DefaultMaxBatchBytes.
	MaxBatchBytes int

	// LocationCacheSize bounds the per-node cache of directory lookup
	// results that lets repeat Gets of remote objects skip the directory
	// and pull straight from a known complete-copy holder. Zero selects
	// DefaultLocationCacheSize; negative disables the cache.
	LocationCacheSize int
	// PipelineBlock is the in-node copy and reduce streaming block size.
	PipelineBlock int
	// ChunkSize is the data-plane wire chunk size.
	ChunkSize int
	// StoreCapacity bounds the local store in bytes; 0 means unlimited.
	// Legacy semantics: unpinned LRU eviction at the bound, pinned
	// allocations overshoot. Prefer MemoryLimit for new deployments.
	StoreCapacity int64

	// MemoryLimit bounds the in-memory store in bytes and enables
	// admission control: a Put/Create that cannot fit under the limit —
	// even after demoting or evicting every eligible cold object — blocks
	// (governed by its ctx) instead of overshooting or failing. Combine
	// with SpillDir for the tiered out-of-core mode. Zero disables
	// admission; MemoryLimit takes precedence over StoreCapacity.
	MemoryLimit int64
	// SpillDir, when set, enables the disk spill tier: under memory
	// pressure cold sealed objects are demoted to files in this directory
	// instead of dropped. A spilled object keeps its directory location
	// (downgraded to the Spilled flavor), serves remote pulls — full or
	// ranged — straight off disk, and is transparently restored into
	// memory on a local Get. The directory is rescanned at startup, so a
	// restarted node re-offers the objects it spilled in a previous life.
	SpillDir string
	// SpillHighWater and SpillLowWater are fractions of the memory budget
	// bounding the demotion hysteresis: an allocation that would push
	// usage past High demotes cold objects until usage falls below Low.
	// Zero selects the store defaults (0.90 / 0.70).
	SpillHighWater, SpillLowWater float64

	// StripeThreshold is the minimum object size for a striped Get that
	// pulls disjoint ranges from several complete copies concurrently.
	// Defaults to DefaultStripeThreshold; negative disables striping.
	StripeThreshold int64
	// MaxSources caps the senders of one striped Get. Defaults to
	// DefaultMaxSources; 1 disables striping.
	MaxSources int

	// Latency and Bandwidth are cold-start priors for the per-link L and B
	// estimates that drive reduce-tree degree selection (§3.4.2) and
	// striped-Get planning. Before any traffic has been measured the
	// planner uses them directly; once the link-state tracker has samples
	// for a peer, the measured estimate takes over (decaying back toward
	// these priors when a link goes quiet). They default to 200µs and
	// 1.25 GB/s (the paper's 10 Gbps testbed).
	Latency   time.Duration
	Bandwidth float64

	// LinkHalfLife is the quiet-link decay half-life of the link-state
	// estimator: after a link has been idle, its measured estimate decays
	// toward the Latency/Bandwidth priors with this half-life. Zero
	// selects the linkstate default (10s); negative disables decay.
	LinkHalfLife time.Duration

	// Locality is this node's optional rack/DC label. It is announced on
	// join, carried on the cluster map, and used by the link-state tracker
	// to estimate unmeasured peers from the locality-domain mean.
	Locality string

	// Planner selects the transfer planner: "link" (default) ranks striped
	// senders and shapes reduce trees by measured per-link estimates;
	// "static" keeps the prior-only equal-split behavior.
	Planner string

	// SchedClasses configures the data-plane egress scheduler: 2 (default)
	// enables the weighted-fair latency/bulk scheduler so a saturating
	// striped Get cannot starve a small Get; 1 disables scheduling.
	SchedClasses int
	// SchedQuantum is the scheduler's byte-deficit quantum; 0 selects one
	// chunk frame (the minimum the deficit gate allows).
	SchedQuantum int64
	// BulkCutoff is the full-pull size at or above which a pull is
	// scheduled as bulk; 0 selects transport.DefaultBulkCutoff (1 MB).
	BulkCutoff int64

	// ReduceDegree forces the reduce tree degree: 0 = choose
	// automatically among {1, 2, n}; otherwise the given d is used
	// (n-ary when d >= n). Used by the Figure 15 ablation.
	ReduceDegree int

	// PingInterval is how often reduce coordinators probe participant
	// liveness. Defaults to 20 ms.
	PingInterval time.Duration
}

func (c *Config) withDefaults() Config {
	cfg := *c
	if cfg.InlineThreshold == 0 {
		cfg.InlineThreshold = cfg.SmallObject // legacy alias
	}
	if cfg.InlineThreshold == 0 {
		cfg.InlineThreshold = DefaultInlineThreshold
	}
	if cfg.InlineThreshold < 0 {
		cfg.InlineThreshold = 0
	}
	cfg.SmallObject = cfg.InlineThreshold
	if cfg.LocationCacheSize == 0 {
		cfg.LocationCacheSize = DefaultLocationCacheSize
	}
	if cfg.LocationCacheSize < 0 {
		cfg.LocationCacheSize = 0
	}
	if cfg.PipelineBlock <= 0 {
		cfg.PipelineBlock = DefaultPipelineBlock
	}
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = DefaultChunkSize
	}
	if cfg.StripeThreshold == 0 {
		cfg.StripeThreshold = DefaultStripeThreshold
	}
	if cfg.MaxSources == 0 {
		cfg.MaxSources = DefaultMaxSources
	}
	if cfg.MaxSources < 1 {
		cfg.MaxSources = 1
	}
	if cfg.Latency <= 0 {
		cfg.Latency = 200 * time.Microsecond
	}
	if cfg.Bandwidth <= 0 {
		cfg.Bandwidth = 1.25e9
	}
	if cfg.PingInterval <= 0 {
		cfg.PingInterval = 20 * time.Millisecond
	}
	if cfg.Planner == "" {
		cfg.Planner = "link"
	}
	if cfg.SchedClasses == 0 {
		cfg.SchedClasses = 2
	}
	return cfg
}

// batchConfig translates the batching knobs into the wire package's form.
func (c *Config) batchConfig() wire.BatchConfig {
	return wire.BatchConfig{MaxDelay: c.MaxBatchDelay, MaxBytes: c.MaxBatchBytes}
}
