package core

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"hoplite/internal/buffer"
	"hoplite/internal/directory"
	"hoplite/internal/transport"
	"hoplite/internal/types"
	"hoplite/internal/wire"
)

// pull tracks one in-flight inbound transfer so concurrent Gets of the
// same object share it ("if there is an on-going request for the object
// locally, the receiver just waits until it gets the completed object",
// §3.4.1).
type pull struct {
	ready   chan struct{} // closed once buf is set (or err)
	buf     *buffer.Buffer
	err     error
	started time.Time // registration instant, for the inline tombstone check
}

// Put stores an immutable object (Table 1). Objects below the small-object
// threshold go inline into the directory (§3.2); larger objects stream
// through an ObjectWriter in pipeline blocks, with the partial location
// registered up front so remote receivers can start fetching while the
// copy is still running (§3.3). The object is pinned locally until Delete.
func (n *Node) Put(ctx context.Context, oid types.ObjectID, data []byte) error {
	if int64(len(data)) < n.cfg.InlineThreshold {
		return n.dir.PutInline(ctx, oid, data)
	}
	w, err := n.Create(ctx, oid, int64(len(data)))
	if err != nil {
		if errors.Is(err, types.ErrExists) {
			// Idempotent re-put (e.g. a restarted task re-producing its
			// output): re-register the existing complete copy.
			if existing, ok := n.store.Get(oid); ok && existing.Complete() {
				if err := n.dir.PutStarted(ctx, oid, existing.Size()); err != nil {
					return err
				}
				return n.dir.PutComplete(ctx, oid)
			}
		}
		return err
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	return w.Seal()
}

// deleteGrace is how long Get-style operations keep retrying after
// observing ErrDeleted. An object can be transiently deleted and
// re-created during reduce failure recovery (a failed root slot's target
// output is invalidated and re-produced by the replacement, §3.5.2);
// receivers ride through the window instead of surfacing a spurious error.
const deleteGrace = 1500 * time.Millisecond

// retryTransient runs op, retrying while it fails with a transient
// deletion error (ErrDeleted/ErrAborted) inside the deleteGrace window.
// Any other error, a ctx cancellation, or the window expiring surfaces
// the last error. Every Get-shaped operation shares this one loop.
// Between attempts it blocks on await — an event-driven wakeup tied to
// the object's directory record — instead of a fixed-period poll, so a
// re-created object is retried the moment its first location registers.
func retryTransient[T any](ctx context.Context, await func(context.Context), op func() (T, error)) (T, error) {
	deadline := time.Now().Add(deleteGrace)
	for {
		v, err := op()
		if err == nil {
			return v, nil
		}
		if !errors.Is(err, types.ErrDeleted) && !errors.Is(err, types.ErrAborted) {
			return v, err
		}
		if time.Now().After(deadline) {
			return v, err
		}
		wctx, cancel := context.WithDeadline(ctx, deadline)
		await(wctx)
		cancel()
		if ctx.Err() != nil {
			var zero T
			return zero, ctx.Err()
		}
	}
}

// awaitRecreation returns the wakeup used by retryTransient: a directory
// watch on oid that fires on the next record change (normally the
// re-creation's PutStarted). If the record already shows life again — or
// the directory is unreachable — it returns immediately (the retry loop's
// grace deadline still bounds the overall wait).
func (n *Node) awaitRecreation(oid types.ObjectID) func(context.Context) {
	return func(ctx context.Context) {
		ch := make(chan struct{}, 1)
		rec, cancelWatch, err := n.dir.Watch(ctx, oid, func(directory.Update) {
			select {
			case ch <- struct{}{}:
			default:
			}
		})
		if err != nil && !errors.Is(err, types.ErrDeleted) {
			return
		}
		defer cancelWatch()
		if err == nil && (len(rec.Locs) > 0 || rec.Inline != nil) {
			return // re-created between the failure and the watch
		}
		select {
		case <-ch:
		case <-ctx.Done():
		}
	}
}

// getBuffer returns a complete local buffer for oid, retrying across
// transient deletions.
func (n *Node) getBuffer(ctx context.Context, oid types.ObjectID) (*buffer.Buffer, error) {
	return retryTransient(ctx, n.awaitRecreation(oid), func() (*buffer.Buffer, error) {
		buf, err := n.ensureLocal(ctx, oid)
		if err != nil {
			return nil, err
		}
		if err := buf.WaitComplete(ctx); err != nil {
			return nil, err
		}
		return buf, nil
	})
}

// GetRef returns a pinned, zero-copy, read-only view of the object,
// blocking until the object is fully present locally. The underlying
// store copy cannot be evicted while the ref is held; the caller must
// Release it. This is the handle form of the paper's immutable-get
// optimization (§3.3): no final store→worker copy is made.
func (n *Node) GetRef(ctx context.Context, oid types.ObjectID) (*ObjectRef, error) {
	// Fast path — the object is local and complete: pin it under the
	// store lock and hand out a pooled handle. Zero allocations, zero
	// copies (BenchmarkGetRef asserts this stays true).
	if buf, ok := n.store.Acquire(oid); ok {
		if buf.Complete() {
			return newRef(oid, buf), nil
		}
		buf.Unref()
	}
	return n.getRefSlow(ctx, oid)
}

func (n *Node) getRefSlow(ctx context.Context, oid types.ObjectID) (*ObjectRef, error) {
	return retryTransient(ctx, n.awaitRecreation(oid), func() (*ObjectRef, error) {
		if _, err := n.ensureLocal(ctx, oid); err != nil {
			return nil, err
		}
		// Re-acquire through the store so the pin is atomic with the
		// lookup: ensureLocal's buffer may already have been replaced by
		// a re-creation, and a complete copy could be evicted between the
		// pull finishing and the pin landing — Acquire pins whatever entry
		// is current, and a miss is treated as transient.
		buf, ok := n.store.Acquire(oid)
		if !ok {
			return nil, types.ErrAborted
		}
		if err := buf.WaitComplete(ctx); err != nil {
			buf.Unref()
			return nil, err
		}
		return newRef(oid, buf), nil
	})
}

// Get returns a private copy of the object, blocking until it is
// available. The copy out of the store is pipelined with the inbound
// transfer (§3.3). Small objects come straight from the directory cache.
// It is a compat shim over the ref machinery: the store entry is pinned
// for the duration of the copy-out.
func (n *Node) Get(ctx context.Context, oid types.ObjectID) ([]byte, error) {
	return retryTransient(ctx, n.awaitRecreation(oid), func() ([]byte, error) { return n.getOnce(ctx, oid) })
}

func (n *Node) getOnce(ctx context.Context, oid types.ObjectID) ([]byte, error) {
	buf, err := n.ensureLocal(ctx, oid)
	if err != nil {
		return nil, err
	}
	// Pin the entry we are streaming from so eviction cannot drop it
	// mid-copy. If the store entry was replaced (object re-created), keep
	// streaming the buffer we joined: its writers fail it if superseded.
	if pinned, ok := n.store.Acquire(oid); ok {
		if pinned == buf {
			defer pinned.Unref()
		} else {
			pinned.Unref()
		}
	}
	out := make([]byte, buf.Size())
	var off int64
	for off < buf.Size() {
		wm, _, err := buf.WaitAt(ctx, off)
		if err != nil {
			return nil, err
		}
		copy(out[off:wm], buf.Bytes()[off:wm])
		off = wm
	}
	return out, nil
}

// GetImmutable returns a read-only view of the object without the final
// store→worker copy ("optimization for immutable get", §3.3). The caller
// must not modify the returned slice.
//
// Compat shim over GetRef: the returned slice is NOT pinned — after this
// call returns, store pressure may evict the copy (the bytes stay valid
// to the Go runtime but the store forgets them). New code should hold an
// ObjectRef from GetRef instead and Release it when done.
func (n *Node) GetImmutable(ctx context.Context, oid types.ObjectID) ([]byte, error) {
	ref, err := n.GetRef(ctx, oid)
	if err != nil {
		return nil, err
	}
	data := ref.Bytes()
	ref.Release()
	return data, nil
}

// WaitLocal blocks until the object is fully present in the local store
// (fetching it if necessary) without copying it out.
func (n *Node) WaitLocal(ctx context.Context, oid types.ObjectID) error {
	_, err := n.getBuffer(ctx, oid)
	return err
}

// Delete removes every copy of the object cluster-wide (Table 1). The
// directory entry is tombstoned and each holding node evicts its copy.
func (n *Node) Delete(ctx context.Context, oid types.ObjectID) error {
	locs, err := n.dir.Delete(ctx, oid)
	if err != nil {
		return err
	}
	n.noteTombstone(oid)
	n.dropLocEntry(oid)
	epoch := n.mapEpoch()
	var firstErr error
	for _, loc := range locs {
		if loc.Node == n.id {
			n.store.Delete(oid)
			continue
		}
		c, err := n.peerCtrl(ctx, string(loc.Node))
		if err != nil {
			if firstErr == nil && !errors.Is(err, types.ErrNodeDown) {
				firstErr = err
			}
			continue
		}
		resp, err := c.Call(ctx, wire.Message{Method: wire.MethodEvictLocal, OID: oid, Epoch: epoch})
		if err != nil {
			n.dropPeer(string(loc.Node), c)
			continue
		}
		if errors.Is(resp.ErrorOf(), types.ErrStaleMap) {
			// The holder has a newer cluster map than we do: adopt it and
			// re-issue the eviction with a current stamp so the copy is not
			// silently left behind.
			if cm, derr := types.DecodeClusterMap(resp.Payload); derr == nil {
				n.applyMap(cm)
			}
			epoch = n.mapEpoch()
			if _, err := c.Call(ctx, wire.Message{Method: wire.MethodEvictLocal, OID: oid, Epoch: epoch}); err != nil {
				n.dropPeer(string(loc.Node), c)
			}
		}
	}
	n.store.Delete(oid) // cover copies created after the directory snapshot
	if n.spill != nil {
		n.spill.Remove(oid)
	}
	return firstErr
}

// ensureLocal returns a local buffer for oid, starting (or joining) a
// receiver-driven pull when the object is remote. The returned buffer may
// still be filling; callers stream via WaitAt/WaitComplete.
func (n *Node) ensureLocal(ctx context.Context, oid types.ObjectID) (*buffer.Buffer, error) {
	for {
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			return nil, types.ErrClosed
		}
		if buf, ok := n.store.Get(oid); ok {
			n.mu.Unlock()
			return buf, nil
		}
		if p, ok := n.pulls[oid]; ok {
			n.mu.Unlock()
			select {
			case <-p.ready:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if p.err != nil {
				return nil, p.err
			}
			return p.buf, nil
		}
		p := &pull{ready: make(chan struct{}), started: time.Now()}
		n.pulls[oid] = p
		n.mu.Unlock()
		buf, err := n.startPull(ctx, oid, p)
		if err != nil {
			return nil, err
		}
		return buf, nil
	}
}

// startPull performs the first sender acquisition for a registered pull
// and launches the transfer loop. Large objects with several complete
// remote copies are striped: disjoint ranges are pulled from up to
// MaxSources senders concurrently, aggregating their egress bandwidth;
// everything else takes the classic single-sender pipelined pull.
func (n *Node) startPull(ctx context.Context, oid types.ObjectID, p *pull) (*buffer.Buffer, error) {
	fail := func(err error) (*buffer.Buffer, error) {
		p.err = err
		n.mu.Lock()
		if n.pulls[oid] == p {
			delete(n.pulls, oid)
		}
		n.mu.Unlock()
		close(p.ready)
		return nil, err
	}
	done := func(buf *buffer.Buffer) (*buffer.Buffer, error) {
		p.buf = buf
		n.mu.Lock()
		delete(n.pulls, oid)
		n.mu.Unlock()
		close(p.ready)
		return buf, nil
	}
	// detached serves a payload to the requesting Get from a buffer that
	// is NOT in the store: the object was deleted while the reply was in
	// flight, so materializing a copy the eviction fan-out already missed
	// would resurrect it. The overlapping caller still gets its bytes.
	detached := func(payload []byte) (*buffer.Buffer, error) {
		buf := buffer.New(int64(len(payload)))
		if err := buf.Append(payload); err != nil {
			return fail(err)
		}
		buf.Seal()
		return done(buf)
	}
	inline := func(payload []byte) (*buffer.Buffer, error) {
		// Small-object fast path: the payload came with the reply.
		if n.tombstonedSince(oid, p.started) {
			return detached(payload)
		}
		buf, err := n.store.InsertSealed(oid, payload, false)
		inserted := err == nil
		if errors.Is(err, types.ErrExists) {
			// A racing local writer owns the entry; use its buffer.
			if existing, ok := n.store.Get(oid); ok {
				buf, err = existing, nil
			}
		}
		if err != nil {
			return fail(err)
		}
		if inserted && n.tombstonedSince(oid, p.started) {
			// The eviction fan-out landed between the check above and the
			// insert; take our copy back out and serve detached. A joined
			// pre-existing entry is left alone — the fan-out owns it.
			n.store.Delete(oid)
			return detached(payload)
		}
		n.signalStoreChange()
		return done(buf)
	}

	// Spill tier first: an object this node demoted to disk restores
	// locally instead of going back to the network.
	if n.spill != nil {
		if buf, ok := n.restoreFromSpill(oid, p); ok {
			return buf, nil
		}
	}

	// Location cache second: a remembered complete-copy holder is pulled
	// from directly, skipping the directory entirely (warm fast path).
	if n.locs != nil {
		if snap, ok := n.locs.get(oid); ok {
			if buf, ok := n.startCachedPull(oid, p, snap); ok {
				return buf, nil
			}
		}
	}

	var lease directory.Lease
	acquired := false
	if n.cfg.MaxSources > 1 && n.cfg.StripeThreshold > 0 {
		ml, err := n.dir.AcquireSenders(ctx, oid, n.cfg.MaxSources)
		if err == nil && len(ml.Senders) > 1 {
			// Best link first: the striped path drains the fastest senders
			// hardest, and the single-lease fallback keeps Senders[0].
			ml.Senders = n.plan.rankSenders(ml.Senders)
		}
		switch {
		case err == nil && ml.Inline != nil:
			return inline(ml.Inline)
		case err == nil && len(ml.Senders) >= 2 && ml.Size >= n.cfg.StripeThreshold:
			buf, cerr := n.store.CreateChunked(oid, ml.Size, stripeChunk(ml.Size, len(ml.Senders)), false)
			if cerr != nil {
				rctx, cancel := context.WithTimeout(n.ctx, 10*time.Second)
				for _, s := range ml.Senders {
					_ = n.dir.AbortTransfer(rctx, oid, s, false)
				}
				cancel()
				return fail(cerr)
			}
			n.signalStoreChange()
			n.armLocCache(oid, ml.Size, ml.Gen, ml.Senders)
			p.buf = buf
			close(p.ready)
			n.wg.Add(1)
			go func() {
				defer n.wg.Done()
				n.runStripedPull(oid, p, buf, ml)
			}()
			return buf, nil
		case err == nil && len(ml.Senders) > 0:
			// Leases granted but striping is not worthwhile (object below
			// the threshold, or a single eligible copy): keep the first
			// lease for the classic path and return the rest.
			if len(ml.Senders) > 1 {
				rctx, cancel := context.WithTimeout(n.ctx, 10*time.Second)
				for _, s := range ml.Senders[1:] {
					_ = n.dir.AbortTransfer(rctx, oid, s, false)
				}
				cancel()
			}
			lease = directory.Lease{Sender: ml.Senders[0], Size: ml.Size, Gen: ml.Gen}
			acquired = true
			n.armLocCache(oid, ml.Size, ml.Gen, ml.Senders)
		default:
			// No unleased complete copy right now (or the object is not
			// produced yet): fall through to the blocking single-sender
			// acquire, which also accepts partial copies.
		}
	}
	if !acquired {
		var err error
		lease, err = n.dir.AcquireSender(ctx, oid, true)
		if err != nil {
			return fail(err)
		}
		if lease.Inline != nil {
			return inline(lease.Inline)
		}
	}
	if lease.Size < 0 {
		_ = n.dir.AbortTransfer(ctx, oid, lease.Sender, false)
		return fail(fmt.Errorf("core: object %v has unknown size", oid))
	}
	buf, err := n.store.Create(oid, lease.Size, false)
	if err != nil {
		_ = n.dir.AbortTransfer(ctx, oid, lease.Sender, false)
		return fail(err)
	}
	n.signalStoreChange()
	if !acquired {
		// Blocking-acquire senders may hold only a partial copy, so they
		// do not seed the cache; the watch record fills in whole-copy
		// holders asynchronously.
		n.armLocCache(oid, lease.Size, lease.Gen, nil)
	}
	p.buf = buf
	close(p.ready)
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.runPull(oid, p, buf, lease.Sender, lease.Gen)
	}()
	return buf, nil
}

// restoreFromSpill rehydrates a spilled object into the store, streaming
// file blocks through the buffer's watermark so readers (and onward
// relays) pipeline off the restore exactly as they would off a network
// pull. The spill file stays behind as the durable copy: the restored
// buffer is an unpinned cache over it, so eviction under continued
// pressure is cheap (no rewrite) and merely downgrades the directory
// location back to Spilled. ok=false means the object is not spilled, or
// a racing writer owns the store entry; the caller proceeds with a remote
// acquire.
func (n *Node) restoreFromSpill(oid types.ObjectID, p *pull) (*buffer.Buffer, bool) {
	size, ok := n.spill.Contains(oid)
	if !ok {
		return nil, false
	}
	// Plain Create, not CreateAdmit: a restore must not block on
	// admission (it is often what a blocked admission is waiting for);
	// it instead triggers demotion of colder objects, which is the
	// restore-under-eviction-pressure cycle the watermarks bound.
	buf, err := n.store.Create(oid, size, false)
	if err != nil {
		return nil, false
	}
	n.signalStoreChange()
	p.buf = buf
	close(p.ready)
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		defer func() {
			n.mu.Lock()
			if n.pulls[oid] == p {
				delete(n.pulls, oid)
			}
			n.mu.Unlock()
		}()
		if err := n.spill.ReadInto(oid, n.cfg.PipelineBlock, buf.Append); err != nil {
			buf.Fail(err)
			n.store.Delete(oid)
			// Keep the durable file when the restore died of node
			// shutdown or a concurrent Delete (which tears the file down
			// itself) — only a genuinely unreadable file is dropped, so
			// the next attempt goes remote instead of looping on it.
			if n.ctx.Err() != nil || errors.Is(err, types.ErrClosed) || errors.Is(err, types.ErrDeleted) {
				return
			}
			n.spill.Remove(oid)
			rctx, cancel := context.WithTimeout(n.ctx, 10*time.Second)
			_ = n.dir.RemoveLocation(rctx, oid)
			cancel()
			return
		}
		buf.Seal()
		rctx, cancel := context.WithTimeout(n.ctx, 10*time.Second)
		_ = n.dir.PutComplete(rctx, oid) // promote Spilled → Complete
		cancel()
	}()
	return buf, true
}

// runPull executes the transfer loop with sender failover: on a broken
// sender it drops the dead location, re-acquires, and resumes from the
// current watermark (§3.5.1); when the object was re-created under a new
// generation, the stale prefix is discarded instead.
func (n *Node) runPull(oid types.ObjectID, p *pull, buf *buffer.Buffer, sender types.NodeID, gen int64) {
	ctx := n.ctx // pulls outlive the requesting call, like a real store
	finish := func() {
		n.mu.Lock()
		if n.pulls[oid] == p {
			delete(n.pulls, oid)
		}
		n.mu.Unlock()
	}
	defer finish()
	for {
		addr := string(sender)
		dial := func(c context.Context) (net.Conn, error) { return n.dialData(c, addr) }
		err := transport.PullObserved(ctx, dial, n.id, oid, buf.Watermark(), buf, n.linkObserver(sender))
		if err == nil {
			rctx, cancel := context.WithTimeout(ctx, 10*time.Second)
			_ = n.dir.ReleaseSender(rctx, oid, sender, true)
			cancel()
			return
		}
		if ctx.Err() != nil {
			buf.Fail(types.ErrClosed)
			return
		}
		if errors.Is(err, types.ErrDeleted) {
			n.store.Delete(oid) // fails buf with ErrDeleted
			rctx, cancel := context.WithTimeout(ctx, 10*time.Second)
			_ = n.dir.AbortTransfer(rctx, oid, sender, false)
			cancel()
			return
		}
		// Sender failed (socket liveness, §5.5): drop its location and
		// find another sender, resuming from our watermark.
		rctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		_ = n.dir.AbortTransfer(rctx, oid, sender, true)
		cancel()
		lease, err := n.dir.AcquireSender(ctx, oid, true)
		if err != nil {
			buf.Fail(err)
			n.store.Delete(oid)
			return
		}
		var ok bool
		if buf, gen, ok = n.rebindLease(oid, p, buf, lease, gen); !ok {
			return
		}
		sender = lease.Sender
	}
}

// rebindLease reconciles an in-progress buffer with a re-acquired lease
// after a sender failure: an object that reappeared inline aborts the
// pull, a re-creation with a different size replaces the buffer, and a
// new generation at the same size discards the stale prefix (§3.5.2). It
// returns the (possibly replaced) buffer and generation; ok is false when
// the pull cannot continue.
func (n *Node) rebindLease(oid types.ObjectID, p *pull, buf *buffer.Buffer, lease directory.Lease, gen int64) (*buffer.Buffer, int64, bool) {
	if lease.Inline != nil {
		// The object reappeared as an inline small object.
		buf.Fail(types.ErrAborted)
		n.store.Delete(oid)
		return buf, gen, false
	}
	if lease.Gen == gen && lease.Size == buf.Size() {
		return buf, gen, true
	}
	if lease.Size != buf.Size() {
		// Recreated with a different size: replace the buffer.
		n.store.Delete(oid)
		nb, cerr := n.store.Create(oid, lease.Size, false)
		if cerr != nil {
			buf.Fail(cerr)
			rctx, cancel := context.WithTimeout(n.ctx, 10*time.Second)
			_ = n.dir.AbortTransfer(rctx, oid, lease.Sender, false)
			cancel()
			return buf, gen, false
		}
		n.signalStoreChange()
		n.mu.Lock()
		p.buf = nb
		n.mu.Unlock()
		buf = nb
	} else {
		buf.Reset(0)
	}
	return buf, lease.Gen, true
}

// linkObserver returns the receiver-side transfer observer that feeds the
// link estimator: the measured rate of a pull from sender is a direct
// bandwidth sample for that link (pipelined sources measure the effective
// path rate, which is what planning needs).
func (n *Node) linkObserver(sender types.NodeID) transport.Observer {
	return func(bytes int64, d time.Duration) { n.links.ObserveTransfer(sender, bytes, d) }
}

// stripeChunk picks the claim-grid granularity for a striped pull: the
// default ledger chunk, shrunk until every leased sender has at least one
// chunk to claim. Without this, an object smaller than two default chunks
// but above a low StripeThreshold would lease several senders and then
// hand the whole ledger to the first worker's claim, degrading to a
// single active sender that still paid the multi-lease round trips.
func stripeChunk(size int64, senders int) int64 {
	chunk := int64(buffer.DefaultLedgerChunk)
	if senders < 1 {
		senders = 1
	}
	if per := (size + int64(senders) - 1) / int64(senders); per < chunk {
		chunk = per
	}
	if chunk < 1 {
		chunk = 1
	}
	return chunk
}

// runStripedPull drains one object from several complete copies at once:
// each leased sender gets a worker that repeatedly claims the next run of
// missing chunks from the buffer's ledger and issues a ranged pull for it.
// A failed sender's worker returns its unwritten chunks to the ledger, so
// the surviving workers re-fetch exactly the missing ranges — no reset to
// the lowest contiguous offset. If every worker dies with bytes still
// missing, the repair loop takes over with single-sender failover.
func (n *Node) runStripedPull(oid types.ObjectID, p *pull, buf *buffer.Buffer, ml directory.MultiLease) {
	ctx := n.ctx // pulls outlive the requesting call, like a real store
	defer func() {
		n.mu.Lock()
		if n.pulls[oid] == p {
			delete(n.pulls, oid)
		}
		n.mu.Unlock()
	}()
	// Claims go out in ledger-chunk-granular spans: for small striped
	// objects the grid was shrunk (stripeChunk) so each sender gets a
	// range, and a PipelineBlock-sized claim span would undo that by
	// absorbing the whole grid into the first claim. The planner scales
	// each sender's span with its estimated bandwidth, so faster links
	// claim longer runs per trip.
	spans := n.plan.stripeSpans(ml.Senders, buf.ChunkSize())
	var wg sync.WaitGroup
	for i, sender := range ml.Senders {
		wg.Add(1)
		go func(sender types.NodeID, span int64) {
			defer wg.Done()
			n.stripeWorker(ctx, oid, buf, sender, span)
		}(sender, spans[i])
	}
	wg.Wait()
	if ctx.Err() != nil {
		buf.Fail(types.ErrClosed)
		return
	}
	if buf.Failed() != nil {
		// Deleted (or otherwise failed) mid-stripe; drop the partial copy.
		n.store.Delete(oid)
		return
	}
	if buf.Present() == buf.Size() {
		buf.Seal()
		rctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		_ = n.dir.PutComplete(rctx, oid)
		cancel()
		return
	}
	n.repairPull(oid, p, buf, ml.Gen)
}

// stripeWorker pulls claimed ranges from one leased sender until the
// ledger has nothing left to claim or the sender fails.
func (n *Node) stripeWorker(ctx context.Context, oid types.ObjectID, buf *buffer.Buffer, sender types.NodeID, span int64) {
	addr := string(sender)
	dial := func(c context.Context) (net.Conn, error) { return n.dialData(c, addr) }
	for {
		off, length, ok := buf.ClaimNext(span)
		if !ok {
			rctx, cancel := context.WithTimeout(n.ctx, 10*time.Second)
			_ = n.dir.ReleaseSender(rctx, oid, sender, false)
			cancel()
			return
		}
		if err := transport.PullRangeObserved(ctx, dial, n.id, oid, off, length, buf, n.linkObserver(sender)); err != nil {
			buf.ReleaseClaim(off, length)
			rctx, cancel := context.WithTimeout(n.ctx, 10*time.Second)
			if errors.Is(err, types.ErrDeleted) {
				// The object was deleted cluster-wide; fail the local
				// buffer so the other workers stop too.
				n.store.Delete(oid)
				_ = n.dir.AbortTransfer(rctx, oid, sender, false)
			} else {
				// Sender failed (socket liveness, §5.5): drop its
				// location; surviving workers absorb the released range.
				_ = n.dir.AbortTransfer(rctx, oid, sender, ctx.Err() == nil)
			}
			cancel()
			return
		}
	}
}

// repairPull completes a buffer with missing ranges (after every striped
// worker failed) by claim-looping against one acquired sender at a time,
// with the classic failover rules: dead senders are dropped and
// re-acquired, a new generation discards the stale bytes, and deletion
// tears the local copy down.
func (n *Node) repairPull(oid types.ObjectID, p *pull, buf *buffer.Buffer, gen int64) {
	ctx := n.ctx
	span := int64(n.cfg.PipelineBlock)
	for {
		lease, err := n.dir.AcquireSender(ctx, oid, true)
		if err != nil {
			buf.Fail(err)
			n.store.Delete(oid)
			return
		}
		var ok bool
		if buf, gen, ok = n.rebindLease(oid, p, buf, lease, gen); !ok {
			return
		}
		perr := n.pullMissing(ctx, oid, buf, lease.Sender, span)
		if perr == nil {
			buf.Seal()
			rctx, cancel := context.WithTimeout(ctx, 10*time.Second)
			_ = n.dir.ReleaseSender(rctx, oid, lease.Sender, true)
			cancel()
			return
		}
		if ctx.Err() != nil {
			buf.Fail(types.ErrClosed)
			return
		}
		if errors.Is(perr, types.ErrDeleted) {
			n.store.Delete(oid)
			rctx, cancel := context.WithTimeout(ctx, 10*time.Second)
			_ = n.dir.AbortTransfer(rctx, oid, lease.Sender, false)
			cancel()
			return
		}
		rctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		_ = n.dir.AbortTransfer(rctx, oid, lease.Sender, true)
		cancel()
	}
}

// pullMissing claim-loops the buffer's missing ranges from one sender. It
// returns nil once every byte is present, or the first pull error.
func (n *Node) pullMissing(ctx context.Context, oid types.ObjectID, buf *buffer.Buffer, sender types.NodeID, span int64) error {
	addr := string(sender)
	dial := func(c context.Context) (net.Conn, error) { return n.dialData(c, addr) }
	for {
		off, length, ok := buf.ClaimNext(span)
		if !ok {
			if err := buf.Failed(); err != nil {
				return err
			}
			if buf.Present() != buf.Size() {
				// Defensive: nothing claimable yet bytes missing can only
				// mean another writer holds claims, which repair never
				// races with.
				return types.ErrAborted
			}
			return nil
		}
		if err := transport.PullRangeObserved(ctx, dial, n.id, oid, off, length, buf, n.linkObserver(sender)); err != nil {
			buf.ReleaseClaim(off, length)
			return err
		}
	}
}
