package core

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"hoplite/internal/buffer"
	"hoplite/internal/directory"
	"hoplite/internal/types"
	"hoplite/internal/wire"
)

// reduceSpec tells a participant node to run one slot of a reduce tree
// (§3.4.2). The slot's intermediate output is an ordinary directory object
// named (ReduceID, Slot, Epoch), which its parent pulls through the normal
// data plane — this is what lets reduce outputs stream into downstream
// broadcasts and chained reduces while still partial (§3.3).
type reduceSpec struct {
	ReduceID types.ObjectID // the reduce's target ObjectID doubles as its ID
	Slot     int
	Epoch    int64
	OwnOID   types.ObjectID // the source object this slot folds in
	// OutputOID names this slot's output: the true target for the root,
	// an ephemeral coordinator-chosen object otherwise. The coordinator
	// pins ephemeral IDs onto the target's directory shard so that a
	// participant's death never takes reduce metadata down with it.
	OutputOID types.ObjectID
	Children  []childRef
	IsRoot    bool
	Size      int64
	Op        types.ReduceOp
}

type childRef struct {
	Slot int
	OID  types.ObjectID // the child slot's current OutputOID
}

// pinToShard derives an ObjectID for (slot, epoch) that lands on the same
// directory shard as the base (target) object.
func pinToShard(base types.ObjectID, slot int, epoch int64, shards int) types.ObjectID {
	want := base.Shard(shards)
	for nonce := int64(0); ; nonce++ {
		oid := base.Derive("reduce-slot", int64(slot)<<20|nonce, epoch)
		if oid.Shard(shards) == want {
			return oid
		}
	}
}

// The spec travels in a wire.Message payload using the same fixed-layout
// binary style as the control-plane codec (internal/wire/codec.go): every
// field explicit, big-endian, length-checked on decode.
//
//	[20] reduce id      [20] own oid      [20] output oid
//	u32  slot           u64  epoch        u64  size
//	u8   is-root        u8   op kind      u8   op dtype
//	u32  children count + count × (u32 slot + [20] oid)
const specFixedSize = 3*types.ObjectIDSize + 4 + 8 + 8 + 3 + 4

func encodeSpec(s *reduceSpec) ([]byte, error) {
	if s.Slot < 0 || int64(uint32(s.Slot)) != int64(s.Slot) {
		return nil, fmt.Errorf("core: reduce slot %d out of range", s.Slot)
	}
	b := make([]byte, 0, specFixedSize+len(s.Children)*(4+types.ObjectIDSize))
	b = append(b, s.ReduceID[:]...)
	b = append(b, s.OwnOID[:]...)
	b = append(b, s.OutputOID[:]...)
	b = binary.BigEndian.AppendUint32(b, uint32(s.Slot))
	b = binary.BigEndian.AppendUint64(b, uint64(s.Epoch))
	b = binary.BigEndian.AppendUint64(b, uint64(s.Size))
	var root byte
	if s.IsRoot {
		root = 1
	}
	b = append(b, root, byte(s.Op.Kind), byte(s.Op.DType))
	b = binary.BigEndian.AppendUint32(b, uint32(len(s.Children)))
	for _, c := range s.Children {
		if c.Slot < 0 || int64(uint32(c.Slot)) != int64(c.Slot) {
			return nil, fmt.Errorf("core: child slot %d out of range", c.Slot)
		}
		b = binary.BigEndian.AppendUint32(b, uint32(c.Slot))
		b = append(b, c.OID[:]...)
	}
	return b, nil
}

func decodeSpec(p []byte) (*reduceSpec, error) {
	if len(p) < specFixedSize {
		return nil, fmt.Errorf("core: reduce spec truncated: %d bytes", len(p))
	}
	var s reduceSpec
	off := 0
	off += copy(s.ReduceID[:], p[off:])
	off += copy(s.OwnOID[:], p[off:])
	off += copy(s.OutputOID[:], p[off:])
	s.Slot = int(binary.BigEndian.Uint32(p[off:]))
	off += 4
	s.Epoch = int64(binary.BigEndian.Uint64(p[off:]))
	off += 8
	s.Size = int64(binary.BigEndian.Uint64(p[off:]))
	off += 8
	s.IsRoot = p[off] != 0
	s.Op.Kind = types.OpKind(p[off+1])
	s.Op.DType = types.DType(p[off+2])
	off += 3
	n := int(binary.BigEndian.Uint32(p[off:]))
	off += 4
	// Divide rather than multiply: n is attacker-controlled and the
	// product could overflow int on 32-bit platforms.
	const childSize = 4 + types.ObjectIDSize
	if n < 0 || (len(p)-off)%childSize != 0 || n != (len(p)-off)/childSize {
		return nil, fmt.Errorf("core: reduce spec children length mismatch")
	}
	if n > 0 {
		s.Children = make([]childRef, n)
		for i := range s.Children {
			s.Children[i].Slot = int(binary.BigEndian.Uint32(p[off:]))
			off += 4
			off += copy(s.Children[i].OID[:], p[off:])
		}
	}
	return &s, nil
}

// reduceExec is one running slot executor on a participant node.
type reduceExec struct {
	spec   *reduceSpec
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
}

// handleReduceStart starts (or, on an epoch bump, replaces) a slot
// executor. Replacement is how ancestors of a failed slot "clear the
// reduced object" and restart (§3.5.2, Figure 5b).
func (n *Node) handleReduceStart(m wire.Message) wire.Message {
	var resp wire.Message
	spec, err := decodeSpec(m.Payload)
	if err != nil {
		resp.SetError(fmt.Errorf("core: bad reduce spec: %w", err))
		return resp
	}
	key := execKey{reduceID: spec.ReduceID, slot: spec.Slot}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		resp.SetError(types.ErrClosed)
		return resp
	}
	old := n.execs[key]
	if old != nil && old.spec.Epoch >= spec.Epoch {
		n.mu.Unlock()
		return resp // stale or duplicate start
	}
	ctx, cancel := context.WithCancel(n.ctx)
	e := &reduceExec{spec: spec, ctx: ctx, cancel: cancel, done: make(chan struct{})}
	n.execs[key] = e
	n.mu.Unlock()
	if old != nil {
		old.cancel()
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		defer close(e.done)
		if old != nil {
			// Wait out the superseded executor (off the node lock) before
			// touching its output: for the root slot both epochs share the
			// target OutputOID, so a dying executor still inside its
			// store.Create/Delete sequence would otherwise clobber the
			// replacement's freshly created buffer and wedge the reduce.
			select {
			case <-old.done:
			case <-n.ctx.Done():
				return
			}
			// Drop the superseded epoch's local output so readers abort.
			n.store.Delete(old.spec.OutputOID)
		}
		n.runReduceSlot(e)
	}()
	return resp
}

// handleReduceCancel tears down every executor of a reduce, deleting
// intermediate outputs (the root's target object is kept: it belongs to
// the application until Delete).
func (n *Node) handleReduceCancel(m wire.Message) wire.Message {
	n.mu.Lock()
	var victims []*reduceExec
	for key, e := range n.execs {
		if key.reduceID == m.Target {
			victims = append(victims, e)
			delete(n.execs, key)
		}
	}
	n.mu.Unlock()
	for _, e := range victims {
		e.cancel()
		if !e.spec.IsRoot {
			n.store.Delete(e.spec.OutputOID)
		}
	}
	return wire.Message{}
}

// runReduceSlot streams this slot's reduction: for each pipeline block it
// copies its own object's block and folds in each child subtree's reduced
// block, appending the result to the slot output as soon as the block is
// complete — so blocks flow up the tree while later blocks are still in
// flight (fine-grained pipelining, §3.3).
func (n *Node) runReduceSlot(e *reduceExec) {
	spec := e.spec
	ctx := e.ctx
	outOID := spec.OutputOID

	out, err := n.store.Create(outOID, spec.Size, true)
	if errors.Is(err, types.ErrExists) {
		// Residue from a canceled epoch; replace it.
		n.store.Delete(outOID)
		out, err = n.store.Create(outOID, spec.Size, true)
	}
	if err != nil {
		return
	}
	n.signalStoreChange()
	fail := func(err error) {
		out.Fail(err)
	}
	if err := n.dir.PutStarted(ctx, outOID, spec.Size); err != nil {
		fail(err)
		return
	}

	// Own object: the coordinator placed this slot on a node already
	// holding it, so this is normally a store lookup; after an eviction
	// it becomes a remote fetch.
	own, err := n.ensureLocal(ctx, spec.OwnOID)
	if err != nil {
		fail(err)
		return
	}
	// Children outputs: fetched through the ordinary receiver-driven data
	// plane; each blocks until the child slot is assigned and starts
	// producing. Fetches run concurrently.
	type childSlot struct {
		buf *buffer.Buffer
		err error
	}
	childCh := make([]chan childSlot, len(spec.Children))
	for i, c := range spec.Children {
		childCh[i] = make(chan childSlot, 1)
		go func(i int, c childRef) {
			buf, err := n.ensureLocal(ctx, c.OID)
			childCh[i] <- childSlot{buf, err}
		}(i, c)
	}
	children := make([]*buffer.Buffer, len(spec.Children))

	block := int64(n.cfg.PipelineBlock)
	if es := int64(spec.Op.DType.Size()); es > 0 {
		block -= block % es
	}
	scratch := make([]byte, block)
	waitRange := func(b *buffer.Buffer, end int64) error {
		wm, _, err := b.WaitAt(ctx, end-1)
		if err != nil {
			return err
		}
		if wm < end {
			return fmt.Errorf("core: reduce input short: %d < %d", wm, end)
		}
		return nil
	}
	for off := int64(0); off < spec.Size; off += block {
		end := off + block
		if end > spec.Size {
			end = spec.Size
		}
		if err := waitRange(own, end); err != nil {
			fail(err)
			return
		}
		blk := scratch[:end-off]
		copy(blk, own.Bytes()[off:end])
		for i := range spec.Children {
			if children[i] == nil {
				select {
				case cs := <-childCh[i]:
					if cs.err != nil {
						fail(cs.err)
						return
					}
					children[i] = cs.buf
				case <-ctx.Done():
					fail(ctx.Err())
					return
				}
			}
			if err := waitRange(children[i], end); err != nil {
				fail(err)
				return
			}
			if err := spec.Op.Accumulate(blk, children[i].Bytes()[off:end]); err != nil {
				fail(err)
				return
			}
		}
		if err := out.Append(blk); err != nil {
			return
		}
	}
	out.Seal()
	cctx, cancel := context.WithTimeout(n.ctx, 10*time.Second)
	defer cancel()
	_ = n.dir.PutComplete(cctx, outOID)
}

// assignment tracks which source object fills a tree slot and where.
type assignment struct {
	src  types.ObjectID
	host types.NodeID
}

// Reduce creates target = op-fold over num of the given source objects
// (Table 1). Sources join the reduce tree in the order they become
// available; if num < len(sources), only the earliest num participate,
// and the used sources are returned in slot order. Reduce tolerates up to
// len(sources)-num source/task failures; beyond that it blocks until
// failed tasks are re-executed and their objects reappear (§3.5.2).
func (n *Node) Reduce(ctx context.Context, target types.ObjectID, sources []types.ObjectID, num int, op types.ReduceOp) ([]types.ObjectID, error) {
	if err := op.Validate(); err != nil {
		return nil, err
	}
	if num <= 0 || num > len(sources) {
		return nil, fmt.Errorf("core: reduce num %d out of range [1,%d]", num, len(sources))
	}
	if target.IsZero() {
		return nil, fmt.Errorf("core: reduce target is the zero ObjectID")
	}

	updates := make(chan directory.Update, 4096)
	push := func(u directory.Update) {
		select {
		case updates <- u:
		default: // coordinator re-reads state; dropping is safe
		}
	}
	seen := make(map[types.ObjectID]bool)
	for _, src := range sources {
		if seen[src] {
			return nil, fmt.Errorf("core: duplicate source %v", src)
		}
		seen[src] = true
		rec, err := n.dir.Subscribe(ctx, src, push)
		if err != nil && !errors.Is(err, types.ErrDeleted) {
			return nil, err
		}
		push(directory.Update{OID: src, Size: rec.Size, Locs: rec.Locs, Inline: rec.Inline})
	}
	defer func() {
		uctx, cancel := context.WithTimeout(n.ctx, 5*time.Second)
		defer cancel()
		for _, src := range sources {
			_ = n.dir.Unsubscribe(uctx, src)
		}
		_ = n.dir.Unsubscribe(uctx, target)
	}()

	// Wait for the first available source to learn the object size, which
	// fixes the tree degree.
	var size int64 = types.SizeUnknown
	srcLocs := make(map[types.ObjectID][]types.Location)
	srcInline := make(map[types.ObjectID][]byte)
	var readyOrder []types.ObjectID
	inQueue := make(map[types.ObjectID]bool)
	absorb := func(u directory.Update) {
		if !seen[u.OID] {
			return
		}
		if u.Deleted {
			delete(srcLocs, u.OID)
			delete(srcInline, u.OID)
			return
		}
		if u.Inline != nil {
			srcInline[u.OID] = u.Inline
			if size < 0 {
				size = int64(len(u.Inline))
			}
			if !inQueue[u.OID] {
				inQueue[u.OID] = true
				readyOrder = append(readyOrder, u.OID)
			}
			return
		}
		srcLocs[u.OID] = u.Locs
		if len(u.Locs) > 0 {
			if size < 0 && u.Size >= 0 {
				size = u.Size
			}
			if !inQueue[u.OID] {
				inQueue[u.OID] = true
				readyOrder = append(readyOrder, u.OID)
			}
		}
	}
	for size < 0 {
		select {
		case u := <-updates:
			absorb(u)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	// Small objects live inline in the directory; there is no collective
	// transfer to schedule — the coordinator folds them locally (§3.2).
	if size < n.cfg.InlineThreshold {
		return n.reduceSmall(ctx, target, sources, num, op, size, updates, absorb, srcInline, &readyOrder)
	}
	return n.reduceTree(ctx, target, num, op, size, updates, absorb, srcLocs, &readyOrder, inQueue)
}

// reduceSmall gathers the first num small source payloads at the
// coordinator and publishes the folded result.
func (n *Node) reduceSmall(ctx context.Context, target types.ObjectID, sources []types.ObjectID, num int, op types.ReduceOp, size int64, updates chan directory.Update, absorb func(directory.Update), inline map[types.ObjectID][]byte, readyOrder *[]types.ObjectID) ([]types.ObjectID, error) {
	var used []types.ObjectID
	acc := make([]byte, size)
	next := 0
	for len(used) < num {
		for next < len(*readyOrder) && len(used) < num {
			src := (*readyOrder)[next]
			next++
			payload := inline[src]
			if payload == nil {
				// Stored (not inline) small object: fetch it.
				var err error
				payload, err = n.Get(ctx, src)
				if err != nil {
					continue
				}
			}
			if int64(len(payload)) != size {
				return nil, fmt.Errorf("core: source %v size %d != %d", src, len(payload), size)
			}
			if len(used) == 0 {
				copy(acc, payload)
			} else if err := op.Accumulate(acc, payload); err != nil {
				return nil, err
			}
			used = append(used, src)
		}
		if len(used) >= num {
			break
		}
		select {
		case u := <-updates:
			absorb(u)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if err := n.Put(ctx, target, acc); err != nil && !errors.Is(err, types.ErrExists) {
		return nil, err
	}
	return used, nil
}

// reduceTree runs the dynamic d-ary tree reduce: slots fill with sources
// in arrival order (generalized in-order traversal), specs stream to
// participant hosts, liveness is probed, and failures trigger slot
// replacement plus epoch-bumped restarts of the ancestors (§3.5.2).
func (n *Node) reduceTree(ctx context.Context, target types.ObjectID, num int, op types.ReduceOp, size int64, updates chan directory.Update, absorb func(directory.Update), srcLocs map[types.ObjectID][]types.Location, readyOrder *[]types.ObjectID, inQueue map[types.ObjectID]bool) ([]types.ObjectID, error) {
	d := n.cfg.ReduceDegree
	if d <= 0 {
		// The planner supplies L and B: measured link aggregates once the
		// cluster has traffic history, the configured priors before that.
		lat, bw := n.plan.reduceParams()
		d = chooseDegree(num, lat, bw, size)
	}
	if d > num {
		d = num
	}
	parent, children := treeShape(num, d)
	root := treeRoot(parent)
	isLeaf := func(slot int) bool { return len(children[slot]) == 0 }

	epoch := make([]int64, num)
	outOID := make([]types.ObjectID, num)
	shards := n.dir.NumShards()
	for i := range epoch {
		epoch[i] = 1
		if i == root {
			outOID[i] = target
		} else {
			outOID[i] = pinToShard(target, i, epoch[i], shards)
		}
	}
	assigned := make([]*assignment, num)
	assignedSrc := make(map[types.ObjectID]int) // src -> slot
	nextReady := 0
	// freeSlots returns the unfilled slots, lowest first: by default slots
	// fill in arrival order (in-order traversal positions) and after a
	// failure the vacated slot is refilled by the next ready source
	// ("replaced by the next ready source object", §3.5.2); the planner may
	// steer a slow host to a leaf slot instead.
	freeSlots := func() []int {
		var free []int
		for i, a := range assigned {
			if a == nil {
				free = append(free, i)
			}
		}
		return free
	}

	targetDone := make(chan struct{}, 1)
	trec, err := n.dir.Subscribe(ctx, target, func(u directory.Update) {
		for _, l := range u.Locs {
			if l.Progress.HasAll() {
				select {
				case targetDone <- struct{}{}:
				default:
				}
			}
		}
	})
	if err != nil && !errors.Is(err, types.ErrDeleted) {
		return nil, err
	}
	for _, l := range trec.Locs {
		if l.Progress.HasAll() {
			targetDone <- struct{}{}
			break
		}
	}

	pickHost := func(locs []types.Location) (types.NodeID, bool) {
		var partial types.NodeID
		var ok bool
		for _, l := range locs {
			if l.Progress.HasAll() {
				return l.Node, true
			}
			if !ok {
				partial, ok = l.Node, true
			}
		}
		return partial, ok
	}

	buildSpec := func(slot int) *reduceSpec {
		refs := make([]childRef, 0, len(children[slot]))
		for _, c := range children[slot] {
			refs = append(refs, childRef{Slot: c, OID: outOID[c]})
		}
		return &reduceSpec{
			ReduceID:  target,
			Slot:      slot,
			Epoch:     epoch[slot],
			OwnOID:    assigned[slot].src,
			OutputOID: outOID[slot],
			Children:  refs,
			IsRoot:    slot == root,
			Size:      size,
			Op:        op,
		}
	}

	var failHost func(host types.NodeID)

	sendSpec := func(slot int) {
		spec := buildSpec(slot)
		payload, err := encodeSpec(spec)
		if err != nil {
			return
		}
		host := assigned[slot].host
		c, err := n.peerCtrl(ctx, string(host))
		if err != nil {
			failHost(host)
			return
		}
		cctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		resp, err := c.Call(cctx, wire.Message{Method: wire.MethodReduceStart, Payload: payload})
		cancel()
		if err == nil {
			err = resp.ErrorOf()
		}
		if err != nil {
			n.dropPeer(string(host), c)
			failHost(host)
		}
	}

	// tryAssign fills open slots with ready sources in arrival order; the
	// planner picks which open slot each source gets (lowest free slot by
	// default, a leaf for a measured-slow host).
	tryAssign := func() {
		for {
			free := freeSlots()
			if len(free) == 0 {
				return
			}
			// Find the next ready, unassigned source with a live host.
			var src types.ObjectID
			var host types.NodeID
			found := false
			for nextReady < len(*readyOrder) {
				cand := (*readyOrder)[nextReady]
				nextReady++
				if _, dup := assignedSrc[cand]; dup {
					continue
				}
				if h, ok := pickHost(srcLocs[cand]); ok {
					src, host, found = cand, h, true
					break
				}
				inQueue[cand] = false // became unavailable; may re-arrive
			}
			if !found {
				return
			}
			slot := n.plan.chooseSlot(free, isLeaf, host)
			assigned[slot] = &assignment{src: src, host: host}
			assignedSrc[src] = slot
			sendSpec(slot)
		}
	}

	failHost = func(host types.NodeID) {
		pctx, cancel := context.WithTimeout(n.ctx, 10*time.Second)
		_ = n.dir.PurgeNode(pctx, host)
		cancel()
		// Drop the dead host from our cached locations right away: the
		// purge notification will confirm, but assignment must not route
		// to it in the meantime.
		for src, locs := range srcLocs {
			kept := locs[:0]
			for _, l := range locs {
				if l.Node != host {
					kept = append(kept, l)
				}
			}
			srcLocs[src] = kept
		}
		// Collect this host's slots, lowest (deepest in-order) first.
		var failedSlots []int
		for slot, a := range assigned {
			if a != nil && a.host == host {
				failedSlots = append(failedSlots, slot)
			}
		}
		if len(failedSlots) == 0 {
			return
		}
		restart := make(map[int]bool)
		for _, slot := range failedSlots {
			a := assigned[slot]
			delete(assignedSrc, a.src)
			assigned[slot] = nil
			inQueue[a.src] = false // re-queue only if it re-arrives with a live location
			// The source may survive on another node (an extra copy);
			// requeue it directly in that case.
			if _, ok := pickHost(srcLocs[a.src]); ok {
				inQueue[a.src] = true
				*readyOrder = append(*readyOrder, a.src)
			}
			// The failed slot and all ancestors clear their outputs and
			// restart at a new epoch (Figure 5b).
			for s := slot; s != -1; s = parent[s] {
				restart[s] = true
			}
		}
		// Delete superseded outputs (waking any reader blocked on them),
		// bump epochs and reissue output IDs, then resend specs to live
		// hosts.
		dctx, cancel := context.WithTimeout(n.ctx, 10*time.Second)
		for s := range restart {
			_ = n.Delete(dctx, outOID[s])
		}
		cancel()
		for s := range restart {
			epoch[s]++
			if s == root {
				outOID[s] = target
			} else {
				outOID[s] = pinToShard(target, s, epoch[s], shards)
			}
		}
		for s := range restart {
			if assigned[s] != nil {
				sendSpec(s)
			}
		}
		tryAssign()
	}

	tryAssign()

	// Event loop: absorb arrivals, probe participant liveness, finish
	// when the target object is complete.
	ping := time.NewTicker(n.cfg.PingInterval)
	defer ping.Stop()
	for {
		select {
		case u := <-updates:
			absorb(u)
			tryAssign()
		case <-ping.C:
			hosts := make(map[types.NodeID]bool)
			for _, a := range assigned {
				if a != nil {
					hosts[a.host] = true
				}
			}
			for host := range hosts {
				if host == n.id {
					continue
				}
				c, err := n.peerCtrl(ctx, string(host))
				if err != nil {
					failHost(host)
					continue
				}
				cctx, cancel := context.WithTimeout(ctx, 2*time.Second)
				_, err = c.Call(cctx, wire.Message{Method: wire.MethodPing})
				cancel()
				if err != nil {
					n.dropPeer(string(host), c)
					failHost(host)
				}
			}
		case <-targetDone:
			used := make([]types.ObjectID, 0, num)
			for _, a := range assigned {
				if a != nil {
					used = append(used, a.src)
				}
			}
			n.cleanupReduce(target, assigned)
			return used, nil
		case <-ctx.Done():
			n.cleanupReduce(target, assigned)
			return nil, ctx.Err()
		}
	}
}

// cleanupReduce tells every participant to tear down its executors and
// drop intermediate outputs.
func (n *Node) cleanupReduce(target types.ObjectID, assigned []*assignment) {
	hosts := make(map[types.NodeID]bool)
	for _, a := range assigned {
		if a != nil {
			hosts[a.host] = true
		}
	}
	ctx, cancel := context.WithTimeout(n.ctx, 5*time.Second)
	defer cancel()
	for host := range hosts {
		c, err := n.peerCtrl(ctx, string(host))
		if err != nil {
			continue
		}
		_, _ = c.Call(ctx, wire.Message{Method: wire.MethodReduceCancel, Target: target})
	}
}
