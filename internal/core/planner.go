package core

import (
	"sort"
	"time"

	"hoplite/internal/linkstate"
	"hoplite/internal/types"
)

// planner folds link estimates into the three transfer-planning decisions a
// node makes: which senders a striped Get prefers (and how much each claims
// per trip), what L and B feed the reduce-tree degree model (Eq. 1), and
// which tree slot a ready source is assigned to. The static implementation
// reproduces the legacy equal-links behavior exactly; the link planner
// consults the node's link-state tracker.
type planner interface {
	// rankSenders orders leased senders most-preferred first. The first
	// entry is also what the non-striped fallback keeps.
	rankSenders(senders []types.NodeID) []types.NodeID
	// stripeSpans sizes each ranked sender's per-claim span given the
	// ledger grid chunk: a faster sender claims a longer run of chunks per
	// ClaimNext trip, so the work-stealing split converges on a
	// bandwidth-proportional byte partition with fewer claim round-trips.
	stripeSpans(senders []types.NodeID, base int64) []int64
	// reduceParams yields the latency and bandwidth fed to chooseDegree.
	reduceParams() (time.Duration, float64)
	// chooseSlot picks which free tree slot the next ready source (hosted
	// on host) fills; leaf reports whether a slot has no children.
	chooseSlot(free []int, leaf func(int) bool, host types.NodeID) int
}

// staticPlanner is the degenerate equal-links planner: arrival order,
// equal spans, the configured global scalars. Selected with
// Config.Planner = "static".
type staticPlanner struct {
	latency   time.Duration
	bandwidth float64
}

func (p staticPlanner) rankSenders(s []types.NodeID) []types.NodeID { return s }

func (p staticPlanner) stripeSpans(senders []types.NodeID, base int64) []int64 {
	spans := make([]int64, len(senders))
	for i := range spans {
		spans[i] = base
	}
	return spans
}

func (p staticPlanner) reduceParams() (time.Duration, float64) { return p.latency, p.bandwidth }

func (p staticPlanner) chooseSlot(free []int, _ func(int) bool, _ types.NodeID) int {
	return free[0]
}

// maxSpanFactor caps how much longer a fast sender's claim span may grow
// than the grid chunk: unbounded spans would let one optimistic estimate
// absorb the whole ledger into a single claim, defeating work stealing.
const maxSpanFactor = 4

// slowFraction is the below-the-median cutoff for pushing a reduce
// participant to a leaf slot: only a host measured at less than half the
// median peer bandwidth deviates from arrival-order placement.
const slowFraction = 0.5

// linkPlanner plans against measured per-link estimates, falling back to
// the configured priors where nothing has been measured (which makes it
// behave exactly like staticPlanner on a cold cluster).
type linkPlanner struct {
	links     *linkstate.Tracker
	latency   time.Duration
	bandwidth float64
}

func (p linkPlanner) rankSenders(s []types.NodeID) []types.NodeID {
	if len(s) < 2 {
		return s
	}
	out := append([]types.NodeID(nil), s...)
	sort.SliceStable(out, func(i, j int) bool {
		return p.links.Estimate(out[i]).Bandwidth > p.links.Estimate(out[j]).Bandwidth
	})
	return out
}

func (p linkPlanner) stripeSpans(senders []types.NodeID, base int64) []int64 {
	spans := make([]int64, len(senders))
	bw := make([]float64, len(senders))
	var sum float64
	for i, s := range senders {
		bw[i] = p.links.Estimate(s).Bandwidth
		sum += bw[i]
	}
	mean := sum / float64(len(senders))
	for i := range spans {
		factor := 1.0
		if mean > 0 {
			factor = bw[i] / mean
		}
		// Never below the grid chunk (a slow sender still claims whole
		// chunks; stealing keeps it busy) and never above the cap.
		if factor < 1 {
			factor = 1
		}
		if factor > maxSpanFactor {
			factor = maxSpanFactor
		}
		spans[i] = int64(float64(base) * factor)
	}
	return spans
}

// reduceParams aggregates the measured links into one (L, B) pair for the
// degree model: the mean RTT and mean bandwidth across measured peers.
// Equation 1 models the cluster with scalar L and B, so the mean is the
// faithful reduction; per-slot asymmetry is handled by slot placement, not
// by the degree.
func (p linkPlanner) reduceParams() (time.Duration, float64) {
	var rtt, bw float64
	n := 0
	for _, r := range p.links.Snapshot() {
		if r.Measured {
			rtt += r.RTT.Seconds()
			bw += r.Bandwidth
			n++
		}
	}
	if n == 0 {
		return p.latency, p.bandwidth
	}
	return time.Duration(rtt / float64(n) * float64(time.Second)), bw / float64(n)
}

// chooseSlot keeps the legacy lowest-free-slot fill except for hosts
// measured well below the median peer bandwidth, which are steered to a
// free leaf slot: a leaf uploads its subtree output once and receives
// nothing, so a starved link contributes its object without sitting on
// every descendant's critical path.
func (p linkPlanner) chooseSlot(free []int, leaf func(int) bool, host types.NodeID) int {
	est := p.links.Estimate(host)
	if !est.Measured {
		return free[0]
	}
	med, ok := p.medianMeasuredBandwidth()
	if !ok || est.Bandwidth >= med*slowFraction {
		return free[0]
	}
	for _, s := range free {
		if leaf(s) {
			return s
		}
	}
	return free[0]
}

func (p linkPlanner) medianMeasuredBandwidth() (float64, bool) {
	var bws []float64
	for _, r := range p.links.Snapshot() {
		if r.Measured {
			bws = append(bws, r.Bandwidth)
		}
	}
	if len(bws) == 0 {
		return 0, false
	}
	sort.Float64s(bws)
	return bws[len(bws)/2], true
}
