package core

import (
	"io"
	"sync"
	"sync/atomic"

	"hoplite/internal/buffer"
	"hoplite/internal/types"
)

// refPool recycles ObjectRef handles so the zero-copy read path allocates
// nothing in steady state (BenchmarkGetRef asserts 0 B/op). A handle
// returns to the pool on Release; using a ref after releasing it is a
// caller bug, guarded by a released flag where cheap.
var refPool = sync.Pool{New: func() any { return new(ObjectRef) }}

// ObjectRef is a ref-counted, read-only view over an object in the local
// store — the handle form of the paper's "immutable get" optimization
// (§3.3): no store→worker copy is ever made. While the ref is held the
// store will not evict the underlying buffer (the copy is pinned), so the
// view stays backed by live memory even under store pressure; this is the
// fix for the historical GetImmutable hazard where LRU eviction could
// recycle a slice under a live reader.
//
// The caller must not modify the bytes and must call Release exactly once
// when done; a released ref must not be used again.
type ObjectRef struct {
	oid      types.ObjectID
	buf      *buffer.Buffer
	released atomic.Bool
}

// newRef wraps a complete, already-ref'd buffer in a pooled handle.
func newRef(oid types.ObjectID, buf *buffer.Buffer) *ObjectRef {
	r := refPool.Get().(*ObjectRef)
	r.oid = oid
	r.buf = buf
	r.released.Store(false)
	return r
}

// OID returns the ID of the referenced object.
func (r *ObjectRef) OID() types.ObjectID { return r.oid }

// Size returns the object size in bytes.
func (r *ObjectRef) Size() int64 { return r.checked().Size() }

// Bytes returns the complete payload without copying. The slice is valid
// until Release and must be treated as read-only.
func (r *ObjectRef) Bytes() []byte { return r.checked().Bytes() }

// ReadAt implements io.ReaderAt over the payload. It never blocks: the
// referenced object is always complete.
func (r *ObjectRef) ReadAt(p []byte, off int64) (int, error) {
	data := r.Bytes()
	if off < 0 {
		return 0, types.ErrAborted
	}
	if off >= int64(len(data)) {
		return 0, io.EOF
	}
	n := copy(p, data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Reader returns an io.Reader streaming the payload from the start.
func (r *ObjectRef) Reader() io.Reader { return io.NewSectionReader(r, 0, r.Size()) }

// Release drops the pin, making the copy evictable again, and recycles
// the handle. Release exactly once: handles are pooled, so a second
// Release is a bug on par with a double free — it panics when the handle
// has not been reused yet, and if it has, it silently unpins whatever
// object the recycled handle now backs. Never touch a ref after
// releasing it.
func (r *ObjectRef) Release() {
	if !r.released.CompareAndSwap(false, true) {
		panic("core: ObjectRef released twice")
	}
	buf := r.buf
	r.buf = nil
	r.oid = types.ObjectID{}
	buf.Unref()
	refPool.Put(r)
}

func (r *ObjectRef) checked() *buffer.Buffer {
	buf := r.buf
	if r.released.Load() || buf == nil {
		panic("core: use of released ObjectRef")
	}
	return buf
}
