package core

import (
	"testing"
	"time"

	"hoplite/internal/linkstate"
	"hoplite/internal/types"
)

// seededPlanner returns a link planner whose tracker has absorbed one
// bandwidth sample per entry in bw (bytes/second). Decay is disabled so the
// estimates are exactly the seeded values.
func seededPlanner(priorLat time.Duration, priorBW float64, bw map[types.NodeID]float64) linkPlanner {
	tr := linkstate.New(linkstate.Config{PriorRTT: priorLat, PriorBandwidth: priorBW, HalfLife: -1})
	for peer, b := range bw {
		// One transfer of b bytes over one second yields a first sample
		// that sets the EWMA directly to b.
		tr.ObserveTransfer(peer, int64(b), time.Second)
	}
	return linkPlanner{links: tr, latency: priorLat, bandwidth: priorBW}
}

func TestLinkPlannerRanksSendersByBandwidth(t *testing.T) {
	// Unmeasured "c" sits at the 100 MB/s prior, between the two measured
	// peers, so the ranking exercises measured and prior estimates at once.
	p := seededPlanner(200*time.Microsecond, 100<<20, map[types.NodeID]float64{
		"a": 200 << 20,
		"b": 50 << 20,
	})
	got := p.rankSenders([]types.NodeID{"b", "c", "a"})
	want := []types.NodeID{"a", "c", "b"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rankSenders = %v, want %v", got, want)
		}
	}
}

func TestLinkPlannerStripeSpansProportional(t *testing.T) {
	p := seededPlanner(200*time.Microsecond, 100<<20, map[types.NodeID]float64{
		"fast":  200 << 20,
		"slow1": 50 << 20,
		"slow2": 50 << 20,
	})
	const base = 1 << 20
	spans := p.stripeSpans([]types.NodeID{"fast", "slow1", "slow2"}, base)
	// Mean is 100 MB/s: the fast sender is 2x the mean, the slow ones are
	// below it and clamp up to one grid chunk.
	if spans[0] != 2*base {
		t.Fatalf("fast span = %d, want %d", spans[0], 2*base)
	}
	if spans[1] != base || spans[2] != base {
		t.Fatalf("slow spans = %d/%d, want %d each", spans[1], spans[2], base)
	}
}

func TestLinkPlannerStripeSpanCap(t *testing.T) {
	// One sender measured far above a crowd of slow peers would claim the
	// whole ledger per trip without the cap.
	bw := map[types.NodeID]float64{"fast": 1000 << 20}
	senders := []types.NodeID{"fast"}
	for _, s := range []types.NodeID{"s1", "s2", "s3", "s4", "s5", "s6", "s7"} {
		bw[s] = 1 << 20
		senders = append(senders, s)
	}
	p := seededPlanner(200*time.Microsecond, 100<<20, bw)
	const base = 1 << 20
	spans := p.stripeSpans(senders, base)
	if spans[0] != maxSpanFactor*base {
		t.Fatalf("fast span = %d, want capped %d", spans[0], maxSpanFactor*base)
	}
	for i := 1; i < len(spans); i++ {
		if spans[i] != base {
			t.Fatalf("slow span[%d] = %d, want %d", i, spans[i], base)
		}
	}
}

// With nothing measured the link planner must reproduce the static
// planner's decisions exactly: priors in, arrival order and equal spans out.
func TestLinkPlannerColdMatchesStatic(t *testing.T) {
	lat, bw := 500*time.Microsecond, float64(64<<20)
	lp := seededPlanner(lat, bw, nil)
	sp := staticPlanner{latency: lat, bandwidth: bw}

	senders := []types.NodeID{"x", "y", "z"}
	gotRank := lp.rankSenders(senders)
	for i, s := range sp.rankSenders(senders) {
		if gotRank[i] != s {
			t.Fatalf("cold rankSenders = %v, want arrival order", gotRank)
		}
	}
	gotSpans := lp.stripeSpans(senders, 1<<20)
	for i, s := range sp.stripeSpans(senders, 1<<20) {
		if gotSpans[i] != s {
			t.Fatalf("cold stripeSpans = %v, want equal spans", gotSpans)
		}
	}
	gl, gb := lp.reduceParams()
	if gl != lat || gb != bw {
		t.Fatalf("cold reduceParams = (%v, %g), want priors (%v, %g)", gl, gb, lat, bw)
	}
	free := []int{2, 5}
	if got := lp.chooseSlot(free, func(int) bool { return true }, "x"); got != free[0] {
		t.Fatalf("cold chooseSlot = %d, want lowest free slot %d", got, free[0])
	}
}

// Measured link state must shift the reduce degree away from what the
// priors alone would pick: a fast-prior cluster chooses a binary tree for a
// small reduce, but once the links are measured an order of magnitude
// slower, the bandwidth term dominates and the chain (d=1) wins Eq. 1.
func TestLinkPlannerReduceParamsShiftDegree(t *testing.T) {
	const (
		n    = 16
		size = 64 << 10
	)
	priorLat, priorBW := 200*time.Microsecond, 1.25e9
	p := seededPlanner(priorLat, priorBW, map[types.NodeID]float64{
		"a": 1 << 20,
		"b": 1 << 20,
	})
	p.links.ObserveRTT("a", 200*time.Microsecond)
	p.links.ObserveRTT("b", 200*time.Microsecond)

	dPrior := chooseDegree(n, priorLat, priorBW, size)
	if dPrior != 2 {
		t.Fatalf("degree from priors = %d, want 2", dPrior)
	}
	lat, bw := p.reduceParams()
	if bw > 2<<20 {
		t.Fatalf("measured bandwidth estimate = %g, want ~1 MiB/s", bw)
	}
	if dMeasured := chooseDegree(n, lat, bw, size); dMeasured != 1 {
		t.Fatalf("degree from measured links = %d, want 1 (chain)", dMeasured)
	}
}

// A host measured well below the median peer bandwidth must be steered to
// a free leaf slot of the reduce tree instead of the lowest free slot, so
// its starved link never sits on interior fan-in.
func TestLinkPlannerChooseSlotSteersSlowHostToLeaf(t *testing.T) {
	p := seededPlanner(200*time.Microsecond, 100<<20, map[types.NodeID]float64{
		"h1":   100 << 20,
		"h2":   100 << 20,
		"h3":   100 << 20,
		"slow": 10 << 20, // < slowFraction x median (100 MB/s)
	})
	_, children := treeShape(7, 2)
	isLeaf := func(s int) bool { return len(children[s]) == 0 }
	var interior, leaf int = -1, -1
	for s := 0; s < 7; s++ {
		if isLeaf(s) && leaf < 0 {
			leaf = s
		}
		if !isLeaf(s) && interior < 0 {
			interior = s
		}
	}
	if interior < 0 || leaf < 0 {
		t.Fatal("treeShape(7,2) produced no interior or no leaf slot")
	}
	free := []int{interior, leaf}

	if got := p.chooseSlot(free, isLeaf, "slow"); got != leaf {
		t.Fatalf("slow host assigned slot %d, want leaf %d", got, leaf)
	}
	// A healthy measured host and an unmeasured host keep arrival order.
	if got := p.chooseSlot(free, isLeaf, "h1"); got != interior {
		t.Fatalf("healthy host assigned slot %d, want lowest free %d", got, interior)
	}
	if got := p.chooseSlot(free, isLeaf, "stranger"); got != interior {
		t.Fatalf("unmeasured host assigned slot %d, want lowest free %d", got, interior)
	}
	// With no free leaf left the slow host still gets a slot.
	if got := p.chooseSlot([]int{interior}, isLeaf, "slow"); got != interior {
		t.Fatalf("slow host with no free leaf assigned %d, want %d", got, interior)
	}
}
