// Client-side location cache: the second leg of the small-object fast
// path. A node that has pulled a remote object once remembers where the
// complete copies live, so a repeat Get after local eviction goes
// straight to a known sender over the data plane — zero directory RPCs on
// the warm path. Entries are kept fresh by the directory's push
// notifications (§3.2 asynchronous location query): each cached object
// carries a Watch subscription whose updates rewrite the sender set and
// whose Deleted push drops the entry (and any unregistered local copy it
// produced). A stale hit — every cached sender gone — falls back through
// the normal directory acquire.
package core

import (
	"container/list"
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hoplite/internal/buffer"
	"hoplite/internal/directory"
	"hoplite/internal/transport"
	"hoplite/internal/types"
)

// staleReadTimeout bounds time-to-first-byte on a cached direct pull. A
// sender that no longer holds the object parks the request behind its
// serveBuffer store-change wait (up to 10s); the watchdog converts that
// stall into a quick fallback through the directory.
const staleReadTimeout = 2 * time.Second

// locEntry is one cached object: where its complete (or spilled) copies
// live, as of the last directory response or push.
type locEntry struct {
	oid     types.ObjectID
	size    int64
	gen     int64
	senders []types.NodeID // complete/spilled holders, self excluded
	watch   func()         // Watch cancel; nil until the subscription lands
	armed   bool           // a watch subscription is in flight or live
	local   bool           // an unregistered local store copy exists
	elem    *list.Element
}

// locSnapshot is the lock-free view handed to the pull path.
type locSnapshot struct {
	size    int64
	gen     int64
	senders []types.NodeID
}

// CacheStats counts location-cache activity on one node.
type CacheStats struct {
	Hits          int64 // Gets served from a cached sender set
	Misses        int64 // Gets that consulted the directory
	Stale         int64 // cached pulls whose every sender was gone
	Invalidations int64 // entries dropped by push, eviction, or staleness
	Size          int   // live entries
}

// locCache is a node's LRU cache of directory lookup results.
type locCache struct {
	mu  sync.Mutex
	cap int
	m   map[types.ObjectID]*locEntry
	lru *list.List // front = most recently used

	hits, misses, stale, invals atomic.Int64
}

func newLocCache(capacity int) *locCache {
	return &locCache{
		cap: capacity,
		m:   make(map[types.ObjectID]*locEntry),
		lru: list.New(),
	}
}

// get returns a snapshot of the entry for oid, bumping its recency. A
// miss (or an entry with no live senders) counts as a miss: the caller is
// about to pay a directory round trip.
func (c *locCache) get(oid types.ObjectID) (locSnapshot, bool) {
	c.mu.Lock()
	e, ok := c.m[oid]
	if !ok || len(e.senders) == 0 {
		c.mu.Unlock()
		c.misses.Add(1)
		return locSnapshot{}, false
	}
	c.lru.MoveToFront(e.elem)
	snap := locSnapshot{size: e.size, gen: e.gen, senders: append([]types.NodeID(nil), e.senders...)}
	c.mu.Unlock()
	c.hits.Add(1)
	return snap, true
}

// insert creates or refreshes the entry for oid and returns any entries
// evicted to stay under capacity; the caller releases those (watch
// cancel, unregistered local copies) outside the lock.
func (c *locCache) insert(oid types.ObjectID, size, gen int64, senders []types.NodeID) []*locEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[oid]; ok {
		e.size, e.gen = size, gen
		if senders != nil {
			e.senders = senders
		}
		c.lru.MoveToFront(e.elem)
		return nil
	}
	e := &locEntry{oid: oid, size: size, gen: gen, senders: senders}
	e.elem = c.lru.PushFront(e)
	c.m[oid] = e
	var evicted []*locEntry
	for len(c.m) > c.cap {
		back := c.lru.Back()
		v := back.Value.(*locEntry)
		c.lru.Remove(back)
		delete(c.m, v.oid)
		evicted = append(evicted, v)
		c.invals.Add(1)
	}
	return evicted
}

// update rewrites an existing entry's sender set from a directory push.
// Absent entries are ignored — a push racing an eviction must not
// resurrect the entry.
func (c *locCache) update(oid types.ObjectID, size int64, senders []types.NodeID) {
	c.mu.Lock()
	if e, ok := c.m[oid]; ok {
		if size >= 0 {
			e.size = size
		}
		e.senders = senders
	}
	c.mu.Unlock()
}

// setWatch attaches the Watch cancel to a live entry. ok=false means the
// entry was evicted while the subscription was in flight; the caller
// cancels it itself.
func (c *locCache) setWatch(oid types.ObjectID, cancel func()) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[oid]
	if !ok {
		return false
	}
	e.watch = cancel
	return true
}

// markLocal flags that a cached direct pull materialized an unregistered
// local store copy for oid.
func (c *locCache) markLocal(oid types.ObjectID, local bool) {
	c.mu.Lock()
	if e, ok := c.m[oid]; ok {
		e.local = local
	}
	c.mu.Unlock()
}

// invalidate removes and returns the entry for oid, if present.
func (c *locCache) invalidate(oid types.ObjectID) *locEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[oid]
	if !ok {
		return nil
	}
	c.lru.Remove(e.elem)
	delete(c.m, oid)
	c.invals.Add(1)
	return e
}

func (c *locCache) stats() CacheStats {
	c.mu.Lock()
	n := len(c.m)
	c.mu.Unlock()
	return CacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Stale:         c.stale.Load(),
		Invalidations: c.invals.Load(),
		Size:          n,
	}
}

// CacheStats reports the node's location-cache counters. A zero-size
// cache (LocationCacheSize < 0) reports zeros.
func (n *Node) CacheStats() CacheStats {
	if n.locs == nil {
		return CacheStats{}
	}
	return n.locs.stats()
}

// ---- Node glue -------------------------------------------------------

// completeSenders extracts the nodes holding a servable whole copy
// (complete or spilled) from a location list, excluding this node.
func (n *Node) completeSenders(locs []types.Location) []types.NodeID {
	var out []types.NodeID
	for _, l := range locs {
		if l.Node != n.id && l.Progress.HasAll() {
			out = append(out, l.Node)
		}
	}
	return out
}

// armLocCache records freshly learned locations for oid and, for a new
// entry, establishes the push subscription that keeps it honest. The
// subscription RPC runs off the Get's critical path. seeds lists nodes
// known to hold whole copies (may be nil: the watch record fills them in).
func (n *Node) armLocCache(oid types.ObjectID, size, gen int64, seeds []types.NodeID) {
	if n.locs == nil || n.ctx.Err() != nil {
		return
	}
	var filtered []types.NodeID
	for _, s := range seeds {
		if s != n.id {
			filtered = append(filtered, s)
		}
	}
	evicted := n.locs.insert(oid, size, gen, filtered)
	n.releaseLocEntries(evicted)
	if !n.locs.armWatch(oid) {
		return // refresh of an entry whose subscription is live or in flight
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		ctx, cancel := context.WithTimeout(n.ctx, 10*time.Second)
		defer cancel()
		rec, cancelWatch, err := n.dir.Watch(ctx, oid, func(u directory.Update) { n.onLocUpdate(oid, u) })
		if err != nil {
			cancelWatch()
			n.dropLocEntry(oid)
			return
		}
		if !n.locs.setWatch(oid, cancelWatch) {
			cancelWatch() // evicted while subscribing
			return
		}
		n.locs.update(oid, rec.Size, n.completeSenders(rec.Locs))
	}()
}

// armWatch claims the right to establish oid's subscription: it returns
// true exactly once per entry lifetime, so concurrent cold Gets of the
// same object produce a single Watch.
func (c *locCache) armWatch(oid types.ObjectID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[oid]
	if !ok || e.armed {
		return false
	}
	e.armed = true
	return true
}

// onLocUpdate applies one directory push to the cache. It runs on the
// directory client's notify path, so it must not block.
func (n *Node) onLocUpdate(oid types.ObjectID, u directory.Update) {
	if u.Deleted {
		n.noteTombstone(oid)
		n.dropLocEntry(oid)
		return
	}
	n.locs.update(oid, u.Size, n.completeSenders(u.Locs))
}

// dropLocEntry invalidates oid's cache entry and releases what it owned.
func (n *Node) dropLocEntry(oid types.ObjectID) {
	if n.locs == nil {
		return
	}
	if e := n.locs.invalidate(oid); e != nil {
		n.releaseLocEntries([]*locEntry{e})
	}
}

// releaseLocEntries tears down dead cache entries: cancel their watches
// (an RPC when it is the object's last local subscription — done off the
// caller's path) and drop any unregistered local copies, which only the
// entry's push subscription was keeping honest.
func (n *Node) releaseLocEntries(entries []*locEntry) {
	for _, e := range entries {
		if e.local {
			n.store.Delete(e.oid)
		}
		if e.watch != nil {
			w := e.watch
			n.wg.Add(1)
			go func() { defer n.wg.Done(); w() }()
		}
	}
}

// noteTombstone records that oid was deleted cluster-wide as observed by
// this node (EvictLocal fan-out, a Deleted push, or its own Delete call).
// The inline fast path consults it: an inline payload whose acquire
// overlapped the deletion is served to the caller but never materialized
// in the store, so the eviction fan-out cannot be outrun (resurrection).
func (n *Node) noteTombstone(oid types.ObjectID) {
	now := time.Now()
	n.tombMu.Lock()
	if n.tombs == nil {
		n.tombs = make(map[types.ObjectID]time.Time)
	}
	if len(n.tombs) > 1024 {
		for k, t := range n.tombs {
			if now.Sub(t) > deleteGrace {
				delete(n.tombs, k)
			}
		}
	}
	n.tombs[oid] = now
	n.tombMu.Unlock()
}

// tombstonedSince reports whether oid was tombstoned after the given
// instant (typically a pull's start time).
func (n *Node) tombstonedSince(oid types.ObjectID, since time.Time) bool {
	n.tombMu.Lock()
	t, ok := n.tombs[oid]
	n.tombMu.Unlock()
	return ok && t.After(since)
}

// startCachedPull launches a direct data-plane pull from a cached sender
// set, bypassing the directory. ok=false means the caller should take
// the normal acquire path (size unknown, or the store entry is owned by
// a racing writer).
func (n *Node) startCachedPull(oid types.ObjectID, p *pull, snap locSnapshot) (*buffer.Buffer, bool) {
	if snap.size < 0 {
		return nil, false
	}
	buf, err := n.store.Create(oid, snap.size, false)
	if err != nil {
		return nil, false
	}
	n.signalStoreChange()
	p.buf = buf
	close(p.ready)
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.runCachedPull(oid, p, buf, snap)
	}()
	return buf, true
}

// runCachedPull tries each cached sender in turn over the data plane. No
// lease is held — serveBuffer serves pulls regardless — so a successful
// transfer leaves the copy unregistered: markLocal ties its lifetime to
// the cache entry's push subscription. When every cached sender turns
// out stale the entry is dropped and the transfer falls back through the
// directory with the classic failover loop.
func (n *Node) runCachedPull(oid types.ObjectID, p *pull, buf *buffer.Buffer, snap locSnapshot) {
	ctx := n.ctx
	finish := func() {
		n.mu.Lock()
		if n.pulls[oid] == p {
			delete(n.pulls, oid)
		}
		n.mu.Unlock()
	}
	for _, sender := range snap.senders {
		err := n.directPull(ctx, oid, sender, buf)
		if err == nil {
			n.locs.markLocal(oid, true)
			finish()
			return
		}
		if ctx.Err() != nil {
			buf.Fail(types.ErrClosed)
			finish()
			return
		}
		if errors.Is(err, types.ErrDeleted) {
			n.noteTombstone(oid)
			n.dropLocEntry(oid)
			n.store.Delete(oid) // fails buf with ErrDeleted
			finish()
			return
		}
		// Sender gone or stale: try the next cached copy.
	}
	// Cache miss in disguise: every remembered sender is gone. Drop the
	// entry and fall back through the directory, resuming from whatever
	// prefix the stale attempts managed to land.
	n.locs.stale.Add(1)
	n.dropLocEntry(oid)
	lease, err := n.dir.AcquireSender(ctx, oid, true)
	if err != nil {
		buf.Fail(err)
		n.store.Delete(oid)
		finish()
		return
	}
	var (
		gen int64
		ok  bool
	)
	if buf, gen, ok = n.rebindLease(oid, p, buf, lease, snap.gen); !ok {
		finish()
		return
	}
	n.runPull(oid, p, buf, lease.Sender, gen) // runPull deletes n.pulls[oid]
}

// directPull is one unleased data-plane pull from a cached sender, with a
// time-to-first-byte watchdog: a sender that no longer holds the object
// would otherwise park us behind its serveBuffer wait for up to 10s.
// Once bytes flow, the transfer is governed by the normal failure rules.
func (n *Node) directPull(ctx context.Context, oid types.ObjectID, sender types.NodeID, buf *buffer.Buffer) error {
	addr := string(sender)
	dial := func(c context.Context) (net.Conn, error) { return n.dialData(c, addr) }
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	start := buf.Watermark()
	watchdogDone := make(chan struct{})
	if start < buf.Size() {
		go func() {
			defer close(watchdogDone)
			wctx, wcancel := context.WithTimeout(pctx, staleReadTimeout)
			defer wcancel()
			_, _, _ = buf.WaitAt(wctx, start)
			if pctx.Err() == nil && buf.Watermark() == start {
				cancel() // nothing arrived in time: treat the sender as stale
			}
		}()
	} else {
		close(watchdogDone)
	}
	err := transport.Pull(pctx, dial, n.id, oid, start, buf)
	cancel()
	<-watchdogDone
	if err != nil && pctx.Err() != nil && ctx.Err() == nil && !errors.Is(err, types.ErrDeleted) {
		err = types.ErrNoSender // watchdog fired: report a stale sender
	}
	return err
}
