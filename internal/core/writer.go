package core

import (
	"context"
	"fmt"
	"time"

	"hoplite/internal/buffer"
	"hoplite/internal/types"
)

// ObjectWriter is the streaming producer handle returned by Node.Create:
// an io.Writer over a store buffer whose partial location is already
// registered in the directory, so downstream receivers, broadcast relays
// and streaming reduces pipeline off the chunk ledger while the producer
// is still writing (§3.3) — no full []byte is ever materialized on the
// producer side.
//
// The writer is single-goroutine; exactly one of Seal or Abort must end
// it. After any Write error the object has been torn down and only Abort
// (a no-op then) may follow.
type ObjectWriter struct {
	n       *Node
	ctx     context.Context
	oid     types.ObjectID
	buf     *buffer.Buffer
	size    int64
	written int64
	err     error // sticky failure
	done    bool  // sealed or aborted
}

// Create allocates a new immutable object of exactly size bytes and
// registers its (partial) location, returning a streaming writer for its
// payload. The object is pinned locally until Delete, like Put. Unlike
// Put there is no inline small-object fast path: every Created object
// lives in the store, whatever its size.
//
// ctx governs the admission wait, the directory registration here, and
// Seal. Under Config.MemoryLimit the allocation is admission-controlled:
// when the new object cannot fit — even after demoting or evicting every
// eligible cold object — Create blocks until room appears or ctx is done,
// turning an out-of-memory condition into backpressure instead of
// unbounded growth or failure.
func (n *Node) Create(ctx context.Context, oid types.ObjectID, size int64) (*ObjectWriter, error) {
	if size < 0 {
		return nil, fmt.Errorf("core: create %v with negative size %d", oid, size)
	}
	buf, err := n.store.CreateAdmit(ctx, oid, size, true)
	if err != nil {
		return nil, err
	}
	n.signalStoreChange()
	if err := n.dir.PutStarted(ctx, oid, size); err != nil {
		n.store.Delete(oid)
		return nil, err
	}
	return &ObjectWriter{n: n, ctx: ctx, oid: oid, buf: buf, size: size}, nil
}

// OID returns the object being written.
func (w *ObjectWriter) OID() types.ObjectID { return w.oid }

// Size returns the declared object size.
func (w *ObjectWriter) Size() int64 { return w.size }

// Written returns how many bytes have been accepted so far.
func (w *ObjectWriter) Written() int64 { return w.written }

// Write appends p to the object, advancing the watermark in pipeline
// blocks so concurrent readers stream the new bytes immediately. Writing
// past the declared size, or into an object deleted concurrently, tears
// the object down (store entry and directory location) and returns a
// sticky error.
func (w *ObjectWriter) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	if w.done || (len(p) > 0 && w.written == w.size) {
		// Fully written (possibly awaiting a Seal retry) or spent: the
		// buffer may already be sealed, which Append would panic on.
		return 0, types.ErrClosed
	}
	if w.written+int64(len(p)) > w.size {
		w.teardown(fmt.Errorf("core: write past declared size %d of %v", w.size, w.oid))
		return 0, w.err
	}
	block := w.n.cfg.PipelineBlock
	for off := 0; off < len(p); off += block {
		end := off + block
		if end > len(p) {
			end = len(p)
		}
		if err := w.buf.Append(p[off:end]); err != nil {
			// Mid-write failure (concurrent Delete or node close): the
			// location was registered up front, so remove it — otherwise
			// remote receivers keep getting routed to a dead partial copy.
			w.teardown(err)
			return off, w.err
		}
		w.written += int64(end - off)
	}
	return len(p), nil
}

// Seal marks the object complete and publishes the complete location.
// All declared bytes must have been written. If publishing fails (a
// transient directory error or an expired ctx), the writer is NOT spent:
// the local buffer is already sealed and serving readers, and Seal may
// be retried to publish the complete location — or Abort called to tear
// the object down.
func (w *ObjectWriter) Seal() error {
	if w.err != nil {
		return w.err
	}
	if w.done {
		return types.ErrClosed
	}
	if w.written != w.size {
		w.teardown(fmt.Errorf("core: seal of %v after %d of %d bytes", w.oid, w.written, w.size))
		return w.err
	}
	w.buf.Seal() // idempotent across Seal retries
	if err := w.n.dir.PutComplete(w.ctx, w.oid); err != nil {
		return err
	}
	w.done = true
	return nil
}

// Abort abandons the object: readers blocked on it fail, the store entry
// and directory location are removed. Abort after a successful Seal, a
// Write error, or a previous Abort is a no-op; after a FAILED Seal it
// tears the unpublished object down, which is the cleanup path when the
// caller gives up on retrying Seal.
func (w *ObjectWriter) Abort() error {
	if w.done || w.err != nil {
		return nil
	}
	w.teardown(types.ErrAborted)
	return nil
}

// teardown records the sticky error and removes every trace of the
// half-written object.
func (w *ObjectWriter) teardown(err error) {
	w.err = err
	w.done = true
	w.n.store.Delete(w.oid)
	rctx, cancel := context.WithTimeout(w.n.ctx, 10*time.Second)
	_ = w.n.dir.RemoveLocation(rctx, w.oid)
	cancel()
}
