package core

import (
	"math"
	"time"
)

// treeShape builds the fixed d-ary reduce tree over n slots, where slot i
// is the i-th node visited by a generalized in-order traversal (first
// child subtree, the node itself, then the remaining child subtrees,
// §3.4.2). Because objects are assigned to slots in arrival order, every
// slot's first-child subtree is fully assigned before the slot itself —
// which is what lets early arrivals start reducing immediately (Figure 5).
//
// It returns, for each slot, its parent slot (-1 for the root) and its
// children slots (in traversal order).
func treeShape(n, d int) (parent []int, children [][]int) {
	if n <= 0 {
		return nil, nil
	}
	if d < 1 {
		d = 1
	}
	parent = make([]int, n)
	children = make([][]int, n)
	for i := range parent {
		parent[i] = -1
	}
	var build func(lo, hi int) int
	build = func(lo, hi int) int {
		k := hi - lo
		if k <= 0 {
			return -1
		}
		if k == 1 {
			return lo
		}
		// Split the k-1 non-root slots into d balanced subtrees. The
		// first subtree occupies [lo, lo+s0); the root sits right after
		// it (in-order position), then the remaining subtrees follow.
		rest := k - 1
		base := rest / d
		rem := rest % d
		sizes := make([]int, d)
		for i := range sizes {
			sizes[i] = base
			if i < rem {
				sizes[i]++
			}
		}
		root := lo + sizes[0]
		if c := build(lo, lo+sizes[0]); c >= 0 {
			parent[c] = root
			children[root] = append(children[root], c)
		}
		off := root + 1
		for i := 1; i < d; i++ {
			if sizes[i] == 0 {
				continue
			}
			if c := build(off, off+sizes[i]); c >= 0 {
				parent[c] = root
				children[root] = append(children[root], c)
			}
			off += sizes[i]
		}
		return root
	}
	build(0, n)
	return parent, children
}

// treeRoot returns the root slot of the (n, d) tree.
func treeRoot(parent []int) int {
	for i, p := range parent {
		if p == -1 {
			return i
		}
	}
	return -1
}

// treeHeight returns the number of edges on the longest root-to-leaf path.
func treeHeight(parent []int) int {
	depth := make([]int, len(parent))
	maxDepth := 0
	var depthOf func(i int) int
	depthOf = func(i int) int {
		if parent[i] == -1 {
			return 0
		}
		if depth[i] > 0 {
			return depth[i]
		}
		depth[i] = depthOf(parent[i]) + 1
		return depth[i]
	}
	for i := range parent {
		if d := depthOf(i); d > maxDepth {
			maxDepth = d
		}
	}
	return maxDepth
}

// estimateReduceTime evaluates the paper's reduce cost model (Equation 1):
//
//	T(1) = n·L + S/B          (chain; latency per hop, pipelined payload)
//	T(d) = L·⌈log_d n⌉ + d·S/B (d-ary tree)
//
// with d = n giving L + n·S/B.
func estimateReduceTime(d, n int, latency time.Duration, bandwidth float64, size int64) time.Duration {
	l := latency.Seconds()
	sb := float64(size) / bandwidth
	var t float64
	switch {
	case n <= 1:
		t = l + sb
	case d <= 1:
		t = float64(n)*l + sb
	case d >= n:
		t = l + float64(n)*sb
	default:
		t = l*math.Ceil(math.Log(float64(n))/math.Log(float64(d))) + float64(d)*sb
	}
	return time.Duration(t * float64(time.Second))
}

// chooseDegree picks the reduce tree degree among {1, 2, n} minimizing the
// estimated completion time, as the implementation does at runtime (§4:
// "setting d to 1, 2, or n ... is enough for our applications").
func chooseDegree(n int, latency time.Duration, bandwidth float64, size int64) int {
	if n <= 2 {
		return n
	}
	best, bestT := 1, estimateReduceTime(1, n, latency, bandwidth, size)
	for _, d := range []int{2, n} {
		if t := estimateReduceTime(d, n, latency, bandwidth, size); t < bestT {
			best, bestT = d, t
		}
	}
	return best
}
