package core

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"hoplite/internal/types"
)

// validateTree checks structural invariants of an (n, d) reduce tree.
func validateTree(t *testing.T, n, d int) {
	t.Helper()
	parent, children := treeShape(n, d)
	if len(parent) != n || len(children) != n {
		t.Fatalf("(%d,%d): lengths %d/%d", n, d, len(parent), len(children))
	}
	roots := 0
	for i, p := range parent {
		if p == -1 {
			roots++
			continue
		}
		if p < 0 || p >= n {
			t.Fatalf("(%d,%d): slot %d parent %d out of range", n, d, i, p)
		}
		found := false
		for _, c := range children[p] {
			if c == i {
				found = true
			}
		}
		if !found {
			t.Fatalf("(%d,%d): slot %d not in parent %d's children", n, d, i, p)
		}
	}
	if roots != 1 {
		t.Fatalf("(%d,%d): %d roots", n, d, roots)
	}
	for i, cs := range children {
		if len(cs) > d {
			t.Fatalf("(%d,%d): slot %d has %d children (> d)", n, d, i, len(cs))
		}
	}
	// Acyclic and connected: every slot reaches the root.
	root := treeRoot(parent)
	for i := range parent {
		cur := i
		for steps := 0; cur != root; steps++ {
			if steps > n {
				t.Fatalf("(%d,%d): slot %d does not reach root", n, d, i)
			}
			cur = parent[cur]
		}
	}
}

func TestTreeShapeInvariants(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 6, 7, 8, 13, 16, 31, 64} {
		for _, d := range []int{1, 2, 3, 4, n} {
			if d < 1 {
				continue
			}
			validateTree(t, n, d)
		}
	}
}

func TestTreeShapeProperty(t *testing.T) {
	fn := func(nRaw, dRaw uint8) bool {
		n := int(nRaw%100) + 1
		d := int(dRaw%8) + 1
		parent, children := treeShape(n, d)
		seen := make([]bool, n)
		var walk func(i int) bool
		walk = func(i int) bool {
			if i < 0 || i >= n || seen[i] {
				return false
			}
			seen[i] = true
			for _, c := range children[i] {
				if !walk(c) {
					return false
				}
			}
			return true
		}
		if !walk(treeRoot(parent)) {
			return false
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestTreeChainShape verifies d=1 produces the paper's chain: slot i's
// parent is slot i+1, so the earliest arrival is the deepest leaf and
// each new arrival extends the pipeline (§3.4.2).
func TestTreeChainShape(t *testing.T) {
	parent, children := treeShape(6, 1)
	for i := 0; i < 5; i++ {
		if parent[i] != i+1 {
			t.Fatalf("slot %d parent %d, want %d", i, parent[i], i+1)
		}
	}
	if parent[5] != -1 {
		t.Fatal("slot 5 is not the root")
	}
	for i := 1; i < 6; i++ {
		if len(children[i]) != 1 || children[i][0] != i-1 {
			t.Fatalf("slot %d children %v", i, children[i])
		}
	}
}

// TestTreeStarShape verifies d=n produces the 1-level star rooted at the
// second arrival? No — in-order with one subtree of size 0 first: the
// star root must be the earliest possible position such that all other
// slots are its children.
func TestTreeStarShape(t *testing.T) {
	n := 7
	parent, children := treeShape(n, n)
	root := treeRoot(parent)
	if len(children[root]) != n-1 {
		t.Fatalf("root has %d children, want %d", len(children[root]), n-1)
	}
	if treeHeight(parent) != 1 {
		t.Fatalf("height %d, want 1", treeHeight(parent))
	}
}

// TestTreeFigure5Shape reproduces the paper's Figure 5 example: 6 objects,
// binary tree, arrival order R1..R6 — R1 is a leaf and the root sits at
// in-order position 3 (R4), whose failure handling the paper walks
// through.
func TestTreeFigure5Shape(t *testing.T) {
	parent, _ := treeShape(6, 2)
	if root := treeRoot(parent); root != 3 {
		t.Fatalf("root slot %d, want 3 (R4)", root)
	}
	if parent[0] == -1 || len(parentChildren(parent, 0)) != 0 {
		t.Fatal("R1 must be a leaf")
	}
}

func parentChildren(parent []int, slot int) []int {
	var out []int
	for i, p := range parent {
		if p == slot {
			out = append(out, i)
		}
	}
	return out
}

func TestTreeHeightLogarithmic(t *testing.T) {
	for _, n := range []int{8, 16, 32, 64, 100} {
		parent, _ := treeShape(n, 2)
		h := treeHeight(parent)
		bound := int(2*math.Log2(float64(n))) + 2
		if h > bound {
			t.Fatalf("n=%d: height %d exceeds %d", n, h, bound)
		}
	}
}

func TestEstimateReduceTimeModel(t *testing.T) {
	L := time.Millisecond
	B := 1e9
	near := func(got, want time.Duration) bool {
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		return diff < time.Millisecond/10
	}
	// Chain: n·L + S/B.
	if got := estimateReduceTime(1, 10, L, B, 1e9); !near(got, 10*L+time.Second) {
		t.Fatalf("chain estimate %v", got)
	}
	// Star: L + n·S/B.
	if got := estimateReduceTime(10, 10, L, B, 1e8); !near(got, L+time.Second) {
		t.Fatalf("star estimate %v", got)
	}
}

func TestChooseDegreeRegimes(t *testing.T) {
	L := 200 * time.Microsecond
	B := 1.25e9
	// Tiny objects: latency dominates → star (d = n), Appendix B.
	if d := chooseDegree(16, L, B, 4<<10); d != 16 {
		t.Fatalf("4KB: d=%d, want n", d)
	}
	// Huge objects: bandwidth dominates → chain (d = 1).
	if d := chooseDegree(16, L, B, 1<<30); d != 1 {
		t.Fatalf("1GB: d=%d, want 1", d)
	}
	// n <= 2 degenerates.
	if chooseDegree(1, L, B, 1) != 1 || chooseDegree(2, L, B, 1) != 2 {
		t.Fatal("degenerate degree wrong")
	}
}

// Property: chooseDegree picks the argmin of the cost model over {1,2,n}.
func TestChooseDegreeIsArgmin(t *testing.T) {
	fn := func(nRaw uint8, sizeRaw uint32) bool {
		n := int(nRaw%62) + 3
		size := int64(sizeRaw)%(64<<20) + 1
		L := 200 * time.Microsecond
		B := 1.25e9
		best := chooseDegree(n, L, B, size)
		bestT := estimateReduceTime(best, n, L, B, size)
		for _, d := range []int{1, 2, n} {
			if estimateReduceTime(d, n, L, B, size) < bestT {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPinToShard(t *testing.T) {
	base := treeTestOID()
	for shards := 1; shards <= 9; shards++ {
		want := base.Shard(shards)
		for slot := 0; slot < 5; slot++ {
			oid := pinToShard(base, slot, 1, shards)
			if oid.Shard(shards) != want {
				t.Fatalf("shards=%d slot=%d: pinned to %d, want %d", shards, slot, oid.Shard(shards), want)
			}
			if oid == base {
				t.Fatal("pinned oid equals base")
			}
		}
	}
}

func treeTestOID() types.ObjectID {
	var o types.ObjectID
	for i := range o {
		o[i] = byte(i)
	}
	return o
}
