package core

import (
	"reflect"
	"testing"

	"hoplite/internal/types"
)

func TestReduceSpecRoundTrip(t *testing.T) {
	specs := []reduceSpec{
		{},
		{
			ReduceID:  types.ObjectIDFromString("target"),
			Slot:      3,
			Epoch:     7,
			OwnOID:    types.ObjectIDFromString("own"),
			OutputOID: types.ObjectIDFromString("out"),
			Children: []childRef{
				{Slot: 1, OID: types.ObjectIDFromString("c1")},
				{Slot: 2, OID: types.ObjectIDFromString("c2")},
			},
			IsRoot: true,
			Size:   1 << 30,
			Op:     types.ReduceOp{Kind: types.Min, DType: types.F64},
		},
	}
	for i := range specs {
		p, err := encodeSpec(&specs[i])
		if err != nil {
			t.Fatal(err)
		}
		got, err := decodeSpec(p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(&specs[i], got) && !(len(specs[i].Children) == 0 && len(got.Children) == 0) {
			t.Fatalf("spec %d mismatch:\nsent %+v\ngot  %+v", i, specs[i], got)
		}
	}
}

func TestReduceSpecDecodeRejectsCorrupt(t *testing.T) {
	good, err := encodeSpec(&reduceSpec{Children: []childRef{{Slot: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range [][]byte{nil, good[:10], good[:len(good)-1], append(append([]byte{}, good...), 1)} {
		if _, err := decodeSpec(p); err == nil {
			t.Fatalf("corrupt spec of %d bytes accepted", len(p))
		}
	}
}
