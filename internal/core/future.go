package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"hoplite/internal/types"
)

// Future is the async result of a Hoplite operation. It resolves exactly
// once, either with a value or an error; Done never closes before the
// result is set. Futures are resolved event-driven — completion rides the
// buffer's OnDone watcher list instead of a goroutine parked per waiter,
// which is what lets a node serve thousands of outstanding Gets without a
// goroutine each.
type Future[T any] struct {
	mu       sync.Mutex
	done     chan struct{}
	resolved bool
	val      T
	err      error
	subs     []func(T, error)
}

func newFuture[T any]() *Future[T] { return &Future[T]{done: make(chan struct{})} }

// Done returns a channel closed when the future has resolved. After it is
// closed, Await returns immediately.
func (f *Future[T]) Done() <-chan struct{} { return f.done }

// Await blocks until the future resolves or ctx is done. A ctx
// cancellation abandons the wait, not the underlying operation: transfers
// keep running in the node (a pull outlives the requesting call, like a
// real store) and the future may still resolve for other waiters. A
// resolved future always returns its result, even from a dead ctx —
// callers holding resources in the result (a pinned ObjectRef) must see
// it to release it.
func (f *Future[T]) Await(ctx context.Context) (T, error) {
	select {
	case <-f.done:
		return f.val, f.err
	case <-ctx.Done():
		// The select picks randomly when both channels are ready; never
		// report cancellation for a future that has already resolved.
		select {
		case <-f.done:
			return f.val, f.err
		default:
		}
		var zero T
		return zero, ctx.Err()
	}
}

// complete resolves the future, reporting whether this call won the race.
// Subscribers run synchronously in the winner's goroutine.
func (f *Future[T]) complete(v T, err error) bool {
	f.mu.Lock()
	if f.resolved {
		f.mu.Unlock()
		return false
	}
	f.resolved = true
	f.val, f.err = v, err
	subs := f.subs
	f.subs = nil
	close(f.done)
	f.mu.Unlock()
	for _, fn := range subs {
		fn(v, err)
	}
	return true
}

// subscribe registers fn to run once the future resolves; it runs
// synchronously if the future already has.
func (f *Future[T]) subscribe(fn func(T, error)) {
	f.mu.Lock()
	if f.resolved {
		v, err := f.val, f.err
		f.mu.Unlock()
		fn(v, err)
		return
	}
	f.subs = append(f.subs, fn)
	f.mu.Unlock()
}

func (f *Future[T]) isResolved() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}

// GetRefAsync starts fetching the object and returns a future resolving
// to a pinned zero-copy view (see GetRef). If the object is already local
// and complete the future resolves before GetRefAsync returns, with no
// goroutine spawned; otherwise one short-lived goroutine drives the
// sender acquisition and exits as soon as the local buffer exists —
// completion is then watcher-driven. Canceling ctx resolves the future
// with the ctx error (any later-arriving pin is released); the underlying
// pull keeps running, like a real store.
//
// The caller must Release the resolved ref. Await the future even when
// abandoning the operation: a canceled ctx makes the future resolve with
// the ctx error if the object had not arrived, but a future that already
// resolved holds a pinned ref that only the caller can release (Await
// returns a resolved future's ref even from a dead ctx).
func (n *Node) GetRefAsync(ctx context.Context, oid types.ObjectID) *Future[*ObjectRef] {
	f := newFuture[*ObjectRef]()
	stop := context.AfterFunc(ctx, func() {
		f.complete(nil, ctx.Err())
	})
	f.subscribe(func(*ObjectRef, error) { stop() })
	n.driveGetRef(ctx, oid, f, time.Now().Add(deleteGrace))
	return f
}

// resolveRef hands a pinned ref to the future, dropping the pin if the
// future was already resolved (canceled or raced).
func resolveRef(f *Future[*ObjectRef], ref *ObjectRef) {
	if !f.complete(ref, nil) {
		ref.Release()
	}
}

// driveGetRef is one attempt of the async state machine behind
// GetRefAsync. It mirrors GetRef: fast path on a local complete copy,
// otherwise acquire + watcher, with transient deletions re-driven inside
// the deleteGrace window.
func (n *Node) driveGetRef(ctx context.Context, oid types.ObjectID, f *Future[*ObjectRef], deadline time.Time) {
	if buf, ok := n.store.Acquire(oid); ok {
		if buf.Complete() {
			resolveRef(f, newRef(oid, buf))
			return
		}
		buf.Unref()
	}
	go func() {
		buf, err := n.ensureLocal(ctx, oid)
		if err != nil {
			n.asyncRetry(ctx, oid, f, deadline, err)
			return
		}
		buf.OnDone(func(err error) {
			if err != nil {
				n.asyncRetry(ctx, oid, f, deadline, err)
				return
			}
			pinned, ok := n.store.Acquire(oid)
			if !ok {
				// Evicted between sealing and pinning: transient, re-pull.
				n.asyncRetry(ctx, oid, f, deadline, types.ErrAborted)
				return
			}
			if !pinned.Complete() {
				// The entry was replaced by a newer generation still
				// filling; re-drive and wait on the replacement.
				pinned.Unref()
				n.asyncRetry(ctx, oid, f, deadline, types.ErrAborted)
				return
			}
			resolveRef(f, newRef(oid, pinned))
		})
	}()
}

// asyncRetry is retryTransient for the watcher-driven path: transient
// deletion errors re-drive the get after the same 50 ms pause (via a
// timer, not a parked goroutine); anything else, or the grace window
// expiring, resolves the future with the error.
func (n *Node) asyncRetry(ctx context.Context, oid types.ObjectID, f *Future[*ObjectRef], deadline time.Time, err error) {
	if f.isResolved() {
		return
	}
	transient := errors.Is(err, types.ErrDeleted) || errors.Is(err, types.ErrAborted)
	if !transient || ctx.Err() != nil || time.Now().After(deadline) {
		f.complete(nil, err)
		return
	}
	time.AfterFunc(50*time.Millisecond, func() {
		if !f.isResolved() {
			n.driveGetRef(ctx, oid, f, deadline)
		}
	})
}

// GetAsync is the future form of Get: it resolves to a private copy of
// the object. The copy-out runs on its own goroutine once the object
// completes — never in the resolver's: the resolver is typically the
// data-plane pull goroutine firing OnDone watchers, which must stay
// cheap so the sender lease is released and the complete location
// registered without waiting behind large memcpys.
func (n *Node) GetAsync(ctx context.Context, oid types.ObjectID) *Future[[]byte] {
	f := newFuture[[]byte]()
	n.GetRefAsync(ctx, oid).subscribe(func(ref *ObjectRef, err error) {
		if err != nil {
			f.complete(nil, err)
			return
		}
		go func() {
			if ctx.Err() != nil {
				// Nobody is waiting for the bytes; skip the full-object
				// allocation and copy.
				ref.Release()
				f.complete(nil, ctx.Err())
				return
			}
			data := append([]byte(nil), ref.Bytes()...)
			ref.Release()
			f.complete(data, nil)
		}()
	})
	return f
}

// GetAll fetches a batch of objects concurrently — every fetch is in
// flight at once through the normal pull machinery — and blocks until all
// have resolved, returning payloads in input order. The first failure
// aborts the wait (in-flight pulls continue server-side).
func (n *Node) GetAll(ctx context.Context, oids []types.ObjectID) ([][]byte, error) {
	futs := make([]*Future[[]byte], len(oids))
	for i, oid := range oids {
		futs[i] = n.GetAsync(ctx, oid)
	}
	out := make([][]byte, len(oids))
	for i, f := range futs {
		v, err := f.Await(ctx)
		if err != nil {
			return nil, fmt.Errorf("core: get %v: %w", oids[i], err)
		}
		out[i] = v
	}
	return out, nil
}

// ReduceAsync is the future form of Reduce. The coordinator event loop is
// inherently active, so it runs in one goroutine for the lifetime of the
// reduce (not per blocked waiter); the future resolves with the sources
// used, exactly as Reduce returns them.
func (n *Node) ReduceAsync(ctx context.Context, target types.ObjectID, sources []types.ObjectID, num int, op types.ReduceOp) *Future[[]types.ObjectID] {
	f := newFuture[[]types.ObjectID]()
	go func() {
		used, err := n.Reduce(ctx, target, sources, num, op)
		f.complete(used, err)
	}()
	return f
}
