package core

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"hoplite/internal/buffer"
	"hoplite/internal/directory"
	"hoplite/internal/netem"
	"hoplite/internal/store"
	"hoplite/internal/transport"
	"hoplite/internal/types"
	"hoplite/internal/wire"
)

// Plane-select magic bytes: a dialer's first byte routes the connection to
// the control plane (wire RPC: directory shard + reduce control) or the
// data plane (transport pulls). One listener per node keeps NodeID — the
// node's address — sufficient to reach both planes.
const (
	magicCtrl byte = 0xC1
	magicData byte = 0xD1
)

// Node is one Hoplite object-store node: local store, directory client,
// data-plane server, control server, and optionally one directory shard.
type Node struct {
	cfg  Config
	name string
	id   types.NodeID

	fab     netem.Fabric
	ln      net.Listener
	store   *store.Store
	dir     *directory.Client
	shard   *directory.Server
	dataSrv *transport.Server
	ctrlSrv *wire.Server
	dataLn  *chanListener
	ctrlLn  *chanListener

	ctx    context.Context
	cancel context.CancelFunc

	mu          sync.Mutex
	pulls       map[types.ObjectID]*pull
	execs       map[execKey]*reduceExec
	peers       map[string]*wire.Client
	storeChange chan struct{}
	closed      bool

	wg sync.WaitGroup
}

type execKey struct {
	reduceID types.ObjectID
	slot     int
}

// NewNode creates and starts a node. If cfg.DirectoryShards is empty and
// cfg.HostShard is set, the node's own address becomes the only shard.
func NewNode(cfg Config) (*Node, error) {
	c := cfg.withDefaults()
	if c.Fabric == nil {
		return nil, fmt.Errorf("core: Config.Fabric is required")
	}
	name := c.Name
	ln := c.Listener
	if ln == nil {
		var err error
		ln, err = c.Fabric.Listen(nameOrTemp(name))
		if err != nil {
			return nil, fmt.Errorf("core: listen: %w", err)
		}
	}
	addr := ln.Addr().String()
	if name == "" {
		name = addr
	}
	n := &Node{
		cfg:         c,
		name:        name,
		id:          types.NodeID(addr),
		fab:         c.Fabric,
		ln:          ln,
		pulls:       make(map[types.ObjectID]*pull),
		execs:       make(map[execKey]*reduceExec),
		peers:       make(map[string]*wire.Client),
		storeChange: make(chan struct{}),
	}
	n.ctx, n.cancel = context.WithCancel(context.Background())
	n.store = store.New(c.StoreCapacity, n.onEvict)

	shards := c.DirectoryShards
	if c.HostShard {
		n.shard = directory.NewServer()
		if len(shards) == 0 {
			shards = []string{addr}
		}
	}
	if len(shards) == 0 {
		ln.Close()
		return nil, fmt.Errorf("core: no directory shards configured")
	}
	n.dir = directory.NewClient(n.id, shards, n.dialCtrl)

	n.dataLn = newChanListener(ln.Addr())
	n.ctrlLn = newChanListener(ln.Addr())
	n.dataSrv = transport.NewServer(n.dataLn, n.serveBuffer, c.ChunkSize, n.onSendFailure)
	n.ctrlSrv = wire.NewServer(n.ctrlLn, n.handleCtrl)

	n.wg.Add(3)
	go func() { defer n.wg.Done(); n.acceptLoop() }()
	go func() { defer n.wg.Done(); _ = n.dataSrv.Serve() }()
	go func() { defer n.wg.Done(); _ = n.ctrlSrv.Serve() }()
	return n, nil
}

func nameOrTemp(name string) string {
	if name == "" {
		return "node-pending"
	}
	return name
}

// ID returns the node's identity: its listen address.
func (n *Node) ID() types.NodeID { return n.id }

// Addr returns the node's listen address (same string as ID).
func (n *Node) Addr() string { return string(n.id) }

// Directory exposes the node's directory client (used by tests and tools).
func (n *Node) Directory() *directory.Client { return n.dir }

// Store exposes the node's local store (used by tests and tools).
func (n *Node) Store() *store.Store { return n.store }

// DataStats reports the node's data-plane serve counters: how many pulls
// (and ranged striped pulls) this node's store served to receivers.
func (n *Node) DataStats() transport.Stats { return n.dataSrv.Stats() }

func (n *Node) acceptLoop() {
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			n.dataLn.Close()
			n.ctrlLn.Close()
			return
		}
		go n.routeConn(conn)
	}
}

// routeConn reads the plane-select magic byte and hands the connection to
// the right server.
func (n *Node) routeConn(conn net.Conn) {
	var magic [1]byte
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := conn.Read(magic[:]); err != nil {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	switch magic[0] {
	case magicData:
		if !n.dataLn.deliver(conn) {
			conn.Close()
		}
	case magicCtrl:
		if !n.ctrlLn.deliver(conn) {
			conn.Close()
		}
	default:
		conn.Close()
	}
}

func (n *Node) dialPlane(ctx context.Context, addr string, magic byte) (net.Conn, error) {
	conn, err := n.fab.Dial(ctx, n.name, addr)
	if err != nil {
		return nil, err
	}
	if _, err := conn.Write([]byte{magic}); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

func (n *Node) dialCtrl(ctx context.Context, addr string) (net.Conn, error) {
	return n.dialPlane(ctx, addr, magicCtrl)
}

func (n *Node) dialData(ctx context.Context, addr string) (net.Conn, error) {
	return n.dialPlane(ctx, addr, magicData)
}

// peerCtrl returns a cached control-plane RPC client to a peer node.
func (n *Node) peerCtrl(ctx context.Context, addr string) (*wire.Client, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, types.ErrClosed
	}
	if c, ok := n.peers[addr]; ok {
		n.mu.Unlock()
		return c, nil
	}
	n.mu.Unlock()
	conn, err := n.dialCtrl(ctx, addr)
	if err != nil {
		return nil, err
	}
	c := wire.NewClient(conn, nil)
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		c.Close()
		return nil, types.ErrClosed
	}
	if existing, ok := n.peers[addr]; ok {
		n.mu.Unlock()
		c.Close()
		return existing, nil
	}
	n.peers[addr] = c
	n.mu.Unlock()
	return c, nil
}

// dropPeer discards a (possibly broken) cached peer connection.
func (n *Node) dropPeer(addr string, c *wire.Client) {
	n.mu.Lock()
	if n.peers[addr] == c {
		delete(n.peers, addr)
	}
	n.mu.Unlock()
	c.Close()
}

// handleCtrl dispatches control-plane requests: directory methods go to
// the hosted shard, reduce and eviction methods to the node itself.
func (n *Node) handleCtrl(ctx context.Context, m wire.Message, p *wire.Peer) wire.Message {
	switch m.Method {
	case wire.MethodReduceStart:
		return n.handleReduceStart(m)
	case wire.MethodReduceCancel:
		return n.handleReduceCancel(m)
	case wire.MethodEvictLocal:
		n.store.Delete(m.OID)
		return wire.Message{}
	case wire.MethodPing:
		return wire.Message{Method: wire.MethodPing}
	default:
		if n.shard != nil {
			return n.shard.Handler()(ctx, m, p)
		}
		var resp wire.Message
		resp.Err = "core: node hosts no directory shard"
		return resp
	}
}

// onSendFailure clears a dead receiver's directory lease after the data
// plane saw its socket break (§5.5).
func (n *Node) onSendFailure(oid types.ObjectID, receiver types.NodeID) {
	ctx, cancel := context.WithTimeout(n.ctx, 5*time.Second)
	defer cancel()
	_ = n.dir.AbortDownstream(ctx, oid, receiver)
}

// onEvict removes the evicted copy's directory location (best effort).
func (n *Node) onEvict(oid types.ObjectID) {
	ctx, cancel := context.WithTimeout(n.ctx, 5*time.Second)
	defer cancel()
	_ = n.dir.RemoveLocation(ctx, oid)
}

// signalStoreChange wakes serveBuffer waiters after a store insert.
func (n *Node) signalStoreChange() {
	n.mu.Lock()
	close(n.storeChange)
	n.storeChange = make(chan struct{})
	n.mu.Unlock()
}

// serveBuffer resolves pull requests against the local store. A freshly
// leased receiver may be asked for the object a moment before its local
// buffer exists (its Acquire response is still in flight), so absence
// waits briefly for creation.
func (n *Node) serveBuffer(ctx context.Context, oid types.ObjectID) (*buffer.Buffer, error) {
	deadline := time.Now().Add(10 * time.Second)
	for {
		if buf, ok := n.store.Get(oid); ok {
			return buf, nil
		}
		n.mu.Lock()
		ch := n.storeChange
		n.mu.Unlock()
		if time.Now().After(deadline) {
			return nil, types.ErrNotFound
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(time.Until(deadline)):
			return nil, types.ErrNotFound
		}
	}
}

// Close shuts the node down: all servers, connections and buffers are
// released. In-flight operations fail with ErrClosed.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	peers := make([]*wire.Client, 0, len(n.peers))
	for _, c := range n.peers {
		peers = append(peers, c)
	}
	n.peers = make(map[string]*wire.Client)
	execs := make([]*reduceExec, 0, len(n.execs))
	for _, e := range n.execs {
		execs = append(execs, e)
	}
	n.execs = make(map[execKey]*reduceExec)
	n.mu.Unlock()

	n.cancel()
	for _, e := range execs {
		e.cancel()
	}
	n.ln.Close()
	n.ctrlSrv.Close()
	n.dataSrv.Close()
	for _, c := range peers {
		c.Close()
	}
	n.dir.Close()
	n.store.Close()
	n.wg.Wait()
	return nil
}

// chanListener adapts the connection mux to net.Listener.
type chanListener struct {
	addr net.Addr
	ch   chan net.Conn
	done chan struct{}
	once sync.Once
}

func newChanListener(addr net.Addr) *chanListener {
	return &chanListener{addr: addr, ch: make(chan net.Conn), done: make(chan struct{})}
}

func (l *chanListener) deliver(c net.Conn) bool {
	select {
	case l.ch <- c:
		return true
	case <-l.done:
		return false
	}
}

// Accept implements net.Listener.
func (l *chanListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, types.ErrClosed
	}
}

// Close implements net.Listener.
func (l *chanListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

// Addr implements net.Listener.
func (l *chanListener) Addr() net.Addr { return l.addr }
