package core

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"hoplite/internal/buffer"
	"hoplite/internal/directory"
	"hoplite/internal/linkstate"
	"hoplite/internal/netem"
	"hoplite/internal/spill"
	"hoplite/internal/store"
	"hoplite/internal/transport"
	"hoplite/internal/types"
	"hoplite/internal/wire"
)

// Plane-select magic bytes: a dialer's first byte routes the connection to
// the control plane (wire RPC: directory shard + reduce control) or the
// data plane (transport pulls). One listener per node keeps NodeID — the
// node's address — sufficient to reach both planes.
const (
	magicCtrl byte = 0xC1
	magicData byte = 0xD1
)

// Node is one Hoplite object-store node: local store, directory client,
// data-plane server, control server, and optionally one directory shard.
type Node struct {
	cfg  Config
	name string
	id   types.NodeID

	fab     netem.Fabric
	ln      net.Listener
	store   *store.Store
	spill   *spill.Spill // nil unless Config.SpillDir is set
	dir     *directory.Client
	shard   *directory.Server
	dataSrv *transport.Server
	ctrlSrv *wire.Server
	dataLn  *chanListener
	ctrlLn  *chanListener

	ctx    context.Context
	cancel context.CancelFunc

	locs *locCache // nil when LocationCacheSize < 0

	// links accumulates per-peer RTT and bandwidth estimates from the
	// node's own traffic; plan turns them into transfer decisions.
	links *linkstate.Tracker
	plan  planner

	// cmap is the node's view of the epoch-versioned cluster map (Epoch 0
	// when membership is disabled). encodedMap caches its wire form for
	// stale-epoch bounce responses; drainMon latches the drain monitor so
	// it starts at most once per process.
	cmapMu     sync.Mutex
	cmap       types.ClusterMap
	encodedMap []byte
	drainMon   bool

	// tombs records recently observed cluster-wide deletions, keyed by
	// object, so the inline fast path cannot resurrect an object whose
	// eviction fan-out already visited this node (see noteTombstone).
	tombMu sync.Mutex
	tombs  map[types.ObjectID]time.Time

	mu          sync.Mutex
	pulls       map[types.ObjectID]*pull
	execs       map[execKey]*reduceExec
	peers       map[string]*wire.Client
	storeChange chan struct{}
	closed      bool

	wg sync.WaitGroup
}

type execKey struct {
	reduceID types.ObjectID
	slot     int
}

// NewNode creates and starts a node. If cfg.DirectoryShards is empty and
// cfg.HostShard is set, the node's own address becomes the only shard.
func NewNode(cfg Config) (*Node, error) {
	c := cfg.withDefaults()
	if c.Fabric == nil {
		return nil, fmt.Errorf("core: Config.Fabric is required")
	}
	name := c.Name
	ln := c.Listener
	if ln == nil {
		var err error
		ln, err = c.Fabric.Listen(nameOrTemp(name))
		if err != nil {
			return nil, fmt.Errorf("core: listen: %w", err)
		}
	}
	addr := ln.Addr().String()
	if name == "" {
		name = addr
	}
	n := &Node{
		cfg:         c,
		name:        name,
		id:          types.NodeID(addr),
		fab:         c.Fabric,
		ln:          ln,
		pulls:       make(map[types.ObjectID]*pull),
		execs:       make(map[execKey]*reduceExec),
		peers:       make(map[string]*wire.Client),
		storeChange: make(chan struct{}),
	}
	if c.LocationCacheSize > 0 {
		n.locs = newLocCache(c.LocationCacheSize)
	}
	n.links = linkstate.New(linkstate.Config{
		PriorRTT:       c.Latency,
		PriorBandwidth: c.Bandwidth,
		HalfLife:       c.LinkHalfLife,
	})
	if c.Planner == "static" {
		n.plan = staticPlanner{latency: c.Latency, bandwidth: c.Bandwidth}
	} else {
		n.plan = linkPlanner{links: n.links, latency: c.Latency, bandwidth: c.Bandwidth}
	}
	n.ctx, n.cancel = context.WithCancel(context.Background())
	if c.SpillDir != "" {
		sp, err := spill.Open(c.SpillDir)
		if err != nil {
			ln.Close()
			return nil, fmt.Errorf("core: %w", err)
		}
		n.spill = sp
	}
	// MemoryLimit selects the tiered store (admission backpressure and,
	// with a spill dir, demotion); StoreCapacity keeps the legacy
	// overshooting LRU bound.
	tier := store.Tier{
		Capacity:  c.StoreCapacity,
		HighWater: c.SpillHighWater,
		LowWater:  c.SpillLowWater,
		OnEvict:   n.onEvict,
	}
	if c.MemoryLimit > 0 {
		tier.Capacity = c.MemoryLimit
		tier.Admission = true
	}
	if n.spill != nil {
		tier.Demote = n.demoteToSpill
		tier.PrepareDemote = n.spill.Reserve
	}
	n.store = store.NewTiered(tier)

	// Resolve the directory topology: a live join against an existing
	// cluster, an epoch-versioned boot map, explicit replica groups, the
	// legacy flat shard list (single-replica groups), or self-hosting the
	// only shard.
	var initialMap *types.ClusterMap
	joined := false
	switch {
	case len(c.JoinAddrs) > 0:
		jctx, jcancel := context.WithTimeout(n.ctx, 30*time.Second)
		cm, err := directory.Join(jctx, n.dialCtrl, c.JoinAddrs, n.id, !c.JoinStorageOnly, c.Locality)
		jcancel()
		if err != nil {
			ln.Close()
			return nil, fmt.Errorf("core: join cluster: %w", err)
		}
		initialMap = &cm
		joined = true
	case c.InitialMap != nil:
		cm := c.InitialMap.Clone()
		initialMap = &cm
	}
	topo := c.DirectoryTopology
	if initialMap != nil {
		topo = initialMap.DeriveGroups()
	}
	if len(topo) == 0 {
		for _, s := range c.DirectoryShards {
			topo = append(topo, []string{s})
		}
	}
	if len(topo) == 0 && c.HostShard {
		topo = [][]string{{addr}}
	}
	if len(topo) == 0 {
		ln.Close()
		return nil, fmt.Errorf("core: no directory shards configured")
	}
	hostsReplica := false
	for _, group := range topo {
		for _, a := range group {
			if a == addr {
				hostsReplica = true
			}
		}
	}
	switch {
	case hostsReplica || initialMap != nil:
		// With membership enabled every node runs the replicated server —
		// even one hosting zero replicas today — so map pushes, snapshots
		// and later rebalances land on live machinery.
		dcfg := directory.Config{
			Self:              addr,
			Groups:            topo,
			Dial:              n.dialCtrl,
			HeartbeatInterval: c.DirHeartbeatInterval,
			LeaseTimeout:      c.DirLeaseTimeout,
		}
		if initialMap != nil {
			dcfg.InitialMap = initialMap
			dcfg.RepairInterval = c.RepairInterval
			dcfg.OnMap = n.applyMap
		}
		n.shard = directory.NewReplicated(dcfg)
	case c.HostShard:
		// Flag-driven hosting where the listen address does not textually
		// match any shard entry (e.g. -listen 0.0.0.0:7077 behind a
		// -shards list naming the public address): the pre-replication
		// standalone server, which accepts every op. Replication requires
		// the listen address to appear in the topology verbatim.
		n.shard = directory.NewServer()
	}
	n.dir = directory.NewReplicatedClient(n.id, topo, n.dialCtrl)
	n.dir.SetBatchConfig(c.batchConfig())
	if initialMap != nil {
		n.cmap = initialMap.Clone()
		n.encodedMap = types.EncodeClusterMap(nil, n.cmap)
		n.links.SetLocality(n.cmap.Localities())
		n.dir.InstallMap(*initialMap)
		n.dir.OnMap(n.applyMap)
	}

	n.dataLn = newChanListener(ln.Addr())
	n.ctrlLn = newChanListener(ln.Addr())
	n.dataSrv = transport.NewServer(n.dataLn, n.serveBuffer, c.ChunkSize, n.onSendFailure)
	n.dataSrv.ConfigureScheduler(c.SchedClasses, c.SchedQuantum, c.BulkCutoff)
	n.dataSrv.SetTelemetry(func(peer types.NodeID, bytes int64, d time.Duration) {
		n.links.ObserveTransfer(peer, bytes, d)
	})
	n.ctrlSrv = wire.NewServerWith(n.ctrlLn, n.handleCtrl, c.batchConfig())

	n.wg.Add(3)
	go func() { defer n.wg.Done(); n.acceptLoop() }()
	go func() { defer n.wg.Done(); _ = n.dataSrv.Serve() }()
	go func() { defer n.wg.Done(); _ = n.ctrlSrv.Serve() }()
	if n.shard != nil {
		// Replication loops start after the control plane is serving, so
		// peer replicas probing this shard during its boot query get
		// answers instead of timeouts.
		n.shard.Start()
	}
	if joined {
		// A (re)joining node's in-memory store is empty, but a previous
		// life of the same address may have registered locations that were
		// never purged (a crashed-and-restarted member is never removed
		// from the map). Those phantom copies would mask under-replication
		// from the repair scanner, so clear them before serving. Runs
		// before the spill re-offer: disk-backed locations are purged too
		// and then re-registered from the surviving spill files.
		pctx, pcancel := context.WithTimeout(n.ctx, 30*time.Second)
		err := n.dir.PurgeNode(pctx, n.id)
		pcancel()
		if err != nil {
			n.Close()
			return nil, fmt.Errorf("core: purge stale locations on join: %w", err)
		}
	}
	if n.spill != nil && n.spill.Len() > 0 {
		n.wg.Add(1)
		go func() { defer n.wg.Done(); n.reofferSpilled() }()
	}
	return n, nil
}

// reofferSpilled re-registers every object found in the spill directory
// at boot: a restarted node still holds those bytes on disk and can serve
// them, so its previous life's spilled objects outlive the process (the
// paper leaves task restarts to the framework, §5.5; the spill tier makes
// restarted nodes come back warm). Objects the directory has tombstoned
// since are discarded from disk. Registrations that fail transiently —
// a rolling restart often boots workers before their directory shard is
// reachable — are retried with backoff for the life of the node.
func (n *Node) reofferSpilled() {
	pending := n.spill.List()
	backoff := 250 * time.Millisecond
	for len(pending) > 0 && n.ctx.Err() == nil {
		var failed []spill.Entry
		for _, ent := range pending {
			ctx, cancel := context.WithTimeout(n.ctx, 10*time.Second)
			err := n.dir.MarkSpilled(ctx, ent.OID, ent.Size)
			cancel()
			switch {
			case err == nil:
			case errors.Is(err, types.ErrDeleted):
				n.spill.Remove(ent.OID)
			default:
				failed = append(failed, ent)
			}
			if n.ctx.Err() != nil {
				return
			}
		}
		n.signalStoreChange()
		pending = failed
		if len(pending) == 0 {
			return
		}
		select {
		case <-time.After(backoff):
		case <-n.ctx.Done():
			return
		}
		if backoff *= 2; backoff > 5*time.Second {
			backoff = 5 * time.Second
		}
	}
}

// demoteToSpill persists an eviction victim to the spill tier (called by
// the store, outside its lock) and downgrades the directory location to
// Spilled. The file write is deliberately synchronous — write-through
// demotion is the backpressure that keeps a producer from racing ahead
// of the disk — but the directory downgrade is fired asynchronously: the
// copy serves pulls under either flavor (ranking lags one RPC at most),
// and a burst demoting many victims must not serialize N directory
// round-trips into one unlucky Put. Returning false (disk trouble) falls
// the victim back to plain eviction or, for pinned locals, reinsertion.
func (n *Node) demoteToSpill(oid types.ObjectID, buf *buffer.Buffer) bool {
	if err := n.spill.Write(oid, buf); err != nil {
		return false
	}
	// Wake pull servers parked on a store miss: the object is servable
	// again, now off disk.
	n.signalStoreChange()
	size := buf.Size()
	go func() {
		ctx, cancel := context.WithTimeout(n.ctx, 10*time.Second)
		err := n.dir.MarkSpilled(ctx, oid, size)
		cancel()
		if errors.Is(err, types.ErrDeleted) {
			// Tombstoned while we were demoting: the file is stale.
			n.spill.Remove(oid)
		}
	}()
	return true
}

func nameOrTemp(name string) string {
	if name == "" {
		return "node-pending"
	}
	return name
}

// ID returns the node's identity: its listen address.
func (n *Node) ID() types.NodeID { return n.id }

// Addr returns the node's listen address (same string as ID).
func (n *Node) Addr() string { return string(n.id) }

// Directory exposes the node's directory client (used by tests and tools).
func (n *Node) Directory() *directory.Client { return n.dir }

// Store exposes the node's local store (used by tests and tools).
func (n *Node) Store() *store.Store { return n.store }

// Spill exposes the node's spill tier, nil unless Config.SpillDir was set
// (used by tests and tools).
func (n *Node) Spill() *spill.Spill { return n.spill }

// DataStats reports the node's data-plane serve counters: how many pulls
// (and ranged striped pulls) this node's store served to receivers.
func (n *Node) DataStats() transport.Stats { return n.dataSrv.Stats() }

// PeerDataStats reports per-receiver serve counters: how many pulls and
// bytes this node's store served to each peer.
func (n *Node) PeerDataStats() map[types.NodeID]transport.PeerStat { return n.dataSrv.PeerStats() }

// Links exposes the node's link-state tracker (used by tests and tools).
func (n *Node) Links() *linkstate.Tracker { return n.links }

// LinkState returns the node's current per-peer link estimate table.
func (n *Node) LinkState() []linkstate.PeerEstimate { return n.links.Snapshot() }

// PeerLinkState fetches peer's link estimate table (the rows LinkState
// returns locally) over the control plane, so tools can print a
// cluster-wide link matrix from any vantage point.
func (n *Node) PeerLinkState(ctx context.Context, peer types.NodeID) ([]linkstate.PeerEstimate, error) {
	cl, err := n.peerCtrl(ctx, string(peer))
	if err != nil {
		return nil, err
	}
	resp, err := cl.Call(ctx, wire.Message{Method: wire.MethodLinkState})
	if err != nil {
		return nil, err
	}
	if e := resp.ErrorOf(); e != nil {
		return nil, e
	}
	return linkstate.DecodeSnapshot(resp.Payload)
}

func (n *Node) acceptLoop() {
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			n.dataLn.Close()
			n.ctrlLn.Close()
			return
		}
		go n.routeConn(conn)
	}
}

// routeConn reads the plane-select magic byte and hands the connection to
// the right server.
func (n *Node) routeConn(conn net.Conn) {
	var magic [1]byte
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := conn.Read(magic[:]); err != nil {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	switch magic[0] {
	case magicData:
		if !n.dataLn.deliver(conn) {
			conn.Close()
		}
	case magicCtrl:
		if !n.ctrlLn.deliver(conn) {
			conn.Close()
		}
	default:
		conn.Close()
	}
}

func (n *Node) dialPlane(ctx context.Context, addr string, magic byte) (net.Conn, error) {
	conn, err := n.fab.Dial(ctx, n.name, addr)
	if err != nil {
		return nil, err
	}
	if _, err := conn.Write([]byte{magic}); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

func (n *Node) dialCtrl(ctx context.Context, addr string) (net.Conn, error) {
	return n.dialPlane(ctx, addr, magicCtrl)
}

// FetchClusterMap asks each seed in turn for the cluster map of a
// running membership-enabled cluster. Ephemeral clients (the CLI) use it
// before NewNode to derive the true shard topology from a single seed
// address instead of requiring the operator to restate the founding
// list; pass the result as Config.InitialMap.
func FetchClusterMap(ctx context.Context, fab netem.Fabric, seeds []string) (types.ClusterMap, error) {
	var lastErr error = fmt.Errorf("core: no seed addresses")
	for _, addr := range seeds {
		conn, err := fab.Dial(ctx, "", addr)
		if err != nil {
			lastErr = err
			continue
		}
		if _, err := conn.Write([]byte{magicCtrl}); err != nil {
			conn.Close()
			lastErr = err
			continue
		}
		wc := wire.NewClient(conn, nil)
		resp, err := wc.Call(ctx, wire.Message{Method: wire.MethodMapGet})
		wc.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if rerr := resp.ErrorOf(); rerr != nil {
			lastErr = rerr
			continue
		}
		cm, derr := types.DecodeClusterMap(resp.Payload)
		if derr != nil {
			lastErr = derr
			continue
		}
		return cm, nil
	}
	return types.ClusterMap{}, lastErr
}

func (n *Node) dialData(ctx context.Context, addr string) (net.Conn, error) {
	return n.dialPlane(ctx, addr, magicData)
}

// peerCtrl returns a cached control-plane RPC client to a peer node.
func (n *Node) peerCtrl(ctx context.Context, addr string) (*wire.Client, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, types.ErrClosed
	}
	if c, ok := n.peers[addr]; ok {
		n.mu.Unlock()
		return c, nil
	}
	n.mu.Unlock()
	conn, err := n.dialCtrl(ctx, addr)
	if err != nil {
		return nil, err
	}
	c := wire.NewClientWith(conn, nil, n.cfg.batchConfig())
	// Every control round-trip on this client doubles as an RTT probe for
	// the link estimator. Peer control handlers respond immediately (no
	// blocking waits), so the measured time is genuine RPC latency.
	peer := types.NodeID(addr)
	c.OnRTT(func(d time.Duration) { n.links.ObserveRTT(peer, d) })
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		c.Close()
		return nil, types.ErrClosed
	}
	if existing, ok := n.peers[addr]; ok {
		n.mu.Unlock()
		c.Close()
		return existing, nil
	}
	n.peers[addr] = c
	n.mu.Unlock()
	return c, nil
}

// dropPeer discards a (possibly broken) cached peer connection.
func (n *Node) dropPeer(addr string, c *wire.Client) {
	n.mu.Lock()
	if n.peers[addr] == c {
		delete(n.peers, addr)
	}
	n.mu.Unlock()
	c.Close()
}

// handleCtrl dispatches control-plane requests: directory methods go to
// the hosted shard, reduce and eviction methods to the node itself.
func (n *Node) handleCtrl(ctx context.Context, m wire.Message, p *wire.Peer) wire.Message {
	if resp, stale := n.staleCheck(&m); stale {
		return resp
	}
	switch m.Method {
	case wire.MethodReduceStart:
		return n.handleReduceStart(m)
	case wire.MethodReduceCancel:
		return n.handleReduceCancel(m)
	case wire.MethodRepairPull:
		// Re-replication: the membership shard asked this node to become a
		// holder. Pull through the ordinary receiver-driven data plane,
		// which registers the complete copy in the directory as it lands.
		var resp wire.Message
		if err := n.WaitLocal(ctx, m.OID); err != nil {
			resp.SetError(err)
		}
		return resp
	case wire.MethodEvictLocal:
		// Record the deletion BEFORE dropping the copy: an inline acquire
		// racing this fan-out checks the tombstone after inserting, so one
		// of the two orders always wins (no resurrected copy).
		n.noteTombstone(m.OID)
		n.dropLocEntry(m.OID)
		n.store.Delete(m.OID)
		if n.spill != nil {
			n.spill.Remove(m.OID)
		}
		return wire.Message{}
	case wire.MethodPing:
		return wire.Message{Method: wire.MethodPing}
	case wire.MethodLinkState:
		// Link-state telemetry: return this node's per-peer estimate table
		// (hoplite-cli status renders it).
		return wire.Message{Payload: linkstate.EncodeSnapshot(n.links.Snapshot())}
	default:
		if n.shard != nil {
			return n.shard.Handler()(ctx, m, p)
		}
		var resp wire.Message
		resp.Err = "core: node hosts no directory shard"
		return resp
	}
}

// staleCheck bounces epoch-stamped control requests from peers whose
// cluster map is older than ours: the response carries the current map so
// the caller can catch up and retry. Membership-plane methods are exempt —
// they carry the map itself or have their own epoch semantics (a joiner's
// first request is legitimately unstamped-or-old).
func (n *Node) staleCheck(m *wire.Message) (wire.Message, bool) {
	switch m.Method {
	case wire.MethodJoin, wire.MethodDrain, wire.MethodMapPush, wire.MethodMapGet:
		return wire.Message{}, false
	}
	n.cmapMu.Lock()
	defer n.cmapMu.Unlock()
	if n.cmap.Epoch == 0 || m.Epoch == 0 || m.Epoch >= n.cmap.Epoch {
		return wire.Message{}, false
	}
	var resp wire.Message
	resp.SetError(types.ErrStaleMap)
	resp.Epoch = n.cmap.Epoch
	resp.Payload = append([]byte(nil), n.encodedMap...)
	return resp, true
}

// mapEpoch returns the node's current cluster-map epoch (0 when
// membership is disabled).
func (n *Node) mapEpoch() int64 {
	n.cmapMu.Lock()
	defer n.cmapMu.Unlock()
	return n.cmap.Epoch
}

// ClusterMap returns the node's view of the cluster map; Epoch 0 means
// membership is disabled.
func (n *Node) ClusterMap() types.ClusterMap {
	n.cmapMu.Lock()
	defer n.cmapMu.Unlock()
	return n.cmap.Clone()
}

// ShardServer exposes the node's directory shard server, nil when the
// node hosts none (used by tests and tools).
func (n *Node) ShardServer() *directory.Server { return n.shard }

// applyMap reacts to a newer cluster map from any source — shard server
// install, client-observed stale bounce, or direct push: cache it for
// stale checks, propagate it to the other local components (each install
// is an epoch-guarded no-op once everyone agrees, so the hooks cannot
// recurse), and start the drain monitor when this node is now draining.
func (n *Node) applyMap(cm types.ClusterMap) {
	n.cmapMu.Lock()
	if cm.Epoch <= n.cmap.Epoch {
		n.cmapMu.Unlock()
		return
	}
	n.cmap = cm.Clone()
	n.encodedMap = types.EncodeClusterMap(n.encodedMap[:0], n.cmap)
	startDrain := false
	if st, ok := n.cmap.MemberState(n.id); ok && st == types.MemberDraining && !n.drainMon {
		n.drainMon = true
		startDrain = true
	}
	n.cmapMu.Unlock()
	n.dir.InstallMap(cm)
	n.links.SetLocality(cm.Localities())
	if n.shard != nil {
		n.shard.InstallMap(cm)
	}
	if startDrain {
		n.mu.Lock()
		if !n.closed {
			n.wg.Add(1)
			go func() { defer n.wg.Done(); n.drainMonitor() }()
		}
		n.mu.Unlock()
	}
}

// Drain retires this node gracefully: mark it draining in the cluster
// map (no new placements, shard replicas hand off, the repair scanner
// evacuates sole copies), then block until the node has been removed
// from the map. The node keeps serving reads throughout; callers
// typically Close it once Drain returns.
func (n *Node) Drain(ctx context.Context) error {
	if _, err := n.dir.DrainNode(ctx, n.id); err != nil {
		return err
	}
	// The response map marked us draining; applyMap (via the client's
	// install hook) started the drain monitor, which finishes the drain
	// once nothing depends on this node. Wait for our own removal.
	ticker := time.NewTicker(20 * time.Millisecond)
	defer ticker.Stop()
	for {
		cm := n.dir.Map()
		if cm.Epoch > 0 {
			if _, ok := cm.MemberState(n.id); !ok {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-n.ctx.Done():
			return types.ErrClosed
		case <-ticker.C:
		}
	}
}

// drainMonitor runs on a draining node (started by applyMap, at most
// once): poll until no shard replica and no sole object copy lives here,
// then report the drain finished so the membership shard removes us.
func (n *Node) drainMonitor() {
	ticker := time.NewTicker(50 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-n.ctx.Done():
			return
		case <-ticker.C:
		}
		if !n.drainComplete() {
			continue
		}
		ctx, cancel := context.WithTimeout(n.ctx, 10*time.Second)
		_, err := n.dir.DrainFinished(ctx, n.id)
		cancel()
		if err == nil {
			return
		}
	}
}

// drainComplete reports whether this node can leave without losing data
// or a shard: it hosts no directory replicas and holds no object's only
// whole copy.
func (n *Node) drainComplete() bool {
	if n.shard != nil && n.shard.HostedReplicas() > 0 {
		return false
	}
	ctx, cancel := context.WithTimeout(n.ctx, 5*time.Second)
	defer cancel()
	sole, err := n.dir.SoleCopies(ctx, n.id)
	return err == nil && sole == 0
}

// onSendFailure clears a dead receiver's directory lease after the data
// plane saw its socket break (§5.5).
func (n *Node) onSendFailure(oid types.ObjectID, receiver types.NodeID) {
	ctx, cancel := context.WithTimeout(n.ctx, 5*time.Second)
	defer cancel()
	_ = n.dir.AbortDownstream(ctx, oid, receiver)
}

// onEvict reconciles the directory after a copy was dropped from memory
// (best effort): if the object still lives in the spill tier the dropped
// buffer was only a cache over the file, so the location is downgraded to
// Spilled rather than removed — this node can still serve every byte.
func (n *Node) onEvict(oid types.ObjectID) {
	ctx, cancel := context.WithTimeout(n.ctx, 5*time.Second)
	defer cancel()
	if n.spill != nil {
		if size, ok := n.spill.Contains(oid); ok {
			_ = n.dir.MarkSpilled(ctx, oid, size)
			return
		}
	}
	_ = n.dir.RemoveLocation(ctx, oid)
}

// signalStoreChange wakes serveBuffer waiters after a store insert.
func (n *Node) signalStoreChange() {
	n.mu.Lock()
	close(n.storeChange)
	n.storeChange = make(chan struct{})
	n.mu.Unlock()
}

// serveBuffer resolves pull requests against the local store, falling
// back to the spill tier: a demoted object is served straight off its
// chunk-aligned disk file (full or ranged pulls alike) without being
// rehydrated into memory. A freshly leased receiver may be asked for the
// object a moment before its local buffer exists (its Acquire response is
// still in flight), so absence waits briefly for creation.
func (n *Node) serveBuffer(ctx context.Context, oid types.ObjectID) (transport.Payload, error) {
	deadline := time.Now().Add(10 * time.Second)
	for {
		if buf, ok := n.store.Get(oid); ok {
			return transport.Payload{Buf: buf}, nil
		}
		if n.spill != nil {
			if f, size, err := n.spill.Open(oid); err == nil {
				return transport.Payload{File: f, Size: size, Release: func() { f.Close() }}, nil
			}
		}
		n.mu.Lock()
		ch := n.storeChange
		n.mu.Unlock()
		if time.Now().After(deadline) {
			return transport.Payload{}, types.ErrNotFound
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return transport.Payload{}, ctx.Err()
		case <-time.After(time.Until(deadline)):
			return transport.Payload{}, types.ErrNotFound
		}
	}
}

// Close shuts the node down: all servers, connections and buffers are
// released. In-flight operations fail with ErrClosed.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	peers := make([]*wire.Client, 0, len(n.peers))
	for _, c := range n.peers {
		peers = append(peers, c)
	}
	n.peers = make(map[string]*wire.Client)
	execs := make([]*reduceExec, 0, len(n.execs))
	for _, e := range n.execs {
		execs = append(execs, e)
	}
	n.execs = make(map[execKey]*reduceExec)
	n.mu.Unlock()

	n.cancel()
	for _, e := range execs {
		e.cancel()
	}
	n.ln.Close()
	n.ctrlSrv.Close()
	n.dataSrv.Close()
	if n.shard != nil {
		n.shard.Close()
	}
	for _, c := range peers {
		c.Close()
	}
	n.dir.Close()
	n.store.Close()
	if n.spill != nil {
		n.spill.Close() // files stay on disk for the next incarnation
	}
	n.wg.Wait()
	return nil
}

// chanListener adapts the connection mux to net.Listener.
type chanListener struct {
	addr net.Addr
	ch   chan net.Conn
	done chan struct{}
	once sync.Once
}

func newChanListener(addr net.Addr) *chanListener {
	return &chanListener{addr: addr, ch: make(chan net.Conn), done: make(chan struct{})}
}

func (l *chanListener) deliver(c net.Conn) bool {
	select {
	case l.ch <- c:
		return true
	case <-l.done:
		return false
	}
}

// Accept implements net.Listener.
func (l *chanListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, types.ErrClosed
	}
}

// Close implements net.Listener.
func (l *chanListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

// Addr implements net.Listener.
func (l *chanListener) Addr() net.Addr { return l.addr }
