package core

import (
	"bytes"
	"context"
	"testing"
	"time"

	"hoplite/internal/netem"
	"hoplite/internal/types"
	"hoplite/internal/wire"
)

// TestReduceEpochReplacementRace regression-tests the epoch-bump race in
// handleReduceStart: a superseded root-slot executor shares its OutputOID
// with the replacement, and its teardown (ErrExists → Delete → re-Create
// under a canceled ctx) used to race the replacement's fresh buffer —
// clobbering it and wedging the slot. The fix waits out the old epoch's
// executor before the new one touches the store. Bumping epochs rapidly
// under load makes the old interleaving essentially certain across runs.
func TestReduceEpochReplacementRace(t *testing.T) {
	node, err := NewNode(Config{Fabric: &netem.TCP{}, HostShard: true})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const size = 256 << 10 // above the inline threshold: lives in the store
	src := types.ObjectIDFromString("race-src")
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i)
	}
	if err := node.Put(ctx, src, data); err != nil {
		t.Fatal(err)
	}

	target := types.ObjectIDFromString("race-target")
	start := func(epoch int64) {
		spec := &reduceSpec{
			ReduceID:  target,
			Slot:      0,
			Epoch:     epoch,
			OwnOID:    src,
			OutputOID: target, // root slot: every epoch shares the target OID
			IsRoot:    true,
			Size:      size,
			Op:        types.ReduceOp{Kind: types.Sum, DType: types.F32},
		}
		payload, err := encodeSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		resp := node.handleReduceStart(wire.Message{Method: wire.MethodReduceStart, Payload: payload})
		if e := resp.ErrorOf(); e != nil {
			t.Fatalf("reduce start epoch %d: %v", epoch, e)
		}
	}

	// waitProduced polls until the surviving epoch's executor has sealed
	// the slot output locally. (A Get issued before local production
	// starts would park on a remote acquire — there is no remote copy on
	// a single node — so the read must follow production, as the reduce
	// coordinator's completion watch does in the real flow.)
	waitProduced := func(round int) {
		deadline := time.Now().Add(20 * time.Second)
		for {
			if buf, ok := node.store.Get(target); ok && buf.Complete() {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("round %d: surviving epoch never sealed the slot output (wedged)", round)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Fire a rapid burst of epoch replacements: each new epoch cancels its
	// predecessor while that predecessor may still be anywhere in its
	// Create/Append/teardown sequence.
	var epoch int64
	for round := 0; round < 25; round++ {
		for burst := 0; burst < 4; burst++ {
			epoch++
			start(epoch)
		}
		// The surviving epoch must finish with the intact single-source
		// fold (identity) — not a clobbered or wedged buffer.
		waitProduced(round)
		got, err := node.Get(ctx, target)
		if err != nil {
			t.Fatalf("round %d: Get target: %v", round, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("round %d: target payload corrupted", round)
		}
		// Reset for the next round so Create starts from a clean slot.
		if err := node.Delete(ctx, target); err != nil {
			t.Fatalf("round %d: delete: %v", round, err)
		}
	}
}
