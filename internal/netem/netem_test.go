package netem

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"hoplite/internal/types"
)

func echoServer(t *testing.T, fab Fabric, node string) net.Listener {
	t.Helper()
	ln, err := fab.Listen(node)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				io.Copy(c, c)
			}()
		}
	}()
	return ln
}

func TestTCPFabricRoundTrip(t *testing.T) {
	fab := &TCP{}
	ln := echoServer(t, fab, "a")
	conn, err := fab.Dial(context.Background(), "b", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "ping" {
		t.Fatal("echo mismatch")
	}
}

func TestEmulatedLatency(t *testing.T) {
	em := NewEmulated(LinkConfig{Latency: 2 * time.Millisecond})
	defer em.Close()
	ln := echoServer(t, em, "a")
	conn, err := em.Dial(context.Background(), "b", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	buf := make([]byte, 8)
	conn.Write(buf)
	io.ReadFull(conn, buf) // warm
	t0 := time.Now()
	const iters = 10
	for i := 0; i < iters; i++ {
		conn.Write(buf)
		if _, err := io.ReadFull(conn, buf); err != nil {
			t.Fatal(err)
		}
	}
	rtt := time.Since(t0) / iters
	if rtt < 4*time.Millisecond || rtt > 12*time.Millisecond {
		t.Fatalf("rtt %v, want ≈4ms", rtt)
	}
}

func TestEmulatedBandwidth(t *testing.T) {
	const bw = 16 << 20 // 16 MB/s
	em := NewEmulated(LinkConfig{BytesPerSec: bw})
	defer em.Close()
	ln := echoServer(t, em, "sink")
	conn, err := em.Dial(context.Background(), "src", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	payload := make([]byte, 4<<20)
	done := make(chan struct{})
	go func() { // drain the echo
		io.CopyN(io.Discard, conn, int64(len(payload)))
		close(done)
	}()
	t0 := time.Now()
	if _, err := conn.Write(payload); err != nil {
		t.Fatal(err)
	}
	<-done
	elapsed := time.Since(t0).Seconds()
	want := float64(len(payload)) / bw // one direction dominates (echo shares both buckets)
	// The token-bucket burst (256 KiB per bucket) grants a small head
	// start, so allow ~10% under the fluid-model time.
	if elapsed < 0.85*want || elapsed > 6*want {
		t.Fatalf("elapsed %.3fs, want ≈ %.3fs", elapsed, want)
	}
}

func TestEmulatedPerNodeEgressSharing(t *testing.T) {
	const bw = 32 << 20
	em := NewEmulated(LinkConfig{BytesPerSec: bw})
	defer em.Close()
	ln1 := echoServer(t, em, "r1")
	ln2 := echoServer(t, em, "r2")
	size := 2 << 20
	send := func(addr string) time.Duration {
		conn, err := em.Dial(context.Background(), "s", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		t0 := time.Now()
		conn.Write(make([]byte, size))
		io.CopyN(io.Discard, conn, int64(size))
		return time.Since(t0)
	}
	// Two concurrent sends from the same node share its egress bucket, so
	// they take roughly twice as long as one.
	var wg sync.WaitGroup
	var d1, d2 time.Duration
	t0 := time.Now()
	wg.Add(2)
	go func() { defer wg.Done(); d1 = send(ln1.Addr().String()) }()
	go func() { defer wg.Done(); d2 = send(ln2.Addr().String()) }()
	wg.Wait()
	both := time.Since(t0)
	single := time.Duration(float64(size) / bw * float64(time.Second))
	if both < 2*single*8/10 {
		t.Fatalf("concurrent sends finished in %v; egress bucket not shared (single ≈ %v)", both, single)
	}
	_ = d1
	_ = d2
}

func TestKillBreaksConnections(t *testing.T) {
	em := NewEmulated(LinkConfig{})
	defer em.Close()
	ln := echoServer(t, em, "victim")
	conn, err := em.Dial(context.Background(), "peer", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("x"))
	buf := make([]byte, 1)
	io.ReadFull(conn, buf)

	em.Kill("victim")
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	conn.Write(make([]byte, 1))
	if _, err := io.ReadFull(conn, buf); err == nil {
		t.Fatal("connection survived kill")
	}
	if _, err := em.Listen("victim"); !errors.Is(err, types.ErrNodeDown) {
		t.Fatalf("Listen on killed node: %v", err)
	}
	if _, err := em.Dial(context.Background(), "victim", ln.Addr().String()); !errors.Is(err, types.ErrNodeDown) {
		t.Fatalf("Dial from killed node: %v", err)
	}
}

func TestReviveAllowsNewConnections(t *testing.T) {
	em := NewEmulated(LinkConfig{})
	defer em.Close()
	echoServer(t, em, "other")
	em.Kill("victim")
	em.Revive("victim")
	if _, err := em.Listen("victim"); err != nil {
		t.Fatalf("Listen after revive: %v", err)
	}
}

func TestDialKilledTargetFails(t *testing.T) {
	em := NewEmulated(LinkConfig{})
	defer em.Close()
	ln := echoServer(t, em, "victim")
	addr := ln.Addr().String()
	em.Kill("victim")
	conn, err := em.Dial(context.Background(), "peer", addr)
	if err == nil {
		// The TCP connect may succeed before the listener close races;
		// any traffic must then fail.
		conn.SetReadDeadline(time.Now().Add(time.Second))
		buf := make([]byte, 1)
		if _, rerr := conn.Read(buf); rerr == nil {
			t.Fatal("read from killed node succeeded")
		}
		conn.Close()
	}
}

// measureRTT echoes a small payload through conn and returns the average
// round-trip over a few iterations.
func measureRTT(t *testing.T, conn net.Conn) time.Duration {
	t.Helper()
	buf := make([]byte, 8)
	conn.Write(buf)
	io.ReadFull(conn, buf) // warm
	t0 := time.Now()
	const iters = 5
	for i := 0; i < iters; i++ {
		conn.Write(buf)
		if _, err := io.ReadFull(conn, buf); err != nil {
			t.Fatal(err)
		}
	}
	return time.Since(t0) / iters
}

func TestAddNodeShapesLateJoiner(t *testing.T) {
	// The fabric default is an uncapped, zero-latency link; a node added
	// to the running fabric with AddNode comes up with its own caps.
	em := NewEmulated(LinkConfig{})
	defer em.Close()
	ln := echoServer(t, em, "sink")

	const bw = 8 << 20 // 8 MB/s
	em.AddNode("late", LinkConfig{Latency: 2 * time.Millisecond, BytesPerSec: bw})

	fast, err := em.Dial(context.Background(), "old", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()
	slow, err := em.Dial(context.Background(), "late", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()

	if rtt := measureRTT(t, fast); rtt > 2*time.Millisecond {
		t.Fatalf("default node rtt %v, want sub-millisecond loopback", rtt)
	}
	// Latency shapes data received by the node, so only the echoed reply
	// into "late" is delayed (the uncapped sink receives instantly): the
	// RTT is ≈2ms one-way.
	if rtt := measureRTT(t, slow); rtt < 3*time.Millisecond/2 || rtt > 20*time.Millisecond {
		t.Fatalf("late joiner rtt %v, want ≈2ms", rtt)
	}

	// Bandwidth cap: pushing 2 MB through an 8 MB/s link takes ≈0.25s;
	// the uncapped node moves the same payload orders of magnitude faster.
	payload := make([]byte, 2<<20)
	send := func(conn net.Conn) time.Duration {
		done := make(chan struct{})
		go func() {
			io.CopyN(io.Discard, conn, int64(len(payload)))
			close(done)
		}()
		t0 := time.Now()
		if _, err := conn.Write(payload); err != nil {
			t.Fatal(err)
		}
		<-done
		return time.Since(t0)
	}
	if d := send(slow); d < 150*time.Millisecond {
		t.Fatalf("capped late joiner moved 2MB in %v, want ≈250ms", d)
	}
}

func TestRemoveNodeForgetsState(t *testing.T) {
	em := NewEmulated(LinkConfig{})
	defer em.Close()
	ln := echoServer(t, em, "sink")

	em.AddNode("gone", LinkConfig{Latency: 5 * time.Millisecond})
	conn, err := em.Dial(context.Background(), "gone", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("x"))
	buf := make([]byte, 1)
	io.ReadFull(conn, buf)

	em.RemoveNode("gone")
	// Existing connections break, like Kill.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	conn.Write(make([]byte, 1))
	if _, err := io.ReadFull(conn, buf); err == nil {
		t.Fatal("connection survived RemoveNode")
	}
	// Unlike Kill, the name is forgotten rather than left dead: a fresh
	// node under the same name starts immediately with fabric defaults.
	fresh, err := em.Dial(context.Background(), "gone", ln.Addr().String())
	if err != nil {
		t.Fatalf("Dial after RemoveNode: %v", err)
	}
	defer fresh.Close()
	if rtt := measureRTT(t, fresh); rtt > 2*time.Millisecond {
		t.Fatalf("re-created node rtt %v, want fabric default (no 10ms override)", rtt)
	}
	if _, err := em.Listen("gone"); err != nil {
		t.Fatalf("Listen after RemoveNode: %v", err)
	}
}

// oneWayTime sends size bytes from one node to a sink on another and
// reports how long the full transfer takes to arrive.
func oneWayTime(t *testing.T, em *Emulated, fromNode, toNode string, size int) time.Duration {
	t.Helper()
	ln, err := em.Listen(toNode)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		c, err := ln.Accept()
		if err != nil {
			close(done)
			return
		}
		defer c.Close()
		io.CopyN(io.Discard, c, int64(size))
		close(done)
	}()
	conn, err := em.Dial(context.Background(), fromNode, ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	t0 := time.Now()
	if _, err := conn.Write(make([]byte, size)); err != nil {
		t.Fatal(err)
	}
	<-done
	return time.Since(t0)
}

func TestSetPairLinkRateCapIsDirectional(t *testing.T) {
	// The fabric itself is unlimited; only the a→b direction gets a cap.
	em := NewEmulated(LinkConfig{})
	defer em.Close()
	const bw = 16 << 20
	em.SetPairLink("a", "b", LinkConfig{BytesPerSec: bw})

	size := 4 << 20
	want := time.Duration(float64(size) / bw * float64(time.Second))
	if d := oneWayTime(t, em, "a", "b", size); d < want*6/10 {
		t.Fatalf("a→b moved %d bytes in %v, want ≈%v (pair cap not applied)", size, d, want)
	}
	// The reverse direction and other pairs stay uncapped.
	if d := oneWayTime(t, em, "b", "a", size); d > want/2 {
		t.Fatalf("b→a took %v; pair cap leaked into the reverse direction", d)
	}
	if d := oneWayTime(t, em, "a", "c", size); d > want/2 {
		t.Fatalf("a→c took %v; pair cap leaked onto an unrelated pair", d)
	}
}

func TestSetPairLinkLatencyOverrideAsymmetric(t *testing.T) {
	em := NewEmulated(LinkConfig{Latency: time.Millisecond})
	defer em.Close()
	ln := echoServer(t, em, "b")
	conn, err := em.Dial(context.Background(), "a", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if rtt := measureRTT(t, conn); rtt < time.Millisecond || rtt > 6*time.Millisecond {
		t.Fatalf("baseline rtt %v, want ≈2ms", rtt)
	}
	// Degrade only the a→b direction; b→a keeps the fabric's 1ms. The
	// override applies to the live connection, no re-dial needed.
	em.SetPairLink("a", "b", LinkConfig{Latency: 10 * time.Millisecond})
	if rtt := measureRTT(t, conn); rtt < 8*time.Millisecond || rtt > 25*time.Millisecond {
		t.Fatalf("asymmetric rtt %v, want ≈11ms (10ms out + 1ms back)", rtt)
	}
	// Clearing the override (zero latency) falls back to the node link.
	em.SetPairLink("a", "b", LinkConfig{})
	if rtt := measureRTT(t, conn); rtt > 6*time.Millisecond {
		t.Fatalf("rtt %v after clearing override, want ≈2ms", rtt)
	}
	// An a↔c connection never saw the override.
	lnC := echoServer(t, em, "c")
	em.SetPairLink("a", "b", LinkConfig{Latency: 10 * time.Millisecond})
	connC, err := em.Dial(context.Background(), "a", lnC.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer connC.Close()
	if rtt := measureRTT(t, connC); rtt > 6*time.Millisecond {
		t.Fatalf("a↔c rtt %v, want ≈2ms (pair override is per-pair)", rtt)
	}
}
