// Package netem provides the network fabric Hoplite nodes communicate
// over. A Fabric hands out listeners and dialers; two implementations
// exist:
//
//   - TCP: plain loopback/LAN TCP, the production path.
//   - Emulated: loopback TCP shaped per node with full-duplex token-bucket
//     bandwidth limits and one-way latency injection, plus node-kill fault
//     injection. This is the stand-in for the paper's testbed of 16
//     m5.4xlarge instances with 10 Gbps networking (§5): every scheduling
//     decision Hoplite makes depends only on latency L, per-node bandwidth
//     B, and object size S, all of which the emulated fabric reproduces.
package netem

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"hoplite/internal/types"
)

// Fabric creates the listeners and connections of a cluster. The node
// argument is a stable per-node name used to attach traffic shaping and
// fault injection; plain TCP ignores it.
type Fabric interface {
	// Listen opens a listener owned by node.
	Listen(node string) (net.Listener, error)
	// Dial connects from node to addr.
	Dial(ctx context.Context, node, addr string) (net.Conn, error)
	// Close releases all fabric resources.
	Close() error
}

// TCP is the production fabric: plain TCP with no shaping.
type TCP struct {
	// ListenAddr is the address listeners bind to; defaults to
	// "127.0.0.1:0".
	ListenAddr string
}

// Listen implements Fabric.
func (t *TCP) Listen(string) (net.Listener, error) {
	addr := t.ListenAddr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	return net.Listen("tcp", addr)
}

// Dial implements Fabric.
func (t *TCP) Dial(ctx context.Context, _ string, addr string) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}

// Close implements Fabric.
func (t *TCP) Close() error { return nil }

// LinkConfig describes the emulated per-node link.
type LinkConfig struct {
	// Latency is the one-way propagation delay applied to received data.
	Latency time.Duration
	// BytesPerSec is the full-duplex per-node bandwidth (applied
	// independently to ingress and egress, like a NIC). Zero or negative
	// means unlimited.
	BytesPerSec float64
	// Burst is the token bucket depth in bytes; defaults to 256 KiB.
	Burst float64
}

// Emulated is a loopback fabric with per-node traffic shaping and fault
// injection.
type Emulated struct {
	cfg LinkConfig

	mu    sync.Mutex
	nodes map[string]*shapedNode
	// pairs holds directional pair-wise link overrides (SetPairLink),
	// keyed by (sender, receiver) node names. owners maps socket addresses
	// back to node names so a connection endpoint can tell which node is
	// on its far side: listener addresses are registered at ListenOn, and
	// a dialer's ephemeral local address at Dial.
	pairs  map[pairKey]*pairLink
	owners map[string]string
}

type pairKey struct{ from, to string }

// pairLink shapes one direction of one node pair: the bucket meters the
// sender's writes toward that receiver, and latency (when positive)
// replaces the receiver's one-way delay for data arriving from that sender.
type pairLink struct {
	bucket *bucket

	mu      sync.Mutex
	latency time.Duration
}

func (p *pairLink) lat() (time.Duration, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.latency, p.latency > 0
}

// NewEmulated returns a fabric applying cfg to every node.
func NewEmulated(cfg LinkConfig) *Emulated {
	if cfg.Burst <= 0 {
		cfg.Burst = 256 << 10
	}
	return &Emulated{
		cfg:    cfg,
		nodes:  make(map[string]*shapedNode),
		pairs:  make(map[pairKey]*pairLink),
		owners: make(map[string]string),
	}
}

// SetPairLink shapes traffic flowing from node `from` to node `to`,
// independently of every other pair and direction: cfg.BytesPerSec caps
// that direction's rate (in addition to both nodes' own NIC buckets;
// <= 0 removes the pair cap) and cfg.Latency, when positive, replaces the
// one-way delay for data arriving at `to` from `from`. Call twice with the
// arguments swapped to shape both directions — asymmetric pairs (a rack
// with a thin, slow uplink to one peer and a fat link to another) are the
// point. Takes effect immediately, live connections included.
func (e *Emulated) SetPairLink(from, to string, cfg LinkConfig) {
	burst := cfg.Burst
	if burst <= 0 {
		burst = 256 << 10
	}
	e.mu.Lock()
	pl, ok := e.pairs[pairKey{from, to}]
	if !ok {
		pl = &pairLink{bucket: newBucket(cfg.BytesPerSec, burst)}
		e.pairs[pairKey{from, to}] = pl
	} else {
		pl.bucket.setRate(cfg.BytesPerSec, burst)
	}
	e.mu.Unlock()
	pl.mu.Lock()
	pl.latency = cfg.Latency
	pl.mu.Unlock()
}

// pair returns the directional pair override, nil when none is configured
// (or the far endpoint is not yet known).
func (e *Emulated) pair(from, to string) *pairLink {
	if from == "" || to == "" {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.pairs[pairKey{from, to}]
}

func (e *Emulated) setOwner(addr, node string) {
	e.mu.Lock()
	e.owners[addr] = node
	e.mu.Unlock()
}

func (e *Emulated) forgetOwner(addr string) {
	e.mu.Lock()
	delete(e.owners, addr)
	e.mu.Unlock()
}

func (e *Emulated) ownerOf(addr string) string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.owners[addr]
}

type shapedNode struct {
	name    string
	egress  *bucket
	ingress *bucket

	mu        sync.Mutex
	latency   time.Duration
	killed    bool
	conns     map[net.Conn]struct{}
	listeners map[net.Listener]struct{}
}

func (e *Emulated) node(name string) *shapedNode {
	e.mu.Lock()
	defer e.mu.Unlock()
	n, ok := e.nodes[name]
	if !ok {
		n = &shapedNode{
			name:      name,
			egress:    newBucket(e.cfg.BytesPerSec, e.cfg.Burst),
			ingress:   newBucket(e.cfg.BytesPerSec, e.cfg.Burst),
			latency:   e.cfg.Latency,
			conns:     make(map[net.Conn]struct{}),
			listeners: make(map[net.Listener]struct{}),
		}
		e.nodes[name] = n
	}
	return n
}

// lat returns the node's one-way latency; per-node overrides (AddNode)
// take effect on connections opened afterwards.
func (n *shapedNode) lat() time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.latency
}

func (n *shapedNode) register(c net.Conn) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.killed {
		return fmt.Errorf("netem: node %s is down: %w", n.name, types.ErrNodeDown)
	}
	n.conns[c] = struct{}{}
	return nil
}

func (n *shapedNode) unregister(c net.Conn) {
	n.mu.Lock()
	delete(n.conns, c)
	n.mu.Unlock()
}

// Listen implements Fabric.
func (e *Emulated) Listen(node string) (net.Listener, error) {
	return e.ListenOn(node, "127.0.0.1:0")
}

// ListenOn opens a listener for node on a specific address. A restarted
// node uses it to reclaim its previous identity: directory replica
// topologies are static address lists, so a shard host that comes back
// must come back at the same address.
func (e *Emulated) ListenOn(node, addr string) (net.Listener, error) {
	sn := e.node(node)
	sn.mu.Lock()
	if sn.killed {
		sn.mu.Unlock()
		return nil, fmt.Errorf("netem: node %s is down: %w", node, types.ErrNodeDown)
	}
	sn.mu.Unlock()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	// Dialers resolve this listener's owner for pair-wise shaping. The
	// entry deliberately outlives the listener: a killed-and-revived node
	// keeps its identity.
	e.setOwner(ln.Addr().String(), node)
	sl := &shapedListener{Listener: ln, fab: e, node: sn}
	sn.mu.Lock()
	sn.listeners[ln] = struct{}{}
	sn.mu.Unlock()
	return sl, nil
}

// Dial implements Fabric.
func (e *Emulated) Dial(ctx context.Context, node, addr string) (net.Conn, error) {
	sn := e.node(node)
	sn.mu.Lock()
	killed := sn.killed
	sn.mu.Unlock()
	if killed {
		return nil, fmt.Errorf("netem: node %s is down: %w", node, types.ErrNodeDown)
	}
	var d net.Dialer
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	// Register the ephemeral local address before returning, so by the
	// time the acceptor sees any data from this connection it can resolve
	// who dialed (its first read arrives strictly after Dial returned).
	local := c.LocalAddr().String()
	e.setOwner(local, node)
	sc := newShapedConn(c, e, sn, sn.lat())
	sc.ownedAddr = local
	if err := sn.register(sc); err != nil {
		c.Close()
		e.forgetOwner(local)
		return nil, err
	}
	return sc, nil
}

// AddNode pre-registers a node with its own link shaping, overriding the
// fabric-wide LinkConfig: a late joiner added to a running cluster comes
// up already capped instead of inheriting the defaults. Re-shaping an
// existing node is allowed; bandwidth changes apply to live connections,
// the latency override to connections opened afterwards.
func (e *Emulated) AddNode(name string, cfg LinkConfig) {
	burst := cfg.Burst
	if burst <= 0 {
		burst = 256 << 10
	}
	sn := e.node(name)
	sn.egress.setRate(cfg.BytesPerSec, burst)
	sn.ingress.setRate(cfg.BytesPerSec, burst)
	sn.mu.Lock()
	sn.latency = cfg.Latency
	sn.mu.Unlock()
}

// RemoveNode kills the node and forgets its shaping state entirely: a
// future Listen/Dial under the same name starts a fresh node with the
// fabric-wide defaults (unlike Kill/Revive, which preserve overrides).
func (e *Emulated) RemoveNode(name string) {
	e.Kill(name)
	e.mu.Lock()
	delete(e.nodes, name)
	e.mu.Unlock()
}

// Kill abruptly disconnects a node: all of its connections and listeners
// close, and future Listen/Dial calls by it fail, until Revive. Peers
// observe broken sockets, which is exactly how Hoplite detects failures
// (§5.5: "Hoplite detects failure by checking the liveness of a socket
// connection").
func (e *Emulated) Kill(node string) {
	sn := e.node(node)
	sn.mu.Lock()
	sn.killed = true
	conns := make([]net.Conn, 0, len(sn.conns))
	for c := range sn.conns {
		conns = append(conns, c)
	}
	lns := make([]net.Listener, 0, len(sn.listeners))
	for l := range sn.listeners {
		lns = append(lns, l)
	}
	sn.conns = make(map[net.Conn]struct{})
	sn.listeners = make(map[net.Listener]struct{})
	sn.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	for _, l := range lns {
		l.Close()
	}
}

// SetNodeLink re-shapes one node's bandwidth at runtime, overriding the
// fabric-wide LinkConfig for that node's ingress and egress token buckets
// (existing connections included). Latency is per-connection and keeps the
// fabric-wide value. Asymmetric setups — e.g. a receiver with a fat link
// pulling from senders with capped egress — are how striped multi-source
// fetches are benchmarked.
func (e *Emulated) SetNodeLink(node string, cfg LinkConfig) {
	burst := cfg.Burst
	if burst <= 0 {
		burst = 256 << 10
	}
	sn := e.node(node)
	sn.egress.setRate(cfg.BytesPerSec, burst)
	sn.ingress.setRate(cfg.BytesPerSec, burst)
}

// Revive allows a previously killed node to create connections again.
func (e *Emulated) Revive(node string) {
	sn := e.node(node)
	sn.mu.Lock()
	sn.killed = false
	sn.mu.Unlock()
}

// Close implements Fabric.
func (e *Emulated) Close() error {
	e.mu.Lock()
	nodes := make([]*shapedNode, 0, len(e.nodes))
	for _, n := range e.nodes {
		nodes = append(nodes, n)
	}
	e.mu.Unlock()
	for _, n := range nodes {
		e.Kill(n.name)
	}
	return nil
}

type shapedListener struct {
	net.Listener
	fab  *Emulated
	node *shapedNode
}

func (l *shapedListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	sc := newShapedConn(c, l.fab, l.node, l.node.lat())
	if err := l.node.register(sc); err != nil {
		c.Close()
		return nil, err
	}
	return sc, nil
}

func (l *shapedListener) Close() error {
	l.node.mu.Lock()
	delete(l.node.listeners, l.Listener)
	l.node.mu.Unlock()
	return l.Listener.Close()
}

// shapedConn wraps one endpoint of a TCP connection. Writes consume the
// owning node's egress tokens; reads are pumped through a delay queue that
// consumes ingress tokens and releases data one-way-latency after arrival.
type shapedConn struct {
	net.Conn
	fab     *Emulated
	node    *shapedNode
	latency time.Duration

	// ownedAddr is the dialer-side local address registered in fab.owners
	// (empty on accepted connections); Close unregisters it so a recycled
	// ephemeral port cannot be mis-attributed.
	ownedAddr string
	peerMu    sync.Mutex
	peer      string // far-side node name, resolved lazily

	segCh   chan segment
	readMu  sync.Mutex
	pendSeg *segment

	closeOnce sync.Once
	closeErr  error
}

type segment struct {
	data []byte
	at   time.Time
	err  error
}

func newShapedConn(c net.Conn, fab *Emulated, node *shapedNode, latency time.Duration) *shapedConn {
	sc := &shapedConn{Conn: c, fab: fab, node: node, latency: latency, segCh: make(chan segment, 64)}
	go sc.pump()
	return sc
}

// peerName resolves (and caches) which node owns the far side of this
// connection. Accepted connections cannot resolve until the dialer's Dial
// call has registered its ephemeral address, which always precedes its
// first byte arriving here.
func (c *shapedConn) peerName() string {
	c.peerMu.Lock()
	p := c.peer
	c.peerMu.Unlock()
	if p != "" {
		return p
	}
	// Resolve outside the lock: ownerOf takes the fabric lock, and the
	// race is benign (both resolvers compute the same owner).
	p = c.fab.ownerOf(c.Conn.RemoteAddr().String())
	c.peerMu.Lock()
	if c.peer == "" {
		c.peer = p
	}
	p = c.peer
	c.peerMu.Unlock()
	return p
}

func (c *shapedConn) pump() {
	for {
		buf := make([]byte, 64<<10)
		n, err := c.Conn.Read(buf)
		if n > 0 {
			c.node.ingress.take(int64(n))
			lat := c.latency
			if pl := c.fab.pair(c.peerName(), c.node.name); pl != nil {
				if d, ok := pl.lat(); ok {
					lat = d
				}
			}
			c.segCh <- segment{data: buf[:n], at: time.Now().Add(lat)}
		}
		if err != nil {
			c.segCh <- segment{err: err, at: time.Now().Add(c.latency)}
			return
		}
	}
}

// Read implements net.Conn.
func (c *shapedConn) Read(p []byte) (int, error) {
	c.readMu.Lock()
	defer c.readMu.Unlock()
	seg := c.pendSeg
	if seg == nil {
		s, ok := <-c.segCh
		if !ok {
			return 0, types.ErrClosed
		}
		seg = &s
	}
	sleepUntil(seg.at)
	if seg.err != nil {
		c.pendSeg = seg // sticky error
		return 0, seg.err
	}
	n := copy(p, seg.data)
	if n < len(seg.data) {
		seg.data = seg.data[n:]
		c.pendSeg = seg
	} else {
		c.pendSeg = nil
	}
	return n, nil
}

// Write implements net.Conn.
func (c *shapedConn) Write(p []byte) (int, error) {
	var written int
	for len(p) > 0 {
		chunk := p
		if len(chunk) > 64<<10 {
			chunk = chunk[:64<<10]
		}
		c.node.egress.take(int64(len(chunk)))
		if pl := c.fab.pair(c.node.name, c.peerName()); pl != nil {
			pl.bucket.take(int64(len(chunk)))
		}
		n, err := c.Conn.Write(chunk)
		written += n
		if err != nil {
			return written, err
		}
		p = p[len(chunk):]
	}
	return written, nil
}

// Close implements net.Conn.
func (c *shapedConn) Close() error {
	c.closeOnce.Do(func() {
		if c.ownedAddr != "" {
			c.fab.forgetOwner(c.ownedAddr)
		}
		c.node.unregister(c)
		c.closeErr = c.Conn.Close()
	})
	return c.closeErr
}

// sleepUntil waits until at with sub-millisecond accuracy: the kernel
// timer quantum can exceed 1 ms in virtualized environments, which would
// inflate injected latencies by an order of magnitude, so the tail of the
// wait is spun cooperatively.
//
// sleepUntil sleeps to a deadline with a only a tiny spin window at the
// end. The window must stay small: every shaped write and delayed segment
// delivery passes through here, so a generous busy-wait (an earlier
// version spun the last 2ms) multiplied by a few dozen concurrent streams
// oversubscribes the CPUs and delays every goroutine in the process by
// whole preemption quanta — swamping the very queueing behavior the
// fabric is supposed to emulate.
//
//hoplite:sleep-ok the loop is the timer itself: it models link delay, not polling for state
func sleepUntil(at time.Time) {
	for {
		d := time.Until(at)
		switch {
		case d <= 0:
			return
		case d > 50*time.Microsecond:
			time.Sleep(d - 20*time.Microsecond)
		default:
			runtime.Gosched()
		}
	}
}

// bucket models a rate-limited link as a FIFO serialization queue, the way
// a NIC transmit queue behaves: each take occupies the line for n/rate
// seconds and its writer sleeps until its own bytes have drained, behind
// whatever earlier takers already queued. A late small write therefore
// waits only for the bytes ahead of it — not, as a shared-debt token
// bucket would have it, for every byte any concurrent writer has charged —
// so egress scheduling at the sender is observable through the emulation.
// An idle line accrues up to burst bytes of credit, letting short bursts
// pass unshaped.
type bucket struct {
	mu    sync.Mutex
	rate  float64 // bytes per second; <=0 means unlimited
	burst float64
	free  time.Time // when the last queued byte drains
}

func newBucket(rate, burst float64) *bucket {
	return &bucket{rate: rate, burst: burst}
}

// setRate re-targets the bucket at runtime; the standing queue is forgiven
// so a rate change takes effect immediately.
func (b *bucket) setRate(rate, burst float64) {
	b.mu.Lock()
	b.rate = rate
	b.burst = burst
	b.free = time.Time{}
	b.mu.Unlock()
}

func (b *bucket) take(n int64) {
	b.mu.Lock()
	// rate is read under the lock: SetNodeLink re-targets live buckets
	// while senders are mid-take.
	if b.rate <= 0 {
		b.mu.Unlock()
		return
	}
	now := time.Now()
	// An idle line owes up to burst bytes of credit: the queue tail never
	// lags more than burst/rate behind the present.
	if floor := now.Add(-time.Duration(b.burst / b.rate * float64(time.Second))); b.free.Before(floor) {
		b.free = floor
	}
	b.free = b.free.Add(time.Duration(float64(n) / b.rate * float64(time.Second)))
	wakeAt := b.free
	b.mu.Unlock()
	if wakeAt.After(now) {
		sleepUntil(wakeAt)
	}
}
