// Package store implements the per-node object store (§2.1, §6): an
// in-memory table of immutable object buffers. Objects created by a local
// Put are pinned until Delete — guaranteeing at least one live copy exists
// to serve future Gets — while copies replicated from remote nodes are
// unpinned and evicted LRU when the store exceeds its capacity.
package store

import (
	"container/list"
	"fmt"
	"sync"

	"hoplite/internal/buffer"
	"hoplite/internal/types"
)

// EvictFunc is called (outside the store lock) when an unpinned copy is
// evicted, so the node can remove its directory location.
type EvictFunc func(oid types.ObjectID)

// Store is a node-local object store.
type Store struct {
	capacity int64
	onEvict  EvictFunc

	mu      sync.Mutex
	used    int64
	objects map[types.ObjectID]*object
	lru     *list.List // front = most recently used; holds evictable oids
	closed  bool
}

type object struct {
	buf    *buffer.Buffer
	pinned bool
	elem   *list.Element // non-nil when on the LRU list
}

// New creates a store. capacity <= 0 means unlimited.
func New(capacity int64, onEvict EvictFunc) *Store {
	if onEvict == nil {
		onEvict = func(types.ObjectID) {}
	}
	return &Store{
		capacity: capacity,
		onEvict:  onEvict,
		objects:  make(map[types.ObjectID]*object),
		lru:      list.New(),
	}
}

// Create allocates a buffer for a new object. pinned marks Put-created
// objects that must survive until Delete; unpinned objects are remote
// copies eligible for LRU eviction. It returns ErrExists if the object is
// already present.
func (s *Store) Create(oid types.ObjectID, size int64, pinned bool) (*buffer.Buffer, error) {
	return s.CreateChunked(oid, size, 0, pinned)
}

// CreateChunked is Create with an explicit ledger chunk granularity
// (chunk <= 0 selects the default). Striped pulls size the claim grid to
// the object and sender count so every leased sender has a range to
// claim.
func (s *Store) CreateChunked(oid types.ObjectID, size, chunk int64, pinned bool) (*buffer.Buffer, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, types.ErrClosed
	}
	if _, ok := s.objects[oid]; ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("store: %v: %w", oid, types.ErrExists)
	}
	evicted := s.ensureRoomLocked(size)
	buf := buffer.NewChunked(size, chunk)
	o := &object{buf: buf, pinned: pinned}
	if !pinned {
		o.elem = s.lru.PushFront(oid)
	}
	s.objects[oid] = o
	s.used += size
	s.mu.Unlock()
	for _, e := range evicted {
		s.onEvict(e)
	}
	return buf, nil
}

// InsertSealed stores an already-complete payload (e.g. a small object
// fetched inline) without copying. Exactly one of the returned buffer and
// error is non-nil: when a complete copy already exists the insert is
// idempotent (objects are immutable) and the existing buffer is returned
// with a nil error; when the existing entry is still being written it
// returns ErrExists.
func (s *Store) InsertSealed(oid types.ObjectID, data []byte, pinned bool) (*buffer.Buffer, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, types.ErrClosed
	}
	if o, ok := s.objects[oid]; ok {
		if o.buf.Complete() {
			if o.elem != nil {
				s.lru.MoveToFront(o.elem)
			}
			s.mu.Unlock()
			return o.buf, nil
		}
		s.mu.Unlock()
		return nil, fmt.Errorf("store: %v: %w", oid, types.ErrExists)
	}
	evicted := s.ensureRoomLocked(int64(len(data)))
	buf := buffer.FromBytes(data)
	o := &object{buf: buf, pinned: pinned}
	if !pinned {
		o.elem = s.lru.PushFront(oid)
	}
	s.objects[oid] = o
	s.used += int64(len(data))
	s.mu.Unlock()
	for _, e := range evicted {
		s.onEvict(e)
	}
	return buf, nil
}

// ensureRoomLocked evicts unpinned complete LRU objects until size fits,
// returning the evicted IDs. Objects still being written are never
// evicted, and neither are buffers with live reader refs (pinned
// zero-copy views handed out via Acquire) — evicting under a live reader
// is the use-after-evict hazard the handle API exists to prevent. The
// scan is a single pass from the cold end of the LRU list — the cursor
// only moves forward, so a long run of unevictable buffers is skipped
// once instead of being rescanned for every victim, which previously made
// a burst of evictions O(n²).
func (s *Store) ensureRoomLocked(size int64) []types.ObjectID {
	if s.capacity <= 0 {
		return nil
	}
	var evicted []types.ObjectID
	for e := s.lru.Back(); e != nil && s.used+size > s.capacity; {
		prev := e.Prev()
		oid := e.Value.(types.ObjectID)
		if o := s.objects[oid]; o != nil && o.buf.Complete() && o.buf.Refs() == 0 {
			s.lru.Remove(e)
			delete(s.objects, oid)
			s.used -= o.buf.Size()
			evicted = append(evicted, oid)
		}
		e = prev
	}
	return evicted
}

// Get returns the buffer for oid, marking it recently used.
func (s *Store) Get(oid types.ObjectID) (*buffer.Buffer, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[oid]
	if !ok {
		return nil, false
	}
	if o.elem != nil {
		s.lru.MoveToFront(o.elem)
	}
	return o.buf, true
}

// Acquire returns the buffer for oid with one reader ref taken while the
// store lock is held, so the buffer cannot be evicted between lookup and
// pin. The caller owns the ref and must balance it with buffer.Unref
// (normally via ObjectRef.Release). Eviction skips buffers with live
// refs, so the returned view stays valid until released even under store
// pressure.
func (s *Store) Acquire(oid types.ObjectID) (*buffer.Buffer, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[oid]
	if !ok {
		return nil, false
	}
	if o.elem != nil {
		s.lru.MoveToFront(o.elem)
	}
	o.buf.Ref()
	return o.buf, true
}

// Pin marks an existing object non-evictable.
func (s *Store) Pin(oid types.ObjectID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[oid]
	if !ok {
		return false
	}
	if o.elem != nil {
		s.lru.Remove(o.elem)
		o.elem = nil
	}
	o.pinned = true
	return true
}

// Unpin makes an object evictable again.
func (s *Store) Unpin(oid types.ObjectID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[oid]
	if !ok {
		return false
	}
	if o.pinned {
		o.pinned = false
		o.elem = s.lru.PushFront(oid)
	}
	return true
}

// Delete removes an object regardless of pinning, failing its buffer so
// any in-flight readers abort. It reports whether the object was present.
func (s *Store) Delete(oid types.ObjectID) bool {
	s.mu.Lock()
	o, ok := s.objects[oid]
	if !ok {
		s.mu.Unlock()
		return false
	}
	if o.elem != nil {
		s.lru.Remove(o.elem)
	}
	delete(s.objects, oid)
	s.used -= o.buf.Size()
	s.mu.Unlock()
	o.buf.Fail(types.ErrDeleted)
	return true
}

// Contains reports whether the object is present (partial or complete).
func (s *Store) Contains(oid types.ObjectID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.objects[oid]
	return ok
}

// Used returns the bytes currently allocated.
func (s *Store) Used() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

// Len returns the number of stored objects.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.objects)
}

// Close fails every buffer and empties the store.
func (s *Store) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	objs := make([]*object, 0, len(s.objects))
	for _, o := range s.objects {
		objs = append(objs, o)
	}
	s.objects = make(map[types.ObjectID]*object)
	s.lru.Init()
	s.used = 0
	s.mu.Unlock()
	for _, o := range objs {
		o.buf.Fail(types.ErrClosed)
	}
}
