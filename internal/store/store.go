// Package store implements the per-node object store (§2.1, §6): an
// in-memory table of immutable object buffers. Objects created by a local
// Put are pinned until Delete — guaranteeing at least one live copy exists
// to serve future Gets — while copies replicated from remote nodes are
// unpinned and evicted LRU when the store exceeds its capacity.
//
// The store can run as the top of a two-tier hierarchy: with a Demote
// callback configured (backed by internal/spill), memory pressure demotes
// cold complete copies to disk instead of dropping them — first unpinned
// replicas, then pinned locals, because a spilled copy still honors the
// pin's "this node can serve the object" guarantee. Demotion uses
// high/low watermark hysteresis, and admission control (CreateAdmit)
// turns "store full of undemotable objects" into ctx-governed
// backpressure instead of unbounded memory growth.
package store

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"hoplite/internal/buffer"
	"hoplite/internal/types"
)

// EvictFunc is called (outside the store lock) when an unpinned copy is
// evicted, so the node can remove its directory location.
type EvictFunc func(oid types.ObjectID)

// DemoteFunc persists an eviction victim to the spill tier, called
// outside the store lock. Returning false (spill disabled or a disk
// error) falls the victim back to plain eviction via EvictFunc. The
// buffer is complete, has no live refs, and is already out of the store
// table, so the implementation owns it exclusively.
type DemoteFunc func(oid types.ObjectID, buf *buffer.Buffer) bool

// Default watermark fractions of the capacity: demotion starts when an
// allocation would cross HighWater and drains down to LowWater, so one
// burst of demotions buys headroom instead of demoting one object per
// allocation at the boundary.
const (
	DefaultHighWater = 0.90
	DefaultLowWater  = 0.70
)

// Tier configures a Store.
type Tier struct {
	// Capacity bounds the in-memory bytes; <= 0 means unlimited.
	Capacity int64
	// HighWater/LowWater are fractions of Capacity bounding the demotion
	// hysteresis (defaults DefaultHighWater/DefaultLowWater). They only
	// apply when Demote is set; legacy eviction triggers at Capacity.
	HighWater, LowWater float64
	// Admission makes CreateAdmit block (ctx-governed) while the new
	// object cannot fit under Capacity, instead of overshooting. Plain
	// Create/CreateChunked never block regardless.
	Admission bool
	// OnEvict is called for every dropped copy.
	OnEvict EvictFunc
	// Demote, if set, receives eviction victims for the spill tier.
	Demote DemoteFunc
	// PrepareDemote, if set, runs UNDER THE STORE LOCK in the same
	// critical section that unlinks each demotion victim from the table
	// (typically spill.Reserve). This keeps "in the store or findable in
	// the spill tier" atomic for concurrent readers — without it, a local
	// Get racing a batch demotion could miss both tiers and block on a
	// remote acquire that no sender can ever satisfy. It must be cheap,
	// non-blocking, and must not call back into the store.
	PrepareDemote func(oid types.ObjectID, size int64)
}

// Store is a node-local object store.
type Store struct {
	capacity  int64
	high, low int64 // demotion watermarks in bytes (== capacity when untired)
	admission bool
	onEvict   EvictFunc
	demote    DemoteFunc
	prepare   func(oid types.ObjectID, size int64)

	demoted atomic.Int64 // victims successfully handed to the spill tier

	mu      sync.Mutex
	used    int64
	objects map[types.ObjectID]*object
	lru     *list.List    // front = most recently used; unpinned, evictable oids
	pinned  *list.List    // same, for pinned objects (demotable, never droppable)
	space   chan struct{} // closed and replaced whenever used shrinks
	waiters int           // CreateAdmit callers parked on space right now
	closed  bool
}

type object struct {
	buf    *buffer.Buffer
	pinned bool
	elem   *list.Element // list entry on lru (unpinned) or pinned
}

// victim is an object removed from the table under the lock whose
// eviction callback still has to run outside it.
type victim struct {
	oid    types.ObjectID
	buf    *buffer.Buffer
	demote bool
	pinned bool
}

// New creates an untiered store: unpinned LRU eviction at capacity, no
// spill, no admission control. capacity <= 0 means unlimited.
func New(capacity int64, onEvict EvictFunc) *Store {
	return NewTiered(Tier{Capacity: capacity, OnEvict: onEvict})
}

// NewTiered creates a store with the full tier configuration.
func NewTiered(t Tier) *Store {
	if t.OnEvict == nil {
		t.OnEvict = func(types.ObjectID) {}
	}
	s := &Store{
		capacity:  t.Capacity,
		admission: t.Admission,
		onEvict:   t.OnEvict,
		demote:    t.Demote,
		prepare:   t.PrepareDemote,
		objects:   make(map[types.ObjectID]*object),
		lru:       list.New(),
		pinned:    list.New(),
		space:     make(chan struct{}),
	}
	high, low := t.HighWater, t.LowWater
	if high <= 0 || high > 1 {
		high = DefaultHighWater
	}
	if low <= 0 || low > high {
		low = DefaultLowWater
	}
	if low > high {
		low = high
	}
	s.high = int64(float64(t.Capacity) * high)
	s.low = int64(float64(t.Capacity) * low)
	return s
}

// Create allocates a buffer for a new object. pinned marks Put-created
// objects that must survive until Delete; unpinned objects are remote
// copies eligible for LRU eviction. It returns ErrExists if the object is
// already present. Create never blocks: allocations beyond capacity
// overshoot (internal paths — inbound pulls, reduce outputs — must not
// deadlock the collectives they serve).
func (s *Store) Create(oid types.ObjectID, size int64, pinned bool) (*buffer.Buffer, error) {
	return s.CreateChunked(oid, size, 0, pinned)
}

// CreateChunked is Create with an explicit ledger chunk granularity
// (chunk <= 0 selects the default). Striped pulls size the claim grid to
// the object and sender count so every leased sender has a range to
// claim.
func (s *Store) CreateChunked(oid types.ObjectID, size, chunk int64, pinned bool) (*buffer.Buffer, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, types.ErrClosed
	}
	if _, ok := s.objects[oid]; ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("store: %v: %w", oid, types.ErrExists)
	}
	victims := s.makeRoomLocked(size)
	buf := s.insertLocked(oid, buffer.NewChunked(size, chunk), pinned)
	s.mu.Unlock()
	s.finishEviction(victims)
	return buf, nil
}

// CreateAdmit is Create with admission backpressure: when the store was
// built with Tier.Admission and the new object cannot fit under the
// capacity even after demoting/evicting every eligible victim, it blocks
// until room appears or ctx is done — the "degrade to waiting, not to
// failure" discipline for out-of-core workloads. Without Admission it is
// identical to Create.
func (s *Store) CreateAdmit(ctx context.Context, oid types.ObjectID, size int64, pinned bool) (*buffer.Buffer, error) {
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return nil, types.ErrClosed
		}
		if _, ok := s.objects[oid]; ok {
			s.mu.Unlock()
			return nil, fmt.Errorf("store: %v: %w", oid, types.ErrExists)
		}
		victims := s.makeRoomLocked(size)
		if !s.admission || s.capacity <= 0 || s.used+size <= s.capacity {
			buf := s.insertLocked(oid, buffer.NewChunked(size, 0), pinned)
			s.mu.Unlock()
			s.finishEviction(victims)
			return buf, nil
		}
		ch := s.space
		s.waiters++
		s.mu.Unlock()
		s.finishEviction(victims)
		// Purely event-driven: every transition that can open room — used
		// shrinking, the last reader ref dropping, a buffer sealing, an
		// object unpinning — fires the space signal.
		select {
		case <-ch:
		case <-ctx.Done():
		}
		s.mu.Lock()
		s.waiters--
		s.mu.Unlock()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
}

// insertLocked registers buf for oid and accounts its size. The buffer's
// evictability transitions that do not change the store's byte
// accounting — the last reader pin dropping, and the seal that turns an
// in-progress write into a complete (victim-eligible) copy — are hooked
// to wake admission waiters, so CreateAdmit never has to poll.
func (s *Store) insertLocked(oid types.ObjectID, buf *buffer.Buffer, pinned bool) *buffer.Buffer {
	o := &object{buf: buf, pinned: pinned}
	if pinned {
		o.elem = s.pinned.PushFront(oid)
	} else {
		o.elem = s.lru.PushFront(oid)
	}
	s.objects[oid] = o
	s.used += buf.Size()
	buf.OnRelease(s.signalSpace)
	if !buf.Complete() {
		// Already-complete buffers (InsertSealed) would fire the OnDone
		// callback synchronously under s.mu; they also free nothing, so
		// no wakeup is owed for them.
		buf.OnDone(func(error) { s.signalSpace() })
	}
	return buf
}

// InsertSealed stores an already-complete payload (e.g. a small object
// fetched inline) without copying. Exactly one of the returned buffer and
// error is non-nil: when a complete copy already exists the insert is
// idempotent (objects are immutable) and the existing buffer is returned
// with a nil error; when the existing entry is still being written it
// returns ErrExists.
func (s *Store) InsertSealed(oid types.ObjectID, data []byte, pinned bool) (*buffer.Buffer, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, types.ErrClosed
	}
	if o, ok := s.objects[oid]; ok {
		if o.buf.Complete() {
			s.touchLocked(o)
			s.mu.Unlock()
			return o.buf, nil
		}
		s.mu.Unlock()
		return nil, fmt.Errorf("store: %v: %w", oid, types.ErrExists)
	}
	victims := s.makeRoomLocked(int64(len(data)))
	buf := s.insertLocked(oid, buffer.FromBytes(data), pinned)
	s.mu.Unlock()
	s.finishEviction(victims)
	return buf, nil
}

// makeRoomLocked selects eviction victims for an allocation of size,
// removing them from the table and accounting immediately; the returned
// victims' callbacks (demote or evict) run outside the lock via
// finishEviction. Objects still being written are never victims, and
// neither are buffers with live reader refs (pinned zero-copy views
// handed out via Acquire) — evicting under a live reader is the
// use-after-evict hazard the handle API exists to prevent.
//
// Untiered (no Demote): unpinned complete LRU objects are dropped until
// size fits under capacity — a single backward pass, so a long run of
// unevictable buffers is skipped once instead of rescanned per victim.
//
// Tiered: when the allocation would cross the high watermark, victims are
// demoted down to the low watermark — cold unpinned replicas first, then
// cold pinned locals, because a spilled copy still serves Gets and so
// honors the pin.
func (s *Store) makeRoomLocked(size int64) []victim {
	if s.capacity <= 0 {
		return nil
	}
	var victims []victim
	if s.demote == nil {
		victims = s.reapLocked(s.lru, s.capacity-size, false, victims)
	} else if s.used+size > s.high {
		target := s.low - size
		victims = s.reapLocked(s.lru, target, true, victims)
		victims = s.reapLocked(s.pinned, target, true, victims)
	}
	if victims != nil {
		s.signalSpaceLocked()
	}
	return victims
}

// reapLocked walks l from its cold end collecting complete, unreffed
// victims until used <= target.
func (s *Store) reapLocked(l *list.List, target int64, demote bool, victims []victim) []victim {
	for e := l.Back(); e != nil && s.used > target; {
		prev := e.Prev()
		oid := e.Value.(types.ObjectID)
		if o := s.objects[oid]; o != nil && o.buf.Complete() && o.buf.Refs() == 0 {
			l.Remove(e)
			delete(s.objects, oid)
			s.used -= o.buf.Size()
			if demote && s.prepare != nil {
				// Reserve the spill-tier slot in the same critical
				// section that unlinks the victim: a concurrent reader
				// always finds the object in one tier or the other.
				s.prepare(oid, o.buf.Size())
			}
			victims = append(victims, victim{oid: oid, buf: o.buf, demote: demote, pinned: o.pinned})
		}
		e = prev
	}
	return victims
}

// finishEviction runs the victims' callbacks outside the store lock. A
// demotion that the spill tier refuses (disk error) degrades by victim
// kind: unpinned replicas are plainly evicted — another node still holds
// the object — but a pinned local is re-inserted into the store
// (overshooting the budget, the pre-tier behavior), because dropping it
// would break Put's serve-forever guarantee exactly when the disk
// misbehaves.
func (s *Store) finishEviction(victims []victim) {
	for _, v := range victims {
		if v.demote && s.demote(v.oid, v.buf) {
			s.demoted.Add(1)
			continue
		}
		if v.demote && v.pinned && s.reinsert(v.oid, v.buf) {
			continue
		}
		s.onEvict(v.oid)
	}
}

// reinsert puts a failed pinned demotion victim back into the table. It
// reports false when the store closed or a racing writer re-created the
// entry (the newer entry supersedes ours).
func (s *Store) reinsert(oid types.ObjectID, buf *buffer.Buffer) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	if _, ok := s.objects[oid]; ok {
		return false
	}
	s.insertLocked(oid, buf, true)
	return true
}

// signalSpaceLocked wakes CreateAdmit waiters after used shrank. With no
// waiter parked the channel is kept as is: rotating it would put one
// channel allocation on every handle release and unpin, which is exactly
// the hot path the zero-copy GetRef bar (0 allocs/op) measures. A future
// waiter cannot miss the skipped signal — it re-checks the admission
// condition under this same lock before capturing the channel.
func (s *Store) signalSpaceLocked() {
	if s.waiters == 0 {
		return
	}
	close(s.space)
	s.space = make(chan struct{})
}

// signalSpace is the hook form of signalSpaceLocked, fired by buffer
// release/seal transitions that make an object newly evictable.
func (s *Store) signalSpace() {
	s.mu.Lock()
	if !s.closed {
		s.signalSpaceLocked()
	}
	s.mu.Unlock()
}

// touchLocked marks o recently used on whichever list holds it.
func (s *Store) touchLocked(o *object) {
	if o.elem == nil {
		return
	}
	if o.pinned {
		s.pinned.MoveToFront(o.elem)
	} else {
		s.lru.MoveToFront(o.elem)
	}
}

// removeLocked drops o's list entry.
func (s *Store) removeLocked(o *object) {
	if o.elem == nil {
		return
	}
	if o.pinned {
		s.pinned.Remove(o.elem)
	} else {
		s.lru.Remove(o.elem)
	}
	o.elem = nil
}

// Get returns the buffer for oid, marking it recently used.
func (s *Store) Get(oid types.ObjectID) (*buffer.Buffer, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[oid]
	if !ok {
		return nil, false
	}
	s.touchLocked(o)
	return o.buf, true
}

// Acquire returns the buffer for oid with one reader ref taken while the
// store lock is held, so the buffer cannot be evicted (or demoted)
// between lookup and pin. The caller owns the ref and must balance it
// with buffer.Unref (normally via ObjectRef.Release). Eviction and
// demotion skip buffers with live refs, so the returned view stays valid
// until released even under store pressure.
func (s *Store) Acquire(oid types.ObjectID) (*buffer.Buffer, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[oid]
	if !ok {
		return nil, false
	}
	s.touchLocked(o)
	o.buf.Ref()
	return o.buf, true
}

// Pin marks an existing object non-evictable (though still demotable to
// the spill tier, which preserves the serve-forever guarantee).
func (s *Store) Pin(oid types.ObjectID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[oid]
	if !ok {
		return false
	}
	if !o.pinned {
		s.removeLocked(o)
		o.pinned = true
		o.elem = s.pinned.PushFront(oid)
	}
	return true
}

// Unpin makes an object evictable again.
func (s *Store) Unpin(oid types.ObjectID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[oid]
	if !ok {
		return false
	}
	if o.pinned {
		s.removeLocked(o)
		o.pinned = false
		o.elem = s.lru.PushFront(oid)
		// Newly LRU-evictable: admission waiters may now fit.
		s.signalSpaceLocked()
	}
	return true
}

// Delete removes an object regardless of pinning, failing its buffer so
// any in-flight readers abort. It reports whether the object was present.
func (s *Store) Delete(oid types.ObjectID) bool {
	s.mu.Lock()
	o, ok := s.objects[oid]
	if !ok {
		s.mu.Unlock()
		return false
	}
	s.removeLocked(o)
	delete(s.objects, oid)
	s.used -= o.buf.Size()
	s.signalSpaceLocked()
	s.mu.Unlock()
	o.buf.Fail(types.ErrDeleted)
	return true
}

// Contains reports whether the object is present (partial or complete).
func (s *Store) Contains(oid types.ObjectID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.objects[oid]
	return ok
}

// Used returns the bytes currently allocated.
func (s *Store) Used() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

// Len returns the number of stored objects.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.objects)
}

// Demotions returns how many victims were handed to the spill tier.
func (s *Store) Demotions() int64 { return s.demoted.Load() }

// Close fails every buffer and empties the store.
func (s *Store) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	objs := make([]*object, 0, len(s.objects))
	for _, o := range s.objects {
		objs = append(objs, o)
	}
	s.objects = make(map[types.ObjectID]*object)
	s.lru.Init()
	s.pinned.Init()
	s.used = 0
	s.signalSpaceLocked()
	s.mu.Unlock()
	for _, o := range objs {
		o.buf.Fail(types.ErrClosed)
	}
}
