package store

import (
	"context"
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"hoplite/internal/buffer"
	"hoplite/internal/types"
)

func oid(i int) types.ObjectID { return types.ObjectID{byte(i), byte(i >> 8)} }

func TestCreateGetDelete(t *testing.T) {
	s := New(0, nil)
	buf, err := s.Create(oid(1), 10, false)
	if err != nil {
		t.Fatal(err)
	}
	buf.Append(make([]byte, 10))
	buf.Seal()
	got, ok := s.Get(oid(1))
	if !ok || got != buf {
		t.Fatal("Get did not return buffer")
	}
	if !s.Delete(oid(1)) {
		t.Fatal("Delete reported absent")
	}
	if _, ok := s.Get(oid(1)); ok {
		t.Fatal("object survives Delete")
	}
	// A sealed buffer is never failed (readers hold valid data); an
	// in-progress buffer must be failed so blocked readers abort.
	if got.Failed() != nil {
		t.Fatal("sealed buffer failed by Delete")
	}
	part, err := s.Create(oid(2), 8, false)
	if err != nil {
		t.Fatal(err)
	}
	s.Delete(oid(2))
	if !errors.Is(part.Failed(), types.ErrDeleted) {
		t.Fatal("incomplete buffer not failed by Delete")
	}
}

func TestCreateDuplicate(t *testing.T) {
	s := New(0, nil)
	if _, err := s.Create(oid(1), 4, true); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create(oid(1), 4, true); !errors.Is(err, types.ErrExists) {
		t.Fatalf("got %v", err)
	}
}

func TestInsertSealed(t *testing.T) {
	s := New(0, nil)
	buf, err := s.InsertSealed(oid(2), []byte("abc"), false)
	if err != nil {
		t.Fatal(err)
	}
	if !buf.Complete() || string(buf.Bytes()) != "abc" {
		t.Fatal("sealed insert wrong")
	}
	if s.Used() != 3 {
		t.Fatalf("used %d", s.Used())
	}
}

func TestInsertSealedExistingComplete(t *testing.T) {
	s := New(0, nil)
	first, err := s.InsertSealed(oid(1), []byte("abc"), false)
	if err != nil {
		t.Fatal(err)
	}
	// Idempotent re-insert of an immutable object: the existing buffer
	// comes back with a nil error (one-or-the-other contract).
	again, err := s.InsertSealed(oid(1), []byte("abc"), false)
	if err != nil {
		t.Fatalf("re-insert of complete object errored: %v", err)
	}
	if again != first {
		t.Fatal("re-insert returned a different buffer")
	}
	if s.Used() != 3 {
		t.Fatalf("used %d, want 3 (no double accounting)", s.Used())
	}
}

func TestInsertSealedExistingIncomplete(t *testing.T) {
	s := New(0, nil)
	if _, err := s.Create(oid(1), 10, false); err != nil {
		t.Fatal(err)
	}
	buf, err := s.InsertSealed(oid(1), make([]byte, 10), false)
	if !errors.Is(err, types.ErrExists) {
		t.Fatalf("got %v, want ErrExists", err)
	}
	if buf != nil {
		t.Fatal("got both a buffer and an error")
	}
}

// Satellite regression: concurrent eviction-triggering inserts racing
// against in-progress writes to partial buffers. A buffer must never be
// evicted while incomplete, and the single-pass eviction scan must keep
// making room past a run of unevictable partials.
func TestConcurrentEvictionVsInProgressWrites(t *testing.T) {
	const writers = 8
	bufs := make(map[types.ObjectID]*buffer.Buffer)
	var mu sync.Mutex
	s := New(4096, func(o types.ObjectID) {
		// Completeness is monotonic, so an incomplete buffer seen here was
		// incomplete when the eviction scan chose it — a bug.
		mu.Lock()
		b := bufs[o]
		mu.Unlock()
		if b != nil && !b.Complete() {
			t.Errorf("incomplete buffer %v evicted", o)
		}
	})

	// A pool of partial buffers being written (and eventually sealed)
	// while eviction churn runs.
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		id := oid(1000 + w)
		buf, err := s.Create(id, 256, false)
		if err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		bufs[id] = buf
		mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 256; i += 16 {
				if err := buf.Append(make([]byte, 16)); err != nil {
					return
				}
			}
			buf.Seal()
		}()
	}
	// Sealed inserts churn the store over capacity, forcing evictions
	// that must walk past the in-progress buffers.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := oid(10000 + w*1000 + i)
				mu.Lock()
				bufs[id] = nil
				mu.Unlock()
				b, err := s.InsertSealed(id, make([]byte, 512), false)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				bufs[id] = b
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	// Eviction must have kept the store near capacity despite the run of
	// partials at the front of the LRU.
	if s.Used() > 4096+8*256+512 {
		t.Fatalf("used %d: eviction failed to make room", s.Used())
	}
}

func TestLRUEviction(t *testing.T) {
	var evicted []types.ObjectID
	var mu sync.Mutex
	s := New(30, func(o types.ObjectID) {
		mu.Lock()
		evicted = append(evicted, o)
		mu.Unlock()
	})
	for i := 0; i < 3; i++ {
		buf, err := s.InsertSealed(oid(i), make([]byte, 10), false)
		if err != nil {
			t.Fatal(err)
		}
		_ = buf
	}
	// Touch object 0 so object 1 is LRU.
	s.Get(oid(0))
	if _, err := s.InsertSealed(oid(9), make([]byte, 10), false); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(evicted) != 1 || evicted[0] != oid(1) {
		t.Fatalf("evicted %v, want [oid(1)]", evicted)
	}
	if s.Used() != 30 {
		t.Fatalf("used %d", s.Used())
	}
}

func TestPinnedNeverEvicted(t *testing.T) {
	s := New(20, nil)
	if _, err := s.InsertSealed(oid(1), make([]byte, 10), true); err != nil {
		t.Fatal(err)
	}
	if _, err := s.InsertSealed(oid(2), make([]byte, 10), true); err != nil {
		t.Fatal(err)
	}
	// Over capacity with only pinned objects: allowed to overflow.
	if _, err := s.InsertSealed(oid(3), make([]byte, 10), true); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if !s.Contains(oid(i)) {
			t.Fatalf("pinned object %d evicted", i)
		}
	}
}

func TestIncompleteNeverEvicted(t *testing.T) {
	s := New(10, nil)
	if _, err := s.Create(oid(1), 10, false); err != nil {
		t.Fatal(err)
	}
	// partial, unpinned, but incomplete: not evictable
	if _, err := s.InsertSealed(oid(2), make([]byte, 10), false); err != nil {
		t.Fatal(err)
	}
	if !s.Contains(oid(1)) {
		t.Fatal("incomplete object evicted")
	}
}

func TestPinUnpin(t *testing.T) {
	s := New(10, nil)
	if _, err := s.InsertSealed(oid(1), make([]byte, 10), false); err != nil {
		t.Fatal(err)
	}
	if !s.Pin(oid(1)) {
		t.Fatal("Pin failed")
	}
	if _, err := s.InsertSealed(oid(2), make([]byte, 10), false); err != nil {
		t.Fatal(err)
	}
	if !s.Contains(oid(1)) {
		t.Fatal("pinned object evicted")
	}
	if !s.Unpin(oid(1)) {
		t.Fatal("Unpin failed")
	}
	if s.Pin(oid(99)) {
		t.Fatal("Pin of absent object succeeded")
	}
}

func TestCloseFailsBuffers(t *testing.T) {
	s := New(0, nil)
	buf, _ := s.Create(oid(1), 5, true)
	s.Close()
	if !errors.Is(buf.Failed(), types.ErrClosed) {
		t.Fatal("buffer not failed on close")
	}
	if _, err := s.Create(oid(2), 5, false); !errors.Is(err, types.ErrClosed) {
		t.Fatal("create after close succeeded")
	}
	if s.Len() != 0 {
		t.Fatal("store not empty after close")
	}
}

// Property: used-bytes accounting matches the sum of live object sizes
// under arbitrary insert/delete sequences, and pinned objects survive.
func TestAccountingProperty(t *testing.T) {
	fn := func(ops []uint16) bool {
		s := New(500, nil)
		live := map[types.ObjectID]int64{}
		pinned := map[types.ObjectID]bool{}
		for _, op := range ops {
			id := oid(int(op % 16))
			switch (op / 16) % 3 {
			case 0:
				size := int64(op%97) + 1
				pin := op%2 == 0
				if _, ok := live[id]; ok {
					// Idempotent re-insert of an existing complete object:
					// the store keeps the original entry (size and pin).
					if _, err := s.InsertSealed(id, make([]byte, size), pin); err != nil {
						return false
					}
				} else if _, err := s.InsertSealed(id, make([]byte, size), pin); err == nil {
					live[id] = size
					pinned[id] = pin
				}
			case 1:
				if s.Delete(id) {
					delete(live, id)
					delete(pinned, id)
				}
			case 2:
				s.Get(id)
			}
			// Reconcile: evictions may have removed unpinned entries.
			for id := range live {
				if !s.Contains(id) {
					if pinned[id] {
						return false // pinned object vanished
					}
					delete(live, id)
					delete(pinned, id)
				}
			}
			var want int64
			for _, sz := range live {
				want += sz
			}
			if s.Used() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestAcquireRefBlocksEviction is the regression test for the
// GetImmutable recycle hazard: a copy with a live reader ref must survive
// store-pressure eviction, and become evictable again once released.
func TestAcquireRefBlocksEviction(t *testing.T) {
	s := New(30, nil)
	if _, err := s.InsertSealed(oid(1), make([]byte, 10), false); err != nil {
		t.Fatal(err)
	}
	buf, ok := s.Acquire(oid(1))
	if !ok {
		t.Fatal("Acquire missed present object")
	}
	if buf.Refs() != 1 {
		t.Fatalf("refs = %d, want 1", buf.Refs())
	}
	// Two more inserts leave no room: the unpinned-but-ref'd object would
	// be the LRU victim, but must be skipped.
	for i := 2; i <= 4; i++ {
		if _, err := s.InsertSealed(oid(i), make([]byte, 10), false); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Contains(oid(1)) {
		t.Fatal("object with live ref was evicted")
	}
	buf.Unref()
	if _, err := s.InsertSealed(oid(5), make([]byte, 10), false); err != nil {
		t.Fatal(err)
	}
	if s.Contains(oid(1)) {
		t.Fatal("released LRU object not evicted under pressure")
	}
}

// TestConcurrentReleaseVsEviction hammers Acquire/Unref against inserts
// that force eviction; run under -race it checks the ref count and the
// eviction scan never race. Acquired views must always read valid data.
func TestConcurrentReleaseVsEviction(t *testing.T) {
	s := New(64, nil)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if buf, ok := s.Acquire(oid(1)); ok {
					if buf.Complete() && buf.Bytes()[0] != 7 {
						t.Error("acquired view reads corrupt data")
					}
					buf.Unref()
				} else {
					payload := make([]byte, 16)
					payload[0] = 7
					_, _ = s.InsertSealed(oid(1), payload, false)
				}
			}
		}()
	}
	for i := 0; i < 500; i++ {
		_, _ = s.InsertSealed(oid(2+i%8), make([]byte, 16), false)
	}
	close(stop)
	wg.Wait()
}

// sealedObj creates a sealed object of size bytes.
func sealedObj(t *testing.T, s *Store, id types.ObjectID, size int, pinned bool) {
	t.Helper()
	b, err := s.Create(id, int64(size), pinned)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Append(make([]byte, size)); err != nil {
		t.Fatal(err)
	}
	b.Seal()
}

// TestTieredDemotionWatermarks checks the hysteresis: an allocation
// crossing the high watermark demotes cold objects (never plain-evicts
// them) down to the low watermark, oldest first.
func TestTieredDemotionWatermarks(t *testing.T) {
	var mu sync.Mutex
	var demoted []types.ObjectID
	s := NewTiered(Tier{
		Capacity:  1000,
		HighWater: 0.9,
		LowWater:  0.5,
		OnEvict: func(id types.ObjectID) {
			t.Errorf("object %v evicted; tiered store must demote", id)
		},
		Demote: func(id types.ObjectID, b *buffer.Buffer) bool {
			mu.Lock()
			demoted = append(demoted, id)
			mu.Unlock()
			return true
		},
	})
	for i := 0; i < 8; i++ {
		sealedObj(t, s, oid(i), 100, false)
	}
	if s.Demotions() != 0 {
		t.Fatalf("%d demotions below the high watermark", s.Demotions())
	}
	// used+size = 800+200 > 900: demote until used+200 <= 500.
	sealedObj(t, s, oid(100), 200, false)
	mu.Lock()
	got := append([]types.ObjectID(nil), demoted...)
	mu.Unlock()
	if len(got) != 5 {
		t.Fatalf("demoted %d objects, want 5 (%v)", len(got), got)
	}
	for i, id := range got {
		if id != oid(i) {
			t.Fatalf("demotion order %v; want coldest-first", got)
		}
	}
	if s.Used() != 500 {
		t.Fatalf("used %d after demotion, want 500", s.Used())
	}
	if s.Demotions() != 5 {
		t.Fatalf("Demotions() = %d", s.Demotions())
	}
}

// TestTieredDemotesPinnedAfterUnpinned: pinned objects are demotable (a
// spilled copy still serves), but only after every cold unpinned replica.
func TestTieredDemotesPinnedAfterUnpinned(t *testing.T) {
	var mu sync.Mutex
	var demoted []types.ObjectID
	s := NewTiered(Tier{
		Capacity:  1000,
		HighWater: 0.9,
		LowWater:  0.3,
		Demote: func(id types.ObjectID, b *buffer.Buffer) bool {
			mu.Lock()
			demoted = append(demoted, id)
			mu.Unlock()
			return true
		},
	})
	sealedObj(t, s, oid(0), 300, true) // pinned, cold
	sealedObj(t, s, oid(1), 300, false)
	sealedObj(t, s, oid(2), 300, false)
	// 900+300 > 900: target 300-300=0 → both unpinned go, then the pinned.
	sealedObj(t, s, oid(3), 300, true)
	mu.Lock()
	got := append([]types.ObjectID(nil), demoted...)
	mu.Unlock()
	want := []types.ObjectID{oid(1), oid(2), oid(0)}
	if len(got) != len(want) {
		t.Fatalf("demoted %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("demoted %v, want unpinned-then-pinned %v", got, want)
		}
	}
}

// TestDemoteFailureFallsBackToEviction: a spill tier refusing a victim
// (disk trouble) degrades to plain eviction rather than wedging.
func TestDemoteFailureFallsBackToEviction(t *testing.T) {
	var evicted []types.ObjectID
	s := NewTiered(Tier{
		Capacity: 1000,
		OnEvict:  func(id types.ObjectID) { evicted = append(evicted, id) },
		Demote:   func(types.ObjectID, *buffer.Buffer) bool { return false },
	})
	sealedObj(t, s, oid(0), 900, false)
	sealedObj(t, s, oid(1), 500, false)
	if len(evicted) != 1 || evicted[0] != oid(0) {
		t.Fatalf("evicted %v", evicted)
	}
	if s.Demotions() != 0 {
		t.Fatal("failed demotion counted")
	}
}

// TestCreateAdmitBackpressure: with admission on, an allocation that
// cannot fit blocks until room appears (here: a Delete) or its ctx dies,
// instead of overshooting the budget.
func TestCreateAdmitBackpressure(t *testing.T) {
	s := NewTiered(Tier{Capacity: 1000, Admission: true})
	sealedObj(t, s, oid(0), 1000, true) // pinned: not evictable, no spill
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, err := s.CreateAdmit(ctx, oid(1), 500, true); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("CreateAdmit = %v, want deadline", err)
	}
	// Free room concurrently; the blocked admit must ride through.
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_, err := s.CreateAdmit(ctx, oid(2), 500, true)
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	s.Delete(oid(0))
	if err := <-done; err != nil {
		t.Fatalf("admit after delete: %v", err)
	}
	if s.Used() != 500 {
		t.Fatalf("used %d", s.Used())
	}
}

// TestCreateAdmitWakesOnRefRelease: dropping the last reader ref makes an
// object evictable without the store's byte accounting changing, so the
// admission path needs an explicit event — there is no poll fallback any
// more. A blocked CreateAdmit must ride through on exactly that event.
func TestCreateAdmitWakesOnRefRelease(t *testing.T) {
	s := NewTiered(Tier{Capacity: 1000, Admission: true})
	sealedObj(t, s, oid(0), 1000, false) // unpinned: evictable once unreffed
	ref, ok := s.Acquire(oid(0))
	if !ok {
		t.Fatal("acquire")
	}
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_, err := s.CreateAdmit(ctx, oid(1), 500, true)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("admit proceeded past a live reader ref: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	ref.Unref() // the release hook must wake the admission waiter
	if err := <-done; err != nil {
		t.Fatalf("admit after ref release: %v", err)
	}
	if s.Contains(oid(0)) {
		t.Fatal("victim not evicted")
	}
}

// TestCreateAdmitWakesOnSeal: sealing turns an in-progress write into a
// complete, victim-eligible copy without touching used — the other
// accounting-free evictability transition the admission path must observe.
func TestCreateAdmitWakesOnSeal(t *testing.T) {
	s := NewTiered(Tier{Capacity: 1000, Admission: true})
	buf, err := s.Create(oid(0), 1000, false)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_, err := s.CreateAdmit(ctx, oid(1), 500, true)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("admit proceeded past an in-progress write: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	if err := buf.Append(make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	buf.Seal() // the completion hook must wake the admission waiter
	if err := <-done; err != nil {
		t.Fatalf("admit after seal: %v", err)
	}
}

// TestAcquireRefBlocksDemotion: a live reader ref pins the buffer in
// memory — demotion must skip it even when it is the coldest object, and
// take it once released.
func TestAcquireRefBlocksDemotion(t *testing.T) {
	var mu sync.Mutex
	demoted := map[types.ObjectID]bool{}
	s := NewTiered(Tier{
		Capacity:  1000,
		HighWater: 0.9,
		LowWater:  0.1,
		Demote: func(id types.ObjectID, b *buffer.Buffer) bool {
			mu.Lock()
			demoted[id] = true
			mu.Unlock()
			return true
		},
	})
	sealedObj(t, s, oid(0), 400, false)
	ref, ok := s.Acquire(oid(0))
	if !ok {
		t.Fatal("acquire")
	}
	sealedObj(t, s, oid(1), 400, false)
	sealedObj(t, s, oid(2), 400, false) // crosses high: demotes o1, skips reffed o0
	mu.Lock()
	if demoted[oid(0)] {
		t.Fatal("demoted a buffer with a live ref")
	}
	if !demoted[oid(1)] {
		t.Fatal("unreffed cold object not demoted")
	}
	mu.Unlock()
	if !s.Contains(oid(0)) {
		t.Fatal("reffed object left the store")
	}
	ref.Unref()
	sealedObj(t, s, oid(3), 400, false)
	mu.Lock()
	defer mu.Unlock()
	if !demoted[oid(0)] {
		t.Fatal("released object not demoted under pressure")
	}
}

// TestConcurrentAcquireVsDemotionRace hammers Acquire pins against
// demotion-inducing creates (run with -race): the invariant is that no
// buffer reaches the demote callback with a live ref, because a demoted
// buffer's memory is about to be dropped from the table.
func TestConcurrentAcquireVsDemotionRace(t *testing.T) {
	s := NewTiered(Tier{
		Capacity:  64 << 10,
		HighWater: 0.9,
		LowWater:  0.5,
		Demote: func(id types.ObjectID, b *buffer.Buffer) bool {
			if b.Refs() != 0 {
				t.Errorf("demotion victim %v has %d live refs", id, b.Refs())
			}
			return true
		},
	})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := seed; ; i += 7 {
				select {
				case <-stop:
					return
				default:
				}
				if b, ok := s.Acquire(oid(i % 64)); ok {
					_ = b.Bytes()
					b.Unref()
				}
			}
		}(r)
	}
	for i := 0; i < 2000; i++ {
		id := oid(i % 64)
		b, err := s.Create(id, 4<<10, false)
		if errors.Is(err, types.ErrExists) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Append(make([]byte, 4<<10)); err == nil {
			b.Seal()
		}
	}
	close(stop)
	wg.Wait()
	if s.Demotions() == 0 {
		t.Fatal("no demotions happened; pressure loop broken")
	}
}

// TestPinnedDemoteFailureReinserts: when the spill tier refuses a pinned
// victim (disk trouble), the object is re-inserted (overshooting the
// budget) rather than dropped — a failed disk must not break Put's
// serve-forever guarantee. Unpinned victims still degrade to eviction.
func TestPinnedDemoteFailureReinserts(t *testing.T) {
	var evicted []types.ObjectID
	s := NewTiered(Tier{
		Capacity:  1000,
		HighWater: 0.9,
		LowWater:  0.1,
		OnEvict:   func(id types.ObjectID) { evicted = append(evicted, id) },
		Demote:    func(types.ObjectID, *buffer.Buffer) bool { return false },
	})
	sealedObj(t, s, oid(0), 400, true)  // pinned local
	sealedObj(t, s, oid(1), 400, false) // unpinned replica
	sealedObj(t, s, oid(2), 400, false) // crosses high → both victims fail to demote
	if !s.Contains(oid(0)) {
		t.Fatal("pinned object dropped after a failed demotion")
	}
	if s.Contains(oid(1)) {
		t.Fatal("unpinned replica survived a failed demotion")
	}
	if len(evicted) != 1 || evicted[0] != oid(1) {
		t.Fatalf("evicted %v, want just the unpinned replica", evicted)
	}
	if got, ok := s.Get(oid(0)); !ok || !got.Complete() {
		t.Fatal("reinserted pinned object unreadable")
	}
	if s.Used() != 800 { // 400 pinned (reinserted) + 400 new; replica evicted
		t.Fatalf("used %d, want 800", s.Used())
	}
}
