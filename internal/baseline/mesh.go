// Package baseline implements the comparator systems of the paper's
// evaluation (§5.1) on the same network fabric Hoplite runs on, so that
// latency comparisons are apples-to-apples:
//
//   - MPI: static collectives over a pre-established rank mesh — binomial
//     tree and pipelined chain broadcast/reduce, ring and
//     recursive-halving-doubling allreduce (OpenMPI-style algorithm
//     selection by message size).
//   - Gloo: unoptimized broadcast, ring / ring-chunked / halving-doubling
//     allreduce.
//   - Naive (Ray-like): an object store without collective optimization —
//     every receiver fetches the complete object from its creator, with
//     non-overlapped worker↔store copies.
//   - Central (Dask-like): like Naive, with every transfer mediated by a
//     central scheduler and slower serialization.
//
// All baselines assume the full participant set is known up front — the
// static-schedule property that makes them an ill fit for task systems
// (§2.2) — and none of them tolerate participant failure.
package baseline

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"hoplite/internal/netem"
)

// DefaultChunk is the pipelining chunk used by the chunked algorithms.
const DefaultChunk = 256 << 10

// Mesh is a static group of ranks with pairwise connections established
// up front — the world model of MPI-style collective libraries.
type Mesh struct {
	fab    netem.Fabric
	n      int
	prefix string
	ranks  []*Rank
}

// Rank is one process in the mesh.
type Rank struct {
	mesh  *Mesh
	id    int
	conns []net.Conn
	wmu   []sync.Mutex
	chunk int
}

// NewMesh builds an n-rank mesh on the fabric. Fabric node names are
// prefix-0 … prefix-(n-1), so emulated shaping applies per rank.
func NewMesh(fab netem.Fabric, n int, prefix string) (*Mesh, error) {
	if n <= 0 {
		return nil, fmt.Errorf("baseline: mesh size %d", n)
	}
	m := &Mesh{fab: fab, n: n, prefix: prefix}
	lns := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := fab.Listen(fmt.Sprintf("%s-%d", prefix, i))
		if err != nil {
			return nil, err
		}
		lns[i] = ln
	}
	m.ranks = make([]*Rank, n)
	for i := range m.ranks {
		m.ranks[i] = &Rank{mesh: m, id: i, conns: make([]net.Conn, n), wmu: make([]sync.Mutex, n), chunk: DefaultChunk}
	}

	// Accept side: each listener accepts n-1-i connections (rank i dials
	// every rank j > i), reading the dialer's rank first.
	var wg sync.WaitGroup
	errCh := make(chan error, n*n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := i + 1; j < n; j++ {
				conn, err := lns[i].Accept()
				if err != nil {
					errCh <- err
					return
				}
				var hdr [4]byte
				if _, err := io.ReadFull(conn, hdr[:]); err != nil {
					errCh <- err
					return
				}
				peer := int(binary.BigEndian.Uint32(hdr[:]))
				m.ranks[i].conns[peer] = conn
			}
		}(i)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			conn, err := fab.Dial(ctx, fmt.Sprintf("%s-%d", prefix, j), lns[i].Addr().String())
			if err != nil {
				return nil, fmt.Errorf("baseline: connect %d->%d: %w", j, i, err)
			}
			var hdr [4]byte
			binary.BigEndian.PutUint32(hdr[:], uint32(j))
			if _, err := conn.Write(hdr[:]); err != nil {
				return nil, err
			}
			m.ranks[j].conns[i] = conn
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return nil, err
		}
	}
	for _, ln := range lns {
		ln.Close()
	}
	return m, nil
}

// Size returns the number of ranks.
func (m *Mesh) Size() int { return m.n }

// Rank returns rank i.
func (m *Mesh) Rank(i int) *Rank { return m.ranks[i] }

// Close tears down every connection.
func (m *Mesh) Close() error {
	for _, r := range m.ranks {
		for _, c := range r.conns {
			if c != nil {
				c.Close()
			}
		}
	}
	return nil
}

// ID returns the rank index.
func (r *Rank) ID() int { return r.id }

// Send streams data to a peer rank in chunks. Collective algorithms use
// each (conn, direction) from a single goroutine at a time by
// construction; the per-peer write lock guards accidental overlap.
//
//hoplite:locked-io the per-peer write lock exists to serialize chunk writes on the shared conn
func (r *Rank) Send(to int, data []byte) error {
	r.wmu[to].Lock()
	defer r.wmu[to].Unlock()
	conn := r.conns[to]
	if conn == nil {
		return fmt.Errorf("baseline: rank %d has no conn to %d", r.id, to)
	}
	for len(data) > 0 {
		c := data
		if len(c) > r.chunk {
			c = c[:r.chunk]
		}
		if _, err := conn.Write(c); err != nil {
			return err
		}
		data = data[len(c):]
	}
	return nil
}

// Recv fills buf with exactly len(buf) bytes from the peer rank.
func (r *Rank) Recv(from int, buf []byte) error {
	conn := r.conns[from]
	if conn == nil {
		return fmt.Errorf("baseline: rank %d has no conn to %d", r.id, from)
	}
	_, err := io.ReadFull(conn, buf)
	return err
}

// SendRecv overlaps a send and a receive with different peers (or the
// same peer), as ring algorithms require.
func (r *Rank) SendRecv(to int, sendBuf []byte, from int, recvBuf []byte) error {
	errc := make(chan error, 2)
	go func() { errc <- r.Send(to, sendBuf) }()
	go func() { errc <- r.Recv(from, recvBuf) }()
	var first error
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil && first == nil {
			first = err
		}
	}
	return first
}
