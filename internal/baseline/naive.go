package baseline

import (
	"time"

	"hoplite/internal/types"
)

// NaiveConfig models the overheads of object-store baselines that lack
// collective optimization and pipelining.
type NaiveConfig struct {
	// CopyBytesPerSec models the worker↔store memory copies that are NOT
	// overlapped with network transfer (Ray and Dask both pay one copy on
	// Put and one on Get, §5.1.1). Zero disables the cost.
	CopyBytesPerSec float64
	// OpOverhead is a fixed per-operation cost (driver dispatch,
	// serialization setup); dominates small objects (Appendix A).
	OpOverhead time.Duration
	// SchedulerRTT is the control latency paid per transfer for talking
	// to a central scheduler: zero for Ray-like (distributed
	// scheduling), positive for Dask-like (coordinator-mediated).
	SchedulerRTT time.Duration
}

// RayLike returns the overhead model used for the "Ray" baseline bars.
func RayLike(linkBytesPerSec float64) NaiveConfig {
	return NaiveConfig{CopyBytesPerSec: 4 * linkBytesPerSec, OpOverhead: time.Millisecond}
}

// DaskLike returns the overhead model used for the "Dask" baseline bars:
// slower serialization and coordinator-mediated transfers.
func DaskLike(linkBytesPerSec float64) NaiveConfig {
	return NaiveConfig{CopyBytesPerSec: 2 * linkBytesPerSec, OpOverhead: 4 * time.Millisecond, SchedulerRTT: 2 * time.Millisecond}
}

// Naive is an object-store baseline bound to one mesh rank.
type Naive struct {
	r   *Rank
	cfg NaiveConfig
}

// NewNaive wraps a rank with the overhead model.
func NewNaive(r *Rank, cfg NaiveConfig) *Naive { return &Naive{r: r, cfg: cfg} }

func (x *Naive) copyCost(bytes int) {
	if x.cfg.CopyBytesPerSec > 0 {
		time.Sleep(time.Duration(float64(bytes) / x.cfg.CopyBytesPerSec * float64(time.Second)))
	}
	time.Sleep(x.cfg.OpOverhead)
}

// schedule models the Dask-style scheduler round trip(s) a transfer pays
// before any data moves.
func (x *Naive) schedule() error {
	if x.cfg.SchedulerRTT > 0 {
		time.Sleep(x.cfg.SchedulerRTT)
	}
	return nil
}

// P2P performs one direction of a point-to-point transfer: the sender
// pays the Put copy before any bytes hit the wire (no pipelining), the
// receiver pays the Get copy after the last byte arrives.
func (x *Naive) P2P(to, from int, data []byte, isSender bool) error {
	if isSender {
		x.copyCost(len(data)) // Put: worker → store, unoverlapped
		return x.r.Send(to, data)
	}
	if err := x.schedule(); err != nil {
		return err
	}
	if err := x.r.Recv(from, data); err != nil {
		return err
	}
	x.copyCost(len(data)) // Get: store → worker, unoverlapped
	return nil
}

// Bcast is the unoptimized broadcast of task systems without collective
// support: every receiver fetches the full object from the creator, so
// the creator's egress is the bottleneck (n−1)·S/B (§2.2).
func (x *Naive) Bcast(root int, data []byte) error {
	if x.r.id == root {
		x.copyCost(len(data))
		errc := make(chan error, x.r.mesh.n-1)
		for i := 0; i < x.r.mesh.n; i++ {
			if i == root {
				continue
			}
			go func(i int) { errc <- x.r.Send(i, data) }(i)
		}
		var first error
		for i := 0; i < x.r.mesh.n-1; i++ {
			if err := <-errc; err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	if err := x.schedule(); err != nil {
		return err
	}
	if err := x.r.Recv(root, data); err != nil {
		return err
	}
	x.copyCost(len(data))
	return nil
}

// Reduce pulls every object to the root, which folds them one at a time —
// the parameter-server ingestion pattern that bottlenecks Ray in Figure 9.
func (x *Naive) Reduce(root int, op types.ReduceOp, data []byte) error {
	if x.r.id != root {
		x.copyCost(len(data))
		if err := x.schedule(); err != nil {
			return err
		}
		return x.r.Send(root, data)
	}
	n := x.r.mesh.n
	parts := make([][]byte, n)
	errc := make(chan error, n-1)
	for i := 0; i < n; i++ {
		if i == root {
			continue
		}
		parts[i] = make([]byte, len(data))
		go func(i int) { errc <- x.r.Recv(i, parts[i]) }(i)
	}
	var first error
	for i := 0; i < n-1; i++ {
		if err := <-errc; err != nil && first == nil {
			first = err
		}
	}
	if first != nil {
		return first
	}
	for i := 0; i < n; i++ {
		if i == root {
			continue
		}
		x.copyCost(len(data)) // per-object Get copy before applying
		if err := op.Accumulate(data, parts[i]); err != nil {
			return err
		}
	}
	return nil
}

// Gather pulls every object to the root without folding.
func (x *Naive) Gather(root int, data []byte, parts [][]byte) error {
	if x.r.id != root {
		x.copyCost(len(data))
		if err := x.schedule(); err != nil {
			return err
		}
		return x.r.Send(root, data)
	}
	n := x.r.mesh.n
	errc := make(chan error, n-1)
	for i := 0; i < n; i++ {
		if i == root {
			continue
		}
		go func(i int) { errc <- x.r.Recv(i, parts[i]) }(i)
	}
	var first error
	for i := 0; i < n-1; i++ {
		if err := <-errc; err != nil && first == nil {
			first = err
		}
	}
	for i := 0; i < n; i++ {
		if i != root {
			x.copyCost(len(data))
		}
	}
	return first
}

// AllReduce is reduce-to-root followed by root-broadcast — both ends
// bottlenecked at the root, which is why Ray's allreduce is an order of
// magnitude slower in Figure 7 group (i).
func (x *Naive) AllReduce(root int, op types.ReduceOp, data []byte) error {
	if err := x.Reduce(root, op, data); err != nil {
		return err
	}
	return x.Bcast(root, data)
}
