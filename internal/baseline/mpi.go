package baseline

import (
	"fmt"

	"hoplite/internal/types"
)

// The MPI-style collectives below follow OpenMPI's classic algorithm
// choices: binomial trees for small messages, pipelined chains for large
// ones, ring and recursive-halving-doubling allreduce. Every rank of the
// mesh calls the same method with the same arguments; the call returns
// when that rank's part of the schedule completes. The schedule is static
// (fixed by rank), which is exactly the property Figure 8 probes: a late
// participant stalls everything downstream of it in the tree.

// LargeMessage is the algorithm-switch threshold (bytes): below it the
// tree algorithms run un-pipelined; above it chains with chunk pipelining
// are used.
const LargeMessage = 1 << 20

func (r *Rank) vrank(root int) int    { return (r.id - root + r.mesh.n) % r.mesh.n }
func (r *Rank) real(vr, root int) int { return (vr + root) % r.mesh.n }

// Bcast broadcasts root's data to every rank, choosing binomial tree for
// small messages and a pipelined chain for large ones.
func (r *Rank) Bcast(root int, data []byte) error {
	if len(data) >= LargeMessage && r.mesh.n > 2 {
		return r.BcastChain(root, data)
	}
	return r.BcastBinomial(root, data)
}

// BcastBinomial is the classic binomial-tree broadcast: log2(n) rounds,
// full message per hop.
func (r *Rank) BcastBinomial(root int, data []byte) error {
	n := r.mesh.n
	vr := r.vrank(root)
	mask := 1
	for mask < n {
		if vr&mask != 0 {
			parent := r.real(vr-mask, root)
			if err := r.Recv(parent, data); err != nil {
				return err
			}
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vr+mask < n {
			child := r.real(vr+mask, root)
			if err := r.Send(child, data); err != nil {
				return err
			}
		}
		mask >>= 1
	}
	return nil
}

// BcastChain streams the message down a rank-ordered chain in chunks:
// time ≈ S/B + n·(chunk/B), near-optimal for large messages.
func (r *Rank) BcastChain(root int, data []byte) error {
	n := r.mesh.n
	vr := r.vrank(root)
	chunk := r.chunk
	for off := 0; off < len(data); off += chunk {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		if vr > 0 {
			if err := r.Recv(r.real(vr-1, root), data[off:end]); err != nil {
				return err
			}
		}
		if vr < n-1 {
			if err := r.Send(r.real(vr+1, root), data[off:end]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Reduce folds every rank's data element-wise into root's result buffer.
// data is each rank's contribution; on root it is overwritten with the
// result. Algorithm selection mirrors Bcast.
func (r *Rank) Reduce(root int, op types.ReduceOp, data []byte) error {
	if len(data) >= LargeMessage && r.mesh.n > 2 {
		return r.ReduceChain(root, op, data)
	}
	return r.ReduceBinomial(root, op, data)
}

// ReduceBinomial is the classic binomial-tree reduce.
func (r *Rank) ReduceBinomial(root int, op types.ReduceOp, data []byte) error {
	n := r.mesh.n
	vr := r.vrank(root)
	tmp := make([]byte, len(data))
	mask := 1
	for mask < n {
		if vr&mask == 0 {
			src := vr + mask
			if src < n {
				if err := r.Recv(r.real(src, root), tmp); err != nil {
					return err
				}
				if err := op.Accumulate(data, tmp); err != nil {
					return err
				}
			}
		} else {
			parent := r.real(vr-mask, root)
			return r.Send(parent, data)
		}
		mask <<= 1
	}
	return nil
}

// ReduceChain streams partial sums down a chain with chunk pipelining:
// the leaf sends its chunks to its neighbour, which folds in its own data
// and forwards, ending at the root — time ≈ S/B + n·(chunk/B).
func (r *Rank) ReduceChain(root int, op types.ReduceOp, data []byte) error {
	n := r.mesh.n
	vr := r.vrank(root)
	chunk := r.chunk
	if es := op.DType.Size(); es > 0 {
		chunk -= chunk % es
	}
	tmp := make([]byte, chunk)
	for off := 0; off < len(data); off += chunk {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		if vr < n-1 {
			if err := r.Recv(r.real(vr+1, root), tmp[:end-off]); err != nil {
				return err
			}
			if err := op.Accumulate(data[off:end], tmp[:end-off]); err != nil {
				return err
			}
		}
		if vr > 0 {
			if err := r.Send(r.real(vr-1, root), data[off:end]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Gather sends every rank's data to root. On root, parts[i] receives rank
// i's data (parts[root] is left untouched — the caller owns its copy);
// on other ranks parts is ignored.
func (r *Rank) Gather(root int, data []byte, parts [][]byte) error {
	if r.id != root {
		return r.Send(root, data)
	}
	errc := make(chan error, r.mesh.n-1)
	for i := 0; i < r.mesh.n; i++ {
		if i == root {
			continue
		}
		go func(i int) { errc <- r.Recv(i, parts[i]) }(i)
	}
	var first error
	for i := 0; i < r.mesh.n-1; i++ {
		if err := <-errc; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// AllReduceRing is the bandwidth-optimal ring allreduce: a reduce-scatter
// pass followed by an allgather pass, 2(n-1) neighbour exchanges of S/n
// bytes each. chunked selects Gloo's "ring-chunked" variant, which
// subdivides segment exchanges for smoother pipelining.
func (r *Rank) AllReduceRing(op types.ReduceOp, data []byte, chunked bool) error {
	n := r.mesh.n
	if n == 1 {
		return nil
	}
	es := op.DType.Size()
	if es == 0 {
		return fmt.Errorf("baseline: bad dtype")
	}
	// Segment boundaries, element-aligned.
	offs := make([]int, n+1)
	elems := len(data) / es
	for i := 0; i <= n; i++ {
		offs[i] = (elems * i / n) * es
	}
	seg := func(i int) []byte { i = ((i % n) + n) % n; return data[offs[i]:offs[i+1]] }

	right := (r.id + 1) % n
	left := (r.id - 1 + n) % n
	maxSeg := 0
	for i := 0; i < n; i++ {
		if s := offs[i+1] - offs[i]; s > maxSeg {
			maxSeg = s
		}
	}
	tmp := make([]byte, maxSeg)
	oldChunk := r.chunk
	if !chunked {
		r.chunk = 1 << 30 // whole-segment sends
	}
	defer func() { r.chunk = oldChunk }()

	// Reduce-scatter: after step s, rank owns fully reduced segment
	// (rank+1) at the end.
	for step := 0; step < n-1; step++ {
		sendIdx := r.id - step
		recvIdx := r.id - step - 1
		recvBuf := tmp[:len(seg(recvIdx))]
		if err := r.SendRecv(right, seg(sendIdx), left, recvBuf); err != nil {
			return err
		}
		if err := op.Accumulate(seg(recvIdx), recvBuf); err != nil {
			return err
		}
	}
	// Allgather: circulate the reduced segments.
	for step := 0; step < n-1; step++ {
		sendIdx := r.id - step + 1
		recvIdx := r.id - step
		if err := r.SendRecv(right, seg(sendIdx), left, seg(recvIdx)); err != nil {
			return err
		}
	}
	return nil
}

// AllReduceHD is recursive halving-doubling allreduce: reduce-scatter by
// recursive halving, allgather by recursive doubling — 2·log2(p) rounds,
// ≈2·S/B total bytes per rank. Non-power-of-two rank counts fold the
// extras onto partners first (the standard MPI trick).
func (r *Rank) AllReduceHD(op types.ReduceOp, data []byte) error {
	n := r.mesh.n
	if n == 1 {
		return nil
	}
	es := op.DType.Size()
	if es == 0 {
		return fmt.Errorf("baseline: bad dtype")
	}
	p := 1
	for p*2 <= n {
		p *= 2
	}
	extra := n - p
	nr := -1 // rank within the power-of-two group; -1 = folded out
	tmpFull := make([]byte, len(data))
	switch {
	case r.id < 2*extra && r.id%2 == 1:
		// Odd ranks in the folding zone contribute and wait.
		if err := r.Send(r.id-1, data); err != nil {
			return err
		}
		if err := r.Recv(r.id-1, data); err != nil {
			return err
		}
		return nil
	case r.id < 2*extra:
		if err := r.Recv(r.id+1, tmpFull); err != nil {
			return err
		}
		if err := op.Accumulate(data, tmpFull); err != nil {
			return err
		}
		nr = r.id / 2
	default:
		nr = r.id - extra
	}
	realOf := func(nr int) int {
		if nr < extra {
			return nr * 2
		}
		return nr + extra
	}

	// Reduce-scatter via recursive halving, recording each level so the
	// allgather can replay it in reverse.
	type level struct {
		partner                            int
		sendOff, sendCnt, recvOff, recvCnt int
	}
	var levels []level
	offset, count := 0, len(data)
	for mask := 1; mask < p; mask <<= 1 {
		partner := realOf(nr ^ mask)
		half := (count / 2 / es) * es
		var lv level
		lv.partner = partner
		if nr&mask == 0 {
			lv.sendOff, lv.sendCnt = offset+half, count-half
			lv.recvOff, lv.recvCnt = offset, half
			count = half
		} else {
			lv.sendOff, lv.sendCnt = offset, half
			lv.recvOff, lv.recvCnt = offset+half, count-half
			offset += half
			count = count - half
		}
		recvBuf := tmpFull[:lv.recvCnt]
		if err := r.SendRecv(partner, data[lv.sendOff:lv.sendOff+lv.sendCnt], partner, recvBuf); err != nil {
			return err
		}
		if err := op.Accumulate(data[lv.recvOff:lv.recvOff+lv.recvCnt], recvBuf); err != nil {
			return err
		}
		levels = append(levels, lv)
	}
	// Allgather via recursive doubling (reverse order): exchange the part
	// we own for the part the partner owns.
	for i := len(levels) - 1; i >= 0; i-- {
		lv := levels[i]
		if err := r.SendRecv(lv.partner, data[lv.recvOff:lv.recvOff+lv.recvCnt], lv.partner, data[lv.sendOff:lv.sendOff+lv.sendCnt]); err != nil {
			return err
		}
	}
	// Hand results back to folded-out partners.
	if r.id < 2*extra && r.id%2 == 0 {
		if err := r.Send(r.id+1, data); err != nil {
			return err
		}
	}
	return nil
}

// AllReduceTreeBcast is MPI's simple allreduce: reduce to rank 0 then
// broadcast, used for comparison in Figure 8's asynchrony experiment.
func (r *Rank) AllReduceTreeBcast(op types.ReduceOp, data []byte) error {
	if err := r.Reduce(0, op, data); err != nil {
		return err
	}
	return r.Bcast(0, data)
}

// GlooBcast is Gloo's unoptimized broadcast: the root sends the full
// message to every receiver directly (the paper notes Gloo does not
// optimize broadcast, §5.1.2).
func (r *Rank) GlooBcast(root int, data []byte) error {
	if r.id == root {
		errc := make(chan error, r.mesh.n-1)
		for i := 0; i < r.mesh.n; i++ {
			if i == root {
				continue
			}
			go func(i int) { errc <- r.Send(i, data) }(i)
		}
		var first error
		for i := 0; i < r.mesh.n-1; i++ {
			if err := <-errc; err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	return r.Recv(root, data)
}
