package baseline

import (
	"fmt"
	"sync"
	"testing"

	"hoplite/internal/netem"
	"hoplite/internal/types"
)

var sumF32 = types.ReduceOp{Kind: types.Sum, DType: types.F32}

func newTestMesh(t *testing.T, n int) *Mesh {
	t.Helper()
	m, err := NewMesh(&netem.TCP{}, n, t.Name())
	if err != nil {
		t.Fatalf("NewMesh(%d): %v", n, err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

// runAll invokes fn on every rank concurrently and fails on any error.
func runAll(t *testing.T, m *Mesh, fn func(r *Rank) error) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, m.Size())
	for i := 0; i < m.Size(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := fn(m.Rank(i)); err != nil {
				errs <- fmt.Errorf("rank %d: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func rankData(rank, elems int) []byte {
	xs := make([]float32, elems)
	for j := range xs {
		xs[j] = float32(rank + j%7)
	}
	return types.EncodeF32(xs)
}

func expectedSum(n, elems int) []float32 {
	want := make([]float32, elems)
	for r := 0; r < n; r++ {
		for j := range want {
			want[j] += float32(r + j%7)
		}
	}
	return want
}

func checkSum(t *testing.T, rank int, got []byte, want []float32) {
	t.Helper()
	xs := types.DecodeF32(got)
	for j := range want {
		if xs[j] != want[j] {
			t.Fatalf("rank %d elem %d: got %v want %v", rank, j, xs[j], want[j])
		}
	}
}

func TestBcastBinomial(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8} {
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			m := newTestMesh(t, n)
			src := rankData(42, 1024)
			runAll(t, m, func(r *Rank) error {
				data := make([]byte, len(src))
				if r.ID() == 1%n {
					copy(data, src)
				}
				if err := r.BcastBinomial(1%n, data); err != nil {
					return err
				}
				if string(data) != string(src) {
					return fmt.Errorf("mismatch")
				}
				return nil
			})
		})
	}
}

func TestBcastChain(t *testing.T) {
	for _, n := range []int{2, 4, 7} {
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			m := newTestMesh(t, n)
			src := rankData(7, 300000)
			runAll(t, m, func(r *Rank) error {
				data := make([]byte, len(src))
				if r.ID() == 0 {
					copy(data, src)
				}
				if err := r.BcastChain(0, data); err != nil {
					return err
				}
				if string(data) != string(src) {
					return fmt.Errorf("mismatch")
				}
				return nil
			})
		})
	}
}

func TestReduceBinomial(t *testing.T) {
	for _, n := range []int{2, 3, 4, 6, 8} {
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			m := newTestMesh(t, n)
			const elems = 4096
			want := expectedSum(n, elems)
			runAll(t, m, func(r *Rank) error {
				data := rankData(r.ID(), elems)
				if err := r.ReduceBinomial(0, sumF32, data); err != nil {
					return err
				}
				if r.ID() == 0 {
					checkSum(t, 0, data, want)
				}
				return nil
			})
		})
	}
}

func TestReduceChain(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			m := newTestMesh(t, n)
			const elems = 100000
			want := expectedSum(n, elems)
			runAll(t, m, func(r *Rank) error {
				data := rankData(r.ID(), elems)
				if err := r.ReduceChain(2%n, sumF32, data); err != nil {
					return err
				}
				if r.ID() == 2%n {
					checkSum(t, r.ID(), data, want)
				}
				return nil
			})
		})
	}
}

func TestGather(t *testing.T) {
	m := newTestMesh(t, 5)
	const elems = 2048
	runAll(t, m, func(r *Rank) error {
		data := rankData(r.ID(), elems)
		var parts [][]byte
		if r.ID() == 0 {
			parts = make([][]byte, m.Size())
			for i := range parts {
				parts[i] = make([]byte, len(data))
			}
		}
		if err := r.Gather(0, data, parts); err != nil {
			return err
		}
		if r.ID() == 0 {
			for i := 1; i < m.Size(); i++ {
				if string(parts[i]) != string(rankData(i, elems)) {
					return fmt.Errorf("part %d mismatch", i)
				}
			}
		}
		return nil
	})
}

func TestAllReduceRing(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8} {
		for _, chunked := range []bool{false, true} {
			t.Run(fmt.Sprintf("n=%d chunked=%v", n, chunked), func(t *testing.T) {
				m := newTestMesh(t, n)
				const elems = 10000
				want := expectedSum(n, elems)
				runAll(t, m, func(r *Rank) error {
					data := rankData(r.ID(), elems)
					if err := r.AllReduceRing(sumF32, data, chunked); err != nil {
						return err
					}
					checkSum(t, r.ID(), data, want)
					return nil
				})
			})
		}
	}
}

func TestAllReduceHD(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 6, 7, 8, 12, 16} {
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			m := newTestMesh(t, n)
			const elems = 8192
			want := expectedSum(n, elems)
			runAll(t, m, func(r *Rank) error {
				data := rankData(r.ID(), elems)
				if err := r.AllReduceHD(sumF32, data); err != nil {
					return err
				}
				checkSum(t, r.ID(), data, want)
				return nil
			})
		})
	}
}

func TestGlooBcast(t *testing.T) {
	m := newTestMesh(t, 6)
	src := rankData(3, 5000)
	runAll(t, m, func(r *Rank) error {
		data := make([]byte, len(src))
		if r.ID() == 0 {
			copy(data, src)
		}
		if err := r.GlooBcast(0, data); err != nil {
			return err
		}
		if string(data) != string(src) {
			return fmt.Errorf("mismatch")
		}
		return nil
	})
}

func TestNaiveCollectives(t *testing.T) {
	m := newTestMesh(t, 4)
	const elems = 4096
	want := expectedSum(4, elems)
	cfg := NaiveConfig{} // zero overheads for correctness testing
	t.Run("bcast", func(t *testing.T) {
		src := rankData(9, elems)
		runAll(t, m, func(r *Rank) error {
			x := NewNaive(r, cfg)
			data := make([]byte, len(src))
			if r.ID() == 0 {
				copy(data, src)
			}
			if err := x.Bcast(0, data); err != nil {
				return err
			}
			if string(data) != string(src) {
				return fmt.Errorf("mismatch")
			}
			return nil
		})
	})
	t.Run("allreduce", func(t *testing.T) {
		runAll(t, m, func(r *Rank) error {
			x := NewNaive(r, cfg)
			data := rankData(r.ID(), elems)
			if err := x.AllReduce(0, sumF32, data); err != nil {
				return err
			}
			checkSum(t, r.ID(), data, want)
			return nil
		})
	})
}

func TestAllReduceTreeBcast(t *testing.T) {
	for _, n := range []int{2, 5, 8} {
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			m := newTestMesh(t, n)
			const elems = 3000
			want := expectedSum(n, elems)
			runAll(t, m, func(r *Rank) error {
				data := rankData(r.ID(), elems)
				if err := r.AllReduceTreeBcast(sumF32, data); err != nil {
					return err
				}
				checkSum(t, r.ID(), data, want)
				return nil
			})
		})
	}
}
