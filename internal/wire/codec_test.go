package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"

	"hoplite/internal/types"
)

func sampleMessages() []Message {
	oid := types.ObjectIDFromString("obj")
	return []Message{
		{},
		{Method: MethodPing, ID: 1},
		{
			Method:   MethodLookup,
			ID:       1<<63 + 7,
			Flags:    FlagResponse,
			OID:      oid,
			Target:   types.ObjectIDFromString("target"),
			Sources:  []types.ObjectID{oid, types.ObjectIDFromString("b")},
			Node:     "10.0.0.1:7777",
			Sender:   "10.0.0.2:7777",
			Size:     -1, // SizeUnknown must survive the round trip
			Offset:   1 << 40,
			Num:      -12345,
			Num2:     3,
			Gen:      9,
			Complete: true,
			Wait:     true,
			Payload:  []byte{0, 1, 2, 3, 255},
			Locs: []types.Location{
				{Node: "n1", Progress: types.ProgressPartial},
				{Node: "", Progress: types.ProgressComplete},
			},
			Op:  types.ReduceOp{Kind: types.Max, DType: types.I64},
			Err: "object not found",
		},
		{Method: MethodAcquire, OID: oid, Wait: true},
		{Flags: FlagNotify, Method: MethodNotify, Locs: []types.Location{{Node: "x:1"}}},
		// One seed per remaining method (wiremethod enforces full corpus
		// coverage), each with the field subset that method actually uses.
		{Method: MethodPutStarted, ID: 2, OID: oid, Node: "n1:1", Size: 4096},
		{Method: MethodPutComplete, ID: 3, OID: oid, Node: "n1:1", Gen: 2},
		{Method: MethodPutInline, ID: 4, OID: oid, Node: "n1:1", Payload: []byte("inline")},
		{Method: MethodAcquireMany, ID: 5, OID: oid, Sender: "n2:1", Num: 4},
		{Method: MethodRelease, ID: 6, OID: oid, Node: "n2:1", Sender: "n1:1", Offset: 512, Complete: true},
		{Method: MethodAbort, ID: 7, OID: oid, Node: "n2:1", Sender: "n1:1", Err: "conn reset"},
		{Method: MethodAbortDown, ID: 8, OID: oid, Node: "n2:1", Sender: "n1:1"},
		{Method: MethodSubscribe, ID: 9, OID: oid, Node: "n3:1"},
		{Method: MethodUnsubscribe, ID: 10, OID: oid, Node: "n3:1"},
		{Method: MethodDelete, ID: 11, OID: oid},
		{Method: MethodPurgeNode, ID: 12, Node: "dead:1"},
		{Method: MethodRemoveLoc, ID: 13, OID: oid, Node: "n1:1"},
		{Method: MethodMarkSpilled, ID: 14, OID: oid, Node: "n1:1", Size: 1 << 20},
		{Method: MethodReduceStart, ID: 15, OID: oid, Target: types.ObjectIDFromString("out"),
			Sources: []types.ObjectID{oid}, Num: 1, Num2: 2, Gen: 3,
			Op: types.ReduceOp{Kind: types.Sum, DType: types.F64}},
		{Method: MethodReduceCancel, ID: 16, Target: types.ObjectIDFromString("out"), Gen: 3},
		{Method: MethodEvictLocal, ID: 17, OID: oid},
		{Method: MethodCancel, Num: 18},
		{Method: MethodReplicate, ID: 19, OID: oid, Node: "n1:1", Num: 7, Gen: 1},
		{Method: MethodDirHeartbeat, ID: 20, Num: 8},
		{Method: MethodDirSnapshot, ID: 21, Payload: []byte{1, 2, 3}, Num: 9},
		{Method: MethodJoin, ID: 22, Node: "new:1", Complete: true, Epoch: 3},
		{Method: MethodDrain, ID: 23, Node: "old:1", Num: 1, Epoch: 3},
		{Method: MethodMapPush, ID: 24, Payload: []byte{4, 5, 6}, Epoch: 4},
		{Method: MethodMapGet, ID: 25, Epoch: 2},
		{Method: MethodRepairPull, ID: 26, OID: oid, Epoch: 4},
		{Method: MethodStatus, ID: 27, Node: "n1:1", Epoch: 4},
		{Method: MethodLinkState, ID: 28, Payload: []byte{7, 8, 9}},
	}
}

func roundTrip(t *testing.T, m *Message) Message {
	t.Helper()
	frame, err := AppendMessage(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	n := binary.BigEndian.Uint32(frame[:4])
	if int(n) != len(frame)-4 {
		t.Fatalf("length prefix %d, body %d", n, len(frame)-4)
	}
	var got Message
	if err := UnmarshalMessage(frame[4:], &got); err != nil {
		t.Fatal(err)
	}
	return got
}

func messagesEqual(a, b *Message) bool {
	// nil and empty slices are indistinguishable on the wire.
	norm := func(m Message) Message {
		if len(m.Sources) == 0 {
			m.Sources = nil
		}
		if len(m.Locs) == 0 {
			m.Locs = nil
		}
		if len(m.Payload) == 0 {
			m.Payload = nil
		}
		return m
	}
	return reflect.DeepEqual(norm(*a), norm(*b))
}

func TestCodecRoundTrip(t *testing.T) {
	for i, m := range sampleMessages() {
		got := roundTrip(t, &m)
		if !messagesEqual(&m, &got) {
			t.Fatalf("message %d: round trip mismatch\nsent %+v\ngot  %+v", i, m, got)
		}
	}
}

func TestCodecStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := sampleMessages()
	for i := range msgs {
		if err := writeMessage(&buf, &msgs[i]); err != nil {
			t.Fatal(err)
		}
	}
	br := bufio.NewReader(&buf)
	for i := range msgs {
		var got Message
		if err := readMessage(br, &got); err != nil {
			t.Fatal(err)
		}
		if !messagesEqual(&msgs[i], &got) {
			t.Fatalf("stream message %d mismatch", i)
		}
	}
	if _, err := br.ReadByte(); err != io.EOF {
		t.Fatal("trailing bytes after stream")
	}
}

// Decoding reuses the target message; stale fields must not leak through.
func TestDecodeOverwritesPreviousFields(t *testing.T) {
	full := sampleMessages()[2]
	frame, err := AppendMessage(nil, &Message{Method: MethodPing})
	if err != nil {
		t.Fatal(err)
	}
	got := full
	if err := UnmarshalMessage(frame[4:], &got); err != nil {
		t.Fatal(err)
	}
	want := Message{Method: MethodPing}
	if !messagesEqual(&want, &got) {
		t.Fatalf("stale fields leaked: %+v", got)
	}
}

func TestOversizedLengthPrefixRejected(t *testing.T) {
	var frame [4]byte
	binary.BigEndian.PutUint32(frame[:], MaxFrameSize+1)
	var m Message
	err := readMessage(bytes.NewReader(frame[:]), &m)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v", err)
	}
}

func TestOversizedPayloadRejectedOnEncode(t *testing.T) {
	m := Message{Payload: make([]byte, MaxFrameSize)}
	if _, err := AppendMessage(nil, &m); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v", err)
	}
}

// Corrupt bodies must error out, never panic or over-allocate.
func TestCorruptBodiesRejected(t *testing.T) {
	good, err := AppendMessage(nil, &sampleMessages()[2])
	if err != nil {
		t.Fatal(err)
	}
	body := good[4:]
	for _, tc := range []struct {
		name string
		body []byte
	}{
		{"empty", nil},
		{"truncated fixed", body[:10]},
		{"truncated variable", body[:len(body)-3]},
		{"trailing garbage", append(append([]byte{}, body...), 0xAA)},
	} {
		var m Message
		if err := UnmarshalMessage(tc.body, &m); err == nil {
			t.Fatalf("%s: corrupt body accepted", tc.name)
		}
	}
	// A huge sources count with a tiny body must be rejected before the
	// decoder allocates count*20 bytes.
	short := append([]byte{}, body[:fixedBodySize]...)
	short = append(short, 0, 0, 0, 0, 0, 0) // empty node, sender, err
	short = binary.BigEndian.AppendUint32(short, 1<<30)
	var m Message
	if err := UnmarshalMessage(short, &m); err == nil {
		t.Fatal("huge sources count accepted")
	}
}

// FuzzMessageRoundTrip exercises the codec in both directions: structured
// inputs must survive encode→decode unchanged, and arbitrary decoder input
// must either round-trip consistently or fail cleanly.
func FuzzMessageRoundTrip(f *testing.F) {
	for _, m := range sampleMessages() {
		frame, err := AppendMessage(nil, &m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame[4:])
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, body []byte) {
		var m Message
		if err := UnmarshalMessage(body, &m); err != nil {
			return // rejected cleanly
		}
		// Whatever decoded must re-encode to an identical body: the codec
		// is canonical, so decode∘encode is the identity on valid frames.
		frame, err := AppendMessage(nil, &m)
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v", err)
		}
		if !bytes.Equal(frame[4:], body) {
			t.Fatalf("non-canonical frame:\nin  %x\nout %x", body, frame[4:])
		}
		var m2 Message
		if err := UnmarshalMessage(frame[4:], &m2); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !messagesEqual(&m, &m2) {
			t.Fatalf("round trip mismatch\nfirst  %+v\nsecond %+v", m, m2)
		}
	})
}
