package wire

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"hoplite/internal/types"
)

func startPair(t *testing.T, h Handler) (*Client, *Server) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ln, h)
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn, nil)
	t.Cleanup(func() { c.Close() })
	return c, srv
}

func TestCallRoundTrip(t *testing.T) {
	echo := func(ctx context.Context, m Message, p *Peer) Message {
		m.Size++
		return m
	}
	c, _ := startPair(t, echo)
	ctx := context.Background()
	resp, err := c.Call(ctx, Message{Method: MethodPing, Size: 41})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Size != 42 {
		t.Fatalf("size %d", resp.Size)
	}
}

func TestPipelinedConcurrentCalls(t *testing.T) {
	h := func(ctx context.Context, m Message, p *Peer) Message {
		time.Sleep(time.Duration(m.Size%5) * time.Millisecond)
		return Message{Size: m.Size * 2}
	}
	c, _ := startPair(t, h)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := int64(1); i <= 64; i++ {
		wg.Add(1)
		go func(i int64) {
			defer wg.Done()
			resp, err := c.Call(context.Background(), Message{Size: i})
			if err == nil && resp.Size != 2*i {
				err = errors.New("response mismatch")
			}
			errs <- err
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestServerPush(t *testing.T) {
	var peerMu sync.Mutex
	var peer *Peer
	h := func(ctx context.Context, m Message, p *Peer) Message {
		peerMu.Lock()
		peer = p
		peerMu.Unlock()
		return Message{}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ln, h)
	go srv.Serve()
	defer srv.Close()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan Message, 1)
	c := NewClient(conn, func(m Message) { got <- m })
	defer c.Close()
	if _, err := c.Call(context.Background(), Message{Method: MethodSubscribe}); err != nil {
		t.Fatal(err)
	}
	peerMu.Lock()
	p := peer
	peerMu.Unlock()
	if err := p.Notify(Message{Method: MethodNotify, Size: 7}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m.Size != 7 || m.Flags&FlagNotify == 0 {
			t.Fatalf("bad notify %+v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("notify not delivered")
	}
}

func TestBlockingHandlerCancelOnClose(t *testing.T) {
	started := make(chan struct{})
	h := func(ctx context.Context, m Message, p *Peer) Message {
		close(started)
		<-ctx.Done()
		return Message{}
	}
	c, _ := startPair(t, h)
	done := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), Message{})
		done <- err
	}()
	<-started
	c.Close()
	select {
	case err := <-done:
		if !errors.Is(err, types.ErrClosed) && !errors.Is(err, types.ErrNodeDown) {
			t.Fatalf("got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("call not released on close")
	}
}

func TestCallContextCancel(t *testing.T) {
	h := func(ctx context.Context, m Message, p *Peer) Message {
		<-ctx.Done()
		return Message{}
	}
	c, _ := startPair(t, h)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := c.Call(ctx, Message{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v", err)
	}
}

func TestServerCloseFailsPending(t *testing.T) {
	h := func(ctx context.Context, m Message, p *Peer) Message {
		<-ctx.Done()
		return Message{}
	}
	c, srv := startPair(t, h)
	done := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), Message{})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	srv.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("call survived server close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("call not released")
	}
}

func TestPeerOnClose(t *testing.T) {
	fired := make(chan struct{})
	h := func(ctx context.Context, m Message, p *Peer) Message {
		p.OnClose(func() { close(fired) })
		return Message{}
	}
	c, _ := startPair(t, h)
	if _, err := c.Call(context.Background(), Message{}); err != nil {
		t.Fatal(err)
	}
	c.Close()
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("OnClose not fired")
	}
}

func TestErrorOfSentinelMapping(t *testing.T) {
	for _, sentinel := range []error{
		types.ErrNotFound, types.ErrDeleted, types.ErrNoSender, types.ErrAborted,
		types.ErrNodeDown, types.ErrTooFewObjects, types.ErrExists, types.ErrClosed,
	} {
		var m Message
		m.SetError(sentinel)
		if got := m.ErrorOf(); !errors.Is(got, sentinel) {
			t.Fatalf("sentinel %v mapped to %v", sentinel, got)
		}
	}
	var m Message
	if m.ErrorOf() != nil {
		t.Fatal("empty error not nil")
	}
	m.SetError(errors.New("custom"))
	if m.ErrorOf() == nil || m.ErrorOf().Error() != "custom" {
		t.Fatal("custom error lost")
	}
}

// Property: arbitrary messages survive a server echo round trip intact.
func TestMessageRoundTripProperty(t *testing.T) {
	echo := func(ctx context.Context, m Message, p *Peer) Message { return m }
	c, _ := startPair(t, echo)
	fn := func(oid [20]byte, node string, size, off int64, payload []byte, complete bool) bool {
		m := Message{
			Method:   MethodLookup,
			OID:      types.ObjectID(oid),
			Node:     types.NodeID(node),
			Size:     size,
			Offset:   off,
			Payload:  payload,
			Complete: complete,
		}
		resp, err := c.Call(context.Background(), m)
		if err != nil {
			return false
		}
		if resp.OID != m.OID || resp.Node != m.Node || resp.Size != m.Size ||
			resp.Offset != m.Offset || resp.Complete != m.Complete {
			return false
		}
		if len(resp.Payload) != len(m.Payload) {
			return false
		}
		for i := range m.Payload {
			if resp.Payload[i] != m.Payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestCallCancelPropagates: abandoning a Call (ctx cancel) sends a
// best-effort MethodCancel, which cancels the server-side handler's ctx —
// a blocked directory acquire must not keep waiting for a receiver that
// has given up.
func TestCallCancelPropagates(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	handlerCtx := make(chan error, 1)
	srv := NewServer(ln, func(ctx context.Context, m Message, p *Peer) Message {
		<-ctx.Done()
		handlerCtx <- ctx.Err()
		return Message{}
	})
	go srv.Serve()
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn, nil)
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Call(ctx, Message{Method: MethodPing})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the call reach the handler
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("call returned %v", err)
	}
	select {
	case err := <-handlerCtx:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("handler ctx err %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server handler ctx never canceled")
	}
}
