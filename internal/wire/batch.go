// Write-side frame batching for control-plane connections.
//
// The original write path took a connection-wide mutex, encoded one frame,
// and flushed it — one syscall per logical call, with every concurrent
// caller serialized behind the lock for the duration of the kernel write.
// Under the high-QPS small-object workload (paper Fig11/Fig14) that
// per-call flush is the dominant control-plane cost.
//
// The batcher inverts the structure: callers only append their encoded
// frame to a shared queue under a short lock, and a single flusher
// goroutine drains whatever has accumulated with ONE conn.Write per
// wakeup. While that write is in flight, new frames pile into the queue
// and ride the next write, so batch size adapts to load: an idle
// connection still sends every frame immediately (no added latency when
// MaxDelay is zero), a busy one coalesces dozens of frames per syscall.
// Frames drain in enqueue order, preserving the transport invariant that
// a request precedes its MethodCancel on the wire.
package wire

import (
	"io"
	"sync"
	"sync/atomic"
	"time"

	"hoplite/internal/types"
)

// DefaultMaxBatchBytes is the queue size at which the flusher stops
// waiting for more frames and writes immediately.
const DefaultMaxBatchBytes = 256 << 10

// BatchConfig controls write-side frame coalescing on one connection.
// The zero value is the recommended setting: opportunistic coalescing
// with no artificial delay.
type BatchConfig struct {
	// MaxDelay is an extra coalescing window: after the first frame is
	// queued the flusher waits up to MaxDelay for more frames before
	// writing, trading latency for larger batches. Zero (the default)
	// keeps batching opportunistic — frames are written as soon as the
	// flusher is free, so an uncontended call pays no added latency.
	// Negative disables batching entirely: each frame is encoded and
	// written synchronously by its caller, the pre-batching behavior.
	MaxDelay time.Duration
	// MaxBytes cuts a MaxDelay window short once this many encoded bytes
	// are queued. Zero means DefaultMaxBatchBytes.
	MaxBytes int
}

// BatchStats counts write-side batching activity on one connection.
// Frames/Flushes is the average batch size; it grows with concurrency.
type BatchStats struct {
	Frames  int64 // logical frames enqueued
	Flushes int64 // write rounds (≈ syscalls) issued on the connection
	Bytes   int64 // encoded bytes written
}

// Add accumulates other into s (for aggregating across connections).
func (s *BatchStats) Add(other BatchStats) {
	s.Frames += other.Frames
	s.Flushes += other.Flushes
	s.Bytes += other.Bytes
}

// batcher owns all writes to one connection.
type batcher struct {
	w     io.Writer
	cfg   BatchConfig
	cap   int         // backpressure threshold on queued bytes
	onErr func(error) // invoked (once, on the flusher goroutine) on write failure

	mu     sync.Mutex
	drain  sync.Cond // signaled when the queue empties or the batcher dies
	queue  []byte    // encoded frames awaiting the flusher
	spare  []byte    // previous batch buffer, recycled to avoid realloc
	closed bool
	failed error

	kick chan struct{} // wakes the flusher; cap 1
	stop chan struct{} // closed by close()

	frames  atomic.Int64
	flushes atomic.Int64
	bytes   atomic.Int64
}

func newBatcher(w io.Writer, cfg BatchConfig, onErr func(error)) *batcher {
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = DefaultMaxBatchBytes
	}
	b := &batcher{
		w:     w,
		cfg:   cfg,
		cap:   4 * cfg.MaxBytes,
		onErr: onErr,
		queue: make([]byte, 0, 1024),
		spare: make([]byte, 0, 1024),
		kick:  make(chan struct{}, 1),
		stop:  make(chan struct{}),
	}
	b.drain.L = &b.mu
	if cfg.MaxDelay >= 0 {
		go b.run()
	}
	return b
}

// enqueue encodes m onto the queue and wakes the flusher. In disabled
// mode (MaxDelay < 0) it writes the frame synchronously instead. It
// blocks only when the queue is over the backpressure cap — i.e. the
// connection cannot keep up — mirroring how the old locked write path
// blocked callers behind a slow conn.
func (b *batcher) enqueue(m *Message) error {
	if b.cfg.MaxDelay < 0 {
		return b.writeNow(m)
	}
	b.mu.Lock()
	for len(b.queue) >= b.cap && b.failed == nil && !b.closed {
		b.drain.Wait()
	}
	if err := b.deadLocked(); err != nil {
		b.mu.Unlock()
		return err
	}
	q, err := AppendMessage(b.queue, m)
	if err != nil {
		b.mu.Unlock()
		return err
	}
	b.queue = q
	b.mu.Unlock()
	b.frames.Add(1)
	select {
	case b.kick <- struct{}{}:
	default: // flusher already signaled
	}
	return nil
}

// writeNow is the legacy unbatched path: encode and write one frame
// under the lock, exactly as the pre-batching Client did.
func (b *batcher) writeNow(m *Message) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.deadLocked(); err != nil {
		return err
	}
	err := writeMessage(b.w, m) //hoplite:locked-io batching disabled: the lock exists to serialize whole frames on the shared conn
	b.frames.Add(1)
	if err != nil {
		b.failLocked(err)
		return err
	}
	b.flushes.Add(1)
	return nil
}

func (b *batcher) deadLocked() error {
	if b.failed != nil {
		return b.failed
	}
	if b.closed {
		return types.ErrClosed
	}
	return nil
}

// run is the flusher: one goroutine per connection draining the queue.
func (b *batcher) run() {
	var timer *time.Timer
	for {
		select {
		case <-b.kick:
		case <-b.stop:
			b.flush() // final drain, best effort
			return
		}
		if d := b.cfg.MaxDelay; d > 0 && !b.full() {
			// Coalescing window: wait for more frames until the window
			// closes or the queue passes MaxBytes.
			if timer == nil {
				timer = time.NewTimer(d)
			} else {
				timer.Reset(d)
			}
		window:
			for {
				select {
				case <-b.kick:
					if b.full() {
						break window
					}
				case <-timer.C:
					break window
				case <-b.stop:
					break window
				}
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		}
		if !b.flush() {
			return
		}
	}
}

// full reports whether the queue has reached the MaxBytes threshold.
func (b *batcher) full() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.queue) >= b.cfg.MaxBytes
}

// flush swaps the queue out under the lock, writes it with the lock
// released (concurrent enqueuers keep filling the fresh queue), and
// recycles the drained buffer. Returns false when the batcher is done.
func (b *batcher) flush() bool {
	b.mu.Lock()
	batch := b.queue
	b.queue = b.spare[:0]
	b.spare = nil
	b.mu.Unlock()

	var err error
	if len(batch) > 0 {
		_, err = b.w.Write(batch)
		b.flushes.Add(1)
		b.bytes.Add(int64(len(batch)))
	}

	b.mu.Lock()
	b.spare = batch[:0]
	if err != nil && b.failed == nil {
		b.failLocked(err)
	}
	dead := b.failed != nil || b.closed
	b.drain.Broadcast()
	b.mu.Unlock()

	if err != nil && b.onErr != nil {
		b.onErr(err)
	}
	return !dead
}

// failLocked marks the batcher dead. Callers hold b.mu.
func (b *batcher) failLocked(err error) {
	b.failed = err
	b.drain.Broadcast()
}

// close stops the flusher after a final best-effort drain. Frames
// enqueued after close are rejected with ErrClosed.
func (b *batcher) close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	b.drain.Broadcast()
	b.mu.Unlock()
	close(b.stop)
}

// stats snapshots the batching counters.
func (b *batcher) stats() BatchStats {
	return BatchStats{
		Frames:  b.frames.Load(),
		Flushes: b.flushes.Load(),
		Bytes:   b.bytes.Load(),
	}
}
