// Package wire implements the control-plane RPC used by Hoplite's object
// directory service and reduce coordination: length-delimited fixed-layout
// binary messages (see codec.go) over TCP with pipelined request/response
// matching and server→client push notifications. The paper uses gRPC for
// this role (§4); wire provides the same semantics with only the standard
// library, and the hand-rolled codec keeps the per-message cost to a
// pooled scratch buffer instead of a reflective, allocation-heavy
// serializer.
package wire

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"hoplite/internal/types"
)

// Method identifies an RPC method. The set covers the directory service and
// the reduce control plane; unused fields of Message are simply zero.
type Method uint8

// RPC methods.
const (
	MethodNone Method = iota

	// Directory service (§3.2).
	MethodPutStarted  // object creation began on a node: register partial location
	MethodPutComplete // object fully present on a node: mark complete
	MethodPutInline   // small-object fast path: store payload in the directory
	MethodAcquire     // atomically lease a sender location for a receiver
	MethodAcquireMany // atomically lease up to Num complete-copy senders for a striped pull
	MethodRelease     // transfer finished: return sender, update receiver progress
	MethodAbort       // transfer failed: optionally drop the dead sender location
	MethodAbortDown   // sender saw the receiver's socket die: clear its lease/location
	MethodLookup      // non-mutating: size + all locations
	MethodSubscribe   // push future location updates for an object
	MethodUnsubscribe // stop pushing
	MethodDelete      // remove all copies of an object
	MethodPurgeNode   // drop every location on a (failed) node
	MethodNotify      // server→client push: location update
	MethodRemoveLoc   // drop one (object, node) location (eviction)
	MethodMarkSpilled // downgrade/register a node's location as disk-backed (spill tier)

	// Node control plane.
	MethodReduceStart  // coordinator → participant: run (or replace) a tree slot
	MethodReduceCancel // coordinator → participant: reduce done, clean up
	MethodEvictLocal   // delete the local copy of an object (Delete fan-out)

	// Misc.
	MethodPing
	// MethodCancel aborts the in-flight call whose ID is in Num. It is a
	// transport-level frame sent best-effort by a client whose Call ctx
	// died: the server cancels that handler's ctx so a blocked acquire
	// releases its directory claim instead of leasing a sender to a
	// receiver that has already given up. Cancel frames get no response.
	MethodCancel

	// Directory shard replication (primary/backup fault tolerance).
	MethodReplicate    // primary → backup: one sequenced shard op log entry
	MethodDirHeartbeat // primary → backup lease heartbeat (also the boot-time state query)
	MethodDirSnapshot  // primary → backup: full shard state push (resync)

	// Cluster membership (epoch-versioned cluster map).
	MethodJoin       // node → membership primary: add me; response payload carries the new map
	MethodDrain      // Num selects: 0 start draining Node, 1 drain finished (remove), 2 declare Node dead (remove + purge)
	MethodMapPush    // encoded ClusterMap in Payload: install if newer (also the replicated membership op)
	MethodMapGet     // fetch the current encoded ClusterMap
	MethodRepairPull // repair scanner → node: fetch a complete copy of OID to restore replication
	MethodStatus     // membership observability: map epoch, shard roles, under-replicated / sole-copy counts

	// Link-state telemetry.
	MethodLinkState // fetch the node's link-state table (encoded linkstate snapshot in the response payload)
)

// Flags for Message.Flags.
const (
	FlagResponse uint8 = 1 << iota
	FlagNotify
)

// Message is the single concrete frame exchanged on control connections.
// It is a "fat union": each method uses a subset of the fields. Keeping one
// concrete struct gives the codec a fixed layout to encode against and
// keeps decoding allocation-light.
type Message struct {
	ID     uint64
	Flags  uint8
	Method Method

	OID     types.ObjectID
	Target  types.ObjectID
	Sources []types.ObjectID
	Node    types.NodeID
	Sender  types.NodeID
	Size    int64
	Offset  int64
	Num     int64
	Num2    int64
	Gen     int64
	// Epoch stamps the sender's cluster-map epoch on membership-aware
	// requests. 0 means unstamped (legacy fixed-topology peers); a
	// receiver holding a newer map bounces stamped requests with
	// ErrStaleMap and its encoded map in the response payload.
	Epoch    int64
	Complete bool
	Wait     bool
	Payload  []byte
	Locs     []types.Location
	Op       types.ReduceOp
	Err      string
}

// ErrorOf converts the message's error string back into an error, mapping
// the shared sentinel errors to their canonical values so errors.Is works
// across the wire.
func (m *Message) ErrorOf() error {
	switch m.Err {
	case "":
		return nil
	case types.ErrNotFound.Error():
		return types.ErrNotFound
	case types.ErrDeleted.Error():
		return types.ErrDeleted
	case types.ErrNoSender.Error():
		return types.ErrNoSender
	case types.ErrAborted.Error():
		return types.ErrAborted
	case types.ErrNodeDown.Error():
		return types.ErrNodeDown
	case types.ErrTooFewObjects.Error():
		return types.ErrTooFewObjects
	case types.ErrExists.Error():
		return types.ErrExists
	case types.ErrClosed.Error():
		return types.ErrClosed
	case types.ErrNotPrimary.Error():
		return types.ErrNotPrimary
	case types.ErrStaleMap.Error():
		return types.ErrStaleMap
	default:
		return errors.New(m.Err)
	}
}

// SetError stores err in the message, if non-nil.
func (m *Message) SetError(err error) {
	if err != nil {
		m.Err = err.Error()
	}
}

// Client is a control-plane connection with pipelined calls. Multiple
// goroutines may Call concurrently; responses are matched by message ID.
// Writes go through a coalescing batcher (see batch.go): concurrent
// callers enqueue encoded frames and a single flusher drains them with
// one write per wakeup, so many logical calls share a syscall.
type Client struct {
	conn net.Conn
	b    *batcher

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan Message
	// abandoned tracks calls whose requester gave up (ctx cancel) before
	// the response arrived, keyed by ID to the original request. The
	// server answers every non-cancel request exactly once, so entries
	// are bounded: each is removed when its late response lands (feeding
	// the orphan callback) or when the connection fails.
	abandoned map[uint64]Message
	closed    error

	notify func(Message)
	orphan func(req, resp Message)
	down   func()
	rtt    func(time.Duration)
}

// NewClient wraps an established connection. notify, if non-nil, receives
// server push messages (FlagNotify) synchronously from the read loop.
func NewClient(conn net.Conn, notify func(Message)) *Client {
	return NewClientWith(conn, notify, BatchConfig{})
}

// NewClientWith is NewClient with an explicit write-batching config.
func NewClientWith(conn net.Conn, notify func(Message), cfg BatchConfig) *Client {
	c := &Client{
		conn:      conn,
		pending:   make(map[uint64]chan Message),
		abandoned: make(map[uint64]Message),
		notify:    notify,
	}
	c.b = newBatcher(conn, cfg, func(err error) {
		c.fail(fmt.Errorf("wire: send: %w", err))
	})
	go c.readLoop()
	return c
}

// BatchStats reports the connection's write-batching counters.
func (c *Client) BatchStats() BatchStats { return c.b.stats() }

// OnOrphan registers fn to receive late responses to abandoned calls
// (Call returned on ctx cancellation before the response arrived), so the
// owner can undo server-side effects the caller never observed — e.g. a
// directory acquire that granted a lease to a receiver that had already
// given up. fn runs on its own goroutine. Set it before issuing calls.
func (c *Client) OnOrphan(fn func(req, resp Message)) {
	c.mu.Lock()
	c.orphan = fn
	c.mu.Unlock()
}

// OnRTT registers fn to receive the wall-clock round-trip time of every
// completed Call — request enqueue to response arrival, batching delay
// included, which is exactly the latency a control RPC experiences. The
// link-state estimator hangs off this hook, so ordinary traffic
// (heartbeats, pings, directory calls) doubles as RTT probing with no
// dedicated probe messages. fn runs on the caller's goroutine and must be
// cheap. Set it before issuing calls.
func (c *Client) OnRTT(fn func(time.Duration)) {
	c.mu.Lock()
	c.rtt = fn
	c.mu.Unlock()
}

// OnDown registers fn to run once when the connection fails or is closed,
// so the owner can react to the peer's death without waiting for its next
// call to error (e.g. re-subscribing push notifications on a live
// replica). fn runs on its own goroutine; if the client is already down,
// it fires immediately. Set it before issuing calls.
func (c *Client) OnDown(fn func()) {
	c.mu.Lock()
	if c.closed != nil {
		c.mu.Unlock()
		go fn()
		return
	}
	c.down = fn
	c.mu.Unlock()
}

func (c *Client) readLoop() {
	br := bufio.NewReader(c.conn)
	for {
		var m Message
		if err := readMessage(br, &m); err != nil {
			c.fail(fmt.Errorf("wire: connection lost: %w", err))
			return
		}
		if m.Flags&FlagNotify != 0 {
			if c.notify != nil {
				c.notify(m)
			}
			continue
		}
		c.mu.Lock()
		ch, ok := c.pending[m.ID]
		if ok {
			delete(c.pending, m.ID)
		}
		var req Message
		orphaned := false
		if !ok {
			if r, ok2 := c.abandoned[m.ID]; ok2 {
				req, orphaned = r, true
				delete(c.abandoned, m.ID)
			}
		}
		orphanFn := c.orphan
		c.mu.Unlock()
		switch {
		case ok:
			ch <- m
		case orphaned && orphanFn != nil:
			go orphanFn(req, m)
		}
	}
}

func (c *Client) fail(err error) {
	c.mu.Lock()
	first := c.closed == nil
	if first {
		c.closed = err
	}
	pending := c.pending
	c.pending = make(map[uint64]chan Message)
	c.abandoned = make(map[uint64]Message) // their responses are never coming
	down := c.down
	c.mu.Unlock()
	if first && down != nil {
		go down()
	}
	for id, ch := range pending {
		var m Message
		m.ID = id
		m.SetError(types.ErrNodeDown)
		ch <- m
	}
	c.b.close()
	c.conn.Close()
}

// Close tears down the connection. Outstanding calls fail with ErrNodeDown.
func (c *Client) Close() error {
	c.fail(types.ErrClosed)
	return nil
}

// Call sends m and waits for the matching response or ctx cancellation.
func (c *Client) Call(ctx context.Context, m Message) (Message, error) {
	ch := make(chan Message, 1)
	c.mu.Lock()
	if c.closed != nil {
		err := c.closed
		c.mu.Unlock()
		return Message{}, err
	}
	c.nextID++
	m.ID = c.nextID
	c.pending[m.ID] = ch
	rttFn := c.rtt
	c.mu.Unlock()

	start := time.Now()
	if err := c.b.enqueue(&m); err != nil {
		c.mu.Lock()
		delete(c.pending, m.ID)
		c.mu.Unlock()
		return Message{}, fmt.Errorf("wire: send: %w", err)
	}

	select {
	case resp := <-ch:
		if e := resp.ErrorOf(); e != nil && (errors.Is(e, types.ErrNodeDown) || errors.Is(e, types.ErrClosed)) && resp.Method == MethodNone {
			return resp, e
		}
		if rttFn != nil {
			rttFn(time.Since(start))
		}
		return resp, nil
	case <-ctx.Done():
		c.mu.Lock()
		if _, ok := c.pending[m.ID]; ok {
			delete(c.pending, m.ID)
			c.abandoned[m.ID] = m
			c.mu.Unlock()
			// Tell the server to cancel the in-flight handler (best
			// effort, off this goroutine so a congested connection cannot
			// stall the caller's cancellation). The cancel may lose the
			// race against a handler that just granted something; the
			// late response then lands in the orphan callback, which
			// undoes the grant.
			go c.sendCancel(m.ID)
			return Message{}, ctx.Err()
		}
		orphanFn := c.orphan
		c.mu.Unlock()
		// The response raced our cancellation and is already in flight on
		// ch (readLoop removed the pending entry before we did); surface
		// it to the orphan callback so its effects are undone.
		resp := <-ch
		if orphanFn != nil {
			go orphanFn(m, resp)
		}
		return Message{}, ctx.Err()
	}
}

func (c *Client) sendCancel(id uint64) {
	m := Message{Method: MethodCancel, Num: int64(id)}
	// The request frame was enqueued before this cancel, and the batcher
	// drains in FIFO order, so the server still sees request-before-cancel.
	_ = c.b.enqueue(&m)
}

// Peer is the server-side view of one client connection. Handlers can hold
// on to it to push notifications later. Responses and pushes from
// concurrent handlers coalesce through the same write batcher as the
// client side, so a burst of small replies shares one syscall.
type Peer struct {
	conn net.Conn
	b    *batcher

	mu      sync.Mutex
	closed  bool
	onClose []func()
}

// send enqueues one frame to the client. A write failure surfaces
// asynchronously through the batcher's error hook, which closes the peer.
func (p *Peer) send(m *Message) error {
	return p.b.enqueue(m)
}

// Notify pushes an unsolicited message to the client.
func (p *Peer) Notify(m Message) error {
	m.Flags |= FlagNotify
	return p.send(&m)
}

// OnClose registers a callback invoked when the connection closes.
func (p *Peer) OnClose(fn func()) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		fn()
		return
	}
	p.onClose = append(p.onClose, fn)
	p.mu.Unlock()
}

// RemoteAddr returns the peer's network address.
func (p *Peer) RemoteAddr() net.Addr { return p.conn.RemoteAddr() }

func (p *Peer) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	fns := p.onClose
	p.onClose = nil
	p.mu.Unlock()
	p.b.close()
	p.conn.Close()
	for _, fn := range fns {
		fn()
	}
}

// BatchStats reports the peer connection's write-batching counters.
func (p *Peer) BatchStats() BatchStats { return p.b.stats() }

// Handler processes one request. It runs on its own goroutine and may
// block; ctx is canceled when the connection closes or the server stops.
type Handler func(ctx context.Context, m Message, p *Peer) Message

// Server accepts control connections and dispatches requests.
type Server struct {
	ln      net.Listener
	handler Handler
	batch   BatchConfig

	mu    sync.Mutex
	peers map[*Peer]struct{}
	done  chan struct{}
	once  sync.Once
}

// NewServer returns a server ready to Serve on ln.
func NewServer(ln net.Listener, h Handler) *Server {
	return NewServerWith(ln, h, BatchConfig{})
}

// NewServerWith is NewServer with an explicit write-batching config for
// the per-connection response/notify path.
func NewServerWith(ln net.Listener, h Handler, cfg BatchConfig) *Server {
	return &Server{ln: ln, handler: h, batch: cfg, peers: make(map[*Peer]struct{}), done: make(chan struct{})}
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Serve accepts connections until Close. It always returns a non-nil error.
func (s *Server) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return types.ErrClosed
			default:
				return err
			}
		}
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	peer := &Peer{conn: conn}
	peer.b = newBatcher(conn, s.batch, func(error) { peer.close() })
	s.mu.Lock()
	select {
	case <-s.done:
		s.mu.Unlock()
		conn.Close()
		return
	default:
	}
	s.peers[peer] = struct{}{}
	s.mu.Unlock()

	ctx, cancel := context.WithCancel(context.Background())
	defer func() {
		cancel()
		s.mu.Lock()
		delete(s.peers, peer)
		s.mu.Unlock()
		peer.close()
	}()

	// calls tracks in-flight handler cancel funcs by request ID, so a
	// MethodCancel frame can abort exactly the abandoned call. Frames on
	// one connection are read sequentially, so a request is always
	// registered before its cancel can be read.
	var callsMu sync.Mutex
	calls := make(map[uint64]context.CancelFunc)

	br := bufio.NewReader(conn)
	for {
		var m Message
		if err := readMessage(br, &m); err != nil {
			if err != io.EOF {
				_ = err // connection reset or node killed; handled by OnClose hooks
			}
			return
		}
		if m.Method == MethodCancel {
			callsMu.Lock()
			if cancel, ok := calls[uint64(m.Num)]; ok {
				cancel()
			}
			callsMu.Unlock()
			continue
		}
		cctx, ccancel := context.WithCancel(ctx)
		callsMu.Lock()
		calls[m.ID] = ccancel
		callsMu.Unlock()
		go func(req Message) {
			defer func() {
				callsMu.Lock()
				delete(calls, req.ID)
				callsMu.Unlock()
				ccancel()
			}()
			resp := s.handler(cctx, req, peer)
			resp.ID = req.ID
			resp.Flags |= FlagResponse
			if err := peer.send(&resp); err != nil {
				peer.close()
			}
		}(m)
	}
}

// Close stops accepting and closes every connection.
func (s *Server) Close() error {
	s.once.Do(func() { close(s.done) })
	err := s.ln.Close()
	s.mu.Lock()
	peers := make([]*Peer, 0, len(s.peers))
	for p := range s.peers {
		peers = append(peers, p)
	}
	s.mu.Unlock()
	for _, p := range peers {
		p.close()
	}
	return err
}
