package wire

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"hoplite/internal/types"
)

// collectWriter records each Write as one batch so tests can inspect
// exactly how frames were coalesced onto the "wire".
type collectWriter struct {
	mu      sync.Mutex
	batches [][]byte
	err     error
}

func (w *collectWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	w.batches = append(w.batches, append([]byte(nil), p...))
	return len(p), nil
}

func (w *collectWriter) frames(t *testing.T) []Message {
	t.Helper()
	w.mu.Lock()
	var all []byte
	for _, b := range w.batches {
		all = append(all, b...)
	}
	w.mu.Unlock()
	br := bufio.NewReader(bytes.NewReader(all))
	var out []Message
	for {
		var m Message
		if err := readMessage(br, &m); err != nil {
			if err == io.EOF {
				return out
			}
			t.Fatalf("decode batched stream: %v", err)
		}
		out = append(out, m)
	}
}

// Frames enqueued during a coalescing window must drain in enqueue order
// and share a single write.
func TestBatcherCoalescesAndPreservesOrder(t *testing.T) {
	w := &collectWriter{}
	b := newBatcher(w, BatchConfig{MaxDelay: 20 * time.Millisecond}, nil)
	defer b.close()
	const n = 50
	for i := int64(0); i < n; i++ {
		if err := b.enqueue(&Message{Method: MethodPing, Num: i}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if got := w.frames(t); len(got) == n {
			for i, m := range got {
				if m.Num != int64(i) {
					t.Fatalf("frame %d carries Num %d: order not preserved", i, m.Num)
				}
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d frames drained", len(w.frames(t)), n)
		}
		time.Sleep(time.Millisecond)
	}
	st := b.stats()
	if st.Frames != n {
		t.Fatalf("stats.Frames = %d, want %d", st.Frames, n)
	}
	if st.Flushes >= st.Frames {
		t.Fatalf("no coalescing: %d flushes for %d frames", st.Flushes, st.Frames)
	}
}

// MaxBytes must cut a delay window short: a queue past the threshold is
// written well before MaxDelay expires.
func TestBatcherMaxBytesCutsWindowShort(t *testing.T) {
	w := &collectWriter{}
	b := newBatcher(w, BatchConfig{MaxDelay: 10 * time.Second, MaxBytes: 1024}, nil)
	defer b.close()
	payload := make([]byte, 512)
	start := time.Now()
	for i := 0; i < 4; i++ {
		if err := b.enqueue(&Message{Method: MethodPing, Payload: payload}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(w.frames(t)) < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("frames not flushed before MaxDelay: %d drained", len(w.frames(t)))
		}
		time.Sleep(time.Millisecond)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("flush took %v, MaxBytes threshold ignored", elapsed)
	}
}

// Disabled batching (MaxDelay < 0) must behave like the legacy path:
// synchronous write, one flush per frame.
func TestBatcherDisabledWritesSynchronously(t *testing.T) {
	w := &collectWriter{}
	b := newBatcher(w, BatchConfig{MaxDelay: -1}, nil)
	for i := int64(0); i < 5; i++ {
		if err := b.enqueue(&Message{Method: MethodPing, Num: i}); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.frames(t); len(got) != 5 {
		t.Fatalf("%d frames after synchronous enqueue, want 5", len(got))
	}
	st := b.stats()
	if st.Flushes != 5 || st.Frames != 5 {
		t.Fatalf("stats %+v, want one flush per frame", st)
	}
}

type errWriter struct{ err error }

func (w errWriter) Write(p []byte) (int, error) { return 0, w.err }

// A write failure must mark the batcher dead and fire the error hook so
// the owning connection tears down.
func TestBatcherWriteFailureFiresHook(t *testing.T) {
	failed := make(chan error, 1)
	b := newBatcher(errWriter{errors.New("conn reset")}, BatchConfig{}, func(err error) {
		failed <- err
	})
	_ = b.enqueue(&Message{Method: MethodPing})
	select {
	case <-failed:
	case <-time.After(2 * time.Second):
		t.Fatal("error hook never fired")
	}
	// Subsequent enqueues are rejected with the write error.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := b.enqueue(&Message{Method: MethodPing}); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("enqueue still accepted after write failure")
		}
		time.Sleep(time.Millisecond)
	}
}

// End to end: concurrent Calls over a real connection must coalesce —
// strictly fewer writes than frames on the client's batcher — while every
// call still completes with its own response.
func TestClientCallsCoalesceUnderConcurrency(t *testing.T) {
	h := func(ctx context.Context, m Message, p *Peer) Message {
		return Message{Size: m.Size * 2}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ln, h)
	go srv.Serve()
	defer srv.Close()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := NewClientWith(conn, nil, BatchConfig{MaxDelay: 2 * time.Millisecond})
	defer c.Close()

	const calls = 200
	var wg sync.WaitGroup
	errs := make(chan error, calls)
	for i := int64(1); i <= calls; i++ {
		wg.Add(1)
		go func(i int64) {
			defer wg.Done()
			resp, err := c.Call(context.Background(), Message{Method: MethodPing, Size: i})
			if err == nil && resp.Size != 2*i {
				err = errors.New("response mismatch")
			}
			errs <- err
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := c.BatchStats()
	if st.Frames != calls {
		t.Fatalf("stats.Frames = %d, want %d", st.Frames, calls)
	}
	if st.Flushes >= st.Frames {
		t.Fatalf("no coalescing under concurrency: %d flushes for %d frames", st.Flushes, st.Frames)
	}
}

// Closing the client while calls are queued must fail them with
// ErrNodeDown rather than hanging.
func TestClientCloseFailsQueuedCalls(t *testing.T) {
	block := make(chan struct{})
	h := func(ctx context.Context, m Message, p *Peer) Message {
		<-block
		return m
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServerWith(ln, h, BatchConfig{MaxDelay: time.Millisecond})
	go srv.Serve()
	defer srv.Close()
	defer close(block)
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := NewClientWith(conn, nil, BatchConfig{MaxDelay: time.Millisecond})

	done := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), Message{Method: MethodPing})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	c.Close()
	select {
	case err := <-done:
		if !errors.Is(err, types.ErrNodeDown) && !errors.Is(err, types.ErrClosed) {
			t.Fatalf("queued call failed with %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued call hung across Close")
	}
}
