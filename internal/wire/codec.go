// Binary wire codec for Message. Frames are length-delimited with a
// fixed-layout body: every field is encoded explicitly at a known offset
// (no reflection, no per-type metadata), so encoding is a straight run of
// stores and decoding a straight run of loads with bounds checks. Scratch
// buffers come from internal/pool, which the data plane shares, so steady
// state encode/decode performs no allocation beyond the variable-length
// fields (strings, payload, location list) that escape into the decoded
// Message.
//
// Frame layout (all integers big-endian):
//
//	u32  body length (<= MaxFrameSize)
//	u8   method
//	u8   flags
//	u8   bools (bit0 Complete, bit1 Wait)
//	u8   op kind
//	u8   op dtype
//	u64  id
//	[20] oid
//	[20] target
//	u64  size, offset, num, num2, gen, epoch (6 × u64, two's complement)
//	u16  node len      + bytes
//	u16  sender len    + bytes
//	u16  err len       + bytes
//	u32  sources count + count × [20]
//	u32  locs count    + count × (u16 node len + bytes + u8 progress)
//	u32  payload len   + bytes

package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"hoplite/internal/pool"
	"hoplite/internal/types"
)

// MaxFrameSize caps the body length of a single control-plane frame. A
// corrupt or hostile length prefix therefore cannot make the decoder
// allocate unboundedly; connections carrying such a prefix fail fast.
const MaxFrameSize = 16 << 20

// MaxLocations caps the location list of a single message. A location is
// only 3 wire bytes when its node id is empty but ~24 in-memory bytes, so
// without a count cap one MaxFrameSize frame could amplify into ~134 MB
// of decoded Location structs. Real lists are bounded by cluster size.
const MaxLocations = 1 << 16

var (
	// ErrFrameTooLarge reports an encoded or received frame over MaxFrameSize.
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrameSize")
	// errCorruptFrame reports a body whose fields overrun its length.
	errCorruptFrame = errors.New("wire: corrupt frame")
)

const (
	boolComplete = 1 << 0
	boolWait     = 1 << 1

	fixedBodySize = 5 + 8 + 2*types.ObjectIDSize + 6*8
)

// encodedBodySize returns the exact body size of m's frame.
func encodedBodySize(m *Message) int {
	n := fixedBodySize
	n += 2 + len(m.Node)
	n += 2 + len(m.Sender)
	n += 2 + len(m.Err)
	n += 4 + len(m.Sources)*types.ObjectIDSize
	n += 4
	for _, l := range m.Locs {
		n += 2 + len(l.Node) + 1
	}
	n += 4 + len(m.Payload)
	return n
}

// AppendMessage appends m's frame (length prefix + body) to dst and
// returns the extended slice. It fails if a variable-length field overruns
// its width or the body exceeds MaxFrameSize.
func AppendMessage(dst []byte, m *Message) ([]byte, error) {
	if len(m.Node) > 0xFFFF || len(m.Sender) > 0xFFFF || len(m.Err) > 0xFFFF {
		return dst, fmt.Errorf("wire: string field exceeds 64 KiB")
	}
	for _, l := range m.Locs {
		if len(l.Node) > 0xFFFF {
			return dst, fmt.Errorf("wire: location node id exceeds 64 KiB")
		}
	}
	if len(m.Locs) > MaxLocations {
		return dst, fmt.Errorf("wire: %d locations exceed MaxLocations", len(m.Locs))
	}
	body := encodedBodySize(m)
	if body > MaxFrameSize {
		return dst, ErrFrameTooLarge
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(body))

	var bools byte
	if m.Complete {
		bools |= boolComplete
	}
	if m.Wait {
		bools |= boolWait
	}
	dst = append(dst, byte(m.Method), m.Flags, bools, byte(m.Op.Kind), byte(m.Op.DType))
	dst = binary.BigEndian.AppendUint64(dst, m.ID)
	dst = append(dst, m.OID[:]...)
	dst = append(dst, m.Target[:]...)
	dst = binary.BigEndian.AppendUint64(dst, uint64(m.Size))
	dst = binary.BigEndian.AppendUint64(dst, uint64(m.Offset))
	dst = binary.BigEndian.AppendUint64(dst, uint64(m.Num))
	dst = binary.BigEndian.AppendUint64(dst, uint64(m.Num2))
	dst = binary.BigEndian.AppendUint64(dst, uint64(m.Gen))
	dst = binary.BigEndian.AppendUint64(dst, uint64(m.Epoch))
	dst = appendString16(dst, string(m.Node))
	dst = appendString16(dst, string(m.Sender))
	dst = appendString16(dst, m.Err)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Sources)))
	for i := range m.Sources {
		dst = append(dst, m.Sources[i][:]...)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Locs)))
	for _, l := range m.Locs {
		dst = appendString16(dst, string(l.Node))
		dst = append(dst, byte(l.Progress))
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Payload)))
	dst = append(dst, m.Payload...)
	return dst, nil
}

func appendString16(dst []byte, s string) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

// reader walks a frame body with bounds checks.
type reader struct {
	b   []byte
	off int
	err bool
}

func (r *reader) take(n int) []byte {
	if r.err || n < 0 || len(r.b)-r.off < n {
		r.err = true
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

func (r *reader) u8() byte {
	if v := r.take(1); v != nil {
		return v[0]
	}
	return 0
}

func (r *reader) u16() int {
	if v := r.take(2); v != nil {
		return int(binary.BigEndian.Uint16(v))
	}
	return 0
}

func (r *reader) u32() int {
	if v := r.take(4); v != nil {
		return int(binary.BigEndian.Uint32(v))
	}
	return 0
}

func (r *reader) u64() uint64 {
	if v := r.take(8); v != nil {
		return binary.BigEndian.Uint64(v)
	}
	return 0
}

func (r *reader) string16() string { return string(r.take(r.u16())) }

func (r *reader) nodeID16() types.NodeID { return internNodeID(r.take(r.u16())) }

// A cluster has few distinct node addresses but repeats them in nearly
// every control-plane message, so decoded NodeIDs are interned: steady
// state decoding allocates no strings at all. The table is capped in
// both entry count and entry length so a flood of distinct (possibly
// hostile) ids cannot pin more than ~1 MiB for the process lifetime.
const (
	maxInternedNodeIDs  = 4096
	maxInternedIDLength = 256 // real ids are host:port, far shorter
)

var (
	internMu sync.RWMutex
	interned = make(map[string]types.NodeID)
)

func internNodeID(b []byte) types.NodeID {
	if len(b) == 0 {
		return ""
	}
	if len(b) > maxInternedIDLength {
		return types.NodeID(b)
	}
	internMu.RLock()
	v, ok := interned[string(b)] // compiler elides the []byte→string copy
	internMu.RUnlock()
	if ok {
		return v
	}
	v = types.NodeID(b)
	internMu.Lock()
	if len(interned) >= maxInternedNodeIDs {
		// Epoch reset: after heavy node churn (or a flood of hostile
		// ids) drop the table so live ids can re-intern, rather than
		// permanently disabling the optimization.
		interned = make(map[string]types.NodeID)
	}
	interned[string(v)] = v
	internMu.Unlock()
	return v
}

// UnmarshalMessage decodes one frame body (without the length prefix)
// into m, overwriting every field.
func UnmarshalMessage(body []byte, m *Message) error {
	r := reader{b: body}
	m.Method = Method(r.u8())
	m.Flags = r.u8()
	bools := r.u8()
	if bools&^(boolComplete|boolWait) != 0 {
		return errCorruptFrame
	}
	m.Complete = bools&boolComplete != 0
	m.Wait = bools&boolWait != 0
	m.Op.Kind = types.OpKind(r.u8())
	m.Op.DType = types.DType(r.u8())
	m.ID = r.u64()
	copy(m.OID[:], r.take(types.ObjectIDSize))
	copy(m.Target[:], r.take(types.ObjectIDSize))
	m.Size = int64(r.u64())
	m.Offset = int64(r.u64())
	m.Num = int64(r.u64())
	m.Num2 = int64(r.u64())
	m.Gen = int64(r.u64())
	m.Epoch = int64(r.u64())
	m.Node = r.nodeID16()
	m.Sender = r.nodeID16()
	m.Err = r.string16()

	m.Sources = nil
	if n := r.u32(); n > 0 {
		// Divide rather than multiply: n is attacker-controlled and the
		// product could overflow int on 32-bit platforms.
		if n > (len(body)-r.off)/types.ObjectIDSize {
			return errCorruptFrame
		}
		m.Sources = make([]types.ObjectID, n)
		for i := 0; i < n; i++ {
			copy(m.Sources[i][:], r.take(types.ObjectIDSize))
		}
	}
	m.Locs = nil
	if n := r.u32(); n > 0 {
		// Each location is at least 3 bytes; reject counts the remaining
		// body cannot possibly hold before allocating (divide, not
		// multiply, to stay overflow-safe on 32-bit platforms), and cap
		// the count so wire bytes can't amplify into much larger structs.
		if n > (len(body)-r.off)/3 || n > MaxLocations {
			return errCorruptFrame
		}
		m.Locs = make([]types.Location, n)
		for i := 0; i < n; i++ {
			m.Locs[i].Node = r.nodeID16()
			m.Locs[i].Progress = types.Progress(r.u8())
		}
	}
	m.Payload = nil
	if n := r.u32(); n > 0 {
		if len(body)-r.off < n {
			return errCorruptFrame
		}
		m.Payload = make([]byte, n)
		copy(m.Payload, r.take(n))
	}
	if r.err || r.off != len(body) {
		return errCorruptFrame
	}
	return nil
}

// writeMessage encodes m into pooled scratch and writes the frame to w.
func writeMessage(w io.Writer, m *Message) error {
	body := encodedBodySize(m)
	if body > MaxFrameSize {
		// Reject before pool.Get so an oversized message can't allocate
		// (and park in the pool) a huge scratch buffer.
		return ErrFrameTooLarge
	}
	//hoplite:pool-transfer buf aliases scratch (same backing array unless AppendMessage grew it); exactly one of the two is returned to the pool on every path
	scratch := pool.Get(4 + body)
	buf, err := AppendMessage(scratch[:0], m)
	if err != nil {
		pool.Put(scratch)
		return err
	}
	_, err = w.Write(buf)
	pool.Put(buf)
	return err
}

// readMessage reads one frame from r into m, enforcing MaxFrameSize
// before allocating anything.
func readMessage(r io.Reader, m *Message) error {
	var lenb [4]byte
	if _, err := io.ReadFull(r, lenb[:]); err != nil {
		return err
	}
	n := int(binary.BigEndian.Uint32(lenb[:]))
	if n > MaxFrameSize {
		return ErrFrameTooLarge
	}
	if n < fixedBodySize {
		return errCorruptFrame
	}
	body := pool.Get(n)
	defer pool.Put(body)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	return UnmarshalMessage(body, m)
}
