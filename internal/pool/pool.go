// Package pool provides size-classed, sync.Pool-backed byte buffers shared
// by the hot paths of the control plane (internal/wire frame scratch) and
// the data plane (internal/transport chunk buffers). Pooling these buffers
// removes the dominant per-message and per-chunk allocation from both
// planes.
package pool

import (
	"math/bits"
	"sync"
)

const (
	// minBits is the smallest size class: 1<<minBits bytes.
	minBits = 6 // 64 B
	// maxBits is the largest size class: 1<<maxBits bytes. Requests above
	// this are allocated directly and never pooled.
	maxBits = 26 // 64 MiB
)

var classes [maxBits - minBits + 1]sync.Pool

// Get returns a buffer with len(b) == n from the smallest fitting size
// class. The contents are arbitrary: callers must overwrite before reading.
func Get(n int) []byte {
	var c int
	if n > 1<<minBits {
		c = bits.Len(uint(n-1)) - minBits // ceil(log2(n)) - minBits
		if c >= len(classes) {
			return make([]byte, n)
		}
	}
	if v := classes[c].Get(); v != nil {
		return (*v.(*[]byte))[:n]
	}
	return make([]byte, n, 1<<(c+minBits))
}

// Put returns a buffer obtained from Get to its size class. The caller
// must not use b after Put. Buffers whose capacity is not exactly a class
// size (e.g. not allocated by Get) are dropped rather than pooled, so a
// class never shrinks over time.
func Put(b []byte) {
	c := cap(b)
	if c < 1<<minBits || c > 1<<maxBits || c&(c-1) != 0 {
		return
	}
	b = b[:c]
	classes[bits.Len(uint(c))-1-minBits].Put(&b)
}
