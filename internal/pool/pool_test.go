package pool

import "testing"

func TestGetLenAndClassCap(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 100, 1 << 10, (1 << 10) + 1, 1 << 20, 1 << 26} {
		b := Get(n)
		if len(b) != n {
			t.Fatalf("Get(%d): len %d", n, len(b))
		}
		if c := cap(b); c&(c-1) != 0 || c < len(b) {
			t.Fatalf("Get(%d): cap %d not a class size", n, c)
		}
		Put(b)
	}
}

func TestGetOversizedNotPooled(t *testing.T) {
	n := (1 << 26) + 1
	b := Get(n)
	if len(b) != n {
		t.Fatalf("len %d", len(b))
	}
	Put(b) // must be a no-op, not a panic
}

func TestPutForeignBufferDropped(t *testing.T) {
	Put(make([]byte, 100, 100)) // non-class capacity: dropped
	Put(nil)
	Put(make([]byte, 10))
}

func TestReuse(t *testing.T) {
	b := Get(128)
	b[0] = 42
	Put(b)
	// sync.Pool gives no reuse guarantee, but the round trip must at
	// least produce a valid buffer of the requested length.
	c := Get(128)
	if len(c) != 128 {
		t.Fatalf("len %d", len(c))
	}
	Put(c)
}

func BenchmarkGetPut64K(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Put(Get(64 << 10))
	}
}
