package types

import (
	"encoding/binary"
	"errors"
	"reflect"
	"testing"
)

// boot builds the map a 4-node cluster would start with: 3 shard hosts
// plus one storage-only member, epoch 1.
func boot() ClusterMap {
	return ClusterMap{
		Epoch:     1,
		NumShards: 4,
		DirRF:     2,
		ObjectRF:  2,
		Members: []Member{
			{Addr: "a:1", State: MemberActive, ShardHost: true},
			{Addr: "b:1", State: MemberActive, ShardHost: true},
			{Addr: "c:1", State: MemberActive, ShardHost: true},
			{Addr: "d:1", State: MemberActive, ShardHost: false},
		},
	}
}

func TestClusterMapTransitions(t *testing.T) {
	drained := func(m ClusterMap, addr NodeID) ClusterMap {
		out, err := m.WithDrain(addr)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	for _, tc := range []struct {
		name      string
		apply     func(ClusterMap) (ClusterMap, error)
		wantEpoch int64 // 0 means "unchanged from input"
		wantErr   error
		check     func(t *testing.T, m ClusterMap)
	}{
		{
			name:      "join new shard host",
			apply:     func(m ClusterMap) (ClusterMap, error) { return m.WithJoin("e:1", true, "rack2") },
			wantEpoch: 2,
			check: func(t *testing.T, m ClusterMap) {
				if i := m.MemberIndex("e:1"); i != 4 {
					t.Fatalf("joiner at index %d, want appended last", i)
				}
				if !m.Members[4].ShardHost || m.Members[4].State != MemberActive {
					t.Fatalf("joiner role wrong: %+v", m.Members[4])
				}
				if m.Members[4].Locality != "rack2" {
					t.Fatalf("joiner locality %q, want rack2", m.Members[4].Locality)
				}
			},
		},
		{
			name:      "join is idempotent",
			apply:     func(m ClusterMap) (ClusterMap, error) { return m.WithJoin("a:1", true, "") },
			wantEpoch: 0, // no epoch burned on a retried join
		},
		{
			name: "rejoin with empty locality keeps the recorded label",
			apply: func(m ClusterMap) (ClusterMap, error) {
				m2, err := m.WithJoin("a:1", true, "rack1")
				if err != nil {
					return m2, err
				}
				return m2.WithJoin("a:1", true, "")
			},
			wantEpoch: 2, // only the label-setting join burns an epoch
			check: func(t *testing.T, m ClusterMap) {
				if m.Members[0].Locality != "rack1" {
					t.Fatalf("locality %q, want rack1 preserved", m.Members[0].Locality)
				}
			},
		},
		{
			name: "rejoin of draining member reactivates",
			apply: func(m ClusterMap) (ClusterMap, error) {
				return drained(m, "b:1").WithJoin("b:1", true, "")
			},
			wantEpoch: 3,
			check: func(t *testing.T, m ClusterMap) {
				if s, _ := m.MemberState("b:1"); s != MemberActive {
					t.Fatalf("state %v, want active", s)
				}
			},
		},
		{
			name:      "drain",
			apply:     func(m ClusterMap) (ClusterMap, error) { return m.WithDrain("b:1") },
			wantEpoch: 2,
			check: func(t *testing.T, m ClusterMap) {
				if s, _ := m.MemberState("b:1"); s != MemberDraining {
					t.Fatalf("state %v, want draining", s)
				}
				if !m.ActiveHolder("a:1") || m.ActiveHolder("b:1") {
					t.Fatal("ActiveHolder must exclude draining members")
				}
			},
		},
		{
			name:      "drain is idempotent",
			apply:     func(m ClusterMap) (ClusterMap, error) { return drained(m, "b:1").WithDrain("b:1") },
			wantEpoch: 2,
		},
		{
			name:    "drain unknown member",
			apply:   func(m ClusterMap) (ClusterMap, error) { return m.WithDrain("zz:1") },
			wantErr: ErrUnknownMember,
		},
		{
			name: "drain last shard host refused",
			apply: func(m ClusterMap) (ClusterMap, error) {
				return drained(drained(m, "a:1"), "b:1").WithDrain("c:1")
			},
			wantErr: ErrLastShardHost,
		},
		{
			name:      "remove after drain",
			apply:     func(m ClusterMap) (ClusterMap, error) { return drained(m, "b:1").WithRemove("b:1") },
			wantEpoch: 3,
			check: func(t *testing.T, m ClusterMap) {
				if m.MemberIndex("b:1") >= 0 {
					t.Fatal("member still present after remove")
				}
				if len(m.Members) != 3 {
					t.Fatalf("member count %d, want 3", len(m.Members))
				}
			},
		},
		{
			name:      "remove active member directly (declared dead)",
			apply:     func(m ClusterMap) (ClusterMap, error) { return m.WithRemove("c:1") },
			wantEpoch: 2,
		},
		{
			name:      "remove non-member is idempotent",
			apply:     func(m ClusterMap) (ClusterMap, error) { return m.WithRemove("zz:1") },
			wantEpoch: 0,
		},
		{
			name: "remove last shard host refused",
			apply: func(m ClusterMap) (ClusterMap, error) {
				m2, err := m.WithRemove("a:1")
				if err != nil {
					return m2, err
				}
				m2, err = m2.WithRemove("b:1")
				if err != nil {
					return m2, err
				}
				return m2.WithRemove("c:1")
			},
			wantErr: ErrLastShardHost,
		},
		{
			name:      "remove storage-only member never refused",
			apply:     func(m ClusterMap) (ClusterMap, error) { return m.WithRemove("d:1") },
			wantEpoch: 2,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			in := boot()
			got, err := tc.apply(in)
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("err = %v, want %v", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			want := tc.wantEpoch
			if want == 0 {
				want = got.Epoch // "unchanged" cases assert no bump below
			}
			if got.Epoch != want {
				t.Fatalf("epoch %d, want %d", got.Epoch, want)
			}
			if tc.wantEpoch == 0 && got.Epoch != in.Epoch {
				t.Fatalf("epoch bumped to %d on a no-op transition", got.Epoch)
			}
			// Transitions must never mutate their input.
			if !reflect.DeepEqual(in, boot()) {
				t.Fatal("transition mutated its input map")
			}
			if tc.check != nil {
				tc.check(t, got)
			}
		})
	}
}

// The derived shard groups at epoch 1 must reproduce the static layout
// (group i = hosts[(i+j)%n]) the cluster booted with, and reshuffle
// deterministically as members come and go.
func TestDeriveGroups(t *testing.T) {
	m := boot()
	got := m.DeriveGroups()
	want := [][]string{
		{"a:1", "b:1"},
		{"b:1", "c:1"},
		{"c:1", "a:1"},
		{"a:1", "b:1"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("boot groups %v, want %v", got, want)
	}

	// A joiner lands at the end of the host ring: existing primaries
	// (group[0]) keep their positions, only wrap-around groups change.
	j, err := m.WithJoin("e:1", true, "")
	if err != nil {
		t.Fatal(err)
	}
	got = j.DeriveGroups()
	want = [][]string{
		{"a:1", "b:1"},
		{"b:1", "c:1"},
		{"c:1", "e:1"},
		{"e:1", "a:1"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-join groups %v, want %v", got, want)
	}
	for i := range want[:3] {
		if got[i][0] != want[i][0] {
			t.Fatalf("join moved primary of shard %d", i)
		}
	}

	// Draining a host removes it from every group.
	d, err := m.WithDrain("b:1")
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range d.DeriveGroups() {
		for _, n := range g {
			if n == "b:1" {
				t.Fatalf("draining member still in group %d: %v", i, g)
			}
		}
	}

	// DirRF clamps to the live host count.
	two := ClusterMap{NumShards: 2, DirRF: 3, Members: []Member{
		{Addr: "a:1", State: MemberActive, ShardHost: true},
		{Addr: "b:1", State: MemberActive, ShardHost: true},
	}}
	for _, g := range two.DeriveGroups() {
		if len(g) != 2 {
			t.Fatalf("group %v, want width clamped to 2", g)
		}
	}

	// No hosts at all yields empty groups rather than panicking.
	none := ClusterMap{NumShards: 2, DirRF: 2}
	for _, g := range none.DeriveGroups() {
		if len(g) != 0 {
			t.Fatalf("unexpected group %v for empty membership", g)
		}
	}
}

func TestClusterMapEncodeDecode(t *testing.T) {
	for _, m := range []ClusterMap{
		{},
		boot(),
		{Epoch: 99, NumShards: 1, DirRF: 1, ObjectRF: 0, Members: []Member{
			{Addr: "only:1", State: MemberDraining, ShardHost: true},
		}},
		{Epoch: 7, NumShards: 2, DirRF: 1, Members: []Member{
			{Addr: "a:1", State: MemberActive, ShardHost: true, Locality: "dc1/rackA"},
			{Addr: "b:1", State: MemberActive, Locality: "dc2/rackB"},
			{Addr: "c:1", State: MemberActive},
		}},
	} {
		b := EncodeClusterMap(nil, m)
		got, err := DecodeClusterMap(b)
		if err != nil {
			t.Fatal(err)
		}
		norm := func(m ClusterMap) ClusterMap {
			if len(m.Members) == 0 {
				m.Members = nil
			}
			return m
		}
		if !reflect.DeepEqual(norm(got), norm(m)) {
			t.Fatalf("round trip mismatch\nsent %+v\ngot  %+v", m, got)
		}
	}
	// Corrupt encodings must error, not panic or over-allocate.
	good := EncodeClusterMap(nil, boot())
	for _, b := range [][]byte{
		nil,
		good[:5],
		good[:len(good)-1],
		append(append([]byte{}, good...), 0xFF),
		{0xEE}, // unknown version
	} {
		if _, err := DecodeClusterMap(b); err == nil {
			t.Fatalf("corrupt encoding %x accepted", b)
		}
	}
	// A huge member count with a tiny body must be rejected before the
	// decoder allocates.
	huge := append([]byte{}, good[:21]...)
	huge = append(huge, 0x7F, 0xFF, 0xFF, 0xFF)
	if _, err := DecodeClusterMap(huge); err == nil {
		t.Fatal("huge member count accepted")
	}
}

// A version-1 encoding (pre-locality) must still decode, with every
// locality label empty.
func TestClusterMapDecodeV1(t *testing.T) {
	m := boot()
	var b []byte
	b = append(b, clusterMapVersionV1)
	b = binary.BigEndian.AppendUint64(b, uint64(m.Epoch))
	b = binary.BigEndian.AppendUint32(b, uint32(m.NumShards))
	b = binary.BigEndian.AppendUint32(b, uint32(m.DirRF))
	b = binary.BigEndian.AppendUint32(b, uint32(m.ObjectRF))
	b = binary.BigEndian.AppendUint32(b, uint32(len(m.Members)))
	for _, mem := range m.Members {
		var role byte
		if mem.ShardHost {
			role = 1
		}
		b = append(b, byte(mem.State), role)
		b = binary.BigEndian.AppendUint16(b, uint16(len(mem.Addr)))
		b = append(b, mem.Addr...)
	}
	got, err := DecodeClusterMap(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("v1 decode mismatch\nwant %+v\ngot  %+v", m, got)
	}
}

func TestLocalities(t *testing.T) {
	m := boot()
	m.Members[0].Locality = "rack1"
	m.Members[2].Locality = "rack2"
	got := m.Localities()
	want := map[NodeID]string{"a:1": "rack1", "c:1": "rack2"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Localities() = %v, want %v", got, want)
	}
}
