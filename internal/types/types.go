// Package types holds the identifiers, enums and errors shared by every
// Hoplite module: object IDs, node IDs, object location/progress records,
// and element-wise reduce operations.
package types

import (
	crand "crypto/rand"
	"crypto/sha1"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
)

// ObjectIDSize is the length of an ObjectID in bytes.
const ObjectIDSize = 20

// ObjectID identifies an immutable object in the distributed object store.
// Applications generate ObjectIDs from unique strings (ObjectIDFromString)
// or randomly (RandomObjectID); an ObjectID doubles as a future: it can name
// an object whose value has not been produced yet.
type ObjectID [ObjectIDSize]byte

// ObjectIDFromString derives a deterministic ObjectID from a unique string,
// mirroring the paper's "the application generates an ObjectID with a unique
// string" (Table 1).
func ObjectIDFromString(s string) ObjectID {
	return ObjectID(sha1.Sum([]byte(s)))
}

// RandomObjectID returns a cryptographically random ObjectID.
func RandomObjectID() ObjectID {
	var id ObjectID
	if _, err := crand.Read(id[:]); err != nil {
		panic("types: cannot read random bytes: " + err.Error())
	}
	return id
}

// ObjectIDFromHex parses the hex form produced by Hex.
func ObjectIDFromHex(s string) (ObjectID, error) {
	var id ObjectID
	b, err := hex.DecodeString(s)
	if err != nil {
		return id, fmt.Errorf("types: bad object id %q: %w", s, err)
	}
	if len(b) != ObjectIDSize {
		return id, fmt.Errorf("types: bad object id length %d, want %d", len(b), ObjectIDSize)
	}
	copy(id[:], b)
	return id, nil
}

// Hex returns the full lowercase hex encoding of the ID.
func (id ObjectID) Hex() string { return hex.EncodeToString(id[:]) }

// String returns a short human-readable prefix of the ID.
func (id ObjectID) String() string { return hex.EncodeToString(id[:6]) }

// IsZero reports whether the ID is the all-zero (invalid) ID.
func (id ObjectID) IsZero() bool { return id == ObjectID{} }

// Shard maps the ID onto one of n directory shards. n must be positive.
func (id ObjectID) Shard(n int) int {
	h := binary.BigEndian.Uint64(id[:8])
	return int(h % uint64(n))
}

// Derive returns a new ObjectID obtained by hashing this ID together with a
// tag and two integers. It is used for reduce intermediate outputs, which
// are ordinary objects named (reduceID, slot, epoch).
func (id ObjectID) Derive(tag string, a, b int64) ObjectID {
	h := sha1.New()
	h.Write(id[:])
	h.Write([]byte(tag))
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], uint64(a))
	binary.BigEndian.PutUint64(buf[8:], uint64(b))
	h.Write(buf[:])
	return ObjectID(h.Sum(nil))
}

// NodeID identifies a node in the cluster. It is the address of the node's
// data-plane listener, which makes location records directly dialable.
type NodeID string

// Progress describes how much of an object a node currently holds.
type Progress uint8

// Progress values. The paper's directory stores a single bit per location
// — partial or complete (§3.2); the spill tier adds a third flavor,
// Spilled: the node holds every byte, but on disk. A spilled location can
// serve any pull (including ranged striped sub-pulls, streamed straight
// off the chunk-aligned file), so for "does this node have the data"
// decisions it counts as complete; the leasing planner merely prefers
// in-memory senders over disk-backed ones.
const (
	ProgressNone Progress = iota
	ProgressPartial
	ProgressComplete
	ProgressSpilled
)

// HasAll reports whether the location holds every byte of the object,
// in memory (complete) or on disk (spilled). Sender-selection paths that
// need a full copy — striping planners, reduce source pickers — test
// HasAll; only ranking (memory before disk) distinguishes the two.
func (p Progress) HasAll() bool {
	return p == ProgressComplete || p == ProgressSpilled
}

// String implements fmt.Stringer.
func (p Progress) String() string {
	switch p {
	case ProgressNone:
		return "none"
	case ProgressPartial:
		return "partial"
	case ProgressComplete:
		return "complete"
	case ProgressSpilled:
		return "spilled"
	default:
		return fmt.Sprintf("progress(%d)", uint8(p))
	}
}

// Location is one entry of an object's directory record.
type Location struct {
	Node     NodeID
	Progress Progress
}

// SizeUnknown marks directory entries whose object size has not been
// reported yet.
const SizeUnknown int64 = -1

// Shared sentinel errors.
var (
	// ErrNotFound reports that an object has no known location.
	ErrNotFound = errors.New("object not found")
	// ErrDeleted reports that an object was deleted via Delete.
	ErrDeleted = errors.New("object deleted")
	// ErrNoSender reports that no eligible sender location is currently
	// available (all are leased, cyclic, or absent).
	ErrNoSender = errors.New("no eligible sender available")
	// ErrAborted reports that a transfer or buffer was aborted.
	ErrAborted = errors.New("transfer aborted")
	// ErrNodeDown reports that a peer node is unreachable.
	ErrNodeDown = errors.New("node down")
	// ErrTooFewObjects reports that a Reduce cannot complete because fewer
	// than num_objects sources can ever become available.
	ErrTooFewObjects = errors.New("too few reducible objects")
	// ErrExists reports that an object with this ID already exists locally.
	ErrExists = errors.New("object already exists")
	// ErrClosed reports use of a closed node, store or connection.
	ErrClosed = errors.New("closed")
	// ErrNotPrimary reports that a directory mutation reached a shard
	// replica that is not the shard's current primary; the caller should
	// retry against the next replica in succession order.
	ErrNotPrimary = errors.New("not the shard primary")
	// ErrStaleMap reports that a request was stamped with a cluster-map
	// epoch older than the receiver's. The response carries the receiver's
	// current encoded ClusterMap in its payload; the caller should install
	// it and retry against the re-derived topology.
	ErrStaleMap = errors.New("stale cluster map")
)
