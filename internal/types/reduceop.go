package types

import (
	"encoding/binary"
	"fmt"
	"math"
)

// DType is the element type of a reducible object. Objects are byte buffers
// interpreted as dense arrays of DType elements (the paper evaluates arrays
// of 32-bit floats, §5.1.2).
type DType uint8

// Supported element types.
const (
	F32 DType = iota
	F64
	I32
	I64
)

// Size returns the element width in bytes.
func (d DType) Size() int {
	switch d {
	case F32, I32:
		return 4
	case F64, I64:
		return 8
	default:
		return 0
	}
}

// String implements fmt.Stringer.
func (d DType) String() string {
	switch d {
	case F32:
		return "f32"
	case F64:
		return "f64"
	case I32:
		return "i32"
	case I64:
		return "i64"
	default:
		return fmt.Sprintf("dtype(%d)", uint8(d))
	}
}

// OpKind is a commutative, associative element-wise operation.
type OpKind uint8

// Supported operation kinds.
const (
	Sum OpKind = iota
	Min
	Max
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case Sum:
		return "sum"
	case Min:
		return "min"
	case Max:
		return "max"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// ReduceOp combines an operation kind with the element type it operates on.
// The zero value is Sum over F32.
type ReduceOp struct {
	Kind  OpKind
	DType DType
}

// String implements fmt.Stringer.
func (op ReduceOp) String() string { return op.Kind.String() + "/" + op.DType.String() }

// Validate reports whether the op names a supported kernel.
func (op ReduceOp) Validate() error {
	if op.DType.Size() == 0 {
		return fmt.Errorf("types: unsupported dtype %v", op.DType)
	}
	switch op.Kind {
	case Sum, Min, Max:
		return nil
	default:
		return fmt.Errorf("types: unsupported op kind %v", op.Kind)
	}
}

// Accumulate folds src into dst element-wise in place: dst = op(dst, src).
// Both slices must have equal length, a multiple of the element size.
// Little-endian layout is assumed, matching the wire format used by the
// data plane.
func (op ReduceOp) Accumulate(dst, src []byte) error {
	if len(dst) != len(src) {
		return fmt.Errorf("types: accumulate length mismatch %d != %d", len(dst), len(src))
	}
	es := op.DType.Size()
	if es == 0 {
		return fmt.Errorf("types: unsupported dtype %v", op.DType)
	}
	if len(dst)%es != 0 {
		return fmt.Errorf("types: buffer length %d not a multiple of element size %d", len(dst), es)
	}
	switch op.DType {
	case F32:
		accumulateF32(op.Kind, dst, src)
	case F64:
		accumulateF64(op.Kind, dst, src)
	case I32:
		accumulateI32(op.Kind, dst, src)
	case I64:
		accumulateI64(op.Kind, dst, src)
	}
	return nil
}

func accumulateF32(kind OpKind, dst, src []byte) {
	for i := 0; i+4 <= len(dst); i += 4 {
		a := math.Float32frombits(binary.LittleEndian.Uint32(dst[i:]))
		b := math.Float32frombits(binary.LittleEndian.Uint32(src[i:]))
		var r float32
		switch kind {
		case Sum:
			r = a + b
		case Min:
			r = min(a, b)
		case Max:
			r = max(a, b)
		}
		binary.LittleEndian.PutUint32(dst[i:], math.Float32bits(r))
	}
}

func accumulateF64(kind OpKind, dst, src []byte) {
	for i := 0; i+8 <= len(dst); i += 8 {
		a := math.Float64frombits(binary.LittleEndian.Uint64(dst[i:]))
		b := math.Float64frombits(binary.LittleEndian.Uint64(src[i:]))
		var r float64
		switch kind {
		case Sum:
			r = a + b
		case Min:
			r = min(a, b)
		case Max:
			r = max(a, b)
		}
		binary.LittleEndian.PutUint64(dst[i:], math.Float64bits(r))
	}
}

func accumulateI32(kind OpKind, dst, src []byte) {
	for i := 0; i+4 <= len(dst); i += 4 {
		a := int32(binary.LittleEndian.Uint32(dst[i:]))
		b := int32(binary.LittleEndian.Uint32(src[i:]))
		var r int32
		switch kind {
		case Sum:
			r = a + b
		case Min:
			r = min(a, b)
		case Max:
			r = max(a, b)
		}
		binary.LittleEndian.PutUint32(dst[i:], uint32(r))
	}
}

func accumulateI64(kind OpKind, dst, src []byte) {
	for i := 0; i+8 <= len(dst); i += 8 {
		a := int64(binary.LittleEndian.Uint64(dst[i:]))
		b := int64(binary.LittleEndian.Uint64(src[i:]))
		var r int64
		switch kind {
		case Sum:
			r = a + b
		case Min:
			r = min(a, b)
		case Max:
			r = max(a, b)
		}
		binary.LittleEndian.PutUint64(dst[i:], uint64(r))
	}
}

// EncodeF32 encodes a float32 slice into the little-endian wire layout.
func EncodeF32(xs []float32) []byte {
	out := make([]byte, 4*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(x))
	}
	return out
}

// DecodeF32 decodes the little-endian wire layout into float32s.
func DecodeF32(b []byte) []float32 {
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// EncodeI64 encodes an int64 slice into the little-endian wire layout.
func EncodeI64(xs []int64) []byte {
	out := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(x))
	}
	return out
}

// DecodeI64 decodes the little-endian wire layout into int64s.
func DecodeI64(b []byte) []int64 {
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}
