// Cluster membership. A ClusterMap is the authoritative, epoch-versioned
// description of which nodes are in the cluster and what roles they play.
// The map is owned by the membership shard's primary (directory shard 0),
// mutated only through the pure transition functions below, and propagated
// by push plus stale-epoch bounces: every stamped request carries the
// sender's epoch, and a receiver holding a newer map answers ErrStaleMap
// with its encoded map in the payload.
//
// Transitions never mutate the receiver: each returns a new map with
// Epoch+1 (or an error), so the same function runs identically on the
// primary that resolves a membership change and in table-driven tests.

package types

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// MemberState is the lifecycle state of a cluster member.
type MemberState uint8

// Member states. There is no "dead" state: permanent loss is modeled as
// removal (WithRemove), after which the node's locations are purged.
const (
	// MemberActive nodes accept placements and host directory shards.
	MemberActive MemberState = iota
	// MemberDraining nodes are leaving: they keep serving reads and
	// in-flight transfers, but their copies no longer count toward the
	// replication factor and they are excluded from shard groups, so the
	// repair scanner and shard handoff empty them out.
	MemberDraining
)

// String implements fmt.Stringer.
func (s MemberState) String() string {
	switch s {
	case MemberActive:
		return "active"
	case MemberDraining:
		return "draining"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Member is one node's entry in the cluster map. Join order is preserved
// in ClusterMap.Members, which makes shard-group derivation deterministic.
type Member struct {
	Addr      NodeID
	State     MemberState
	ShardHost bool // eligible to host directory shard replicas
	// Locality is the node's optional locality-domain label (a rack or DC
	// name, e.g. "dc1/rackA"). Link-state trackers aggregate estimates per
	// domain so an unmeasured peer inherits its domain's mean instead of
	// the global prior. Empty means unlabeled.
	Locality string
}

// ClusterMap is the epoch-versioned cluster description. Epoch 0 is the
// zero value and means "no map": legacy fixed-topology clusters run
// entirely at epoch 0 and every membership feature stays disabled.
type ClusterMap struct {
	Epoch     int64
	NumShards int // directory shard count, fixed for the cluster lifetime
	DirRF     int // directory shard replication factor
	ObjectRF  int // object replication target for the repair scanner (0 = off)
	Members   []Member
}

// Cluster-map transition errors.
var (
	// ErrUnknownMember reports a transition naming a node that is not in
	// the map.
	ErrUnknownMember = errors.New("clustermap: unknown member")
	// ErrLastShardHost reports an attempt to drain or remove the only
	// remaining active shard host, which would leave the directory with
	// no home.
	ErrLastShardHost = errors.New("clustermap: cannot remove last shard host")
)

// Clone returns a deep copy of the map.
func (m ClusterMap) Clone() ClusterMap {
	out := m
	out.Members = append([]Member(nil), m.Members...)
	return out
}

// MemberIndex returns the index of addr in Members, or -1.
func (m ClusterMap) MemberIndex(addr NodeID) int {
	for i := range m.Members {
		if m.Members[i].Addr == addr {
			return i
		}
	}
	return -1
}

// MemberState returns the state of addr and whether it is a member.
func (m ClusterMap) MemberState(addr NodeID) (MemberState, bool) {
	if i := m.MemberIndex(addr); i >= 0 {
		return m.Members[i].State, true
	}
	return 0, false
}

// ActiveHolder reports whether addr's copies count toward the object
// replication factor: it must be a member and not draining.
func (m ClusterMap) ActiveHolder(addr NodeID) bool {
	s, ok := m.MemberState(addr)
	return ok && s == MemberActive
}

func (m ClusterMap) activeShardHosts() []NodeID {
	var out []NodeID
	for _, mem := range m.Members {
		if mem.State == MemberActive && mem.ShardHost {
			out = append(out, mem.Addr)
		}
	}
	return out
}

// WithJoin returns the map after addr joins. Joining is idempotent: if
// addr is already an active member with the same role (and no new
// locality label) the map is returned unchanged (same epoch), so a
// retried join cannot burn epochs. A draining member rejoining is flipped
// back to active. An empty locality keeps the member's existing label, so
// a rejoin that omits it cannot erase one.
func (m ClusterMap) WithJoin(addr NodeID, shardHost bool, locality string) (ClusterMap, error) {
	if addr == "" {
		return m, fmt.Errorf("clustermap: empty member address")
	}
	if i := m.MemberIndex(addr); i >= 0 {
		sameLoc := locality == "" || locality == m.Members[i].Locality
		if m.Members[i].State == MemberActive && m.Members[i].ShardHost == shardHost && sameLoc {
			return m, nil
		}
		out := m.Clone()
		out.Members[i].State = MemberActive
		out.Members[i].ShardHost = shardHost
		if locality != "" {
			out.Members[i].Locality = locality
		}
		out.Epoch++
		return out, nil
	}
	out := m.Clone()
	out.Members = append(out.Members, Member{Addr: addr, State: MemberActive, ShardHost: shardHost, Locality: locality})
	out.Epoch++
	return out, nil
}

// WithDrain returns the map after addr starts draining. Idempotent on an
// already-draining member.
func (m ClusterMap) WithDrain(addr NodeID) (ClusterMap, error) {
	i := m.MemberIndex(addr)
	if i < 0 {
		return m, ErrUnknownMember
	}
	if m.Members[i].State == MemberDraining {
		return m, nil
	}
	if m.Members[i].ShardHost && len(m.activeShardHosts()) == 1 {
		return m, ErrLastShardHost
	}
	out := m.Clone()
	out.Members[i].State = MemberDraining
	out.Epoch++
	return out, nil
}

// WithRemove returns the map after addr leaves for good — drain completion
// or a declared permanent loss. Idempotent on a non-member.
func (m ClusterMap) WithRemove(addr NodeID) (ClusterMap, error) {
	i := m.MemberIndex(addr)
	if i < 0 {
		return m, nil
	}
	if m.Members[i].State == MemberActive && m.Members[i].ShardHost && len(m.activeShardHosts()) == 1 {
		return m, ErrLastShardHost
	}
	out := m.Clone()
	out.Members = append(out.Members[:i:i], out.Members[i+1:]...)
	out.Epoch++
	return out, nil
}

// DeriveGroups maps the membership onto NumShards directory replica
// groups: group i is the DirRF active shard hosts starting at position
// i%len (wrapping), in join order. At bootstrap this reproduces exactly
// the static ReplicaGroups layout the cluster was seeded with, so epoch 1
// changes nothing; later epochs reshuffle only as members come and go.
// Draining and removed members appear in no group.
func (m ClusterMap) DeriveGroups() [][]string {
	hosts := m.activeShardHosts()
	groups := make([][]string, m.NumShards)
	if len(hosts) == 0 {
		return groups
	}
	r := m.DirRF
	if r < 1 {
		r = 1
	}
	if r > len(hosts) {
		r = len(hosts)
	}
	for i := range groups {
		g := make([]string, r)
		for j := 0; j < r; j++ {
			g[j] = string(hosts[(i+j)%len(hosts)])
		}
		groups[i] = g
	}
	return groups
}

// Encoding: a small fixed header plus one record per member, big-endian
// like the rest of the wire formats. The map rides inside Message.Payload
// (join responses, map pushes, stale-epoch bounces, shard snapshots), so
// it needs its own framing but no length prefix. Version 2 added the
// per-member locality label; version-1 encodings (from peers predating it)
// still decode, with every locality empty.
const (
	clusterMapVersionV1 = 1
	clusterMapVersion   = 2
)

// EncodeClusterMap appends the binary encoding of m to dst.
func EncodeClusterMap(dst []byte, m ClusterMap) []byte {
	dst = append(dst, clusterMapVersion)
	dst = binary.BigEndian.AppendUint64(dst, uint64(m.Epoch))
	dst = binary.BigEndian.AppendUint32(dst, uint32(m.NumShards))
	dst = binary.BigEndian.AppendUint32(dst, uint32(m.DirRF))
	dst = binary.BigEndian.AppendUint32(dst, uint32(m.ObjectRF))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Members)))
	for _, mem := range m.Members {
		var role byte
		if mem.ShardHost {
			role = 1
		}
		dst = append(dst, byte(mem.State), role)
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(mem.Addr)))
		dst = append(dst, mem.Addr...)
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(mem.Locality)))
		dst = append(dst, mem.Locality...)
	}
	return dst
}

// DecodeClusterMap parses an encoding produced by EncodeClusterMap (either
// version).
func DecodeClusterMap(b []byte) (ClusterMap, error) {
	var m ClusterMap
	bad := func() (ClusterMap, error) { return ClusterMap{}, errors.New("clustermap: corrupt encoding") }
	if len(b) < 1+8+4+4+4+4 {
		return bad()
	}
	version := b[0]
	if version != clusterMapVersionV1 && version != clusterMapVersion {
		return ClusterMap{}, fmt.Errorf("clustermap: unknown version %d", b[0])
	}
	b = b[1:]
	m.Epoch = int64(binary.BigEndian.Uint64(b))
	m.NumShards = int(binary.BigEndian.Uint32(b[8:]))
	m.DirRF = int(binary.BigEndian.Uint32(b[12:]))
	m.ObjectRF = int(binary.BigEndian.Uint32(b[16:]))
	n := int(binary.BigEndian.Uint32(b[20:]))
	b = b[24:]
	// Each member record is at least 4 bytes; reject impossible counts
	// before allocating.
	if n < 0 || n > len(b)/4 {
		return bad()
	}
	m.Members = make([]Member, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 4 {
			return bad()
		}
		state, role := MemberState(b[0]), b[1]
		alen := int(binary.BigEndian.Uint16(b[2:]))
		b = b[4:]
		if len(b) < alen {
			return bad()
		}
		mem := Member{
			Addr:      NodeID(b[:alen]),
			State:     state,
			ShardHost: role != 0,
		}
		b = b[alen:]
		if version >= clusterMapVersion {
			if len(b) < 2 {
				return bad()
			}
			llen := int(binary.BigEndian.Uint16(b))
			b = b[2:]
			if len(b) < llen {
				return bad()
			}
			mem.Locality = string(b[:llen])
			b = b[llen:]
		}
		m.Members = append(m.Members, mem)
	}
	if len(b) != 0 {
		return bad()
	}
	return m, nil
}

// Localities returns the per-member locality labels, omitting unlabeled
// members — the form the link-state tracker consumes.
func (m ClusterMap) Localities() map[NodeID]string {
	out := make(map[NodeID]string)
	for _, mem := range m.Members {
		if mem.Locality != "" {
			out[mem.Addr] = mem.Locality
		}
	}
	return out
}
