package types

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestObjectIDFromStringDeterministic(t *testing.T) {
	a := ObjectIDFromString("hello")
	b := ObjectIDFromString("hello")
	if a != b {
		t.Fatal("same string produced different IDs")
	}
	if a == ObjectIDFromString("world") {
		t.Fatal("different strings collided")
	}
}

func TestObjectIDHexRoundTrip(t *testing.T) {
	id := RandomObjectID()
	back, err := ObjectIDFromHex(id.Hex())
	if err != nil {
		t.Fatal(err)
	}
	if back != id {
		t.Fatal("hex round trip mismatch")
	}
}

func TestObjectIDFromHexErrors(t *testing.T) {
	if _, err := ObjectIDFromHex("zz"); err == nil {
		t.Fatal("bad hex accepted")
	}
	if _, err := ObjectIDFromHex("abcd"); err == nil {
		t.Fatal("short hex accepted")
	}
}

func TestObjectIDIsZero(t *testing.T) {
	var z ObjectID
	if !z.IsZero() {
		t.Fatal("zero ID not zero")
	}
	if RandomObjectID().IsZero() {
		t.Fatal("random ID is zero")
	}
}

func TestObjectIDShardRange(t *testing.T) {
	fn := func(seed int64, n uint8) bool {
		shards := int(n%16) + 1
		id := ObjectID{}.Derive("t", seed, 0)
		s := id.Shard(shards)
		return s >= 0 && s < shards
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeriveDistinct(t *testing.T) {
	base := ObjectIDFromString("base")
	seen := map[ObjectID]bool{base: true}
	for a := int64(0); a < 10; a++ {
		for b := int64(0); b < 10; b++ {
			id := base.Derive("tag", a, b)
			if seen[id] {
				t.Fatalf("collision at (%d,%d)", a, b)
			}
			seen[id] = true
		}
	}
	if base.Derive("tag", 1, 2) != base.Derive("tag", 1, 2) {
		t.Fatal("Derive not deterministic")
	}
	if base.Derive("x", 1, 2) == base.Derive("y", 1, 2) {
		t.Fatal("tag ignored")
	}
}

func TestProgressString(t *testing.T) {
	if ProgressPartial.String() != "partial" || ProgressComplete.String() != "complete" || ProgressNone.String() != "none" || ProgressSpilled.String() != "spilled" {
		t.Fatal("progress strings wrong")
	}
}

func TestDTypeSizes(t *testing.T) {
	cases := map[DType]int{F32: 4, I32: 4, F64: 8, I64: 8}
	for d, want := range cases {
		if d.Size() != want {
			t.Fatalf("%v size %d want %d", d, d.Size(), want)
		}
	}
	if DType(99).Size() != 0 {
		t.Fatal("unknown dtype has nonzero size")
	}
}

func TestReduceOpValidate(t *testing.T) {
	for _, k := range []OpKind{Sum, Min, Max} {
		for _, d := range []DType{F32, F64, I32, I64} {
			if err := (ReduceOp{Kind: k, DType: d}).Validate(); err != nil {
				t.Fatalf("%v/%v invalid: %v", k, d, err)
			}
		}
	}
	if err := (ReduceOp{Kind: OpKind(9)}).Validate(); err == nil {
		t.Fatal("bad kind accepted")
	}
	if err := (ReduceOp{DType: DType(9)}).Validate(); err == nil {
		t.Fatal("bad dtype accepted")
	}
}

func TestAccumulateSumF32(t *testing.T) {
	dst := EncodeF32([]float32{1, 2, 3})
	src := EncodeF32([]float32{10, 20, 30})
	op := ReduceOp{Kind: Sum, DType: F32}
	if err := op.Accumulate(dst, src); err != nil {
		t.Fatal(err)
	}
	got := DecodeF32(dst)
	want := []float32{11, 22, 33}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("elem %d: %v want %v", i, got[i], want[i])
		}
	}
}

func TestAccumulateMinMaxF32(t *testing.T) {
	for _, tc := range []struct {
		kind OpKind
		want []float32
	}{
		{Min, []float32{1, -5, 3}},
		{Max, []float32{4, 2, 9}},
	} {
		dst := EncodeF32([]float32{1, 2, 9})
		src := EncodeF32([]float32{4, -5, 3})
		op := ReduceOp{Kind: tc.kind, DType: F32}
		if err := op.Accumulate(dst, src); err != nil {
			t.Fatal(err)
		}
		got := DecodeF32(dst)
		for i := range tc.want {
			if got[i] != tc.want[i] {
				t.Fatalf("%v elem %d: %v want %v", tc.kind, i, got[i], tc.want[i])
			}
		}
	}
}

func TestAccumulateI64(t *testing.T) {
	dst := EncodeI64([]int64{1, -2, math.MaxInt64 - 1})
	src := EncodeI64([]int64{10, 5, 1})
	op := ReduceOp{Kind: Sum, DType: I64}
	if err := op.Accumulate(dst, src); err != nil {
		t.Fatal(err)
	}
	got := DecodeI64(dst)
	if got[0] != 11 || got[1] != 3 || got[2] != math.MaxInt64 {
		t.Fatalf("got %v", got)
	}
}

func TestAccumulateF64(t *testing.T) {
	enc := func(xs []float64) []byte {
		out := make([]byte, 8*len(xs))
		for i, x := range xs {
			bits := math.Float64bits(x)
			for j := 0; j < 8; j++ {
				out[8*i+j] = byte(bits >> (8 * j))
			}
		}
		return out
	}
	dst := enc([]float64{1.5, 2.5})
	src := enc([]float64{0.25, 0.75})
	op := ReduceOp{Kind: Sum, DType: F64}
	if err := op.Accumulate(dst, src); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, enc([]float64{1.75, 3.25})) {
		t.Fatal("f64 sum wrong")
	}
}

func TestAccumulateI32(t *testing.T) {
	mk := func(xs ...int32) []byte {
		out := make([]byte, 4*len(xs))
		for i, x := range xs {
			u := uint32(x)
			out[4*i], out[4*i+1], out[4*i+2], out[4*i+3] = byte(u), byte(u>>8), byte(u>>16), byte(u>>24)
		}
		return out
	}
	dst := mk(5, -3)
	op := ReduceOp{Kind: Max, DType: I32}
	if err := op.Accumulate(dst, mk(2, 7)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, mk(5, 7)) {
		t.Fatal("i32 max wrong")
	}
}

func TestAccumulateLengthMismatch(t *testing.T) {
	op := ReduceOp{Kind: Sum, DType: F32}
	if err := op.Accumulate(make([]byte, 8), make([]byte, 4)); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := op.Accumulate(make([]byte, 5), make([]byte, 5)); err == nil {
		t.Fatal("unaligned length accepted")
	}
}

// Property: sum accumulation is commutative and associative over the
// fold, so any order of pairwise accumulation gives the same result
// (this is the invariant Hoplite's reduce tree relies on, §3.4.2).
func TestAccumulateOrderIndependenceI64(t *testing.T) {
	op := ReduceOp{Kind: Sum, DType: I64}
	fn := func(a, b, c []int64) bool {
		n := min(len(a), min(len(b), len(c)))
		a, b, c = a[:n], b[:n], c[:n]
		fold := func(order [][]int64) []int64 {
			acc := make([]byte, 8*n)
			for _, xs := range order {
				if err := op.Accumulate(acc, EncodeI64(xs)); err != nil {
					return nil
				}
			}
			return DecodeI64(acc)
		}
		x := fold([][]int64{a, b, c})
		y := fold([][]int64{c, a, b})
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeF32RoundTrip(t *testing.T) {
	fn := func(xs []float32) bool {
		got := DecodeF32(EncodeF32(xs))
		if len(got) != len(xs) {
			return false
		}
		for i := range xs {
			if math.Float32bits(got[i]) != math.Float32bits(xs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSentinelErrorsDistinct(t *testing.T) {
	errs := []error{ErrNotFound, ErrDeleted, ErrNoSender, ErrAborted, ErrNodeDown, ErrTooFewObjects, ErrExists, ErrClosed}
	for i, a := range errs {
		for j, b := range errs {
			if i != j && errors.Is(a, b) {
				t.Fatalf("errors %d and %d alias", i, j)
			}
		}
	}
}

func TestProgressHasAll(t *testing.T) {
	if !ProgressComplete.HasAll() || !ProgressSpilled.HasAll() {
		t.Fatal("whole copies must report HasAll")
	}
	if ProgressNone.HasAll() || ProgressPartial.HasAll() {
		t.Fatal("partial copies must not report HasAll")
	}
}
