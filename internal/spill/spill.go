// Package spill implements the capacity tier below the in-memory object
// store (§3.1): a per-node directory of sealed object payloads persisted
// to disk. When the store's memory budget runs out, cold complete copies
// are demoted here instead of dropped; a demoted object keeps its
// directory location (downgraded to the Spilled flavor) and can either be
// restored into memory on a local Get or streamed straight off disk to a
// remote receiver — including ranged striped sub-pulls, because files are
// written chunk-aligned and served via ReadAt.
//
// Layout: one file per object, named <oid-hex>.obj, holding exactly the
// payload bytes (the file length is the object size). Writes go through a
// temp file and an atomic rename, so a crash mid-spill never leaves a
// half-written object discoverable. On startup Open scans the directory
// and rebuilds the index, which is how a restarted hoplited rediscovers
// the objects it spilled in a previous life.
package spill

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"hoplite/internal/types"
)

// objExt is the spill file extension; temp files use tmpExt until their
// atomic rename.
const (
	objExt = ".obj"
	tmpExt = ".tmp"
)

// Spill manages one node's on-disk spill directory. It is safe for
// concurrent use.
type Spill struct {
	dir string

	mu     sync.Mutex
	sizes  map[types.ObjectID]int64
	used   int64
	closed bool
	// pending tracks reservations: objects whose demotion has been
	// decided (they are already gone from the store table) but whose
	// file write has not published yet. Contains reports them as present
	// and Open waits for the publish, so a reader that races a demotion
	// finds the object in *some* tier at every instant.
	pending map[types.ObjectID]*pendingWrite
}

type pendingWrite struct {
	size int64
	done chan struct{} // closed when the write publishes or aborts
}

// Entry describes one spilled object, as reported by List.
type Entry struct {
	OID  types.ObjectID
	Size int64
}

// Open creates (or reopens) a spill directory and indexes the objects
// already in it. Leftover temp files from a crashed spill are removed.
func Open(dir string) (*Spill, error) {
	if dir == "" {
		return nil, fmt.Errorf("spill: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("spill: create %s: %w", dir, err)
	}
	s := &Spill{
		dir:     dir,
		sizes:   make(map[types.ObjectID]int64),
		pending: make(map[types.ObjectID]*pendingWrite),
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("spill: scan %s: %w", dir, err)
	}
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() {
			continue
		}
		if strings.HasSuffix(name, tmpExt) {
			_ = os.Remove(filepath.Join(dir, name))
			continue
		}
		if !strings.HasSuffix(name, objExt) {
			continue
		}
		oid, err := types.ObjectIDFromHex(strings.TrimSuffix(name, objExt))
		if err != nil {
			continue // foreign file; leave it alone
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		s.sizes[oid] = info.Size()
		s.used += info.Size()
	}
	return s, nil
}

// Dir returns the spill directory path.
func (s *Spill) Dir() string { return s.dir }

func (s *Spill) path(oid types.ObjectID) string {
	return filepath.Join(s.dir, oid.Hex()+objExt)
}

// Payload is the source of a spill write: anything exposing the object
// size and a streaming dump of its (complete) bytes. *buffer.Buffer
// satisfies it via DumpTo.
type Payload interface {
	Size() int64
	DumpTo(w io.Writer) error
}

// Reserve marks oid as being spilled before its file write starts, so
// Contains reports it present and Open blocks for the publish instead of
// missing. It is called under the store lock, in the same critical
// section that removes the object from the store table — that atomicity
// is what guarantees a concurrent reader finds the object in some tier
// at every instant. It must therefore stay cheap and non-blocking: a map
// insert, no IO. A reservation is cleared by the Write that follows it
// (publish on success, abort on failure).
func (s *Spill) Reserve(oid types.ObjectID, size int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if _, ok := s.sizes[oid]; ok {
		return
	}
	if _, ok := s.pending[oid]; ok {
		return
	}
	s.pending[oid] = &pendingWrite{size: size, done: make(chan struct{})}
}

// Write persists a sealed payload, resolving the reservation made by
// Reserve (an unreserved Write is also fine: it is briefly self-pending).
// It is idempotent: an object already spilled is not rewritten (payloads
// are immutable, so the bytes match). The write lands in a temp file
// first and is renamed into place, so a concurrent Open or a crash can
// never observe a short object.
func (s *Spill) Write(oid types.ObjectID, src Payload) (err error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return types.ErrClosed
	}
	if _, ok := s.sizes[oid]; ok {
		if p, pend := s.pending[oid]; pend { // leftover reservation
			delete(s.pending, oid)
			close(p.done)
		}
		s.mu.Unlock()
		return nil
	}
	p, ok := s.pending[oid]
	if !ok {
		p = &pendingWrite{size: src.Size(), done: make(chan struct{})}
		s.pending[oid] = p
	}
	s.mu.Unlock()
	// Publish or abort exactly once, whatever path exits below.
	defer func() {
		s.mu.Lock()
		if s.pending[oid] == p {
			delete(s.pending, oid)
			if err == nil {
				s.sizes[oid] = src.Size()
				s.used += src.Size()
			}
		}
		s.mu.Unlock()
		close(p.done)
	}()

	tmp, err := os.CreateTemp(s.dir, oid.Hex()+"-*"+tmpExt)
	if err != nil {
		return fmt.Errorf("spill: temp for %v: %w", oid, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := src.DumpTo(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("spill: write %v: %w", oid, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("spill: close %v: %w", oid, err)
	}
	if err := os.Rename(tmp.Name(), s.path(oid)); err != nil {
		return fmt.Errorf("spill: publish %v: %w", oid, err)
	}
	return nil
}

// Contains reports whether oid is spilled (published or reserved), and
// its size.
func (s *Spill) Contains(oid types.ObjectID) (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if size, ok := s.sizes[oid]; ok {
		return size, ok
	}
	if p, ok := s.pending[oid]; ok {
		return p.size, true
	}
	return 0, false
}

// waitPublished blocks until oid's in-flight write (if any) publishes or
// aborts, returning the published size. The wait is bounded by one disk
// write.
func (s *Spill) waitPublished(oid types.ObjectID) (int64, bool) {
	for {
		s.mu.Lock()
		if size, ok := s.sizes[oid]; ok {
			s.mu.Unlock()
			return size, true
		}
		p, ok := s.pending[oid]
		s.mu.Unlock()
		if !ok {
			return 0, false
		}
		<-p.done
	}
}

// Open returns an open read handle on a spilled object, waiting out an
// in-flight demotion write first. The caller must Close it; the
// underlying *os.File serves concurrent ReadAt calls, which is what lets
// ranged striped sub-pulls stream disjoint ranges straight off disk.
func (s *Spill) Open(oid types.ObjectID) (*os.File, int64, error) {
	size, ok := s.waitPublished(oid)
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, 0, types.ErrClosed
	}
	if !ok {
		return nil, 0, types.ErrNotFound
	}
	f, err := os.Open(s.path(oid))
	if err != nil {
		return nil, 0, fmt.Errorf("spill: open %v: %w", oid, err)
	}
	return f, size, nil
}

// ReadInto streams a spilled object into dst in blocks, calling write for
// each block in order (the restore path: dst is typically a store buffer
// whose Append advances the watermark so readers pipeline off the
// restore). block <= 0 selects 4 MiB.
func (s *Spill) ReadInto(oid types.ObjectID, block int, write func(p []byte) error) error {
	f, size, err := s.Open(oid)
	if err != nil {
		return err
	}
	defer f.Close()
	if block <= 0 {
		block = 4 << 20
	}
	buf := make([]byte, block)
	var off int64
	for off < size {
		n := int64(block)
		if n > size-off {
			n = size - off
		}
		if m, err := f.ReadAt(buf[:n], off); err != nil && !(err == io.EOF && int64(m) == n) {
			return fmt.Errorf("spill: read %v at %d: %w", oid, off, err)
		}
		if err := write(buf[:n]); err != nil {
			return err
		}
		off += n
	}
	return nil
}

// Remove deletes a spilled object (cluster-wide Delete, or a stale
// rediscovered object whose directory entry is tombstoned). It reports
// whether the object was present.
func (s *Spill) Remove(oid types.ObjectID) bool {
	s.mu.Lock()
	size, ok := s.sizes[oid]
	if ok {
		delete(s.sizes, oid)
		s.used -= size
	}
	s.mu.Unlock()
	if !ok {
		return false
	}
	_ = os.Remove(s.path(oid))
	return true
}

// List returns every spilled object, for boot-time re-registration with
// the directory.
func (s *Spill) List() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Entry, 0, len(s.sizes))
	for oid, size := range s.sizes {
		out = append(out, Entry{OID: oid, Size: size})
	}
	return out
}

// Used returns the total bytes currently spilled.
func (s *Spill) Used() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

// Len returns the number of spilled objects.
func (s *Spill) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sizes)
}

// Close marks the spill closed. Files stay on disk: they are the whole
// point — the next Open on the same directory rediscovers them.
func (s *Spill) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}
