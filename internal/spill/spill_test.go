package spill

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hoplite/internal/buffer"
	"hoplite/internal/types"
)

func payload(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(int(seed) + i*7)
	}
	return b
}

func TestWriteOpenRemove(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	oid := types.ObjectIDFromString("a")
	data := payload(100000, 1)
	if err := s.Write(oid, buffer.FromBytes(data)); err != nil {
		t.Fatal(err)
	}
	size, ok := s.Contains(oid)
	if !ok || size != int64(len(data)) {
		t.Fatalf("Contains = %d,%v", size, ok)
	}
	if s.Used() != int64(len(data)) || s.Len() != 1 {
		t.Fatalf("Used %d Len %d", s.Used(), s.Len())
	}
	f, size, err := s.Open(oid)
	if err != nil || size != int64(len(data)) {
		t.Fatalf("Open: %v (size %d)", err, size)
	}
	got := make([]byte, len(data))
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), got); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if !bytes.Equal(got, data) {
		t.Fatal("payload mismatch")
	}
	// Idempotent re-write: no error, no double accounting.
	if err := s.Write(oid, buffer.FromBytes(data)); err != nil {
		t.Fatal(err)
	}
	if s.Used() != int64(len(data)) {
		t.Fatalf("double-accounted: %d", s.Used())
	}
	if !s.Remove(oid) {
		t.Fatal("Remove reported absent")
	}
	if _, ok := s.Contains(oid); ok || s.Used() != 0 {
		t.Fatal("not removed")
	}
	if _, _, err := s.Open(oid); !errors.Is(err, types.ErrNotFound) {
		t.Fatalf("Open after remove: %v", err)
	}
}

func TestWriteRefusesIncomplete(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b := buffer.New(1000)
	b.Append(payload(500, 0))
	if err := s.Write(types.ObjectIDFromString("partial"), b); err == nil {
		t.Fatal("incomplete buffer spilled")
	}
	if s.Len() != 0 {
		t.Fatal("short object indexed")
	}
}

func TestReadInto(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	oid := types.ObjectIDFromString("r")
	data := payload(100001, 3) // odd size: exercises the short last block
	if err := s.Write(oid, buffer.FromBytes(data)); err != nil {
		t.Fatal(err)
	}
	var got []byte
	if err := s.ReadInto(oid, 4096, func(p []byte) error {
		got = append(got, p...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("ReadInto mismatch")
	}
}

// TestReopenRediscovers is the restart path: a second Spill over the same
// directory indexes the objects the first one persisted, and cleans up
// temp litter from a crashed write.
func TestReopenRediscovers(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	a, b := types.ObjectIDFromString("a"), types.ObjectIDFromString("b")
	da, db := payload(5000, 1), payload(7000, 2)
	if err := s1.Write(a, buffer.FromBytes(da)); err != nil {
		t.Fatal(err)
	}
	if err := s1.Write(b, buffer.FromBytes(db)); err != nil {
		t.Fatal(err)
	}
	s1.Close()
	// Simulate a crash mid-spill and an unrelated file.
	if err := os.WriteFile(filepath.Join(dir, "deadbeef-123.tmp"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 || s2.Used() != int64(len(da)+len(db)) {
		t.Fatalf("rediscovered %d objects, %d bytes", s2.Len(), s2.Used())
	}
	ents := s2.List()
	sizes := map[types.ObjectID]int64{}
	for _, e := range ents {
		sizes[e.OID] = e.Size
	}
	if sizes[a] != int64(len(da)) || sizes[b] != int64(len(db)) {
		t.Fatalf("List = %v", ents)
	}
	if _, err := os.Stat(filepath.Join(dir, "deadbeef-123.tmp")); !os.IsNotExist(err) {
		t.Fatal("temp litter survived reopen")
	}
	if _, err := os.Stat(filepath.Join(dir, "README")); err != nil {
		t.Fatal("foreign file was touched")
	}
}

func TestClosedSpill(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	oid := types.ObjectIDFromString("x")
	if err := s.Write(oid, buffer.FromBytes(payload(10, 0))); !errors.Is(err, types.ErrClosed) {
		t.Fatalf("Write after close: %v", err)
	}
	if _, _, err := s.Open(oid); !errors.Is(err, types.ErrClosed) {
		t.Fatalf("Open after close: %v", err)
	}
}

type failingPayload struct{ size int64 }

func (f failingPayload) Size() int64              { return f.size }
func (f failingPayload) DumpTo(w io.Writer) error { return errors.New("disk on fire") }

// TestReserveBridgesDemotionWindow: between a victim leaving the store
// table and its file write publishing, the object must still be findable
// — Contains reports a reservation, and Open waits for the publish.
func TestReserveBridgesDemotionWindow(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	oid := types.ObjectIDFromString("reserved")
	data := payload(50000, 4)
	s.Reserve(oid, int64(len(data)))
	if size, ok := s.Contains(oid); !ok || size != int64(len(data)) {
		t.Fatalf("reservation invisible: %d,%v", size, ok)
	}
	opened := make(chan error, 1)
	go func() {
		f, size, err := s.Open(oid) // must block until the write publishes
		if err == nil {
			defer f.Close()
			if size != int64(len(data)) {
				err = errors.New("bad size")
			}
		}
		opened <- err
	}()
	select {
	case err := <-opened:
		t.Fatalf("Open returned before publish: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	if err := s.Write(oid, buffer.FromBytes(data)); err != nil {
		t.Fatal(err)
	}
	if err := <-opened; err != nil {
		t.Fatalf("Open after publish: %v", err)
	}
}

// TestReserveAbortedByFailedWrite: a reservation whose write fails is
// cleared — waiters wake and the object reads as absent.
func TestReserveAbortedByFailedWrite(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	oid := types.ObjectIDFromString("doomed")
	s.Reserve(oid, 100)
	opened := make(chan error, 1)
	go func() {
		_, _, err := s.Open(oid)
		opened <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := s.Write(oid, failingPayload{size: 100}); err == nil {
		t.Fatal("failing write reported success")
	}
	if err := <-opened; !errors.Is(err, types.ErrNotFound) {
		t.Fatalf("Open after aborted write: %v, want ErrNotFound", err)
	}
	if _, ok := s.Contains(oid); ok {
		t.Fatal("aborted reservation still visible")
	}
}
