// Package transport implements Hoplite's data plane: a minimal framed TCP
// protocol through which a receiver node pulls an object's bytes from a
// sender node's store. The sender streams chunks as its local buffer
// watermark advances, so a node holding only a partial copy can already
// forward data (fine-grained pipelining, §3.3). Pulls carry a starting
// offset and a length: a full pull (length 0) resumes from the receiver's
// watermark after a sender failure (§3.5.1), while a ranged pull fetches
// one sub-range of the object, which is how a striped Get drains disjoint
// ranges from several complete copies at once. Failure detection is socket
// liveness (§5.5). A pull is served from whatever tier holds the object:
// an in-memory store buffer (streamed as its watermark advances) or a
// sealed spill file (streamed off disk via ReadAt, without rehydration).
package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hoplite/internal/buffer"
	"hoplite/internal/pool"
	"hoplite/internal/types"
)

// Wire constants. Every sender→receiver frame opens with a dedicated
// status byte, so a size header, a data chunk, end-of-stream and an error
// frame can never be confused — there is no sentinel value a genuine
// length could collide with.
const (
	reqPull byte = 0x70 // 'p'

	frameSize  byte = 0x01 // + u64 object size
	frameChunk byte = 0x02 // + u32 length + bytes
	frameEOF   byte = 0x03 // stream complete
	frameErr   byte = 0x04 // + u32 length + error text

	// maxChunkSize caps a single data chunk, and maxErrSize a single
	// error message, so a corrupt length can't force a huge allocation.
	maxChunkSize = 64 << 20
	maxErrSize   = 64 << 10

	// DefaultChunkSize is the wire chunk granularity. The paper's
	// pipelining block is 4 MB (§5.1.1); smaller wire chunks inside that
	// block keep latency low while bufio amortizes syscalls.
	DefaultChunkSize = 256 << 10
)

// Payload is what a Getter resolves a pull against: exactly one of Buf
// (an in-memory store buffer, possibly still filling — the sender blocks
// at its watermark) and File (a sealed, chunk-aligned spill file served
// via ReadAt, so spilled objects relay straight off disk without being
// rehydrated into memory) is set. Size must carry the object size when
// File is used; Release, if non-nil, runs once the pull is done (closing
// the file handle).
type Payload struct {
	Buf     *buffer.Buffer
	File    io.ReaderAt
	Size    int64
	Release func()
}

// ObjectSize returns the full object size whichever backing is set.
func (p *Payload) ObjectSize() int64 {
	if p.Buf != nil {
		return p.Buf.Size()
	}
	return p.Size
}

// Getter resolves an ObjectID to the local payload that should serve a
// pull: the store buffer when the object is in memory, or its spill file
// when it was demoted to disk. Implementations may block briefly for a
// buffer whose directory registration raced ahead of its local creation.
type Getter func(ctx context.Context, oid types.ObjectID) (Payload, error)

// SendFailFunc is called when a sender observes its receiver's socket die
// mid-transfer, so the node can clear the receiver's directory lease
// (failure detection via socket liveness, §5.5).
type SendFailFunc func(oid types.ObjectID, receiver types.NodeID)

// Stats counts the pulls a data-plane server has served. Tests use it to
// assert that a striped Get actually drew ranged pulls from this sender.
type Stats struct {
	// Pulls is the total number of pull requests accepted.
	Pulls int64
	// RangedPulls counts the subset that requested an explicit sub-range
	// (a striped Get stripe) rather than offset-to-end.
	RangedPulls int64
}

// PeerStat counts what this sender has served to one receiver. The link
// estimator and tests use it to see how bytes actually spread across peers.
type PeerStat struct {
	// Pulls is the number of pulls this receiver issued here.
	Pulls int64
	// Bytes is the total chunk payload bytes sent to this receiver.
	Bytes int64
}

// TelemetryFunc observes one completed pull from the sender's side: the
// receiver it served, the chunk payload bytes sent, and the wall time spent
// inside chunk writes (watermark waits excluded, so a pipelined source does
// not masquerade as a slow link). The link-state tracker hangs off this.
type TelemetryFunc func(peer types.NodeID, bytes int64, d time.Duration)

// pullState carries one pull's scheduling class and telemetry counters
// through the send path.
type pullState struct {
	sched   *egress
	class   int
	bytes   int64
	sendDur time.Duration
}

// Server serves pull requests from a node's store.
type Server struct {
	ln     net.Listener
	get    Getter
	onFail SendFailFunc
	chunk  int
	pulls  atomic.Int64
	ranged atomic.Int64
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	// sched and bulkCutoff are set by ConfigureScheduler before Serve;
	// a nil sched means pulls write directly (single-class behavior).
	sched      *egress
	bulkCutoff int64

	peerMu    sync.Mutex
	peers     map[types.NodeID]PeerStat
	telemetry TelemetryFunc
}

// NewServer creates a data-plane server on ln.
func NewServer(ln net.Listener, get Getter, chunkSize int, onFail SendFailFunc) *Server {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	if chunkSize > maxChunkSize {
		// Receivers reject frames over maxChunkSize; never emit them.
		chunkSize = maxChunkSize
	}
	if onFail == nil {
		onFail = func(types.ObjectID, types.NodeID) {}
	}
	return &Server{
		ln: ln, get: get, onFail: onFail, chunk: chunkSize,
		conns:      make(map[net.Conn]struct{}),
		bulkCutoff: DefaultBulkCutoff,
		peers:      make(map[types.NodeID]PeerStat),
	}
}

// ConfigureScheduler installs (classes >= 2) or removes (classes <= 1) the
// weighted-fair egress scheduler. quantum is the byte-deficit one class may
// lead the other by; it is clamped to at least one chunk frame, which is
// what makes the deficit gate deadlock-free. A full pull of at least
// bulkCutoff bytes is classed as bulk (ranged pulls always are); <= 0
// keeps DefaultBulkCutoff. Call before Serve.
func (s *Server) ConfigureScheduler(classes int, quantum, bulkCutoff int64) {
	if bulkCutoff > 0 {
		s.bulkCutoff = bulkCutoff
	}
	if classes <= 1 {
		s.sched = nil
		return
	}
	if minQ := int64(s.chunk) + frameOverhead; quantum < minQ {
		quantum = minQ
	}
	s.sched = newEgress(quantum)
}

// SetTelemetry installs the per-pull observer called after each pull with
// the receiver, bytes sent, and time spent writing them. fn must be cheap;
// it runs on the serving goroutine.
func (s *Server) SetTelemetry(fn TelemetryFunc) {
	s.peerMu.Lock()
	s.telemetry = fn
	s.peerMu.Unlock()
}

// PeerStats returns a copy of the per-receiver serve counters.
func (s *Server) PeerStats() map[types.NodeID]PeerStat {
	s.peerMu.Lock()
	defer s.peerMu.Unlock()
	out := make(map[types.NodeID]PeerStat, len(s.peers))
	for k, v := range s.peers {
		out[k] = v
	}
	return out
}

// recordPull folds one finished pull into the per-peer counters and feeds
// the telemetry hook.
func (s *Server) recordPull(receiver types.NodeID, st *pullState) {
	s.peerMu.Lock()
	ps := s.peers[receiver]
	ps.Pulls++
	ps.Bytes += st.bytes
	s.peers[receiver] = ps
	tel := s.telemetry
	s.peerMu.Unlock()
	if tel != nil && st.bytes > 0 && st.sendDur > 0 {
		tel(receiver, st.bytes, st.sendDur)
	}
}

// Addr returns the listen address; it doubles as the node's NodeID.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Serve accepts pull connections until Close.
func (s *Server) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return types.ErrClosed
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return types.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// serveConn handles exactly one pull per connection (Pull dials per
// transfer). A monitor read detects the receiver's socket dying even
// while the sender is blocked waiting for its own buffer to fill, so the
// directory lease is freed promptly (§5.5).
func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	br := bufio.NewReader(conn)
	bw := bufio.NewWriterSize(conn, 64<<10)
	var hdr [1 + types.ObjectIDSize + 8 + 8 + 2]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return
	}
	if hdr[0] != reqPull {
		return
	}
	var oid types.ObjectID
	copy(oid[:], hdr[1:1+types.ObjectIDSize])
	offset := int64(binary.BigEndian.Uint64(hdr[1+types.ObjectIDSize:]))
	length := int64(binary.BigEndian.Uint64(hdr[1+types.ObjectIDSize+8:]))
	rlen := int(binary.BigEndian.Uint16(hdr[1+types.ObjectIDSize+16:]))
	rbuf := make([]byte, rlen)
	if _, err := io.ReadFull(br, rbuf); err != nil {
		return
	}
	receiver := types.NodeID(rbuf)
	s.pulls.Add(1)
	if length > 0 {
		s.ranged.Add(1)
	}

	// The client sends nothing after the request; a read completing means
	// the connection died.
	closed := make(chan struct{})
	go func() {
		var one [1]byte
		conn.Read(one[:])
		close(closed)
		cancel()
	}()

	st := &pullState{sched: s.sched}
	sentEOF, err := s.servePull(ctx, bw, st, oid, offset, length)
	if err == nil {
		err = bw.Flush()
	}
	s.recordPull(receiver, st)
	if sentEOF && err == nil {
		return // stream completed; the receiver releases the lease itself
	}
	receiverDead := err != nil && !errors.Is(err, context.Canceled)
	select {
	case <-closed:
		receiverDead = true
	default:
	}
	if receiverDead {
		// The receiver's socket died mid-transfer; report it so the
		// directory lease is freed (§5.5). Graceful error frames (local
		// buffer failed, receiver alive) take the other branch.
		s.onFail(oid, receiver)
	}
}

func writeFrameHeader(w io.Writer, status byte, n uint32) error {
	var b [5]byte
	b[0] = status
	binary.BigEndian.PutUint32(b[1:], n)
	_, err := w.Write(b[:])
	return err
}

func writeError(w *bufio.Writer, err error) error {
	msg := err.Error()
	if len(msg) > maxErrSize {
		msg = msg[:maxErrSize]
	}
	if e := writeFrameHeader(w, frameErr, uint32(len(msg))); e != nil {
		return e
	}
	if _, e := w.WriteString(msg); e != nil {
		return e
	}
	return w.Flush()
}

// servePull streams one object range: [offset, offset+length), or
// offset-to-end when length is 0. sentEOF reports whether the full stream
// (terminated by the EOF frame) was handed to the writer.
func (s *Server) servePull(ctx context.Context, bw *bufio.Writer, st *pullState, oid types.ObjectID, offset, length int64) (sentEOF bool, err error) {
	src, err := s.get(ctx, oid)
	if err != nil {
		return false, writeError(bw, err)
	}
	if src.Release != nil {
		defer src.Release()
	}
	size := src.ObjectSize()
	// Offset and length come off the wire: validate them before they can
	// index the payload (a negative or past-end value would panic the
	// send loop).
	if offset < 0 || offset > size {
		return false, writeError(bw, fmt.Errorf("pull offset %d out of range [0,%d]", offset, size))
	}
	// Compare length against the remaining bytes rather than computing
	// offset+length: a hostile huge length would overflow int64 and slip
	// past an end > size check as a negative end.
	if length < 0 || length > size-offset {
		return false, writeError(bw, fmt.Errorf("pull range [%d,+%d) out of range [0,%d]", offset, length, size))
	}
	end := size
	if length > 0 {
		end = offset + length
	}
	// Classify for the egress scheduler: striped (ranged) pulls and large
	// full pulls are bulk; small full pulls are latency-sensitive.
	if length > 0 || end-offset >= s.bulkCutoff {
		st.class = classBulk
	}
	if st.sched != nil {
		st.sched.enter(st.class)
		defer st.sched.exit(st.class)
	}
	// Size frame first so the receiver can allocate (always the full
	// object size, not the range length).
	var szb [9]byte
	szb[0] = frameSize
	binary.BigEndian.PutUint64(szb[1:], uint64(size))
	if _, err := bw.Write(szb[:]); err != nil {
		return false, err
	}
	if src.Buf != nil {
		if err := s.serveFromBuffer(ctx, bw, st, src.Buf, offset, end); err != nil {
			return false, err
		}
	} else {
		if err := s.serveFromFile(ctx, bw, st, src.File, offset, end); err != nil {
			return false, err
		}
	}
	if _, err := bw.Write([]byte{frameEOF}); err != nil {
		return false, err
	}
	return true, nil
}

// sendChunk frames and writes one data chunk, going through the egress
// scheduler when one is installed. Contended sends flush inside their
// grant so at most ~one chunk of this class sits unflushed when the other
// class gets its turn. The time spent here (scheduler wait plus the write
// itself) accrues to the pull's telemetry; watermark waits do not.
func (s *Server) sendChunk(st *pullState, bw *bufio.Writer, p []byte) error {
	write := func(flush bool) error {
		if err := writeFrameHeader(bw, frameChunk, uint32(len(p))); err != nil {
			return err
		}
		if _, err := bw.Write(p); err != nil {
			return err
		}
		if flush {
			return bw.Flush()
		}
		return nil
	}
	start := time.Now()
	var err error
	if st.sched != nil {
		err = st.sched.send(st.class, int64(len(p))+frameOverhead, write)
	} else {
		err = write(false)
	}
	st.sendDur += time.Since(start)
	if err == nil {
		st.bytes += int64(len(p))
	}
	return err
}

// serveFromBuffer streams [offset, end) of an in-memory buffer, blocking
// at the watermark so a partial copy already feeds downstream transfers
// (fine-grained pipelining, §3.3).
func (s *Server) serveFromBuffer(ctx context.Context, bw *bufio.Writer, st *pullState, buf *buffer.Buffer, offset, end int64) error {
	data := buf.Bytes()
	off := offset
	for off < end {
		wm, _, err := buf.WaitAt(ctx, off)
		if err != nil {
			return writeError(bw, err)
		}
		if wm > end {
			wm = end
		}
		for off < wm {
			stop := off + int64(s.chunk)
			if stop > wm {
				stop = wm
			}
			if err := s.sendChunk(st, bw, data[off:stop]); err != nil {
				return err
			}
			off = stop
		}
		// Flush at watermark boundaries so partial data reaches the
		// receiver promptly.
		if err := bw.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// serveFromFile streams [offset, end) of a sealed spill file through a
// pooled chunk buffer: the disk-backed relay path — the object is served
// without rehydrating it into the store. The file is complete, so there
// is no watermark to wait on; ctx is only consulted between chunks.
func (s *Server) serveFromFile(ctx context.Context, bw *bufio.Writer, st *pullState, f io.ReaderAt, offset, end int64) error {
	chunk := pool.Get(s.chunk)
	defer pool.Put(chunk)
	off := offset
	for off < end {
		if err := ctx.Err(); err != nil {
			return err
		}
		n := int64(s.chunk)
		if n > end-off {
			n = end - off
		}
		if m, err := f.ReadAt(chunk[:n], off); err != nil && !(err == io.EOF && int64(m) == n) {
			return writeError(bw, fmt.Errorf("spill read at %d: %w", off, err))
		}
		if err := s.sendChunk(st, bw, chunk[:n]); err != nil {
			return err
		}
		off += n
	}
	return nil
}

// Stats returns the server's pull counters.
func (s *Server) Stats() Stats {
	return Stats{Pulls: s.pulls.Load(), RangedPulls: s.ranged.Load()}
}

// Close stops the server and closes every data connection.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	return err
}

// DialFunc opens a data-plane connection to the chosen sender.
type DialFunc func(ctx context.Context) (net.Conn, error)

// Observer receives the receiver-side measurement of a pull's data phase:
// payload bytes that arrived and the wall time from the size frame to the
// last of them. It fires even when the pull fails partway (with whatever
// prefix arrived), so a dying-but-slow sender still yields a bandwidth
// sample. The link-state tracker hangs off this.
type Observer func(bytes int64, d time.Duration)

// Pull streams oid's bytes from the sender reached via dial into dst,
// starting at offset (which must equal dst's watermark). self identifies
// the pulling node so the sender can report a broken receiver to the
// directory. Bytes are appended to dst as they arrive, advancing its
// watermark so that local readers and onward transfers proceed
// concurrently. On success dst is sealed. On failure dst is left
// un-failed at its current watermark so the caller can resume from
// another sender.
func Pull(ctx context.Context, dial DialFunc, self types.NodeID, oid types.ObjectID, offset int64, dst *buffer.Buffer) error {
	return PullObserved(ctx, dial, self, oid, offset, dst, nil)
}

// PullObserved is Pull with a transfer Observer (nil is allowed).
func PullObserved(ctx context.Context, dial DialFunc, self types.NodeID, oid types.ObjectID, offset int64, dst *buffer.Buffer, obs Observer) error {
	if offset != dst.Watermark() {
		return fmt.Errorf("transport: pull offset %d != watermark %d", offset, dst.Watermark())
	}
	return pull(ctx, dial, self, oid, offset, 0, dst, true, obs)
}

// PullRange streams exactly [offset, offset+length) of oid from the
// sender into dst via dst.WriteAt, filling the chunk ledger without
// touching bytes outside the range. The caller owns the range (typically
// via dst.ClaimNext) and seals dst itself once every range is present. On
// failure dst keeps whatever prefix of the range arrived; the caller
// releases the claim so the missing bytes — and only those — can be
// re-fetched from another sender.
func PullRange(ctx context.Context, dial DialFunc, self types.NodeID, oid types.ObjectID, offset, length int64, dst *buffer.Buffer) error {
	return PullRangeObserved(ctx, dial, self, oid, offset, length, dst, nil)
}

// PullRangeObserved is PullRange with a transfer Observer (nil is allowed).
func PullRangeObserved(ctx context.Context, dial DialFunc, self types.NodeID, oid types.ObjectID, offset, length int64, dst *buffer.Buffer, obs Observer) error {
	if length <= 0 {
		return fmt.Errorf("transport: pull range length %d", length)
	}
	if offset < 0 || offset+length > dst.Size() {
		return fmt.Errorf("transport: pull range [%d,%d) outside object of %d bytes", offset, offset+length, dst.Size())
	}
	return pull(ctx, dial, self, oid, offset, length, dst, false, obs)
}

// pull is the shared receive loop: it requests [offset, offset+length)
// (length 0 = to end) and writes arriving chunks at their absolute offset,
// which equals dst's watermark for a full pull and extends a claimed range
// fill for a ranged one. sealAtEOF seals dst after a complete full pull.
func pull(ctx context.Context, dial DialFunc, self types.NodeID, oid types.ObjectID, offset, length int64, dst *buffer.Buffer, sealAtEOF bool, obs Observer) error {
	conn, err := dial(ctx)
	if err != nil {
		return fmt.Errorf("transport: dial sender: %w", err)
	}
	defer conn.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-stop:
		}
	}()

	rid := []byte(self)
	if len(rid) > 65535 {
		return fmt.Errorf("transport: node id too long")
	}
	req := make([]byte, 0, 1+types.ObjectIDSize+8+8+2+len(rid))
	req = append(req, reqPull)
	req = append(req, oid[:]...)
	req = binary.BigEndian.AppendUint64(req, uint64(offset))
	req = binary.BigEndian.AppendUint64(req, uint64(length))
	req = binary.BigEndian.AppendUint16(req, uint16(len(rid)))
	req = append(req, rid...)
	if _, err := conn.Write(req); err != nil {
		return fmt.Errorf("transport: send request: %w", err)
	}

	br := bufio.NewReaderSize(conn, 64<<10)
	// The first frame is either the size header or an error frame; the
	// status byte disambiguates, so no length value can be mistaken for
	// an error sentinel (or vice versa).
	status, err := br.ReadByte()
	if err != nil {
		return fmt.Errorf("transport: read size frame: %w", err)
	}
	switch status {
	case frameErr:
		return readErrorFrame(br)
	case frameSize:
	default:
		return fmt.Errorf("transport: unexpected frame 0x%02x, want size", status)
	}
	var szb [8]byte
	if _, err := io.ReadFull(br, szb[:]); err != nil {
		return fmt.Errorf("transport: read size: %w", err)
	}
	size := int64(binary.BigEndian.Uint64(szb[:]))
	if size != dst.Size() {
		return fmt.Errorf("transport: size mismatch: sender %d, local %d", size, dst.Size())
	}

	end := size
	if length > 0 {
		end = offset + length
	}
	got := offset
	if obs != nil {
		start := time.Now()
		defer func() {
			if got > offset {
				obs(got-offset, time.Since(start))
			}
		}()
	}
	chunk := pool.Get(DefaultChunkSize)
	defer func() { pool.Put(chunk) }()
	for {
		status, err := br.ReadByte()
		if err != nil {
			return fmt.Errorf("transport: read frame header: %w", err)
		}
		switch status {
		case frameEOF:
			if got != end {
				return fmt.Errorf("transport: short stream: %d of %d bytes", got-offset, end-offset)
			}
			if sealAtEOF {
				dst.Seal()
			}
			return nil
		case frameErr:
			return readErrorFrame(br)
		case frameChunk:
			var hb [4]byte
			if _, err := io.ReadFull(br, hb[:]); err != nil {
				return fmt.Errorf("transport: read chunk header: %w", err)
			}
			n := binary.BigEndian.Uint32(hb[:])
			if n > maxChunkSize {
				return fmt.Errorf("transport: chunk of %d bytes exceeds limit", n)
			}
			if n == 0 {
				// The sender never emits empty chunks; accepting them
				// would let a misbehaving peer spin the receiver forever
				// without watermark progress.
				return errors.New("transport: zero-length chunk")
			}
			if int(n) > len(chunk) {
				pool.Put(chunk)
				chunk = pool.Get(int(n))
			}
			if _, err := io.ReadFull(br, chunk[:n]); err != nil {
				return fmt.Errorf("transport: read chunk: %w", err)
			}
			if got+int64(n) > end {
				return errors.New("transport: sender overran requested range")
			}
			if err := dst.WriteAt(chunk[:n], got); err != nil {
				return err
			}
			got += int64(n)
		default:
			return fmt.Errorf("transport: unexpected frame 0x%02x", status)
		}
	}
}

// readErrorFrame consumes an error frame body (after its status byte) and
// converts it into the sender's error.
func readErrorFrame(br *bufio.Reader) error {
	var hb [4]byte
	if _, err := io.ReadFull(br, hb[:]); err != nil {
		return fmt.Errorf("transport: read error frame: %w", err)
	}
	msgLen := binary.BigEndian.Uint32(hb[:])
	if msgLen > maxErrSize {
		return fmt.Errorf("transport: error frame of %d bytes exceeds limit", msgLen)
	}
	msg := make([]byte, msgLen)
	if _, err := io.ReadFull(br, msg); err != nil {
		return fmt.Errorf("transport: read error frame: %w", err)
	}
	if string(msg) == types.ErrDeleted.Error() {
		return types.ErrDeleted
	}
	return fmt.Errorf("transport: sender: %s: %w", msg, types.ErrAborted)
}
