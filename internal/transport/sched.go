// Egress scheduling: a weighted-fair, two-class byte scheduler over the
// concurrent pulls sharing one node's uplink. Without it, a saturating
// striped Get fills the egress path (and, under emulation, the token
// bucket's debt) so deep that a latency-sensitive small Get queued behind
// it waits for every in-flight bulk chunk. With it, chunk sends of the
// latency class and the bulk class alternate under a byte-deficit
// round-robin: each class may lead the other by at most one quantum of
// granted bytes, so a small pull transmits after at most roughly one bulk
// chunk already on the wire.
//
// The scheduler engages under cross-class contention, and bulk sends also
// serialize among themselves whenever several bulk streams are active:
// concurrent bulk writers would otherwise each keep a chunk queued in the
// shared egress path, so the standing backlog a small pull lands behind
// grows with the stream count instead of staying at ~one chunk. A
// single-stream workload — the common case, and every throughput benchmark
// — takes a fast path that grants bytes without serializing writers, so
// enabling the scheduler costs nothing until there is actual contention.
package transport

import (
	"sync"
)

// Scheduling classes. Latency-sensitive pulls (small full-object fetches)
// must not queue behind bulk traffic (striped ranged pulls, large
// transfers).
const (
	classLatency = 0
	classBulk    = 1
)

const (
	// DefaultBulkCutoff: a full pull of at least this many bytes is
	// scheduled as bulk; ranged (striped) pulls are always bulk.
	DefaultBulkCutoff = 1 << 20
	// frameOverhead is the per-chunk frame header size counted against a
	// class's granted bytes.
	frameOverhead = 5
)

// egress is the two-class deficit scheduler. All bookkeeping is under one
// mutex; the guarded sections only mutate counters (no I/O).
type egress struct {
	quantum int64
	mu      sync.Mutex
	cond    *sync.Cond
	// busy marks a contended-mode chunk send in flight: contended sends
	// serialize so a small chunk waits behind at most one bulk chunk of
	// wire (and shaper-debt) backlog, not an unbounded pipeline of them.
	busy bool
	// granted counts bytes granted per class; the deficit gate keeps the
	// two within one quantum of each other while both classes wait.
	granted [2]int64
	// users counts pulls currently registered per class (enter/exit);
	// pending counts sends blocked in the gate right now.
	users   [2]int
	pending [2]int
}

func newEgress(quantum int64) *egress {
	e := &egress{quantum: quantum}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// enter registers a pull of the given class for its lifetime. A class
// activating from idle is rebased to at most one quantum behind the other
// class, so credit banked while it was idle (a bulk stream that ran alone
// for gigabytes) cannot stall the other class — or itself — afterwards.
func (e *egress) enter(class int) {
	e.mu.Lock()
	if e.users[class] == 0 {
		if g := e.granted[1-class] - e.quantum; g > e.granted[class] {
			e.granted[class] = g
		}
	}
	e.users[class]++
	e.mu.Unlock()
}

// exit deregisters a pull registered with enter.
func (e *egress) exit(class int) {
	e.mu.Lock()
	e.users[class]--
	e.mu.Unlock()
	e.cond.Broadcast()
}

// send grants n bytes to class and runs fn to perform the write. When the
// other class is inactive the grant is free and fn runs concurrently with
// other senders (fast path). When both classes are active, sends serialize
// and the deficit gate bounds how far one class's granted bytes may run
// ahead of the other's; fn then receives contended=true so the caller
// flushes within its turn (bounding shaper debt to ~one chunk).
//
// Deadlock-freedom: the gate compares granted[class]+n against
// granted[other]+quantum, and the constructor guarantees quantum >= any n,
// so at least one class always passes.
func (e *egress) send(class int, n int64, fn func(contended bool) error) error {
	e.mu.Lock()
	other := 1 - class
	// Fast path: no cross-class contention, and (for bulk) no sibling bulk
	// streams whose queued chunks would deepen the shared egress backlog.
	// Latency-class sends never serialize among themselves: their chunks
	// are small and parallel small pulls should not queue on each other.
	solo := class == classLatency || e.users[class] <= 1
	if !e.busy && e.users[other] == 0 && e.pending[other] == 0 && solo {
		e.granted[class] += n
		e.mu.Unlock()
		return fn(false)
	}
	e.pending[class]++
	for e.busy || (e.pending[other] > 0 && e.granted[class]+n > e.granted[other]+e.quantum) {
		e.cond.Wait()
	}
	e.pending[class]--
	e.granted[class] += n
	e.busy = true
	e.mu.Unlock()
	err := fn(true)
	e.mu.Lock()
	e.busy = false
	e.mu.Unlock()
	e.cond.Broadcast()
	return err
}
