package transport

import (
	"net"
	"sync"
	"testing"
	"time"
)

// Single-class traffic must take the fast path: no serialization, no
// contended flushes, regardless of how many senders share the class.
func TestEgressSingleClassFastPath(t *testing.T) {
	e := newEgress(1 << 10)
	e.enter(classBulk)
	defer e.exit(classBulk)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				err := e.send(classBulk, 512, func(contended bool) error {
					if contended {
						t.Error("single-class send took the contended path")
					}
					return nil
				})
				if err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	if got := e.granted[classBulk]; got != 8*100*512 {
		t.Fatalf("granted %d, want %d", got, 8*100*512)
	}
}

// With both classes active, a small send queued behind an in-flight bulk
// chunk must go out before the next bulk chunk: the deficit gate holds
// bulk back once it leads by more than a quantum while latency has a
// pending send.
func TestEgressSmallSendPreemptsNextBulkChunk(t *testing.T) {
	e := newEgress(100)
	e.enter(classLatency)
	e.enter(classBulk)
	defer e.exit(classLatency)
	defer e.exit(classBulk)

	release := make(chan struct{})
	var mu sync.Mutex
	var order []string
	record := func(name string) func(bool) error {
		return func(bool) error {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			return nil
		}
	}

	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		e.send(classBulk, 80, func(bool) error {
			record("bulk1")(false)
			<-release // hold the busy token: the other sends must queue
			return nil
		})
	}()
	// Wait until bulk1 is inside its send before queueing the others.
	waitFor(t, func() bool {
		e.mu.Lock()
		defer e.mu.Unlock()
		return e.busy
	})
	go func() {
		defer wg.Done()
		e.send(classBulk, 80, record("bulk2"))
	}()
	go func() {
		defer wg.Done()
		e.send(classLatency, 10, record("small"))
	}()
	// Both followers must be parked in the gate before bulk1 finishes,
	// otherwise the wake order is not the one under test.
	waitFor(t, func() bool {
		e.mu.Lock()
		defer e.mu.Unlock()
		return e.pending[classBulk] == 1 && e.pending[classLatency] == 1
	})
	close(release)
	wg.Wait()

	want := []string{"bulk1", "small", "bulk2"}
	if len(order) != len(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

// A class that ran alone banks granted bytes; when the other class
// activates it must be rebased to at most one quantum behind, or the
// newcomer would transmit unopposed for the whole banked amount.
func TestEgressEnterRebasesIdleClass(t *testing.T) {
	e := newEgress(100)
	e.enter(classBulk)
	for i := 0; i < 10; i++ {
		if err := e.send(classBulk, 1000, func(bool) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	e.enter(classLatency)
	e.mu.Lock()
	gb, gl := e.granted[classBulk], e.granted[classLatency]
	e.mu.Unlock()
	if gb != 10000 {
		t.Fatalf("bulk granted %d, want 10000", gb)
	}
	if gl != gb-100 {
		t.Fatalf("latency rebased to %d, want %d", gl, gb-100)
	}
	e.exit(classLatency)
	e.exit(classBulk)
}

// Hammer both classes concurrently; every send must complete (no deadlock)
// and the contended-mode serialization must never admit two fns at once.
func TestEgressConcurrentMixNoDeadlock(t *testing.T) {
	e := newEgress(64 << 10)
	var inFn sync.Map
	var wg sync.WaitGroup
	done := make(chan struct{})
	for class := 0; class < 2; class++ {
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(class int) {
				defer wg.Done()
				e.enter(class)
				defer e.exit(class)
				for i := 0; i < 200; i++ {
					n := int64(1 + (i*7919)%(32<<10))
					err := e.send(class, n, func(contended bool) error {
						if contended {
							if _, loaded := inFn.LoadOrStore("busy", true); loaded {
								t.Error("two contended sends in flight at once")
							}
							inFn.Delete("busy")
						}
						return nil
					})
					if err != nil {
						t.Error(err)
					}
				}
			}(class)
		}
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("egress scheduler deadlocked")
	}
}

// ConfigureScheduler must clamp the quantum to at least one chunk frame:
// a quantum smaller than a single send would wedge the deficit gate.
func TestConfigureSchedulerClampsQuantum(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	s := NewServer(ln, nil, 8<<10, nil)
	s.ConfigureScheduler(2, 1, 0)
	if s.sched == nil {
		t.Fatal("scheduler not installed")
	}
	if want := int64(8<<10 + frameOverhead); s.sched.quantum != want {
		t.Fatalf("quantum %d, want clamped %d", s.sched.quantum, want)
	}
	s.ConfigureScheduler(1, 0, 0)
	if s.sched != nil {
		t.Fatal("classes=1 must remove the scheduler")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}
