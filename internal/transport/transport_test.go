package transport

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hoplite/internal/buffer"
	"hoplite/internal/types"
)

type filePayload struct {
	ra      io.ReaderAt
	size    int64
	release func()
}

type fixture struct {
	srv   *Server
	addr  string
	mu    sync.Mutex
	objs  map[types.ObjectID]*buffer.Buffer
	files map[types.ObjectID]filePayload
	fail  []struct {
		oid  types.ObjectID
		recv types.NodeID
	}
}

func startFixture(t *testing.T) *fixture {
	t.Helper()
	f := &fixture{
		objs:  make(map[types.ObjectID]*buffer.Buffer),
		files: make(map[types.ObjectID]filePayload),
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	get := func(ctx context.Context, oid types.ObjectID) (Payload, error) {
		f.mu.Lock()
		defer f.mu.Unlock()
		if b, ok := f.objs[oid]; ok {
			return Payload{Buf: b}, nil
		}
		if fp, ok := f.files[oid]; ok {
			return Payload{File: fp.ra, Size: fp.size, Release: fp.release}, nil
		}
		return Payload{}, types.ErrNotFound
	}
	onFail := func(oid types.ObjectID, recv types.NodeID) {
		f.mu.Lock()
		f.fail = append(f.fail, struct {
			oid  types.ObjectID
			recv types.NodeID
		}{oid, recv})
		f.mu.Unlock()
	}
	f.srv = NewServer(ln, get, 8<<10, onFail)
	f.addr = ln.Addr().String()
	go f.srv.Serve()
	t.Cleanup(func() { f.srv.Close() })
	return f
}

func dialTo(addr string) DialFunc {
	return func(ctx context.Context) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", addr)
	}
}

func (f *fixture) add(oid types.ObjectID, b *buffer.Buffer) {
	f.mu.Lock()
	f.objs[oid] = b
	f.mu.Unlock()
}

func payload(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i * 7)
	}
	return b
}

func TestPullComplete(t *testing.T) {
	f := startFixture(t)
	oid := types.ObjectIDFromString("x")
	data := payload(300000)
	f.add(oid, buffer.FromBytes(data))
	dst := buffer.New(int64(len(data)))
	if err := Pull(context.Background(), dialTo(f.addr), "recv", oid, 0, dst); err != nil {
		t.Fatal(err)
	}
	if !dst.Complete() || !bytes.Equal(dst.Bytes(), data) {
		t.Fatal("pull mismatch")
	}
}

func TestPullStreamsFromPartialSource(t *testing.T) {
	f := startFixture(t)
	oid := types.ObjectIDFromString("x")
	data := payload(200000)
	src := buffer.New(int64(len(data)))
	f.add(oid, src)
	dst := buffer.New(int64(len(data)))
	done := make(chan error, 1)
	go func() { done <- Pull(context.Background(), dialTo(f.addr), "recv", oid, 0, dst) }()
	// Feed the source gradually; the pull must track the watermark.
	for off := 0; off < len(data); off += 33333 {
		end := off + 33333
		if end > len(data) {
			end = len(data)
		}
		src.Append(data[off:end])
		time.Sleep(time.Millisecond)
	}
	src.Seal()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst.Bytes(), data) {
		t.Fatal("pipelined pull mismatch")
	}
}

func TestPullResumeFromOffset(t *testing.T) {
	f := startFixture(t)
	oid := types.ObjectIDFromString("x")
	data := payload(100000)
	f.add(oid, buffer.FromBytes(data))
	dst := buffer.New(int64(len(data)))
	dst.Append(data[:40000]) // already received from a failed sender
	if err := Pull(context.Background(), dialTo(f.addr), "recv", oid, 40000, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst.Bytes(), data) {
		t.Fatal("resumed pull mismatch")
	}
}

func TestPullOffsetMismatch(t *testing.T) {
	dst := buffer.New(100)
	err := Pull(context.Background(), dialTo("127.0.0.1:1"), "recv", types.ObjectID{}, 50, dst)
	if err == nil {
		t.Fatal("offset mismatch accepted")
	}
}

func TestPullUnknownObject(t *testing.T) {
	f := startFixture(t)
	dst := buffer.New(10)
	err := Pull(context.Background(), dialTo(f.addr), "recv", types.ObjectIDFromString("nope"), 0, dst)
	if err == nil {
		t.Fatal("unknown object pulled")
	}
	if dst.Failed() != nil {
		t.Fatal("dst failed; must stay resumable")
	}
}

func TestPullDeletedSource(t *testing.T) {
	f := startFixture(t)
	oid := types.ObjectIDFromString("x")
	src := buffer.New(1000)
	src.Fail(types.ErrDeleted)
	f.add(oid, src)
	dst := buffer.New(1000)
	err := Pull(context.Background(), dialTo(f.addr), "recv", oid, 0, dst)
	if !errors.Is(err, types.ErrDeleted) {
		t.Fatalf("got %v", err)
	}
}

func TestPullSourceFailsMidStream(t *testing.T) {
	f := startFixture(t)
	oid := types.ObjectIDFromString("x")
	src := buffer.New(100000)
	src.Append(payload(30000))
	f.add(oid, src)
	dst := buffer.New(100000)
	done := make(chan error, 1)
	go func() { done <- Pull(context.Background(), dialTo(f.addr), "recv", oid, 0, dst) }()
	time.Sleep(30 * time.Millisecond)
	src.Fail(types.ErrAborted)
	err := <-done
	if err == nil {
		t.Fatal("pull succeeded from failed source")
	}
	// The receiver keeps its partial bytes to resume elsewhere.
	if dst.Watermark() == 0 {
		t.Fatal("no partial bytes retained")
	}
	if dst.Failed() != nil {
		t.Fatal("dst failed; must stay resumable")
	}
}

func TestPullContextCancel(t *testing.T) {
	f := startFixture(t)
	oid := types.ObjectIDFromString("x")
	src := buffer.New(1 << 20) // never completes
	f.add(oid, src)
	dst := buffer.New(1 << 20)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := Pull(ctx, dialTo(f.addr), "recv", oid, 0, dst); err == nil {
		t.Fatal("pull survived cancellation")
	}
}

func TestSendFailureCallback(t *testing.T) {
	f := startFixture(t)
	oid := types.ObjectIDFromString("x")
	src := buffer.New(1 << 20)
	src.Append(payload(64 << 10))
	f.add(oid, src)
	dst := buffer.New(1 << 20)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Pull(ctx, dialTo(f.addr), "receiver-7", oid, 0, dst) }()
	time.Sleep(30 * time.Millisecond)
	cancel() // breaks the receiver's socket mid-transfer
	<-done
	deadline := time.Now().Add(5 * time.Second)
	for {
		f.mu.Lock()
		n := len(f.fail)
		f.mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sender did not report the broken receiver")
		}
		time.Sleep(5 * time.Millisecond)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail[0].oid != oid || f.fail[0].recv != "receiver-7" {
		t.Fatalf("reported %+v", f.fail[0])
	}
}

func TestMultiplePullsSameConnSequential(t *testing.T) {
	f := startFixture(t)
	a, b := types.ObjectIDFromString("a"), types.ObjectIDFromString("b")
	f.add(a, buffer.FromBytes(payload(5000)))
	f.add(b, buffer.FromBytes(payload(7000)))
	// Separate Pull calls each dial their own conn; both must work.
	d1 := buffer.New(5000)
	d2 := buffer.New(7000)
	if err := Pull(context.Background(), dialTo(f.addr), "r", a, 0, d1); err != nil {
		t.Fatal(err)
	}
	if err := Pull(context.Background(), dialTo(f.addr), "r", b, 0, d2); err != nil {
		t.Fatal(err)
	}
	if !d1.Complete() || !d2.Complete() {
		t.Fatal("pulls incomplete")
	}
}

func TestZeroSizeObject(t *testing.T) {
	f := startFixture(t)
	oid := types.ObjectIDFromString("empty")
	f.add(oid, buffer.FromBytes(nil))
	dst := buffer.New(0)
	if err := Pull(context.Background(), dialTo(f.addr), "r", oid, 0, dst); err != nil {
		t.Fatal(err)
	}
	if !dst.Complete() {
		t.Fatal("empty object not complete")
	}
}

func TestPullRangeStripes(t *testing.T) {
	f := startFixture(t)
	oid := types.ObjectIDFromString("x")
	data := payload(400000)
	f.add(oid, buffer.FromBytes(data))
	dst := buffer.NewChunked(int64(len(data)), 64<<10)
	// Three concurrent workers drain disjoint claimed ranges, like a
	// striped Get across three complete copies.
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				off, n, ok := dst.ClaimNext(128 << 10)
				if !ok {
					return
				}
				if err := PullRange(context.Background(), dialTo(f.addr), "recv", oid, off, n, dst); err != nil {
					t.Error(err)
					dst.ReleaseClaim(off, n)
					return
				}
			}
		}()
	}
	wg.Wait()
	if dst.Present() != int64(len(data)) {
		t.Fatalf("present %d, want %d", dst.Present(), len(data))
	}
	dst.Seal()
	if !bytes.Equal(dst.Bytes(), data) {
		t.Fatal("striped pull mismatch")
	}
	stats := f.srv.Stats()
	if stats.RangedPulls < 3 || stats.Pulls != stats.RangedPulls {
		t.Fatalf("stats %+v, want >=3 ranged pulls", stats)
	}
}

func TestPullRangeFromPartialSource(t *testing.T) {
	f := startFixture(t)
	oid := types.ObjectIDFromString("x")
	data := payload(200000)
	src := buffer.New(int64(len(data)))
	f.add(oid, src)
	dst := buffer.NewChunked(int64(len(data)), 64<<10)
	done := make(chan error, 1)
	// Request a tail range (chunk-aligned, as ClaimNext hands out) before
	// the source has produced it: the sender must block at its watermark
	// and stream once available.
	const tail = 2 * 64 << 10
	go func() {
		done <- PullRange(context.Background(), dialTo(f.addr), "recv", oid, tail, int64(len(data))-tail, dst)
	}()
	for off := 0; off < len(data); off += 50000 {
		src.Append(data[off : off+50000])
		time.Sleep(time.Millisecond)
	}
	src.Seal()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst.Bytes()[tail:], data[tail:]) {
		t.Fatal("ranged pull mismatch")
	}
	if dst.Watermark() != 0 {
		t.Fatalf("watermark %d, want 0 (hole at front)", dst.Watermark())
	}
}

func TestPullRangeValidation(t *testing.T) {
	f := startFixture(t)
	oid := types.ObjectIDFromString("x")
	f.add(oid, buffer.FromBytes(payload(1000)))
	dst := buffer.New(1000)
	if err := PullRange(context.Background(), dialTo(f.addr), "r", oid, 0, 0, dst); err == nil {
		t.Fatal("zero-length range accepted")
	}
	if err := PullRange(context.Background(), dialTo(f.addr), "r", oid, 900, 200, dst); err == nil {
		t.Fatal("past-end range accepted")
	}
}

// A hostile range (offset+length past the object end) must get an error
// frame from the server, not panic or overrun.
func TestWireFormatHostileRangeRejected(t *testing.T) {
	f := startFixture(t)
	oid := types.ObjectIDFromString("x")
	f.add(oid, buffer.FromBytes(payload(100)))
	conn, err := net.Dial("tcp", f.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A plainly past-end range, and a length crafted so offset+length
	// overflows int64 (which would sneak past a naive end > size check).
	for _, length := range []int64{1 << 40, (1<<63 - 1) - 40} {
		if _, err := conn.Write(pullRequest(oid, 50, length, "r")); err != nil {
			t.Fatal(err)
		}
		var status [1]byte
		if _, err := io.ReadFull(conn, status[:]); err != nil {
			t.Fatal(err)
		}
		if status[0] != frameErr {
			t.Fatalf("length %d: status 0x%02x, want error frame", length, status[0])
		}
		conn.Close()
		if conn, err = net.Dial("tcp", f.addr); err != nil {
			t.Fatal(err)
		}
	}
}

// pullRequest encodes the receiver's request frame for raw-socket tests
// (length 0 = pull to end of object).
func pullRequest(oid types.ObjectID, offset, length int64, receiver string) []byte {
	req := []byte{reqPull}
	req = append(req, oid[:]...)
	req = binary.BigEndian.AppendUint64(req, uint64(offset))
	req = binary.BigEndian.AppendUint64(req, uint64(length))
	req = binary.BigEndian.AppendUint16(req, uint16(len(receiver)))
	return append(req, receiver...)
}

// The first frame of a successful pull must be a size frame with a
// dedicated status byte — not a bare length a reader has to guess about.
func TestWireFormatSizeFrame(t *testing.T) {
	f := startFixture(t)
	oid := types.ObjectIDFromString("x")
	data := payload(100)
	f.add(oid, buffer.FromBytes(data))
	conn, err := net.Dial("tcp", f.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(pullRequest(oid, 0, 0, "r")); err != nil {
		t.Fatal(err)
	}
	var hdr [9]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		t.Fatal(err)
	}
	if hdr[0] != frameSize {
		t.Fatalf("first status byte 0x%02x, want size 0x%02x", hdr[0], frameSize)
	}
	if got := binary.BigEndian.Uint64(hdr[1:]); got != uint64(len(data)) {
		t.Fatalf("size %d, want %d", got, len(data))
	}
}

// A failed pull must open with an error frame, again tagged by its status
// byte, even when the error text's length bytes could look like a size.
func TestWireFormatErrorFrame(t *testing.T) {
	f := startFixture(t)
	conn, err := net.Dial("tcp", f.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(pullRequest(types.ObjectIDFromString("missing"), 0, 0, "r")); err != nil {
		t.Fatal(err)
	}
	var hdr [5]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		t.Fatal(err)
	}
	if hdr[0] != frameErr {
		t.Fatalf("first status byte 0x%02x, want error 0x%02x", hdr[0], frameErr)
	}
	msg := make([]byte, binary.BigEndian.Uint32(hdr[1:]))
	if _, err := io.ReadFull(conn, msg); err != nil {
		t.Fatal(err)
	}
	if string(msg) != types.ErrNotFound.Error() {
		t.Fatalf("error text %q", msg)
	}
}

// A hostile pull offset (u64 with the top bit set decodes to a negative
// int64) must get an error frame, not panic the sender's stream loop.
func TestWireFormatHostileOffsetRejected(t *testing.T) {
	f := startFixture(t)
	oid := types.ObjectIDFromString("x")
	f.add(oid, buffer.FromBytes(payload(100)))
	conn, err := net.Dial("tcp", f.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(pullRequest(oid, -1, 0, "r")); err != nil {
		t.Fatal(err)
	}
	var status [1]byte
	if _, err := io.ReadFull(conn, status[:]); err != nil {
		t.Fatal(err)
	}
	if status[0] != frameErr {
		t.Fatalf("status 0x%02x, want error frame", status[0])
	}
	// The server must still be alive and serving afterwards.
	dst := buffer.New(100)
	if err := Pull(context.Background(), dialTo(f.addr), "r", oid, 0, dst); err != nil {
		t.Fatalf("server died after hostile offset: %v", err)
	}
}

// A receiver facing a sender that speaks garbage must fail cleanly and
// keep dst resumable.
func TestPullRejectsUnknownFrame(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		io.Copy(io.Discard, io.LimitReader(conn, int64(1+types.ObjectIDSize+8+8+2+1)))
		conn.Write([]byte{0x7F, 0, 0, 0, 0, 0, 0, 0, 0}) // bogus status byte
	}()
	dst := buffer.New(100)
	err = Pull(context.Background(), dialTo(ln.Addr().String()), "r", types.ObjectIDFromString("x"), 0, dst)
	if err == nil {
		t.Fatal("garbage frame accepted")
	}
	if dst.Failed() != nil {
		t.Fatal("dst failed; must stay resumable")
	}
}

func TestConcurrentPullsDifferentReceivers(t *testing.T) {
	f := startFixture(t)
	oid := types.ObjectIDFromString("x")
	data := payload(500000)
	f.add(oid, buffer.FromBytes(data))
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := buffer.New(int64(len(data)))
			err := Pull(context.Background(), dialTo(f.addr), "r", oid, 0, dst)
			if err == nil && !bytes.Equal(dst.Bytes(), data) {
				err = errors.New("mismatch")
			}
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func (f *fixture) addFile(t *testing.T, oid types.ObjectID, data []byte) *int32 {
	t.Helper()
	released := new(int32)
	f.mu.Lock()
	f.files[oid] = filePayload{
		ra:      bytes.NewReader(data),
		size:    int64(len(data)),
		release: func() { atomic.AddInt32(released, 1) },
	}
	f.mu.Unlock()
	return released
}

// TestPullFromFileSource exercises the disk-backed relay path: a Payload
// backed by an io.ReaderAt (a spill file) streams a full pull without any
// in-memory buffer on the sender, and the Release hook runs when the pull
// finishes.
func TestPullFromFileSource(t *testing.T) {
	f := startFixture(t)
	oid := types.ObjectIDFromString("spilled")
	data := payload(300000)
	released := f.addFile(t, oid, data)
	dst := buffer.New(int64(len(data)))
	if err := Pull(context.Background(), dialTo(f.addr), "recv", oid, 0, dst); err != nil {
		t.Fatal(err)
	}
	if !dst.Complete() || !bytes.Equal(dst.Bytes(), data) {
		t.Fatal("pull from file mismatch")
	}
	if atomic.LoadInt32(released) != 1 {
		t.Fatalf("release ran %d times, want 1", atomic.LoadInt32(released))
	}
}

// TestPullRangeFromFileSource stripes ranged sub-pulls off a disk-backed
// sender: each range lands at its absolute offset, exactly as with an
// in-memory source.
func TestPullRangeFromFileSource(t *testing.T) {
	f := startFixture(t)
	oid := types.ObjectIDFromString("spilled-ranged")
	data := payload(100000)
	f.addFile(t, oid, data)
	dst := buffer.NewChunked(int64(len(data)), 16<<10)
	var wg sync.WaitGroup
	for {
		off, length, ok := dst.ClaimNext(32 << 10)
		if !ok {
			break
		}
		wg.Add(1)
		go func(off, length int64) {
			defer wg.Done()
			if err := PullRange(context.Background(), dialTo(f.addr), "recv", oid, off, length, dst); err != nil {
				t.Error(err)
			}
		}(off, length)
	}
	wg.Wait()
	if dst.Present() != dst.Size() {
		t.Fatalf("present %d of %d", dst.Present(), dst.Size())
	}
	dst.Seal()
	if !bytes.Equal(dst.Bytes(), data) {
		t.Fatal("striped pull from file mismatch")
	}
}
