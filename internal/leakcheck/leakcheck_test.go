package leakcheck

import (
	"strings"
	"testing"
	"time"
)

func TestMain(m *testing.M) { Main(m) }

// TestDetectsLeak proves the check fails loudly: a goroutine deliberately
// parked on a channel must be reported with its stack.
func TestDetectsLeak(t *testing.T) {
	before := snapshot()
	ch := make(chan struct{})
	go func() { <-ch }()
	err := check(before, 200*time.Millisecond)
	if err == nil {
		t.Fatal("check found no leak, want the parked goroutine reported")
	}
	if !strings.Contains(err.Error(), "leaked goroutine") || !strings.Contains(err.Error(), "TestDetectsLeak") {
		t.Fatalf("leak report missing the culprit stack:\n%v", err)
	}
	// Unpark it so the package's own TestMain-level check stays clean.
	close(ch)
}

// TestCleanRun proves a goroutine that exits within the window passes.
func TestCleanRun(t *testing.T) {
	before := snapshot()
	done := make(chan struct{})
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(done)
	}()
	if err := check(before, 2*time.Second); err != nil {
		t.Fatalf("clean shutdown reported as a leak: %v", err)
	}
	<-done
}

// TestGrandfathered proves pre-existing goroutines are not reported.
func TestGrandfathered(t *testing.T) {
	ch := make(chan struct{})
	go func() { <-ch }()
	defer close(ch)
	before := snapshot() // taken after the goroutine started
	if err := check(before, 100*time.Millisecond); err != nil {
		t.Fatalf("grandfathered goroutine reported as a leak: %v", err)
	}
}
