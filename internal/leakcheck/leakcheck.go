// Package leakcheck fails a test binary that exits with goroutines it
// started still running. Every package in this repo installs it via
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
//
// so a test that forgets to Close a node, cancel a watcher, or drain a
// worker fails loudly instead of letting the leak hide until it deadlocks
// an unrelated -race run. The check is a snapshot diff: goroutines
// present at TestMain start are grandfathered, the test-framework's own
// goroutines are allowlisted, and anything else still alive after the
// retry window (goroutines legitimately winding down get a grace period)
// is reported with its full stack.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"
)

// maxWait is how long Main waits for straggler goroutines to exit before
// declaring them leaked. Shutdown paths in this repo are prompt; five
// seconds is far beyond any legitimate wind-down.
const maxWait = 5 * time.Second

// Main wraps m.Run with the leak check. It does not return.
func Main(m *testing.M) {
	before := snapshot()
	code := m.Run()
	if code == 0 {
		if err := check(before, maxWait); err != nil {
			fmt.Fprintf(os.Stderr, "leakcheck: %v\n", err)
			code = 1
		}
	}
	os.Exit(code)
}

// goroutine is one parsed entry of a full runtime.Stack dump.
type goroutine struct {
	id    int64
	stack string // full block, including the header line
}

// snapshot captures the IDs of all currently live goroutines.
func snapshot() map[int64]bool {
	ids := make(map[int64]bool)
	for _, g := range dump() {
		ids[g.id] = true
	}
	return ids
}

// check reports an error if goroutines not in before (and not
// allowlisted) are still running after retrying for at most window.
//
// to block on, the goroutines being awaited are the ones refusing to exit
//
//hoplite:sleep-ok the loop is the retry window itself: there is no event
func check(before map[int64]bool, window time.Duration) error {
	deadline := time.Now().Add(window)
	delay := 10 * time.Millisecond
	for {
		leaked := leakedSince(before)
		if len(leaked) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			var b strings.Builder
			fmt.Fprintf(&b, "%d leaked goroutine(s) after %v:", len(leaked), window)
			for _, g := range leaked {
				b.WriteString("\n\n")
				b.WriteString(g.stack)
			}
			return fmt.Errorf("%s", b.String())
		}
		time.Sleep(delay)
		if delay *= 2; delay > 250*time.Millisecond {
			delay = 250 * time.Millisecond
		}
	}
}

// leakedSince returns live goroutines that are neither grandfathered,
// allowlisted, nor the caller itself, sorted by ID for stable output.
func leakedSince(before map[int64]bool) []goroutine {
	var leaked []goroutine
	for _, g := range dump() {
		if before[g.id] || allowlisted(g.stack) {
			continue
		}
		leaked = append(leaked, g)
	}
	sort.Slice(leaked, func(i, j int) bool { return leaked[i].id < leaked[j].id })
	return leaked
}

// allowlisted reports stacks belonging to infrastructure that legitimately
// outlives individual tests.
func allowlisted(stack string) bool {
	for _, marker := range []string{
		"created by testing.", // test framework workers (parallel tests, fuzz)
		"testing.(*M).",       // the test main goroutine itself
		"testing.tRunner",     // a test body (the caller, when check runs inside one)
		"os/signal.",          // signal delivery goroutine
		"runtime.ReadTrace",   // execution tracer
		"runtime/pprof.",      // profiler writers
		"leakcheck.check",     // this checker, when called from a test goroutine
	} {
		if strings.Contains(stack, marker) {
			return true
		}
	}
	return false
}

// dump parses runtime.Stack(all=true) into one entry per goroutine.
func dump() []goroutine {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var gs []goroutine
	for _, block := range strings.Split(string(buf), "\n\n") {
		header, _, ok := strings.Cut(block, "\n")
		if !ok || !strings.HasPrefix(header, "goroutine ") {
			continue
		}
		idStr, _, ok := strings.Cut(strings.TrimPrefix(header, "goroutine "), " ")
		if !ok {
			continue
		}
		id, err := strconv.ParseInt(idStr, 10, 64)
		if err != nil {
			continue
		}
		gs = append(gs, goroutine{id: id, stack: block})
	}
	return gs
}
