package directory

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"hoplite/internal/types"
	"hoplite/internal/wire"
)

// startShard runs one directory shard over TCP and returns clients for
// the given node names.
func startShard(t *testing.T, nodes ...types.NodeID) []*Client {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	shard := NewServer()
	srv := wire.NewServer(ln, shard.Handler())
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	dial := func(ctx context.Context, addr string) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", addr)
	}
	var clients []*Client
	for _, n := range nodes {
		c := NewClient(n, []string{ln.Addr().String()}, dial)
		t.Cleanup(func() { c.Close() })
		clients = append(clients, c)
	}
	return clients
}

func ctxT(t *testing.T) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestPutAndLookup(t *testing.T) {
	cs := startShard(t, "n1", "n2")
	ctx := ctxT(t)
	oid := types.ObjectIDFromString("a")
	if err := cs[0].PutStarted(ctx, oid, 100); err != nil {
		t.Fatal(err)
	}
	rec, err := cs[1].Lookup(ctx, oid, false)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Size != 100 || len(rec.Locs) != 1 || rec.Locs[0].Progress != types.ProgressPartial {
		t.Fatalf("rec %+v", rec)
	}
	if err := cs[0].PutComplete(ctx, oid); err != nil {
		t.Fatal(err)
	}
	rec, _ = cs[1].Lookup(ctx, oid, false)
	if rec.Locs[0].Progress != types.ProgressComplete {
		t.Fatal("not complete")
	}
}

func TestLookupNotFound(t *testing.T) {
	cs := startShard(t, "n1")
	_, err := cs[0].Lookup(ctxT(t), types.ObjectIDFromString("missing"), false)
	if !errors.Is(err, types.ErrNotFound) {
		t.Fatalf("got %v", err)
	}
}

func TestLookupWaitBlocksUntilPut(t *testing.T) {
	cs := startShard(t, "n1", "n2")
	ctx := ctxT(t)
	oid := types.ObjectIDFromString("later")
	done := make(chan error, 1)
	go func() {
		_, err := cs[1].Lookup(ctx, oid, true)
		done <- err
	}()
	select {
	case <-done:
		t.Fatal("lookup returned before put")
	case <-time.After(50 * time.Millisecond):
	}
	if err := cs[0].PutStarted(ctx, oid, 8); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestInlineFastPath(t *testing.T) {
	cs := startShard(t, "n1", "n2")
	ctx := ctxT(t)
	oid := types.ObjectIDFromString("small")
	payload := []byte("tiny object")
	if err := cs[0].PutInline(ctx, oid, payload); err != nil {
		t.Fatal(err)
	}
	lease, err := cs[1].AcquireSender(ctx, oid, false)
	if err != nil {
		t.Fatal(err)
	}
	if string(lease.Inline) != string(payload) {
		t.Fatalf("inline %q", lease.Inline)
	}
	rec, err := cs[1].Lookup(ctx, oid, false)
	if err != nil || string(rec.Inline) != string(payload) {
		t.Fatalf("lookup inline %q err %v", rec.Inline, err)
	}
}

func TestAcquireManyLeasesAllCompleteCopies(t *testing.T) {
	cs := startShard(t, "n1", "n2", "n3", "n4", "n5")
	ctx := ctxT(t)
	oid := types.ObjectIDFromString("striped")
	// Three complete copies and one partial.
	for i := 0; i < 3; i++ {
		if err := cs[i].PutStarted(ctx, oid, 1000); err != nil {
			t.Fatal(err)
		}
		if err := cs[i].PutComplete(ctx, oid); err != nil {
			t.Fatal(err)
		}
	}
	if err := cs[3].PutStarted(ctx, oid, 1000); err != nil {
		t.Fatal(err)
	}
	ml, err := cs[4].AcquireSenders(ctx, oid, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(ml.Senders) != 3 {
		t.Fatalf("leased %d senders, want 3 (the complete copies)", len(ml.Senders))
	}
	seen := map[types.NodeID]bool{}
	for _, s := range ml.Senders {
		if s == "n4" || s == "n5" {
			t.Fatalf("leased ineligible sender %s", s)
		}
		seen[s] = true
	}
	if len(seen) != 3 {
		t.Fatal("duplicate senders leased")
	}
	if ml.Size != 1000 {
		t.Fatalf("size %d", ml.Size)
	}
	// All complete copies are now leased: another striped acquire must
	// not block, it reports ErrNoSender so the caller falls back.
	if _, err := cs[3].AcquireSenders(ctx, oid, 8); !errors.Is(err, types.ErrNoSender) {
		t.Fatalf("got %v, want ErrNoSender", err)
	}
	// Releasing one sender makes it leasable again.
	if err := cs[4].ReleaseSender(ctx, oid, ml.Senders[0], false); err != nil {
		t.Fatal(err)
	}
	ml2, err := cs[3].AcquireSenders(ctx, oid, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(ml2.Senders) != 1 || ml2.Senders[0] != ml.Senders[0] {
		t.Fatalf("re-lease got %v", ml2.Senders)
	}
}

func TestAcquireManyRespectsMax(t *testing.T) {
	cs := startShard(t, "n1", "n2", "n3", "n4")
	ctx := ctxT(t)
	oid := types.ObjectIDFromString("maxed")
	for i := 0; i < 3; i++ {
		if err := cs[i].PutStarted(ctx, oid, 64); err != nil {
			t.Fatal(err)
		}
		if err := cs[i].PutComplete(ctx, oid); err != nil {
			t.Fatal(err)
		}
	}
	ml, err := cs[3].AcquireSenders(ctx, oid, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ml.Senders) != 2 {
		t.Fatalf("leased %d senders, want max 2", len(ml.Senders))
	}
}

func TestAcquireManyNotFoundAndInline(t *testing.T) {
	cs := startShard(t, "n1", "n2")
	ctx := ctxT(t)
	if _, err := cs[0].AcquireSenders(ctx, types.ObjectIDFromString("absent"), 4); !errors.Is(err, types.ErrNotFound) {
		t.Fatalf("got %v, want ErrNotFound", err)
	}
	oid := types.ObjectIDFromString("tiny")
	if err := cs[0].PutInline(ctx, oid, []byte("inline!")); err != nil {
		t.Fatal(err)
	}
	ml, err := cs[1].AcquireSenders(ctx, oid, 4)
	if err != nil {
		t.Fatal(err)
	}
	if string(ml.Inline) != "inline!" {
		t.Fatalf("inline %q", ml.Inline)
	}
}

func TestAcquirePrefersComplete(t *testing.T) {
	cs := startShard(t, "holderP", "holderC", "recv")
	ctx := ctxT(t)
	oid := types.ObjectIDFromString("x")
	if err := cs[0].PutStarted(ctx, oid, 10); err != nil { // partial
		t.Fatal(err)
	}
	if err := cs[1].PutStarted(ctx, oid, 10); err != nil {
		t.Fatal(err)
	}
	if err := cs[1].PutComplete(ctx, oid); err != nil { // complete
		t.Fatal(err)
	}
	lease, err := cs[2].AcquireSender(ctx, oid, false)
	if err != nil {
		t.Fatal(err)
	}
	if lease.Sender != "holderC" {
		t.Fatalf("picked %s, want the complete holder", lease.Sender)
	}
}

func TestAcquireLeasesAreExclusive(t *testing.T) {
	cs := startShard(t, "holder", "r1", "r2")
	ctx := ctxT(t)
	oid := types.ObjectIDFromString("x")
	if err := cs[0].PutStarted(ctx, oid, 10); err != nil {
		t.Fatal(err)
	}
	if err := cs[0].PutComplete(ctx, oid); err != nil {
		t.Fatal(err)
	}
	l1, err := cs[1].AcquireSender(ctx, oid, false)
	if err != nil || l1.Sender != "holder" {
		t.Fatalf("first acquire: %v %v", l1, err)
	}
	// The holder is leased out; the only other location is r1's fresh
	// partial — r2 gets routed to r1 (the broadcast-tree growth, §3.4.1).
	l2, err := cs[2].AcquireSender(ctx, oid, false)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Sender != "r1" {
		t.Fatalf("second acquire picked %s, want r1 (the partial)", l2.Sender)
	}
	// Releasing returns the holder and upgrades r1 to complete.
	if err := cs[1].ReleaseSender(ctx, oid, "holder", true); err != nil {
		t.Fatal(err)
	}
	rec, _ := cs[0].Lookup(ctx, oid, false)
	progress := map[types.NodeID]types.Progress{}
	for _, l := range rec.Locs {
		progress[l.Node] = l.Progress
	}
	if progress["r1"] != types.ProgressComplete {
		t.Fatalf("r1 progress %v", progress["r1"])
	}
}

func TestAcquireCycleAvoidance(t *testing.T) {
	cs := startShard(t, "s", "r1", "r2")
	ctx := ctxT(t)
	oid := types.ObjectIDFromString("x")
	cs[0].PutStarted(ctx, oid, 10)
	cs[0].PutComplete(ctx, oid)
	// r1 fetches from s; r2 fetches from r1.
	if l, err := cs[1].AcquireSender(ctx, oid, false); err != nil || l.Sender != "s" {
		t.Fatalf("%v %v", l, err)
	}
	if l, err := cs[2].AcquireSender(ctx, oid, false); err != nil || l.Sender != "r1" {
		t.Fatalf("%v %v", l, err)
	}
	// s dies; r1 aborts and re-acquires. The only free location is r2 —
	// but r2's dependency chain leads back to r1, so it must be skipped
	// (no cyclic transfers, §3.5.1).
	if err := cs[1].AbortTransfer(ctx, oid, "s", true); err != nil {
		t.Fatal(err)
	}
	_, err := cs[1].AcquireSender(ctx, oid, false)
	if !errors.Is(err, types.ErrNoSender) {
		t.Fatalf("got %v, want ErrNoSender (cycle)", err)
	}
	// r2 finishes; now r1 can fetch from it.
	if err := cs[2].ReleaseSender(ctx, oid, "r1", true); err != nil {
		t.Fatal(err)
	}
	l, err := cs[1].AcquireSender(ctx, oid, false)
	if err != nil || l.Sender != "r2" {
		t.Fatalf("%v %v", l, err)
	}
}

func TestAbortDropsDeadSender(t *testing.T) {
	cs := startShard(t, "s", "r")
	ctx := ctxT(t)
	oid := types.ObjectIDFromString("x")
	cs[0].PutStarted(ctx, oid, 10)
	cs[0].PutComplete(ctx, oid)
	if _, err := cs[1].AcquireSender(ctx, oid, false); err != nil {
		t.Fatal(err)
	}
	if err := cs[1].AbortTransfer(ctx, oid, "s", true); err != nil {
		t.Fatal(err)
	}
	rec, _ := cs[1].Lookup(ctx, oid, false)
	for _, l := range rec.Locs {
		if l.Node == "s" {
			t.Fatal("dead sender still listed")
		}
	}
}

func TestAbortDownstream(t *testing.T) {
	cs := startShard(t, "s", "r", "r2")
	ctx := ctxT(t)
	oid := types.ObjectIDFromString("x")
	cs[0].PutStarted(ctx, oid, 10)
	cs[0].PutComplete(ctx, oid)
	if _, err := cs[1].AcquireSender(ctx, oid, false); err != nil {
		t.Fatal(err)
	}
	// The sender reports the receiver's socket died: the lease frees and
	// the receiver's partial location drops, so a new receiver can lease
	// the sender again.
	if err := cs[0].AbortDownstream(ctx, oid, "r"); err != nil {
		t.Fatal(err)
	}
	l, err := cs[2].AcquireSender(ctx, oid, false)
	if err != nil || l.Sender != "s" {
		t.Fatalf("%v %v", l, err)
	}
}

func TestAcquireWaitUnblocksOnRelease(t *testing.T) {
	cs := startShard(t, "s", "r1", "r2")
	ctx := ctxT(t)
	oid := types.ObjectIDFromString("x")
	cs[0].PutStarted(ctx, oid, 10)
	cs[0].PutComplete(ctx, oid)
	if _, err := cs[1].AcquireSender(ctx, oid, false); err != nil {
		t.Fatal(err)
	}
	// r1 holds the only lease; r1's own partial is the only other
	// location but r2 could lease it... remove it to force waiting.
	if err := cs[1].RemoveLocation(ctx, oid); err != nil {
		t.Fatal(err)
	}
	done := make(chan types.NodeID, 1)
	go func() {
		l, err := cs[2].AcquireSender(ctx, oid, true)
		if err != nil {
			done <- ""
			return
		}
		done <- l.Sender
	}()
	select {
	case <-done:
		t.Fatal("acquire returned while all locations leased")
	case <-time.After(50 * time.Millisecond):
	}
	if err := cs[1].ReleaseSender(ctx, oid, "s", false); err != nil {
		t.Fatal(err)
	}
	select {
	case sender := <-done:
		if sender != "s" {
			t.Fatalf("sender %q", sender)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter not woken")
	}
}

func TestDeleteTombstonesAndReports(t *testing.T) {
	cs := startShard(t, "a", "b")
	ctx := ctxT(t)
	oid := types.ObjectIDFromString("x")
	cs[0].PutStarted(ctx, oid, 10)
	cs[0].PutComplete(ctx, oid)
	cs[1].PutStarted(ctx, oid, 10)
	locs, err := cs[0].Delete(ctx, oid)
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != 2 {
		t.Fatalf("locs %v", locs)
	}
	if _, err := cs[1].AcquireSender(ctx, oid, false); !errors.Is(err, types.ErrDeleted) {
		t.Fatalf("got %v", err)
	}
	// Re-creation un-deletes with a new generation.
	if err := cs[0].PutStarted(ctx, oid, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := cs[1].AcquireSender(ctx, oid, false); err != nil {
		t.Fatal(err)
	}
}

func TestGenerationBumpsOnRecreate(t *testing.T) {
	cs := startShard(t, "a", "b")
	ctx := ctxT(t)
	oid := types.ObjectIDFromString("x")
	cs[0].PutStarted(ctx, oid, 10)
	cs[0].PutComplete(ctx, oid)
	l1, err := cs[1].AcquireSender(ctx, oid, false)
	if err != nil {
		t.Fatal(err)
	}
	cs[1].AbortTransfer(ctx, oid, "a", true)
	cs[1].RemoveLocation(ctx, oid) // drop own partial: zero locations
	cs[0].PutStarted(ctx, oid, 10)
	cs[0].PutComplete(ctx, oid)
	l2, err := cs[1].AcquireSender(ctx, oid, false)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Gen == l1.Gen {
		t.Fatal("generation did not bump on re-creation")
	}
}

func TestSubscribeNotifications(t *testing.T) {
	cs := startShard(t, "pub", "sub")
	ctx := ctxT(t)
	oid := types.ObjectIDFromString("x")
	var mu sync.Mutex
	var updates []Update
	_, err := cs[1].Subscribe(ctx, oid, func(u Update) {
		mu.Lock()
		updates = append(updates, u)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	cs[0].PutStarted(ctx, oid, 42)
	cs[0].PutComplete(ctx, oid)
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(updates)
		mu.Unlock()
		if n >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("got %d updates, want 2", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	last := updates[len(updates)-1]
	if last.Size != 42 || len(last.Locs) != 1 || last.Locs[0].Progress != types.ProgressComplete {
		t.Fatalf("last update %+v", last)
	}
}

func TestUnsubscribeStopsNotifications(t *testing.T) {
	cs := startShard(t, "pub", "sub")
	ctx := ctxT(t)
	oid := types.ObjectIDFromString("x")
	count := make(chan struct{}, 16)
	if _, err := cs[1].Subscribe(ctx, oid, func(Update) { count <- struct{}{} }); err != nil {
		t.Fatal(err)
	}
	if err := cs[1].Unsubscribe(ctx, oid); err != nil {
		t.Fatal(err)
	}
	cs[0].PutStarted(ctx, oid, 1)
	time.Sleep(50 * time.Millisecond)
	select {
	case <-count:
		t.Fatal("notification after unsubscribe")
	default:
	}
}

func TestPurgeNode(t *testing.T) {
	cs := startShard(t, "dead", "live", "r")
	ctx := ctxT(t)
	oid := types.ObjectIDFromString("x")
	cs[0].PutStarted(ctx, oid, 10)
	cs[0].PutComplete(ctx, oid)
	cs[1].PutStarted(ctx, oid, 10)
	cs[1].PutComplete(ctx, oid)
	// r leases "dead"; then dead is purged: lease freed and location gone.
	if l, _ := cs[2].AcquireSender(ctx, oid, false); l.Sender != "dead" && l.Sender != "live" {
		t.Fatalf("sender %s", l.Sender)
	}
	if err := cs[2].PurgeNode(ctx, "dead"); err != nil {
		t.Fatal(err)
	}
	rec, _ := cs[2].Lookup(ctx, oid, false)
	for _, l := range rec.Locs {
		if l.Node == "dead" {
			t.Fatal("purged node still listed")
		}
	}
}

// TestPurgeNodeReturnsStripedLeases: striped acquires (AcquireSenders)
// record no fetch-dependency entry for the receiver, so purging a dead
// receiver must find its leases by scanning lease holders — otherwise a
// getter that died between its striped acquire and its release pins the
// sender busy forever and later blocking acquires park on it (the
// restart-and-rejoin wedge).
func TestPurgeNodeReturnsStripedLeases(t *testing.T) {
	cs := startShard(t, "holder", "ghost", "r")
	ctx := ctxT(t)
	oid := types.ObjectIDFromString("x")
	if err := cs[0].PutStarted(ctx, oid, 10); err != nil {
		t.Fatal(err)
	}
	if err := cs[0].PutComplete(ctx, oid); err != nil {
		t.Fatal(err)
	}
	// ghost takes the only complete copy's lease via the multi-sender
	// path, then dies without releasing it.
	ml, err := cs[1].AcquireSenders(ctx, oid, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ml.Senders) != 1 || ml.Senders[0] != "holder" {
		t.Fatalf("leased %v, want [holder]", ml.Senders)
	}
	if _, err := cs[2].AcquireSenders(ctx, oid, 4); !errors.Is(err, types.ErrNoSender) {
		t.Fatalf("pre-purge acquire got %v, want ErrNoSender", err)
	}
	if err := cs[2].PurgeNode(ctx, "ghost"); err != nil {
		t.Fatal(err)
	}
	ml2, err := cs[2].AcquireSenders(ctx, oid, 4)
	if err != nil {
		t.Fatalf("post-purge acquire: %v", err)
	}
	if len(ml2.Senders) != 1 || ml2.Senders[0] != "holder" {
		t.Fatalf("post-purge leased %v, want [holder]", ml2.Senders)
	}
}

func TestStats(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	shard := NewServer()
	srv := wire.NewServer(ln, shard.Handler())
	go srv.Serve()
	defer srv.Close()
	dial := func(ctx context.Context, addr string) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", addr)
	}
	c := NewClient("n", []string{ln.Addr().String()}, dial)
	defer c.Close()
	ctx := ctxT(t)
	c.PutInline(ctx, types.ObjectIDFromString("s"), []byte("x"))
	c.PutStarted(ctx, types.ObjectIDFromString("l"), 100)
	st := shard.Stats()
	if st.Objects != 2 || st.Inline != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestMarkSpilledRanking: a spilled location keeps serving but loses to
// in-memory complete copies in sender selection, and beats partials.
func TestMarkSpilledRanking(t *testing.T) {
	cs := startShard(t, "mem", "disk", "part", "recv")
	ctx := ctxT(t)
	oid := types.ObjectIDFromString("ranked")
	for _, c := range cs[:2] {
		if err := c.PutStarted(ctx, oid, 100); err != nil {
			t.Fatal(err)
		}
		if err := c.PutComplete(ctx, oid); err != nil {
			t.Fatal(err)
		}
	}
	if err := cs[2].PutStarted(ctx, oid, 100); err != nil { // partial only
		t.Fatal(err)
	}
	if err := cs[1].MarkSpilled(ctx, oid, 100); err != nil {
		t.Fatal(err)
	}
	rec, err := cs[3].Lookup(ctx, oid, false)
	if err != nil {
		t.Fatal(err)
	}
	prog := map[types.NodeID]types.Progress{}
	for _, l := range rec.Locs {
		prog[l.Node] = l.Progress
	}
	if prog["mem"] != types.ProgressComplete || prog["disk"] != types.ProgressSpilled {
		t.Fatalf("locations %v", prog)
	}
	// First acquire takes the in-memory copy, second the spilled one,
	// third falls back to the partial.
	l1, err := cs[3].AcquireSender(ctx, oid, false)
	if err != nil || l1.Sender != "mem" {
		t.Fatalf("first lease %+v (%v), want mem", l1, err)
	}
	l2, err := cs[3].AcquireSender(ctx, oid, false)
	if err != nil || l2.Sender != "disk" {
		t.Fatalf("second lease %+v (%v), want disk", l2, err)
	}
	l3, err := cs[3].AcquireSender(ctx, oid, false)
	if err != nil || l3.Sender != "part" {
		t.Fatalf("third lease %+v (%v), want part", l3, err)
	}
}

// TestAcquireManyIncludesSpilled: the striping planner fills its slots
// with in-memory senders first, then disk-backed ones — never partials.
func TestAcquireManyIncludesSpilled(t *testing.T) {
	cs := startShard(t, "mem", "disk", "part", "recv")
	ctx := ctxT(t)
	oid := types.ObjectIDFromString("striped")
	for _, c := range cs[:2] {
		if err := c.PutStarted(ctx, oid, 1000); err != nil {
			t.Fatal(err)
		}
		if err := c.PutComplete(ctx, oid); err != nil {
			t.Fatal(err)
		}
	}
	if err := cs[2].PutStarted(ctx, oid, 1000); err != nil {
		t.Fatal(err)
	}
	if err := cs[1].MarkSpilled(ctx, oid, 1000); err != nil {
		t.Fatal(err)
	}
	ml, err := cs[3].AcquireSenders(ctx, oid, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ml.Senders) != 2 || ml.Senders[0] != "mem" || ml.Senders[1] != "disk" {
		t.Fatalf("senders %v, want [mem disk]", ml.Senders)
	}
}

// TestMarkSpilledLifecycle: restart re-registration creates the entry
// (learning the size from the file), deletion tombstones it, and marking
// a tombstoned object reports ErrDeleted so the stale file is discarded.
func TestMarkSpilledLifecycle(t *testing.T) {
	cs := startShard(t, "n1", "n2")
	ctx := ctxT(t)
	oid := types.ObjectIDFromString("reborn")
	// Fresh registration (no prior locations): the restart path.
	if err := cs[0].MarkSpilled(ctx, oid, 4096); err != nil {
		t.Fatal(err)
	}
	rec, err := cs[1].Lookup(ctx, oid, false)
	if err != nil || rec.Size != 4096 {
		t.Fatalf("rec %+v err %v", rec, err)
	}
	if len(rec.Locs) != 1 || rec.Locs[0].Progress != types.ProgressSpilled {
		t.Fatalf("locs %v", rec.Locs)
	}
	// A spilled-only object is still acquirable.
	l, err := cs[1].AcquireSender(ctx, oid, false)
	if err != nil || l.Sender != "n1" || l.Size != 4096 {
		t.Fatalf("lease %+v (%v)", l, err)
	}
	if _, err := cs[1].Delete(ctx, oid); err != nil {
		t.Fatal(err)
	}
	if err := cs[0].MarkSpilled(ctx, oid, 4096); !errors.Is(err, types.ErrDeleted) {
		t.Fatalf("mark after delete: %v, want ErrDeleted", err)
	}
}
