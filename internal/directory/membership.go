// Cluster membership on top of shard replication. The epoch-versioned
// ClusterMap (see types/clustermap.go) is owned by the membership shard
// (shard 0): its primary resolves join/drain/remove transitions and ships
// the resulting map through the shard's own replicated op log
// (MethodMapPush inside the MethodReplicate machinery), so the map enjoys
// exactly the same durability as directory state. Propagation to everyone
// else is best-effort push plus stale-epoch bounces: stamped requests
// carrying an older epoch get ErrStaleMap with the current encoded map in
// the payload, and the membership section of the shard-0 snapshot catches
// replicas that missed every push.
//
// Installing a newer map re-derives the shard groups and reconciles this
// server's hosted replicas against them:
//
//   - newly responsible for a shard → create an out-of-sync backup; the
//     current primary's heartbeat notices (resp.Wait) and pushes a
//     snapshot, exactly the PR-5 resync path;
//   - rotated out as a backup → drop the replica immediately;
//   - rotated out as the primary → become a retiring lame duck: keep
//     serving and heartbeating the new group until some successor is
//     fully caught up, then step out and let lease expiry promote it.
//
// The repair scanner runs on shard primaries: it walks the shard's
// records, counts whole copies held by active (non-draining) members, and
// schedules MethodRepairPull copy-outs toward under-replicated objects,
// reusing the ordinary data-plane pull on the target node.

package directory

import (
	"context"
	"encoding/binary"
	"time"

	"hoplite/internal/types"
	"hoplite/internal/wire"
)

// membershipShard is the shard whose replica group owns the cluster map.
const membershipShard = 0

// Drain sub-codes carried in MethodDrain's Num field.
const (
	// DrainStart marks the node draining: excluded from shard groups and
	// from the replication-factor count, still serving.
	DrainStart = 0
	// DrainFinish removes the drained node from the map; sent by the
	// draining node once it holds no sole copies and no shard replicas.
	DrainFinish = 1
	// DrainDead removes a permanently lost node from the map (operator- or
	// harness-declared); its locations are purged and repair re-replicates.
	DrainDead = 2
)

const (
	// DefaultRepairInterval is the re-replication scanner period.
	DefaultRepairInterval = 250 * time.Millisecond
	// maxRepairsPerPass bounds the copy-outs scheduled by one scanner pass,
	// so a mass failure re-replicates in waves instead of stampeding the
	// survivors.
	maxRepairsPerPass = 32
	// repairPullTimeout bounds one MethodRepairPull call (the target pulls
	// the whole object within it).
	repairPullTimeout = 60 * time.Second
)

// repairKey identifies one in-flight repair copy-out.
type repairKey struct {
	oid    types.ObjectID
	target types.NodeID
}

// staleMapRespLocked builds the ErrStaleMap bounce carrying the current
// encoded map.
func (s *Server) staleMapRespLocked() wire.Message {
	var resp wire.Message
	resp.SetError(types.ErrStaleMap)
	resp.Epoch = s.cmap.Epoch
	resp.Payload = append([]byte(nil), s.encodedMap...)
	return resp
}

// ClusterMap returns the currently installed map (Epoch 0 when membership
// is disabled).
func (s *Server) ClusterMap() types.ClusterMap {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cmap.Clone()
}

// InstallMap installs m if it is newer than the current map, returning
// whether it was installed. The embedding node calls this when its client
// learns a newer map first (via a bounce) than the shard server did.
func (s *Server) InstallMap(m types.ClusterMap) bool {
	s.mu.Lock()
	after := s.installMapLocked(m)
	installed := s.cmap.Epoch == m.Epoch
	s.mu.Unlock()
	for _, fn := range after {
		fn()
	}
	return installed
}

// installMapLocked makes next the server's map if strictly newer and
// reconciles hosted replicas with the re-derived groups. It returns
// closures (member-removal purges, the OnMap hook) that the caller must
// run after releasing s.mu.
func (s *Server) installMapLocked(next types.ClusterMap) []func() {
	if s.closed || next.Epoch <= s.cmap.Epoch || next.NumShards != len(s.cfg.Groups) {
		return nil
	}
	prev := s.cmap
	s.cmap = next.Clone()
	s.encodedMap = types.EncodeClusterMap(nil, s.cmap)
	s.cfg.Groups = s.cmap.DeriveGroups()
	var after []func()
	self := s.cfg.Self
	for i, g := range s.cfg.Groups {
		selfIdx := -1
		for j, a := range g {
			if a == self {
				selfIdx = j
				break
			}
		}
		rep := s.reps[i]
		switch {
		case selfIdx >= 0 && rep == nil:
			// Newly responsible: join as an out-of-sync backup. The shard's
			// current primary installed (or will install) this same map, so
			// its heartbeat reaches us, sees resp.Wait, and pushes a
			// snapshot; if the whole group is fresh, the lease monitor
			// promotes the best-placed replica instead.
			r := &replica{
				shard:    i,
				group:    append([]string(nil), g...),
				selfIdx:  selfIdx,
				booted:   true,
				needSync: true,
				lastBeat: time.Now(),
				pending:  make(map[int64]wire.Message),
				backups:  make(map[string]*backupState),
				dedupe:   make(map[dedupeKey]wire.Message),
			}
			for _, addr := range g {
				if addr != self {
					r.backups[addr] = &backupState{lastSeq: -1}
				}
			}
			s.reps[i] = r
		case selfIdx >= 0:
			rep.group = append([]string(nil), g...)
			rep.selfIdx = selfIdx
			rep.retiring = false
			s.rebuildBackupsLocked(rep)
		case rep != nil && rep.primary && len(g) > 0:
			// Rotated out while primary: lame-duck until a successor in the
			// new group is caught up (see beatBackups), syncing it via the
			// ordinary heartbeat/snapshot machinery meanwhile.
			rep.retiring = true
			rep.group = append([]string(nil), g...)
			rep.selfIdx = len(g) // absent: loses every primacy tie-break
			s.rebuildBackupsLocked(rep)
		case rep != nil && !rep.primary:
			delete(s.reps, i)
			s.wakeShardLocked(i)
		}
	}
	// Purge locations of members that left the map, through the normal
	// replicated-mutation path on every shard this server leads.
	var removed []types.NodeID
	for _, mem := range prev.Members {
		if s.cmap.MemberIndex(mem.Addr) < 0 {
			removed = append(removed, mem.Addr)
		}
	}
	if len(removed) > 0 {
		var lead []int
		for i, r := range s.reps {
			if r.primary && !r.needSync {
				lead = append(lead, i)
			}
		}
		epoch := s.cmap.Epoch
		if len(lead) > 0 {
			after = append(after, func() {
				for _, node := range removed {
					for _, shard := range lead {
						_ = s.mutate(wire.Message{
							Method: wire.MethodPurgeNode,
							Node:   node,
							Offset: int64(shard),
							Epoch:  epoch,
						})
					}
				}
			})
		}
	}
	if s.cfg.OnMap != nil {
		cm := s.cmap.Clone()
		hook := s.cfg.OnMap
		after = append(after, func() { hook(cm) })
	}
	return after
}

// rebuildBackupsLocked reconciles a replica's backup tracking with its
// (possibly changed) group, preserving progress state for members that
// stayed.
func (s *Server) rebuildBackupsLocked(r *replica) {
	old := r.backups
	r.backups = make(map[string]*backupState)
	for _, addr := range r.group {
		if addr == s.cfg.Self {
			continue
		}
		if b, ok := old[addr]; ok {
			r.backups[addr] = b
		} else {
			r.backups[addr] = &backupState{lastSeq: -1}
		}
	}
}

// membership resolves a join or drain transition on the membership
// shard's primary and commits the resulting map through the shard's
// replicated op log.
func (s *Server) membership(m wire.Message) wire.Message {
	s.mu.Lock()
	rep, resp, ok := s.admitLocked(&m)
	if !ok {
		s.mu.Unlock()
		return resp
	}
	if s.cmap.Epoch == 0 || rep == nil {
		s.mu.Unlock()
		resp = wire.Message{}
		resp.Err = "directory: cluster membership not enabled"
		return resp
	}
	var next types.ClusterMap
	var err error
	switch {
	case m.Method == wire.MethodJoin:
		// The request payload carries the joiner's optional locality label
		// (rack/DC), recorded on its Member entry for link-state
		// aggregation.
		next, err = s.cmap.WithJoin(m.Node, m.Complete, string(m.Payload))
	case m.Num == DrainStart:
		next, err = s.cmap.WithDrain(m.Node)
	default: // DrainFinish, DrainDead
		next, err = s.cmap.WithRemove(m.Node)
	}
	if err != nil {
		s.mu.Unlock()
		resp.SetError(err)
		return resp
	}
	if next.Epoch == s.cmap.Epoch {
		// Idempotent transition (retry, or already in the desired state):
		// answer with the current map without burning an epoch.
		resp.Epoch = s.cmap.Epoch
		resp.Payload = append([]byte(nil), s.encodedMap...)
		s.mu.Unlock()
		return resp
	}
	op := wire.Message{
		Method:  wire.MethodMapPush,
		Node:    m.Node,
		Num2:    m.Num2,
		Payload: types.EncodeClusterMap(nil, next),
	}
	after := s.installMapLocked(next)
	resp.Epoch = s.cmap.Epoch
	resp.Payload = append([]byte(nil), s.encodedMap...)
	fwd := s.commitLocked(rep, op, resp)
	targets := s.pushTargetsLocked(m.Node)
	s.mu.Unlock()
	committed := fwd == nil || fwd()
	for _, fn := range after {
		fn()
	}
	s.pushMapAsync(targets)
	if !committed {
		// Deposed mid-commit: transitions are idempotent, so bounce the
		// caller to the successor and let it re-resolve.
		return s.deposedResp(rep)
	}
	return resp
}

// pushTargetsLocked lists the control addresses the new map should be
// pushed to: every member except this server, plus the node named by the
// transition (so a node finishing its drain sees itself removed).
func (s *Server) pushTargetsLocked(subject types.NodeID) []string {
	var out []string
	seen := map[string]bool{s.cfg.Self: true}
	add := func(addr string) {
		if addr != "" && !seen[addr] {
			seen[addr] = true
			out = append(out, addr)
		}
	}
	for _, mem := range s.cmap.Members {
		add(string(mem.Addr))
	}
	add(string(subject))
	return out
}

// pushMapAsync pushes the current map to targets, best effort: a member
// that misses the push catches up on its next stale-epoch bounce.
func (s *Server) pushMapAsync(targets []string) {
	if len(targets) == 0 {
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	m := wire.Message{
		Method:  wire.MethodMapPush,
		Epoch:   s.cmap.Epoch,
		Payload: append([]byte(nil), s.encodedMap...),
	}
	s.wg.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.wg.Done()
		for _, addr := range targets {
			if _, err := s.callReplica(addr, m); err != nil {
				// callReplica dropped the failed connection (it may have
				// been a stale one to a restarted member); one retry dials
				// fresh before giving up on this target.
				_, _ = s.callReplica(addr, m)
			}
		}
	}()
}

// pullMapFrom fetches a peer's cluster map and installs it — the converse
// of pushMapAsync, used when heartbeat anti-entropy reveals a peer ahead
// of this server's epoch.
func (s *Server) pullMapFrom(addr string) {
	resp, err := s.callReplica(addr, wire.Message{Method: wire.MethodMapGet})
	if err != nil || resp.ErrorOf() != nil {
		return
	}
	if next, derr := types.DecodeClusterMap(resp.Payload); derr == nil {
		s.InstallMap(next)
	}
}

// mapPush installs a directly pushed map (primary → member fan-out).
func (s *Server) mapPush(m wire.Message) wire.Message {
	var resp wire.Message
	next, err := types.DecodeClusterMap(m.Payload)
	if err != nil {
		resp.SetError(err)
		return resp
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		resp.SetError(types.ErrClosed)
		return resp
	}
	after := s.installMapLocked(next)
	resp.Epoch = s.cmap.Epoch
	s.mu.Unlock()
	for _, fn := range after {
		fn()
	}
	return resp
}

// mapGet answers with the current encoded map.
func (s *Server) mapGet() wire.Message {
	s.mu.Lock()
	defer s.mu.Unlock()
	var resp wire.Message
	if s.cmap.Epoch == 0 {
		resp.Err = "directory: cluster membership not enabled"
		return resp
	}
	resp.Epoch = s.cmap.Epoch
	resp.Payload = append([]byte(nil), s.encodedMap...)
	return resp
}

// status reports membership observability for the shard in m.Offset,
// answered by the shard's primary (so counts reflect authoritative
// state): Num carries the shard's under-replicated object count, Offset
// the number of objects whose only whole copies sit on m.Node (when set),
// Size the shard's entry count, and the payload the current encoded map.
func (s *Server) status(m wire.Message) wire.Message {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep, resp, ok := s.admitLocked(&m)
	if !ok {
		return resp
	}
	shard := -1
	if rep != nil {
		shard = rep.shard
		resp.Gen = rep.epoch
	}
	resp.Complete = true
	resp.Epoch = s.cmap.Epoch
	if s.cmap.Epoch > 0 {
		resp.Payload = append([]byte(nil), s.encodedMap...)
	}
	under, total := s.shardRepairStatsLocked(shard)
	resp.Num = int64(under)
	resp.Size = int64(total)
	if m.Node != "" {
		resp.Offset = int64(s.soleCopiesShardLocked(shard, m.Node))
	}
	return resp
}

// repairTargetLocked is the effective replication target: the map's
// ObjectRF clamped to the active member count (a 2-node cluster with
// ObjectRF 3 would otherwise never converge).
func (s *Server) repairTargetLocked() int {
	target := s.cmap.ObjectRF
	n := 0
	for _, mem := range s.cmap.Members {
		if mem.State == types.MemberActive {
			n++
		}
	}
	if target > n {
		target = n
	}
	return target
}

// shardRepairStatsLocked counts the shard's live entries and how many of
// them are under-replicated: fewer whole copies on active members than
// the effective target, while at least one whole copy survives somewhere
// to repair from. shard -1 scans everything (standalone mode).
func (s *Server) shardRepairStatsLocked(shard int) (under, total int) {
	if s.cmap.Epoch == 0 {
		return 0, len(s.entries)
	}
	target := s.repairTargetLocked()
	for oid, e := range s.entries {
		if shard >= 0 && s.shardOfOID(oid) != shard {
			continue
		}
		if e.deleted {
			continue
		}
		total++
		if e.inline != nil {
			continue // payload lives in the directory itself
		}
		activeWhole, anyWhole := 0, false
		for n, p := range e.prog {
			if !p.HasAll() {
				continue
			}
			if st, ok := s.cmap.MemberState(n); ok {
				anyWhole = true
				if st == types.MemberActive {
					activeWhole++
				}
			}
		}
		if anyWhole && activeWhole < target {
			under++
		}
	}
	return under, total
}

// soleCopiesShardLocked counts the shard's objects whose only whole
// copies on active members sit on node — the objects that would be lost
// if node left right now. Copies on other draining members do not count
// as cover, so concurrent drains stay safe.
func (s *Server) soleCopiesShardLocked(shard int, node types.NodeID) int {
	count := 0
	for oid, e := range s.entries {
		if shard >= 0 && s.shardOfOID(oid) != shard {
			continue
		}
		if e.deleted || e.inline != nil {
			continue
		}
		holds, covered := false, false
		for n, p := range e.prog {
			if !p.HasAll() {
				continue
			}
			if n == node {
				holds = true
			} else if s.cmap.ActiveHolder(n) {
				covered = true
			}
		}
		if holds && !covered {
			count++
		}
	}
	return count
}

// UnderReplicated reports the under-replicated object count across the
// shards this server currently leads; used by tests and the drain loop.
func (s *Server) UnderReplicated() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	under := 0
	for shard, rep := range s.reps {
		if !rep.primary || rep.needSync {
			continue
		}
		u, _ := s.shardRepairStatsLocked(shard)
		under += u
	}
	return under
}

// HostedReplicas reports how many shard replicas this server hosts
// (including a retiring lame-duck primary); a draining node waits for
// zero before leaving.
func (s *Server) HostedReplicas() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.reps)
}

// ShardRole describes one hosted replica for observability and the chaos
// harness's one-primary-per-epoch invariant.
type ShardRole struct {
	Shard    int
	Primary  bool
	Retiring bool
	Syncing  bool
	Epoch    int64
	Seq      int64
}

// Roles snapshots every hosted replica's role.
func (s *Server) Roles() []ShardRole {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ShardRole, 0, len(s.reps))
	for shard, r := range s.reps {
		out = append(out, ShardRole{
			Shard:    shard,
			Primary:  r.primary,
			Retiring: r.retiring,
			Syncing:  r.needSync,
			Epoch:    r.epoch,
			Seq:      r.seq,
		})
	}
	return out
}

// callReplicaTimeout is callReplica with a caller-chosen deadline, for
// repair pulls that stream whole objects.
func (s *Server) callReplicaTimeout(addr string, m wire.Message, d time.Duration) (wire.Message, error) {
	c, err := s.conn(addr)
	if err != nil {
		return wire.Message{}, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), d)
	resp, err := c.Call(ctx, m)
	cancel()
	if err != nil {
		s.dropConn(addr, c)
		return wire.Message{}, err
	}
	return resp, nil
}

// repairLoop periodically re-replicates under-replicated objects on the
// shards this server leads.
func (s *Server) repairLoop(interval time.Duration) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-ticker.C:
		}
		s.repairPass()
	}
}

// repairPass scans led shards for under-replicated objects and schedules
// bounded copy-outs: each picks an active non-holder target on a
// per-object ring and asks it to pull through the ordinary data plane
// (MethodRepairPull → the target's striped/pipelined fetch), which
// registers the new complete copy in the directory as a side effect.
func (s *Server) repairPass() {
	s.mu.Lock()
	if s.closed || s.cmap.Epoch == 0 || s.cmap.ObjectRF < 1 {
		s.mu.Unlock()
		return
	}
	var active []types.NodeID
	for _, mem := range s.cmap.Members {
		if mem.State == types.MemberActive {
			active = append(active, mem.Addr)
		}
	}
	target := s.repairTargetLocked()
	var jobs []repairKey
	for oid, e := range s.entries {
		if len(jobs) >= maxRepairsPerPass {
			break
		}
		rep := s.reps[s.shardOfOID(oid)]
		if rep == nil || !rep.primary || rep.needSync {
			continue
		}
		if e.deleted || e.inline != nil || len(active) == 0 {
			continue
		}
		activeWhole, anyWhole := 0, false
		for n, p := range e.prog {
			if !p.HasAll() {
				continue
			}
			if st, ok := s.cmap.MemberState(n); ok {
				anyWhole = true
				if st == types.MemberActive {
					activeWhole++
				}
			}
		}
		if !anyWhole || activeWhole >= target {
			continue
		}
		need := target - activeWhole
		start := int(binary.BigEndian.Uint64(oid[:8]) % uint64(len(active)))
		for k := 0; k < len(active) && need > 0; k++ {
			cand := active[(start+k)%len(active)]
			if _, holds := e.prog[cand]; holds {
				continue // already holds or is already pulling
			}
			key := repairKey{oid: oid, target: cand}
			if s.repairing[key] {
				need-- // an earlier pass is already filling this slot
				continue
			}
			jobs = append(jobs, key)
			need--
		}
	}
	for _, j := range jobs {
		s.repairing[j] = true
	}
	epoch := s.cmap.Epoch
	if len(jobs) > 0 {
		s.wg.Add(1)
	}
	s.mu.Unlock()
	if len(jobs) == 0 {
		return
	}
	go func() {
		defer s.wg.Done()
		for _, j := range jobs {
			// Failures (target down, object gone meanwhile) simply leave the
			// object under-replicated for the next pass to retry.
			_, _ = s.callReplicaTimeout(string(j.target), wire.Message{
				Method: wire.MethodRepairPull,
				OID:    j.oid,
				Epoch:  epoch,
			}, repairPullTimeout)
			s.mu.Lock()
			delete(s.repairing, j)
			s.mu.Unlock()
		}
	}()
}
