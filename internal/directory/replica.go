// Shard replication: each directory shard is hosted by a group of R
// replicas in a fixed succession order. The primary applies every
// mutation, assigns it a per-shard sequence number, and synchronously
// forwards the resolved op to the live backups (MethodReplicate) before
// replying to the client. Backups apply ops in sequence order (buffering a
// bounded out-of-order tail), serve reads and Subscribe fan-out from the
// replicated state, and monitor the primary through a lease heartbeat
// (MethodDirHeartbeat) plus the replication connection's OnClose. When the
// lease expires and no earlier replica in the group answers a ping, the
// next live replica promotes itself: it bumps the succession epoch,
// replays its buffered log tail, and takes over mutations. A replica that
// falls behind — or restarts empty — is caught by the heartbeat exchange
// and re-synced with a full shard snapshot push (MethodDirSnapshot).
//
// The scheme trades consensus for the paper's socket-liveness failure
// model (§5.5): forwarding is synchronous, so an op acknowledged to a
// client is on every reachable backup, and the client-side retry dedupe
// (per-client op sequence numbers, see client.go) makes a retried Acquire
// land on the committed lease instead of taking a second one. Ops in
// flight at the instant the primary dies can be lost; every directory op
// is either idempotent or (for acquires) deduped, and the data plane's
// abort/re-acquire machinery self-heals a lost lease.

package directory

import (
	"context"
	"encoding/binary"
	"errors"
	"sort"
	"time"

	"hoplite/internal/types"
	"hoplite/internal/wire"
)

// Replication timing defaults: the primary heartbeats each backup every
// HeartbeatInterval; a backup whose lease has been silent for LeaseTimeout
// probes its predecessors and promotes itself if none are alive.
const (
	DefaultHeartbeatInterval = 50 * time.Millisecond
	DefaultLeaseTimeout      = 300 * time.Millisecond
)

const (
	// maxPendingOps bounds a backup's out-of-order log tail; overflowing
	// it marks the replica out of sync, which the next heartbeat repairs
	// with a snapshot.
	maxPendingOps = 4096
	// maxDedupeOps bounds the per-shard retried-acquire response cache.
	maxDedupeOps = 4096
	// snapshotChunk is the soft payload bound of one DirSnapshot frame.
	snapshotChunk = 2 << 20
	// forwardTimeout bounds one synchronous replication or heartbeat call.
	forwardTimeout = 2 * time.Second
)

// Config configures a replicated shard server. The zero value is the
// legacy standalone mode: a single unreplicated server that accepts every
// op (used by tests and single-node deployments).
type Config struct {
	// Self is this server's control address, as it appears in Groups.
	Self string
	// Groups lists every shard's replica addresses in succession order:
	// Groups[i][0] is shard i's initial primary, and on failure the next
	// live replica by index takes over. The server hosts a replica of
	// every group containing Self.
	Groups [][]string
	// Dial connects to peer replicas for replication, heartbeats and
	// promotion probes. Required when Groups is set.
	Dial Dialer
	// HeartbeatInterval and LeaseTimeout override the replication timing
	// defaults (tests use tighter values).
	HeartbeatInterval time.Duration
	LeaseTimeout      time.Duration
	// InitialMap, when set, enables epoch-versioned membership: Groups
	// should be the map's DeriveGroups result, stamped requests are
	// epoch-checked, and membership transitions (join/drain/remove) are
	// resolved by the membership shard's primary. Nil keeps the legacy
	// fixed-topology behavior (epoch 0 everywhere, no checks).
	InitialMap *types.ClusterMap
	// RepairInterval is the re-replication scanner period (see
	// membership.go). 0 uses DefaultRepairInterval; negative disables the
	// scanner. The scanner only runs when membership is enabled and the
	// map's ObjectRF is positive.
	RepairInterval time.Duration
	// OnMap, if non-nil, runs (outside the server lock) after a newer
	// cluster map is installed — the node embedding this server uses it to
	// re-point its directory client and propagate the map.
	OnMap func(types.ClusterMap)
}

// dedupeKey identifies one client-side acquire attempt: retries reuse the
// sequence number, so a lease granted by a primary that died before its
// response reached the client is returned — not granted twice — by the
// promoted backup.
type dedupeKey struct {
	client types.NodeID
	seq    int64
}

// backupState is the primary's view of one backup replica.
type backupState struct {
	down    bool  // last forward or heartbeat failed; skip until it answers
	lastSeq int64 // seq the backup reported at the previous heartbeat
	waiting bool  // backup reported needSync at the previous heartbeat
}

// replica is one hosted shard replica. All fields are guarded by the
// server mutex.
type replica struct {
	shard   int
	group   []string
	selfIdx int

	primary     bool
	retiring    bool       // primary rotated out of the group by a map change: serve as lame duck until a successor is caught up
	primaryAddr string     // believed current primary ("" when unknown)
	primaryPeer *wire.Peer // connection the current primary talks over
	epoch       int64      // succession epoch, bumped on every promotion
	seq         int64      // last applied shard op sequence number
	needSync    bool       // state may diverge from the primary; serve nothing until re-synced
	booted      bool       // bootQuery finished; promotion is allowed
	installing  bool       // a snapshot push is mid-install; buffer replicated ops
	lastBeat    time.Time

	pending map[int64]wire.Message // out-of-order replicated ops (the log tail)
	backups map[string]*backupState
	dedupe  map[dedupeKey]wire.Message
	dedupeQ []dedupeKey
	// installTouched accumulates the entries replaced across a
	// multi-chunk snapshot install, so the final chunk wakes and
	// notifies all of them — not just its own.
	installTouched map[types.ObjectID]bool
}

func (r *replica) cacheLocked(key dedupeKey, resp wire.Message) {
	if _, ok := r.dedupe[key]; ok {
		return
	}
	if len(r.dedupeQ) >= maxDedupeOps {
		delete(r.dedupe, r.dedupeQ[0])
		r.dedupeQ = r.dedupeQ[1:]
	}
	r.dedupe[key] = resp
	r.dedupeQ = append(r.dedupeQ, key)
}

// better reports whether primacy claim a=(epoch, seq, groupIdx) beats b.
// Higher epoch wins; within an epoch the replica with more applied ops
// wins (it loses less state), and the earlier group index breaks ties.
func better(aEpoch, aSeq int64, aIdx int, bEpoch, bSeq int64, bIdx int) bool {
	if aEpoch != bEpoch {
		return aEpoch > bEpoch
	}
	if aSeq != bSeq {
		return aSeq > bSeq
	}
	return aIdx < bIdx
}

func (r *replica) indexOf(addr string) int {
	for i, a := range r.group {
		if a == addr {
			return i
		}
	}
	return len(r.group)
}

// hasPeers reports whether the replica's group names anyone besides self.
// A retiring primary's group excludes self entirely, so the heartbeat loop
// cannot use len(group) > 1 to decide whether there is anyone to beat.
func (r *replica) hasPeers(self string) bool {
	for _, a := range r.group {
		if a != self {
			return true
		}
	}
	return false
}

// Start launches the replication goroutines: a boot-time state query (so
// a restarted replica rejoins as a backup instead of split-braining the
// shard), the primary heartbeat loop, the backup promotion monitor, and —
// when membership is enabled — the re-replication scanner. With membership
// on, the loops run even when this server hosts no replica yet: map
// installs create replicas dynamically and the per-tick scans pick them
// up. It is a no-op for a standalone server.
func (s *Server) Start() {
	s.mu.Lock()
	reps := make([]*replica, 0, len(s.reps))
	for _, r := range s.reps {
		reps = append(reps, r)
	}
	membership := s.cmap.Epoch > 0
	repair := membership && s.cfg.RepairInterval >= 0
	interval := s.cfg.RepairInterval
	if interval == 0 {
		interval = DefaultRepairInterval
	}
	s.mu.Unlock()
	if len(reps) == 0 && !membership {
		return
	}
	if len(reps) > 0 {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for _, r := range reps {
				s.bootQuery(r)
			}
		}()
	}
	s.wg.Add(2)
	go func() { defer s.wg.Done(); s.heartbeatLoop() }()
	go func() { defer s.wg.Done(); s.monitorLoop() }()
	if repair {
		s.wg.Add(1)
		go func() { defer s.wg.Done(); s.repairLoop(interval) }()
	}
}

// bootQuery asks the other replicas of r's group for their view of the
// shard before this replica assumes any role. A fresh cluster finds no
// higher epoch anywhere and lets group index 0 take primaryship; a
// restarted replica finds the current epoch (or a peer with more applied
// ops) and rejoins as an out-of-sync backup that the primary re-syncs.
func (s *Server) bootQuery(r *replica) {
	var bestEpoch, bestSeq int64
	bestPrimary := ""
	for _, addr := range r.group {
		if addr == s.cfg.Self {
			continue
		}
		resp, err := s.callReplica(addr, wire.Message{
			Method: wire.MethodDirHeartbeat,
			Offset: int64(r.shard),
			Num:    -1, // query, not a primacy claim
		})
		if err != nil {
			continue
		}
		if resp.Gen > bestEpoch {
			bestEpoch = resp.Gen
			bestPrimary = string(resp.Node)
		}
		if resp.Num > bestSeq {
			bestSeq = resp.Num
		}
		if resp.Complete { // the peer is primary right now
			bestPrimary = addr
			if resp.Gen >= bestEpoch {
				bestEpoch = resp.Gen
			}
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	r.booted = true // promotion checks may run from here on
	if s.closed || r.primary {
		return
	}
	if bestEpoch > r.epoch {
		r.epoch = bestEpoch
	}
	if bestPrimary != "" && bestPrimary != s.cfg.Self {
		r.primaryAddr = bestPrimary
	}
	if bestEpoch > 0 || bestSeq > r.seq {
		// The shard has history this replica does not: stay a backup and
		// wait for the snapshot push.
		r.needSync = true
		r.lastBeat = time.Now()
		return
	}
	if r.selfIdx == 0 {
		// Fresh shard, and this replica heads the succession order.
		s.runAfterUnlock(s.promoteLocked(r))
	} else {
		r.lastBeat = time.Now()
	}
}

// runAfterUnlock schedules deferred notify closures; callers must hold
// s.mu and arrange for fns to run after releasing it. With the deferred
// Unlock idiom used here a goroutine keeps the call sites simple.
func (s *Server) runAfterUnlock(fns []func()) {
	if len(fns) == 0 {
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for _, fn := range fns {
			fn()
		}
	}()
}

// promoteLocked makes r the shard primary: bump the succession epoch,
// replay the buffered log tail in sequence order (this is the committed
// suffix the dead primary forwarded before dying), and wake every blocked
// call so it re-evaluates against the new role. It returns the notify
// closures produced by the replay, to run outside the lock.
func (s *Server) promoteLocked(r *replica) []func() {
	r.primary = true
	r.primaryAddr = s.cfg.Self
	r.primaryPeer = nil
	r.epoch++
	r.needSync = false
	var notifies []func()
	if len(r.pending) > 0 {
		seqs := make([]int64, 0, len(r.pending))
		for q := range r.pending {
			seqs = append(seqs, q)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for _, q := range seqs {
			if fn := s.applyOpLocked(r, q, r.pending[q]); fn != nil {
				notifies = append(notifies, fn)
			}
		}
		r.pending = make(map[int64]wire.Message)
	}
	for _, b := range r.backups {
		b.down = false
		b.lastSeq = -1
	}
	s.wakeShardLocked(r.shard)
	return notifies
}

// stepDownLocked demotes a (possibly former-primary) replica: the winner
// of a primacy conflict or a higher epoch was observed elsewhere. The
// replica re-syncs before serving anything again.
func (s *Server) stepDownLocked(r *replica, epoch int64, primaryAddr string) {
	r.primary = false
	if epoch > r.epoch {
		r.epoch = epoch
	}
	if primaryAddr != "" {
		r.primaryAddr = primaryAddr
	}
	r.needSync = true
	// Our dedupe cache may hold responses for ops that never reached the
	// new primary's history (a commit aborted mid-forward); cacheLocked
	// never overwrites, so stale entries would permanently shadow the
	// committed responses the resync snapshot carries. Drop everything —
	// the snapshot reinstalls the authoritative cache.
	r.dedupe = make(map[dedupeKey]wire.Message)
	r.dedupeQ = nil
	r.lastBeat = time.Now()
	s.wakeShardLocked(r.shard)
}

// wakeShardLocked wakes every blocked call on the shard's entries so it
// re-checks the replica's role (blocked acquires on a demoted primary
// must bounce to the new one instead of waiting forever).
func (s *Server) wakeShardLocked(shard int) {
	for oid, e := range s.entries {
		if s.shardOfOID(oid) == shard {
			e.wake()
		}
	}
}

func (s *Server) shardOfOID(oid types.ObjectID) int {
	if len(s.cfg.Groups) == 0 {
		return -1
	}
	return oid.Shard(len(s.cfg.Groups))
}

// conn returns a cached replication connection to a peer replica.
func (s *Server) conn(addr string) (*wire.Client, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, types.ErrClosed
	}
	if c, ok := s.conns[addr]; ok {
		s.mu.Unlock()
		return c, nil
	}
	s.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), forwardTimeout)
	nc, err := s.cfg.Dial(ctx, addr)
	cancel()
	if err != nil {
		return nil, err
	}
	c := wire.NewClient(nc, nil)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		c.Close()
		return nil, types.ErrClosed
	}
	if existing, ok := s.conns[addr]; ok {
		s.mu.Unlock()
		c.Close()
		return existing, nil
	}
	s.conns[addr] = c
	s.mu.Unlock()
	return c, nil
}

func (s *Server) dropConn(addr string, c *wire.Client) {
	s.mu.Lock()
	if s.conns[addr] == c {
		delete(s.conns, addr)
	}
	s.mu.Unlock()
	c.Close()
}

// callReplica performs one bounded replication-plane call to a peer,
// dropping the cached connection on transport failure.
func (s *Server) callReplica(addr string, m wire.Message) (wire.Message, error) {
	c, err := s.conn(addr)
	if err != nil {
		return wire.Message{}, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), forwardTimeout)
	resp, err := c.Call(ctx, m)
	cancel()
	if err != nil {
		s.dropConn(addr, c)
		return wire.Message{}, err
	}
	return resp, nil
}

// commitLocked sequences a freshly applied op and returns the closure
// that synchronously forwards it to the shard's live backups; the caller
// runs the closure after releasing s.mu and before replying, so an
// acknowledged op is on every reachable backup. The closure reports
// whether this replica remained primary through the forwards — a false
// return means a backup exposed a higher epoch and the op lives only in
// this deposed replica's history (about to be wiped by resync), so the
// caller must answer ErrNotPrimary and let the client retry against the
// real primary instead of acknowledging a write that will vanish. rep is
// nil in standalone mode.
func (s *Server) commitLocked(rep *replica, op wire.Message, resp wire.Message) func() bool {
	if rep == nil {
		return nil
	}
	rep.seq++
	seq := rep.seq
	if op.Num2 > 0 {
		rep.cacheLocked(dedupeKey{op.Node, op.Num2}, resp)
	}
	var targets []string
	for _, addr := range rep.group {
		if addr == s.cfg.Self {
			continue
		}
		if b := rep.backups[addr]; b != nil && b.down {
			continue
		}
		targets = append(targets, addr)
	}
	if len(targets) == 0 {
		return nil
	}
	payload, err := wire.AppendMessage(nil, &op)
	if err != nil {
		return nil
	}
	epoch := rep.epoch
	shard := rep.shard
	return func() bool {
		for _, addr := range targets {
			resp, err := s.callReplica(addr, wire.Message{
				Method:   wire.MethodReplicate,
				Offset:   int64(shard),
				Gen:      epoch,
				Num:      seq,
				Node:     types.NodeID(s.cfg.Self),
				Complete: true,
				Payload:  payload,
			})
			s.mu.Lock()
			if err != nil {
				if b := rep.backups[addr]; b != nil {
					b.down = true // heartbeat re-admits and re-syncs it
				}
				s.mu.Unlock()
				continue
			}
			if !rep.primary {
				s.mu.Unlock()
				return false
			}
			if resp.Gen > rep.epoch {
				s.stepDownLocked(rep, resp.Gen, string(resp.Node))
				s.mu.Unlock()
				return false
			}
			s.mu.Unlock()
		}
		return true
	}
}

// deposedResp builds the ErrNotPrimary bounce returned when a commit
// discovered mid-forward that this replica was deposed.
func (s *Server) deposedResp(rep *replica) wire.Message {
	var resp wire.Message
	resp.SetError(types.ErrNotPrimary)
	s.mu.Lock()
	resp.Node = types.NodeID(rep.primaryAddr)
	s.mu.Unlock()
	return resp
}

// replicate handles one forwarded op on a backup: adopt the sender's
// primacy if it wins, then apply in sequence order, buffering a bounded
// out-of-order tail.
func (s *Server) replicate(m wire.Message, p *wire.Peer) wire.Message {
	var resp wire.Message
	var op wire.Message
	if err := decodeFramedMessage(m.Payload, &op); err != nil {
		resp.SetError(err)
		return resp
	}
	s.mu.Lock()
	rep := s.reps[int(m.Offset)]
	if rep == nil {
		s.mu.Unlock()
		resp.Err = "directory: shard not hosted here"
		return resp
	}
	if !s.adoptPrimacyLocked(rep, m, p) {
		resp.Gen = rep.epoch
		resp.Num = rep.seq
		resp.Node = types.NodeID(rep.primaryAddr)
		resp.SetError(types.ErrNotPrimary)
		s.mu.Unlock()
		return resp
	}
	rep.lastBeat = time.Now()
	var notifies []func()
	switch {
	case m.Num <= rep.seq:
		// Duplicate (already applied, or covered by a snapshot).
	case m.Num == rep.seq+1 && !rep.installing:
		notifies = s.applyReplicatedLocked(rep, m.Num, op)
	default:
		// Out of order — or a snapshot install is in progress, in which
		// case applying against half-replaced entries would diverge;
		// buffer until the install's final chunk drains the tail.
		if len(rep.pending) >= maxPendingOps {
			rep.needSync = true
		} else {
			rep.pending[m.Num] = op
		}
	}
	resp.Gen = rep.epoch
	resp.Num = rep.seq
	resp.Wait = rep.needSync
	s.mu.Unlock()
	for _, fn := range notifies {
		fn()
	}
	return resp
}

// adoptPrimacyLocked evaluates a primacy claim carried by a heartbeat or
// replicate frame from m.Node and reports whether the sender is accepted
// as the shard primary. A replica that is itself primary steps down only
// to a strictly better claim.
func (s *Server) adoptPrimacyLocked(rep *replica, m wire.Message, p *wire.Peer) bool {
	sender := string(m.Node)
	senderIdx := rep.indexOf(sender)
	if rep.primary {
		if !better(m.Gen, m.Num, senderIdx, rep.epoch, rep.seq, rep.selfIdx) {
			return false
		}
		s.stepDownLocked(rep, m.Gen, sender)
	} else {
		if m.Gen < rep.epoch {
			return false
		}
		if m.Gen > rep.epoch || rep.primaryAddr != sender {
			if rep.primaryAddr != sender {
				if rep.seq > 0 {
					// A new primary took over: our log may diverge from
					// its replayed tail, so hold reads until it re-syncs
					// us.
					rep.needSync = true
				}
				// The out-of-order tail buffered from the previous
				// primary belongs to a dead history; replaying it into
				// the new primary's sequence numbers would silently
				// diverge this replica.
				rep.pending = make(map[int64]wire.Message)
			}
			rep.epoch = m.Gen
			rep.primaryAddr = sender
		}
	}
	if p != nil && rep.primaryPeer != p {
		rep.primaryPeer = p
		shard := rep.shard
		epoch := rep.epoch
		// Async: OnClose runs its callback synchronously when the peer is
		// already closed, and this code path holds s.mu.
		p.OnClose(func() { go s.primaryConnLost(shard, epoch, p) })
	}
	return true
}

// primaryConnLost reacts to the primary's replication connection dying:
// expire the lease immediately so the monitor probes and, if this replica
// heads the surviving succession order, promotes without waiting out the
// full timeout.
func (s *Server) primaryConnLost(shard int, epoch int64, p *wire.Peer) {
	s.mu.Lock()
	rep := s.reps[shard]
	if s.closed || rep == nil || rep.primary || rep.primaryPeer != p || rep.epoch != epoch {
		s.mu.Unlock()
		return
	}
	rep.primaryPeer = nil
	rep.lastBeat = rep.lastBeat.Add(-s.cfg.LeaseTimeout)
	// wg.Add under the lock, after the closed check: Close sets closed
	// before it Waits, so it cannot miss this goroutine.
	s.wg.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.wg.Done()
		s.checkPromotion(rep)
	}()
}

// applyOpLocked applies one replicated op at sequence q, caching its
// derived response for retry dedupe. It returns the op's notify closure
// (nil when the op produced none).
func (s *Server) applyOpLocked(rep *replica, q int64, op wire.Message) func() {
	resp, _, notify := s.applyLocked(op)
	if op.Num2 > 0 {
		rep.cacheLocked(dedupeKey{op.Node, op.Num2}, resp)
	}
	rep.seq = q
	return notify
}

// applyReplicatedLocked applies one in-order op and drains any buffered
// tail that became consecutive.
func (s *Server) applyReplicatedLocked(rep *replica, seq int64, op wire.Message) []func() {
	var notifies []func()
	if fn := s.applyOpLocked(rep, seq, op); fn != nil {
		notifies = append(notifies, fn)
	}
	return append(notifies, s.drainPendingLocked(rep)...)
}

// drainPendingLocked applies buffered ops that are consecutive with the
// replica's applied sequence.
func (s *Server) drainPendingLocked(rep *replica) []func() {
	var notifies []func()
	for {
		next, ok := rep.pending[rep.seq+1]
		if !ok {
			return notifies
		}
		delete(rep.pending, rep.seq+1)
		if fn := s.applyOpLocked(rep, rep.seq+1, next); fn != nil {
			notifies = append(notifies, fn)
		}
	}
}

// heartbeat handles MethodDirHeartbeat: the boot-time state query
// (m.Num < 0) and the primary's lease renewal, which also reports this
// backup's applied sequence so the primary can detect a stalled or empty
// replica and push a snapshot.
func (s *Server) heartbeat(m wire.Message, p *wire.Peer) wire.Message {
	var resp wire.Message
	s.mu.Lock()
	defer s.mu.Unlock()
	rep := s.reps[int(m.Offset)]
	if rep == nil {
		resp.Err = "directory: shard not hosted here"
		return resp
	}
	// Every heartbeat answer reports this server's cluster-map epoch: the
	// primary uses it as anti-entropy, pushing (or pulling) the map when
	// the two sides disagree — a member that missed a map push converges
	// through the lease traffic that is flowing anyway.
	resp.Epoch = s.cmap.Epoch
	if m.Num < 0 {
		// State query from a booting replica: report, claim nothing.
		resp.Gen = rep.epoch
		resp.Num = rep.seq
		resp.Node = types.NodeID(rep.primaryAddr)
		resp.Complete = rep.primary
		return resp
	}
	if !s.adoptPrimacyLocked(rep, m, p) {
		resp.Gen = rep.epoch
		resp.Num = rep.seq
		resp.Node = types.NodeID(rep.primaryAddr)
		resp.Complete = rep.primary
		resp.SetError(types.ErrNotPrimary)
		return resp
	}
	rep.lastBeat = time.Now()
	resp.Gen = rep.epoch
	resp.Num = rep.seq
	resp.Wait = rep.needSync
	return resp
}

// heartbeatLoop renews the primary lease on every backup and repairs
// replicas that report themselves out of sync or stalled.
func (s *Server) heartbeatLoop() {
	ticker := time.NewTicker(s.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-ticker.C:
		}
		s.mu.Lock()
		var primaries []*replica
		for _, r := range s.reps {
			if r.primary && r.hasPeers(s.cfg.Self) {
				primaries = append(primaries, r)
			}
		}
		s.mu.Unlock()
		for _, r := range primaries {
			s.beatBackups(r)
		}
	}
}

func (s *Server) beatBackups(r *replica) {
	s.mu.Lock()
	if !r.primary {
		s.mu.Unlock()
		return
	}
	epoch, seq := r.epoch, r.seq
	backups := make([]string, 0, len(r.group)-1)
	for _, addr := range r.group {
		if addr != s.cfg.Self {
			backups = append(backups, addr)
		}
	}
	s.mu.Unlock()
	// Map anti-entropy gathered from heartbeat answers: members behind our
	// cluster-map epoch get a push, and a member ahead of us is pulled
	// from, both after the beat loop (no I/O while iterating under s.mu).
	var mapBehind []string
	mapAhead := ""
	for _, addr := range backups {
		resp, err := s.callReplica(addr, wire.Message{
			Method:   wire.MethodDirHeartbeat,
			Offset:   int64(r.shard),
			Gen:      epoch,
			Num:      seq,
			Node:     types.NodeID(s.cfg.Self),
			Complete: true,
		})
		s.mu.Lock()
		b := r.backups[addr]
		if err != nil {
			if b != nil {
				b.down = true
			}
			s.mu.Unlock()
			continue
		}
		if !r.primary {
			s.mu.Unlock()
			return
		}
		if resp.Gen > r.epoch {
			s.stepDownLocked(r, resp.Gen, string(resp.Node))
			s.mu.Unlock()
			return
		}
		switch {
		case s.cmap.Epoch > 0 && resp.Epoch > 0 && resp.Epoch < s.cmap.Epoch:
			mapBehind = append(mapBehind, addr)
		case resp.Epoch > s.cmap.Epoch:
			mapAhead = addr
		}
		needSnapshot := resp.Wait
		if b != nil {
			b.down = false
			b.waiting = resp.Wait
			// Stalled: behind us and no progress since the previous beat.
			if resp.Num < r.seq && resp.Num == b.lastSeq {
				needSnapshot = true
			}
			b.lastSeq = resp.Num
		}
		s.mu.Unlock()
		if needSnapshot {
			s.pushSnapshot(r, addr)
		}
	}
	if len(mapBehind) > 0 {
		s.pushMapAsync(mapBehind)
	}
	if mapAhead != "" {
		s.pullMapFrom(mapAhead)
	}
	s.mu.Lock()
	if r.primary && r.retiring {
		// Rotated-out lame duck: once any successor in the new group holds
		// the full history, step out and stop renewing its lease, so lease
		// expiry promotes it. Parked calls wake, bounce with the current
		// map, and the client retries against the new group.
		for _, b := range r.backups {
			if !b.down && !b.waiting && b.lastSeq == r.seq {
				r.primary = false
				if s.reps[r.shard] == r {
					delete(s.reps, r.shard)
				}
				s.wakeShardLocked(r.shard)
				break
			}
		}
	}
	s.mu.Unlock()
}

// monitorLoop is the backup side of the lease: when the primary has been
// silent past LeaseTimeout, probe the predecessors in succession order
// and promote if none are alive.
func (s *Server) monitorLoop() {
	interval := s.cfg.LeaseTimeout / 4
	if interval <= 0 {
		interval = DefaultLeaseTimeout / 4
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-ticker.C:
		}
		s.mu.Lock()
		var expired []*replica
		for _, r := range s.reps {
			if !r.primary && r.booted && time.Since(r.lastBeat) >= s.cfg.LeaseTimeout {
				expired = append(expired, r)
			}
		}
		s.mu.Unlock()
		for _, r := range expired {
			s.checkPromotion(r)
		}
	}
}

// checkPromotion surveys the live replicas of r's group after the lease
// expired and promotes r only if it carries the best (epoch, seq) state
// among them, with the earlier group index breaking ties. Comparing
// state — not just liveness — means an empty restarted replica can never
// claim a shard over a synced survivor, while the best-synced survivor
// is never blocked by a live-but-stale peer.
func (s *Server) checkPromotion(r *replica) {
	s.mu.Lock()
	if s.closed || r.primary || !r.booted || time.Since(r.lastBeat) < s.cfg.LeaseTimeout {
		s.mu.Unlock()
		return
	}
	myEpoch, mySeq := r.epoch, r.seq
	shard := r.shard
	peers := make([]string, 0, len(r.group)-1)
	for _, addr := range r.group {
		if addr != s.cfg.Self {
			peers = append(peers, addr)
		}
	}
	s.mu.Unlock()
	for _, addr := range peers {
		resp, err := s.callReplica(addr, wire.Message{
			Method: wire.MethodDirHeartbeat,
			Offset: int64(shard),
			Num:    -1, // state query
		})
		if err != nil {
			continue // dead or unreachable: not a contender
		}
		if resp.Complete && resp.Gen >= myEpoch {
			// A live primary exists; its heartbeat just has not reached
			// us yet. Adopt it and renew the lease.
			s.mu.Lock()
			if !r.primary {
				if resp.Gen > r.epoch {
					r.epoch = resp.Gen
				}
				r.primaryAddr = addr
				r.lastBeat = time.Now()
			}
			s.mu.Unlock()
			return
		}
		if better(resp.Gen, resp.Num, r.indexOf(addr), myEpoch, mySeq, r.selfIdx) {
			// A live, better-synced replica exists: the shard is its to
			// claim. Give it a lease period to do so.
			s.mu.Lock()
			r.lastBeat = time.Now()
			s.mu.Unlock()
			return
		}
	}
	s.mu.Lock()
	if s.closed || r.primary || time.Since(r.lastBeat) < s.cfg.LeaseTimeout {
		s.mu.Unlock()
		return
	}
	notifies := s.promoteLocked(r)
	s.mu.Unlock()
	for _, fn := range notifies {
		fn()
	}
}

// pushSnapshot sends the shard's full state to one backup in bounded
// chunks. The sequence number captured with the state tells the receiver
// which replicated ops the snapshot already contains.
func (s *Server) pushSnapshot(r *replica, addr string) {
	s.mu.Lock()
	if !r.primary {
		s.mu.Unlock()
		return
	}
	epoch, seq := r.epoch, r.seq
	var chunks [][]byte
	cur := make([]byte, 0, snapshotChunk)
	for oid, e := range s.entries {
		if s.shardOfOID(oid) != r.shard {
			continue
		}
		cur = appendSnapshotEntry(cur, oid, e)
		if len(cur) >= snapshotChunk {
			chunks = append(chunks, cur)
			cur = make([]byte, 0, snapshotChunk)
		}
	}
	dedupe := appendSnapshotDedupe(nil, r)
	var mapSec []byte
	if r.shard == membershipShard && s.cmap.Epoch > 0 {
		// The membership shard's snapshot carries the cluster map, so a
		// resynced replica lands on exactly the epoch its new state was
		// captured at even if it missed every push.
		mapSec = append([]byte(nil), s.encodedMap...)
	}
	s.mu.Unlock()
	if len(cur) > 0 || len(chunks) == 0 {
		chunks = append(chunks, cur)
	}
	for i, chunk := range chunks {
		m := wire.Message{
			Method:   wire.MethodDirSnapshot,
			Offset:   int64(r.shard),
			Gen:      epoch,
			Num:      seq,
			Node:     types.NodeID(s.cfg.Self),
			Payload:  chunk,
			Wait:     i == 0,
			Complete: i == len(chunks)-1 && len(dedupe) == 0 && len(mapSec) == 0,
		}
		if resp, err := s.callReplica(addr, m); err != nil || resp.ErrorOf() != nil {
			return
		}
	}
	if len(dedupe) > 0 {
		m := wire.Message{
			Method:   wire.MethodDirSnapshot,
			Offset:   int64(r.shard),
			Gen:      epoch,
			Num:      seq,
			Num2:     1, // dedupe section
			Node:     types.NodeID(s.cfg.Self),
			Payload:  dedupe,
			Complete: len(mapSec) == 0,
		}
		if resp, err := s.callReplica(addr, m); err != nil || resp.ErrorOf() != nil {
			return
		}
	}
	if len(mapSec) > 0 {
		m := wire.Message{
			Method:   wire.MethodDirSnapshot,
			Offset:   int64(r.shard),
			Gen:      epoch,
			Num:      seq,
			Num2:     2, // cluster-map section
			Node:     types.NodeID(s.cfg.Self),
			Payload:  mapSec,
			Complete: true,
		}
		_, _ = s.callReplica(addr, m)
	}
}

// snapshot installs a pushed shard state on a backup. The first chunk
// clears the shard (preserving subscriber and waiter registrations, which
// are connection-local); the last chunk marks the replica in sync and
// drops the now-covered log tail.
func (s *Server) snapshot(m wire.Message) wire.Message {
	var resp wire.Message
	s.mu.Lock()
	rep := s.reps[int(m.Offset)]
	if rep == nil {
		s.mu.Unlock()
		resp.Err = "directory: shard not hosted here"
		return resp
	}
	if rep.primary || m.Gen < rep.epoch {
		resp.Gen = rep.epoch
		resp.SetError(types.ErrNotPrimary)
		s.mu.Unlock()
		return resp
	}
	if m.Gen > rep.epoch {
		rep.epoch = m.Gen
		rep.primaryAddr = string(m.Node)
	}
	rep.lastBeat = time.Now()
	var touched []types.ObjectID
	if m.Wait { // first chunk: replace the shard's entries
		if m.Num < rep.seq {
			// The capture is older than ops this replica has already
			// applied — installing it would silently roll them back.
			// Reject; the primary's stall detection recaptures fresh.
			resp.Num = rep.seq
			resp.Err = "directory: stale snapshot capture"
			s.mu.Unlock()
			return resp
		}
		rep.installing = true
		rep.installTouched = make(map[types.ObjectID]bool)
		// The incoming dedupe section is authoritative; entries cached by
		// this replica's own (possibly deposed-primary) history must not
		// shadow it, since cacheLocked never overwrites.
		rep.dedupe = make(map[dedupeKey]wire.Message)
		rep.dedupeQ = nil
		for oid, e := range s.entries {
			if s.shardOfOID(oid) != rep.shard {
				continue
			}
			e.prog = make(map[types.NodeID]types.Progress)
			e.leasedTo = make(map[types.NodeID]types.NodeID)
			e.deps = make(map[types.NodeID]types.NodeID)
			e.inline = nil
			e.size = types.SizeUnknown
			touched = append(touched, oid)
		}
	}
	var err error
	var mapAfter []func()
	switch m.Num2 {
	case 1:
		err = s.installSnapshotDedupe(rep, m.Payload)
	case 2:
		next, derr := types.DecodeClusterMap(m.Payload)
		if derr != nil {
			err = derr
		} else {
			mapAfter = s.installMapLocked(next)
		}
	default:
		touched, err = s.installSnapshotEntries(m.Payload, touched)
	}
	if err != nil {
		rep.needSync = true
		rep.installing = false
		resp.SetError(err)
		s.mu.Unlock()
		return resp
	}
	rep.seq = m.Num
	if rep.installTouched == nil {
		rep.installTouched = make(map[types.ObjectID]bool)
	}
	for _, oid := range touched {
		rep.installTouched[oid] = true
	}
	var notifies []func()
	if m.Complete {
		rep.needSync = false
		rep.installing = false
		for q := range rep.pending {
			if q <= rep.seq {
				delete(rep.pending, q)
			}
		}
		notifies = append(notifies, s.drainPendingLocked(rep)...)
		for oid := range rep.installTouched {
			if e, ok := s.entries[oid]; ok {
				e.wake()
				notifies = append(notifies, s.notifyLocked(oid, e))
			}
		}
		rep.installTouched = nil
	}
	resp.Gen = rep.epoch
	resp.Num = rep.seq
	notifies = append(notifies, mapAfter...)
	s.mu.Unlock()
	for _, fn := range notifies {
		fn()
	}
	return resp
}

// Snapshot wire format (all integers big-endian). Entries:
//
//	[20] oid
//	u64  size, u64 gen
//	u8   flags (bit0 deleted)
//	u32  inline len + bytes
//	u32  prog count   + count × (u16 node + u8 progress)
//	u32  lease count  + count × (u16 sender + u16 receiver)
//	u32  dep count    + count × (u16 receiver + u16 sender)
//
// Dedupe section (Num2 == 1):
//
//	u32 count + count × (u16 client + u64 seq + framed response message)
//
// Cluster-map section (Num2 == 2, membership shard only): one encoded
// ClusterMap (see types.EncodeClusterMap).

func appendStr16(dst []byte, v string) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(v)))
	return append(dst, v...)
}

func appendSnapshotEntry(dst []byte, oid types.ObjectID, e *entry) []byte {
	dst = append(dst, oid[:]...)
	dst = binary.BigEndian.AppendUint64(dst, uint64(e.size))
	dst = binary.BigEndian.AppendUint64(dst, uint64(e.gen))
	var flags byte
	if e.deleted {
		flags |= 1
	}
	dst = append(dst, flags)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(e.inline)))
	dst = append(dst, e.inline...)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(e.prog)))
	for n, p := range e.prog {
		dst = appendStr16(dst, string(n))
		dst = append(dst, byte(p))
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(e.leasedTo)))
	for sender, recv := range e.leasedTo {
		dst = appendStr16(dst, string(sender))
		dst = appendStr16(dst, string(recv))
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(e.deps)))
	for recv, sender := range e.deps {
		dst = appendStr16(dst, string(recv))
		dst = appendStr16(dst, string(sender))
	}
	return dst
}

func appendSnapshotDedupe(dst []byte, r *replica) []byte {
	if len(r.dedupeQ) == 0 {
		return nil
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(r.dedupeQ)))
	for _, key := range r.dedupeQ {
		resp := r.dedupe[key]
		dst = appendStr16(dst, string(key.client))
		dst = binary.BigEndian.AppendUint64(dst, uint64(key.seq))
		framed, err := wire.AppendMessage(dst, &resp)
		if err != nil {
			// Encoding a response we produced cannot fail; bail out of the
			// optional section rather than ship a torn snapshot.
			return nil
		}
		dst = framed
	}
	return dst
}

// snapReader walks a snapshot payload with bounds checks.
type snapReader struct {
	b   []byte
	off int
	bad bool
}

func (r *snapReader) take(n int) []byte {
	if r.bad || n < 0 || len(r.b)-r.off < n {
		r.bad = true
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

func (r *snapReader) u8() byte {
	if v := r.take(1); v != nil {
		return v[0]
	}
	return 0
}

func (r *snapReader) u16() int {
	if v := r.take(2); v != nil {
		return int(binary.BigEndian.Uint16(v))
	}
	return 0
}

func (r *snapReader) u32() int {
	if v := r.take(4); v != nil {
		return int(binary.BigEndian.Uint32(v))
	}
	return 0
}

func (r *snapReader) u64() uint64 {
	if v := r.take(8); v != nil {
		return binary.BigEndian.Uint64(v)
	}
	return 0
}

func (r *snapReader) str16() string { return string(r.take(r.u16())) }

// errCorruptSnapshot reports a snapshot or framed-op payload whose fields
// overrun its length.
var errCorruptSnapshot = errors.New("directory: corrupt snapshot payload")

func (s *Server) installSnapshotEntries(payload []byte, touched []types.ObjectID) ([]types.ObjectID, error) {
	r := snapReader{b: payload}
	for r.off < len(r.b) && !r.bad {
		var oid types.ObjectID
		copy(oid[:], r.take(types.ObjectIDSize))
		size := int64(r.u64())
		gen := int64(r.u64())
		flags := r.u8()
		var inline []byte
		if n := r.u32(); n > 0 {
			inline = append([]byte(nil), r.take(n)...)
		}
		e := s.entryLocked(oid)
		e.size = size
		e.gen = gen
		e.deleted = flags&1 != 0
		e.inline = inline
		e.prog = make(map[types.NodeID]types.Progress)
		for i, n := 0, r.u32(); i < n && !r.bad; i++ {
			node := types.NodeID(r.str16())
			e.prog[node] = types.Progress(r.u8())
		}
		e.leasedTo = make(map[types.NodeID]types.NodeID)
		for i, n := 0, r.u32(); i < n && !r.bad; i++ {
			sender := types.NodeID(r.str16())
			e.leasedTo[sender] = types.NodeID(r.str16())
		}
		e.deps = make(map[types.NodeID]types.NodeID)
		for i, n := 0, r.u32(); i < n && !r.bad; i++ {
			recv := types.NodeID(r.str16())
			e.deps[recv] = types.NodeID(r.str16())
		}
		touched = append(touched, oid)
	}
	if r.bad {
		return touched, errCorruptSnapshot
	}
	return touched, nil
}

func (s *Server) installSnapshotDedupe(rep *replica, payload []byte) error {
	r := snapReader{b: payload}
	n := r.u32()
	for i := 0; i < n && !r.bad; i++ {
		client := types.NodeID(r.str16())
		seq := int64(r.u64())
		var resp wire.Message
		frame := r.take(4)
		if frame == nil {
			break
		}
		body := r.take(int(binary.BigEndian.Uint32(frame)))
		if body == nil {
			break
		}
		if err := wire.UnmarshalMessage(body, &resp); err != nil {
			r.bad = true
			break
		}
		rep.cacheLocked(dedupeKey{client, seq}, resp)
	}
	if r.bad {
		return errCorruptSnapshot
	}
	return nil
}

// decodeFramedMessage decodes a wire.AppendMessage frame (length prefix +
// body) carried inside another message's payload.
func decodeFramedMessage(payload []byte, m *wire.Message) error {
	if len(payload) < 4 {
		return errCorruptSnapshot
	}
	n := int(binary.BigEndian.Uint32(payload))
	if len(payload)-4 < n {
		return errCorruptSnapshot
	}
	return wire.UnmarshalMessage(payload[4:4+n], m)
}
