// Package directory implements Hoplite's object directory service (§3.2):
// a sharded table mapping each ObjectID to its size and the set of node
// locations holding a partial or complete copy. It supports synchronous
// (blocking) and asynchronous (push-notification) location queries, the
// atomic sender-acquisition protocol that drives receiver-driven broadcast
// (§3.4.1), fetch-dependency tracking for cycle avoidance (§3.5.1), and the
// small-object fast path that caches payloads < 64 KB inline (§3.2).
package directory

import (
	"context"
	"sync"

	"hoplite/internal/types"
	"hoplite/internal/wire"
)

// entry is the directory record for one object.
type entry struct {
	size    int64
	inline  []byte // small-object fast path payload (nil if none)
	deleted bool
	// gen counts re-creations of the object: it is bumped whenever the
	// entry gains its first location after having none. A receiver whose
	// lease generation changes across a retry must discard its partial
	// bytes instead of resuming, because the object was re-produced (for
	// example a reduce root re-executed with a different source set).
	gen int64

	// prog is the authoritative progress of every node holding a copy.
	prog map[types.NodeID]types.Progress
	// leasedTo maps a holder to the single receiver it is currently
	// sending to. A holder is an eligible sender iff it is in prog and
	// not in leasedTo — this is the paper's "remove the location from the
	// directory while it serves one receiver" rule, which caps every node
	// at one downstream receiver per object.
	leasedTo map[types.NodeID]types.NodeID
	// deps maps a receiver to the upstream sender it is currently
	// fetching from; walking deps detects cycles when choosing a sender
	// for a restarted fetch (§3.5.1).
	deps map[types.NodeID]types.NodeID

	// waiters are closed on every mutation, waking blocked Acquire calls.
	waiters []chan struct{}
	// subs receive push notifications on every mutation.
	subs map[*wire.Peer]types.NodeID
}

func newEntry() *entry {
	return &entry{
		size:     types.SizeUnknown,
		prog:     make(map[types.NodeID]types.Progress),
		leasedTo: make(map[types.NodeID]types.NodeID),
		deps:     make(map[types.NodeID]types.NodeID),
		subs:     make(map[*wire.Peer]types.NodeID),
	}
}

func (e *entry) wake() {
	for _, ch := range e.waiters {
		close(ch)
	}
	e.waiters = nil
}

func (e *entry) snapshotLocs() []types.Location {
	locs := make([]types.Location, 0, len(e.prog))
	for n, p := range e.prog {
		locs = append(locs, types.Location{Node: n, Progress: p})
	}
	return locs
}

// Server hosts one shard of the directory.
type Server struct {
	srv *wire.Server

	mu      sync.Mutex
	entries map[types.ObjectID]*entry
	closed  bool
}

// NewServer creates a shard server; call Serve on the returned server's
// wire listener via Start.
func NewServer() *Server {
	return &Server{entries: make(map[types.ObjectID]*entry)}
}

// Handler returns the wire handler for this shard, for embedding into a
// node's control server.
func (s *Server) Handler() wire.Handler {
	return s.handle
}

func (s *Server) entryLocked(oid types.ObjectID) *entry {
	e, ok := s.entries[oid]
	if !ok {
		e = newEntry()
		s.entries[oid] = e
	}
	return e
}

// notifyLocked builds the notification sends for e's subscribers; the
// returned closure must be invoked after releasing s.mu so that a slow
// subscriber cannot stall the shard.
func (s *Server) notifyLocked(oid types.ObjectID, e *entry) func() {
	if len(e.subs) == 0 {
		return func() {}
	}
	msg := wire.Message{
		Method:  wire.MethodNotify,
		OID:     oid,
		Size:    e.size,
		Locs:    e.snapshotLocs(),
		Payload: e.inline,
	}
	if e.deleted {
		msg.SetError(types.ErrDeleted)
	}
	peers := make([]*wire.Peer, 0, len(e.subs))
	for p := range e.subs {
		peers = append(peers, p)
	}
	return func() {
		for _, p := range peers {
			_ = p.Notify(msg)
		}
	}
}

func (s *Server) handle(ctx context.Context, m wire.Message, p *wire.Peer) wire.Message {
	switch m.Method {
	case wire.MethodPing:
		return wire.Message{Method: wire.MethodPing}
	case wire.MethodPutStarted:
		return s.putStarted(m)
	case wire.MethodPutComplete:
		return s.putComplete(m)
	case wire.MethodPutInline:
		return s.putInline(m)
	case wire.MethodAcquire:
		return s.acquire(ctx, m)
	case wire.MethodAcquireMany:
		return s.acquireMany(m)
	case wire.MethodRelease:
		return s.release(m)
	case wire.MethodAbort:
		return s.abort(m)
	case wire.MethodAbortDown:
		return s.abortDownstream(m)
	case wire.MethodLookup:
		return s.lookup(ctx, m)
	case wire.MethodSubscribe:
		return s.subscribe(m, p)
	case wire.MethodUnsubscribe:
		return s.unsubscribe(m, p)
	case wire.MethodDelete:
		return s.delete(m)
	case wire.MethodRemoveLoc:
		return s.removeLoc(m)
	case wire.MethodMarkSpilled:
		return s.markSpilled(m)
	case wire.MethodPurgeNode:
		return s.purgeNode(m)
	default:
		var resp wire.Message
		resp.Err = "directory: unknown method"
		return resp
	}
}

func (s *Server) putStarted(m wire.Message) wire.Message {
	s.mu.Lock()
	e := s.entryLocked(m.OID)
	var resp wire.Message
	if e.deleted {
		// A Put after Delete recreates the object (task re-execution).
		e.deleted = false
		e.inline = nil
	}
	if len(e.prog) == 0 {
		e.gen++
	}
	e.size = m.Size
	if _, ok := e.prog[m.Node]; !ok {
		e.prog[m.Node] = types.ProgressPartial
	}
	if m.Complete {
		e.prog[m.Node] = types.ProgressComplete
	}
	e.wake()
	notify := s.notifyLocked(m.OID, e)
	s.mu.Unlock()
	notify()
	return resp
}

func (s *Server) putComplete(m wire.Message) wire.Message {
	s.mu.Lock()
	e := s.entryLocked(m.OID)
	var resp wire.Message
	if e.deleted {
		resp.SetError(types.ErrDeleted)
		s.mu.Unlock()
		return resp
	}
	e.prog[m.Node] = types.ProgressComplete
	e.wake()
	notify := s.notifyLocked(m.OID, e)
	s.mu.Unlock()
	notify()
	return resp
}

func (s *Server) putInline(m wire.Message) wire.Message {
	s.mu.Lock()
	e := s.entryLocked(m.OID)
	e.deleted = false
	e.inline = append([]byte(nil), m.Payload...)
	e.size = int64(len(e.inline))
	e.wake()
	notify := s.notifyLocked(m.OID, e)
	s.mu.Unlock()
	notify()
	return wire.Message{}
}

// cyclicLocked reports whether candidate's fetch-dependency chain reaches
// receiver, which would create a cyclic object transfer.
func cyclicLocked(e *entry, candidate, receiver types.NodeID) bool {
	cur := candidate
	for i := 0; i <= len(e.deps); i++ {
		up, ok := e.deps[cur]
		if !ok {
			return false
		}
		if up == receiver {
			return true
		}
		cur = up
	}
	return true // defensive: treat unexpected longer chains as cyclic
}

// pickLocked selects an eligible sender for receiver, ranking in-memory
// complete copies over spilled (disk-backed, still whole) ones over
// partial ones (§3.4.1 extended with the spill tier): a memory sender
// streams at memory bandwidth, a spilled sender at disk bandwidth, and a
// partial sender only up to its watermark.
func pickLocked(e *entry, receiver types.NodeID) (types.NodeID, bool) {
	var best types.NodeID
	bestRank := 0 // 1 = partial, 2 = spilled, 3 = complete in memory
	for n, prog := range e.prog {
		if n == receiver {
			continue
		}
		if _, leased := e.leasedTo[n]; leased {
			continue
		}
		if cyclicLocked(e, n, receiver) {
			continue
		}
		rank := 1
		switch prog {
		case types.ProgressComplete:
			rank = 3
		case types.ProgressSpilled:
			rank = 2
		}
		if rank == 3 {
			return n, true
		}
		if rank > bestRank {
			best, bestRank = n, rank
		}
	}
	return best, bestRank > 0
}

func (s *Server) acquire(ctx context.Context, m wire.Message) wire.Message {
	receiver := m.Node
	for {
		s.mu.Lock()
		e := s.entryLocked(m.OID)
		var resp wire.Message
		switch {
		case e.deleted:
			resp.SetError(types.ErrDeleted)
			s.mu.Unlock()
			return resp
		case e.inline != nil:
			resp.Payload = e.inline
			resp.Size = e.size
			s.mu.Unlock()
			return resp
		default:
			if sender, ok := pickLocked(e, receiver); ok {
				e.leasedTo[sender] = receiver
				e.deps[receiver] = sender
				if _, held := e.prog[receiver]; !held {
					e.prog[receiver] = types.ProgressPartial
				}
				resp.Sender = sender
				resp.Size = e.size
				resp.Gen = e.gen
				notify := s.notifyLocked(m.OID, e)
				s.mu.Unlock()
				notify()
				return resp
			}
		}
		if !m.Wait {
			if len(e.prog) == 0 {
				resp.SetError(types.ErrNotFound)
			} else {
				resp.SetError(types.ErrNoSender)
			}
			s.mu.Unlock()
			return resp
		}
		ch := make(chan struct{})
		e.waiters = append(e.waiters, ch)
		s.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			var resp wire.Message
			resp.SetError(ctx.Err())
			return resp
		}
	}
}

// acquireMany leases up to m.Num eligible senders holding whole copies —
// complete in memory or spilled to disk — to the receiver in one atomic
// step, for a striped pull that drains disjoint ranges from every copy
// concurrently. In-memory copies are leased first; disk-backed senders
// fill the remaining slots (they stream ranges straight off their
// chunk-aligned spill file). Unlike acquire it never blocks: with no
// eligible whole copy the receiver falls back to the single-sender
// (possibly partial, possibly waiting) path. Whole-copy holders never
// fetch, so multi-leases cannot create fetch cycles and no deps entries
// are recorded; each lease is returned individually through the existing
// Release/Abort methods.
func (s *Server) acquireMany(m wire.Message) wire.Message {
	receiver := m.Node
	want := int(m.Num)
	if want < 1 {
		want = 1
	}
	s.mu.Lock()
	e := s.entryLocked(m.OID)
	var resp wire.Message
	switch {
	case e.deleted:
		resp.SetError(types.ErrDeleted)
		s.mu.Unlock()
		return resp
	case e.inline != nil:
		resp.Payload = e.inline
		resp.Size = e.size
		s.mu.Unlock()
		return resp
	}
	var memory, disk []types.NodeID
	for node, prog := range e.prog {
		if node == receiver || !prog.HasAll() {
			continue
		}
		if _, busy := e.leasedTo[node]; busy {
			continue
		}
		if prog == types.ProgressComplete {
			memory = append(memory, node)
		} else {
			disk = append(disk, node)
		}
	}
	var leased []types.Location
	for _, tier := range [2][]types.NodeID{memory, disk} {
		for _, node := range tier {
			if len(leased) == want {
				break
			}
			e.leasedTo[node] = receiver
			leased = append(leased, types.Location{Node: node, Progress: e.prog[node]})
		}
	}
	if len(leased) == 0 {
		if len(e.prog) == 0 {
			resp.SetError(types.ErrNotFound)
		} else {
			resp.SetError(types.ErrNoSender)
		}
		s.mu.Unlock()
		return resp
	}
	if _, held := e.prog[receiver]; !held {
		e.prog[receiver] = types.ProgressPartial
	}
	resp.Locs = leased
	resp.Size = e.size
	resp.Gen = e.gen
	e.wake()
	notify := s.notifyLocked(m.OID, e)
	s.mu.Unlock()
	notify()
	return resp
}

func (s *Server) release(m wire.Message) wire.Message {
	s.mu.Lock()
	e := s.entryLocked(m.OID)
	if e.leasedTo[m.Sender] == m.Node {
		delete(e.leasedTo, m.Sender)
	}
	delete(e.deps, m.Node)
	if m.Complete && !e.deleted {
		e.prog[m.Node] = types.ProgressComplete
	}
	e.wake()
	notify := s.notifyLocked(m.OID, e)
	s.mu.Unlock()
	notify()
	return wire.Message{}
}

// abort ends a failed transfer: the lease is returned and, when
// m.Complete is set (meaning "the sender is dead"), the sender's location
// is dropped. The receiver keeps its partial copy and will re-acquire,
// resuming from its watermark (§3.5.1).
func (s *Server) abort(m wire.Message) wire.Message {
	s.mu.Lock()
	e := s.entryLocked(m.OID)
	if e.leasedTo[m.Sender] == m.Node {
		delete(e.leasedTo, m.Sender)
	}
	delete(e.deps, m.Node)
	if m.Complete { // Complete here means "remove the dead sender's location"
		delete(e.prog, m.Sender)
	}
	e.wake()
	notify := s.notifyLocked(m.OID, e)
	s.mu.Unlock()
	notify()
	return wire.Message{}
}

// abortDownstream is the sender-side failure report: the sender (m.Sender)
// observed its receiver's (m.Node) socket die mid-transfer. The lease is
// returned and the receiver's (possibly stale) partial location is
// dropped; a live receiver that merely lost the connection re-registers
// itself on its next acquire.
func (s *Server) abortDownstream(m wire.Message) wire.Message {
	s.mu.Lock()
	e := s.entryLocked(m.OID)
	if e.leasedTo[m.Sender] == m.Node {
		delete(e.leasedTo, m.Sender)
	}
	delete(e.deps, m.Node)
	if e.prog[m.Node] == types.ProgressPartial {
		delete(e.prog, m.Node)
	}
	e.wake()
	notify := s.notifyLocked(m.OID, e)
	s.mu.Unlock()
	notify()
	return wire.Message{}
}

func (s *Server) lookup(ctx context.Context, m wire.Message) wire.Message {
	for {
		s.mu.Lock()
		e := s.entryLocked(m.OID)
		var resp wire.Message
		if e.deleted {
			resp.SetError(types.ErrDeleted)
			s.mu.Unlock()
			return resp
		}
		if e.inline != nil {
			resp.Payload = e.inline
			resp.Size = e.size
			s.mu.Unlock()
			return resp
		}
		if len(e.prog) > 0 || !m.Wait {
			resp.Size = e.size
			resp.Locs = e.snapshotLocs()
			if len(e.prog) == 0 {
				resp.SetError(types.ErrNotFound)
			}
			s.mu.Unlock()
			return resp
		}
		ch := make(chan struct{})
		e.waiters = append(e.waiters, ch)
		s.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			var resp wire.Message
			resp.SetError(ctx.Err())
			return resp
		}
	}
}

func (s *Server) subscribe(m wire.Message, p *wire.Peer) wire.Message {
	s.mu.Lock()
	e := s.entryLocked(m.OID)
	e.subs[p] = m.Node
	var resp wire.Message
	resp.Size = e.size
	resp.Locs = e.snapshotLocs()
	resp.Payload = e.inline
	if e.deleted {
		resp.SetError(types.ErrDeleted)
	}
	s.mu.Unlock()
	oid := m.OID
	p.OnClose(func() {
		s.mu.Lock()
		if e, ok := s.entries[oid]; ok {
			delete(e.subs, p)
		}
		s.mu.Unlock()
	})
	return resp
}

func (s *Server) unsubscribe(m wire.Message, p *wire.Peer) wire.Message {
	s.mu.Lock()
	if e, ok := s.entries[m.OID]; ok {
		delete(e.subs, p)
	}
	s.mu.Unlock()
	return wire.Message{}
}

func (s *Server) delete(m wire.Message) wire.Message {
	s.mu.Lock()
	e := s.entryLocked(m.OID)
	var resp wire.Message
	resp.Locs = e.snapshotLocs()
	e.deleted = true
	e.inline = nil
	e.prog = make(map[types.NodeID]types.Progress)
	e.leasedTo = make(map[types.NodeID]types.NodeID)
	e.deps = make(map[types.NodeID]types.NodeID)
	e.wake()
	notify := s.notifyLocked(m.OID, e)
	s.mu.Unlock()
	notify()
	return resp
}

// markSpilled registers m.Node's location as disk-backed. Two callers:
// a node that just demoted its in-memory copy to the spill tier
// (downgrade from complete — the copy keeps serving pulls, only sender
// ranking changes), and a restarted node re-offering the objects found in
// its spill directory, with m.Size carrying the size learned from the
// file. Marking an object the directory has tombstoned returns
// ErrDeleted, which the caller uses to discard the stale spill file.
func (s *Server) markSpilled(m wire.Message) wire.Message {
	s.mu.Lock()
	e := s.entryLocked(m.OID)
	var resp wire.Message
	if e.deleted {
		resp.SetError(types.ErrDeleted)
		s.mu.Unlock()
		return resp
	}
	if len(e.prog) == 0 {
		// First location after none — same re-creation accounting as
		// putStarted (the restart-rediscovery path): receivers mid-retry
		// must not resume partial bytes from a previous generation.
		e.gen++
	}
	if e.size == types.SizeUnknown && m.Size >= 0 {
		e.size = m.Size
	}
	e.prog[m.Node] = types.ProgressSpilled
	e.wake()
	notify := s.notifyLocked(m.OID, e)
	s.mu.Unlock()
	notify()
	return resp
}

func (s *Server) removeLoc(m wire.Message) wire.Message {
	s.mu.Lock()
	e := s.entryLocked(m.OID)
	delete(e.prog, m.Node)
	e.wake()
	notify := s.notifyLocked(m.OID, e)
	s.mu.Unlock()
	notify()
	return wire.Message{}
}

// purgeNode drops every location and lease involving a failed node across
// all objects in the shard.
func (s *Server) purgeNode(m wire.Message) wire.Message {
	node := m.Node
	s.mu.Lock()
	var notifies []func()
	for oid, e := range s.entries {
		touched := false
		if _, ok := e.prog[node]; ok {
			delete(e.prog, node)
			touched = true
		}
		if _, ok := e.leasedTo[node]; ok {
			delete(e.leasedTo, node)
			touched = true
		}
		if up, ok := e.deps[node]; ok {
			// The failed node was fetching from up; return up's lease.
			if e.leasedTo[up] == node {
				delete(e.leasedTo, up)
			}
			delete(e.deps, node)
			touched = true
		}
		for recv, up := range e.deps {
			if up == node {
				delete(e.deps, recv)
			}
		}
		if touched {
			e.wake()
			notifies = append(notifies, s.notifyLocked(oid, e))
		}
	}
	s.mu.Unlock()
	for _, fn := range notifies {
		fn()
	}
	return wire.Message{}
}

// Stats reports shard-level counters, used by tests and the CLI.
type Stats struct {
	Objects int
	Inline  int
}

// Stats returns current shard statistics.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{Objects: len(s.entries)}
	for _, e := range s.entries {
		if e.inline != nil {
			st.Inline++
		}
	}
	return st
}
