// Package directory implements Hoplite's object directory service (§3.2):
// a sharded table mapping each ObjectID to its size and the set of node
// locations holding a partial or complete copy. It supports synchronous
// (blocking) and asynchronous (push-notification) location queries, the
// atomic sender-acquisition protocol that drives receiver-driven broadcast
// (§3.4.1), fetch-dependency tracking for cycle avoidance (§3.5.1), and the
// small-object fast path that caches payloads < 64 KB inline (§3.2).
//
// Each shard is replicated across a group of servers (see replica.go): the
// primary resolves and applies mutations and forwards them to backups,
// which serve reads and Subscribe fan-out and promote themselves in
// succession order when the primary dies. Every mutation therefore flows
// through applyLocked, a deterministic state transition on the resolved
// op, so primaries and backups converge on the same state.
package directory

import (
	"context"
	"sync"
	"time"

	"hoplite/internal/types"
	"hoplite/internal/wire"
)

// entry is the directory record for one object.
type entry struct {
	size    int64
	inline  []byte // small-object fast path payload (nil if none)
	deleted bool
	// gen counts re-creations of the object: it is bumped whenever the
	// entry gains its first location after having none. A receiver whose
	// lease generation changes across a retry must discard its partial
	// bytes instead of resuming, because the object was re-produced (for
	// example a reduce root re-executed with a different source set).
	gen int64

	// prog is the authoritative progress of every node holding a copy.
	prog map[types.NodeID]types.Progress
	// leasedTo maps a holder to the single receiver it is currently
	// sending to. A holder is an eligible sender iff it is in prog and
	// not in leasedTo — this is the paper's "remove the location from the
	// directory while it serves one receiver" rule, which caps every node
	// at one downstream receiver per object.
	leasedTo map[types.NodeID]types.NodeID
	// deps maps a receiver to the upstream sender it is currently
	// fetching from; walking deps detects cycles when choosing a sender
	// for a restarted fetch (§3.5.1).
	deps map[types.NodeID]types.NodeID

	// waiters are closed on every mutation, waking blocked Acquire calls.
	waiters []chan struct{}
	// subs receive push notifications on every mutation.
	subs map[*wire.Peer]types.NodeID
}

func newEntry() *entry {
	return &entry{
		size:     types.SizeUnknown,
		prog:     make(map[types.NodeID]types.Progress),
		leasedTo: make(map[types.NodeID]types.NodeID),
		deps:     make(map[types.NodeID]types.NodeID),
		subs:     make(map[*wire.Peer]types.NodeID),
	}
}

func (e *entry) wake() {
	for _, ch := range e.waiters {
		close(ch)
	}
	e.waiters = nil
}

func (e *entry) snapshotLocs() []types.Location {
	locs := make([]types.Location, 0, len(e.prog))
	for n, p := range e.prog {
		locs = append(locs, types.Location{Node: n, Progress: p})
	}
	return locs
}

// Server hosts this node's directory shard replicas: for every replica
// group in Config.Groups containing Config.Self, one primary-or-backup
// replica. A zero-config server (NewServer) is the legacy standalone
// mode: one unreplicated shard accepting every op.
type Server struct {
	cfg Config

	mu      sync.Mutex
	entries map[types.ObjectID]*entry
	reps    map[int]*replica
	conns   map[string]*wire.Client
	closed  bool
	// cmap is the installed cluster map (Epoch 0 = membership disabled).
	// encodedMap caches its encoding for stale-epoch bounce payloads.
	cmap       types.ClusterMap
	encodedMap []byte
	// repairing tracks in-flight re-replication pulls (see membership.go).
	repairing map[repairKey]bool

	done chan struct{}
	once sync.Once
	wg   sync.WaitGroup
}

// NewServer creates a standalone (unreplicated) shard server, the legacy
// single-shard mode. Call Handler to embed it into a control plane.
func NewServer() *Server {
	return NewReplicated(Config{})
}

// NewReplicated creates a server hosting a replica of every shard group
// in cfg.Groups that contains cfg.Self. Call Start after the control
// plane begins serving, and Close on shutdown.
func NewReplicated(cfg Config) *Server {
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = DefaultHeartbeatInterval
	}
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = DefaultLeaseTimeout
	}
	s := &Server{
		cfg:       cfg,
		entries:   make(map[types.ObjectID]*entry),
		reps:      make(map[int]*replica),
		conns:     make(map[string]*wire.Client),
		repairing: make(map[repairKey]bool),
		done:      make(chan struct{}),
	}
	if cfg.InitialMap != nil {
		s.cmap = cfg.InitialMap.Clone()
		s.encodedMap = types.EncodeClusterMap(nil, s.cmap)
	}
	for i, group := range cfg.Groups {
		selfIdx := -1
		for j, addr := range group {
			if addr == cfg.Self {
				selfIdx = j
				break
			}
		}
		if selfIdx < 0 {
			continue
		}
		r := &replica{
			shard:    i,
			group:    group,
			selfIdx:  selfIdx,
			lastBeat: time.Now(),
			pending:  make(map[int64]wire.Message),
			backups:  make(map[string]*backupState),
			dedupe:   make(map[dedupeKey]wire.Message),
		}
		for _, addr := range group {
			if addr != cfg.Self {
				r.backups[addr] = &backupState{lastSeq: -1}
			}
		}
		s.reps[i] = r
	}
	return s
}

// Close stops the replication loops and tears down replica connections.
func (s *Server) Close() {
	s.once.Do(func() { close(s.done) })
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]*wire.Client, 0, len(s.conns))
	for _, c := range s.conns {
		conns = append(conns, c)
	}
	s.conns = make(map[string]*wire.Client)
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

// Handler returns the wire handler for this shard, for embedding into a
// node's control server.
func (s *Server) Handler() wire.Handler {
	return s.handle
}

func (s *Server) entryLocked(oid types.ObjectID) *entry {
	e, ok := s.entries[oid]
	if !ok {
		e = newEntry()
		s.entries[oid] = e
	}
	return e
}

// notifyLocked builds the notification sends for e's subscribers; the
// returned closure must be invoked after releasing s.mu so that a slow
// subscriber cannot stall the shard.
func (s *Server) notifyLocked(oid types.ObjectID, e *entry) func() {
	if len(e.subs) == 0 {
		return func() {}
	}
	msg := wire.Message{
		Method:  wire.MethodNotify,
		OID:     oid,
		Size:    e.size,
		Locs:    e.snapshotLocs(),
		Payload: e.inline,
	}
	if e.deleted {
		msg.SetError(types.ErrDeleted)
	}
	peers := make([]*wire.Peer, 0, len(e.subs))
	for p := range e.subs {
		peers = append(peers, p)
	}
	return func() {
		for _, p := range peers {
			_ = p.Notify(msg)
		}
	}
}

func (s *Server) handle(ctx context.Context, m wire.Message, p *wire.Peer) wire.Message {
	switch m.Method {
	case wire.MethodPing:
		return wire.Message{Method: wire.MethodPing}
	case wire.MethodAcquire:
		return s.acquire(ctx, m)
	case wire.MethodAcquireMany:
		return s.acquireMany(m)
	case wire.MethodLookup:
		return s.lookup(ctx, m)
	case wire.MethodSubscribe:
		return s.subscribe(m, p)
	case wire.MethodUnsubscribe:
		return s.unsubscribe(m, p)
	case wire.MethodReplicate:
		return s.replicate(m, p)
	case wire.MethodDirHeartbeat:
		return s.heartbeat(m, p)
	case wire.MethodDirSnapshot:
		return s.snapshot(m)
	case wire.MethodJoin, wire.MethodDrain:
		return s.membership(m)
	case wire.MethodMapPush:
		return s.mapPush(m)
	case wire.MethodMapGet:
		return s.mapGet()
	case wire.MethodStatus:
		return s.status(m)
	case wire.MethodPutStarted, wire.MethodPutComplete, wire.MethodPutInline,
		wire.MethodRelease, wire.MethodAbort, wire.MethodAbortDown,
		wire.MethodDelete, wire.MethodRemoveLoc, wire.MethodMarkSpilled,
		wire.MethodPurgeNode:
		return s.mutate(m)
	default:
		var resp wire.Message
		resp.Err = "directory: unknown method"
		return resp
	}
}

// shardOf returns the shard index a mutation targets: derived from the
// OID, except PurgeNode and Status (no OID) which carry it in Offset, and
// the membership ops, which always resolve on the membership shard. -1
// means standalone mode (no topology).
func (s *Server) shardOf(m *wire.Message) int {
	if len(s.cfg.Groups) == 0 {
		return -1
	}
	switch m.Method {
	case wire.MethodPurgeNode, wire.MethodStatus:
		return int(m.Offset)
	case wire.MethodJoin, wire.MethodDrain:
		return membershipShard
	}
	return s.shardOfOID(m.OID)
}

// admitLocked gates a mutation: the op must target a shard replica hosted
// here, the replica must be the in-sync primary, and a retried acquire
// (same client sequence number) short-circuits to its cached response.
// ok=false means resp is final.
func (s *Server) admitLocked(m *wire.Message) (rep *replica, resp wire.Message, ok bool) {
	if s.closed {
		resp.SetError(types.ErrClosed)
		return nil, resp, false
	}
	if s.cmap.Epoch > 0 && m.Epoch > 0 && m.Epoch < s.cmap.Epoch {
		// The caller derived its routing from an older map; refresh it
		// instead of executing against a topology it no longer sees.
		return nil, s.staleMapRespLocked(), false
	}
	shard := s.shardOf(m)
	if shard < 0 {
		return nil, wire.Message{}, true // standalone: wildcard primary
	}
	rep = s.reps[shard]
	if rep == nil {
		if s.cmap.Epoch > 0 {
			// Membership mode: the shard moved away from this server (or
			// never lived here). Hand the caller the current map so it can
			// re-derive the group, whatever epoch it stamped.
			return nil, s.staleMapRespLocked(), false
		}
		resp.Err = "directory: shard not hosted here"
		return nil, resp, false
	}
	if !rep.primary || rep.needSync {
		resp.SetError(types.ErrNotPrimary)
		resp.Node = types.NodeID(rep.primaryAddr) // best-effort successor hint
		return nil, resp, false
	}
	if m.Num2 > 0 {
		if cached, hit := rep.dedupe[dedupeKey{m.Node, m.Num2}]; hit {
			return nil, cached, false
		}
	}
	return rep, wire.Message{}, true
}

// readRedirectLocked gates reads: backups serve them from replicated
// state, but an out-of-sync replica (restarted, or mid-takeover) must
// bounce the reader to a replica with authoritative state, and a reader
// stamping an older map epoch gets the current map — its routing may
// place this shard on a different group entirely.
func (s *Server) readRedirectLocked(m *wire.Message) (wire.Message, bool) {
	if s.cmap.Epoch > 0 && m.Epoch > 0 && m.Epoch < s.cmap.Epoch {
		return s.staleMapRespLocked(), true
	}
	oid := m.OID
	shard := s.shardOfOID(oid)
	if shard < 0 {
		return wire.Message{}, false
	}
	var resp wire.Message
	rep := s.reps[shard]
	if rep == nil {
		if s.cmap.Epoch > 0 {
			return s.staleMapRespLocked(), true
		}
		resp.Err = "directory: shard not hosted here"
		return resp, true
	}
	if rep.needSync || (!rep.booted && !rep.primary) {
		// Out of sync, or the boot query hasn't yet established whether
		// the shard has history elsewhere (a joiner's empty replica must
		// not answer ErrNotFound for entries the incumbents hold).
		resp.SetError(types.ErrNotPrimary)
		resp.Node = types.NodeID(rep.primaryAddr)
		return resp, true
	}
	return wire.Message{}, false
}

// mutate is the common path for every non-acquire mutation: admit,
// apply, sequence + forward to backups, reply.
func (s *Server) mutate(m wire.Message) wire.Message {
	s.mu.Lock()
	rep, resp, ok := s.admitLocked(&m)
	if !ok {
		s.mu.Unlock()
		return resp
	}
	resp, mutated, notify := s.applyLocked(m)
	var fwd func() bool
	if mutated {
		fwd = s.commitLocked(rep, m, resp)
	}
	s.mu.Unlock()
	if fwd != nil && !fwd() {
		// Deposed mid-commit: the op exists only in this replica's
		// soon-to-be-wiped history. Bounce the client to the real primary
		// instead of acknowledging a write that will vanish.
		return s.deposedResp(rep)
	}
	if notify != nil {
		notify()
	}
	return resp
}

// applyLocked performs one resolved op's deterministic state transition
// and derives its response. It runs on the primary (between resolution
// and commit) and on backups (replicated op, log replay, or promotion),
// so it must not make choices — acquires arrive with the sender already
// chosen. mutated reports whether the op changed state (and therefore
// must be sequenced and forwarded).
func (s *Server) applyLocked(m wire.Message) (resp wire.Message, mutated bool, notify func()) {
	switch m.Method {
	case wire.MethodPutStarted:
		e := s.entryLocked(m.OID)
		if e.deleted {
			// A Put after Delete recreates the object (task re-execution).
			e.deleted = false
			e.inline = nil
		}
		if len(e.prog) == 0 {
			e.gen++
		}
		e.size = m.Size
		if _, ok := e.prog[m.Node]; !ok {
			e.prog[m.Node] = types.ProgressPartial
		}
		if m.Complete {
			e.prog[m.Node] = types.ProgressComplete
		}
		e.wake()
		return resp, true, s.notifyLocked(m.OID, e)

	case wire.MethodPutComplete:
		e := s.entryLocked(m.OID)
		if e.deleted {
			resp.SetError(types.ErrDeleted)
			return resp, false, nil
		}
		e.prog[m.Node] = types.ProgressComplete
		e.wake()
		return resp, true, s.notifyLocked(m.OID, e)

	case wire.MethodPutInline:
		e := s.entryLocked(m.OID)
		e.deleted = false
		e.inline = append([]byte(nil), m.Payload...)
		e.size = int64(len(e.inline))
		e.wake()
		return resp, true, s.notifyLocked(m.OID, e)

	case wire.MethodAcquire:
		e := s.entryLocked(m.OID)
		if m.Complete {
			// Inline delivery resolved by the primary (m.Sender empty): the
			// receiver materializes a complete copy from the payload riding
			// the reply, so register it like any other holder. A later
			// Delete's snapshot then includes this receiver and the eviction
			// fan-out reaches the copy — an inline reply can no longer
			// resurrect a deleted object.
			e.prog[m.Node] = types.ProgressComplete
			resp.Payload = e.inline
			resp.Size = e.size
			resp.Gen = e.gen
			e.wake()
			return resp, true, s.notifyLocked(m.OID, e)
		}
		// m.Sender carries the sender chosen by the primary's resolution.
		e.leasedTo[m.Sender] = m.Node
		e.deps[m.Node] = m.Sender
		if _, held := e.prog[m.Node]; !held {
			e.prog[m.Node] = types.ProgressPartial
		}
		resp.Sender = m.Sender
		resp.Size = e.size
		resp.Gen = e.gen
		return resp, true, s.notifyLocked(m.OID, e)

	case wire.MethodAcquireMany:
		e := s.entryLocked(m.OID)
		if m.Complete {
			// Inline delivery: see the MethodAcquire branch above.
			e.prog[m.Node] = types.ProgressComplete
			resp.Payload = e.inline
			resp.Size = e.size
			resp.Gen = e.gen
			e.wake()
			return resp, true, s.notifyLocked(m.OID, e)
		}
		// m.Locs carries the leases chosen by the primary's resolution.
		for _, l := range m.Locs {
			e.leasedTo[l.Node] = m.Node
		}
		if _, held := e.prog[m.Node]; !held {
			e.prog[m.Node] = types.ProgressPartial
		}
		resp.Locs = m.Locs
		resp.Size = e.size
		resp.Gen = e.gen
		e.wake()
		return resp, true, s.notifyLocked(m.OID, e)

	case wire.MethodRelease:
		e := s.entryLocked(m.OID)
		if e.leasedTo[m.Sender] == m.Node {
			delete(e.leasedTo, m.Sender)
		}
		delete(e.deps, m.Node)
		if m.Complete && !e.deleted {
			e.prog[m.Node] = types.ProgressComplete
		}
		e.wake()
		return resp, true, s.notifyLocked(m.OID, e)

	case wire.MethodAbort:
		// A failed transfer: the lease is returned and, when m.Complete is
		// set (meaning "the sender is dead"), the sender's location is
		// dropped. The receiver keeps its partial copy and will re-acquire,
		// resuming from its watermark (§3.5.1).
		e := s.entryLocked(m.OID)
		if e.leasedTo[m.Sender] == m.Node {
			delete(e.leasedTo, m.Sender)
		}
		delete(e.deps, m.Node)
		if m.Complete {
			delete(e.prog, m.Sender)
		}
		e.wake()
		return resp, true, s.notifyLocked(m.OID, e)

	case wire.MethodAbortDown:
		// Sender-side failure report: the sender (m.Sender) observed its
		// receiver's (m.Node) socket die mid-transfer. The lease is
		// returned and the receiver's (possibly stale) partial location
		// dropped; a live receiver that merely lost the connection
		// re-registers itself on its next acquire.
		e := s.entryLocked(m.OID)
		if e.leasedTo[m.Sender] == m.Node {
			delete(e.leasedTo, m.Sender)
		}
		delete(e.deps, m.Node)
		if e.prog[m.Node] == types.ProgressPartial {
			delete(e.prog, m.Node)
		}
		e.wake()
		return resp, true, s.notifyLocked(m.OID, e)

	case wire.MethodDelete:
		e := s.entryLocked(m.OID)
		resp.Locs = e.snapshotLocs()
		e.deleted = true
		e.inline = nil
		e.prog = make(map[types.NodeID]types.Progress)
		e.leasedTo = make(map[types.NodeID]types.NodeID)
		e.deps = make(map[types.NodeID]types.NodeID)
		e.wake()
		return resp, true, s.notifyLocked(m.OID, e)

	case wire.MethodRemoveLoc:
		e := s.entryLocked(m.OID)
		delete(e.prog, m.Node)
		e.wake()
		return resp, true, s.notifyLocked(m.OID, e)

	case wire.MethodMarkSpilled:
		// Register m.Node's location as disk-backed. Two callers: a node
		// that just demoted its in-memory copy to the spill tier, and a
		// restarted node re-offering the objects found in its spill
		// directory, with m.Size carrying the size learned from the file.
		// Marking a tombstoned object returns ErrDeleted, which the caller
		// uses to discard the stale spill file.
		e := s.entryLocked(m.OID)
		if e.deleted {
			resp.SetError(types.ErrDeleted)
			return resp, false, nil
		}
		if len(e.prog) == 0 {
			// First location after none — same re-creation accounting as
			// PutStarted (the restart-rediscovery path): receivers
			// mid-retry must not resume partial bytes from a previous
			// generation.
			e.gen++
		}
		if e.size == types.SizeUnknown && m.Size >= 0 {
			e.size = m.Size
		}
		e.prog[m.Node] = types.ProgressSpilled
		e.wake()
		return resp, true, s.notifyLocked(m.OID, e)

	case wire.MethodPurgeNode:
		return s.applyPurgeLocked(m)

	case wire.MethodMapPush:
		// The replicated membership op: the membership primary resolved a
		// transition and ships the whole resulting map through the shard's
		// op log, so backups (and promoted successors replaying the tail)
		// install exactly the state the primary acknowledged.
		next, err := types.DecodeClusterMap(m.Payload)
		if err != nil {
			resp.SetError(err)
			return resp, false, nil
		}
		after := s.installMapLocked(next)
		resp.Epoch = s.cmap.Epoch
		// Carry the resulting map in the response: it is cached for retry
		// dedupe, and a client retrying the transition against a promoted
		// successor expects the map payload the original primary would have
		// answered with — an empty replay fails its decode.
		resp.Payload = append([]byte(nil), m.Payload...)
		return resp, true, func() {
			for _, fn := range after {
				fn()
			}
		}

	default:
		resp.Err = "directory: unknown replicated op"
		return resp, false, nil
	}
}

// applyPurgeLocked drops every location and lease involving a failed node
// across the targeted shard's entries.
func (s *Server) applyPurgeLocked(m wire.Message) (wire.Message, bool, func()) {
	node := m.Node
	shard := s.shardOf(&m)
	var notifies []func()
	for oid, e := range s.entries {
		if shard >= 0 && s.shardOfOID(oid) != shard {
			continue
		}
		touched := false
		if _, ok := e.prog[node]; ok {
			delete(e.prog, node)
			touched = true
		}
		if _, ok := e.leasedTo[node]; ok {
			delete(e.leasedTo, node)
			touched = true
		}
		// Leases the failed node held as a receiver. Multi-sender acquires
		// record no deps entry (see MethodAcquireMany), so the deps lookup
		// below cannot find them: scan by receiver instead, or a getter
		// that died between its striped acquire and its release pins the
		// sender busy forever and later blocking acquires park on it.
		for sender, recv := range e.leasedTo {
			if recv == node {
				delete(e.leasedTo, sender)
				touched = true
			}
		}
		if up, ok := e.deps[node]; ok {
			// The failed node was fetching from up; return up's lease.
			if e.leasedTo[up] == node {
				delete(e.leasedTo, up)
			}
			delete(e.deps, node)
			touched = true
		}
		for recv, up := range e.deps {
			if up == node {
				delete(e.deps, recv)
			}
		}
		if touched {
			e.wake()
			notifies = append(notifies, s.notifyLocked(oid, e))
		}
	}
	return wire.Message{}, true, func() {
		for _, fn := range notifies {
			fn()
		}
	}
}

// cyclicLocked reports whether candidate's fetch-dependency chain reaches
// receiver, which would create a cyclic object transfer.
func cyclicLocked(e *entry, candidate, receiver types.NodeID) bool {
	cur := candidate
	for i := 0; i <= len(e.deps); i++ {
		up, ok := e.deps[cur]
		if !ok {
			return false
		}
		if up == receiver {
			return true
		}
		cur = up
	}
	return true // defensive: treat unexpected longer chains as cyclic
}

// pickLocked selects an eligible sender for receiver, ranking in-memory
// complete copies over spilled (disk-backed, still whole) ones over
// partial ones (§3.4.1 extended with the spill tier): a memory sender
// streams at memory bandwidth, a spilled sender at disk bandwidth, and a
// partial sender only up to its watermark.
func pickLocked(e *entry, receiver types.NodeID) (types.NodeID, bool) {
	var best types.NodeID
	bestRank := 0 // 1 = partial, 2 = spilled, 3 = complete in memory
	for n, prog := range e.prog {
		if n == receiver {
			continue
		}
		if _, leased := e.leasedTo[n]; leased {
			continue
		}
		if cyclicLocked(e, n, receiver) {
			continue
		}
		rank := 1
		switch prog {
		case types.ProgressComplete:
			rank = 3
		case types.ProgressSpilled:
			rank = 2
		}
		if rank == 3 {
			return n, true
		}
		if rank > bestRank {
			best, bestRank = n, rank
		}
	}
	return best, bestRank > 0
}

// acquire resolves a sender for the receiver and commits the lease: the
// only blocking mutation. Each pass through the loop re-admits, so a
// replica that loses primaryship while calls are parked bounces them to
// the successor instead of leaving them waiting forever.
func (s *Server) acquire(ctx context.Context, m wire.Message) wire.Message {
	receiver := m.Node
	for {
		s.mu.Lock()
		rep, resp, ok := s.admitLocked(&m)
		if !ok {
			s.mu.Unlock()
			return resp
		}
		e := s.entryLocked(m.OID)
		switch {
		case e.deleted:
			resp.SetError(types.ErrDeleted)
			s.mu.Unlock()
			return resp
		case e.inline != nil:
			// Inline fast path: deliver the payload in the reply AND commit
			// the receiver as a complete-copy holder (replicated op, so the
			// registration survives failover and Delete's fan-out covers the
			// copy this response materializes).
			op := m
			op.Complete = true // marker: inline delivery, no sender chosen
			op.Sender = ""
			resp, _, notify := s.applyLocked(op)
			fwd := s.commitLocked(rep, op, resp)
			s.mu.Unlock()
			if fwd != nil && !fwd() {
				return s.deposedResp(rep)
			}
			if notify != nil {
				notify()
			}
			return resp
		default:
			if sender, ok := pickLocked(e, receiver); ok {
				op := m
				op.Sender = sender
				resp, _, notify := s.applyLocked(op)
				fwd := s.commitLocked(rep, op, resp)
				s.mu.Unlock()
				if fwd != nil && !fwd() {
					return s.deposedResp(rep)
				}
				if notify != nil {
					notify()
				}
				return resp
			}
		}
		if !m.Wait {
			if len(e.prog) == 0 {
				resp.SetError(types.ErrNotFound)
			} else {
				resp.SetError(types.ErrNoSender)
			}
			s.mu.Unlock()
			return resp
		}
		ch := make(chan struct{})
		e.waiters = append(e.waiters, ch)
		s.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			var resp wire.Message
			resp.SetError(ctx.Err())
			return resp
		}
	}
}

// acquireMany resolves up to m.Num eligible senders holding whole copies —
// complete in memory or spilled to disk — and commits the leases in one
// atomic step, for a striped pull that drains disjoint ranges from every
// copy concurrently. In-memory copies are leased first; disk-backed
// senders fill the remaining slots. Unlike acquire it never blocks: with
// no eligible whole copy the receiver falls back to the single-sender
// (possibly partial, possibly waiting) path. Whole-copy holders never
// fetch, so multi-leases cannot create fetch cycles and no deps entries
// are recorded; each lease is returned individually through the existing
// Release/Abort methods.
func (s *Server) acquireMany(m wire.Message) wire.Message {
	receiver := m.Node
	want := int(m.Num)
	if want < 1 {
		want = 1
	}
	s.mu.Lock()
	rep, resp, ok := s.admitLocked(&m)
	if !ok {
		s.mu.Unlock()
		return resp
	}
	e := s.entryLocked(m.OID)
	switch {
	case e.deleted:
		resp.SetError(types.ErrDeleted)
		s.mu.Unlock()
		return resp
	case e.inline != nil:
		// Inline fast path: same replicated receiver registration as the
		// single-sender acquire above.
		op := m
		op.Complete = true
		op.Sender = ""
		op.Locs = nil
		resp, _, notify := s.applyLocked(op)
		fwd := s.commitLocked(rep, op, resp)
		s.mu.Unlock()
		if fwd != nil && !fwd() {
			return s.deposedResp(rep)
		}
		if notify != nil {
			notify()
		}
		return resp
	}
	var memory, disk []types.NodeID
	for node, prog := range e.prog {
		if node == receiver || !prog.HasAll() {
			continue
		}
		if _, busy := e.leasedTo[node]; busy {
			continue
		}
		if prog == types.ProgressComplete {
			memory = append(memory, node)
		} else {
			disk = append(disk, node)
		}
	}
	var leased []types.Location
	for _, tier := range [2][]types.NodeID{memory, disk} {
		for _, node := range tier {
			if len(leased) == want {
				break
			}
			leased = append(leased, types.Location{Node: node, Progress: e.prog[node]})
		}
	}
	if len(leased) == 0 {
		if len(e.prog) == 0 {
			resp.SetError(types.ErrNotFound)
		} else {
			resp.SetError(types.ErrNoSender)
		}
		s.mu.Unlock()
		return resp
	}
	op := m
	op.Locs = leased
	resp, _, notify := s.applyLocked(op)
	fwd := s.commitLocked(rep, op, resp)
	s.mu.Unlock()
	if fwd != nil && !fwd() {
		return s.deposedResp(rep)
	}
	if notify != nil {
		notify()
	}
	return resp
}

func (s *Server) lookup(ctx context.Context, m wire.Message) wire.Message {
	for {
		s.mu.Lock()
		if redirect, ok := s.readRedirectLocked(&m); ok {
			s.mu.Unlock()
			return redirect
		}
		e := s.entryLocked(m.OID)
		var resp wire.Message
		if e.deleted {
			resp.SetError(types.ErrDeleted)
			s.mu.Unlock()
			return resp
		}
		if e.inline != nil {
			resp.Payload = e.inline
			resp.Size = e.size
			s.mu.Unlock()
			return resp
		}
		if len(e.prog) > 0 || !m.Wait {
			resp.Size = e.size
			resp.Locs = e.snapshotLocs()
			if len(e.prog) == 0 {
				resp.SetError(types.ErrNotFound)
			}
			s.mu.Unlock()
			return resp
		}
		ch := make(chan struct{})
		e.waiters = append(e.waiters, ch)
		s.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			var resp wire.Message
			resp.SetError(ctx.Err())
			return resp
		}
	}
}

func (s *Server) subscribe(m wire.Message, p *wire.Peer) wire.Message {
	s.mu.Lock()
	if redirect, ok := s.readRedirectLocked(&m); ok {
		s.mu.Unlock()
		return redirect
	}
	e := s.entryLocked(m.OID)
	e.subs[p] = m.Node
	var resp wire.Message
	resp.Size = e.size
	resp.Locs = e.snapshotLocs()
	resp.Payload = e.inline
	if e.deleted {
		resp.SetError(types.ErrDeleted)
	}
	s.mu.Unlock()
	oid := m.OID
	p.OnClose(func() {
		s.mu.Lock()
		if e, ok := s.entries[oid]; ok {
			delete(e.subs, p)
		}
		s.mu.Unlock()
	})
	return resp
}

func (s *Server) unsubscribe(m wire.Message, p *wire.Peer) wire.Message {
	s.mu.Lock()
	if e, ok := s.entries[m.OID]; ok {
		delete(e.subs, p)
	}
	s.mu.Unlock()
	return wire.Message{}
}

// Stats reports shard-level counters, used by tests and the CLI.
type Stats struct {
	Objects int
	Inline  int
}

// Stats returns current shard statistics.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{Objects: len(s.entries)}
	for _, e := range s.entries {
		if e.inline != nil {
			st.Inline++
		}
	}
	return st
}

// Primary reports whether this server currently acts as the primary for
// the given shard (always true in standalone mode); used by tests and
// tools.
func (s *Server) Primary(shard int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.cfg.Groups) == 0 {
		return true
	}
	r := s.reps[shard]
	return r != nil && r.primary
}

// ShardSeq returns the replica's (epoch, applied sequence) for a shard;
// used by tests.
func (s *Server) ShardSeq(shard int) (epoch, seq int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r := s.reps[shard]; r != nil {
		return r.epoch, r.seq
	}
	return 0, 0
}
