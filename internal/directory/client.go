package directory

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hoplite/internal/types"
	"hoplite/internal/wire"
)

// failoverBackoff is how long a caller waits after unsuccessfully cycling
// through a shard's whole replica group before trying again — roughly the
// promotion detection granularity.
const failoverBackoff = 30 * time.Millisecond

// Update is a push notification about an object's directory record,
// delivered to Subscribe callbacks (the paper's asynchronous location
// query, §3.2).
type Update struct {
	OID     types.ObjectID
	Size    int64
	Locs    []types.Location
	Inline  []byte
	Deleted bool
}

// Dialer connects to a directory shard address.
type Dialer func(ctx context.Context, addr string) (net.Conn, error)

// subscription is one registered Subscribe/Watch callback.
type subscription struct {
	id int
	fn func(Update)
}

// Client talks to every shard of the directory on behalf of one node.
// Each shard is a replica group: mutations go to the current primary and
// fail over in succession order on connection errors (retried acquires
// carry a per-client op sequence number, so the promoted backup returns
// the committed lease instead of granting a second one); reads spread
// across the replicas. It is safe for concurrent use.
type Client struct {
	self      types.NodeID
	numShards int // fixed for the cluster's lifetime, even as groups move
	dial      Dialer

	opSeq atomic.Int64 // per-client mutation sequence for acquire dedupe
	calls atomic.Int64 // RPC attempts issued to shard replicas

	mu          sync.Mutex
	groups      [][]string       // per-shard replica addresses; re-derived on map installs
	cmap        types.ClusterMap // installed cluster map (Epoch 0 = membership disabled)
	onMap       func(types.ClusterMap)
	batch       wire.BatchConfig // write batching for shard connections
	retiredWire wire.BatchStats  // batching counters of closed connections
	conns       map[string]*wire.Client
	primary     []int // per-shard guess of the current primary's group index
	readAt      []int // per-shard replica index currently serving reads
	closed      bool
	done        chan struct{}

	subMu   sync.Mutex
	subs    map[types.ObjectID][]subscription
	subAddr map[types.ObjectID]string // replica currently pushing for each oid
	nextSub int
}

// NewClient creates a directory client against unreplicated shards:
// shards lists every shard server address; an object's shard is
// oid.Shard(len(shards)). It is the single-replica form of NewReplicated.
func NewClient(self types.NodeID, shards []string, dial Dialer) *Client {
	groups := make([][]string, len(shards))
	for i, s := range shards {
		groups[i] = []string{s}
	}
	return NewReplicatedClient(self, groups, dial)
}

// NewReplicatedClient creates a directory client for a node against a
// replicated directory: groups[i] lists shard i's replica addresses in
// succession order. An object's shard is oid.Shard(len(groups)).
func NewReplicatedClient(self types.NodeID, groups [][]string, dial Dialer) *Client {
	c := &Client{
		self:      self,
		numShards: len(groups),
		groups:    groups,
		dial:      dial,
		conns:     make(map[string]*wire.Client),
		primary:   make([]int, len(groups)),
		readAt:    make([]int, len(groups)),
		done:      make(chan struct{}),
		subs:      make(map[types.ObjectID][]subscription),
		subAddr:   make(map[types.ObjectID]string),
	}
	// Spread read traffic: each client starts its reads at a replica
	// derived from its own identity instead of hammering the primary.
	h := fnv.New32a()
	h.Write([]byte(self))
	for i, g := range groups {
		// Modulo in uint32: int(h.Sum32()) is negative for high hashes
		// on 32-bit platforms, and Go's % preserves the sign.
		c.readAt[i] = int(h.Sum32() % uint32(len(g)))
	}
	// The retry-dedupe key is (NodeID, op seq), and a restarted node
	// reuses its NodeID: starting every incarnation at seq 1 would make
	// its first ops collide with its previous life's cached responses.
	// Seed the sequence space at a random positive origin so each
	// incarnation occupies its own range.
	var seed [8]byte
	if _, err := crand.Read(seed[:]); err == nil {
		c.opSeq.Store(int64(binary.BigEndian.Uint64(seed[:]) >> 2)) // positive, headroom to count up
	}
	return c
}

// SetBatchConfig sets the write-batching config used for shard
// connections. Call it before the first RPC; connections already
// established keep their old config.
func (c *Client) SetBatchConfig(cfg wire.BatchConfig) {
	c.mu.Lock()
	c.batch = cfg
	c.mu.Unlock()
}

// ClientStats is a snapshot of the client's control-plane activity, used
// by the fast-path tests ("a warm cached Get issues zero directory RPCs")
// and the QPS benchmark.
type ClientStats struct {
	Calls int64           // RPC attempts issued to shard replicas
	Wire  wire.BatchStats // write batching aggregated across shard connections
}

// Stats snapshots the client's RPC and write-batching counters, including
// connections that have since been dropped.
func (c *Client) Stats() ClientStats {
	st := ClientStats{Calls: c.calls.Load()}
	c.mu.Lock()
	st.Wire = c.retiredWire
	for _, wc := range c.conns {
		st.Wire.Add(wc.BatchStats())
	}
	c.mu.Unlock()
	return st
}

// NumShards returns the number of directory shards. Shard count is fixed
// for the cluster's lifetime — membership changes move groups, not shards.
func (c *Client) NumShards() int { return c.numShards }

// Self returns the node this client acts for.
func (c *Client) Self() types.NodeID { return c.self }

func (c *Client) shardOf(oid types.ObjectID) int {
	return oid.Shard(c.numShards)
}

// OnMap registers fn to run (outside client locks) whenever a newer
// cluster map is installed. At most one callback; nil clears it.
func (c *Client) OnMap(fn func(types.ClusterMap)) {
	c.mu.Lock()
	c.onMap = fn
	c.mu.Unlock()
}

// Map returns the currently installed cluster map (Epoch 0 when
// membership is disabled or no map has been installed yet).
func (c *Client) Map() types.ClusterMap {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cmap.Clone()
}

// InstallMap installs a newer cluster map and re-derives the per-shard
// replica groups used for routing. It reports whether the map was
// installed: false when it is not newer than the current one, when its
// shard count does not match this cluster, or when any derived group is
// empty. Requests routed from here on are stamped with the new epoch.
func (c *Client) InstallMap(m types.ClusterMap) bool {
	groups := m.DeriveGroups()
	if len(groups) != c.numShards {
		return false
	}
	for _, g := range groups {
		if len(g) == 0 {
			return false
		}
	}
	c.mu.Lock()
	if c.closed || m.Epoch <= c.cmap.Epoch {
		c.mu.Unlock()
		return false
	}
	c.cmap = m.Clone()
	c.groups = groups
	onMap := c.onMap
	cm := c.cmap.Clone()
	c.mu.Unlock()
	if onMap != nil {
		onMap(cm)
	}
	return true
}

func (c *Client) connTo(ctx context.Context, addr string) (*wire.Client, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, types.ErrClosed
	}
	if wc, ok := c.conns[addr]; ok {
		c.mu.Unlock()
		return wc, nil
	}
	c.mu.Unlock()

	c.mu.Lock()
	batch := c.batch
	c.mu.Unlock()
	nc, err := c.dial(ctx, addr)
	if err != nil {
		return nil, fmt.Errorf("directory: dial shard %s: %w", addr, err)
	}
	wc := wire.NewClientWith(nc, c.onNotify, batch)
	wc.OnOrphan(c.compensateOrphan)
	wc.OnDown(func() { c.connDown(addr, wc) })

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		wc.Close()
		return nil, types.ErrClosed
	}
	if existing, ok := c.conns[addr]; ok {
		c.mu.Unlock()
		wc.Close()
		return existing, nil
	}
	c.conns[addr] = wc
	c.mu.Unlock()
	return wc, nil
}

func (c *Client) dropConn(addr string, wc *wire.Client) {
	c.mu.Lock()
	if c.conns[addr] == wc {
		delete(c.conns, addr)
		c.retiredWire.Add(wc.BatchStats())
	}
	c.mu.Unlock()
	wc.Close()
}

func (c *Client) onNotify(m wire.Message) {
	u := Update{OID: m.OID, Size: m.Size, Locs: m.Locs, Inline: m.Payload}
	if err := m.ErrorOf(); err == types.ErrDeleted {
		u.Deleted = true
	}
	c.deliver(m.OID, u)
}

func (c *Client) deliver(oid types.ObjectID, u Update) {
	c.subMu.Lock()
	fns := make([]func(Update), 0, len(c.subs[oid]))
	for _, sub := range c.subs[oid] {
		fns = append(fns, sub.fn)
	}
	c.subMu.Unlock()
	for _, fn := range fns {
		fn(u)
	}
}

// compensateOrphan undoes grants delivered to calls whose requester gave
// up before the response arrived (ctx canceled mid-acquire). Without it,
// an acquire racing a cancellation can lease a sender to a receiver that
// will never pull, and with no lease expiry the object wedges: every
// later Get blocks behind a lease nobody returns. The granted lease is
// returned and this node's phantom partial location dropped, exactly as
// if the sender had observed our socket die (§5.5).
func (c *Client) compensateOrphan(req, resp wire.Message) {
	if resp.ErrorOf() != nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	switch req.Method {
	case wire.MethodAcquire:
		if resp.Sender != "" && resp.Payload == nil {
			_, _ = c.call(ctx, wire.Message{Method: wire.MethodAbortDown, OID: req.OID, Node: c.self, Sender: resp.Sender})
		}
	case wire.MethodAcquireMany:
		// AbortDown (not Abort) for the same reason as the single-acquire
		// branch: acquireMany also registered us as a phantom partial
		// location, which must be dropped along with each lease.
		for _, l := range resp.Locs {
			_, _ = c.call(ctx, wire.Message{Method: wire.MethodAbortDown, OID: req.OID, Node: c.self, Sender: l.Node})
		}
	}
}

// connDown reacts to a replica connection dying: drop it from the cache
// and move every push subscription it carried onto a live replica, so
// reduce coordinators and other passive subscribers keep receiving
// updates without ever issuing another call on the dead connection.
func (c *Client) connDown(addr string, wc *wire.Client) {
	c.dropConn(addr, wc)
	c.subMu.Lock()
	var lost []types.ObjectID
	for oid, a := range c.subAddr {
		if a == addr && len(c.subs[oid]) > 0 {
			lost = append(lost, oid)
		}
	}
	c.subMu.Unlock()
	if len(lost) == 0 {
		return
	}
	go func() {
		for _, oid := range lost {
			c.resubscribe(oid)
		}
	}()
}

// resubscribe re-establishes the push subscription for oid on a live
// replica and delivers the record returned by the new subscription as a
// synthetic update, so no location transition is missed across the
// switch.
func (c *Client) resubscribe(oid types.ObjectID) {
	backoff := 20 * time.Millisecond
	for {
		c.subMu.Lock()
		alive := len(c.subs[oid]) > 0
		c.subMu.Unlock()
		if !alive {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		resp, addr, err := c.readCall(ctx, wire.Message{Method: wire.MethodSubscribe, OID: oid, Node: c.self})
		cancel()
		if err == nil || errors.Is(err, types.ErrDeleted) {
			c.subMu.Lock()
			c.subAddr[oid] = addr
			c.subMu.Unlock()
			c.deliver(oid, Update{
				OID: oid, Size: resp.Size, Locs: resp.Locs,
				Inline: resp.Payload, Deleted: errors.Is(err, types.ErrDeleted),
			})
			return
		}
		if errors.Is(err, types.ErrClosed) {
			return
		}
		select {
		case <-time.After(backoff):
		case <-c.done:
			return
		}
		if backoff *= 2; backoff > time.Second {
			backoff = time.Second
		}
	}
}

// call routes one mutation to its shard's current primary with failover.
// Every mutation whose Node field carries the calling client is stamped
// with a fresh per-client op sequence number before the first attempt,
// so a retry is recognizably the same logical op: the shard dedupes on
// (client, seq) and a response that died with the old primary — a lease
// grant, a Delete's location list — is returned, not re-executed, by
// its successor. AbortDownstream is exempt: its Node field names the
// receiver, not the caller, so (Node, seq) is not a safe key — and the
// op is idempotent under re-execution anyway.
func (c *Client) call(ctx context.Context, m wire.Message) (wire.Message, error) {
	if m.Method != wire.MethodAbortDown {
		m.Num2 = c.opSeq.Add(1)
	}
	resp, _, err := c.route(ctx, c.shardOf(m.OID), m, false)
	return resp, err
}

func (c *Client) callShard(ctx context.Context, shard int, m wire.Message) (wire.Message, error) {
	resp, _, err := c.route(ctx, shard, m, false)
	return resp, err
}

// readCall routes a read (Lookup/Subscribe) across the shard's replicas,
// starting from this client's spread-assigned replica. It returns the
// address that served the call, so subscriptions can be re-homed if that
// replica dies.
func (c *Client) readCall(ctx context.Context, m wire.Message) (wire.Message, string, error) {
	return c.route(ctx, c.shardOf(m.OID), m, true)
}

// route is the shared failover loop: try the shard's replicas starting
// from the remembered index (the believed primary for mutations, the
// spread-assigned replica for reads), advancing on connection errors and
// ErrNotPrimary bounces — following a bounce's primary hint — and
// backing off one promotion window after each full unsuccessful cycle.
// A cycle in which no replica was even dialable fails the call: a live
// shard always has a dialable replica, so total unreachability means
// this node is the dead or partitioned side.
//
// With membership enabled every request is stamped with the installed
// map's epoch (a field on a call already being made — no extra round
// trip). An ErrStaleMap bounce carries the replica's newer map: install
// it, re-derive the group, and retry against the new topology.
func (c *Client) route(ctx context.Context, shard int, m wire.Message, read bool) (wire.Message, string, error) {
	slot := func() *int {
		if read {
			return &c.readAt[shard]
		}
		return &c.primary[shard]
	}
	c.mu.Lock()
	group := c.groups[shard]
	m.Epoch = c.cmap.Epoch
	idx := *slot()
	c.mu.Unlock()
	var lastErr error
	reached := false // any replica dialable in the current cycle
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return wire.Message{}, "", lastErr
			}
			return wire.Message{}, "", err
		}
		addr := group[idx%len(group)]
		wc, err := c.connTo(ctx, addr)
		if err == nil {
			reached = true
			c.calls.Add(1)
			var resp wire.Message
			resp, err = wc.Call(ctx, m)
			if err == nil {
				rerr := resp.ErrorOf()
				switch {
				case errors.Is(rerr, types.ErrStaleMap):
					// The replica runs a newer cluster map (or the shard
					// moved off it). Install the map it handed back and
					// retry with the re-derived group.
					if next, derr := types.DecodeClusterMap(resp.Payload); derr == nil {
						c.InstallMap(next)
					}
					c.mu.Lock()
					group = c.groups[shard]
					m.Epoch = c.cmap.Epoch
					c.mu.Unlock()
					lastErr = rerr
				case !errors.Is(rerr, types.ErrNotPrimary):
					c.mu.Lock()
					*slot() = idx % len(group)
					c.mu.Unlock()
					return resp, addr, rerr
				default:
					// Bounced off a backup (or an out-of-sync replica):
					// follow its primary hint if it names another replica,
					// otherwise try the next in order.
					if hint := string(resp.Node); hint != "" {
						for j, a := range group {
							if a == hint && j != idx%len(group) {
								idx = j - 1 // advanced below
								break
							}
						}
					}
					lastErr = rerr
				}
			} else {
				if ctx.Err() != nil {
					return wire.Message{}, "", ctx.Err()
				}
				c.dropConn(addr, wc)
				lastErr = err
			}
		} else {
			if errors.Is(err, types.ErrClosed) {
				return wire.Message{}, "", err
			}
			lastErr = err
		}
		idx++
		if (attempt+1)%len(group) == 0 {
			if !reached {
				return wire.Message{}, "", lastErr
			}
			reached = false
			select {
			case <-time.After(failoverBackoff):
			case <-ctx.Done():
				return wire.Message{}, "", lastErr
			case <-c.done:
				return wire.Message{}, "", types.ErrClosed
			}
		}
	}
}

// PutStarted registers a partial location: node began creating the object
// (a local Put copy or an inbound remote transfer). The directory learns
// the object size here, enabling pipelined downstream fetches before the
// copy finishes (§3.3).
func (c *Client) PutStarted(ctx context.Context, oid types.ObjectID, size int64) error {
	_, err := c.call(ctx, wire.Message{Method: wire.MethodPutStarted, OID: oid, Node: c.self, Size: size})
	return err
}

// PutComplete upgrades this node's location to complete.
func (c *Client) PutComplete(ctx context.Context, oid types.ObjectID) error {
	_, err := c.call(ctx, wire.Message{Method: wire.MethodPutComplete, OID: oid, Node: c.self})
	return err
}

// PutInline stores a small object's payload directly in the directory
// (§3.2, "optimization for small objects").
func (c *Client) PutInline(ctx context.Context, oid types.ObjectID, payload []byte) error {
	// Node carries the caller so the retry-dedupe key (client, seq) is
	// client-unique; the inline apply itself does not use it.
	_, err := c.call(ctx, wire.Message{Method: wire.MethodPutInline, OID: oid, Node: c.self, Payload: payload})
	return err
}

// Lease is the result of AcquireSender: either an inline payload (small
// objects) or a leased sender to pull from.
type Lease struct {
	Sender types.NodeID
	Size   int64
	Gen    int64
	Inline []byte
}

// AcquireSender atomically picks an eligible sender holding the object
// (preferring complete copies), removes it from the available set,
// registers this node as a partial location, and records the fetch
// dependency. If wait is true the call blocks until a sender is available.
func (c *Client) AcquireSender(ctx context.Context, oid types.ObjectID, wait bool) (Lease, error) {
	resp, err := c.call(ctx, wire.Message{Method: wire.MethodAcquire, OID: oid, Node: c.self, Wait: wait})
	if err != nil {
		return Lease{}, err
	}
	return Lease{Sender: resp.Sender, Size: resp.Size, Gen: resp.Gen, Inline: resp.Payload}, nil
}

// MultiLease is the result of AcquireSenders: either an inline payload
// (small objects) or up to max leased senders, each holding a complete
// copy, for a striped pull.
type MultiLease struct {
	Senders []types.NodeID
	Size    int64
	Gen     int64
	Inline  []byte
}

// AcquireSenders atomically leases up to max eligible senders holding
// complete copies of the object and registers this node as a partial
// location. It never blocks: with no eligible complete copy it returns
// ErrNoSender (or ErrNotFound when the object has no locations at all),
// and the caller falls back to the blocking single-sender AcquireSender.
// Each leased sender is returned individually via ReleaseSender or
// AbortTransfer.
func (c *Client) AcquireSenders(ctx context.Context, oid types.ObjectID, max int) (MultiLease, error) {
	resp, err := c.call(ctx, wire.Message{Method: wire.MethodAcquireMany, OID: oid, Node: c.self, Num: int64(max)})
	if err != nil {
		return MultiLease{}, err
	}
	ml := MultiLease{Size: resp.Size, Gen: resp.Gen, Inline: resp.Payload}
	for _, l := range resp.Locs {
		ml.Senders = append(ml.Senders, l.Node)
	}
	return ml, nil
}

// ReleaseSender returns a leased sender after a successful transfer and,
// when complete, marks this node as holding a complete copy.
func (c *Client) ReleaseSender(ctx context.Context, oid types.ObjectID, sender types.NodeID, complete bool) error {
	_, err := c.call(ctx, wire.Message{Method: wire.MethodRelease, OID: oid, Node: c.self, Sender: sender, Complete: complete})
	return err
}

// AbortTransfer returns a leased sender after a failed transfer. When
// senderDead is true the sender's location is dropped from the directory
// so no other receiver is routed to it.
func (c *Client) AbortTransfer(ctx context.Context, oid types.ObjectID, sender types.NodeID, senderDead bool) error {
	_, err := c.call(ctx, wire.Message{Method: wire.MethodAbort, OID: oid, Node: c.self, Sender: sender, Complete: senderDead})
	return err
}

// AbortDownstream reports, from the sender side, that the receiver's
// socket died mid-transfer: the lease is returned and the receiver's
// partial location dropped (§5.5 failure detection via socket liveness).
func (c *Client) AbortDownstream(ctx context.Context, oid types.ObjectID, receiver types.NodeID) error {
	_, err := c.call(ctx, wire.Message{Method: wire.MethodAbortDown, OID: oid, Node: receiver, Sender: c.self})
	return err
}

// MarkSpilled registers this node's location for oid as disk-backed: the
// in-memory copy was demoted to the spill tier, or a restarted node is
// re-offering an object rediscovered in its spill directory (size then
// comes from the file; pass types.SizeUnknown to leave the recorded size
// alone). A spilled location still serves pulls — the planner merely
// prefers in-memory senders. ErrDeleted means the object was tombstoned
// while spilled; the caller should discard the stale file.
func (c *Client) MarkSpilled(ctx context.Context, oid types.ObjectID, size int64) error {
	_, err := c.call(ctx, wire.Message{Method: wire.MethodMarkSpilled, OID: oid, Node: c.self, Size: size})
	return err
}

// Record is a Lookup result.
type Record struct {
	Size   int64
	Locs   []types.Location
	Inline []byte
}

// Lookup returns the current directory record. With wait set, it blocks
// until the object has at least one location (synchronous location query,
// §3.2). Lookups are served by any in-sync replica of the shard.
func (c *Client) Lookup(ctx context.Context, oid types.ObjectID, wait bool) (Record, error) {
	resp, _, err := c.readCall(ctx, wire.Message{Method: wire.MethodLookup, OID: oid, Wait: wait})
	if err != nil {
		return Record{}, err
	}
	return Record{Size: resp.Size, Locs: resp.Locs, Inline: resp.Payload}, nil
}

// Subscribe registers fn for push notifications about oid and returns the
// current record immediately. The subscription lives until Unsubscribe or
// client close. Subscriptions are served by any in-sync replica — backups
// fan out the updates they apply — and are transparently re-homed onto a
// live replica when the serving one dies.
func (c *Client) Subscribe(ctx context.Context, oid types.ObjectID, fn func(Update)) (Record, error) {
	rec, _, err := c.watch(ctx, oid, fn)
	return rec, err
}

// Watch is Subscribe with an individually removable callback: the
// returned cancel removes just this registration (telling the shard to
// stop pushing only when no other local callback for oid remains).
func (c *Client) Watch(ctx context.Context, oid types.ObjectID, fn func(Update)) (Record, func(), error) {
	rec, id, err := c.watch(ctx, oid, fn)
	cancel := func() { c.unwatch(oid, id) }
	return rec, cancel, err
}

func (c *Client) watch(ctx context.Context, oid types.ObjectID, fn func(Update)) (Record, int, error) {
	c.subMu.Lock()
	c.nextSub++
	id := c.nextSub
	c.subs[oid] = append(c.subs[oid], subscription{id: id, fn: fn})
	c.subMu.Unlock()
	resp, addr, err := c.readCall(ctx, wire.Message{Method: wire.MethodSubscribe, OID: oid, Node: c.self})
	if err != nil && !errors.Is(err, types.ErrDeleted) {
		c.unwatch(oid, id) // the shard never learned of this registration
		return Record{}, id, err
	}
	c.subMu.Lock()
	c.subAddr[oid] = addr
	c.subMu.Unlock()
	rec := Record{Size: resp.Size, Locs: resp.Locs, Inline: resp.Payload}
	if errors.Is(err, types.ErrDeleted) {
		return rec, id, types.ErrDeleted
	}
	return rec, id, nil
}

func (c *Client) unwatch(oid types.ObjectID, id int) {
	c.subMu.Lock()
	subs := c.subs[oid]
	for i, sub := range subs {
		if sub.id == id {
			subs = append(subs[:i], subs[i+1:]...)
			break
		}
	}
	var addr string
	if len(subs) == 0 {
		delete(c.subs, oid)
		addr = c.subAddr[oid]
		delete(c.subAddr, oid)
	} else {
		c.subs[oid] = subs
	}
	c.subMu.Unlock()
	if addr != "" {
		c.wireUnsubscribe(oid, addr)
	}
}

// Unsubscribe removes all local callbacks for oid and tells the shard to
// stop pushing.
func (c *Client) Unsubscribe(ctx context.Context, oid types.ObjectID) error {
	c.subMu.Lock()
	delete(c.subs, oid)
	addr := c.subAddr[oid]
	delete(c.subAddr, oid)
	c.subMu.Unlock()
	if addr != "" {
		c.wireUnsubscribe(oid, addr)
	}
	return nil
}

// wireUnsubscribe tells the replica that was pushing for oid to stop,
// best effort: if it is unreachable its peer teardown drops the
// subscription anyway.
func (c *Client) wireUnsubscribe(oid types.ObjectID, addr string) {
	c.mu.Lock()
	wc := c.conns[addr]
	c.mu.Unlock()
	if wc == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	c.calls.Add(1)
	_, _ = wc.Call(ctx, wire.Message{Method: wire.MethodUnsubscribe, OID: oid, Node: c.self})
}

// Delete marks the object deleted and returns the locations that held
// copies, so the caller can evict them from the node stores (§6).
func (c *Client) Delete(ctx context.Context, oid types.ObjectID) ([]types.Location, error) {
	// Node carries the caller so the retry-dedupe key (client, seq) is
	// client-unique: a Delete retried across a primary failover must get
	// the original location list back (for the eviction fan-out), not a
	// re-execution's empty one.
	resp, err := c.call(ctx, wire.Message{Method: wire.MethodDelete, OID: oid, Node: c.self})
	if err != nil {
		return nil, err
	}
	return resp.Locs, nil
}

// RemoveLocation drops this node's location for oid (store eviction).
func (c *Client) RemoveLocation(ctx context.Context, oid types.ObjectID) error {
	_, err := c.call(ctx, wire.Message{Method: wire.MethodRemoveLoc, OID: oid, Node: c.self})
	return err
}

// PurgeNode removes every location and lease involving node from all
// shards; used when a node failure is detected.
func (c *Client) PurgeNode(ctx context.Context, node types.NodeID) error {
	var firstErr error
	for shard := 0; shard < c.numShards; shard++ {
		_, err := c.callShard(ctx, shard, wire.Message{
			Method: wire.MethodPurgeNode,
			Node:   node,
			Offset: int64(shard),
		})
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// membershipCall routes a join/drain transition to the membership shard's
// primary and installs the map the response carries.
func (c *Client) membershipCall(ctx context.Context, m wire.Message) (types.ClusterMap, error) {
	m.Num2 = c.opSeq.Add(1)
	resp, _, err := c.route(ctx, membershipShard, m, false)
	if err != nil {
		return types.ClusterMap{}, err
	}
	cm, derr := types.DecodeClusterMap(resp.Payload)
	if derr != nil {
		return types.ClusterMap{}, derr
	}
	c.InstallMap(cm)
	return cm, nil
}

// JoinNode registers node in the cluster map on its behalf — a client-side
// wrapper over the same transition a joining node's own Join performs.
// Idempotent; useful for re-registering a node that was declared dead by
// mistake.
func (c *Client) JoinNode(ctx context.Context, node types.NodeID, shardHost bool) (types.ClusterMap, error) {
	return c.membershipCall(ctx, wire.Message{Method: wire.MethodJoin, Node: node, Complete: shardHost})
}

// DrainNode marks node draining: it leaves every shard group, stops being
// a re-replication target, and the repair scanner starts copying its sole
// copies out. The node itself leaves the map later via DrainFinished.
func (c *Client) DrainNode(ctx context.Context, node types.NodeID) (types.ClusterMap, error) {
	return c.membershipCall(ctx, wire.Message{Method: wire.MethodDrain, Node: node, Num: DrainStart})
}

// DrainFinished removes a drained node from the map; called by the node
// itself once it holds no sole copies and hosts no shard replicas.
func (c *Client) DrainFinished(ctx context.Context, node types.NodeID) (types.ClusterMap, error) {
	return c.membershipCall(ctx, wire.Message{Method: wire.MethodDrain, Node: node, Num: DrainFinish})
}

// DeclareDead removes a permanently lost node from the map: its directory
// locations are purged and the repair scanner restores the replication
// factor from the surviving copies. Failure detection stays explicit —
// the paper's socket-liveness model handles transient faults, and only an
// operator (or test harness) decides a node is truly gone.
func (c *Client) DeclareDead(ctx context.Context, node types.NodeID) (types.ClusterMap, error) {
	return c.membershipCall(ctx, wire.Message{Method: wire.MethodDrain, Node: node, Num: DrainDead})
}

// FetchMap fetches and installs the cluster map from any membership-shard
// replica.
func (c *Client) FetchMap(ctx context.Context) (types.ClusterMap, error) {
	resp, _, err := c.route(ctx, membershipShard, wire.Message{Method: wire.MethodMapGet}, true)
	if err != nil {
		return types.ClusterMap{}, err
	}
	cm, derr := types.DecodeClusterMap(resp.Payload)
	if derr != nil {
		return types.ClusterMap{}, derr
	}
	c.InstallMap(cm)
	return cm, nil
}

// ShardStatus is one shard's membership observability snapshot, answered
// by the shard's primary.
type ShardStatus struct {
	Shard      int
	Primary    types.NodeID // replica that answered — the shard's primary
	Epoch      int64        // shard succession epoch
	Objects    int          // live entries in the shard
	Under      int          // entries below the effective replication factor
	SoleCopies int          // entries whose only active whole copy is on the queried node
}

// ClusterStatus aggregates every shard's status plus the cluster map.
type ClusterStatus struct {
	Map    types.ClusterMap
	Shards []ShardStatus
}

// Status queries every shard's primary for membership observability. When
// node is non-empty, each shard also counts the objects whose only active
// whole copy sits on it (the drain-safety number).
func (c *Client) Status(ctx context.Context, node types.NodeID) (ClusterStatus, error) {
	var st ClusterStatus
	for shard := 0; shard < c.numShards; shard++ {
		resp, addr, err := c.route(ctx, shard, wire.Message{
			Method: wire.MethodStatus,
			Offset: int64(shard),
			Node:   node,
		}, false)
		if err != nil {
			return st, err
		}
		st.Shards = append(st.Shards, ShardStatus{
			Shard:      shard,
			Primary:    types.NodeID(addr),
			Epoch:      resp.Gen,
			Objects:    int(resp.Size),
			Under:      int(resp.Num),
			SoleCopies: int(resp.Offset),
		})
		if st.Map.Epoch == 0 && len(resp.Payload) > 0 {
			if cm, derr := types.DecodeClusterMap(resp.Payload); derr == nil {
				st.Map = cm
				c.InstallMap(cm)
			}
		}
	}
	return st, nil
}

// UnderReplicated sums the under-replicated object count across shards.
func (c *Client) UnderReplicated(ctx context.Context) (int, error) {
	st, err := c.Status(ctx, "")
	if err != nil {
		return 0, err
	}
	n := 0
	for _, sh := range st.Shards {
		n += sh.Under
	}
	return n, nil
}

// SoleCopies sums, across shards, the objects whose only active whole
// copy sits on node. A draining node waits for zero before leaving.
func (c *Client) SoleCopies(ctx context.Context, node types.NodeID) (int, error) {
	st, err := c.Status(ctx, node)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, sh := range st.Shards {
		n += sh.SoleCopies
	}
	return n, nil
}

// Join dials seed control addresses and asks the cluster's membership
// primary to add self to the map, returning the map that includes it. It
// is a free function because the joiner has no directory client yet — the
// returned map is what it builds one from. ErrNotPrimary hints and
// ErrStaleMap bounces extend the candidate list, and unreachable seeds
// are retried until ctx expires, so one reachable seed suffices.
func Join(ctx context.Context, dial Dialer, seeds []string, self types.NodeID, shardHost bool, locality string) (types.ClusterMap, error) {
	if len(seeds) == 0 {
		return types.ClusterMap{}, errors.New("directory: join requires at least one seed address")
	}
	req := wire.Message{Method: wire.MethodJoin, Node: self, Complete: shardHost, Payload: []byte(locality)}
	// Never join through our own address: a rejoining node's hint chain can
	// point back at its previous life (it may have been the membership
	// primary), and its own half-started listener would swallow the call.
	var targets []string
	for _, s := range seeds {
		if s != string(self) {
			targets = append(targets, s)
		}
	}
	if len(targets) == 0 {
		return types.ClusterMap{}, errors.New("directory: join requires a seed other than self")
	}
	tried := map[string]bool{string(self): true}
	var lastErr error
	for {
		for i := 0; i < len(targets); i++ {
			if err := ctx.Err(); err != nil {
				if lastErr != nil {
					return types.ClusterMap{}, lastErr
				}
				return types.ClusterMap{}, err
			}
			addr := targets[i]
			// Bound each attempt: a dead-ish seed (accepting but not
			// serving) must cost one attempt window, not the whole join.
			actx, acancel := context.WithTimeout(ctx, 3*time.Second)
			nc, err := dial(actx, addr)
			if err != nil {
				acancel()
				lastErr = err
				continue
			}
			wc := wire.NewClient(nc, nil)
			resp, err := wc.Call(actx, req)
			wc.Close()
			acancel()
			if err != nil {
				lastErr = err
				continue
			}
			rerr := resp.ErrorOf()
			switch {
			case rerr == nil:
				return types.DecodeClusterMap(resp.Payload)
			case errors.Is(rerr, types.ErrNotPrimary):
				lastErr = rerr
				if hint := string(resp.Node); hint != "" && !tried[hint] {
					tried[hint] = true
					targets = append(targets, hint)
				}
			case errors.Is(rerr, types.ErrStaleMap):
				// The seed does not host the membership shard; its bounce
				// carries the map, which names the replicas that do.
				lastErr = rerr
				if cm, derr := types.DecodeClusterMap(resp.Payload); derr == nil {
					groups := cm.DeriveGroups()
					if len(groups) > membershipShard {
						for _, a := range groups[membershipShard] {
							if !tried[a] {
								tried[a] = true
								targets = append(targets, a)
							}
						}
					}
				}
			default:
				return types.ClusterMap{}, rerr
			}
		}
		select {
		case <-time.After(failoverBackoff):
		case <-ctx.Done():
			if lastErr != nil {
				return types.ClusterMap{}, lastErr
			}
			return types.ClusterMap{}, ctx.Err()
		}
	}
}

// Close tears down all shard connections.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.done)
	conns := make([]*wire.Client, 0, len(c.conns))
	for _, wc := range c.conns {
		conns = append(conns, wc)
		c.retiredWire.Add(wc.BatchStats())
	}
	c.conns = make(map[string]*wire.Client)
	c.mu.Unlock()
	for _, wc := range conns {
		wc.Close()
	}
	return nil
}
