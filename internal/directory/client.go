package directory

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"hoplite/internal/types"
	"hoplite/internal/wire"
)

// Update is a push notification about an object's directory record,
// delivered to Subscribe callbacks (the paper's asynchronous location
// query, §3.2).
type Update struct {
	OID     types.ObjectID
	Size    int64
	Locs    []types.Location
	Inline  []byte
	Deleted bool
}

// Dialer connects to a directory shard address.
type Dialer func(ctx context.Context, addr string) (net.Conn, error)

// Client talks to every shard of the directory on behalf of one node.
// It is safe for concurrent use.
type Client struct {
	self   types.NodeID
	shards []string
	dial   Dialer

	mu     sync.Mutex
	conns  map[string]*wire.Client
	closed bool

	subMu sync.Mutex
	subs  map[types.ObjectID][]func(Update)
}

// NewClient creates a directory client for a node. shards lists every
// shard server address; an object's shard is oid.Shard(len(shards)).
func NewClient(self types.NodeID, shards []string, dial Dialer) *Client {
	return &Client{
		self:   self,
		shards: shards,
		dial:   dial,
		conns:  make(map[string]*wire.Client),
		subs:   make(map[types.ObjectID][]func(Update)),
	}
}

// NumShards returns the number of directory shards.
func (c *Client) NumShards() int { return len(c.shards) }

// Self returns the node this client acts for.
func (c *Client) Self() types.NodeID { return c.self }

func (c *Client) conn(ctx context.Context, oid types.ObjectID) (*wire.Client, error) {
	addr := c.shards[oid.Shard(len(c.shards))]
	return c.connTo(ctx, addr)
}

func (c *Client) connTo(ctx context.Context, addr string) (*wire.Client, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, types.ErrClosed
	}
	if wc, ok := c.conns[addr]; ok {
		c.mu.Unlock()
		return wc, nil
	}
	c.mu.Unlock()

	nc, err := c.dial(ctx, addr)
	if err != nil {
		return nil, fmt.Errorf("directory: dial shard %s: %w", addr, err)
	}
	wc := wire.NewClient(nc, c.onNotify)
	wc.OnOrphan(c.compensateOrphan)

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		wc.Close()
		return nil, types.ErrClosed
	}
	if existing, ok := c.conns[addr]; ok {
		c.mu.Unlock()
		wc.Close()
		return existing, nil
	}
	c.conns[addr] = wc
	c.mu.Unlock()
	return wc, nil
}

func (c *Client) onNotify(m wire.Message) {
	u := Update{OID: m.OID, Size: m.Size, Locs: m.Locs, Inline: m.Payload}
	if err := m.ErrorOf(); err == types.ErrDeleted {
		u.Deleted = true
	}
	c.subMu.Lock()
	var fns []func(Update)
	fns = append(fns, c.subs[m.OID]...)
	c.subMu.Unlock()
	for _, fn := range fns {
		fn(u)
	}
}

// compensateOrphan undoes grants delivered to calls whose requester gave
// up before the response arrived (ctx canceled mid-acquire). Without it,
// an acquire racing a cancellation can lease a sender to a receiver that
// will never pull, and with no lease expiry the object wedges: every
// later Get blocks behind a lease nobody returns. The granted lease is
// returned and this node's phantom partial location dropped, exactly as
// if the sender had observed our socket die (§5.5).
func (c *Client) compensateOrphan(req, resp wire.Message) {
	if resp.ErrorOf() != nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	switch req.Method {
	case wire.MethodAcquire:
		if resp.Sender != "" && resp.Payload == nil {
			_, _ = c.call(ctx, wire.Message{Method: wire.MethodAbortDown, OID: req.OID, Node: c.self, Sender: resp.Sender})
		}
	case wire.MethodAcquireMany:
		// AbortDown (not Abort) for the same reason as the single-acquire
		// branch: acquireMany also registered us as a phantom partial
		// location, which must be dropped along with each lease.
		for _, l := range resp.Locs {
			_, _ = c.call(ctx, wire.Message{Method: wire.MethodAbortDown, OID: req.OID, Node: c.self, Sender: l.Node})
		}
	}
}

func (c *Client) call(ctx context.Context, m wire.Message) (wire.Message, error) {
	wc, err := c.conn(ctx, m.OID)
	if err != nil {
		return wire.Message{}, err
	}
	resp, err := wc.Call(ctx, m)
	if err != nil {
		return wire.Message{}, err
	}
	return resp, resp.ErrorOf()
}

// PutStarted registers a partial location: node began creating the object
// (a local Put copy or an inbound remote transfer). The directory learns
// the object size here, enabling pipelined downstream fetches before the
// copy finishes (§3.3).
func (c *Client) PutStarted(ctx context.Context, oid types.ObjectID, size int64) error {
	_, err := c.call(ctx, wire.Message{Method: wire.MethodPutStarted, OID: oid, Node: c.self, Size: size})
	return err
}

// PutComplete upgrades this node's location to complete.
func (c *Client) PutComplete(ctx context.Context, oid types.ObjectID) error {
	_, err := c.call(ctx, wire.Message{Method: wire.MethodPutComplete, OID: oid, Node: c.self})
	return err
}

// PutInline stores a small object's payload directly in the directory
// (§3.2, "optimization for small objects").
func (c *Client) PutInline(ctx context.Context, oid types.ObjectID, payload []byte) error {
	_, err := c.call(ctx, wire.Message{Method: wire.MethodPutInline, OID: oid, Payload: payload})
	return err
}

// Lease is the result of AcquireSender: either an inline payload (small
// objects) or a leased sender to pull from.
type Lease struct {
	Sender types.NodeID
	Size   int64
	Gen    int64
	Inline []byte
}

// AcquireSender atomically picks an eligible sender holding the object
// (preferring complete copies), removes it from the available set,
// registers this node as a partial location, and records the fetch
// dependency. If wait is true the call blocks until a sender is available.
func (c *Client) AcquireSender(ctx context.Context, oid types.ObjectID, wait bool) (Lease, error) {
	resp, err := c.call(ctx, wire.Message{Method: wire.MethodAcquire, OID: oid, Node: c.self, Wait: wait})
	if err != nil {
		return Lease{}, err
	}
	return Lease{Sender: resp.Sender, Size: resp.Size, Gen: resp.Gen, Inline: resp.Payload}, nil
}

// MultiLease is the result of AcquireSenders: either an inline payload
// (small objects) or up to max leased senders, each holding a complete
// copy, for a striped pull.
type MultiLease struct {
	Senders []types.NodeID
	Size    int64
	Gen     int64
	Inline  []byte
}

// AcquireSenders atomically leases up to max eligible senders holding
// complete copies of the object and registers this node as a partial
// location. It never blocks: with no eligible complete copy it returns
// ErrNoSender (or ErrNotFound when the object has no locations at all),
// and the caller falls back to the blocking single-sender AcquireSender.
// Each leased sender is returned individually via ReleaseSender or
// AbortTransfer.
func (c *Client) AcquireSenders(ctx context.Context, oid types.ObjectID, max int) (MultiLease, error) {
	resp, err := c.call(ctx, wire.Message{Method: wire.MethodAcquireMany, OID: oid, Node: c.self, Num: int64(max)})
	if err != nil {
		return MultiLease{}, err
	}
	ml := MultiLease{Size: resp.Size, Gen: resp.Gen, Inline: resp.Payload}
	for _, l := range resp.Locs {
		ml.Senders = append(ml.Senders, l.Node)
	}
	return ml, nil
}

// ReleaseSender returns a leased sender after a successful transfer and,
// when complete, marks this node as holding a complete copy.
func (c *Client) ReleaseSender(ctx context.Context, oid types.ObjectID, sender types.NodeID, complete bool) error {
	_, err := c.call(ctx, wire.Message{Method: wire.MethodRelease, OID: oid, Node: c.self, Sender: sender, Complete: complete})
	return err
}

// AbortTransfer returns a leased sender after a failed transfer. When
// senderDead is true the sender's location is dropped from the directory
// so no other receiver is routed to it.
func (c *Client) AbortTransfer(ctx context.Context, oid types.ObjectID, sender types.NodeID, senderDead bool) error {
	_, err := c.call(ctx, wire.Message{Method: wire.MethodAbort, OID: oid, Node: c.self, Sender: sender, Complete: senderDead})
	return err
}

// AbortDownstream reports, from the sender side, that the receiver's
// socket died mid-transfer: the lease is returned and the receiver's
// partial location dropped (§5.5 failure detection via socket liveness).
func (c *Client) AbortDownstream(ctx context.Context, oid types.ObjectID, receiver types.NodeID) error {
	_, err := c.call(ctx, wire.Message{Method: wire.MethodAbortDown, OID: oid, Node: receiver, Sender: c.self})
	return err
}

// MarkSpilled registers this node's location for oid as disk-backed: the
// in-memory copy was demoted to the spill tier, or a restarted node is
// re-offering an object rediscovered in its spill directory (size then
// comes from the file; pass types.SizeUnknown to leave the recorded size
// alone). A spilled location still serves pulls — the planner merely
// prefers in-memory senders. ErrDeleted means the object was tombstoned
// while spilled; the caller should discard the stale file.
func (c *Client) MarkSpilled(ctx context.Context, oid types.ObjectID, size int64) error {
	_, err := c.call(ctx, wire.Message{Method: wire.MethodMarkSpilled, OID: oid, Node: c.self, Size: size})
	return err
}

// Record is a Lookup result.
type Record struct {
	Size   int64
	Locs   []types.Location
	Inline []byte
}

// Lookup returns the current directory record. With wait set, it blocks
// until the object has at least one location (synchronous location query,
// §3.2).
func (c *Client) Lookup(ctx context.Context, oid types.ObjectID, wait bool) (Record, error) {
	resp, err := c.call(ctx, wire.Message{Method: wire.MethodLookup, OID: oid, Wait: wait})
	if err != nil {
		return Record{}, err
	}
	return Record{Size: resp.Size, Locs: resp.Locs, Inline: resp.Payload}, nil
}

// Subscribe registers fn for push notifications about oid and returns the
// current record immediately. The subscription lives until Unsubscribe or
// client close.
func (c *Client) Subscribe(ctx context.Context, oid types.ObjectID, fn func(Update)) (Record, error) {
	c.subMu.Lock()
	c.subs[oid] = append(c.subs[oid], fn)
	c.subMu.Unlock()
	resp, err := c.call(ctx, wire.Message{Method: wire.MethodSubscribe, OID: oid, Node: c.self})
	if err != nil && err != types.ErrDeleted {
		return Record{}, err
	}
	rec := Record{Size: resp.Size, Locs: resp.Locs, Inline: resp.Payload}
	if err == types.ErrDeleted {
		return rec, types.ErrDeleted
	}
	return rec, nil
}

// Unsubscribe removes all local callbacks for oid and tells the shard to
// stop pushing.
func (c *Client) Unsubscribe(ctx context.Context, oid types.ObjectID) error {
	c.subMu.Lock()
	delete(c.subs, oid)
	c.subMu.Unlock()
	_, err := c.call(ctx, wire.Message{Method: wire.MethodUnsubscribe, OID: oid, Node: c.self})
	return err
}

// Delete marks the object deleted and returns the locations that held
// copies, so the caller can evict them from the node stores (§6).
func (c *Client) Delete(ctx context.Context, oid types.ObjectID) ([]types.Location, error) {
	resp, err := c.call(ctx, wire.Message{Method: wire.MethodDelete, OID: oid})
	if err != nil {
		return nil, err
	}
	return resp.Locs, nil
}

// RemoveLocation drops this node's location for oid (store eviction).
func (c *Client) RemoveLocation(ctx context.Context, oid types.ObjectID) error {
	_, err := c.call(ctx, wire.Message{Method: wire.MethodRemoveLoc, OID: oid, Node: c.self})
	return err
}

// PurgeNode removes every location and lease involving node from all
// shards; used when a node failure is detected.
func (c *Client) PurgeNode(ctx context.Context, node types.NodeID) error {
	var firstErr error
	for _, addr := range c.shards {
		wc, err := c.connTo(ctx, addr)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		resp, err := wc.Call(ctx, wire.Message{Method: wire.MethodPurgeNode, Node: node})
		if err == nil {
			err = resp.ErrorOf()
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Close tears down all shard connections.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conns := make([]*wire.Client, 0, len(c.conns))
	for _, wc := range c.conns {
		conns = append(conns, wc)
	}
	c.conns = make(map[string]*wire.Client)
	c.mu.Unlock()
	for _, wc := range conns {
		wc.Close()
	}
	return nil
}
