package directory

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"hoplite/internal/types"
	"hoplite/internal/wire"
)

// membershipHarness runs a membership-enabled replica fleet over real TCP:
// every server boots from the same epoch-1 cluster map, from which it
// derives its shard groups.
type membershipHarness struct {
	t     *testing.T
	boot  types.ClusterMap
	addrs []string
	lns   []net.Listener
	dirs  []*Server
	wires []*wire.Server
}

// startMembershipGroup boots n shard-hosting members with the given shard
// count and directory/object replication factors.
func startMembershipGroup(t *testing.T, n, shards, dirRF, objRF int) *membershipHarness {
	t.Helper()
	h := &membershipHarness{
		t:     t,
		lns:   make([]net.Listener, n),
		dirs:  make([]*Server, n),
		wires: make([]*wire.Server, n),
	}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		h.lns[i] = ln
		h.addrs = append(h.addrs, ln.Addr().String())
	}
	h.boot = types.ClusterMap{Epoch: 1, NumShards: shards, DirRF: dirRF, ObjectRF: objRF}
	for _, a := range h.addrs {
		h.boot.Members = append(h.boot.Members, types.Member{
			Addr: types.NodeID(a), State: types.MemberActive, ShardHost: true,
		})
	}
	for i := 0; i < n; i++ {
		h.start(i, h.boot)
	}
	t.Cleanup(func() {
		for i := range h.dirs {
			if h.dirs[i] != nil {
				h.kill(i)
			}
		}
	})
	return h
}

func (h *membershipHarness) start(i int, boot types.ClusterMap) {
	h.t.Helper()
	cm := boot.Clone()
	d := NewReplicated(Config{
		Self:              h.addrs[i],
		Groups:            cm.DeriveGroups(),
		Dial:              tcpDial,
		HeartbeatInterval: testBeat,
		LeaseTimeout:      testLease,
		InitialMap:        &cm,
		RepairInterval:    -1, // repair needs a data plane; unit tests have none
	})
	ws := wire.NewServer(h.lns[i], d.Handler())
	go ws.Serve()
	d.Start()
	h.dirs[i] = d
	h.wires[i] = ws
}

func (h *membershipHarness) kill(i int) {
	h.wires[i].Close()
	h.dirs[i].Close()
	h.dirs[i] = nil
}

func (h *membershipHarness) client(node types.NodeID) *Client {
	h.t.Helper()
	c := NewReplicatedClient(node, h.boot.DeriveGroups(), tcpDial)
	h.t.Cleanup(func() { c.Close() })
	return c
}

// rawCall sends one wire message to addr outside any client routing, so
// tests control the epoch stamp exactly.
func rawCall(t *testing.T, addr string, m wire.Message) wire.Message {
	t.Helper()
	ctx := ctxT(t)
	conn, err := tcpDial(ctx, addr)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	wc := wire.NewClient(conn, nil)
	defer wc.Close()
	resp, err := wc.Call(ctx, m)
	if err != nil {
		t.Fatalf("call %v: %v", m.Method, err)
	}
	return resp
}

// TestDirectoryStaleEpochBounce checks the directory's epoch gate on both
// paths: requests stamped with an older epoch get ErrStaleMap plus the
// current map in the payload; unstamped (legacy) and current-epoch
// requests pass.
func TestDirectoryStaleEpochBounce(t *testing.T) {
	h := startMembershipGroup(t, 2, 2, 2, 1)
	ctx := ctxT(t)
	c := h.client(types.NodeID(h.addrs[0]))

	// Advance the map past the boot epoch with a storage-only join.
	cm, err := c.JoinNode(ctx, "storage-node:1", false)
	if err != nil {
		t.Fatalf("JoinNode: %v", err)
	}
	if cm.Epoch != 2 {
		t.Fatalf("epoch after join = %d, want 2", cm.Epoch)
	}

	oid := types.ObjectIDFromString("bounce")
	shardAddr := h.addrs[oid.Shard(2)]
	for _, tc := range []struct {
		name  string
		epoch int64
		stale bool
	}{
		{"unstamped legacy", 0, false},
		{"current epoch", 2, false},
		{"stale epoch", 1, true},
	} {
		resp := rawCall(t, shardAddr, wire.Message{Method: wire.MethodLookup, OID: oid, Epoch: tc.epoch})
		got := errors.Is(resp.ErrorOf(), types.ErrStaleMap)
		if got != tc.stale {
			t.Fatalf("%s: stale bounce = %v, want %v (err %q)", tc.name, got, tc.stale, resp.Err)
		}
		if tc.stale {
			bounced, derr := types.DecodeClusterMap(resp.Payload)
			if derr != nil {
				t.Fatalf("%s: bounce payload: %v", tc.name, derr)
			}
			if bounced.Epoch != 2 {
				t.Fatalf("%s: bounced map epoch = %d, want 2", tc.name, bounced.Epoch)
			}
		}
	}

	// Mutations are gated identically.
	resp := rawCall(t, shardAddr, wire.Message{
		Method: wire.MethodPutStarted, OID: oid, Node: "n1", Size: 64, Epoch: 1,
	})
	if !errors.Is(resp.ErrorOf(), types.ErrStaleMap) {
		t.Fatalf("stale mutation not bounced: %q", resp.Err)
	}
}

// TestClientRecoversFromStaleBounce checks the replicated client installs
// the map carried by a bounce and retries: a client stuck at the boot
// epoch keeps working after the membership moves on without it.
func TestClientRecoversFromStaleBounce(t *testing.T) {
	h := startMembershipGroup(t, 2, 2, 2, 1)
	ctx := ctxT(t)
	mover := h.client(types.NodeID(h.addrs[0]))
	if _, err := mover.JoinNode(ctx, "storage-node:1", false); err != nil {
		t.Fatalf("JoinNode: %v", err)
	}

	// A fresh client starts at the boot map (epoch 1) and stamps with it;
	// the first call is bounced, the map installed, the retry succeeds.
	late := h.client(types.NodeID(h.addrs[1]))
	late.InstallMap(h.boot)
	oid := types.ObjectIDFromString("late-client")
	if err := late.PutStarted(ctx, oid, 128); err != nil {
		t.Fatalf("PutStarted through stale client: %v", err)
	}
	if got := late.Map().Epoch; got != 2 {
		t.Fatalf("client map epoch after bounce = %d, want 2", got)
	}
}

// TestJoinRebalancesShards boots two shard hosts, joins a third, and
// checks the rebalance hands the new node real replicas: it syncs from
// snapshots, starts hosting, and existing data stays readable through the
// reshuffled groups.
func TestJoinRebalancesShards(t *testing.T) {
	h := startMembershipGroup(t, 2, 4, 2, 1)
	ctx := ctxT(t)
	c := h.client(types.NodeID(h.addrs[0]))

	// Seed entries on every shard so snapshot sync has content to move.
	var oids []types.ObjectID
	for i := 0; i < 16; i++ {
		oid := types.ObjectIDFromString(fmt.Sprintf("rebalance-%d", i))
		if err := c.PutStarted(ctx, oid, 1024); err != nil {
			t.Fatalf("PutStarted %d: %v", i, err)
		}
		if err := c.PutComplete(ctx, oid); err != nil {
			t.Fatalf("PutComplete %d: %v", i, err)
		}
		oids = append(oids, oid)
	}

	// The joiner learns the map through Join (like a booting node would),
	// then its server comes up and is synced by the incumbents.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	joiner := ln.Addr().String()
	ln.Close()
	cm, err := c.JoinNode(ctx, types.NodeID(joiner), true)
	if err != nil {
		t.Fatalf("JoinNode: %v", err)
	}
	if cm.Epoch != 2 || cm.MemberIndex(types.NodeID(joiner)) < 0 {
		t.Fatalf("join map: epoch %d, member %v", cm.Epoch, cm.MemberIndex(types.NodeID(joiner)))
	}
	h.lns = append(h.lns, mustListen(t, joiner))
	h.addrs = append(h.addrs, joiner)
	h.dirs = append(h.dirs, nil)
	h.wires = append(h.wires, nil)
	h.start(len(h.addrs)-1, cm)
	j := h.dirs[len(h.dirs)-1]

	// The new host must end up with replicas of the shards the new
	// groups assign it — the derived layout over 3 hosts touches it.
	waitFor(t, "joiner hosts replicas", func() bool { return j.HostedReplicas() > 0 })

	// Every object stays readable through the client across the epoch
	// bump (bounces re-route it).
	for _, oid := range oids {
		rec, err := c.Lookup(ctx, oid, false)
		if err != nil {
			t.Fatalf("Lookup %v after rebalance: %v", oid, err)
		}
		if rec.Size != 1024 {
			t.Fatalf("Lookup %v: size %d", oid, rec.Size)
		}
	}

	// And mutations keep landing, including on shards the joiner now
	// leads (exercised by covering all shards).
	for i := 0; i < 8; i++ {
		oid := types.ObjectIDFromString(fmt.Sprintf("post-join-%d", i))
		if err := c.PutStarted(ctx, oid, 64); err != nil {
			t.Fatalf("post-join PutStarted %d: %v", i, err)
		}
	}
}

// TestDrainHandsOffShards drains one of three shard hosts and checks its
// replicas hand off cleanly: the drained server ends with zero hosted
// replicas, DrainFinished removes it from the map, and the directory
// keeps accepting mutations throughout.
func TestDrainHandsOffShards(t *testing.T) {
	h := startMembershipGroup(t, 3, 3, 2, 1)
	ctx := ctxT(t)
	c := h.client(types.NodeID(h.addrs[1]))

	for i := 0; i < 9; i++ {
		oid := types.ObjectIDFromString(fmt.Sprintf("drain-%d", i))
		if err := c.PutStarted(ctx, oid, 256); err != nil {
			t.Fatalf("PutStarted %d: %v", i, err)
		}
	}

	victim := types.NodeID(h.addrs[0])
	cm, err := c.DrainNode(ctx, victim)
	if err != nil {
		t.Fatalf("DrainNode: %v", err)
	}
	if st, ok := cm.MemberState(victim); !ok || st != types.MemberDraining {
		t.Fatalf("victim state after drain: %v %v", st, ok)
	}

	waitFor(t, "drained node sheds replicas", func() bool {
		return h.dirs[0].HostedReplicas() == 0
	})

	if _, err := c.DrainFinished(ctx, victim); err != nil {
		t.Fatalf("DrainFinished: %v", err)
	}
	finalMap, err := c.FetchMap(ctx)
	if err != nil {
		t.Fatalf("FetchMap: %v", err)
	}
	if _, ok := finalMap.MemberState(victim); ok {
		t.Fatalf("victim still in map %+v", finalMap)
	}

	// Mutations route to the remaining hosts.
	for i := 0; i < 9; i++ {
		oid := types.ObjectIDFromString(fmt.Sprintf("post-drain-%d", i))
		if err := c.PutStarted(ctx, oid, 64); err != nil {
			t.Fatalf("post-drain PutStarted %d: %v", i, err)
		}
	}
	h.kill(0)
}

// TestDrainLastShardHostRejected checks the guard that keeps the
// directory from losing its last home.
func TestDrainLastShardHostRejected(t *testing.T) {
	h := startMembershipGroup(t, 1, 1, 1, 1)
	ctx := ctxT(t)
	c := h.client(types.NodeID(h.addrs[0]))
	if _, err := c.DrainNode(ctx, types.NodeID(h.addrs[0])); err == nil {
		t.Fatal("draining the last shard host succeeded")
	}
}

// TestStatusReportsRoles checks the status sweep: shard primaries answer
// with entry counts and the map, and the roles accessor reflects what the
// server hosts.
func TestStatusReportsRoles(t *testing.T) {
	h := startMembershipGroup(t, 2, 2, 2, 1)
	ctx := ctxT(t)
	self := types.NodeID(h.addrs[0])
	c := h.client(self)

	oid := types.ObjectIDFromString("status-object")
	if err := c.PutStarted(ctx, oid, 2048); err != nil {
		t.Fatalf("PutStarted: %v", err)
	}
	if err := c.PutComplete(ctx, oid); err != nil {
		t.Fatalf("PutComplete: %v", err)
	}

	st, err := c.Status(ctx, self)
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if len(st.Shards) != 2 {
		t.Fatalf("status shards = %d", len(st.Shards))
	}
	if st.Map.Epoch != 1 {
		t.Fatalf("status map epoch = %d", st.Map.Epoch)
	}
	total := 0
	for _, sh := range st.Shards {
		if sh.Primary == "" {
			t.Fatalf("shard %d has no primary", sh.Shard)
		}
		total += sh.Objects
	}
	if total != 1 {
		t.Fatalf("status total objects = %d, want 1", total)
	}
	for i, d := range h.dirs {
		roles := d.Roles()
		if len(roles) == 0 {
			t.Fatalf("server %d hosts no roles", i)
		}
		for _, r := range roles {
			if r.Shard < 0 || r.Shard >= 2 {
				t.Fatalf("server %d reports shard %d", i, r.Shard)
			}
		}
	}
}

func mustListen(t *testing.T, addr string) net.Listener {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			return ln
		}
		if time.Now().After(deadline) {
			t.Fatalf("listen %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
