package directory

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"hoplite/internal/types"
	"hoplite/internal/wire"
)

func tcpDial(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}

// replicaHarness runs one shard's replica group over real TCP, each
// replica an independent directory server behind its own wire server.
type replicaHarness struct {
	t     *testing.T
	addrs []string
	lns   []net.Listener
	dirs  []*Server
	wires []*wire.Server
}

const (
	testBeat  = 10 * time.Millisecond
	testLease = 80 * time.Millisecond
)

func startReplicaGroup(t *testing.T, n int) *replicaHarness {
	t.Helper()
	h := &replicaHarness{
		t:     t,
		lns:   make([]net.Listener, n),
		dirs:  make([]*Server, n),
		wires: make([]*wire.Server, n),
	}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		h.lns[i] = ln
		h.addrs = append(h.addrs, ln.Addr().String())
	}
	for i := 0; i < n; i++ {
		h.start(i)
	}
	t.Cleanup(func() {
		for i := range h.dirs {
			if h.dirs[i] != nil {
				h.kill(i)
			}
		}
	})
	return h
}

func (h *replicaHarness) start(i int) {
	h.t.Helper()
	d := NewReplicated(Config{
		Self:              h.addrs[i],
		Groups:            [][]string{h.addrs},
		Dial:              tcpDial,
		HeartbeatInterval: testBeat,
		LeaseTimeout:      testLease,
	})
	ws := wire.NewServer(h.lns[i], d.Handler())
	go ws.Serve()
	d.Start()
	h.dirs[i] = d
	h.wires[i] = ws
}

func (h *replicaHarness) kill(i int) {
	h.wires[i].Close()
	h.dirs[i].Close()
	h.dirs[i] = nil
}

func (h *replicaHarness) restart(i int) {
	h.t.Helper()
	var err error
	deadline := time.Now().Add(5 * time.Second)
	for {
		h.lns[i], err = net.Listen("tcp", h.addrs[i])
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			h.t.Fatalf("rebind %s: %v", h.addrs[i], err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	h.start(i)
}

func (h *replicaHarness) client(node types.NodeID) *Client {
	h.t.Helper()
	c := NewReplicatedClient(node, [][]string{h.addrs}, tcpDial)
	h.t.Cleanup(func() { c.Close() })
	return c
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestReplicatedMutationFailover kills the shard primary between
// mutations and checks the client lands every later op on the promoted
// backup with no state lost.
func TestReplicatedMutationFailover(t *testing.T) {
	h := startReplicaGroup(t, 3)
	ctx := ctxT(t)
	c := h.client("n1")
	oid := types.ObjectIDFromString("failover")
	if err := c.PutStarted(ctx, oid, 4096); err != nil {
		t.Fatalf("PutStarted: %v", err)
	}
	waitFor(t, "initial primary", func() bool { return h.dirs[0].Primary(0) })
	h.kill(0)
	// The next mutation must fail over to the promoted backup.
	if err := c.PutComplete(ctx, oid); err != nil {
		t.Fatalf("PutComplete after primary kill: %v", err)
	}
	rec, err := c.Lookup(ctx, oid, false)
	if err != nil {
		t.Fatalf("Lookup after failover: %v", err)
	}
	if rec.Size != 4096 || len(rec.Locs) != 1 || rec.Locs[0].Progress != types.ProgressComplete {
		t.Fatalf("replicated record lost state: %+v", rec)
	}
}

// TestPromotionOrder checks succession: killing the primary promotes the
// next replica by group index — not a later one — and killing that
// promotes the third.
func TestPromotionOrder(t *testing.T) {
	h := startReplicaGroup(t, 3)
	waitFor(t, "initial primary", func() bool { return h.dirs[0].Primary(0) })
	if h.dirs[1].Primary(0) || h.dirs[2].Primary(0) {
		t.Fatal("backup believes itself primary at boot")
	}
	h.kill(0)
	waitFor(t, "second replica promotion", func() bool { return h.dirs[1].Primary(0) })
	if h.dirs[2].Primary(0) {
		t.Fatal("third replica promoted out of order")
	}
	h.kill(1)
	waitFor(t, "third replica promotion", func() bool { return h.dirs[2].Primary(0) })
}

// TestLogTailReplayOnPromotion drives a backup directly with out-of-order
// replicated ops from a test-controlled "primary", then kills the primary
// and checks promotion replays the buffered tail in sequence order.
func TestLogTailReplayOnPromotion(t *testing.T) {
	// addr0 is the fake primary (a bare wire server answering pings);
	// addr1 hosts the real backup under test.
	fakeLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fake := wire.NewServer(fakeLn, func(ctx context.Context, m wire.Message, p *wire.Peer) wire.Message {
		return wire.Message{Method: wire.MethodPing}
	})
	go fake.Serve()
	backupLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	group := []string{fakeLn.Addr().String(), backupLn.Addr().String()}
	backup := NewReplicated(Config{
		Self:              group[1],
		Groups:            [][]string{group},
		Dial:              tcpDial,
		HeartbeatInterval: testBeat,
		LeaseTimeout:      testLease,
	})
	bsrv := wire.NewServer(backupLn, backup.Handler())
	go bsrv.Serve()
	backup.Start()
	t.Cleanup(func() { bsrv.Close(); backup.Close(); fake.Close() })

	conn, err := tcpDial(context.Background(), group[1])
	if err != nil {
		t.Fatal(err)
	}
	wc := wire.NewClient(conn, nil)
	t.Cleanup(func() { wc.Close() })
	ctx := ctxT(t)

	oid := types.ObjectIDFromString("replay")
	send := func(seq int64, op wire.Message) wire.Message {
		payload, err := wire.AppendMessage(nil, &op)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := wc.Call(ctx, wire.Message{
			Method:   wire.MethodReplicate,
			Offset:   0,
			Gen:      1,
			Num:      seq,
			Node:     types.NodeID(group[0]),
			Complete: true,
			Payload:  payload,
		})
		if err != nil {
			t.Fatalf("replicate seq %d: %v", seq, err)
		}
		return resp
	}
	// Deliver op 2 (complete) before op 1 (started), then op 4 with a
	// permanent gap at 3: the backup must buffer all of them.
	send(2, wire.Message{Method: wire.MethodPutComplete, OID: oid, Node: "h1"})
	resp := send(1, wire.Message{Method: wire.MethodPutStarted, OID: oid, Node: "h1", Size: 512})
	if resp.Num != 2 {
		t.Fatalf("backup applied through seq %d, want 2 (out-of-order op not drained)", resp.Num)
	}
	gapOID := types.ObjectIDFromString("replay-gap")
	send(4, wire.Message{Method: wire.MethodPutStarted, OID: gapOID, Node: "h2", Size: 64})
	// Kill the fake primary; the backup promotes and must replay op 4
	// across the missing seq 3.
	fake.Close()
	waitFor(t, "backup promotion", func() bool { return backup.Primary(0) })
	epoch, seq := backup.ShardSeq(0)
	if epoch < 2 || seq != 4 {
		t.Fatalf("promoted replica at epoch %d seq %d, want epoch >= 2 seq 4", epoch, seq)
	}
	c := NewReplicatedClient("reader", [][]string{group}, tcpDial)
	t.Cleanup(func() { c.Close() })
	rec, err := c.Lookup(ctx, oid, false)
	if err != nil {
		t.Fatalf("Lookup after replay: %v", err)
	}
	if rec.Size != 512 || len(rec.Locs) != 1 || rec.Locs[0].Progress != types.ProgressComplete {
		t.Fatalf("replayed record wrong: %+v", rec)
	}
	if rec, err := c.Lookup(ctx, gapOID, false); err != nil || len(rec.Locs) != 1 {
		t.Fatalf("tail op past the gap not replayed: %+v err %v", rec, err)
	}
}

// TestPromotionPrefersSyncedReplica: succession is by state, not bare
// liveness — when the primary dies, an empty (restarted) replica earlier
// in the group order must defer to a later replica holding the shard's
// replicated history, instead of claiming the shard and wiping it.
func TestPromotionPrefersSyncedReplica(t *testing.T) {
	// group[0] is a test-controlled fake primary; group[1] ("empty") and
	// group[2] ("synced") are real replicas. Only synced receives the
	// fake's replicated ops.
	fakeLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fake := wire.NewServer(fakeLn, func(ctx context.Context, m wire.Message, p *wire.Peer) wire.Message {
		return wire.Message{Method: wire.MethodPing}
	})
	go fake.Serve()
	lns := make([]net.Listener, 2)
	group := []string{fakeLn.Addr().String()}
	for i := range lns {
		if lns[i], err = net.Listen("tcp", "127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		group = append(group, lns[i].Addr().String())
	}
	servers := make([]*Server, 2)
	for i := range servers {
		servers[i] = NewReplicated(Config{
			Self:              group[i+1],
			Groups:            [][]string{group},
			Dial:              tcpDial,
			HeartbeatInterval: testBeat,
			LeaseTimeout:      testLease,
		})
		ws := wire.NewServer(lns[i], servers[i].Handler())
		go ws.Serve()
		servers[i].Start()
		srv := servers[i]
		t.Cleanup(func() { ws.Close(); srv.Close() })
	}
	t.Cleanup(func() { fake.Close() })
	empty, synced := servers[0], servers[1]

	// Feed the synced replica four ops at epoch 1; the empty one gets
	// nothing (a restarted replica that lost its state).
	conn, err := tcpDial(context.Background(), group[2])
	if err != nil {
		t.Fatal(err)
	}
	wc := wire.NewClient(conn, nil)
	t.Cleanup(func() { wc.Close() })
	ctx := ctxT(t)
	oid := types.ObjectIDFromString("prefer-synced")
	for seq := int64(1); seq <= 4; seq++ {
		op := wire.Message{Method: wire.MethodPutStarted, OID: oid, Node: types.NodeID(fmt.Sprintf("h%d", seq)), Size: 64}
		payload, err := wire.AppendMessage(nil, &op)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := wc.Call(ctx, wire.Message{
			Method: wire.MethodReplicate, Offset: 0, Gen: 1, Num: seq,
			Node: types.NodeID(group[0]), Complete: true, Payload: payload,
		})
		if err != nil || resp.ErrorOf() != nil {
			t.Fatalf("replicate %d: %v %v", seq, err, resp.ErrorOf())
		}
	}
	fake.Close() // primary dies
	waitFor(t, "synced replica promotion", func() bool { return synced.Primary(0) })
	if empty.Primary(0) {
		t.Fatal("empty replica claimed the shard over a synced survivor")
	}
	_, seq := synced.ShardSeq(0)
	if seq != 4 {
		t.Fatalf("promoted replica lost state: seq %d, want 4", seq)
	}
}

// TestRetriedAcquireDedupe sends the same acquire (same client op
// sequence number) twice — to the original primary and, after killing
// it, to the promoted backup — and checks both return the same committed
// lease instead of double-leasing a second sender.
func TestRetriedAcquireDedupe(t *testing.T) {
	h := startReplicaGroup(t, 3)
	ctx := ctxT(t)
	oid := types.ObjectIDFromString("dedupe")
	h1 := h.client("h1")
	h2 := h.client("h2")
	if err := h1.PutStarted(ctx, oid, 1024); err != nil {
		t.Fatal(err)
	}
	if err := h1.PutComplete(ctx, oid); err != nil {
		t.Fatal(err)
	}
	if err := h2.PutStarted(ctx, oid, 1024); err != nil {
		t.Fatal(err)
	}
	if err := h2.PutComplete(ctx, oid); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "initial primary", func() bool { return h.dirs[0].Primary(0) })

	// Raw wire client: the retry must carry the same Num2, which the
	// directory Client would refresh on a new logical acquire.
	conn, err := tcpDial(ctx, h.addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	wc := wire.NewClient(conn, nil)
	t.Cleanup(func() { wc.Close() })
	acquire := wire.Message{Method: wire.MethodAcquire, OID: oid, Node: "recv", Num2: 77}
	first, err := wc.Call(ctx, acquire)
	if err != nil || first.ErrorOf() != nil {
		t.Fatalf("acquire: %v %v", err, first.ErrorOf())
	}
	if first.Sender == "" {
		t.Fatal("no sender leased")
	}
	retry, err := wc.Call(ctx, acquire)
	if err != nil || retry.ErrorOf() != nil {
		t.Fatalf("retried acquire: %v %v", err, retry.ErrorOf())
	}
	if retry.Sender != first.Sender {
		t.Fatalf("retry leased %s, first leased %s: double lease", retry.Sender, first.Sender)
	}

	// Kill the primary; the promoted backup received the op via
	// replication and must dedupe the same retry too.
	h.kill(0)
	waitFor(t, "promotion", func() bool { return h.dirs[1].Primary(0) })
	conn2, err := tcpDial(ctx, h.addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	wc2 := wire.NewClient(conn2, nil)
	t.Cleanup(func() { wc2.Close() })
	retry2, err := wc2.Call(ctx, acquire)
	if err != nil || retry2.ErrorOf() != nil {
		t.Fatalf("retry on promoted backup: %v %v", err, retry2.ErrorOf())
	}
	if retry2.Sender != first.Sender {
		t.Fatalf("promoted backup leased %s, committed lease was %s: double lease", retry2.Sender, first.Sender)
	}

	// A different receiver (fresh op seq) gets the one remaining holder —
	// proving exactly one of the two was leased by all three calls above.
	other, err := h.client("recv2").AcquireSender(ctx, oid, false)
	if err != nil {
		t.Fatalf("second receiver acquire: %v", err)
	}
	if other.Sender == first.Sender {
		t.Fatalf("second receiver got the already-leased sender %s", first.Sender)
	}
}

// TestSnapshotResyncAfterRestart restarts a backup empty and checks the
// primary's heartbeat-driven snapshot push restores the full shard state,
// after which the restarted replica can be promoted and serve it.
func TestSnapshotResyncAfterRestart(t *testing.T) {
	h := startReplicaGroup(t, 2)
	ctx := ctxT(t)
	c := h.client("n1")
	var oids []types.ObjectID
	for i := 0; i < 20; i++ {
		oid := types.RandomObjectID()
		oids = append(oids, oid)
		if err := c.PutStarted(ctx, oid, int64(100+i)); err != nil {
			t.Fatal(err)
		}
		if err := c.PutComplete(ctx, oid); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.PutInline(ctx, types.ObjectIDFromString("inline"), []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "initial primary", func() bool { return h.dirs[0].Primary(0) })
	_, primarySeq := h.dirs[0].ShardSeq(0)

	h.kill(1)
	// More ops while the backup is down.
	extra := types.ObjectIDFromString("while-down")
	if err := c.PutStarted(ctx, extra, 7); err != nil {
		t.Fatal(err)
	}
	h.restart(1)
	waitFor(t, "snapshot resync", func() bool {
		_, seq := h.dirs[1].ShardSeq(0)
		return seq > primarySeq
	})

	// Promote the restarted replica by killing the primary: the resynced
	// state must be served in full.
	h.kill(0)
	waitFor(t, "restarted replica promotion", func() bool { return h.dirs[1].Primary(0) })
	for i, oid := range oids {
		rec, err := c.Lookup(ctx, oid, false)
		if err != nil {
			t.Fatalf("Lookup %d after resync: %v", i, err)
		}
		if rec.Size != int64(100+i) || len(rec.Locs) != 1 {
			t.Fatalf("record %d lost in resync: %+v", i, rec)
		}
	}
	if rec, err := c.Lookup(ctx, extra, false); err != nil || len(rec.Locs) != 1 {
		t.Fatalf("op issued while backup down lost: %+v err %v", rec, err)
	}
	if rec, err := c.Lookup(ctx, types.ObjectIDFromString("inline"), false); err != nil || string(rec.Inline) != "tiny" {
		t.Fatalf("inline payload lost in resync: %+v err %v", rec, err)
	}
}

// TestSubscribeRehomedOnReplicaDeath subscribes through the replica group,
// kills the replica serving the subscription, and checks updates keep
// flowing (the client re-homes the subscription; backups fan out the
// mutations they apply).
func TestSubscribeRehomedOnReplicaDeath(t *testing.T) {
	h := startReplicaGroup(t, 3)
	ctx := ctxT(t)
	c := h.client("subnode")
	oid := types.ObjectIDFromString("rehome")
	updates := make(chan Update, 64)
	if _, err := c.Subscribe(ctx, oid, func(u Update) { updates <- u }); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	writer := h.client("writer")
	if err := writer.PutStarted(ctx, oid, 9); err != nil {
		t.Fatal(err)
	}
	select {
	case <-updates:
	case <-time.After(5 * time.Second):
		t.Fatal("no update before kill")
	}
	// Kill every replica except the last; whichever was serving the
	// subscription dies, and the survivor ends up primary.
	h.kill(0)
	h.kill(1)
	waitFor(t, "survivor promotion", func() bool { return h.dirs[2].Primary(0) })
	if err := writer.PutComplete(ctx, oid); err != nil {
		t.Fatalf("PutComplete after kills: %v", err)
	}
	deadline := time.After(5 * time.Second)
	for {
		select {
		case u := <-updates:
			for _, l := range u.Locs {
				if l.Progress == types.ProgressComplete {
					return // the post-kill mutation reached the subscriber
				}
			}
		case <-deadline:
			t.Fatal("subscription not re-homed: completion update never arrived")
		}
	}
}

// TestStandaloneBackCompat checks the zero-config server still behaves as
// the unreplicated single shard (no role checks, no forwarding).
func TestStandaloneBackCompat(t *testing.T) {
	cs := startShard(t, "n1", "n2")
	ctx := ctxT(t)
	oid := types.ObjectIDFromString("standalone")
	if err := cs[0].PutStarted(ctx, oid, 10); err != nil {
		t.Fatal(err)
	}
	lease, err := cs[1].AcquireSender(ctx, oid, false)
	if err != nil {
		t.Fatal(err)
	}
	if lease.Sender != "n1" {
		t.Fatalf("sender %s", lease.Sender)
	}
	if err := cs[1].ReleaseSender(ctx, oid, lease.Sender, true); err != nil {
		t.Fatal(err)
	}
}

// TestMutationOnBackupRedirects checks a backup bounces mutations with
// ErrNotPrimary (the raw protocol error the client's failover consumes).
func TestMutationOnBackupRedirects(t *testing.T) {
	h := startReplicaGroup(t, 2)
	waitFor(t, "initial primary", func() bool { return h.dirs[0].Primary(0) })
	ctx := ctxT(t)
	conn, err := tcpDial(ctx, h.addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	wc := wire.NewClient(conn, nil)
	t.Cleanup(func() { wc.Close() })
	// The backup learns the primary's address from its first heartbeat;
	// the redirect itself must fire from the very first call.
	waitFor(t, "redirect with primary hint", func() bool {
		resp, err := wc.Call(ctx, wire.Message{
			Method: wire.MethodPutStarted,
			OID:    types.ObjectIDFromString("redirect"),
			Node:   "n1",
			Size:   1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !errors.Is(resp.ErrorOf(), types.ErrNotPrimary) {
			t.Fatalf("backup accepted a mutation: %v", resp.ErrorOf())
		}
		return string(resp.Node) == h.addrs[0]
	})
}
