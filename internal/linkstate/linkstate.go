// Package linkstate maintains per-peer link estimates — round-trip time
// and usable bandwidth — from passive measurements of the traffic a node
// already exchanges: every data-plane pull contributes a bandwidth sample
// and every control round-trip (heartbeats, pings, ordinary RPCs)
// contributes an RTT sample. Estimates are exponentially weighted moving
// averages seeded from configured priors (the cluster-wide Latency and
// Bandwidth knobs, now demoted to cold-start hints) and decay back toward
// those priors when a link goes quiet, so a stale burst measurement does
// not dominate planning forever.
//
// Peers may carry a locality label (rack or datacenter, from the cluster
// map). A peer that has never been measured directly borrows the
// aggregate estimate of the already-measured peers in its locality
// domain, which is usually a far better guess than the global prior.
package linkstate

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"hoplite/internal/types"
)

// Defaults for Config fields left zero.
const (
	DefaultHalfLife = 10 * time.Second
	// minBandwidthSample is the smallest transfer that yields a bandwidth
	// sample: below it the transfer time is dominated by per-request
	// latency, not link capacity.
	minBandwidthSample = 64 << 10
	// rttAlpha and bwAlpha are the EWMA gains. RTT samples are plentiful
	// (every control round-trip) so a small gain smooths scheduler noise;
	// bandwidth samples are rarer and each covers many bytes, so they move
	// the estimate faster.
	rttAlpha = 0.2
	bwAlpha  = 0.4
	// decayGrace is how long a link must be quiet before its estimate
	// starts decaying toward the priors. Without it, decay would bias even
	// an actively-sampled link toward the prior between samples.
	decayGrace = time.Second
)

// Config seeds a Tracker.
type Config struct {
	// PriorRTT and PriorBandwidth are the cold-start estimates every link
	// begins at and decays back toward when quiet. Bandwidth is in
	// bytes/second.
	PriorRTT       time.Duration
	PriorBandwidth float64
	// HalfLife is the quiet-link decay half-life: an estimate that has
	// been quiet for one half-life (past a one-second grace period) has
	// moved half way back to the prior. Zero selects DefaultHalfLife;
	// negative disables decay.
	HalfLife time.Duration
}

func (c Config) withDefaults() Config {
	if c.PriorRTT <= 0 {
		c.PriorRTT = 200 * time.Microsecond
	}
	if c.PriorBandwidth <= 0 {
		c.PriorBandwidth = 1.25e9
	}
	if c.HalfLife == 0 {
		c.HalfLife = DefaultHalfLife
	}
	return c
}

// Estimate is the current belief about one link.
type Estimate struct {
	// RTT is the estimated control round-trip time to the peer.
	RTT time.Duration
	// Bandwidth is the estimated usable bandwidth in bytes/second.
	Bandwidth float64
	// Measured reports whether at least one direct sample backs the
	// estimate; false means it is the prior or a locality aggregate.
	Measured bool
	// Samples counts direct RTT + bandwidth samples absorbed.
	Samples uint64
	// Age is the time since the last direct sample (zero when !Measured).
	Age time.Duration
}

// PeerEstimate is one row of a Tracker snapshot.
type PeerEstimate struct {
	Peer     types.NodeID
	Locality string
	Estimate
}

type peerState struct {
	rtt     float64 // EWMA, seconds
	bw      float64 // EWMA, bytes/second
	hasRTT  bool
	hasBW   bool
	samples uint64
	bytes   int64
	last    time.Time
}

// Tracker accumulates link samples and answers estimate queries. All
// methods are safe for concurrent use.
type Tracker struct {
	cfg Config
	now func() time.Time // test hook

	mu       sync.Mutex
	peers    map[types.NodeID]*peerState
	locality map[types.NodeID]string
}

// New returns an empty Tracker.
func New(cfg Config) *Tracker {
	return &Tracker{
		cfg:      cfg.withDefaults(),
		now:      time.Now,
		peers:    make(map[types.NodeID]*peerState),
		locality: make(map[types.NodeID]string),
	}
}

// ObserveRTT records one control round-trip to peer.
func (t *Tracker) ObserveRTT(peer types.NodeID, rtt time.Duration) {
	if peer == "" || rtt <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.peer(peer)
	t.decayLocked(s)
	v := rtt.Seconds()
	if !s.hasRTT {
		s.rtt, s.hasRTT = v, true
	} else {
		s.rtt += rttAlpha * (v - s.rtt)
	}
	s.samples++
	s.last = t.now()
}

// ObserveTransfer records a bulk transfer of n bytes to or from peer that
// took d of wall time. Transfers too small to measure link capacity are
// ignored (they still refresh the link's last-activity time).
func (t *Tracker) ObserveTransfer(peer types.NodeID, n int64, d time.Duration) {
	if peer == "" || n <= 0 || d <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.peer(peer)
	t.decayLocked(s)
	s.bytes += n
	s.last = t.now()
	if n < minBandwidthSample {
		return
	}
	v := float64(n) / d.Seconds()
	if !s.hasBW {
		s.bw, s.hasBW = v, true
	} else {
		s.bw += bwAlpha * (v - s.bw)
	}
	s.samples++
}

// SetLocality replaces the peer→locality-domain labels (from the cluster
// map). Unlabeled peers may be omitted.
func (t *Tracker) SetLocality(labels map[types.NodeID]string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.locality = make(map[types.NodeID]string, len(labels))
	for p, l := range labels {
		if l != "" {
			t.locality[p] = l
		}
	}
}

// Estimate returns the current belief about the link to peer. A peer with
// no direct samples borrows the mean estimate of measured peers sharing
// its locality domain, falling back to the priors.
func (t *Tracker) Estimate(peer types.NodeID) Estimate {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.estimateLocked(peer)
}

func (t *Tracker) estimateLocked(peer types.NodeID) Estimate {
	if s, ok := t.peers[peer]; ok && (s.hasRTT || s.hasBW) {
		rtt, bw := t.decayedLocked(s)
		return Estimate{
			RTT:       time.Duration(rtt * float64(time.Second)),
			Bandwidth: bw,
			Measured:  true,
			Samples:   s.samples,
			Age:       t.now().Sub(s.last),
		}
	}
	if dom := t.locality[peer]; dom != "" {
		if est, ok := t.domainLocked(dom, peer); ok {
			return est
		}
	}
	return Estimate{RTT: t.cfg.PriorRTT, Bandwidth: t.cfg.PriorBandwidth}
}

// domainLocked averages the decayed estimates of measured peers in dom,
// excluding self.
func (t *Tracker) domainLocked(dom string, self types.NodeID) (Estimate, bool) {
	var rttSum, bwSum float64
	var n int
	for p, s := range t.peers {
		if p == self || t.locality[p] != dom || !(s.hasRTT || s.hasBW) {
			continue
		}
		rtt, bw := t.decayedLocked(s)
		rttSum += rtt
		bwSum += bw
		n++
	}
	if n == 0 {
		return Estimate{}, false
	}
	return Estimate{
		RTT:       time.Duration(rttSum / float64(n) * float64(time.Second)),
		Bandwidth: bwSum / float64(n),
	}, true
}

// Snapshot returns one row per known peer (measured or merely labeled),
// sorted by peer ID.
func (t *Tracker) Snapshot() []PeerEstimate {
	t.mu.Lock()
	defer t.mu.Unlock()
	seen := make(map[types.NodeID]bool, len(t.peers)+len(t.locality))
	for p := range t.peers {
		seen[p] = true
	}
	for p := range t.locality {
		seen[p] = true
	}
	out := make([]PeerEstimate, 0, len(seen))
	for p := range seen {
		out = append(out, PeerEstimate{Peer: p, Locality: t.locality[p], Estimate: t.estimateLocked(p)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// peer returns (creating if needed) the state record for p.
func (t *Tracker) peer(p types.NodeID) *peerState {
	s, ok := t.peers[p]
	if !ok {
		s = &peerState{}
		t.peers[p] = s
	}
	return s
}

// decayedLocked returns s's estimates decayed toward the priors by the
// time elapsed since the last sample, without mutating s.
func (t *Tracker) decayedLocked(s *peerState) (rttSec, bw float64) {
	rttSec, bw = s.rtt, s.bw
	if !s.hasRTT {
		rttSec = t.cfg.PriorRTT.Seconds()
	}
	if !s.hasBW {
		bw = t.cfg.PriorBandwidth
	}
	if t.cfg.HalfLife < 0 || s.last.IsZero() {
		return rttSec, bw
	}
	elapsed := t.now().Sub(s.last) - decayGrace
	if elapsed <= 0 {
		return rttSec, bw
	}
	w := math.Exp2(-elapsed.Seconds() / t.cfg.HalfLife.Seconds())
	prior := t.cfg.PriorRTT.Seconds()
	rttSec = prior + (rttSec-prior)*w
	bw = t.cfg.PriorBandwidth + (bw-t.cfg.PriorBandwidth)*w
	return rttSec, bw
}

// decayLocked folds the pending quiet-time decay into s's stored EWMAs so
// a fresh sample blends against the decayed value, not the stale one.
func (t *Tracker) decayLocked(s *peerState) {
	if !(s.hasRTT || s.hasBW) {
		return
	}
	rtt, bw := t.decayedLocked(s)
	if s.hasRTT {
		s.rtt = rtt
	}
	if s.hasBW {
		s.bw = bw
	}
}

// Snapshot wire encoding, used by the MethodLinkState control RPC so
// hoplite-cli can render a remote node's table. Layout: u16 row count,
// then per row: u16+peer, u16+locality, i64 RTT ns, f64 bandwidth,
// i64 age ns (-1 when never measured), u64 samples, u8 measured.

// EncodeSnapshot serializes rows for the wire.
func EncodeSnapshot(rows []PeerEstimate) []byte {
	var b []byte
	b = binary.BigEndian.AppendUint16(b, uint16(len(rows)))
	for _, r := range rows {
		b = appendString(b, string(r.Peer))
		b = appendString(b, r.Locality)
		b = binary.BigEndian.AppendUint64(b, uint64(r.RTT.Nanoseconds()))
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(r.Bandwidth))
		age := int64(-1)
		if r.Measured {
			age = r.Age.Nanoseconds()
		}
		b = binary.BigEndian.AppendUint64(b, uint64(age))
		b = binary.BigEndian.AppendUint64(b, r.Samples)
		if r.Measured {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	return b
}

// DecodeSnapshot parses an EncodeSnapshot payload.
func DecodeSnapshot(b []byte) ([]PeerEstimate, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("linkstate: snapshot truncated")
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	rows := make([]PeerEstimate, 0, n)
	for i := 0; i < n; i++ {
		var r PeerEstimate
		var s string
		var err error
		if s, b, err = takeString(b); err != nil {
			return nil, err
		}
		r.Peer = types.NodeID(s)
		if r.Locality, b, err = takeString(b); err != nil {
			return nil, err
		}
		if len(b) < 8*4+1 {
			return nil, fmt.Errorf("linkstate: snapshot truncated")
		}
		r.RTT = time.Duration(binary.BigEndian.Uint64(b))
		r.Bandwidth = math.Float64frombits(binary.BigEndian.Uint64(b[8:]))
		age := int64(binary.BigEndian.Uint64(b[16:]))
		r.Samples = binary.BigEndian.Uint64(b[24:])
		r.Measured = b[32] == 1
		if r.Measured && age >= 0 {
			r.Age = time.Duration(age)
		}
		b = b[33:]
		rows = append(rows, r)
	}
	return rows, nil
}

func appendString(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

func takeString(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, fmt.Errorf("linkstate: snapshot truncated")
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < n {
		return "", nil, fmt.Errorf("linkstate: snapshot truncated")
	}
	return string(b[:n]), b[n:], nil
}
