package linkstate

import (
	"math"
	"testing"
	"time"

	"hoplite/internal/types"
)

// fakeClock drives a Tracker deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newClockedTracker(cfg Config) (*Tracker, *fakeClock) {
	tr := New(cfg)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	tr.now = clk.now
	return tr, clk
}

func TestPriorsBeforeAnySample(t *testing.T) {
	tr := New(Config{PriorRTT: 500 * time.Microsecond, PriorBandwidth: 2e9})
	est := tr.Estimate("n1")
	if est.Measured {
		t.Fatal("unmeasured peer reported Measured")
	}
	if est.RTT != 500*time.Microsecond || est.Bandwidth != 2e9 {
		t.Fatalf("expected priors, got %v / %v", est.RTT, est.Bandwidth)
	}
}

func TestEWMAConvergence(t *testing.T) {
	tr, clk := newClockedTracker(Config{PriorRTT: 200 * time.Microsecond, PriorBandwidth: 1.25e9})
	for i := 0; i < 50; i++ {
		tr.ObserveRTT("n1", 2*time.Millisecond)
		tr.ObserveTransfer("n1", 8<<20, time.Second) // 8 MB/s
		clk.advance(10 * time.Millisecond)
	}
	est := tr.Estimate("n1")
	if !est.Measured {
		t.Fatal("peer with samples not Measured")
	}
	if est.RTT < 1500*time.Microsecond || est.RTT > 2500*time.Microsecond {
		t.Fatalf("RTT did not converge to ~2ms: %v", est.RTT)
	}
	if bw := est.Bandwidth; math.Abs(bw-float64(8<<20)) > float64(1<<20) {
		t.Fatalf("bandwidth did not converge to ~8MB/s: %v", bw)
	}
	if est.Samples == 0 {
		t.Fatal("sample count not tracked")
	}
}

func TestSmallTransfersIgnoredForBandwidth(t *testing.T) {
	tr, _ := newClockedTracker(Config{PriorBandwidth: 1.25e9})
	// A tiny transfer at an absurdly low implied rate must not poison the
	// bandwidth estimate.
	tr.ObserveTransfer("n1", 100, time.Second)
	if est := tr.Estimate("n1"); est.Bandwidth != 1.25e9 {
		t.Fatalf("tiny transfer moved bandwidth estimate: %v", est.Bandwidth)
	}
}

func TestDecayTowardPriors(t *testing.T) {
	prior := 1.25e9
	tr, clk := newClockedTracker(Config{PriorBandwidth: prior, HalfLife: time.Second})
	tr.ObserveTransfer("n1", 1<<20, time.Second) // 1 MB/s, far below prior
	measured := tr.Estimate("n1").Bandwidth

	clk.advance(decayGrace + time.Second) // grace period + one half-life
	half := tr.Estimate("n1").Bandwidth
	wantHalf := prior + (measured-prior)*0.5
	if math.Abs(half-wantHalf)/wantHalf > 0.01 {
		t.Fatalf("after one half-life got %v, want %v", half, wantHalf)
	}

	clk.advance(time.Minute) // many half-lives: effectively the prior again
	if final := tr.Estimate("n1").Bandwidth; math.Abs(final-prior)/prior > 0.01 {
		t.Fatalf("quiet link did not decay to prior: %v", final)
	}
}

func TestDecayDisabled(t *testing.T) {
	tr, clk := newClockedTracker(Config{PriorBandwidth: 1.25e9, HalfLife: -1})
	tr.ObserveTransfer("n1", 1<<20, time.Second)
	measured := tr.Estimate("n1").Bandwidth
	clk.advance(time.Hour)
	if got := tr.Estimate("n1").Bandwidth; got != measured {
		t.Fatalf("HalfLife<0 must disable decay: %v != %v", got, measured)
	}
}

func TestFreshSampleBlendsAgainstDecayedValue(t *testing.T) {
	tr, clk := newClockedTracker(Config{PriorBandwidth: 100e6, HalfLife: time.Second})
	tr.ObserveTransfer("n1", 1<<20, time.Second) // ~1 MB/s
	clk.advance(time.Hour)                       // decays ~fully back to 100 MB/s
	tr.ObserveTransfer("n1", 200<<20, time.Second)
	// New EWMA should sit between the decayed base (~100 MB/s) and the new
	// sample (200 MiB/s), nowhere near the stale 1 MB/s measurement.
	if got := tr.Estimate("n1").Bandwidth; got < 100e6 {
		t.Fatalf("sample blended against stale value, not decayed one: %v", got)
	}
}

func TestLocalityAggregation(t *testing.T) {
	tr, _ := newClockedTracker(Config{PriorRTT: 200 * time.Microsecond, PriorBandwidth: 1.25e9})
	tr.SetLocality(map[types.NodeID]string{"a": "rack1", "b": "rack1", "c": "rack2"})
	for i := 0; i < 20; i++ {
		tr.ObserveRTT("a", 5*time.Millisecond)
		tr.ObserveTransfer("a", 10<<20, time.Second)
	}
	// b shares a's rack and borrows its aggregate; c does not.
	b := tr.Estimate("b")
	if b.Measured {
		t.Fatal("aggregate estimate must not claim Measured")
	}
	if b.RTT < time.Millisecond {
		t.Fatalf("rack peer should borrow measured RTT, got %v", b.RTT)
	}
	if b.Bandwidth > 100<<20 {
		t.Fatalf("rack peer should borrow measured bandwidth, got %v", b.Bandwidth)
	}
	if c := tr.Estimate("c"); c.RTT != 200*time.Microsecond || c.Bandwidth != 1.25e9 {
		t.Fatalf("other-rack peer should keep priors, got %+v", c)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	tr, _ := newClockedTracker(Config{})
	tr.SetLocality(map[types.NodeID]string{"a": "rack1", "z": "rack9"})
	tr.ObserveRTT("a", time.Millisecond)
	tr.ObserveTransfer("a", 4<<20, 100*time.Millisecond)
	tr.ObserveRTT("m", 3*time.Millisecond)

	rows := tr.Snapshot()
	if len(rows) != 3 {
		t.Fatalf("snapshot rows = %d, want 3", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1].Peer >= rows[i].Peer {
			t.Fatal("snapshot not sorted by peer")
		}
	}

	got, err := DecodeSnapshot(EncodeSnapshot(rows))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(rows) {
		t.Fatalf("round trip rows = %d, want %d", len(got), len(rows))
	}
	for i := range rows {
		w, g := rows[i], got[i]
		if g.Peer != w.Peer || g.Locality != w.Locality || g.RTT != w.RTT ||
			g.Bandwidth != w.Bandwidth || g.Samples != w.Samples || g.Measured != w.Measured {
			t.Fatalf("row %d mismatch: got %+v want %+v", i, g, w)
		}
	}
}

func TestDecodeSnapshotTruncated(t *testing.T) {
	full := EncodeSnapshot([]PeerEstimate{{Peer: "a", Locality: "r"}})
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeSnapshot(full[:cut]); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}
