package linkstate

import (
	"testing"

	"hoplite/internal/leakcheck"
)

// TestMain routes the package through the goroutine-leak harness; see
// docs/INVARIANTS.md.
func TestMain(m *testing.M) { leakcheck.Main(m) }
