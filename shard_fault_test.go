package hoplite

// Directory shard fault tests: every scenario kills the node hosting a
// shard's primary replica mid-workload and asserts the workload completes
// through the promoted backup — the kill-anything story PR 2–4 built for
// the data plane, extended to the metadata plane.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hoplite/internal/types"
)

// shardPrimary returns the node index hosting shard s's initial primary
// (replica groups start at the shard's own index).
func shardPrimary(s int) int { return s }

// TestShardPrimaryKillMidGet kills the directory shard primary while a
// large Get is streaming: the transfer itself rides the data plane, and
// the directory ops bracketing it (release, completion) must fail over to
// the promoted backup.
func TestShardPrimaryKillMidGet(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 5, Options{Emulate: slowEmu()})
	data := payload(8<<20, 21)
	// Shard 3's replica group is nodes 3, 4, 0; node 3 is neither the
	// sender (0) nor the receiver (1), so killing it hits only metadata.
	oid := oidOnShard(t, "skill-get", c.Size(), 3)
	if err := c.Node(0).Put(ctx, oid, data); err != nil {
		t.Fatalf("Put: %v", err)
	}
	done := make(chan error, 1)
	var got []byte
	go func() {
		var err error
		got, err = c.Node(1).Get(ctx, oid)
		done <- err
	}()
	time.Sleep(60 * time.Millisecond) // mid-transfer at 32 MB/s
	if err := c.KillNode(shardPrimary(3)); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Get across primary kill: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("payload mismatch")
	}
	// The shard stays fully writable through the promoted backup.
	oid2 := oidOnShard(t, "skill-get2", c.Size(), 3)
	if err := c.Node(2).Put(ctx, oid2, data); err != nil {
		t.Fatalf("Put on shard after primary kill: %v", err)
	}
	got2, err := c.Node(4).Get(ctx, oid2)
	if err != nil {
		t.Fatalf("Get on shard after primary kill: %v", err)
	}
	if !bytes.Equal(got2, data) {
		t.Fatal("post-kill payload mismatch")
	}
}

// TestShardPrimaryKillMidStripedGet kills the shard primary while a
// striped multi-source Get is draining ranges from three senders: the
// per-sender lease releases and the striped completion report must land
// on the promoted backup, and every byte must arrive.
func TestShardPrimaryKillMidStripedGet(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 5, Options{
		Emulate:         slowEmu(),
		StripeThreshold: 1 << 20,
		MaxSources:      4,
	})
	data := payload(16<<20, 22)
	// Shard 4's group is nodes 4, 0, 1: node 4 is not among the senders
	// (0, 1, 2) or the receiver (3)... node 0 and 1 are senders AND
	// backups, which is exactly the point: metadata failover must not
	// disturb their data-plane serving.
	oid := oidOnShard(t, "skill-stripe", c.Size(), 4)
	if err := c.Node(0).Put(ctx, oid, data); err != nil {
		t.Fatalf("Put: %v", err)
	}
	for i := 1; i <= 2; i++ {
		if _, err := c.Node(i).Get(ctx, oid); err != nil {
			t.Fatalf("warm Get node%d: %v", i, err)
		}
	}
	// Wait until the directory records three complete copies so the
	// striped acquire leases all of them.
	deadline := time.Now().Add(10 * time.Second)
	for {
		rec, err := c.Node(3).Directory().Lookup(ctx, oid, false)
		if err != nil {
			t.Fatalf("Lookup: %v", err)
		}
		complete := 0
		for _, l := range rec.Locs {
			if l.Progress == types.ProgressComplete {
				complete++
			}
		}
		if complete >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never saw 3 complete copies: %+v", rec.Locs)
		}
		time.Sleep(10 * time.Millisecond)
	}
	done := make(chan error, 1)
	var got []byte
	go func() {
		var err error
		got, err = c.Node(3).Get(ctx, oid)
		done <- err
	}()
	time.Sleep(60 * time.Millisecond)
	if err := c.KillNode(shardPrimary(4)); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("striped Get across primary kill: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("striped payload mismatch")
	}
}

// TestShardPrimaryKillMidReduce kills the primary of the shard holding
// the reduce target's metadata (which also pins every intermediate slot
// output) while the tree reduce is streaming. The coordinator's
// subscriptions re-home to a live replica and the reduce completes with
// the exact fold.
func TestShardPrimaryKillMidReduce(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 5, Options{Emulate: slowEmu()})
	const elems = 1 << 20 // 4 MB per source
	sources := make([]ObjectID, 3)
	want := 0.0
	for i := range sources {
		sources[i] = oidOnShard(t, fmt.Sprintf("skill-reduce-src-%d", i), c.Size(), i)
		vals := make([]float32, elems)
		for j := range vals {
			vals[j] = float32(i + 1)
		}
		want += float64(i + 1)
		if err := c.Node(i+1).Put(ctx, sources[i], types.EncodeF32(vals)); err != nil {
			t.Fatalf("Put source %d: %v", i, err)
		}
	}
	// Target metadata (and every pinned slot output) on shard 4, whose
	// primary node 4 hosts no source and is not the coordinator.
	target := oidOnShard(t, "skill-reduce-target", c.Size(), 4)
	done := make(chan error, 1)
	go func() {
		_, err := c.Node(0).Reduce(ctx, target, sources, len(sources), SumF32)
		done <- err
	}()
	time.Sleep(80 * time.Millisecond) // tree assigned, blocks streaming
	if err := c.KillNode(shardPrimary(4)); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Reduce across primary kill: %v", err)
	}
	raw, err := c.Node(0).Get(ctx, target)
	if err != nil {
		t.Fatalf("Get result: %v", err)
	}
	got := types.DecodeF32(raw)
	if float64(got[0]) != want || float64(got[elems-1]) != want {
		t.Fatalf("reduce result %v, want %v", got[0], want)
	}
}

// TestShardPrimaryKillNoDoubleLease kills the primary under a burst of
// concurrent Gets of one object with a single complete copy: across the
// failover every transfer must complete (a double-leased sender would
// wedge one receiver behind a lease nobody returns).
func TestShardPrimaryKillNoDoubleLease(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 5, Options{Emulate: slowEmu()})
	data := payload(4<<20, 23)
	oid := oidOnShard(t, "skill-lease", c.Size(), 2)
	if err := c.Node(0).Put(ctx, oid, data); err != nil {
		t.Fatalf("Put: %v", err)
	}
	errs := make(chan error, 3)
	for _, i := range []int{1, 3, 4} {
		go func(i int) {
			got, err := c.Node(i).Get(ctx, oid)
			if err == nil && !bytes.Equal(got, data) {
				err = fmt.Errorf("node %d payload mismatch", i)
			}
			errs <- err
		}(i)
	}
	time.Sleep(40 * time.Millisecond)
	if err := c.KillNode(shardPrimary(2)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("Get under primary kill: %v", err)
		}
	}
}

// TestRestartNodeFailureLeavesClusterUsable forces core.NewNode to fail
// during a restart (the spill directory path is occupied by a regular
// file) and checks the failure is surfaced, the slot is left empty but
// harmless, and a later retry succeeds.
func TestRestartNodeFailureLeavesClusterUsable(t *testing.T) {
	ctx := testCtx(t)
	spillRoot := t.TempDir()
	c := startCluster(t, 3, Options{Emulate: slowEmu(), SpillDir: spillRoot})
	data := payload(2<<20, 24)
	oid := oidOnShard(t, "restart-fail", c.Size(), 0)
	if err := c.Node(0).Put(ctx, oid, data); err != nil {
		t.Fatal(err)
	}
	if err := c.KillNode(2); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	// Occupy node-2's spill directory with a file: spill.Open must fail.
	nodeDir := filepath.Join(spillRoot, "node-2")
	if err := os.RemoveAll(nodeDir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(nodeDir, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartNode(2); err == nil {
		t.Fatal("RestartNode succeeded with an unopenable spill dir")
	}
	if c.Node(2) != nil {
		t.Fatal("failed restart left a dead node in the slot")
	}
	// The rest of the cluster is unaffected.
	if got, err := c.Node(1).Get(ctx, oid); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("cluster unusable after failed restart: %v", err)
	}
	// Clear the obstruction; the retry must fully rejoin the node.
	if err := os.Remove(nodeDir); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartNode(2); err != nil {
		t.Fatalf("RestartNode retry: %v", err)
	}
	got, err := c.Node(2).Get(ctx, oid)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("restarted node Get: %v", err)
	}
}

// TestShardPrimaryKillThenRestart exercises the full cycle: kill a shard
// primary, work through the promoted backup, restart the old primary,
// and verify it rejoins as a serving replica (snapshot resync) that can
// take the shard over again when the interim primary dies.
func TestShardPrimaryKillThenRestart(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 3, Options{Emulate: slowEmu()})
	data := payload(1<<20, 25)
	oid := oidOnShard(t, "cycle", c.Size(), 0)
	if err := c.Node(1).Put(ctx, oid, data); err != nil {
		t.Fatal(err)
	}
	if err := c.KillNode(0); err != nil {
		t.Fatal(err)
	}
	// Shard 0 promotes node 1; shards 1 and 2 lose a backup only.
	oid2 := oidOnShard(t, "cycle2", c.Size(), 0)
	if err := c.Node(1).Put(ctx, oid2, data); err != nil {
		t.Fatalf("Put after kill: %v", err)
	}
	if err := c.RestartNode(0); err != nil {
		t.Fatalf("RestartNode: %v", err)
	}
	if got, err := c.Node(0).Get(ctx, oid2); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("restarted ex-primary Get: %v", err)
	}
	// Kill the interim primary: the restarted, resynced ex-primary must
	// take shard 0 back and serve its (post-restart) state. Give the
	// resync a moment to complete first.
	time.Sleep(500 * time.Millisecond)
	if err := c.KillNode(1); err != nil {
		t.Fatal(err)
	}
	oid3 := oidOnShard(t, "cycle3", c.Size(), 0)
	if err := c.Node(2).Put(ctx, oid3, data); err != nil {
		t.Fatalf("Put after second kill: %v", err)
	}
	if got, err := c.Node(0).Get(ctx, oid3); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Get after shard handback: %v", err)
	}
}
