package hoplite

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"hoplite/internal/types"
	"hoplite/internal/wire"
)

// waitCond polls cond until it holds or the deadline passes.
func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// completeHolders returns the nodes holding a full copy of oid, per the
// directory record read through node q.
func completeHolders(ctx context.Context, t *testing.T, c *Cluster, q int, oid ObjectID) []types.NodeID {
	t.Helper()
	rec, err := c.Node(q).Directory().Lookup(ctx, oid, false)
	if err != nil {
		t.Fatalf("Lookup %v: %v", oid, err)
	}
	var holders []types.NodeID
	for _, l := range rec.Locs {
		if l.Progress.HasAll() {
			holders = append(holders, l.Node)
		}
	}
	return holders
}

// TestJoinMidStripedGet scales the cluster out while a striped Get is in
// flight: the transfer must complete with exact bytes, and the joiner must
// end up hosting rebalanced directory shard replicas and serving Gets.
func TestJoinMidStripedGet(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 3, Options{Emulate: slowEmu()})
	data := payload(8<<20, 11)
	oid := ObjectIDFromString("join-mid-get")
	if err := c.Node(0).Put(ctx, oid, data); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// A second complete copy so the striped pull has two sources.
	if _, err := c.Node(1).Get(ctx, oid); err != nil {
		t.Fatalf("warm copy Get: %v", err)
	}

	done := make(chan error, 1)
	var got []byte
	go func() {
		var err error
		got, err = c.Node(2).Get(ctx, oid)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the pull get going

	idx, err := c.AddNode(false)
	if err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Get concurrent with join: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("payload mismatch for Get concurrent with join")
	}

	joiner := c.Node(idx)
	if cm := joiner.ClusterMap(); cm.Epoch < 2 {
		t.Fatalf("joiner map epoch = %d, want >= 2", cm.Epoch)
	}
	// The rebalance must hand the new shard host real replicas.
	waitCond(t, "joiner hosts shard replicas", func() bool {
		return joiner.ShardServer().HostedReplicas() > 0
	})
	jgot, err := joiner.Get(ctx, oid)
	if err != nil {
		t.Fatalf("joiner Get: %v", err)
	}
	if !bytes.Equal(jgot, data) {
		t.Fatal("joiner payload mismatch")
	}
}

// TestDrainSoleCopyHolderMidGet gracefully drains the node holding the
// only complete copy while another node is pulling it. The drain must
// evacuate the sole copy before the holder leaves, and both the in-flight
// and post-drain Gets must see exact bytes.
func TestDrainSoleCopyHolderMidGet(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 3, Options{Emulate: slowEmu()})
	data := payload(6<<20, 12)
	oid := ObjectIDFromString("drain-sole-copy")
	if err := c.Node(0).Put(ctx, oid, data); err != nil {
		t.Fatalf("Put: %v", err)
	}

	done := make(chan error, 1)
	var got []byte
	go func() {
		var err error
		got, err = c.Node(1).Get(ctx, oid)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)

	// Blocks until node 0's shards are handed off and its sole copies
	// (including oid, unless the Get above already registered a second
	// copy) are evacuated.
	if err := c.DrainNode(ctx, 0); err != nil {
		t.Fatalf("DrainNode: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Get concurrent with drain: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("payload mismatch for Get concurrent with drain")
	}

	cm := c.Node(2).ClusterMap()
	if cm.MemberIndex(types.NodeID(c.Node(2).Addr())) < 0 || len(cm.Members) != 2 {
		t.Fatalf("post-drain map has %d members", len(cm.Members))
	}
	// The object must have survived its sole holder leaving.
	got2, err := c.Node(2).Get(ctx, oid)
	if err != nil {
		t.Fatalf("Get after drain: %v", err)
	}
	if !bytes.Equal(got2, data) {
		t.Fatal("payload mismatch after drain")
	}
}

// TestDeclareDeadRestoresReplication kills a copy holder permanently and
// checks the repair scanner re-creates the lost copy on a surviving node,
// restoring the ObjectReplication target.
func TestDeclareDeadRestoresReplication(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 4, Options{
		Emulate:           slowEmu(),
		ObjectReplication: 2,
		RepairInterval:    50 * time.Millisecond,
	})
	data := payload(2<<20, 13)
	oid := ObjectIDFromString("repair-after-death")
	if err := c.Node(0).Put(ctx, oid, data); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// The scanner proactively replicates up to the target.
	waitCond(t, "object reaches replication 2", func() bool {
		return len(completeHolders(ctx, t, c, 0, oid)) >= 2
	})

	// Kill one holder that is not node 0 (our query client); with RF 2
	// and the origin holding a copy there is exactly one such node.
	var victim int
	for _, h := range completeHolders(ctx, t, c, 0, oid) {
		for i := 1; i < c.Size(); i++ {
			if c.Node(i) != nil && c.Node(i).ID() == h {
				victim = i
			}
		}
	}
	if victim == 0 {
		t.Fatal("no killable holder found")
	}
	deadID := c.Node(victim).ID()
	if err := c.KillNode(victim); err != nil {
		t.Fatal(err)
	}
	if err := c.DeclareDead(ctx, victim); err != nil {
		t.Fatalf("DeclareDead: %v", err)
	}

	// Repair must restore two complete copies on surviving nodes.
	waitCond(t, "replication restored after node loss", func() bool {
		live := 0
		for _, h := range completeHolders(ctx, t, c, 0, oid) {
			if h != deadID {
				live++
			}
		}
		return live >= 2
	})
	got, err := c.Node(0).Get(ctx, oid)
	if err != nil {
		t.Fatalf("Get after repair: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("payload mismatch after repair")
	}
	waitCond(t, "under-replication drains to zero", func() bool {
		u, err := c.Node(0).Directory().UnderReplicated(ctx)
		return err == nil && u == 0
	})
}

// TestJoinDuringShardResync restarts a former shard host (which comes back
// as an out-of-sync backup being snapshot-synced) and joins a brand-new
// node while that resync is in flight. Both must converge: the joiner
// hosts replicas, and every object stays readable.
func TestJoinDuringShardResync(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 3, Options{Emulate: slowEmu()})
	var oids []ObjectID
	for i := 0; i < 6; i++ {
		oid := ObjectIDFromString(fmt.Sprintf("resync-join-%d", i))
		if err := c.Node(0).Put(ctx, oid, payload(64<<10, byte(i))); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
		oids = append(oids, oid)
	}

	if err := c.KillNode(1); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartNode(1); err != nil {
		t.Fatalf("RestartNode: %v", err)
	}
	// Join while node 1 is still resyncing its shard replicas.
	idx, err := c.AddNode(false)
	if err != nil {
		t.Fatalf("AddNode during resync: %v", err)
	}

	waitCond(t, "joiner hosts shard replicas", func() bool {
		return c.Node(idx).ShardServer().HostedReplicas() > 0
	})
	// All nodes converge on the post-join epoch.
	waitCond(t, "epochs converge", func() bool {
		want := c.Node(0).ClusterMap().Epoch
		if want < 2 {
			return false
		}
		for _, n := range c.Nodes() {
			if n != nil && n.ClusterMap().Epoch != want {
				return false
			}
		}
		return true
	})
	for i, oid := range oids {
		got, err := c.Node(2).Get(ctx, oid)
		if err != nil {
			t.Fatalf("Get %d after resync+join: %v", i, err)
		}
		if !bytes.Equal(got, payload(64<<10, byte(i))) {
			t.Fatalf("payload %d mismatch after resync+join", i)
		}
	}
}

// TestPeerCtrlStaleEpochBounce checks the peer control plane's epoch gate:
// after the map advances, a request stamped with the old epoch is bounced
// with ErrStaleMap and the current encoded map, while unstamped and
// current-epoch requests pass.
func TestPeerCtrlStaleEpochBounce(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 2, Options{}) // plain TCP so we can dial raw
	if _, err := c.AddNode(true); err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	waitCond(t, "node 0 installs the post-join map", func() bool {
		return c.Node(0).ClusterMap().Epoch >= 2
	})
	cur := c.Node(0).ClusterMap().Epoch

	conn, err := net.Dial("tcp", c.Node(0).Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte{0xC1}); err != nil { // control-plane select byte
		t.Fatal(err)
	}
	wc := wire.NewClient(conn, nil)
	defer wc.Close()

	cases := []struct {
		name  string
		m     wire.Message
		stale bool
	}{
		{"unstamped ping", wire.Message{Method: wire.MethodPing}, false},
		{"current ping", wire.Message{Method: wire.MethodPing, Epoch: cur}, false},
		{"stale ping", wire.Message{Method: wire.MethodPing, Epoch: 1}, true},
		{"stale directory lookup", wire.Message{
			Method: wire.MethodLookup, OID: types.ObjectIDFromString("x"), Epoch: 1,
		}, true},
	}
	for _, tc := range cases {
		resp, err := wc.Call(ctx, tc.m)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got := errors.Is(resp.ErrorOf(), types.ErrStaleMap)
		if got != tc.stale {
			t.Fatalf("%s: stale bounce = %v, want %v (err %q)", tc.name, got, tc.stale, resp.Err)
		}
		if tc.stale {
			cm, derr := types.DecodeClusterMap(resp.Payload)
			if derr != nil || cm.Epoch != cur {
				t.Fatalf("%s: bounce map epoch %d err %v, want %d", tc.name, cm.Epoch, derr, cur)
			}
		}
	}
}
